// Package horn implements propositional Horn logic programs, Minoux's
// linear-time unit resolution (LTUR), residual programs, and the
// ContractProgram operation of Section 4.1 of the paper.
//
// Residual programs over the IDB predicates of a TMNF program are the
// central data structure of the whole system: a single residual program
// concisely represents the set of all states a (nondeterministic) selecting
// tree automaton can be in at a tree node, and canonical residual programs
// are the states of the deterministic bottom-up tree automaton that the
// two-phase evaluation algorithm runs.
//
// Atoms are small integers laid out by a Universe: for a TMNF program with
// L IDB predicates, atom i (0 <= i < L) is the local predicate X_i, atom
// L+i is the left-child (superscript-1) predicate X^1_i, atom 2L+i is the
// right-child (superscript-2) predicate X^2_i, and atoms >= 3L are EDB
// predicates (node-label predicates such as Label[a], Root, Leaf and their
// complements).
package horn

import (
	"fmt"
	"sort"
	"strings"
)

// Atom is a propositional predicate in some Universe.
type Atom int32

// Space identifies the predicate space an atom belongs to.
type Space int

const (
	Local  Space = iota // local IDB predicate X_i
	Super1              // left-child IDB predicate X^1_i
	Super2              // right-child IDB predicate X^2_i
	EDB                 // input (node label) predicate
)

// Universe fixes the atom layout for a TMNF program with NumIDB IDB
// predicates and NumEDB EDB predicates.
type Universe struct {
	NumIDB int
	NumEDB int
}

// Size returns the total number of atoms.
func (u Universe) Size() int { return 3*u.NumIDB + u.NumEDB }

// LocalAtom returns the atom for local IDB predicate i.
func (u Universe) LocalAtom(i int) Atom { return Atom(i) }

// SuperAtom returns the atom for IDB predicate i superscripted with k
// (k = 1 for the first child, 2 for the second child).
func (u Universe) SuperAtom(k, i int) Atom { return Atom(k*u.NumIDB + i) }

// EDBAtom returns the atom for EDB predicate j.
func (u Universe) EDBAtom(j int) Atom { return Atom(3*u.NumIDB + j) }

// SpaceOf returns the space of atom a and its predicate index within that
// space.
func (u Universe) SpaceOf(a Atom) (Space, int) {
	i := int(a)
	switch {
	case i < u.NumIDB:
		return Local, i
	case i < 2*u.NumIDB:
		return Super1, i - u.NumIDB
	case i < 3*u.NumIDB:
		return Super2, i - 2*u.NumIDB
	default:
		return EDB, i - 3*u.NumIDB
	}
}

// IsEDB reports whether a is an EDB atom.
func (u Universe) IsEDB(a Atom) bool { return int(a) >= 3*u.NumIDB }

// IsSuper reports whether a is a superscripted IDB atom.
func (u Universe) IsSuper(a Atom) bool { return int(a) >= u.NumIDB && int(a) < 3*u.NumIDB }

// IsLocal reports whether a is a local IDB atom.
func (u Universe) IsLocal(a Atom) bool { return int(a) < u.NumIDB }

// PushDown maps a local IDB atom to its superscript-k counterpart.
// It panics if a is not local.
func (u Universe) PushDown(k int, a Atom) Atom {
	if !u.IsLocal(a) {
		panic(fmt.Sprintf("horn: PushDown of non-local atom %d", a))
	}
	return Atom(k*u.NumIDB) + a
}

// PushUp maps a superscript-k atom to its local counterpart. It panics if
// a is not in the requested superscript space.
func (u Universe) PushUp(k int, a Atom) Atom {
	s, i := u.SpaceOf(a)
	if (k == 1 && s != Super1) || (k == 2 && s != Super2) {
		panic(fmt.Sprintf("horn: PushUp(%d) of atom %d in space %d", k, a, s))
	}
	return Atom(i)
}

// Rule is a propositional Horn clause Head <- Body[0] /\ ... /\ Body[n-1].
// An empty body makes the rule a fact. Bodies are kept sorted and
// duplicate-free; use NewRule to normalise.
type Rule struct {
	Head Atom
	Body []Atom
}

// NewRule returns a rule with a sorted, deduplicated body.
func NewRule(head Atom, body ...Atom) Rule {
	b := append([]Atom(nil), body...)
	sortAtoms(b)
	b = dedupSorted(b)
	return Rule{Head: head, Body: b}
}

// IsFact reports whether the rule has an empty body.
func (r Rule) IsFact() bool { return len(r.Body) == 0 }

// isTautology reports whether the rule's head occurs in its own body.
func (r Rule) isTautology() bool {
	for _, a := range r.Body {
		if a == r.Head {
			return true
		}
	}
	return false
}

func sortAtoms(b []Atom) {
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
}

func dedupSorted(b []Atom) []Atom {
	if len(b) < 2 {
		return b
	}
	out := b[:1]
	for _, a := range b[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return out
}

// compareRules orders rules by (head, body length, body lexicographic).
func compareRules(a, b Rule) int {
	if a.Head != b.Head {
		if a.Head < b.Head {
			return -1
		}
		return 1
	}
	if len(a.Body) != len(b.Body) {
		if len(a.Body) < len(b.Body) {
			return -1
		}
		return 1
	}
	for i := range a.Body {
		if a.Body[i] != b.Body[i] {
			if a.Body[i] < b.Body[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Program is a set of Horn rules. A Program produced by Canon, LTUR or
// Contract is in canonical form: rules sorted and duplicate-free. Canonical
// equal programs have equal Key() encodings, which the engine uses for
// hash-consing automaton states.
type Program struct {
	Rules []Rule
}

// Canon sorts and deduplicates the program's rules in place and returns it.
func (p *Program) Canon() *Program {
	sort.Slice(p.Rules, func(i, j int) bool { return compareRules(p.Rules[i], p.Rules[j]) < 0 })
	out := p.Rules[:0]
	for i, r := range p.Rules {
		if i == 0 || compareRules(r, p.Rules[i-1]) != 0 {
			out = append(out, r)
		}
	}
	p.Rules = out
	return p
}

// Key returns a byte-string encoding that is identical for canonically
// equal programs. The program must be in canonical form.
func (p *Program) Key() string {
	var b []byte
	for _, r := range p.Rules {
		b = appendUvarint(b, uint64(r.Head)+1)
		b = appendUvarint(b, uint64(len(r.Body)))
		for _, a := range r.Body {
			b = appendUvarint(b, uint64(a))
		}
	}
	return string(b)
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// TruePreds returns the heads of all facts in the program (the predicates
// already known to be true), in ascending order. The program must be
// canonical (facts sort first within each head group, which is all we rely
// on).
func (p *Program) TruePreds() []Atom {
	var out []Atom
	for _, r := range p.Rules {
		if r.IsFact() {
			out = append(out, r.Head)
		}
	}
	sortAtoms(out)
	return dedupSorted(out)
}

// PredsAsRules converts a set of predicates into facts.
func PredsAsRules(atoms []Atom) []Rule {
	out := make([]Rule, len(atoms))
	for i, a := range atoms {
		out[i] = Rule{Head: a}
	}
	return out
}

// PushDownProgram returns a copy of p (which must mention only local atoms)
// with every atom moved to the superscript-k space.
func PushDownProgram(u Universe, k int, p *Program) []Rule {
	out := make([]Rule, len(p.Rules))
	for i, r := range p.Rules {
		nr := Rule{Head: u.PushDown(k, r.Head), Body: make([]Atom, len(r.Body))}
		for j, a := range r.Body {
			nr.Body[j] = u.PushDown(k, a)
		}
		out[i] = nr
	}
	return out
}

// PredsInSpace filters atoms to those in the given space.
func PredsInSpace(u Universe, atoms []Atom, s Space) []Atom {
	var out []Atom
	for _, a := range atoms {
		if sp, _ := u.SpaceOf(a); sp == s {
			out = append(out, a)
		}
	}
	return out
}

// PushUpFrom maps superscript-k atoms back to local atoms.
func PushUpFrom(u Universe, k int, atoms []Atom) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		out[i] = u.PushUp(k, a)
	}
	return out
}

// String renders the program with a namer for debugging; namer may be nil.
func (p *Program) String() string { return p.Format(nil) }

// Format renders the program using namer to print atoms (nil for numeric).
func (p *Program) Format(namer func(Atom) string) string {
	name := namer
	if name == nil {
		name = func(a Atom) string { return fmt.Sprintf("p%d", a) }
	}
	var b strings.Builder
	for i, r := range p.Rules {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(name(r.Head))
		b.WriteString(" <-")
		for _, a := range r.Body {
			b.WriteString(" ")
			b.WriteString(name(a))
		}
		b.WriteString(";")
	}
	return b.String()
}
