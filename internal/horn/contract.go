package horn

// Contract implements the ContractProgram operation of Section 4.1: rules
// r1 and r2 are unfolded whenever head(r2) occurs in body(r1) and head(r2)
// is a superscripted predicate (unfolding replaces head(r2) in body(r1) by
// body(r2)); this is repeated until no new rules can be derived, and then
// all rules still containing a superscripted predicate are removed. The
// surviving rules mention only local predicates: they are exactly the
// constraints among the node's own IDB predicates that the subtree below
// the node induces.
//
// Rather than unfolding every superscripted body atom of every rule, the
// implementation resolves each rule only on a *selected* atom (its largest
// superscripted body atom). Unfoldings on distinct body atoms commute, so
// a fixed selection still derives every rule whose body is free of
// superscripts — this is the standard completeness argument for selection-
// based SLD resolution on Horn clauses — while generating far fewer
// intermediate rules.
//
// The input must be EDB-free (an LTUR residual). The result is canonical
// and minimised.
func Contract(u Universe, p *Program) *Program {
	c := contractor{
		u:          u,
		seen:       make(map[string]struct{}),
		byHead:     make(map[Atom][]int32),
		bySelected: make(map[Atom][]int32),
	}
	for _, r := range p.Rules {
		c.add(r)
	}
	for len(c.work) > 0 {
		ri := c.work[len(c.work)-1]
		c.work = c.work[:len(c.work)-1]
		c.process(ri)
	}
	out := &Program{}
	for _, r := range c.rules {
		if !u.IsLocal(r.Head) {
			continue
		}
		ok := true
		for _, a := range r.Body {
			if !u.IsLocal(a) {
				ok = false
				break
			}
		}
		if ok {
			out.Rules = append(out.Rules, r)
		}
	}
	out.Canon()
	minimize(out)
	return out
}

type contractor struct {
	u     Universe
	rules []Rule
	seen  map[string]struct{}
	// byHead indexes rules by superscripted head; bySelected indexes rules
	// by their selected (largest) superscripted body atom.
	byHead     map[Atom][]int32
	bySelected map[Atom][]int32
	work       []int32
	keyBuf     []byte
}

func (c *contractor) ruleKey(r Rule) string {
	b := c.keyBuf[:0]
	b = appendUvarint(b, uint64(r.Head))
	for _, a := range r.Body {
		b = appendUvarint(b, uint64(a)+1)
	}
	c.keyBuf = b
	return string(b)
}

// selected returns the largest superscripted body atom, or -1.
func (c *contractor) selected(r Rule) Atom {
	for i := len(r.Body) - 1; i >= 0; i-- {
		if c.u.IsSuper(r.Body[i]) {
			return r.Body[i]
		}
	}
	return -1
}

// add registers a rule if new and queues it for processing.
func (c *contractor) add(r Rule) {
	if r.isTautology() {
		return
	}
	k := c.ruleKey(r)
	if _, ok := c.seen[k]; ok {
		return
	}
	c.seen[k] = struct{}{}
	ri := int32(len(c.rules))
	c.rules = append(c.rules, r)
	c.work = append(c.work, ri)
}

// process wires rule ri into the indexes and performs all unfoldings it
// enables, in both directions: as the rule being unfolded (on its selected
// atom) and as the definition unfolded into others (via its head).
func (c *contractor) process(ri int32) {
	r := c.rules[ri]
	if sel := c.selected(r); sel >= 0 {
		c.bySelected[sel] = append(c.bySelected[sel], ri)
		defs := c.byHead[sel]
		for _, di := range defs {
			c.unfold(r, c.rules[di], sel)
		}
	}
	if c.u.IsSuper(r.Head) {
		c.byHead[r.Head] = append(c.byHead[r.Head], ri)
		users := append([]int32(nil), c.bySelected[r.Head]...)
		for _, ui := range users {
			c.unfold(c.rules[ui], r, r.Head)
		}
	}
}

// unfold replaces atom sel in body(r1) by body(r2), where head(r2) == sel.
func (c *contractor) unfold(r1, r2 Rule, sel Atom) {
	body := make([]Atom, 0, len(r1.Body)-1+len(r2.Body))
	for _, a := range r1.Body {
		if a != sel {
			body = append(body, a)
		}
	}
	body = append(body, r2.Body...)
	c.add(NewRule(r1.Head, body...))
}
