package horn

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestUniverseLayout(t *testing.T) {
	u := Universe{NumIDB: 3, NumEDB: 2}
	if u.Size() != 11 {
		t.Fatalf("Size = %d, want 11", u.Size())
	}
	cases := []struct {
		a     Atom
		space Space
		idx   int
	}{
		{u.LocalAtom(0), Local, 0},
		{u.LocalAtom(2), Local, 2},
		{u.SuperAtom(1, 0), Super1, 0},
		{u.SuperAtom(2, 2), Super2, 2},
		{u.EDBAtom(0), EDB, 0},
		{u.EDBAtom(1), EDB, 1},
	}
	for _, c := range cases {
		s, i := u.SpaceOf(c.a)
		if s != c.space || i != c.idx {
			t.Errorf("SpaceOf(%d) = %v,%d want %v,%d", c.a, s, i, c.space, c.idx)
		}
	}
	if !u.IsEDB(u.EDBAtom(1)) || u.IsEDB(u.SuperAtom(2, 2)) {
		t.Error("IsEDB misclassifies")
	}
	if u.PushDown(1, u.LocalAtom(2)) != u.SuperAtom(1, 2) {
		t.Error("PushDown(1) wrong")
	}
	if u.PushUp(2, u.SuperAtom(2, 1)) != u.LocalAtom(1) {
		t.Error("PushUp(2) wrong")
	}
}

func TestNewRuleNormalises(t *testing.T) {
	r := NewRule(5, 3, 1, 3, 2, 1)
	if !reflect.DeepEqual(r.Body, []Atom{1, 2, 3}) {
		t.Errorf("body = %v, want [1 2 3]", r.Body)
	}
}

func TestProgramCanonAndKey(t *testing.T) {
	p1 := &Program{Rules: []Rule{NewRule(2, 1), NewRule(0), NewRule(2, 1)}}
	p2 := &Program{Rules: []Rule{NewRule(0), NewRule(2, 1)}}
	p1.Canon()
	p2.Canon()
	if p1.Key() != p2.Key() {
		t.Errorf("canonical keys differ: %q vs %q", p1.Key(), p2.Key())
	}
	p3 := &Program{Rules: []Rule{NewRule(0), NewRule(2, 0)}}
	p3.Canon()
	if p3.Key() == p1.Key() {
		t.Error("distinct programs share a key")
	}
}

func TestTruePreds(t *testing.T) {
	p := (&Program{Rules: []Rule{NewRule(3), NewRule(1), NewRule(2, 1)}}).Canon()
	if got := p.TruePreds(); !reflect.DeepEqual(got, []Atom{1, 3}) {
		t.Errorf("TruePreds = %v, want [1 3]", got)
	}
}

// closure computes derivable atoms by naive iteration, as an oracle.
func closure(rules []Rule, universeSize int) []bool {
	truth := make([]bool, universeSize)
	for changed := true; changed; {
		changed = false
		for _, r := range rules {
			if truth[r.Head] {
				continue
			}
			all := true
			for _, a := range r.Body {
				if !truth[a] {
					all = false
					break
				}
			}
			if all {
				truth[r.Head] = true
				changed = true
			}
		}
	}
	return truth
}

func randomRules(rng *rand.Rand, u Universe, n int) []Rule {
	rules := make([]Rule, 0, n)
	size := u.Size()
	for i := 0; i < n; i++ {
		// Heads must be IDB (local or superscripted).
		head := Atom(rng.Intn(3 * u.NumIDB))
		body := make([]Atom, rng.Intn(4))
		for j := range body {
			body[j] = Atom(rng.Intn(size))
		}
		rules = append(rules, NewRule(head, body...))
	}
	// Some facts, including EDB facts.
	for i := 0; i < 1+rng.Intn(3); i++ {
		rules = append(rules, Rule{Head: Atom(rng.Intn(size))})
	}
	return rules
}

func TestDerivableMatchesNaiveClosure(t *testing.T) {
	u := Universe{NumIDB: 4, NumEDB: 3}
	s := NewSolver(u)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rules := randomRules(rng, u, 1+rng.Intn(12))
		got := s.Derivable(rules)
		want := closure(rules, u.Size())
		gotSet := make([]bool, u.Size())
		for _, a := range got {
			gotSet[a] = true
		}
		return reflect.DeepEqual(gotSet, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestLTURResidualEquivalence: the residual program must have exactly the
// same IDB consequences as the original under any additional IDB facts.
func TestLTURResidualEquivalence(t *testing.T) {
	u := Universe{NumIDB: 3, NumEDB: 2}
	s := NewSolver(u)
	nIDB := 3 * u.NumIDB
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rules := randomRules(rng, u, 1+rng.Intn(10))
		res := s.LTUR(rules)
		// Residual must be EDB-free.
		for _, r := range res.Rules {
			if u.IsEDB(r.Head) {
				return false
			}
			for _, a := range r.Body {
				if u.IsEDB(a) {
					return false
				}
			}
		}
		// For every subset of IDB atoms as extra facts (sampled), the
		// derivable IDB atoms agree.
		for trial := 0; trial < 8; trial++ {
			var extra []Rule
			for a := 0; a < nIDB; a++ {
				if rng.Intn(3) == 0 {
					extra = append(extra, Rule{Head: Atom(a)})
				}
			}
			w1 := closure(append(append([]Rule{}, rules...), extra...), u.Size())
			w2 := closure(append(append([]Rule{}, res.Rules...), extra...), u.Size())
			for a := 0; a < nIDB; a++ {
				if w1[a] != w2[a] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLTURDropsFalseEDBRules(t *testing.T) {
	u := Universe{NumIDB: 2, NumEDB: 2}
	s := NewSolver(u)
	// X0 <- edb0 (true fact); X1 <- edb1 (absent, so false).
	rules := []Rule{
		{Head: u.EDBAtom(0)},
		NewRule(u.LocalAtom(0), u.EDBAtom(0)),
		NewRule(u.LocalAtom(1), u.EDBAtom(1)),
	}
	res := s.LTUR(rules)
	want := (&Program{Rules: []Rule{{Head: u.LocalAtom(0)}}}).Canon()
	if res.Key() != want.Key() {
		t.Errorf("residual = %s, want %s", res, want)
	}
}

func TestLTURMinimises(t *testing.T) {
	u := Universe{NumIDB: 4, NumEDB: 0}
	s := NewSolver(u)
	// X1 <- X0; X1 <- X0,X2 (subsumed); X2 <- X2 (tautology).
	rules := []Rule{
		NewRule(1, 0),
		NewRule(1, 0, 2),
		NewRule(2, 2),
	}
	res := s.LTUR(rules)
	want := (&Program{Rules: []Rule{NewRule(1, 0)}}).Canon()
	if res.Key() != want.Key() {
		t.Errorf("residual = %s, want %s", res, want)
	}
}

// TestContractExample44 reproduces Example 4.4 of the paper exactly.
func TestContractExample44(t *testing.T) {
	u := Universe{NumIDB: 12, NumEDB: 0}
	l := func(i int) Atom { return u.LocalAtom(i) }
	s1 := func(i int) Atom { return u.SuperAtom(1, i) }
	s2 := func(i int) Atom { return u.SuperAtom(2, i) }
	p := (&Program{Rules: []Rule{
		NewRule(l(0), l(1), l(2)),
		NewRule(l(1), s1(3)),
		NewRule(l(2), s1(4)),
		NewRule(s1(3), s1(5)),
		NewRule(s1(4), s1(5), s1(6)),
		NewRule(s1(5), l(7)),
		NewRule(s1(6), l(7), l(8)),
		NewRule(l(8), s2(9), s2(10)),
		NewRule(s2(9), l(11)),
	}}).Canon()
	got := Contract(u, p)
	want := (&Program{Rules: []Rule{
		NewRule(l(0), l(1), l(2)),
		NewRule(l(1), l(7)),
		NewRule(l(2), l(7), l(8)),
	}}).Canon()
	if got.Key() != want.Key() {
		t.Errorf("Contract = %s\nwant %s", got, want)
	}
}

// TestContractPreservesLocalConsequences: for every set B of local atoms
// given as extra facts, the local atoms derivable from Contract(P) + B must
// equal those derivable from P + B (restricted to atoms derivable without
// help from dangling superscripted predicates, which Contract eliminates).
func TestContractPreservesLocalConsequences(t *testing.T) {
	u := Universe{NumIDB: 4, NumEDB: 0}
	s := NewSolver(u)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		raw := randomRules(rng, u, 1+rng.Intn(9))
		// Contract requires an LTUR residual (EDB-free, no trivial facts
		// left in bodies).
		p := s.LTUR(raw)
		q := Contract(u, p)
		// Contracted program mentions only local atoms.
		for _, r := range q.Rules {
			if !u.IsLocal(r.Head) {
				return false
			}
			for _, a := range r.Body {
				if !u.IsLocal(a) {
					return false
				}
			}
		}
		for b := 0; b < 1<<u.NumIDB; b++ {
			var extra []Rule
			for i := 0; i < u.NumIDB; i++ {
				if b&(1<<i) != 0 {
					extra = append(extra, Rule{Head: u.LocalAtom(i)})
				}
			}
			w1 := closure(append(append([]Rule{}, p.Rules...), extra...), u.Size())
			w2 := closure(append(append([]Rule{}, q.Rules...), extra...), u.Size())
			for i := 0; i < u.NumIDB; i++ {
				if w1[i] != w2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIsSubsetSorted(t *testing.T) {
	cases := []struct {
		a, b []Atom
		want bool
	}{
		{nil, nil, true},
		{nil, []Atom{1}, true},
		{[]Atom{1}, nil, false},
		{[]Atom{1, 3}, []Atom{1, 2, 3}, true},
		{[]Atom{1, 4}, []Atom{1, 2, 3}, false},
		{[]Atom{2}, []Atom{1, 2, 3}, true},
	}
	for _, c := range cases {
		if got := isSubsetSorted(c.a, c.b); got != c.want {
			t.Errorf("isSubsetSorted(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPushDownProgram(t *testing.T) {
	u := Universe{NumIDB: 3, NumEDB: 0}
	p := (&Program{Rules: []Rule{NewRule(u.LocalAtom(0), u.LocalAtom(1))}}).Canon()
	got := PushDownProgram(u, 2, p)
	want := NewRule(u.SuperAtom(2, 0), u.SuperAtom(2, 1))
	if len(got) != 1 || compareRules(got[0], want) != 0 {
		t.Errorf("PushDownProgram = %v, want %v", got, want)
	}
}

func TestPredsHelpers(t *testing.T) {
	u := Universe{NumIDB: 2, NumEDB: 1}
	atoms := []Atom{u.LocalAtom(0), u.SuperAtom(1, 1), u.SuperAtom(2, 0), u.EDBAtom(0)}
	if got := PredsInSpace(u, atoms, Super1); !reflect.DeepEqual(got, []Atom{u.SuperAtom(1, 1)}) {
		t.Errorf("PredsInSpace(Super1) = %v", got)
	}
	up := PushUpFrom(u, 1, []Atom{u.SuperAtom(1, 1)})
	if !reflect.DeepEqual(up, []Atom{u.LocalAtom(1)}) {
		t.Errorf("PushUpFrom = %v", up)
	}
	rules := PredsAsRules([]Atom{3, 5})
	if len(rules) != 2 || !rules[0].IsFact() || rules[1].Head != 5 {
		t.Errorf("PredsAsRules = %v", rules)
	}
}

// TestContractIdempotent: contracting an already-contracted program is a
// no-op.
func TestContractIdempotent(t *testing.T) {
	u := Universe{NumIDB: 4, NumEDB: 0}
	s := NewSolver(u)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := s.LTUR(randomRules(rng, u, 1+rng.Intn(9)))
		q := Contract(u, p)
		return Contract(u, q).Key() == q.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
