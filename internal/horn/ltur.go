package horn

// Solver bundles the reusable scratch state for LTUR runs over a fixed
// Universe. The two-phase engine calls LTUR once per lazily computed
// automaton transition, so allocations are kept proportional to the
// (small) program sizes, not the universe.
type Solver struct {
	u Universe

	// scratch, reused across calls; indexed by atom
	truth   []bool
	touched []Atom // atoms whose truth was set, for O(program) reset
	occ     [][]int32
	occSet  []Atom // atoms whose occ list was filled
	queue   []Atom
	counter []int32
}

// NewSolver returns a solver for the given universe.
func NewSolver(u Universe) *Solver {
	n := u.Size()
	return &Solver{
		u:     u,
		truth: make([]bool, n),
		occ:   make([][]int32, n),
	}
}

// Universe returns the solver's atom universe.
func (s *Solver) Universe() Universe { return s.u }

func (s *Solver) reset() {
	for _, a := range s.touched {
		s.truth[a] = false
	}
	s.touched = s.touched[:0]
	for _, a := range s.occSet {
		s.occ[a] = s.occ[a][:0]
	}
	s.occSet = s.occSet[:0]
	s.queue = s.queue[:0]
	s.counter = s.counter[:0]
}

func (s *Solver) setTrue(a Atom) {
	if !s.truth[a] {
		s.truth[a] = true
		s.touched = append(s.touched, a)
		s.queue = append(s.queue, a)
	}
}

// LTUR runs Minoux's linear-time unit resolution over the given rules and
// returns the residual program of Section 4.1:
//
//  1. compute the set M of all derivable predicates,
//  2. drop rules whose head is in M or whose body contains an EDB
//     predicate not in M (EDB truth is fully determined by the input
//     facts, so such rules can never fire),
//  3. remove body predicates that are in M from the remaining rules,
//  4. insert a fact for each IDB predicate in M.
//
// The result is canonical, minimised (no tautologies, no subsumed rules)
// and free of EDB predicates.
func (s *Solver) LTUR(rules []Rule) *Program {
	s.reset()

	// Build occurrence lists and unsatisfied-body counters; seed facts.
	if cap(s.counter) < len(rules) {
		s.counter = make([]int32, len(rules))
	} else {
		s.counter = s.counter[:len(rules)]
	}
	for i, r := range rules {
		s.counter[i] = int32(len(r.Body))
		if len(r.Body) == 0 {
			s.setTrue(r.Head)
			continue
		}
		for _, a := range r.Body {
			if len(s.occ[a]) == 0 {
				s.occSet = append(s.occSet, a)
			}
			s.occ[a] = append(s.occ[a], int32(i))
		}
	}

	// Unit propagation.
	for len(s.queue) > 0 {
		a := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		for _, ri := range s.occ[a] {
			s.counter[ri]--
			if s.counter[ri] == 0 {
				s.setTrue(rules[ri].Head)
			}
		}
	}

	// Residual construction.
	res := &Program{}
	for _, r := range rules {
		if len(r.Body) == 0 || s.truth[r.Head] {
			continue
		}
		keep := true
		var body []Atom
		for _, a := range r.Body {
			if s.truth[a] {
				continue
			}
			if s.u.IsEDB(a) {
				keep = false
				break
			}
			body = append(body, a)
		}
		if !keep {
			continue
		}
		nr := NewRule(r.Head, body...)
		if nr.isTautology() {
			continue
		}
		res.Rules = append(res.Rules, nr)
	}
	for _, a := range s.touched {
		if !s.u.IsEDB(a) {
			res.Rules = append(res.Rules, Rule{Head: a})
		}
	}
	res.Canon()
	minimize(res)
	return res
}

// Derivable runs plain unit propagation and returns the set of derivable
// atoms M in ascending order, without building a residual. Used by the
// top-down phase (ComputeTruePreds needs only TruePreds(LTUR(P))) and by
// tests.
func (s *Solver) Derivable(rules []Rule) []Atom {
	s.reset()
	if cap(s.counter) < len(rules) {
		s.counter = make([]int32, len(rules))
	} else {
		s.counter = s.counter[:len(rules)]
	}
	for i, r := range rules {
		s.counter[i] = int32(len(r.Body))
		if len(r.Body) == 0 {
			s.setTrue(r.Head)
			continue
		}
		for _, a := range r.Body {
			if len(s.occ[a]) == 0 {
				s.occSet = append(s.occSet, a)
			}
			s.occ[a] = append(s.occ[a], int32(i))
		}
	}
	for len(s.queue) > 0 {
		a := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		for _, ri := range s.occ[a] {
			s.counter[ri]--
			if s.counter[ri] == 0 {
				s.setTrue(rules[ri].Head)
			}
		}
	}
	out := append([]Atom(nil), s.touched...)
	sortAtoms(out)
	return out
}

// minimize removes tautologies and subsumed rules in place; p must be
// canonical on entry and remains canonical.
func minimize(p *Program) {
	// Group by head; within a group, canonical order sorts shorter bodies
	// first, so a linear scan with subset checks against kept rules works.
	kept := p.Rules[:0]
	groupStart := 0
	for i := 0; i <= len(p.Rules); i++ {
		if i < len(p.Rules) && (i == groupStart || p.Rules[i].Head == p.Rules[groupStart].Head) {
			continue
		}
		// group [groupStart, i)
		first := len(kept)
		for j := groupStart; j < i; j++ {
			r := p.Rules[j]
			if r.isTautology() {
				continue
			}
			subsumed := false
			for _, k := range kept[first:] {
				if isSubsetSorted(k.Body, r.Body) {
					subsumed = true
					break
				}
			}
			if !subsumed {
				kept = append(kept, r)
			}
		}
		groupStart = i
	}
	p.Rules = kept
}

// isSubsetSorted reports whether sorted slice a is a subset of sorted
// slice b.
func isSubsetSorted(a, b []Atom) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}
