package horn

import (
	"math/rand"
	"testing"
)

// randomBenchRules builds a random Horn rule set over a universe with
// nIDB predicates (plus superscripted spaces) — shaped like the rule
// sets ComputeReachableStates feeds to LTUR.
func randomBenchRules(rng *rand.Rand, u Universe, nRules, nFacts int) []Rule {
	atom := func() Atom { return Atom(rng.Intn(3 * u.NumIDB)) }
	rules := make([]Rule, 0, nRules+nFacts)
	for i := 0; i < nFacts; i++ {
		rules = append(rules, NewRule(atom()))
	}
	for i := 0; i < nRules; i++ {
		body := make([]Atom, 1+rng.Intn(2))
		for j := range body {
			body[j] = atom()
		}
		rules = append(rules, NewRule(atom(), body...))
	}
	return rules
}

// BenchmarkLTUR measures Minoux's unit resolution on rule sets of the
// size one lazy transition computation sees (tens of rules).
func BenchmarkLTUR(b *testing.B) {
	u := Universe{NumIDB: 30, NumEDB: 8}
	rng := rand.New(rand.NewSource(1))
	sets := make([][]Rule, 64)
	for i := range sets {
		sets[i] = randomBenchRules(rng, u, 60, 4)
	}
	s := NewSolver(u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LTUR(sets[i%len(sets)])
	}
}

// BenchmarkContract measures ContractProgram, the dominant cost of a
// bottom-up transition with children present.
func BenchmarkContract(b *testing.B) {
	u := Universe{NumIDB: 30, NumEDB: 8}
	rng := rand.New(rand.NewSource(2))
	s := NewSolver(u)
	progs := make([]*Program, 64)
	for i := range progs {
		progs[i] = s.LTUR(randomBenchRules(rng, u, 60, 4))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Contract(u, progs[i%len(progs)])
	}
}

// BenchmarkCanonKey measures state hash-consing, the per-transition
// lookup cost once tables are warm.
func BenchmarkCanonKey(b *testing.B) {
	u := Universe{NumIDB: 30, NumEDB: 8}
	rng := rand.New(rand.NewSource(3))
	s := NewSolver(u)
	p := s.LTUR(randomBenchRules(rng, u, 60, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Key()
	}
}
