package stream

import "fmt"

// Regular-expression AST over tag-name symbols. The syntax matches the
// path fragments of the paper's Section 6.2 queries, e.g.
// "S.VP.(NP.PP)*.NP": '.' concatenates, '|' alternates, '*', '+', '?'
// repeat, parentheses group, '_' is the any-tag wildcard.
type rkind uint8

const (
	rSym rkind = iota
	rCat
	rAlt
	rStar
	rPlus
	rOpt
)

type rnode struct {
	kind rkind
	sym  string
	pos  int
	l, r *rnode
}

type rparser struct {
	src string
	i   int
}

func parseRegex(src string) (*rnode, error) {
	p := &rparser{src: src}
	n, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.i != len(p.src) {
		return nil, fmt.Errorf("stream: trailing input at offset %d in %q", p.i, src)
	}
	if n == nil {
		return nil, fmt.Errorf("stream: empty regex")
	}
	return n, nil
}

func (p *rparser) ws() {
	for p.i < len(p.src) && (p.src[p.i] == ' ' || p.src[p.i] == '\t' || p.src[p.i] == '\n') {
		p.i++
	}
}

func (p *rparser) alt() (*rnode, error) {
	l, err := p.cat()
	if err != nil {
		return nil, err
	}
	p.ws()
	for p.i < len(p.src) && p.src[p.i] == '|' {
		p.i++
		r, err := p.cat()
		if err != nil {
			return nil, err
		}
		if l == nil || r == nil {
			return nil, fmt.Errorf("stream: empty alternative at offset %d", p.i)
		}
		l = &rnode{kind: rAlt, l: l, r: r}
		p.ws()
	}
	return l, nil
}

func (p *rparser) cat() (*rnode, error) {
	var l *rnode
	for {
		p.ws()
		if p.i >= len(p.src) || p.src[p.i] == '|' || p.src[p.i] == ')' {
			return l, nil
		}
		if p.src[p.i] == '.' {
			p.i++
			continue
		}
		f, err := p.factor()
		if err != nil {
			return nil, err
		}
		if l == nil {
			l = f
		} else {
			l = &rnode{kind: rCat, l: l, r: f}
		}
	}
}

func (p *rparser) factor() (*rnode, error) {
	base, err := p.base()
	if err != nil {
		return nil, err
	}
	for p.i < len(p.src) {
		switch p.src[p.i] {
		case '*':
			base = &rnode{kind: rStar, l: base}
			p.i++
		case '+':
			base = &rnode{kind: rPlus, l: base}
			p.i++
		case '?':
			base = &rnode{kind: rOpt, l: base}
			p.i++
		default:
			return base, nil
		}
	}
	return base, nil
}

func (p *rparser) base() (*rnode, error) {
	p.ws()
	if p.i >= len(p.src) {
		return nil, fmt.Errorf("stream: unexpected end of regex")
	}
	if p.src[p.i] == '(' {
		p.i++
		n, err := p.alt()
		if err != nil {
			return nil, err
		}
		p.ws()
		if p.i >= len(p.src) || p.src[p.i] != ')' {
			return nil, fmt.Errorf("stream: missing ')' at offset %d", p.i)
		}
		p.i++
		if n == nil {
			return nil, fmt.Errorf("stream: empty group at offset %d", p.i)
		}
		return n, nil
	}
	start := p.i
	for p.i < len(p.src) && isSymByte(p.src[p.i]) {
		p.i++
	}
	if p.i == start {
		return nil, fmt.Errorf("stream: unexpected %q at offset %d", p.src[p.i], p.i)
	}
	return &rnode{kind: rSym, sym: p.src[start:p.i]}, nil
}

func isSymByte(c byte) bool {
	return c == '_' || c == '-' || c == '@' ||
		'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}
