package stream

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"arb/internal/testutil"
	"arb/internal/tree"
	"arb/internal/xmlparse"
)

func runOn(t *testing.T, q Query, src string) *Session {
	t.Helper()
	m, err := Compile(q)
	if err != nil {
		t.Fatalf("Compile(%q): %v", q.Regex, err)
	}
	s := m.NewSession()
	if err := xmlparse.Parse(strings.NewReader(src), s, xmlparse.Opts{}); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestMatchRootAnchored(t *testing.T) {
	// Document order: r=0, a=1, b=2, a=3, c=4.
	src := `<r><a><b/></a><a><c/></a></r>`
	cases := []struct {
		regex string
		want  []int64
	}{
		{"r", []int64{0}},
		{"r.a", []int64{1, 3}},
		{"r.a.b", []int64{2}},
		{"r.a.(b|c)", []int64{2, 4}},
		{"r.a.c", []int64{4}},
		{"a", nil},
		{"r._._", []int64{2, 4}},
		{"r.a*.b", []int64{2}},
		{"r.a+.b", []int64{2}},
		{"r.b", nil},
	}
	for _, c := range cases {
		s := runOn(t, Query{Regex: c.regex}, src)
		if fmt.Sprint(s.Matches()) != fmt.Sprint(c.want) {
			t.Errorf("%q: matches %v, want %v", c.regex, s.Matches(), c.want)
		}
	}
}

func TestMatchAnyPrefix(t *testing.T) {
	src := `<r><a><b/></a><a><c/></a></r>`
	cases := []struct {
		regex string
		want  []int64
	}{
		{"a", []int64{1, 3}},
		{"b", []int64{2}},
		{"a.b", []int64{2}},
		{"r.a.b", []int64{2}},
		{"b.c", nil},
	}
	for _, c := range cases {
		s := runOn(t, Query{Regex: c.regex, AnyPrefix: true}, src)
		if fmt.Sprint(s.Matches()) != fmt.Sprint(c.want) {
			t.Errorf("//%q: matches %v, want %v", c.regex, s.Matches(), c.want)
		}
	}
}

func TestCharNodesAdvanceIDs(t *testing.T) {
	// r=0, 'h'=1, 'i'=2, a=3.
	s := runOn(t, Query{Regex: "r.a"}, `<r>hi<a/></r>`)
	if fmt.Sprint(s.Matches()) != fmt.Sprint([]int64{3}) {
		t.Fatalf("matches %v, want [3]", s.Matches())
	}
}

func TestMaxDepth(t *testing.T) {
	s := runOn(t, Query{Regex: "r"}, `<r><a><b><c/></b></a><a/></r>`)
	if s.MaxDepth() != 4 {
		t.Fatalf("MaxDepth = %d, want 4", s.MaxDepth())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "a|", "(a", "a)", "*", "a..b |", "(|a)"} {
		if _, err := Compile(Query{Regex: bad}); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", bad)
		}
	}
}

func TestLazyDFAGrowth(t *testing.T) {
	m, err := Compile(Query{Regex: "r.(a.b)*.c"})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTransitions() != 0 {
		t.Fatalf("transitions computed eagerly: %d", m.NumTransitions())
	}
	s := m.NewSession()
	if err := xmlparse.Parse(strings.NewReader(`<r><a><b><c/></b></a></r>`), s, xmlparse.Opts{}); err != nil {
		t.Fatal(err)
	}
	if m.NumTransitions() == 0 || m.NumDFAStates() == 0 {
		t.Fatal("lazy DFA did not grow during the run")
	}
}

// randomPathRegex builds a random regex over single-letter tags and the
// same regex in Go regexp syntax (one char per tag), the independent
// matching oracle.
func randomPathRegex(rng *rand.Rand) (ours, gore string) {
	tags := []string{"a", "b", "c"}
	var gen func(depth int) (string, string)
	gen = func(depth int) (string, string) {
		if depth > 2 || rng.Intn(3) == 0 {
			t := tags[rng.Intn(len(tags))]
			return t, t
		}
		switch rng.Intn(4) {
		case 0:
			o1, g1 := gen(depth + 1)
			o2, g2 := gen(depth + 1)
			return o1 + "." + o2, g1 + g2
		case 1:
			o1, g1 := gen(depth + 1)
			o2, g2 := gen(depth + 1)
			return "(" + o1 + "|" + o2 + ")", "(" + g1 + "|" + g2 + ")"
		case 2:
			o, g := gen(depth + 1)
			return "(" + o + ")*", "(" + g + ")*"
		default:
			o, g := gen(depth + 1)
			return "(" + o + ")?", "(" + g + ")?"
		}
	}
	return gen(0)
}

// TestDifferentialAgainstRegexp matches random path regexes on random
// trees and compares against direct root-path matching with the standard
// library's regexp on the tag-character path strings.
func TestDifferentialAgainstRegexp(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 200; iter++ {
		tr := testutil.RandomTree(rng, 30)
		ours, gore := randomPathRegex(rng)
		anyPrefix := rng.Intn(2) == 0

		var re *regexp.Regexp
		if anyPrefix {
			re = regexp.MustCompile("(" + gore + ")$")
		} else {
			re = regexp.MustCompile("^(" + gore + ")$")
		}

		m, err := Compile(Query{Regex: ours, AnyPrefix: anyPrefix})
		if err != nil {
			t.Fatalf("Compile(%q): %v", ours, err)
		}
		s := m.NewSession()
		if err := tree.Emit(tr, s); err != nil {
			t.Fatal(err)
		}
		got := map[int64]bool{}
		for _, id := range s.Matches() {
			got[id] = true
		}

		// Oracle: compute each element node's root path string.
		paths := rootPaths(tr)
		for v := 0; v < tr.Len(); v++ {
			if tr.Label(tree.NodeID(v)).IsChar() {
				if got[int64(v)] {
					t.Fatalf("iter %d: matched character node %d", iter, v)
				}
				continue
			}
			want := re.MatchString(paths[v])
			if got[int64(v)] != want {
				t.Fatalf("iter %d: regex %q (prefix=%v) node %d path %q: got %v, want %v",
					iter, ours, anyPrefix, v, paths[v], got[int64(v)], want)
			}
		}
	}
}

// rootPaths returns, per node, the document root path as a string of tag
// characters (single-letter tags assumed; character nodes get empty
// strings).
func rootPaths(t *tree.Tree) []string {
	n := t.Len()
	paths := make([]string, n)
	// Document parent: first child's doc parent is the node; second
	// child's doc parent is the node's doc parent.
	docParent := make([]tree.NodeID, n)
	docParent[0] = tree.None
	for v := 0; v < n; v++ {
		if c := t.First(tree.NodeID(v)); c != tree.None {
			docParent[c] = tree.NodeID(v)
		}
		if c := t.Second(tree.NodeID(v)); c != tree.None {
			docParent[c] = docParent[v]
		}
	}
	for v := 0; v < n; v++ {
		l := t.Label(tree.NodeID(v))
		if l.IsChar() {
			continue
		}
		name, _ := t.Names().TagName(l)
		if p := docParent[v]; p == tree.None {
			paths[v] = name
		} else {
			paths[v] = paths[p] + name
		}
	}
	return paths
}
