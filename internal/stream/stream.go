// Package stream implements the one-pass streaming query class the paper
// contrasts itself with (Section 1, [12]): simple downward path queries
// matched by a deterministic word automaton over root-to-node label paths,
// maintained with a stack of automaton states during a single forward scan
// of the document events.
//
// A matcher selects element nodes whose root path matches a regular
// expression over tag names. This is strictly less expressive than the
// engine's MSO fragment — no upward or sideways moves, no conditions on
// what follows in the stream — but needs only one pass and no temporary
// storage; the benchmark harness uses it to quantify the cost of the
// second pass on queries both systems can express.
//
// The DFA is computed lazily by the subset construction over a Glushkov
// position NFA, mirroring how the two-phase engine computes its tree
// automata lazily.
package stream

import (
	"fmt"
	"sort"
	"strings"
)

// Query is a root-path query: a regular expression over tag-name symbols
// (syntax: names, '.', '|', '*', '+', '?', parentheses; '_' matches any
// element tag). With AnyPrefix, the match may start at any depth
// (a leading //), i.e. the regex is matched against a suffix of the path.
type Query struct {
	Regex     string
	AnyPrefix bool
}

// Matcher is a compiled query. It is stateless and safe to share; each
// document run needs its own Session.
type Matcher struct {
	q        Query
	symbols  map[string]int // tag name -> symbol id; wildcard excluded
	follow   [][]int        // Glushkov follow sets per position
	posSym   []int          // symbol of each position; -1 = wildcard
	first    []int
	lastSet  map[int]bool
	nullable bool

	// lazy DFA
	dfa     map[dfaKey]int
	states  []posSet
	index   map[string]int
	accepts []bool
}

type dfaKey struct {
	state int
	sym   int
}

// posSet is a DFA state: the candidate positions for the next symbol,
// plus whether the symbol that led here completed a match (Glushkov
// states track positions already consumed, so acceptance is a property of
// the transition taken, recorded in the target state).
type posSet struct {
	set      []int
	accepted bool
}

func (s posSet) key() string {
	var b strings.Builder
	if s.accepted {
		b.WriteByte('!')
	}
	for _, p := range s.set {
		fmt.Fprintf(&b, "%d,", p)
	}
	return b.String()
}

// Compile parses and compiles the query.
func Compile(q Query) (*Matcher, error) {
	ast, err := parseRegex(q.Regex)
	if err != nil {
		return nil, err
	}
	m := &Matcher{
		q:       q,
		symbols: map[string]int{},
		dfa:     map[dfaKey]int{},
		index:   map[string]int{},
		lastSet: map[int]bool{},
	}
	m.build(ast)
	return m, nil
}

// build runs the Glushkov position construction.
func (m *Matcher) build(ast *rnode) {
	var number func(n *rnode)
	number = func(n *rnode) {
		switch n.kind {
		case rSym:
			n.pos = len(m.posSym)
			if n.sym == "_" {
				m.posSym = append(m.posSym, -1)
			} else {
				id, ok := m.symbols[n.sym]
				if !ok {
					id = len(m.symbols)
					m.symbols[n.sym] = id
				}
				m.posSym = append(m.posSym, id)
			}
		case rCat, rAlt:
			number(n.l)
			number(n.r)
		case rStar, rOpt, rPlus:
			number(n.l)
		}
	}
	number(ast)
	m.follow = make([][]int, len(m.posSym))

	var analyse func(n *rnode) (nullable bool, first, last []int)
	analyse = func(n *rnode) (bool, []int, []int) {
		switch n.kind {
		case rSym:
			return false, []int{n.pos}, []int{n.pos}
		case rCat:
			ln, lf, ll := analyse(n.l)
			rn, rf, rl := analyse(n.r)
			for _, p := range ll {
				m.follow[p] = appendUnique(m.follow[p], rf)
			}
			first := lf
			if ln {
				first = appendUnique(append([]int(nil), lf...), rf)
			}
			last := rl
			if rn {
				last = appendUnique(append([]int(nil), rl...), ll)
			}
			return ln && rn, first, last
		case rAlt:
			ln, lf, ll := analyse(n.l)
			rn, rf, rl := analyse(n.r)
			return ln || rn, appendUnique(append([]int(nil), lf...), rf), appendUnique(append([]int(nil), ll...), rl)
		case rStar, rPlus:
			ln, lf, ll := analyse(n.l)
			for _, p := range ll {
				m.follow[p] = appendUnique(m.follow[p], lf)
			}
			return ln || n.kind == rStar, lf, ll
		case rOpt:
			_, lf, ll := analyse(n.l)
			return true, lf, ll
		}
		panic("unreachable")
	}
	nullable, first, last := analyse(ast)
	m.nullable = nullable
	m.first = first
	for _, p := range last {
		m.lastSet[p] = true
	}
}

func appendUnique(dst, src []int) []int {
	for _, x := range src {
		found := false
		for _, y := range dst {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, x)
		}
	}
	return dst
}

// internState canonicalises and interns a DFA state.
func (m *Matcher) internState(ps []int, accepted bool) int {
	sort.Ints(ps)
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p != ps[i-1] {
			out = append(out, p)
		}
	}
	set := posSet{set: out, accepted: accepted}
	k := set.key()
	if id, ok := m.index[k]; ok {
		return id
	}
	id := len(m.states)
	m.states = append(m.states, set)
	m.index[k] = id
	m.accepts = append(m.accepts, accepted)
	return id
}

// startState is the DFA state before any symbol is read. For a
// root-anchored query it "accepts" iff the regex is nullable, but the
// start state is never a node's state, so this only matters to the empty
// path.
func (m *Matcher) startState() int {
	return m.internState(append([]int(nil), m.first...), m.nullable)
}

// step advances the DFA by one tag symbol, computing the transition
// lazily. Unknown tags map to a shared out-of-alphabet symbol that only
// wildcard positions can consume.
func (m *Matcher) step(state int, tag string) int {
	sym, ok := m.symbols[tag]
	if !ok {
		sym = len(m.symbols) // out-of-alphabet
	}
	key := dfaKey{state, sym}
	if next, ok := m.dfa[key]; ok {
		return next
	}
	var ps []int
	accepted := false
	for _, p := range m.states[state].set {
		if m.posSym[p] == sym || m.posSym[p] == -1 {
			ps = append(ps, m.follow[p]...)
			if m.lastSet[p] {
				accepted = true
			}
		}
	}
	if m.q.AnyPrefix {
		// Restart the match at every depth: a path suffix may begin here.
		ps = append(ps, m.first...)
		if m.nullable {
			// The empty suffix ends at every node.
			accepted = true
		}
	}
	next := m.internState(ps, accepted)
	m.dfa[key] = next
	return next
}

// matchesAt reports whether the state reached after consuming a path is
// accepting (for the empty path, whether the regex is nullable).
func (m *Matcher) accepting(state int) bool { return m.accepts[state] }

// NumDFAStates reports the number of DFA states computed so far (lazy).
func (m *Matcher) NumDFAStates() int { return len(m.states) }

// NumTransitions reports the number of DFA transitions computed so far.
func (m *Matcher) NumTransitions() int { return len(m.dfa) }
