package stream

// Session runs a compiled matcher over one document event stream. It
// implements the xmlparse.Handler event surface (Begin/Text/End), so it
// can be fed directly from an XML parser, a tree walk, or a database
// scan. Memory use is one DFA state per open element — the stack of [12].
type Session struct {
	m        *Matcher
	stack    []int
	node     int64 // document-order node id (elements and characters)
	maxDepth int

	matches []int64
	count   int64
	keepIDs bool
}

// NewSession starts a run that records the document-order ids of matched
// element nodes.
func (m *Matcher) NewSession() *Session {
	return &Session{m: m, keepIDs: true}
}

// NewCountingSession starts a run that only counts matches (no per-match
// allocation; used by benchmarks on huge streams).
func (m *Matcher) NewCountingSession() *Session {
	return &Session{m: m}
}

// Begin consumes an element-open event.
func (s *Session) Begin(name string) error {
	var state int
	if len(s.stack) == 0 {
		state = s.m.startState()
	} else {
		state = s.stack[len(s.stack)-1]
	}
	next := s.m.step(state, name)
	s.stack = append(s.stack, next)
	if len(s.stack) > s.maxDepth {
		s.maxDepth = len(s.stack)
	}
	if s.m.accepting(next) {
		s.count++
		if s.keepIDs {
			s.matches = append(s.matches, s.node)
		}
	}
	s.node++
	return nil
}

// Text consumes a text event; character nodes advance the node counter
// but never match a tag-path query.
func (s *Session) Text(b []byte) error {
	s.node += int64(len(b))
	return nil
}

// End consumes an element-close event.
func (s *Session) End() error {
	s.stack = s.stack[:len(s.stack)-1]
	return nil
}

// Matches returns the document-order ids of the matched element nodes.
func (s *Session) Matches() []int64 { return s.matches }

// Count returns the number of matched element nodes.
func (s *Session) Count() int64 { return s.count }

// MaxDepth returns the peak stack depth observed — by construction the
// document depth, the paper's memory bound for stream processing.
func (s *Session) MaxDepth() int { return s.maxDepth }
