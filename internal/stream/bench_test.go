package stream_test

import (
	"testing"

	"arb/internal/stream"
	"arb/internal/tree"
	"arb/internal/workload"
)

// BenchmarkMatchTreebank measures the one-pass matcher's per-node cost
// on a Treebank-like document — the [12] baseline's steady state.
func BenchmarkMatchTreebank(b *testing.B) {
	t, err := workload.TreebankTree(workload.TreebankConfig{Seed: 1, Sentences: 2000})
	if err != nil {
		b.Fatal(err)
	}
	m, err := stream.Compile(stream.Query{Regex: "S.VP.(NP.PP)*.NP", AnyPrefix: true})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(t.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := m.NewCountingSession()
		if err := tree.Emit(t, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile measures query compilation (Glushkov construction;
// the DFA itself is lazy).
func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := stream.Compile(stream.Query{Regex: "S.VP.(NP.PP)*.(NP|S).VP?"}); err != nil {
			b.Fatal(err)
		}
	}
}
