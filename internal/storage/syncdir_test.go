package storage

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// withSyncDirHooks swaps the directory-sync test hooks for the duration
// of a test, restoring them on cleanup.
func withSyncDirHooks(t *testing.T, open func(string) (*os.File, error), fsync func(*os.File) error) {
	t.Helper()
	origOpen, origFsync := openDirForSync, fsyncDirFile
	if open != nil {
		openDirForSync = open
	}
	if fsync != nil {
		fsyncDirFile = fsync
	}
	t.Cleanup(func() {
		openDirForSync, fsyncDirFile = origOpen, origFsync
	})
}

// TestSyncDirRunsOnCommitPaths proves the rename-commit paths actually
// reach the directory fsync: without it a crash after the rename can
// lose the committed file entirely (the durability bug this PR fixes).
func TestSyncDirRunsOnCommitPaths(t *testing.T) {
	calls := 0
	origOpen := openDirForSync
	withSyncDirHooks(t, func(dir string) (*os.File, error) {
		calls++
		return origOpen(dir)
	}, nil)

	dir := t.TempDir()
	base := filepath.Join(dir, "db")
	db, err := CreateFullBinary(base, 8, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.Index(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	calls = 0
	if err := WriteIndexFile(base+".idx", ix, nil); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("WriteIndexFile synced the directory %d times, want 1", calls)
	}

	// CompressInPlace commits twice: the container rename and the
	// rebuilt sidecar.
	calls = 0
	if _, err := CompressInPlace(base, CodecLZ, 0); err != nil {
		t.Fatal(err)
	}
	if calls < 2 {
		t.Fatalf("CompressInPlace synced the directory %d times, want >= 2", calls)
	}
}

// TestSyncDirFailureSurfaces injects a failure opening the directory:
// the commit must report it rather than claim durability it does not
// have.
func TestSyncDirFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "db")
	db, err := CreateFullBinary(base, 6, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.Index(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected: directory unreachable")
	withSyncDirHooks(t, func(dir string) (*os.File, error) { return nil, boom }, nil)
	if err := WriteIndexFile(base+".idx", ix, nil); !errors.Is(err, boom) {
		t.Fatalf("WriteIndexFile error = %v, want the injected sync failure", err)
	}
}

// TestSyncDirToleratesUnsupportedFsync covers filesystems that refuse
// fsync on a directory handle: the error is swallowed (the rename
// happened; durability is no worse than before) and the commit
// succeeds.
func TestSyncDirToleratesUnsupportedFsync(t *testing.T) {
	withSyncDirHooks(t, nil, func(f *os.File) error {
		return errors.New("injected: EINVAL fsync on directory")
	})

	dir := t.TempDir()
	base := filepath.Join(dir, "db")
	db, err := CreateFullBinary(base, 6, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.Index(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := WriteIndexFile(base+".idx", ix, nil); err != nil {
		t.Fatalf("WriteIndexFile failed on ignorable fsync error: %v", err)
	}
	if _, _, err := ReadIndexFileInfo(base + ".idx"); err != nil {
		t.Fatalf("committed sidecar unreadable: %v", err)
	}
	if !strings.HasSuffix(base, "db") {
		t.Fatalf("unexpected base %q", base)
	}
}
