package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"

	"arb/internal/tree"
)

// RecordSink receives binary-tree records in preorder during CreateBinary.
type RecordSink func(label tree.Label, hasFirst, hasSecond bool) error

// CreateBinary writes a database from a preorder stream of binary-tree
// records. Unlike Create, which consumes *document* events and produces
// the first-child/next-sibling encoding, CreateBinary stores the records
// verbatim: the caller supplies an arbitrary binary tree directly. This is
// the creation path for the paper's alternative binary tree model (the
// [8] balanced model behind ACGT-infix), where the .arb first/second
// children are the binary tree's own left/right children.
//
// feed must emit the nodes of one binary tree in preorder (node, first
// subtree, second subtree); structure is validated with a counting stack
// before the database is opened.
func CreateBinary(base string, names *tree.Names, feed func(emit RecordSink) error) (*DB, error) {
	arbF, err := os.Create(base + ".arb")
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(arbF, defaultBufSize)
	var buf [NodeSize]byte
	var n int64
	// pending counts, per open node, how many of its announced children
	// have not begun yet; preorder validity means the stream is exactly
	// one tree iff pending drains to zero at the end and never before.
	var pending []uint8
	var werr error
	emit := func(label tree.Label, hasFirst, hasSecond bool) error {
		if werr != nil {
			return werr
		}
		if n > 0 && len(pending) == 0 {
			werr = fmt.Errorf("storage: record %d begins a second tree", n)
			return werr
		}
		if err := checkLabel(uint16(label)); err != nil {
			werr = err
			return werr
		}
		k := uint8(0)
		if hasFirst {
			k++
		}
		if hasSecond {
			k++
		}
		if k > 0 {
			pending = append(pending, k)
		} else {
			// A leaf completes its own subtree and possibly, cascading,
			// the subtrees of ancestors whose last child this closes.
			for len(pending) > 0 {
				pending[len(pending)-1]--
				if pending[len(pending)-1] > 0 {
					break
				}
				pending = pending[:len(pending)-1]
			}
		}
		r := Record{Label: uint16(label), HasFirst: hasFirst, HasSecond: hasSecond}
		binary.BigEndian.PutUint16(buf[:], r.Encode())
		if _, err := w.Write(buf[:]); err != nil {
			werr = err
			return werr
		}
		n++
		return nil
	}
	if err := feed(emit); err != nil {
		arbF.Close()
		return nil, err
	}
	if werr != nil {
		arbF.Close()
		return nil, werr
	}
	if n == 0 {
		arbF.Close()
		return nil, fmt.Errorf("storage: empty binary feed")
	}
	if len(pending) != 0 {
		arbF.Close()
		return nil, fmt.Errorf("storage: binary feed ended with %d incomplete nodes", len(pending))
	}
	if err := w.Flush(); err != nil {
		arbF.Close()
		return nil, err
	}
	if err := arbF.Close(); err != nil {
		return nil, err
	}
	labF, err := os.Create(base + ".lab")
	if err != nil {
		return nil, err
	}
	if _, err := names.WriteTo(labF); err != nil {
		labF.Close()
		return nil, err
	}
	if err := labF.Close(); err != nil {
		return nil, err
	}
	db, err := Open(base)
	if err != nil {
		return nil, err
	}
	if err := db.WriteIndex(nil, 0); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}
