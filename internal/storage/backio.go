package storage

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// defaultBufSize is the buffer size for sequential (forward and backward)
// I/O. Backward scans read the file in large chunks from the end so the
// disk still sees (reverse-)sequential access patterns.
const defaultBufSize = 1 << 18

// backBufPool recycles BackwardReader buffers: the skipping scan paths
// open one reader per region between extents, and pooling the 256 KB
// buffers keeps allocation churn flat however many extents a frontier or
// pruning plan has. Readers return their buffer through Release.
var backBufPool = sync.Pool{
	New: func() interface{} { return make([]byte, defaultBufSize) },
}

// BackwardReader reads a section of a file from its end towards its start
// in fixed-size units, buffering chunk-wise. It is used for the bottom-up
// .arb scan, for reading the event file backwards during database
// creation, and for reading the phase-1 state file in preorder. Because it
// uses ReadAt exclusively, any number of BackwardReaders may share one
// file handle concurrently — the parallel disk evaluator gives each
// worker its own reader over its own chunk.
type BackwardReader struct {
	f        io.ReaderAt
	start    int64 // lower bound of the section (inclusive)
	pos      int64 // file offset of the start of buf's valid region
	raw      []byte
	buf      []byte
	have     int // number of valid bytes at the end of buf region
	unitSize int
}

// NewBackwardReader returns a reader over f positioned at offset end,
// yielding units of unitSize bytes from the end backwards to offset 0.
// end must be a multiple of unitSize.
func NewBackwardReader(f io.ReaderAt, end int64, unitSize int) (*BackwardReader, error) {
	return NewBackwardSectionReader(f, 0, end, unitSize)
}

// NewBackwardSectionReader returns a reader yielding the units of
// f[start:end] from the end backwards; Next returns io.EOF once start is
// reached. end-start must be a multiple of unitSize.
func NewBackwardSectionReader(f io.ReaderAt, start, end int64, unitSize int) (*BackwardReader, error) {
	if start < 0 || end < start {
		return nil, fmt.Errorf("storage: bad backward section [%d, %d)", start, end)
	}
	if (end-start)%int64(unitSize) != 0 {
		return nil, fmt.Errorf("storage: section size %d not a multiple of unit size %d", end-start, unitSize)
	}
	raw := backBufPool.Get().([]byte)
	return &BackwardReader{f: f, start: start, pos: end, unitSize: unitSize, raw: raw,
		buf: raw[:defaultBufSize/unitSize*unitSize]}, nil
}

// Release returns the reader's buffer to the shared pool. The reader (and
// any slice Next returned) must not be used afterwards. Releasing is
// optional — an unreleased buffer is simply garbage-collected.
func (r *BackwardReader) Release() {
	if r.raw != nil {
		backBufPool.Put(r.raw)
		r.raw, r.buf, r.have = nil, nil, 0
	}
}

// Skip moves the reader backwards past units whole units without reading
// them — the seek primitive behind selectivity-aware pruning (the skipped
// section of a state file was never written, so it must never be read).
func (r *BackwardReader) Skip(units int64) error {
	n := units * int64(r.unitSize)
	if n < 0 {
		return fmt.Errorf("storage: negative backward skip")
	}
	if buffered := int64(r.have); n <= buffered {
		r.have -= int(n)
		return nil
	} else {
		n -= buffered
		r.have = 0
	}
	if r.pos-n < r.start {
		return fmt.Errorf("storage: backward skip of %d units crosses the section start", units)
	}
	r.pos -= n
	return nil
}

// Next returns the next unit (moving backwards), or io.EOF when the start
// of the section has been reached. The returned slice is valid until the
// following call.
func (r *BackwardReader) Next() ([]byte, error) {
	if r.have == 0 {
		if r.pos == r.start {
			return nil, io.EOF
		}
		n := int64(len(r.buf))
		if n > r.pos-r.start {
			n = r.pos - r.start
		}
		r.pos -= n
		if _, err := r.f.ReadAt(r.buf[:n], r.pos); err != nil {
			return nil, err
		}
		r.have = int(n)
	}
	r.have -= r.unitSize
	return r.buf[r.have : r.have+r.unitSize], nil
}

// BackwardWriter writes a file back-to-front: the first Prepend call
// produces the bytes at the end of the file, the last one the bytes at
// offset 0. The total size must be known in advance. Writes are buffered
// so the disk sees large reverse-sequential writes.
type BackwardWriter struct {
	f    *os.File
	pos  int64 // file offset just past the next flush region
	buf  []byte
	used int // bytes currently occupied at the *end* of buf
	err  error
}

// NewBackwardWriter returns a writer that will fill f from offset size
// down to 0.
func NewBackwardWriter(f *os.File, size int64) *BackwardWriter {
	return &BackwardWriter{f: f, pos: size, buf: make([]byte, defaultBufSize)}
}

// Prepend writes b logically before everything written so far.
func (w *BackwardWriter) Prepend(b []byte) {
	if w.err != nil {
		return
	}
	for len(b) > 0 {
		free := len(w.buf) - w.used
		if free == 0 {
			w.flush()
			if w.err != nil {
				return
			}
			free = len(w.buf)
		}
		n := len(b)
		if n > free {
			n = free
		}
		// Copy the *tail* of b into the space just before the currently
		// used region at the end of buf.
		copy(w.buf[len(w.buf)-w.used-n:len(w.buf)-w.used], b[len(b)-n:])
		w.used += n
		b = b[:len(b)-n]
	}
}

func (w *BackwardWriter) flush() {
	if w.used == 0 || w.err != nil {
		return
	}
	start := w.pos - int64(w.used)
	if start < 0 {
		w.err = fmt.Errorf("storage: backward writer overflow (wrote past offset 0)")
		return
	}
	if _, err := w.f.WriteAt(w.buf[len(w.buf)-w.used:], start); err != nil {
		w.err = err
		return
	}
	w.pos = start
	w.used = 0
}

// Close flushes the writer and verifies the file was filled exactly.
func (w *BackwardWriter) Close() error {
	w.flush()
	if w.err != nil {
		return w.err
	}
	if w.pos != 0 {
		return fmt.Errorf("storage: backward writer finished at offset %d, want 0", w.pos)
	}
	return nil
}
