package storage

import (
	"context"
	"path/filepath"
	"testing"

	"arb/internal/tree"
)

func benchDB(b *testing.B) *DB {
	b.Helper()
	// A moderately deep document of ~260k nodes.
	bld := tree.NewBuilder(nil)
	var gen func(depth, fanout int)
	gen = func(depth, fanout int) {
		if err := bld.Begin("n"); err != nil {
			b.Fatal(err)
		}
		if depth > 0 {
			for i := 0; i < fanout; i++ {
				gen(depth-1, fanout)
			}
		}
		if err := bld.End(); err != nil {
			b.Fatal(err)
		}
	}
	gen(8, 4)
	t, err := bld.Tree()
	if err != nil {
		b.Fatal(err)
	}
	db, err := CreateFromTree(filepath.Join(b.TempDir(), "db"), t)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// BenchmarkScanTopDown measures the forward linear scan (phase 2's I/O
// pattern) with a trivial visitor.
func BenchmarkScanTopDown(b *testing.B) {
	db := benchDB(b)
	b.SetBytes(db.N * NodeSize)
	for i := 0; i < b.N; i++ {
		if _, err := ScanTopDown(context.Background(), db, func(v int64, rec Record, parent *struct{}, k int) (struct{}, error) {
			return struct{}{}, nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFoldBottomUp measures the backward linear scan (phase 1's
// I/O pattern).
func BenchmarkFoldBottomUp(b *testing.B) {
	db := benchDB(b)
	b.SetBytes(db.N * NodeSize)
	for i := 0; i < b.N; i++ {
		if _, _, err := FoldBottomUp(context.Background(), db, func(first, second *struct{}, rec Record, v int64) struct{} {
			return struct{}{}
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCreate measures the two-pass database creation scheme.
func BenchmarkCreate(b *testing.B) {
	dir := b.TempDir()
	feed := func(ew *EventWriter) error {
		var gen func(depth, fanout int) error
		gen = func(depth, fanout int) error {
			if err := ew.Begin("n"); err != nil {
				return err
			}
			if err := ew.Text([]byte("xy")); err != nil {
				return err
			}
			if depth > 0 {
				for i := 0; i < fanout; i++ {
					if err := gen(depth-1, fanout); err != nil {
						return err
					}
				}
			}
			return ew.End()
		}
		return gen(7, 4)
	}
	var n int64
	for i := 0; i < b.N; i++ {
		db, stats, err := Create(filepath.Join(dir, "db"), feed, CreateOpts{})
		if err != nil {
			b.Fatal(err)
		}
		n = stats.ElemNodes + stats.CharNodes
		db.Close()
	}
	b.SetBytes(n * NodeSize)
}
