package storage

import (
	"bufio"
	"container/heap"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// Extent is a contiguous preorder node range [Root, Root+Size) of the
// .arb file — exactly the extent of one binary subtree rooted at Root.
// The corresponding byte range of the .arb file is
// [Root*NodeSize, (Root+Size)*NodeSize).
type Extent struct {
	Root int64
	Size int64
}

// End returns the exclusive upper node bound of the extent.
func (x Extent) End() int64 { return x.Root + x.Size }

// IndexEntry records the extent of one subtree plus the split point
// between its children: the first child (if any) spans
// [V+1, V+1+FirstSize) and the second child the rest of [V, V+Size).
type IndexEntry struct {
	V         int64 // preorder index of the subtree root
	Size      int64 // number of nodes in the subtree
	FirstSize int64 // size of the first-child subtree (0 if absent)
}

// SubtreeIndex holds the extents of the heaviest subtrees of a database —
// a rooted top fragment of the tree (a node's parent always has a
// strictly larger subtree, so the k largest subtrees form a connected
// fragment containing the root). It is the chunk index behind parallel
// secondary-storage evaluation: Cut partitions the .arb file into a
// frontier of contiguous subtree byte ranges without touching the data.
//
// The index is bounded (DefaultIndexBudget entries) regardless of
// database size, is built in one backward linear scan with memory
// proportional to the document depth, and can be persisted as a base.idx
// sidecar so later runs pay no extra scan at all.
type SubtreeIndex struct {
	N       int64 // node count of the database the index describes
	entries []IndexEntry
	byV     map[int64]int
}

// DefaultIndexBudget is the default maximum number of index entries —
// small enough that the index is a footnote next to the database (96 KB
// on disk), large enough to cut thousands of chunks.
const DefaultIndexBudget = 4096

// entryHeap is a min-heap of index entries by subtree size.
type entryHeap []IndexEntry

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].Size < h[j].Size }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(IndexEntry)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// BuildIndex scans the database backwards once (stack bounded by the
// document depth, as in Proposition 5.1) and returns the index of its up
// to budget largest subtrees. budget <= 0 selects DefaultIndexBudget.
func BuildIndex(db *DB, budget int) (*SubtreeIndex, error) {
	if budget <= 0 {
		budget = DefaultIndexBudget
	}
	h := make(entryHeap, 0, budget+1)
	_, _, err := FoldBottomUp(context.Background(), db, func(first, second *int64, rec Record, v int64) int64 {
		size, firstSize := int64(1), int64(0)
		if first != nil {
			size += *first
			firstSize = *first
		}
		if second != nil {
			size += *second
		}
		heap.Push(&h, IndexEntry{V: v, Size: size, FirstSize: firstSize})
		if len(h) > budget {
			heap.Pop(&h)
		}
		return size
	})
	if err != nil {
		return nil, err
	}
	entries := []IndexEntry(h)
	sort.Slice(entries, func(i, j int) bool { return entries[i].V < entries[j].V })
	return newIndex(db.N, entries), nil
}

func newIndex(n int64, entries []IndexEntry) *SubtreeIndex {
	byV := make(map[int64]int, len(entries))
	for i, e := range entries {
		byV[e.V] = i
	}
	return &SubtreeIndex{N: n, entries: entries, byV: byV}
}

// Len returns the number of indexed subtrees.
func (ix *SubtreeIndex) Len() int { return len(ix.entries) }

// Lookup returns the entry for the subtree rooted at v, if indexed.
func (ix *SubtreeIndex) Lookup(v int64) (IndexEntry, bool) {
	i, ok := ix.byV[v]
	if !ok {
		return IndexEntry{}, false
	}
	return ix.entries[i], true
}

// Cut partitions the tree into a frontier of disjoint subtree extents,
// each a contiguous .arb byte range suitable for one worker: indexed
// subtrees are split until they are no larger than target, and subtrees
// smaller than minTask are left to the sequential top scan instead of
// becoming tasks of their own. Subtrees that exceed target but fall
// outside the index budget (deep in a degenerate tree) are emitted
// unsplit — on right-deep trees the frontier collapses and evaluation
// degrades toward sequential, which is the paper's reason for
// restructuring sequences into balanced infix trees.
//
// The returned extents are sorted by Root. Everything not covered by an
// extent is the "top" region that glues the frontier together.
func (ix *SubtreeIndex) Cut(target, minTask int64) []Extent {
	if ix.N == 0 || len(ix.entries) == 0 {
		return nil
	}
	if target < minTask {
		target = minTask
	}
	var tasks []Extent
	stack := []Extent{{Root: 0, Size: ix.N}}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x.Size < minTask {
			continue // leave to the top scan
		}
		e, ok := ix.Lookup(x.Root)
		if ok && e.Size != x.Size {
			ok = false // stale or foreign index: don't split on bad data
		}
		if x.Size <= target || !ok {
			tasks = append(tasks, x)
			continue
		}
		if first := (Extent{Root: x.Root + 1, Size: e.FirstSize}); first.Size > 0 {
			stack = append(stack, first)
		}
		if second := (Extent{Root: x.Root + 1 + e.FirstSize, Size: x.Size - 1 - e.FirstSize}); second.Size > 0 {
			stack = append(stack, second)
		}
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].Root < tasks[j].Root })
	return tasks
}

// indexMagic identifies a .idx sidecar file.
const indexMagic = "ARBIDX1\n"

// WriteIndexFile persists the index next to the database.
func WriteIndexFile(path string, ix *SubtreeIndex) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	werr := func() error {
		if _, err := w.WriteString(indexMagic); err != nil {
			return err
		}
		var buf [8]byte
		put := func(v int64) error {
			binary.BigEndian.PutUint64(buf[:], uint64(v))
			_, err := w.Write(buf[:])
			return err
		}
		if err := put(ix.N); err != nil {
			return err
		}
		if err := put(int64(len(ix.entries))); err != nil {
			return err
		}
		for _, e := range ix.entries {
			if err := put(e.V); err != nil {
				return err
			}
			if err := put(e.Size); err != nil {
				return err
			}
			if err := put(e.FirstSize); err != nil {
				return err
			}
		}
		return w.Flush()
	}()
	if err := f.Close(); werr == nil {
		werr = err
	}
	if werr != nil {
		os.Remove(path)
	}
	return werr
}

// ReadIndexFile loads a persisted index.
func ReadIndexFile(path string) (*SubtreeIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != indexMagic {
		return nil, fmt.Errorf("storage: %s is not an index file", path)
	}
	var buf [8]byte
	get := func() (int64, error) {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return int64(binary.BigEndian.Uint64(buf[:])), nil
	}
	n, err := get()
	if err != nil {
		return nil, err
	}
	count, err := get()
	if err != nil {
		return nil, err
	}
	if count < 0 || count > 1<<24 {
		return nil, fmt.Errorf("storage: index %s declares %d entries", path, count)
	}
	entries := make([]IndexEntry, count)
	for i := range entries {
		if entries[i].V, err = get(); err != nil {
			return nil, err
		}
		if entries[i].Size, err = get(); err != nil {
			return nil, err
		}
		if entries[i].FirstSize, err = get(); err != nil {
			return nil, err
		}
	}
	ix := newIndex(n, entries)
	if err := ix.validate(); err != nil {
		return nil, fmt.Errorf("storage: index %s: %w", path, err)
	}
	return ix, nil
}

// validate rejects structurally impossible indexes (unsorted or
// out-of-bounds entries). It cannot prove the index matches the tree —
// a well-formed but foreign sidecar surfaces as ErrBadExtent during
// evaluation instead, and RebuildIndex recovers from that.
func (ix *SubtreeIndex) validate() error {
	prev := int64(-1)
	for _, e := range ix.entries {
		if e.V <= prev {
			return fmt.Errorf("entries unsorted at node %d", e.V)
		}
		prev = e.V
		if e.V < 0 || e.Size < 1 || e.FirstSize < 0 || e.FirstSize > e.Size-1 || e.V+e.Size > ix.N {
			return fmt.Errorf("entry {%d,%d,%d} out of bounds for %d nodes", e.V, e.Size, e.FirstSize, ix.N)
		}
	}
	return nil
}

// Index returns the database's subtree index, loading base.idx if a
// matching sidecar exists and otherwise building the index with one
// backward scan. The result is cached on the handle, so with a persisted
// index every later parallel run still performs exactly two linear scans'
// worth of I/O in aggregate. budget <= 0 selects DefaultIndexBudget.
func (db *DB) Index(budget int) (*SubtreeIndex, error) {
	db.idxMu.Lock()
	defer db.idxMu.Unlock()
	if db.idx != nil {
		return db.idx, nil
	}
	if ix, err := ReadIndexFile(db.Base + ".idx"); err == nil && ix.N == db.N {
		db.idx = ix
		return ix, nil
	}
	ix, err := BuildIndex(db, budget)
	if err != nil {
		return nil, err
	}
	db.idx = ix
	return ix, nil
}

// WriteIndex builds (or reuses) the database's subtree index and persists
// it as base.idx. Database creation calls this so that parallel
// evaluation needs no extra scan, ever; for databases created before the
// index existed, the first Index call rebuilds it transparently.
func (db *DB) WriteIndex(budget int) error {
	ix, err := db.Index(budget)
	if err != nil {
		return err
	}
	return WriteIndexFile(db.Base+".idx", ix)
}

// RebuildIndex discards any cached index, rebuilds from the data, and
// best-effort refreshes the base.idx sidecar — the recovery path when a
// stale or foreign index surfaces as ErrBadExtent during evaluation.
func (db *DB) RebuildIndex(budget int) (*SubtreeIndex, error) {
	ix, err := BuildIndex(db, budget)
	if err != nil {
		return nil, err
	}
	db.idxMu.Lock()
	db.idx = ix
	db.idxMu.Unlock()
	// The database directory may be read-only; the in-handle cache alone
	// then serves this process.
	_ = WriteIndexFile(db.Base+".idx", ix)
	return ix, nil
}
