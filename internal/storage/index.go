package storage

import (
	"bufio"
	"container/heap"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"arb/internal/tree"
)

// Extent is a contiguous preorder node range [Root, Root+Size) of the
// .arb file — exactly the extent of one binary subtree rooted at Root.
// The corresponding byte range of the .arb file is
// [Root*NodeSize, (Root+Size)*NodeSize).
type Extent struct {
	Root int64
	Size int64
}

// End returns the exclusive upper node bound of the extent.
func (x Extent) End() int64 { return x.Root + x.Size }

// IndexEntry records the extent of one subtree plus the split point
// between its children: the first child (if any) spans
// [V+1, V+1+FirstSize) and the second child the rest of [V, V+Size).
// Labels summarises the set of labels occurring anywhere in the subtree
// (v2 sidecars; see LabelSig) — the evidence the selectivity-aware scan
// pruning uses to prove a whole extent irrelevant to a query without
// reading it. Size doubles as the node count of the extent.
type IndexEntry struct {
	V         int64 // preorder index of the subtree root
	Size      int64 // number of nodes in the subtree
	FirstSize int64 // size of the first-child subtree (0 if absent)
	Labels    LabelSig
}

// SubtreeIndex holds the extents of the heaviest subtrees of a database —
// a rooted top fragment of the tree (a node's parent always has a
// strictly larger subtree, so the k largest subtrees form a connected
// fragment containing the root). It is the chunk index behind parallel
// secondary-storage evaluation: Cut partitions the .arb file into a
// frontier of contiguous subtree byte ranges without touching the data.
//
// The index is bounded (DefaultIndexBudget entries) regardless of
// database size, is built in one backward linear scan with memory
// proportional to the document depth, and can be persisted as a base.idx
// sidecar so later runs pay no extra scan at all.
type SubtreeIndex struct {
	N       int64 // node count of the database the index describes
	entries []IndexEntry
	byV     map[int64]int
}

// DefaultIndexBudget is the default maximum number of index entries —
// small enough that the index is a footnote next to the database (96 KB
// on disk), large enough to cut thousands of chunks.
const DefaultIndexBudget = 4096

// entryHeap is a min-heap of index entries by subtree size.
type entryHeap []IndexEntry

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].Size < h[j].Size }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(IndexEntry)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// idxNode is the per-subtree fold state of index construction: the
// subtree's node count and the signature of all labels it contains.
type idxNode struct {
	size int64
	sig  LabelSig
}

// indexBuilder accumulates the budget largest subtrees of a bottom-up
// fold, shared by the disk (BuildIndex) and in-memory (BuildTreeIndex)
// builders.
type indexBuilder struct {
	h      entryHeap
	budget int
}

func newIndexBuilder(budget int) *indexBuilder {
	if budget <= 0 {
		budget = DefaultIndexBudget
	}
	return &indexBuilder{h: make(entryHeap, 0, budget+1), budget: budget}
}

// node folds one node: first/second are the child states (nil if absent),
// rec carries the node's label, v its preorder index.
func (b *indexBuilder) node(first, second *idxNode, label uint16, v int64) idxNode {
	n := idxNode{size: 1}
	n.sig.Add(label)
	var firstSize int64
	if first != nil {
		n.size += first.size
		firstSize = first.size
		n.sig.Or(first.sig)
	}
	if second != nil {
		n.size += second.size
		n.sig.Or(second.sig)
	}
	heap.Push(&b.h, IndexEntry{V: v, Size: n.size, FirstSize: firstSize, Labels: n.sig})
	if len(b.h) > b.budget {
		heap.Pop(&b.h)
	}
	return n
}

func (b *indexBuilder) finish(n int64) *SubtreeIndex {
	entries := []IndexEntry(b.h)
	sort.Slice(entries, func(i, j int) bool { return entries[i].V < entries[j].V })
	return newIndex(n, entries)
}

// BuildIndex scans the database backwards once (stack bounded by the
// document depth, as in Proposition 5.1) and returns the index of its up
// to budget largest subtrees, each with its label signature. budget <= 0
// selects DefaultIndexBudget. A nil ctx (the contextless creation paths)
// never cancels.
func BuildIndex(ctx context.Context, db *DB, budget int) (*SubtreeIndex, error) {
	b := newIndexBuilder(budget)
	_, _, err := FoldBottomUp(ctx, db, func(first, second *idxNode, rec Record, v int64) idxNode {
		return b.node(first, second, rec.Label, v)
	})
	if err != nil {
		return nil, err
	}
	return b.finish(db.N), nil
}

// BuildTreeIndex builds a subtree index (with label signatures) over an
// in-memory tree, provided the tree is laid out in preorder — node v's
// first child, if any, is v+1, and subtrees are contiguous index ranges.
// Trees built by the XML parser and the workload generators are always in
// preorder; for anything else (or an empty tree) BuildTreeIndex returns
// nil, and callers simply evaluate without pruning. budget <= 0 selects
// DefaultIndexBudget.
func BuildTreeIndex(t *tree.Tree, budget int) *SubtreeIndex {
	n := t.Len()
	if n == 0 {
		return nil
	}
	b := newIndexBuilder(budget)
	// Descending index order is reverse preorder for a preorder-laid-out
	// tree, so a result stack bounded by the document depth suffices —
	// the in-memory mirror of the backward disk scan. The pop discipline
	// doubles as the layout check.
	type frame struct {
		root int64
		n    idxNode
	}
	var stack []frame
	for v := int64(n) - 1; v >= 0; v-- {
		id := tree.NodeID(v)
		// Pop order: the first child's subtree directly follows v, so its
		// frame is on top of the stack; the second child's frame is below.
		var first, second *idxNode
		if c := t.First(id); c != tree.None {
			if int64(c) != v+1 || len(stack) == 0 {
				return nil // not preorder-contiguous
			}
			top := stack[len(stack)-1]
			if int64(c) != top.root {
				return nil
			}
			first = &top.n
			stack = stack[:len(stack)-1]
		}
		if c := t.Second(id); c != tree.None {
			if len(stack) == 0 {
				return nil
			}
			top := stack[len(stack)-1]
			if int64(c) != top.root {
				return nil
			}
			second = &top.n
			stack = stack[:len(stack)-1]
		}
		nd := b.node(first, second, uint16(t.Label(id)), v)
		stack = append(stack, frame{root: v, n: nd})
	}
	if len(stack) != 1 || stack[0].root != 0 {
		return nil
	}
	return b.finish(int64(n))
}

// NewIndex builds a validated index from explicit entries, sorted by
// preorder root: the versioned extent store maintains each version's
// index incrementally (splicing fragment entries into the previous
// version's) and rehydrates it from the manifest through this
// constructor. The entries slice is retained. Validation enforces the
// structural invariants (sorted, in-bounds, laminar); whether the
// extents match the data is the caller's contract, exactly as with a
// persisted sidecar.
func NewIndex(n int64, entries []IndexEntry) (*SubtreeIndex, error) {
	ix := newIndex(n, entries)
	if err := ix.validate(); err != nil {
		return nil, err
	}
	return ix, nil
}

func newIndex(n int64, entries []IndexEntry) *SubtreeIndex {
	byV := make(map[int64]int, len(entries))
	for i, e := range entries {
		byV[e.V] = i
	}
	return &SubtreeIndex{N: n, entries: entries, byV: byV}
}

// Len returns the number of indexed subtrees.
func (ix *SubtreeIndex) Len() int { return len(ix.entries) }

// Lookup returns the entry for the subtree rooted at v, if indexed.
func (ix *SubtreeIndex) Lookup(v int64) (IndexEntry, bool) {
	i, ok := ix.byV[v]
	if !ok {
		return IndexEntry{}, false
	}
	return ix.entries[i], true
}

// Cut partitions the tree into a frontier of disjoint subtree extents,
// each a contiguous .arb byte range suitable for one worker: indexed
// subtrees are split until they are no larger than target, and subtrees
// smaller than minTask are left to the sequential top scan instead of
// becoming tasks of their own. Subtrees that exceed target but fall
// outside the index budget (deep in a degenerate tree) are emitted
// unsplit — on right-deep trees the frontier collapses and evaluation
// degrades toward sequential, which is the paper's reason for
// restructuring sequences into balanced infix trees.
//
// The returned extents are sorted by Root. Everything not covered by an
// extent is the "top" region that glues the frontier together.
func (ix *SubtreeIndex) Cut(target, minTask int64) []Extent {
	if ix.N == 0 || len(ix.entries) == 0 {
		return nil
	}
	if target < minTask {
		target = minTask
	}
	var tasks []Extent
	stack := []Extent{{Root: 0, Size: ix.N}}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x.Size < minTask {
			continue // leave to the top scan
		}
		e, ok := ix.Lookup(x.Root)
		if ok && e.Size != x.Size {
			ok = false // stale or foreign index: don't split on bad data
		}
		if x.Size <= target || !ok {
			tasks = append(tasks, x)
			continue
		}
		if first := (Extent{Root: x.Root + 1, Size: e.FirstSize}); first.Size > 0 {
			stack = append(stack, first)
		}
		if second := (Extent{Root: x.Root + 1 + e.FirstSize, Size: x.Size - 1 - e.FirstSize}); second.Size > 0 {
			stack = append(stack, second)
		}
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].Root < tasks[j].Root })
	return tasks
}

// indexMagic identifies a v2 .idx sidecar file; indexMagicV3 is the
// v3 format, identical except for a container descriptor (codec, block
// size, physical/logical bytes) between the magic and the entries —
// written for block-compressed databases so tools can report the
// compression ratio without reopening the container. Readers accept
// both; v2 stays the format for raw databases, so nothing changes for
// existing files. indexMagicV1 is the retired label-less format,
// rejected on read so DB.Index transparently rebuilds (and replaces)
// stale sidecars — the same negotiation path pre-v3 binaries take when
// they meet a v3 sidecar.
const (
	indexMagic   = "ARBIDX2\n"
	indexMagicV3 = "ARBIDX3\n"
	indexMagicV1 = "ARBIDX1\n"
)

// Entries exposes the index's entries, sorted by preorder root. The
// returned slice is the index's own storage — callers must not modify it.
func (ix *SubtreeIndex) Entries() []IndexEntry { return ix.entries }

// NewIndexForTest builds an index from explicit entries (validated), for
// tests that need precise synthetic extent layouts.
func NewIndexForTest(n int64, entries []IndexEntry) *SubtreeIndex {
	ix := newIndex(n, entries)
	if err := ix.validate(); err != nil {
		panic(err)
	}
	return ix
}

// WriteIndexFile persists the index next to the database: v2 format
// for raw databases, v3 (with the container descriptor ci) for
// compressed ones. The file is written to a temporary name and renamed
// into place, so concurrent readers never see a torn sidecar, and the
// directory is synced so the committed sidecar survives a crash.
func WriteIndexFile(path string, ix *SubtreeIndex, ci *ContainerInfo) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	renamed := false
	defer func() {
		if !renamed {
			os.Remove(tmp)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<16)
	werr := func() error {
		magic := indexMagic
		if ci != nil && ci.Codec != CodecRaw {
			magic = indexMagicV3
		}
		if _, err := w.WriteString(magic); err != nil {
			return err
		}
		var buf [8]byte
		put := func(v uint64) error {
			binary.BigEndian.PutUint64(buf[:], v)
			_, err := w.Write(buf[:])
			return err
		}
		if magic == indexMagicV3 {
			for _, v := range []uint64{uint64(ci.Codec), uint64(ci.BlockSize), uint64(ci.PhysBytes), uint64(ci.LogicalBytes)} {
				if err := put(v); err != nil {
					return err
				}
			}
		}
		if err := put(uint64(ix.N)); err != nil {
			return err
		}
		if err := put(uint64(len(ix.entries))); err != nil {
			return err
		}
		for _, e := range ix.entries {
			if err := put(uint64(e.V)); err != nil {
				return err
			}
			if err := put(uint64(e.Size)); err != nil {
				return err
			}
			if err := put(uint64(e.FirstSize)); err != nil {
				return err
			}
			for _, word := range e.Labels {
				if err := put(word); err != nil {
					return err
				}
			}
		}
		return w.Flush()
	}()
	if werr == nil {
		werr = f.Sync()
	}
	if err := f.Close(); werr == nil {
		werr = err
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
		renamed = werr == nil
	}
	if werr == nil {
		werr = syncDir(filepath.Dir(path))
	}
	return werr
}

// ReadIndexFile loads a persisted v2 or v3 index. Stale v1 sidecars
// (and anything else that is not a well-formed index) are rejected with
// an error; DB.Index treats that as "no sidecar" and rebuilds from the
// data.
func ReadIndexFile(path string) (*SubtreeIndex, error) {
	ix, _, err := ReadIndexFileInfo(path)
	return ix, err
}

// ReadIndexFileInfo is ReadIndexFile plus the container descriptor a v3
// sidecar carries (nil for v2 sidecars of raw databases).
func ReadIndexFileInfo(path string) (*SubtreeIndex, *ContainerInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(r, magic); err != nil ||
		(string(magic) != indexMagic && string(magic) != indexMagicV3) {
		if string(magic) == indexMagicV1 {
			return nil, nil, fmt.Errorf("storage: %s is a stale v1 index (no label signatures); rebuild required", path)
		}
		return nil, nil, fmt.Errorf("storage: %s is not an index file", path)
	}
	var buf [8]byte
	get := func() (int64, error) {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return int64(binary.BigEndian.Uint64(buf[:])), nil
	}
	var ci *ContainerInfo
	if string(magic) == indexMagicV3 {
		var d [4]int64
		for i := range d {
			if d[i], err = get(); err != nil {
				return nil, nil, err
			}
		}
		if d[0] != CodecLZ && d[0] != CodecFlate {
			return nil, nil, fmt.Errorf("storage: index %s names unknown codec %d", path, d[0])
		}
		ci = &ContainerInfo{Codec: uint8(d[0]), BlockSize: int(d[1]), PhysBytes: d[2], LogicalBytes: d[3]}
	}
	n, err := get()
	if err != nil {
		return nil, nil, err
	}
	count, err := get()
	if err != nil {
		return nil, nil, err
	}
	if count < 0 || count > 1<<24 {
		return nil, nil, fmt.Errorf("storage: index %s declares %d entries", path, count)
	}
	entries := make([]IndexEntry, count)
	for i := range entries {
		if entries[i].V, err = get(); err != nil {
			return nil, nil, err
		}
		if entries[i].Size, err = get(); err != nil {
			return nil, nil, err
		}
		if entries[i].FirstSize, err = get(); err != nil {
			return nil, nil, err
		}
		for w := range entries[i].Labels {
			v, err := get()
			if err != nil {
				return nil, nil, err
			}
			entries[i].Labels[w] = uint64(v)
		}
	}
	ix := newIndex(n, entries)
	if err := ix.validate(); err != nil {
		return nil, nil, fmt.Errorf("storage: index %s: %w", path, err)
	}
	return ix, ci, nil
}

// validate rejects structurally impossible indexes: unsorted or
// out-of-bounds entries, and entries that partially overlap (subtree
// extents must form a laminar family — nested or disjoint, never
// crossing). It cannot prove the index matches the tree — a well-formed
// but foreign sidecar surfaces as ErrBadExtent during evaluation instead,
// and RebuildIndex recovers from that. (Label signatures are likewise
// trusted: the sidecar is maintained by this package alongside the .arb
// file, and editing a database out-of-band requires RebuildIndex.)
func (ix *SubtreeIndex) validate() error {
	prev := int64(-1)
	var open []int64 // ends of enclosing extents, innermost last
	for _, e := range ix.entries {
		if e.V <= prev {
			return fmt.Errorf("entries unsorted at node %d", e.V)
		}
		prev = e.V
		if e.V < 0 || e.Size < 1 || e.FirstSize < 0 || e.FirstSize > e.Size-1 || e.V+e.Size > ix.N {
			return fmt.Errorf("entry {%d,%d,%d} out of bounds for %d nodes", e.V, e.Size, e.FirstSize, ix.N)
		}
		for len(open) > 0 && open[len(open)-1] <= e.V {
			open = open[:len(open)-1]
		}
		if len(open) > 0 && e.V+e.Size > open[len(open)-1] {
			return fmt.Errorf("entry [%d,%d) overlaps an extent ending at %d", e.V, e.V+e.Size, open[len(open)-1])
		}
		open = append(open, e.V+e.Size)
	}
	return nil
}

// Index returns the database's subtree index, loading base.idx if a
// matching sidecar exists and otherwise building the index with one
// backward scan. The result is cached on the handle, so with a persisted
// index every later parallel run still performs exactly two linear scans'
// worth of I/O in aggregate. budget <= 0 selects DefaultIndexBudget.
// Cancelling ctx aborts a rebuild scan; a nil ctx never cancels.
func (db *DB) Index(ctx context.Context, budget int) (*SubtreeIndex, error) {
	db.idxMu.Lock()
	defer db.idxMu.Unlock()
	if db.idx != nil {
		return db.idx, nil
	}
	if !db.virtual {
		if ix, err := ReadIndexFile(db.Base + ".idx"); err == nil && ix.N == db.N {
			db.idx = ix
			return ix, nil
		}
	}
	ix, err := BuildIndex(ctx, db, budget)
	if err != nil {
		return nil, err
	}
	db.idx = ix
	if !db.virtual {
		// Best-effort refresh of the sidecar (it was missing, stale — e.g.
		// a retired v1 file — or foreign): later opens then load the
		// index instead of paying the rebuild scan again. Read-only
		// directories simply keep serving from the in-handle cache.
		_ = WriteIndexFile(db.Base+".idx", ix, db.containerDesc())
	}
	return ix, nil
}

// WriteIndex builds (or reuses) the database's subtree index and persists
// it as base.idx. Database creation calls this so that parallel
// evaluation needs no extra scan, ever; for databases created before the
// index existed, the first Index call rebuilds it transparently. A nil
// ctx (the contextless creation paths) never cancels.
func (db *DB) WriteIndex(ctx context.Context, budget int) error {
	ix, err := db.Index(ctx, budget)
	if err != nil {
		return err
	}
	if db.virtual {
		return nil // no single .arb file a sidecar could describe
	}
	return WriteIndexFile(db.Base+".idx", ix, db.containerDesc())
}

// RebuildIndex discards any cached index, rebuilds from the data, and
// best-effort refreshes the base.idx sidecar — the recovery path when a
// stale or foreign index surfaces as ErrBadExtent during evaluation.
func (db *DB) RebuildIndex(ctx context.Context, budget int) (*SubtreeIndex, error) {
	ix, err := BuildIndex(ctx, db, budget)
	if err != nil {
		return nil, err
	}
	db.idxMu.Lock()
	db.idx = ix
	db.idxMu.Unlock()
	if !db.virtual {
		// The database directory may be read-only; the in-handle cache
		// alone then serves this process.
		_ = WriteIndexFile(db.Base+".idx", ix, db.containerDesc())
	}
	return ix, nil
}
