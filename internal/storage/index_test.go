package storage

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"arb/internal/testutil"
	"arb/internal/tree"
)

// subtreeSizes computes every node's binary-subtree size directly from
// the in-memory tree — the ground truth the index must agree with.
func subtreeSizes(t *tree.Tree) []int64 {
	n := t.Len()
	size := make([]int64, n)
	for v := n - 1; v >= 0; v-- {
		size[v] = 1
		if c := t.First(tree.NodeID(v)); c != tree.None {
			size[v] += size[c]
		}
		if c := t.Second(tree.NodeID(v)); c != tree.None {
			size[v] += size[c]
		}
	}
	return size
}

func TestBuildIndexMatchesTreeSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 20; iter++ {
		tr := testutil.RandomTree(rng, 500)
		base := filepath.Join(t.TempDir(), "db")
		db, err := CreateFromTree(base, tr)
		if err != nil {
			t.Fatal(err)
		}
		size := subtreeSizes(tr)
		ix, err := BuildIndex(context.Background(), db, 1<<20) // budget larger than any tree: every node indexed
		if err != nil {
			t.Fatal(err)
		}
		if ix.Len() != tr.Len() {
			t.Fatalf("iter %d: indexed %d of %d nodes under an unlimited budget", iter, ix.Len(), tr.Len())
		}
		for v := 0; v < tr.Len(); v++ {
			e, ok := ix.Lookup(int64(v))
			if !ok {
				t.Fatalf("iter %d: node %d missing", iter, v)
			}
			if e.Size != size[v] {
				t.Fatalf("iter %d: node %d size %d, want %d", iter, v, e.Size, size[v])
			}
			wantFirst := int64(0)
			if c := tr.First(tree.NodeID(v)); c != tree.None {
				wantFirst = size[c]
			}
			if e.FirstSize != wantFirst {
				t.Fatalf("iter %d: node %d first-size %d, want %d", iter, v, e.FirstSize, wantFirst)
			}
		}
		db.Close()
	}
}

func TestBuildIndexBudgetKeepsHeaviestClosedUnderParents(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for iter := 0; iter < 20; iter++ {
		tr := testutil.RandomTree(rng, 800)
		base := filepath.Join(t.TempDir(), "db")
		db, err := CreateFromTree(base, tr)
		if err != nil {
			t.Fatal(err)
		}
		const budget = 16
		ix, err := BuildIndex(context.Background(), db, budget)
		if err != nil {
			t.Fatal(err)
		}
		if ix.Len() > budget {
			t.Fatalf("iter %d: %d entries exceed budget %d", iter, ix.Len(), budget)
		}
		if _, ok := ix.Lookup(0); !ok {
			t.Fatalf("iter %d: root not indexed", iter)
		}
		// Every indexed node's parent must be indexed too (a parent's
		// subtree is strictly larger), so the fragment is connected and
		// Cut can always derive child extents.
		parent := make([]int64, tr.Len())
		parent[0] = -1
		for v := 0; v < tr.Len(); v++ {
			if c := tr.First(tree.NodeID(v)); c != tree.None {
				parent[c] = int64(v)
			}
			if c := tr.Second(tree.NodeID(v)); c != tree.None {
				parent[c] = int64(v)
			}
		}
		for v := 0; v < tr.Len(); v++ {
			if _, ok := ix.Lookup(int64(v)); !ok || parent[v] < 0 {
				continue
			}
			if _, ok := ix.Lookup(parent[v]); !ok {
				t.Fatalf("iter %d: node %d indexed but parent %d is not", iter, v, parent[v])
			}
		}
		db.Close()
	}
}

func TestCutProducesDisjointSubtreeExtents(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 20; iter++ {
		tr := testutil.RandomTree(rng, 1000)
		base := filepath.Join(t.TempDir(), "db")
		db, err := CreateFromTree(base, tr)
		if err != nil {
			t.Fatal(err)
		}
		size := subtreeSizes(tr)
		ix, err := db.Index(context.Background(), 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range []int64{1, 7, 50, int64(tr.Len())} {
			tasks := ix.Cut(target, 1)
			last := int64(0)
			for _, x := range tasks {
				if x.Root < last {
					t.Fatalf("iter %d target %d: extents overlap or unsorted at %d", iter, target, x.Root)
				}
				last = x.End()
				if x.End() > int64(tr.Len()) {
					t.Fatalf("iter %d target %d: extent [%d,%d) out of range", iter, target, x.Root, x.End())
				}
				if size[x.Root] != x.Size {
					t.Fatalf("iter %d target %d: extent [%d,%d) is not the subtree of %d (size %d)",
						iter, target, x.Root, x.End(), x.Root, size[x.Root])
				}
			}
		}
		db.Close()
	}
}

func TestIndexFileRoundTripAndAutoLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tr := testutil.RandomTree(rng, 600)
	base := filepath.Join(t.TempDir(), "db")
	db, err := CreateFromTree(base, tr) // writes base.idx as a side effect
	if err != nil {
		t.Fatal(err)
	}
	db.Close()

	ix, err := ReadIndexFile(base + ".idx")
	if err != nil {
		t.Fatalf("creation did not persist a readable index: %v", err)
	}
	if ix.N != int64(tr.Len()) {
		t.Fatalf("persisted index describes %d nodes, want %d", ix.N, tr.Len())
	}

	// A fresh handle must load the sidecar rather than rebuild.
	db2, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	ix2, err := db2.Index(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Len() != ix.Len() {
		t.Fatalf("loaded index has %d entries, sidecar has %d", ix2.Len(), ix.Len())
	}
	for i := 0; i < ix.Len(); i++ {
		a, b := ix.entries[i], ix2.entries[i]
		if a != b {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a, b)
		}
	}
}
