package storage

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Auxiliary-mask sidecar files carry per-node predicate bitmasks alongside
// a database, preserving the two-linear-scans property: phase 1 reads them
// backwards in step with the .arb scan, phase 2 forwards. A sidecar of
// stride s holds, for every node in preorder, a vector of s big-endian
// uint16 masks — stride 1 is the single-query chain of multi-pass XPath
// evaluation, stride > 1 is the widened form batch execution uses to give
// every member query its own slot in one shared file.

// MaskSize is the on-disk size of one auxiliary predicate mask.
const MaskSize = 2

// MaskStride returns the per-node byte width of a mask sidecar holding
// stride mask slots.
func MaskStride(stride int) int64 { return int64(stride) * MaskSize }

// OpenMaskFile opens a mask sidecar and verifies it holds exactly one
// stride-wide mask vector for each of the n nodes.
func OpenMaskFile(path string, n int64, stride int) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if want := n * MaskStride(stride); st.Size() != want {
		f.Close()
		return nil, fmt.Errorf("storage: mask file %s has %d bytes, want %d (%d nodes × stride %d)",
			path, st.Size(), want, n, stride)
	}
	return f, nil
}

// MaskBackward returns a backward reader over the mask vectors of nodes
// [lo, hi), one stride-wide vector per Next call.
func MaskBackward(f io.ReaderAt, lo, hi int64, stride int) (*BackwardReader, error) {
	w := MaskStride(stride)
	return NewBackwardSectionReader(f, lo*w, hi*w, int(w))
}

// MaskForward returns a buffered forward reader over the mask vectors of
// nodes [lo, hi); callers consume one stride-wide vector per node.
func MaskForward(f io.ReaderAt, lo, hi int64, stride int) *bufio.Reader {
	w := MaskStride(stride)
	return bufio.NewReaderSize(io.NewSectionReader(f, lo*w, (hi-lo)*w), defaultBufSize)
}
