package storage

import (
	"encoding/binary"
	"fmt"
)

// A small byte-oriented LZ codec for block compression (CodecLZ).
//
// The format is the classic token + literals + match stream: each
// sequence starts with a token byte whose high nibble is the literal
// count and low nibble the match length minus the 4-byte minimum, both
// extended by 0xFF continuation bytes when they saturate; the literals
// follow, then a big-endian uint16 backward offset. The final sequence
// is literals-only (token low nibble 0, no offset). Matches may overlap
// their own output — an offset of 1 repeats the previous byte — which
// is exactly the shape long runs of identical records compress to.
//
// The encoder is a greedy single-pass hash-table matcher: fast, no
// allocation beyond the table, and good on preorder label streams where
// repetition is long-range and frequent. It gives up (returns ok=false)
// as soon as output would reach the caller's raw-fallback bound, so
// incompressible blocks cost one pass and are stored raw.

const (
	lzMinMatch    = 4
	lzMaxOffset   = 1 << 16
	lzHashLog     = 14
	lzHashShift   = 32 - lzHashLog
	lzHashMul     = 2654435761 // Knuth's 32-bit golden-ratio multiplier
	lzTailLits    = 5          // final literals the encoder must leave unmatched
	lzMaxExtraHdr = 16
)

// lzMaxExpansion bounds how much larger than its logical size a stored
// block may legally be; container parsing uses it to reject corrupt
// block tables before allocating.
func lzMaxExpansion(n int) int64 { return int64(n/255 + lzMaxExtraHdr) }

// lzHash hashes exactly the lzMinMatch bytes a candidate must share:
// hashing a wider window would scatter positions that agree on the
// first four bytes into different slots and miss most short matches —
// fatal on 2-byte record streams, where matches start short and extend.
func lzHash(v uint32) uint32 {
	return (v * lzHashMul) >> lzHashShift
}

// lzCompress appends the compressed form of src to dst, reporting
// ok=false when the result would not be at least ~6% smaller than src
// (the caller then stores the block raw). src must be at most one
// block, well under lzMaxOffset*2^15, and is not retained.
func lzCompress(dst, src []byte) ([]byte, bool) {
	if len(src) < 16 {
		return nil, false
	}
	limit := len(src) - len(src)/16
	var table [1 << lzHashLog]int32 // position+1 of the last occurrence of each hash
	anchor := 0
	pos := 0
	matchEnd := len(src) - lzTailLits  // matches may extend up to here
	searchEnd := matchEnd - lzMinMatch // last position a minimum match fits (4-byte loads stay in bounds)
	for pos < searchEnd {
		v := binary.LittleEndian.Uint32(src[pos:])
		h := lzHash(v)
		cand := int(table[h]) - 1
		table[h] = int32(pos + 1)
		if cand < 0 || pos-cand >= lzMaxOffset ||
			binary.LittleEndian.Uint32(src[cand:]) != v {
			pos++
			continue
		}
		// Extend the match forward; the 4 hashed bytes already agree.
		mlen := lzMinMatch
		for pos+mlen < matchEnd && src[cand+mlen] == src[pos+mlen] {
			mlen++
		}
		// Extend backward over pending literals.
		for pos > anchor && cand > 0 && src[cand-1] == src[pos-1] {
			pos--
			cand--
			mlen++
		}
		var ok bool
		dst, ok = lzEmit(dst, src[anchor:pos], mlen, pos-cand, limit)
		if !ok {
			return nil, false
		}
		pos += mlen
		anchor = pos
		if pos >= 2 && pos < searchEnd {
			// Seed the table inside the match so long runs chain.
			table[lzHash(binary.LittleEndian.Uint32(src[pos-2:]))] = int32(pos - 1)
		}
	}
	dst, ok := lzEmit(dst, src[anchor:], 0, 0, limit)
	if !ok {
		return nil, false
	}
	return dst, true
}

// lzEmit appends one sequence (literals plus an optional match) to dst,
// failing once dst would reach limit bytes.
func lzEmit(dst, lits []byte, mlen, off, limit int) ([]byte, bool) {
	need := 1 + len(lits) + len(lits)/255 + 1
	if mlen > 0 {
		need += 2 + (mlen-lzMinMatch)/255 + 1
	}
	if len(dst)+need > limit {
		return nil, false
	}
	litLen := len(lits)
	token := byte(0)
	if litLen >= 15 {
		token = 0xF0
	} else {
		token = byte(litLen) << 4
	}
	m := 0
	if mlen > 0 {
		m = mlen - lzMinMatch
		if m >= 15 {
			token |= 0x0F
		} else {
			token |= byte(m)
		}
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = lzPutLen(dst, litLen-15)
	}
	dst = append(dst, lits...)
	if mlen > 0 {
		if m >= 15 {
			dst = lzPutLen(dst, m-15)
		}
		dst = append(dst, byte(off>>8), byte(off))
	}
	return dst, true
}

func lzPutLen(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 0xFF)
		n -= 255
	}
	return append(dst, byte(n))
}

// lzDecompress fills dst exactly from the compressed stream src. Every
// access is bounds-checked so corrupt blocks fail cleanly rather than
// panicking or reading out of range.
func lzDecompress(dst, src []byte) error {
	di, si := 0, 0
	for {
		if si >= len(src) {
			return fmt.Errorf("lz block: truncated at sequence start")
		}
		token := src[si]
		si++
		litLen := int(token >> 4)
		if litLen == 15 {
			var err error
			litLen, si, err = lzGetLen(src, si, litLen)
			if err != nil {
				return err
			}
		}
		if si+litLen > len(src) || di+litLen > len(dst) {
			return fmt.Errorf("lz block: literal run of %d overflows", litLen)
		}
		copy(dst[di:], src[si:si+litLen])
		di += litLen
		si += litLen
		if si == len(src) {
			if token&0x0F != 0 {
				return fmt.Errorf("lz block: stream ends inside a match sequence")
			}
			if di != len(dst) {
				return fmt.Errorf("lz block: produced %d of %d bytes", di, len(dst))
			}
			return nil
		}
		mlen := int(token & 0x0F)
		if mlen == 15 {
			var err error
			mlen, si, err = lzGetLen(src, si, mlen)
			if err != nil {
				return err
			}
		}
		mlen += lzMinMatch
		if si+2 > len(src) {
			return fmt.Errorf("lz block: truncated match offset")
		}
		off := int(src[si])<<8 | int(src[si+1])
		si += 2
		if off == 0 || off > di {
			return fmt.Errorf("lz block: match offset %d at output position %d", off, di)
		}
		if di+mlen > len(dst) {
			return fmt.Errorf("lz block: match of %d overflows output", mlen)
		}
		if off >= mlen {
			copy(dst[di:di+mlen], dst[di-off:])
			di += mlen
		} else {
			// Overlapping match: widen the copy stride by doubling so
			// run-heavy data is still copied in large chunks. The valid
			// prefix [start, start+have) grows until it covers the match
			// end at di.
			start := di - off
			di += mlen
			have := off
			for start+have < di {
				n := copy(dst[start+have:di], dst[start:start+have])
				have += n
			}
		}
	}
}

func lzGetLen(src []byte, si, base int) (int, int, error) {
	n := base
	for {
		if si >= len(src) {
			return 0, 0, fmt.Errorf("lz block: truncated length extension")
		}
		c := src[si]
		si++
		n += int(c)
		if c != 0xFF {
			return n, si, nil
		}
	}
}
