package storage

// LabelSig is a compact, conservative summary of a set of node labels —
// the per-extent "which labels occur below here" bitmap of the v2 subtree
// index, and the query side's "which labels can matter" set produced by
// the engine's static analysis. Membership is hashed, so the signature
// supports exactly one sound question: IF two signatures are disjoint,
// THEN the underlying label sets are disjoint. (The converse can fail: a
// hash collision may make disjoint sets look overlapping, which costs a
// pruning opportunity but never an answer.)
//
// Bit layout: bit 0 is the class of character labels (0..255) as a whole
// — text is dense and per-character resolution would saturate a small
// bitmap — and named labels (>= 256) hash onto bits 1..255. A signature
// therefore occupies 32 bytes, small enough to ride along in every index
// entry.
type LabelSig [4]uint64

// labelSigBit maps a label to its bit index.
func labelSigBit(l uint16) uint {
	if l < 256 {
		return 0
	}
	// Fibonacci hashing spreads the (typically small, dense) named-label
	// ids across the 255 named bits.
	h := uint32(l) * 0x9E3779B1
	return 1 + uint(h>>8)%255
}

// Add records label l in the signature.
func (s *LabelSig) Add(l uint16) {
	b := labelSigBit(l)
	s[b/64] |= 1 << (b % 64)
}

// Or folds another signature into s (set union).
func (s *LabelSig) Or(o LabelSig) {
	s[0] |= o[0]
	s[1] |= o[1]
	s[2] |= o[2]
	s[3] |= o[3]
}

// Intersects reports whether the two signatures share a bit. A false
// result proves the underlying label sets are disjoint.
func (s LabelSig) Intersects(o LabelSig) bool {
	return s[0]&o[0]|s[1]&o[1]|s[2]&o[2]|s[3]&o[3] != 0
}

// IsZero reports an empty signature.
func (s LabelSig) IsZero() bool {
	return s[0]|s[1]|s[2]|s[3] == 0
}

// HasChars reports whether the signature contains the character class.
func (s LabelSig) HasChars() bool { return s[0]&1 != 0 }
