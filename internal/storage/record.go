// Package storage implements the Arb storage model of Section 5 of the
// paper: binary trees stored on disk as fixed-size records in preorder,
// supporting top-down traversal by one forward linear scan and bottom-up
// traversal by one backward linear scan, each with a main-memory stack
// bounded by the depth of the XML document (Proposition 5.1).
//
// A database consists of:
//
//	base.arb — one 2-byte big-endian record per node in preorder; the two
//	           highest bits say whether the node has a first and/or second
//	           child, the remaining 14 bits hold the label index.
//	base.lab — whitespace-separated names of the named labels; the name of
//	           label index i >= 256 is the (i-255)th entry. Indices 0..255
//	           are reserved for text characters.
//
// Databases are created in two passes: a SAX-style parsing pass writes a
// temporary event file (base.evt, two 2-byte events per node) and counts
// nodes; a second pass reads the event file backwards and writes the .arb
// file backwards, turning the unranked document into its binary encoding
// with only a stack proportional to the document depth.
package storage

import "fmt"

// NodeSize is the fixed per-node record size in bytes (k = 2 in the
// paper's implementation, giving 2^14 = 16,384 distinct labels).
const NodeSize = 2

const (
	flagFirst  = 0x8000 // highest bit: node has a first child
	flagSecond = 0x4000 // second-highest bit: node has a second child
	labelMask  = 0x3FFF
)

// Record is one decoded .arb node record.
type Record struct {
	Label     uint16
	HasFirst  bool
	HasSecond bool
}

// Encode packs the record into its on-disk 2-byte form.
func (r Record) Encode() uint16 {
	v := r.Label & labelMask
	if r.HasFirst {
		v |= flagFirst
	}
	if r.HasSecond {
		v |= flagSecond
	}
	return v
}

// DecodeRecord unpacks a 2-byte on-disk value.
func DecodeRecord(v uint16) Record {
	return Record{
		Label:     v & labelMask,
		HasFirst:  v&flagFirst != 0,
		HasSecond: v&flagSecond != 0,
	}
}

// Event-file encoding: a begin event carries the node's label (which fits
// in 14 bits, so the top bit is clear); the end event is a single reserved
// value with the top bit set.
const evtEnd = 0x8000

func checkLabel(l uint16) error {
	if l > labelMask {
		return fmt.Errorf("storage: label %d out of range (max %d)", l, labelMask)
	}
	return nil
}
