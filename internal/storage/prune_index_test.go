package storage

import (
	"bytes"
	"context"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"arb/internal/testutil"
	"arb/internal/tree"
)

// TestPruneIndexV2RoundTrip checks that label signatures survive the v2
// sidecar round trip and agree with a direct per-subtree recomputation.
func TestPruneIndexV2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := testutil.RandomTree(rng, 400)
	base := filepath.Join(t.TempDir(), "db")
	db, err := CreateFromTree(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ix, err := BuildIndex(context.Background(), db, 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: every subtree's label signature computed directly.
	n := tr.Len()
	sigs := make([]LabelSig, n)
	for v := n - 1; v >= 0; v-- {
		sigs[v].Add(uint16(tr.Label(tree.NodeID(v))))
		if c := tr.First(tree.NodeID(v)); c != tree.None {
			sigs[v].Or(sigs[c])
		}
		if c := tr.Second(tree.NodeID(v)); c != tree.None {
			sigs[v].Or(sigs[c])
		}
	}
	for v := 0; v < n; v++ {
		e, ok := ix.Lookup(int64(v))
		if !ok {
			t.Fatalf("node %d missing from unlimited-budget index", v)
		}
		if e.Labels != sigs[v] {
			t.Fatalf("node %d label signature %v, want %v", v, e.Labels, sigs[v])
		}
	}

	path := filepath.Join(t.TempDir(), "x.idx")
	if err := WriteIndexFile(path, ix, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != ix.N || back.Len() != ix.Len() {
		t.Fatalf("round trip changed shape: %d/%d entries, %d/%d nodes", back.Len(), ix.Len(), back.N, ix.N)
	}
	for i, e := range back.Entries() {
		if e != ix.Entries()[i] {
			t.Fatalf("entry %d changed in round trip: %+v vs %+v", i, e, ix.Entries()[i])
		}
	}
}

// TestPruneStaleV1IndexRebuilt checks the v1-sidecar upgrade path: a
// stale v1 file is rejected by ReadIndexFile, transparently rebuilt by
// DB.Index, and the sidecar is replaced with a v2 file.
func TestPruneStaleV1IndexRebuilt(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := testutil.RandomTree(rng, 300)
	base := filepath.Join(t.TempDir(), "db")
	created, err := CreateFromTree(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	created.Close()
	// A fresh handle, so the index must come from the sidecar or a scan
	// (creation cached one in the old handle).
	db, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Fake a plausible v1 sidecar (old magic, three words per entry).
	var v1 bytes.Buffer
	v1.WriteString(indexMagicV1)
	put := func(x int64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(x))
		v1.Write(b[:])
	}
	put(db.N)
	put(1)
	put(0)
	put(db.N)
	put(1)
	if err := os.WriteFile(base+".idx", v1.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndexFile(base + ".idx"); err == nil {
		t.Fatal("ReadIndexFile accepted a v1 sidecar")
	}

	ix, err := db.Index(context.Background(), 0)
	if err != nil {
		t.Fatalf("Index did not rebuild over the stale v1 sidecar: %v", err)
	}
	if ix.N != db.N || ix.Len() == 0 {
		t.Fatalf("rebuilt index is wrong: %d entries for %d nodes", ix.Len(), ix.N)
	}
	// The sidecar must now be a readable v2 file.
	back, err := ReadIndexFile(base + ".idx")
	if err != nil {
		t.Fatalf("sidecar was not refreshed to v2: %v", err)
	}
	if back.N != db.N {
		t.Fatalf("refreshed sidecar describes %d nodes, want %d", back.N, db.N)
	}
}

// TestPruneBackwardSkip checks the BackwardReader seek primitive against
// plain reads.
func TestPruneBackwardSkip(t *testing.T) {
	const units = 100
	buf := make([]byte, units*4)
	for i := 0; i < units; i++ {
		binary.BigEndian.PutUint32(buf[i*4:], uint32(i))
	}
	r, err := NewBackwardReader(bytes.NewReader(buf), int64(len(buf)), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	// Read 10 (yields 99..90), skip 30 (89..60), read the rest.
	for want := units - 1; want >= 90; want-- {
		b, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.BigEndian.Uint32(b); got != uint32(want) {
			t.Fatalf("unit %d, want %d", got, want)
		}
	}
	if err := r.Skip(30); err != nil {
		t.Fatal(err)
	}
	for want := 59; want >= 0; want-- {
		b, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.BigEndian.Uint32(b); got != uint32(want) {
			t.Fatalf("unit %d, want %d", got, want)
		}
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("reader did not report EOF")
	}
	// Skipping past the section start must fail.
	r2, err := NewBackwardReader(bytes.NewReader(buf), int64(len(buf)), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Release()
	if err := r2.Skip(units + 1); err == nil {
		t.Fatal("Skip crossed the section start without error")
	}
}

// TestPruneTreeIndexMatchesDiskIndex checks that the in-memory tree
// index agrees entry-for-entry with the disk-built index of the same
// document, and that non-preorder trees are refused.
func TestPruneTreeIndexMatchesDiskIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 10; iter++ {
		tr := testutil.RandomTree(rng, 600)
		base := filepath.Join(t.TempDir(), "db")
		db, err := CreateFromTree(base, tr)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BuildIndex(context.Background(), db, 512)
		db.Close()
		if err != nil {
			t.Fatal(err)
		}
		got := BuildTreeIndex(tr, 512)
		if got == nil {
			t.Fatalf("iter %d: preorder tree refused", iter)
		}
		if got.N != want.N || got.Len() != want.Len() {
			t.Fatalf("iter %d: tree index %d entries/%d nodes, disk %d/%d", iter, got.Len(), got.N, want.Len(), want.N)
		}
		for i := range got.Entries() {
			if got.Entries()[i] != want.Entries()[i] {
				t.Fatalf("iter %d entry %d: %+v vs %+v", iter, i, got.Entries()[i], want.Entries()[i])
			}
		}
	}

	// A tree that is not laid out in preorder must be refused, not
	// mis-indexed.
	bad := tree.New(tree.NewNames())
	r := bad.AddNode(300)
	c1 := bad.AddNode(301)
	c2 := bad.AddNode(302)
	bad.SetFirst(r, c2) // first child is node 2: not preorder
	bad.SetSecond(r, c1)
	if ix := BuildTreeIndex(bad, 0); ix != nil {
		t.Fatal("non-preorder tree produced an index")
	}
}

// FuzzReadIndexFile fuzzes the v2 sidecar parser: arbitrary bytes must
// never panic, stale v1 files must be rejected, and anything accepted
// must satisfy the structural invariants (sorted, in-bounds, laminar)
// and survive a write/read round trip.
func FuzzReadIndexFile(f *testing.F) {
	// Seed: a small valid v2 file.
	valid := func() []byte {
		var e1, e2 LabelSig
		e1.Add(300)
		e2.Add(65)
		ix := newIndex(10, []IndexEntry{
			{V: 0, Size: 10, FirstSize: 4, Labels: e1},
			{V: 1, Size: 4, FirstSize: 0, Labels: e2},
		})
		dir := f.TempDir()
		p := filepath.Join(dir, "seed.idx")
		if err := WriteIndexFile(p, ix, nil); err != nil {
			f.Fatal(err)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}()
	f.Add(valid)
	// Seed: truncated v2 (mid-bitmap).
	f.Add(valid[:len(valid)-17])
	// Seed: a v1 file (must be rejected).
	v1 := append([]byte(indexMagicV1), valid[len(indexMagic):]...)
	f.Add(v1)
	// Seed: overlapping (non-laminar) extents.
	overlap := append([]byte(nil), valid...)
	binary.BigEndian.PutUint64(overlap[len(indexMagic)+16+8:], 2) // entry 0: V=0 Size=10; entry 1: V=2..
	binary.BigEndian.PutUint64(overlap[len(indexMagic)+16+8+8:], 9)
	f.Add(overlap)
	// Seed: junk.
	f.Add([]byte("ARBIDX9\nnot an index at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		p := filepath.Join(dir, "fuzz.idx")
		if err := os.WriteFile(p, data, 0o666); err != nil {
			t.Skip()
		}
		ix, err := ReadIndexFile(p)
		if err != nil {
			return
		}
		if bytes.HasPrefix(data, []byte(indexMagicV1)) {
			t.Fatal("accepted a v1 sidecar")
		}
		// Accepted: the invariants the planner relies on must hold.
		if err := ix.validate(); err != nil {
			t.Fatalf("accepted index fails validation: %v", err)
		}
		// And it must round-trip bit-stably through the writer.
		p2 := filepath.Join(dir, "rt.idx")
		if err := WriteIndexFile(p2, ix, nil); err != nil {
			t.Fatal(err)
		}
		back, err := ReadIndexFile(p2)
		if err != nil {
			t.Fatalf("round trip of accepted index rejected: %v", err)
		}
		if back.N != ix.N || back.Len() != ix.Len() {
			t.Fatalf("round trip changed shape")
		}
		for i := range back.Entries() {
			if back.Entries()[i] != ix.Entries()[i] {
				t.Fatalf("round trip changed entry %d", i)
			}
		}
	})
}
