package storage

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"arb/internal/testutil"
	"arb/internal/tree"
)

// lzRoundTrip compresses src and decompresses the result, failing the
// test on any mismatch. Returns false when the encoder declined
// (incompressible input), which is a legal outcome, not a failure.
// sizedTree draws random trees until one has at least minNodes nodes,
// so the container tests always see multiple blocks.
func sizedTree(t *testing.T, rng *rand.Rand, minNodes, maxNodes int) *tree.Tree {
	t.Helper()
	for i := 0; i < 1000; i++ {
		tr := testutil.RandomTree(rng, maxNodes)
		if tr.Len() >= minNodes {
			return tr
		}
	}
	t.Fatalf("no random tree with >= %d nodes in 1000 draws", minNodes)
	return nil
}

func lzRoundTrip(t *testing.T, src []byte) bool {
	t.Helper()
	comp, ok := lzCompress(nil, src)
	if !ok {
		return false
	}
	if len(comp) >= len(src) {
		t.Fatalf("lzCompress accepted but did not shrink: %d -> %d", len(src), len(comp))
	}
	got := make([]byte, len(src))
	if err := lzDecompress(got, comp); err != nil {
		t.Fatalf("lzDecompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("lz round trip mismatch on %d bytes", len(src))
	}
	return true
}

func TestLZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	// Long runs: the overlap-copy path.
	if !lzRoundTrip(t, bytes.Repeat([]byte{0x80, 0x01}, 50000)) {
		t.Fatal("run-heavy input should compress")
	}
	// Repetitive record stream: a few distinct records shuffled in
	// bursts, the realistic label-stream shape.
	var burst []byte
	recs := [][]byte{{0xC0, 0x01}, {0x80, 0x02}, {0x40, 0x03}, {0x00, 0x04}}
	for i := 0; i < 30000; i++ {
		r := recs[rng.Intn(len(recs))]
		for j := 0; j < 1+rng.Intn(6); j++ {
			burst = append(burst, r...)
		}
	}
	if !lzRoundTrip(t, burst) {
		t.Fatal("bursty record stream should compress")
	}
	// Random bytes: must be declined, not corrupted.
	rnd := make([]byte, 4096)
	rng.Read(rnd)
	if lzRoundTrip(t, rnd) {
		t.Log("random block compressed (allowed, just unexpected)")
	}
	// Tiny inputs: always declined.
	if ok := lzRoundTrip(t, []byte{1, 2, 3}); ok {
		t.Fatal("3-byte input cannot compress")
	}
	// Mixed compressible/incompressible halves.
	mixed := append(bytes.Repeat([]byte("ab"), 8192), rnd...)
	lzRoundTrip(t, mixed)
}

func TestLZDecompressRejectsCorruptStreams(t *testing.T) {
	src := bytes.Repeat([]byte{0xAA, 0x01}, 4096)
	comp, ok := lzCompress(nil, src)
	if !ok {
		t.Fatal("setup: run input should compress")
	}
	dst := make([]byte, len(src))
	for i := range comp {
		for _, b := range []byte{0x00, 0xFF, comp[i] ^ 0x10} {
			mut := append([]byte(nil), comp...)
			if mut[i] == b {
				continue
			}
			mut[i] = b
			// Must either error or produce output — never panic or
			// read/write out of bounds (the race detector and bounds
			// checks enforce the rest).
			_ = lzDecompress(dst, mut)
		}
	}
	for cut := 0; cut < len(comp); cut += 7 {
		if err := lzDecompress(dst, comp[:cut]); err == nil && cut < len(comp)-1 {
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(comp))
		}
	}
}

// compressCopy compresses the database at base in place with the codec
// and returns the summary.
func compressCopy(t *testing.T, base string, codec uint8, blockSize int) ContainerInfo {
	t.Helper()
	info, err := CompressInPlace(base, codec, blockSize)
	if err != nil {
		t.Fatalf("CompressInPlace(%s): %v", CodecName(codec), err)
	}
	return info
}

// TestCompressedContainerRoundTrip compresses random-tree databases
// with both codecs at a small block size and checks byte-identical
// reads through every access pattern the scans use.
func TestCompressedContainerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, codec := range []uint8{CodecLZ, CodecFlate} {
		for iter := 0; iter < 4; iter++ {
			tr := sizedTree(t, rng, 2000, 9000)
			dir := t.TempDir()
			base := filepath.Join(dir, "db")
			db, err := CreateFromTree(base, tr)
			if err != nil {
				t.Fatal(err)
			}
			raw := make([]byte, db.N*NodeSize)
			if _, err := db.arb.ReadAt(raw, 0); err != nil {
				t.Fatal(err)
			}
			db.Close()

			info := compressCopy(t, base, codec, minBlockSize)
			if info.LogicalBytes != int64(len(raw)) {
				t.Fatalf("%s: container logical %d, want %d", CodecName(codec), info.LogicalBytes, len(raw))
			}
			cdb, err := Open(base)
			if err != nil {
				t.Fatal(err)
			}
			ci, ok := cdb.Compression()
			if !ok || ci.Codec != codec {
				t.Fatalf("reopened DB compression = %+v, %v", ci, ok)
			}
			if cdb.N != int64(len(raw))/NodeSize {
				t.Fatalf("compressed N %d, want %d", cdb.N, len(raw)/NodeSize)
			}
			// Whole-file read.
			got := make([]byte, len(raw))
			if _, err := cdb.arb.ReadAt(got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, raw) {
				t.Fatalf("%s iter %d: whole-file read differs", CodecName(codec), iter)
			}
			// Random sub-range reads, including block-straddling ones.
			for k := 0; k < 200; k++ {
				off := rng.Int63n(int64(len(raw)))
				n := rng.Int63n(int64(len(raw)) - off)
				if n > 3*minBlockSize {
					n = 3 * minBlockSize
				}
				buf := make([]byte, n)
				if _, err := cdb.arb.ReadAt(buf, off); err != nil {
					t.Fatalf("ReadAt(%d, %d): %v", off, n, err)
				}
				if !bytes.Equal(buf, raw[off:off+n]) {
					t.Fatalf("%s iter %d: range [%d,%d) differs", CodecName(codec), iter, off, off+n)
				}
			}
			// Reads past EOF behave like a section of the logical space.
			tail := make([]byte, 16)
			if n, err := cdb.arb.ReadAt(tail, int64(len(raw))-4); n != 4 || err == nil {
				t.Fatalf("tail read returned n=%d err=%v, want 4, EOF", n, err)
			}
			cdb.Close()
		}
	}
}

// TestCompressedScansBitIdentical folds and scans a compressed database
// and checks stats and results against the raw original, including the
// physical-bytes accounting invariants.
func TestCompressedScansBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	tr := sizedTree(t, rng, 6000, 20000)
	dir := t.TempDir()
	rawBase := filepath.Join(dir, "raw")
	compBase := filepath.Join(dir, "comp")
	rawDB, err := CreateFromTree(rawBase, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer rawDB.Close()
	if _, err := CreateFromTree(compBase, tr); err != nil {
		t.Fatal(err)
	}
	info := compressCopy(t, compBase, CodecLZ, minBlockSize)
	compDB, err := Open(compBase)
	if err != nil {
		t.Fatal(err)
	}
	defer compDB.Close()

	type scanResult struct {
		sig   uint64
		stats ScanStats
	}
	fold := func(db *DB) scanResult {
		sig, st, err := FoldBottomUp(context.Background(), db, func(first, second *uint64, rec Record, v int64) uint64 {
			h := uint64(rec.Label)*0x9E3779B185EBCA87 + uint64(v)
			if first != nil {
				h ^= *first * 3
			}
			if second != nil {
				h ^= *second * 7
			}
			return h
		})
		if err != nil {
			t.Fatal(err)
		}
		return scanResult{sig: sig, stats: st}
	}
	scan := func(db *DB) scanResult {
		var sig uint64
		st, err := ScanTopDown(context.Background(), db, func(v int64, rec Record, parent *uint64, k int) (uint64, error) {
			h := uint64(rec.Label)*0xFF51AFD7ED558CCD + uint64(v) + uint64(k)
			if parent != nil {
				h ^= *parent
			}
			sig ^= h
			return h, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return scanResult{sig: sig, stats: st}
	}

	rf, cf := fold(rawDB), fold(compDB)
	rs, cs := scan(rawDB), scan(compDB)
	if rf.sig != cf.sig || rs.sig != cs.sig {
		t.Fatal("compressed scans produced different results than raw")
	}
	// Logical counters identical in every field but PhysicalBytes.
	for _, p := range []struct{ raw, comp ScanStats }{{rf.stats, cf.stats}, {rs.stats, cs.stats}} {
		if p.raw.Nodes != p.comp.Nodes || p.raw.Bytes != p.comp.Bytes ||
			p.raw.SkippedBytes != p.comp.SkippedBytes || p.raw.MaxStack != p.comp.MaxStack {
			t.Fatalf("logical stats diverged: raw %+v comp %+v", p.raw, p.comp)
		}
	}
	// Raw databases: physical == logical. Compressed full scans: the
	// payload, which must be smaller.
	if rf.stats.PhysicalBytes != rf.stats.Bytes || rs.stats.PhysicalBytes != rs.stats.Bytes {
		t.Fatalf("raw physical bytes %d/%d, want %d", rf.stats.PhysicalBytes, rs.stats.PhysicalBytes, rf.stats.Bytes)
	}
	if cf.stats.PhysicalBytes != info.PayloadBytes || cs.stats.PhysicalBytes != info.PayloadBytes {
		t.Fatalf("compressed full-scan physical bytes %d/%d, want payload %d",
			cf.stats.PhysicalBytes, cs.stats.PhysicalBytes, info.PayloadBytes)
	}
	if info.PayloadBytes >= info.LogicalBytes {
		t.Fatalf("payload %d not smaller than logical %d on a label stream", info.PayloadBytes, info.LogicalBytes)
	}
	// PhysSpan: sums over a block-aligned partition cover the payload.
	blockNodes := int64(info.BlockSize) / NodeSize
	var sum int64
	for lo := int64(0); lo < compDB.N; lo += blockNodes {
		hi := lo + blockNodes
		if hi > compDB.N {
			hi = compDB.N
		}
		sum += compDB.PhysSpan(lo, hi)
	}
	if sum != info.PayloadBytes {
		t.Fatalf("block-aligned PhysSpan partition sums to %d, want %d", sum, info.PayloadBytes)
	}
}

// TestCompressedRangeScans exercises the range/skipping primitives on a
// compressed database against the raw one via the subtree index.
func TestCompressedRangeScans(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tr := sizedTree(t, rng, 5000, 15000)
	dir := t.TempDir()
	rawBase, compBase := filepath.Join(dir, "raw"), filepath.Join(dir, "comp")
	rawDB, err := CreateFromTree(rawBase, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer rawDB.Close()
	if _, err := CreateFromTree(compBase, tr); err != nil {
		t.Fatal(err)
	}
	compressCopy(t, compBase, CodecFlate, minBlockSize)
	compDB, err := Open(compBase)
	if err != nil {
		t.Fatal(err)
	}
	defer compDB.Close()

	ix, err := compDB.Index(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cuts := ix.Cut(compDB.N/7, 16)
	if len(cuts) == 0 {
		t.Skip("tree too small to cut")
	}
	rawSigs := make(map[int64]int64, len(cuts))
	for _, db := range []*DB{rawDB, compDB} {
		for _, x := range cuts {
			sig, _, err := FoldBottomUpRange(context.Background(), db, x, func(first, second *int64, rec Record, v int64) int64 {
				s := int64(rec.Label) + v
				if first != nil {
					s += *first
				}
				if second != nil {
					s += *second
				}
				return s
			})
			if err != nil {
				t.Fatalf("extent [%d,%d): %v", x.Root, x.End(), err)
			}
			if db == rawDB {
				rawSigs[x.Root] = sig
			} else if rawSigs[x.Root] != sig {
				t.Fatalf("extent [%d,%d): compressed fold differs", x.Root, x.End())
			}
		}
	}
}

// TestCompressInPlaceSidecar checks the v3 sidecar negotiation: after
// compression the .idx carries the container descriptor and still
// loads; a v1-era reader path (ReadIndexFile on v2) keeps working on
// raw databases.
func TestCompressInPlaceSidecar(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	tr := sizedTree(t, rng, 1500, 5000)
	base := filepath.Join(t.TempDir(), "db")
	db, err := CreateFromTree(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteIndex(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	db.Close()
	ix0, ci0, err := ReadIndexFileInfo(base + ".idx")
	if err != nil {
		t.Fatal(err)
	}
	if ci0 != nil {
		t.Fatalf("raw sidecar carries a descriptor: %+v", ci0)
	}
	info := compressCopy(t, base, CodecLZ, 0)
	ix1, ci1, err := ReadIndexFileInfo(base + ".idx")
	if err != nil {
		t.Fatal(err)
	}
	if ci1 == nil || ci1.Codec != CodecLZ || ci1.LogicalBytes != info.LogicalBytes || ci1.PhysBytes != info.PhysBytes {
		t.Fatalf("v3 sidecar descriptor %+v, want %+v", ci1, info)
	}
	if ix1.N != ix0.N || ix1.Len() != ix0.Len() {
		t.Fatalf("sidecar entries changed across compression: %d/%d vs %d/%d", ix1.N, ix1.Len(), ix0.N, ix0.Len())
	}
	// The compressed DB loads the sidecar rather than rebuilding.
	cdb, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()
	ix2, err := cdb.Index(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Len() != ix0.Len() {
		t.Fatalf("compressed DB index has %d entries, want %d", ix2.Len(), ix0.Len())
	}
}

// TestCompressedRejectsLegacyReader checks the odd-size guard: a
// container file never has a size divisible by NodeSize, so a pre-v3
// reader (simulated by bypassing the sniff) rejects it cleanly.
func TestCompressedRejectsLegacyReader(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	tr := sizedTree(t, rng, 500, 3000)
	base := filepath.Join(t.TempDir(), "db")
	db, err := CreateFromTree(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	compressCopy(t, base, CodecLZ, 0)
	st, err := os.Stat(base + ".arb")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size()%NodeSize == 0 {
		t.Fatalf("container size %d is a multiple of %d: legacy readers would misparse it", st.Size(), NodeSize)
	}
}

// TestCompressedConcurrentReads hammers one compressed handle from many
// goroutines at clashing offsets — the slot cache must stay coherent
// (run under -race in CI).
func TestCompressedConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	tr := sizedTree(t, rng, 6000, 20000)
	base := filepath.Join(t.TempDir(), "db")
	db, err := CreateFromTree(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, db.N*NodeSize)
	if _, err := db.arb.ReadAt(raw, 0); err != nil {
		t.Fatal(err)
	}
	db.Close()
	compressCopy(t, base, CodecLZ, minBlockSize)
	cdb, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer cdb.Close()
	const workers = 8
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			buf := make([]byte, 4096)
			for k := 0; k < 300; k++ {
				off := r.Int63n(int64(len(raw)) - int64(len(buf)))
				if _, err := cdb.arb.ReadAt(buf, off); err != nil {
					errc <- fmt.Errorf("ReadAt(%d): %w", off, err)
					return
				}
				if !bytes.Equal(buf, raw[off:off+int64(len(buf))]) {
					errc <- fmt.Errorf("read at %d differs", off)
					return
				}
			}
			errc <- nil
		}(int64(w) + 71)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
