package storage

import "os"

// syncDir fsyncs a directory so a preceding rename (or file creation)
// in it survives a crash. POSIX only guarantees an atomic rename is
// durable once the containing directory's metadata reaches disk;
// syncing just the file leaves the commit window open. Every
// temp+rename commit path (index sidecars, compressed container
// swaps, vstore manifests and segments) must call this after the
// rename.
//
// Some filesystems refuse fsync on a directory handle opened read-only
// (EINVAL/EBADF on certain network mounts); those errors are ignored —
// the rename itself still happened, durability is simply no worse than
// before.
func syncDir(dir string) error {
	f, err := openDirForSync(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fsyncDirFile(f); err != nil {
		return nil //nolint:nilerr // see doc comment: fsync-on-dir unsupported here
	}
	return nil
}

// SyncDir is the exported form for sibling packages (vstore) that
// share the same rename-commit durability requirement.
func SyncDir(dir string) error { return syncDir(dir) }

// Test hooks: tests inject failures to prove commit paths actually
// reach the directory sync.
var (
	openDirForSync = func(dir string) (*os.File, error) { return os.Open(dir) }
	fsyncDirFile   = func(f *os.File) error { return f.Sync() }
)
