package storage

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"arb/internal/tree"
)

func TestRecordRoundTrip(t *testing.T) {
	f := func(label uint16, hasFirst, hasSecond bool) bool {
		label &= labelMask
		r := Record{Label: label, HasFirst: hasFirst, HasSecond: hasSecond}
		return DecodeRecord(r.Encode()) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordLayoutPaperExample(t *testing.T) {
	// Section 5: two high bits are the child flags, the rest the label.
	r := Record{Label: 0x1234, HasFirst: true, HasSecond: false}
	if got := r.Encode(); got != 0x8000|0x1234 {
		t.Fatalf("encoded %04x", got)
	}
	r = Record{Label: 3, HasFirst: true, HasSecond: true}
	if got := r.Encode(); got != 0xC003 {
		t.Fatalf("encoded %04x", got)
	}
}

func TestFigure1TreeSerialisation(t *testing.T) {
	// The paper's Section 5 byte-layout example: Figure 1(b) serialises
	// as v1(1,1) v2(1,0) v4(0,0) v5(0,1) v6(0,0) v3(0,0), where (f,s)
	// are the child flags and nodes appear in preorder.
	tr := tree.New(nil)
	var l [7]tree.Label
	for i := 1; i <= 6; i++ {
		l[i] = tr.Names().MustIntern(fmt.Sprintf("l%d", i))
	}
	v1 := tr.AddNode(l[1])
	v2 := tr.AddNode(l[2])
	v4 := tr.AddNode(l[4])
	v5 := tr.AddNode(l[5])
	v6 := tr.AddNode(l[6])
	v3 := tr.AddNode(l[3])
	tr.SetFirst(v1, v2)
	tr.SetSecond(v1, v3)
	tr.SetFirst(v2, v4)
	tr.SetSecond(v2, v5)
	tr.SetFirst(v5, v6)
	if err := tr.CheckPreorder(); err != nil {
		t.Fatal(err)
	}

	base := filepath.Join(t.TempDir(), "fig1")
	db, err := CreateFromTree(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	raw, err := os.ReadFile(base + ".arb")
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		label         tree.Label
		first, second bool
	}
	want := []rec{
		{l[1], true, true}, {l[2], true, true}, {l[4], false, false},
		{l[5], true, false}, {l[6], false, false}, {l[3], false, false},
	}
	if len(raw) != len(want)*NodeSize {
		t.Fatalf(".arb has %d bytes, want %d", len(raw), len(want)*NodeSize)
	}
	for i, w := range want {
		r := DecodeRecord(binary.BigEndian.Uint16(raw[2*i:]))
		if tree.Label(r.Label) != w.label || r.HasFirst != w.first || r.HasSecond != w.second {
			t.Fatalf("record %d = %+v, want %+v", i, r, w)
		}
	}
}

func TestCreateRoundTrip(t *testing.T) {
	// Document events -> .evt -> backward pass -> .arb -> ReadTree must
	// equal the tree built directly from the same events.
	feed := func(h tree.EventHandler) error {
		if err := h.Begin("a"); err != nil {
			return err
		}
		if err := h.Text([]byte("hi")); err != nil {
			return err
		}
		for _, tag := range []string{"b", "c"} {
			if err := h.Begin(tag); err != nil {
				return err
			}
			if err := h.End(); err != nil {
				return err
			}
		}
		return h.End()
	}
	base := filepath.Join(t.TempDir(), "db")
	db, stats, err := Create(base, func(ew *EventWriter) error { return feed(ew) }, CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if stats.ElemNodes != 3 || stats.CharNodes != 2 {
		t.Fatalf("stats %+v", stats)
	}
	got, err := db.ReadTree(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b := tree.NewBuilder(nil)
	if err := feed(b); err != nil {
		t.Fatal(err)
	}
	want, err := b.Tree()
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("round trip:\n got %s\nwant %s", got, want)
	}
	// The event file is deleted by default.
	if _, err := os.Stat(base + ".evt"); !os.IsNotExist(err) {
		t.Fatal(".evt not cleaned up")
	}
}

func TestCreateKeepEvt(t *testing.T) {
	base := filepath.Join(t.TempDir(), "db")
	db, stats, err := Create(base, func(ew *EventWriter) error {
		if err := ew.Begin("a"); err != nil {
			return err
		}
		return ew.End()
	}, CreateOpts{KeepEvt: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st, err := os.Stat(base + ".evt")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != stats.EvtBytes || st.Size() != 4 {
		t.Fatalf(".evt size %d, stats %d", st.Size(), stats.EvtBytes)
	}
}

func TestCreateErrors(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]func(*EventWriter) error{
		"empty":      func(ew *EventWriter) error { return nil },
		"unbalanced": func(ew *EventWriter) error { return ew.Begin("a") },
		"extra-end": func(ew *EventWriter) error {
			if err := ew.Begin("a"); err != nil {
				return err
			}
			if err := ew.End(); err != nil {
				return err
			}
			return ew.End()
		},
	}
	for name, feed := range cases {
		if _, _, err := Create(filepath.Join(dir, name), feed, CreateOpts{}); err == nil {
			t.Errorf("%s: Create succeeded, want error", name)
		}
	}
}

func TestBackwardReaderAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 2, 255, 256, 257, 70000} {
		data := make([]byte, 2*n)
		rng.Read(data)
		f, err := os.CreateTemp(t.TempDir(), "back")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		br, err := NewBackwardReader(f, int64(len(data)), 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := n - 1; i >= 0; i-- {
			b, err := br.Next()
			if err != nil {
				t.Fatalf("n=%d unit %d: %v", n, i, err)
			}
			if !bytes.Equal(b, data[2*i:2*i+2]) {
				t.Fatalf("n=%d unit %d: got %x want %x", n, i, b, data[2*i:2*i+2])
			}
		}
		if _, err := br.Next(); err == nil {
			t.Fatalf("n=%d: read past the beginning", n)
		}
		f.Close()
	}
}

func TestBackwardWriterMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 3, 1000, 65536, 70001} {
		data := make([]byte, n)
		rng.Read(data)
		path := filepath.Join(t.TempDir(), "w")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		bw := NewBackwardWriter(f, int64(n))
		for i := n - 1; i >= 0; i-- {
			bw.Prepend(data[i : i+1])
		}
		if err := bw.Close(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("n=%d: backward-written file differs", n)
		}
	}
}

// TestScansAgreeWithTree checks both scan orders against the in-memory
// tree on random inputs, including Proposition 5.1's stack bound.
func TestScansAgreeWithTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		tr := randomDoc(rng, 200)
		base := filepath.Join(t.TempDir(), "db")
		db, err := CreateFromTree(base, tr)
		if err != nil {
			t.Fatal(err)
		}
		docDepth := tree.DocDepth(tr)

		// Top-down: records must arrive in preorder with correct parents.
		type info struct{ v int64 }
		var visited []int64
		stats, err := ScanTopDown(context.Background(), db, func(v int64, rec Record, parent *info, k int) (info, error) {
			visited = append(visited, v)
			if tree.Label(rec.Label) != tr.Label(tree.NodeID(v)) {
				return info{}, fmt.Errorf("label mismatch at %d", v)
			}
			if parent != nil {
				p := tree.NodeID(parent.v)
				var c tree.NodeID
				if k == 1 {
					c = tr.First(p)
				} else {
					c = tr.Second(p)
				}
				if c != tree.NodeID(v) {
					return info{}, fmt.Errorf("node %d is not child %d of %d", v, k, p)
				}
			}
			return info{v}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(visited) != tr.Len() || stats.MaxStack > docDepth {
			t.Fatalf("visited %d nodes (want %d), stack %d (doc depth %d)",
				len(visited), tr.Len(), stats.MaxStack, docDepth)
		}
		for i, v := range visited {
			if int64(i) != v {
				t.Fatalf("not preorder at %d: %d", i, v)
			}
		}

		// Bottom-up: fold subtree sizes.
		size, stats2, err := FoldBottomUp(context.Background(), db, func(first, second *int64, rec Record, v int64) int64 {
			s := int64(1)
			if first != nil {
				s += *first
			}
			if second != nil {
				s += *second
			}
			return s
		})
		if err != nil {
			t.Fatal(err)
		}
		if size != int64(tr.Len()) {
			t.Fatalf("folded size %d, want %d", size, tr.Len())
		}
		if stats2.MaxStack > docDepth+1 {
			t.Fatalf("bottom-up stack %d for doc depth %d", stats2.MaxStack, docDepth)
		}
		db.Close()
	}
}

// randomDoc builds a random document tree (as opposed to an arbitrary
// binary tree) so document-depth bounds are meaningful.
func randomDoc(rng *rand.Rand, maxNodes int) *tree.Tree {
	b := tree.NewBuilder(nil)
	budget := 1 + rng.Intn(maxNodes)
	var gen func(depth int)
	gen = func(depth int) {
		budget--
		must(b.Begin([]string{"a", "b", "c"}[rng.Intn(3)]))
		for budget > 0 && depth < 10 && rng.Intn(3) > 0 {
			if rng.Intn(5) == 0 {
				budget--
				must(b.Text([]byte{'x'}))
			} else {
				gen(depth + 1)
			}
		}
		must(b.End())
	}
	gen(0)
	t, err := b.Tree()
	if err != nil {
		panic(err)
	}
	return t
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func TestMalformedArbRejected(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "bad")
	// Root claims a first child but the file has one record.
	raw := make([]byte, 2)
	binary.BigEndian.PutUint16(raw, Record{Label: 300, HasFirst: true}.Encode())
	if err := os.WriteFile(base+".arb", raw, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := ScanTopDown(context.Background(), db, func(v int64, rec Record, parent *int, k int) (int, error) {
		return 0, nil
	}); err == nil {
		t.Fatal("forward scan accepted a truncated database")
	}
	if _, _, err := FoldBottomUp(context.Background(), db, func(first, second *int, rec Record, v int64) int {
		return 0
	}); err == nil {
		t.Fatal("backward scan accepted a truncated database")
	}

	// Odd file size.
	if err := os.WriteFile(base+"2.arb", []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(base + "2"); err == nil {
		t.Fatal("Open accepted an odd-sized .arb")
	}
}

func TestCreateBinaryValidation(t *testing.T) {
	dir := t.TempDir()
	bad := map[string]func(emit RecordSink) error{
		"empty": func(emit RecordSink) error { return nil },
		"incomplete": func(emit RecordSink) error {
			return emit(300, true, false) // announces a child that never comes
		},
		"second-tree": func(emit RecordSink) error {
			if err := emit(300, false, false); err != nil {
				return err
			}
			return emit(300, false, false)
		},
		"label-overflow": func(emit RecordSink) error {
			return emit(tree.Label(labelMask+1), false, false)
		},
	}
	for name, feed := range bad {
		if _, err := CreateBinary(filepath.Join(dir, name), tree.NewNames(), feed); err == nil {
			t.Errorf("%s: CreateBinary succeeded, want error", name)
		}
	}
}

func TestEmitXMLEscaping(t *testing.T) {
	tr := tree.New(nil)
	a := tr.Names().MustIntern("a")
	root := tr.AddNode(a)
	prev := tree.None
	for _, c := range []byte("<&>\"x") {
		n := tr.AddNode(tree.Label(c))
		if prev == tree.None {
			tr.SetFirst(root, n)
		} else {
			tr.SetSecond(prev, n)
		}
		prev = n
	}
	base := filepath.Join(t.TempDir(), "esc")
	db, err := CreateFromTree(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var buf bytes.Buffer
	if err := EmitXMLContext(context.Background(), db, &buf, nil); err != nil {
		t.Fatal(err)
	}
	want := "<a>&lt;&amp;&gt;&quot;x</a>"
	if got := buf.String(); got != want {
		t.Fatalf("EmitXML = %q, want %q", got, want)
	}
}

func TestEmitXMLSelection(t *testing.T) {
	tr := tree.New(nil)
	a := tr.Names().MustIntern("a")
	b := tr.Names().MustIntern("b")
	root := tr.AddNode(a)
	c1 := tr.AddNode(b)
	c2 := tr.AddNode(b)
	tr.SetFirst(root, c1)
	tr.SetSecond(c1, c2)
	base := filepath.Join(t.TempDir(), "sel")
	db, err := CreateFromTree(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var buf bytes.Buffer
	if err := EmitXMLContext(context.Background(), db, &buf, func(v int64) bool { return v == 2 }); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if got != `<a><b/><b arb:selected="true"/></a>` {
		t.Fatalf("EmitXML = %q", got)
	}
}

// TestRoundTripProperty is the storage round-trip as a testing/quick
// property: any document tree survives tree -> .arb -> tree unchanged.
func TestRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(13))
	i := 0
	f := func(seed int64) bool {
		i++
		tr := randomDoc(rand.New(rand.NewSource(seed)), 120)
		base := filepath.Join(dir, fmt.Sprintf("db%d", i))
		db, err := CreateFromTree(base, tr)
		if err != nil {
			t.Logf("CreateFromTree: %v", err)
			return false
		}
		defer db.Close()
		got, err := db.ReadTree(context.Background())
		if err != nil {
			t.Logf("ReadTree: %v", err)
			return false
		}
		return got.String() == tr.String()
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
