package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"arb/internal/tree"
)

// CreateStats reports the statistics of a database creation run — exactly
// the columns of Figure 5 of the paper.
type CreateStats struct {
	ElemNodes int64         // (1) element nodes inserted
	CharNodes int64         // (2) character nodes inserted
	Tags      int           // (3) distinct tags (not counting characters)
	Duration  time.Duration // (4) overall creation time
	ArbBytes  int64         // (5) .arb file size
	LabBytes  int64         // (6) .lab file size
	EvtBytes  int64         // (7) temporary .evt file size
}

// EventWriter is the sink of the first (SAX parsing) creation pass: it
// interns tag names, counts nodes, and writes begin/end events to the
// temporary event file (two 2-byte events per node).
type EventWriter struct {
	w     *bufio.Writer
	names *tree.Names
	depth int
	stats CreateStats
	err   error
	buf   [2]byte
}

func (e *EventWriter) emit(v uint16) {
	if e.err != nil {
		return
	}
	binary.BigEndian.PutUint16(e.buf[:], v)
	if _, err := e.w.Write(e.buf[:]); err != nil {
		e.err = err
	}
}

// Begin opens an element with the given tag.
func (e *EventWriter) Begin(name string) error {
	if e.err != nil {
		return e.err
	}
	l, err := e.names.Intern(name)
	if err != nil {
		e.err = err
		return err
	}
	e.stats.ElemNodes++
	e.depth++
	e.emit(uint16(l))
	return e.err
}

// Text adds the bytes of s as character nodes (a begin and an end event
// each: characters are leaves).
func (e *EventWriter) Text(s []byte) error {
	if e.err != nil {
		return e.err
	}
	if e.depth == 0 && len(s) > 0 {
		e.err = fmt.Errorf("storage: text outside document root")
		return e.err
	}
	for _, c := range s {
		e.stats.CharNodes++
		e.emit(uint16(c))
		e.emit(evtEnd)
	}
	return e.err
}

// End closes the innermost open element.
func (e *EventWriter) End() error {
	if e.err != nil {
		return e.err
	}
	if e.depth == 0 {
		e.err = fmt.Errorf("storage: unbalanced end event")
		return e.err
	}
	e.depth--
	e.emit(evtEnd)
	return e.err
}

// CreateOpts configures database creation.
type CreateOpts struct {
	// KeepEvt retains the temporary event file after creation.
	KeepEvt bool
}

// Create builds a database under the given base path (producing base.arb
// and base.lab) from the document events that feed emits. It implements
// the paper's two-pass scheme: feed is the SAX parsing pass writing the
// temporary base.evt file; the second pass reads base.evt backwards while
// writing base.arb backwards, which converts the unranked document into
// its binary-tree encoding using a stack proportional to the *document*
// depth (not to the potentially enormous sibling counts).
func Create(base string, feed func(*EventWriter) error, opts CreateOpts) (*DB, *CreateStats, error) {
	start := time.Now()
	evtPath := base + ".evt"
	arbPath := base + ".arb"
	labPath := base + ".lab"

	// Pass 1: stream events to disk.
	evtF, err := os.Create(evtPath)
	if err != nil {
		return nil, nil, err
	}
	ew := &EventWriter{w: bufio.NewWriterSize(evtF, defaultBufSize), names: tree.NewNames()}
	if err := feed(ew); err != nil {
		evtF.Close()
		return nil, nil, err
	}
	if ew.err != nil {
		evtF.Close()
		return nil, nil, ew.err
	}
	if ew.depth != 0 {
		evtF.Close()
		return nil, nil, fmt.Errorf("storage: %d unclosed elements", ew.depth)
	}
	n := ew.stats.ElemNodes + ew.stats.CharNodes
	if n == 0 {
		evtF.Close()
		return nil, nil, fmt.Errorf("storage: empty document")
	}
	if err := ew.w.Flush(); err != nil {
		evtF.Close()
		return nil, nil, err
	}

	// Pass 2: read events backwards, write .arb backwards.
	if err := buildArbBackwards(evtF, n, arbPath); err != nil {
		evtF.Close()
		return nil, nil, err
	}
	evtF.Close()

	// Write the label file.
	labF, err := os.Create(labPath)
	if err != nil {
		return nil, nil, err
	}
	labBytes, err := ew.names.WriteTo(labF)
	if err2 := labF.Close(); err == nil {
		err = err2
	}
	if err != nil {
		return nil, nil, err
	}

	stats := ew.stats
	stats.ArbBytes = n * NodeSize
	stats.EvtBytes = 2 * n * 2
	stats.LabBytes = labBytes
	stats.Tags = ew.names.Len()
	if !opts.KeepEvt {
		if err := os.Remove(evtPath); err != nil {
			return nil, nil, err
		}
	}
	db, err := Open(base)
	if err != nil {
		return nil, nil, err
	}
	// Persist the subtree chunk index so parallel evaluation never needs
	// an extra scan (one backward pass over the fresh, cached .arb).
	if err := db.WriteIndex(nil, 0); err != nil {
		db.Close()
		return nil, nil, err
	}
	stats.Duration = time.Since(start)
	return db, &stats, nil
}

// buildArbBackwards is the second creation pass. Reading the event stream
// backwards, a node's begin events appear in exactly reverse preorder, so
// records can be written strictly back-to-front. A stack frame per open
// (in reverse: not-yet-begun) element tracks whether any child has been
// seen; when a node's begin event arrives, its own frame tells whether it
// has a first child, and the parent frame — which has already seen any
// *later* sibling — tells whether it has a second child.
func buildArbBackwards(evtF *os.File, n int64, arbPath string) error {
	evtSize := 4 * n
	br, err := NewBackwardReader(evtF, evtSize, 2)
	if err != nil {
		return err
	}
	defer br.Release()
	arbF, err := os.Create(arbPath)
	if err != nil {
		return err
	}
	defer arbF.Close()
	if err := arbF.Truncate(n * NodeSize); err != nil {
		return err
	}
	bw := NewBackwardWriter(arbF, n*NodeSize)

	type frame struct{ sawChild bool }
	var stack []frame
	var rec [2]byte
	for {
		b, err := br.Next()
		if err != nil {
			break // io.EOF: all events consumed
		}
		v := binary.BigEndian.Uint16(b)
		if v&evtEnd != 0 {
			stack = append(stack, frame{})
			continue
		}
		// Begin event for a node with label v.
		if len(stack) == 0 {
			return fmt.Errorf("storage: unbalanced begin event")
		}
		own := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r := Record{Label: v, HasFirst: own.sawChild}
		if len(stack) > 0 {
			r.HasSecond = stack[len(stack)-1].sawChild
			stack[len(stack)-1].sawChild = true
		}
		binary.BigEndian.PutUint16(rec[:], r.Encode())
		bw.Prepend(rec[:])
	}
	if len(stack) != 0 {
		return fmt.Errorf("storage: %d unmatched end events", len(stack))
	}
	return bw.Close()
}

// CreateFullBinary writes a full binary tree of the given depth as a
// database, streaming the records straight to disk: a node at depth d
// carries the tag tags[d%len(tags)], inner nodes have both children. The
// tree has 2^(depth+1)-1 nodes, so depth 24 yields a ~64 MB .arb file —
// the generator exists to make big-database experiments (shared-scan
// batching, parallel speedups) reproducible without materialising the
// tree in memory.
func CreateFullBinary(base string, depth int, tags []string) (*DB, error) {
	if depth < 0 || depth > 40 {
		return nil, fmt.Errorf("storage: full binary depth %d out of range", depth)
	}
	if len(tags) == 0 {
		return nil, fmt.Errorf("storage: need at least one tag")
	}
	names := tree.NewNames()
	labels := make([]uint16, len(tags))
	for i, tg := range tags {
		l, err := names.Intern(tg)
		if err != nil {
			return nil, err
		}
		labels[i] = uint16(l)
	}
	arbF, err := os.Create(base + ".arb")
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(arbF, defaultBufSize)
	// Precompute the two record encodings per depth level; the preorder
	// emission is then a plain recursion of the tree's depth.
	inner := make([][2]byte, depth+1)
	leaf := make([][2]byte, depth+1)
	for d := 0; d <= depth; d++ {
		binary.BigEndian.PutUint16(inner[d][:], Record{Label: labels[d%len(labels)], HasFirst: true, HasSecond: true}.Encode())
		binary.BigEndian.PutUint16(leaf[d][:], Record{Label: labels[d%len(labels)]}.Encode())
	}
	var werr error
	var emit func(d int)
	emit = func(d int) {
		if werr != nil {
			return
		}
		if d == depth {
			_, werr = w.Write(leaf[d][:])
			return
		}
		if _, werr = w.Write(inner[d][:]); werr != nil {
			return
		}
		emit(d + 1)
		emit(d + 1)
	}
	emit(0)
	if werr == nil {
		werr = w.Flush()
	}
	if err := arbF.Close(); werr == nil {
		werr = err
	}
	if werr != nil {
		return nil, werr
	}
	labF, err := os.Create(base + ".lab")
	if err != nil {
		return nil, err
	}
	if _, err := names.WriteTo(labF); err != nil {
		labF.Close()
		return nil, err
	}
	if err := labF.Close(); err != nil {
		return nil, err
	}
	db, err := Open(base)
	if err != nil {
		return nil, err
	}
	if err := db.WriteIndex(nil, 0); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// CreateFromTree writes an in-memory tree as a database (forward pass; no
// event file needed since child flags are already known). Used by tests
// and by workload generators that build trees in memory.
func CreateFromTree(base string, t *tree.Tree) (*DB, error) {
	arbF, err := os.Create(base + ".arb")
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(arbF, defaultBufSize)
	var buf [2]byte
	for v := 0; v < t.Len(); v++ {
		r := Record{
			Label:     uint16(t.Label(tree.NodeID(v))),
			HasFirst:  t.HasFirst(tree.NodeID(v)),
			HasSecond: t.HasSecond(tree.NodeID(v)),
		}
		binary.BigEndian.PutUint16(buf[:], r.Encode())
		if _, err := w.Write(buf[:]); err != nil {
			arbF.Close()
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		arbF.Close()
		return nil, err
	}
	if err := arbF.Close(); err != nil {
		return nil, err
	}
	labF, err := os.Create(base + ".lab")
	if err != nil {
		return nil, err
	}
	if _, err := t.Names().WriteTo(labF); err != nil {
		labF.Close()
		return nil, err
	}
	if err := labF.Close(); err != nil {
		return nil, err
	}
	db, err := Open(base)
	if err != nil {
		return nil, err
	}
	if err := db.WriteIndex(nil, 0); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}
