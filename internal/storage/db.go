package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"arb/internal/tree"
)

// DB is an open .arb database.
type DB struct {
	Base  string
	N     int64 // number of nodes
	Names *tree.Names

	arb *os.File
}

// Open opens base.arb and base.lab.
func Open(base string) (*DB, error) {
	arbF, err := os.Open(base + ".arb")
	if err != nil {
		return nil, err
	}
	st, err := arbF.Stat()
	if err != nil {
		arbF.Close()
		return nil, err
	}
	if st.Size()%NodeSize != 0 {
		arbF.Close()
		return nil, fmt.Errorf("storage: %s.arb has size %d, not a multiple of %d", base, st.Size(), NodeSize)
	}
	names := tree.NewNames()
	labF, err := os.Open(base + ".lab")
	if err == nil {
		names, err = tree.ReadNames(labF)
		labF.Close()
		if err != nil {
			arbF.Close()
			return nil, err
		}
	} else if !os.IsNotExist(err) {
		arbF.Close()
		return nil, err
	}
	return &DB{Base: base, N: st.Size() / NodeSize, Names: names, arb: arbF}, nil
}

// Close releases the database's file handle.
func (db *DB) Close() error { return db.arb.Close() }

// ScanStats reports the cost profile of one linear scan, used to verify
// Proposition 5.1 (stack bounded by the document depth).
type ScanStats struct {
	Nodes    int64
	MaxStack int
}

// FoldBottomUp traverses the database bottom-up in one backward linear
// scan of the .arb file (Proposition 5.1), combining child results into
// parent results. combine is called exactly once per node, in reverse
// preorder, with the results of the node's first and second child (nil
// for absent children) and the node's record and preorder index. It
// returns the root's result.
func FoldBottomUp[S any](db *DB, combine func(first, second *S, rec Record, v int64) S) (S, ScanStats, error) {
	var zero S
	var stats ScanStats
	br, err := NewBackwardReader(db.arb, db.N*NodeSize, NodeSize)
	if err != nil {
		return zero, stats, err
	}
	// Reading preorder backwards, a node is reached after its entire
	// second subtree (pushed first) and first subtree (pushed second, so
	// popped first).
	var stack []S
	for v := db.N - 1; v >= 0; v-- {
		b, err := br.Next()
		if err != nil {
			return zero, stats, fmt.Errorf("storage: backward scan: %w", err)
		}
		rec := DecodeRecord(binary.BigEndian.Uint16(b))
		var first, second *S
		if rec.HasFirst {
			if len(stack) == 0 {
				return zero, stats, fmt.Errorf("storage: malformed .arb: missing first subtree at node %d", v)
			}
			first = &stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		}
		if rec.HasSecond {
			if len(stack) == 0 {
				return zero, stats, fmt.Errorf("storage: malformed .arb: missing second subtree at node %d", v)
			}
			second = &stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		}
		s := combine(first, second, rec, v)
		stack = append(stack, s)
		if len(stack) > stats.MaxStack {
			stats.MaxStack = len(stack)
		}
		stats.Nodes++
	}
	if len(stack) != 1 {
		return zero, stats, fmt.Errorf("storage: malformed .arb: %d roots", len(stack))
	}
	return stack[0], stats, nil
}

// ScanTopDown traverses the database top-down in one forward linear scan
// of the .arb file (Proposition 5.1). visit is called exactly once per
// node in preorder; for the root, parent is nil and k is 0; otherwise
// parent is the value visit returned for the node's parent and k tells
// whether the node is the first (1) or second (2) child. The stack holds
// one entry per ancestor whose second subtree is still pending.
func ScanTopDown[S any](db *DB, visit func(v int64, rec Record, parent *S, k int) (S, error)) (ScanStats, error) {
	var stats ScanStats
	if _, err := db.arb.Seek(0, io.SeekStart); err != nil {
		return stats, err
	}
	r := bufio.NewReaderSize(db.arb, defaultBufSize)
	var buf [NodeSize]byte

	var pending []S // nodes awaiting their second subtree
	var parent *S
	k := 0
	var parentVal S
	for v := int64(0); v < db.N; v++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return stats, fmt.Errorf("storage: forward scan: %w", err)
		}
		rec := DecodeRecord(binary.BigEndian.Uint16(buf[:]))
		s, err := visit(v, rec, parent, k)
		if err != nil {
			return stats, err
		}
		stats.Nodes++
		if rec.HasSecond {
			pending = append(pending, s)
			if len(pending) > stats.MaxStack {
				stats.MaxStack = len(pending)
			}
		}
		if rec.HasFirst {
			parentVal = s
			parent = &parentVal
			k = 1
		} else if len(pending) > 0 {
			parentVal = pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			parent = &parentVal
			k = 2
		} else {
			parent = nil
			k = 0
			// Only legal if this was the last node.
			if v != db.N-1 {
				return stats, fmt.Errorf("storage: malformed .arb: scan ended at node %d of %d", v, db.N)
			}
		}
	}
	if parent != nil || len(pending) > 0 {
		return stats, fmt.Errorf("storage: malformed .arb: %d announced subtrees missing at end of file", len(pending)+1)
	}
	return stats, nil
}

// ReadTree materialises the whole database as an in-memory tree. Intended
// for tests and small databases.
func (db *DB) ReadTree() (*tree.Tree, error) {
	t := tree.New(db.Names)
	type ctx struct {
		parent tree.NodeID
		k      int
	}
	_, err := ScanTopDown(db, func(v int64, rec Record, parent *ctx, k int) (ctx, error) {
		id := t.AddNode(tree.Label(rec.Label))
		if parent != nil {
			if k == 1 {
				t.SetFirst(parent.parent, id)
			} else {
				t.SetSecond(parent.parent, id)
			}
		}
		return ctx{parent: id}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
