package storage

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"arb/internal/tree"
)

// ErrBadExtent reports that a claimed subtree extent does not match the
// database's structure — the symptom of a stale or foreign chunk index
// (say, a .arb file swapped underneath its .idx sidecar). Callers can
// rebuild the index and retry.
var ErrBadExtent = errors.New("storage: extent does not match the database structure")

// DB is an open .arb database. All read paths use offset-addressed I/O
// (ReadAt), so one handle can serve any number of concurrent scans. The
// record source is any io.ReaderAt: a plain database reads one .arb
// file, a virtual database (NewVirtualDB — the versioned store's
// snapshots) reads a stitched view over several segment files. Every
// scan primitive works identically on both.
type DB struct {
	Base  string
	N     int64 // number of nodes
	Names *tree.Names

	arb    io.ReaderAt
	closer io.Closer // closed by Close; nil for virtual databases

	// comp is non-nil when the records come from a block-compressed
	// container (format v3): arb is then the container's logical-space
	// reader, and physical byte accounting consults the block table.
	comp *blockSource

	// virtual marks a database whose records do not come from a single
	// Base+".arb" file; sidecar index I/O (read and write) is suppressed
	// because no on-disk .idx can describe the stitched view.
	virtual bool

	idxMu sync.Mutex
	idx   *SubtreeIndex // guarded by: idxMu
}

// Open opens base.arb and base.lab. A block-compressed container
// (format v3, created by CompressInPlace or `arb create -compress`) is
// detected by its magic and served transparently: every scan primitive
// sees the same logical record space as a raw file.
func Open(base string) (*DB, error) {
	arbF, err := os.Open(base + ".arb")
	if err != nil {
		return nil, err
	}
	st, err := arbF.Stat()
	if err != nil {
		arbF.Close()
		return nil, err
	}
	db, err := openFrom(base, arbF, st.Size(), arbF)
	if err != nil {
		arbF.Close()
		return nil, err
	}
	return db, nil
}

// OpenReaderAt opens a database whose physical bytes are served by an
// arbitrary reader — the benchmark harness wraps base.arb in a
// bandwidth-limited reader this way. r must serve exactly the bytes of
// base.arb (raw records or a v3 container, sniffed as in Open), size
// physical bytes long; base.lab and base.idx sidecars are used as
// usual. The caller keeps ownership of whatever backs r; Close is a
// no-op.
func OpenReaderAt(base string, r io.ReaderAt, size int64) (*DB, error) {
	return openFrom(base, r, size, nil)
}

// openFrom builds the handle over a physical record source: container
// sniffing, then names. closer is what Close should release (nil when
// the caller owns the source).
func openFrom(base string, r io.ReaderAt, size int64, closer io.Closer) (*DB, error) {
	var (
		logical io.ReaderAt
		n       int64
		comp    *blockSource
	)
	if sniffContainer(r, size) {
		bs, err := openBlockSource(r, size)
		if err != nil {
			return nil, fmt.Errorf("storage: %s.arb: %w", base, err)
		}
		logical, n, comp = bs, bs.logical/NodeSize, bs
	} else {
		if size%NodeSize != 0 {
			return nil, fmt.Errorf("storage: %s.arb has size %d, not a multiple of %d", base, size, NodeSize)
		}
		logical, n = r, size/NodeSize
	}
	names := tree.NewNames()
	labF, err := os.Open(base + ".lab")
	if err == nil {
		names, err = tree.ReadNames(labF)
		labF.Close()
		if err != nil {
			return nil, err
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return &DB{Base: base, N: n, Names: names, arb: logical, closer: closer, comp: comp}, nil
}

// Compression reports the container summary of a compressed database,
// or ok=false for a raw one.
func (db *DB) Compression() (ContainerInfo, bool) {
	if db.comp == nil {
		return ContainerInfo{}, false
	}
	return db.comp.info(), true
}

// containerDesc returns the descriptor sidecar writes need for this
// database (nil for raw databases, which keep the v2 sidecar format).
func (db *DB) containerDesc() *ContainerInfo {
	if db.comp == nil {
		return nil
	}
	ci := db.comp.info()
	return &ci
}

// PhysSpan returns the physical bytes backing the node range [lo, hi) —
// what a scan of that range costs in disk reads. For a raw database
// that is exactly the logical record bytes; for a compressed one it is
// the stored size of every block the range touches (block-granular:
// reading any record of a block decompresses the whole block).
func (db *DB) PhysSpan(lo, hi int64) int64 {
	if hi > db.N {
		hi = db.N
	}
	if lo < 0 || lo >= hi {
		return 0
	}
	if db.comp != nil {
		return db.comp.physSpan(lo*NodeSize, hi*NodeSize)
	}
	return (hi - lo) * NodeSize
}

// RecordAt reads and decodes the single node record v — random access
// for callers that need a handful of labels without a scan (the result
// cache reads the labels of cached id lists this way). Served through
// the logical record space, so it is transparent for block-compressed
// and virtual databases alike.
func (db *DB) RecordAt(v int64) (Record, error) {
	if v < 0 || v >= db.N {
		return Record{}, fmt.Errorf("storage: record %d out of range [0, %d)", v, db.N)
	}
	var buf [NodeSize]byte
	if _, err := db.arb.ReadAt(buf[:], v*NodeSize); err != nil {
		return Record{}, err
	}
	return DecodeRecord(binary.BigEndian.Uint16(buf[:])), nil
}

// NewVirtualDB wraps an arbitrary record source as a database handle: r
// must serve n nodes (n*NodeSize bytes) of well-formed preorder records
// via ReadAt. base anchors relative temp files (disk runs place state
// and aux sidecars next to it) but names no actual .arb file; ix is the
// subtree index describing r (required — virtual databases never read or
// write .idx sidecars). Closing a virtual DB is a no-op: the segment
// files behind r belong to whoever stitched it (the versioned store's
// snapshot refcounts).
func NewVirtualDB(base string, r io.ReaderAt, n int64, names *tree.Names, ix *SubtreeIndex) *DB {
	return &DB{Base: base, N: n, Names: names, arb: r, virtual: true, idx: ix}
}

// Close releases the database's file handle (a no-op for virtual
// databases, whose segment files are owned by the versioned store).
func (db *DB) Close() error {
	if db.closer == nil {
		return nil
	}
	return db.closer.Close()
}

// ScanStats reports the cost profile of one linear scan, used to verify
// Proposition 5.1 (stack bounded by the document depth).
type ScanStats struct {
	Nodes    int64
	MaxStack int
	// Bytes counts the .arb record bytes this scan actually read. Skipped
	// extents (the leader's view of chunks scanned by workers) contribute
	// to Nodes but not Bytes, so merging a parallel run's scanners yields
	// exactly the database size per aggregate linear scan — the counter
	// behind the "two linear scans, even batched and parallel" claim.
	Bytes int64
	// SkippedBytes counts the .arb record bytes the scan seeked past
	// because selectivity-aware pruning proved the extents irrelevant to
	// the query. Pruning turns the fixed two-full-scan cost into one
	// proportional to query selectivity; the invariant becomes
	// Bytes + SkippedBytes == database size per aggregate linear scan.
	SkippedBytes int64
	// PhysicalBytes counts the bytes actually read from the physical
	// medium for the regions this scan covered. On a raw database it
	// equals Bytes; on a block-compressed one it is the stored size of
	// every block the scanned regions touched — the number that makes
	// compression's I/O saving visible next to the logical counters.
	// (Block granularity means two scans sharing a boundary block each
	// count its stored bytes; a clean full scan counts every block
	// exactly once.)
	PhysicalBytes int64
}

// Merge folds the stats of a concurrent scanner into the aggregate: node
// and byte counts add up, the stack bound is the maximum over scanners.
func (s *ScanStats) Merge(o ScanStats) {
	s.Nodes += o.Nodes
	s.Bytes += o.Bytes
	s.SkippedBytes += o.SkippedBytes
	s.PhysicalBytes += o.PhysicalBytes
	if o.MaxStack > s.MaxStack {
		s.MaxStack = o.MaxStack
	}
}

// cancelEvery is the node granularity of the context-cancellation checks
// inside the scan loops: coarse enough that the check is invisible in the
// per-node cost, fine enough that scans of huge databases abort promptly.
const cancelEvery = 8192

// Canceller polls ctx.Err() once per cancelEvery steps (plus once up
// front, so an already-cancelled context never starts a loop). It is the
// one cancellation-granularity policy every per-node evaluation loop in
// the system shares — the scans here, the in-memory engine and parallel
// evaluator, and the XPath mark emitter.
type Canceller struct {
	ctx  context.Context
	left int
}

// NewCanceller returns a canceller for ctx. A nil ctx never cancels: it
// is the explicit signal of the contextless creation paths (database
// builds have no context in their API), not a shorthand for Background —
// evaluation paths must always thread the caller's context (the ctxflow
// analyzer enforces it).
func NewCanceller(ctx context.Context) Canceller {
	return Canceller{ctx: ctx}
}

// Step counts one loop iteration and returns ctx.Err() at every check
// point (nil otherwise).
func (c *Canceller) Step() error {
	c.left--
	if c.left > 0 {
		return nil
	}
	c.left = cancelEvery
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// isCancel reports whether err is a context cancellation (ctx.Err() only
// ever returns these two sentinels, whatever cause the context carries).
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// backFold is the shared inner loop of the backward (bottom-up) scans: a
// stack of subtree results driven by one record at a time, in reverse
// preorder.
type backFold[S any] struct {
	combine func(first, second *S, rec Record, v int64) S
	cancel  Canceller
	stack   []S
	stats   ScanStats
}

func (f *backFold[S]) push(s S) {
	f.stack = append(f.stack, s)
	if len(f.stack) > f.stats.MaxStack {
		f.stats.MaxStack = len(f.stack)
	}
}

func (f *backFold[S]) node(rec Record, v int64) error {
	var first, second *S
	if rec.HasFirst {
		if len(f.stack) == 0 {
			return fmt.Errorf("storage: malformed .arb: missing first subtree at node %d", v)
		}
		first = &f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
	}
	if rec.HasSecond {
		if len(f.stack) == 0 {
			return fmt.Errorf("storage: malformed .arb: missing second subtree at node %d", v)
		}
		second = &f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
	}
	f.push(f.combine(first, second, rec, v))
	f.stats.Nodes++
	return nil
}

// foldRegion scans the node range [lo, hi) backwards, feeding every
// record to the fold.
func (f *backFold[S]) foldRegion(db *DB, lo, hi int64) error {
	br, err := NewBackwardSectionReader(db.arb, lo*NodeSize, hi*NodeSize, NodeSize)
	if err != nil {
		return err
	}
	defer br.Release()
	f.stats.PhysicalBytes += db.PhysSpan(lo, hi)
	for v := hi - 1; v >= lo; v-- {
		if err := f.cancel.Step(); err != nil {
			return err
		}
		b, err := br.Next()
		if err != nil {
			return fmt.Errorf("storage: backward scan: %w", err)
		}
		f.stats.Bytes += NodeSize
		if err := f.node(DecodeRecord(binary.BigEndian.Uint16(b)), v); err != nil {
			return err
		}
	}
	return nil
}

// foldRegionSkipping runs the backward fold over [lo, hi) with holes: the
// extents in skip (sorted by Root, disjoint, within [lo, hi)) are not
// read; subtree supplies each one's stand-in result in reverse preorder
// position. It is the shared engine behind FoldBottomUpSkipping (whole
// database) and FoldBottomUpRangeSkipping (one chunk).
func (f *backFold[S]) foldRegionSkipping(db *DB, lo, hi int64, skip []Extent, subtree func(Extent) (S, error)) error {
	cur := hi
	for i := len(skip) - 1; i >= -1; i-- {
		regionLo := lo
		var ext *Extent
		if i >= 0 {
			ext = &skip[i]
			regionLo = ext.End()
		}
		if regionLo > cur || (ext != nil && ext.Root < lo) {
			return fmt.Errorf("storage: skip extents unsorted, overlapping or out of range")
		}
		if err := f.foldRegion(db, regionLo, cur); err != nil {
			return err
		}
		if ext != nil {
			s, err := subtree(*ext)
			if err != nil {
				return err
			}
			f.push(s)
			f.stats.Nodes += ext.Size
			cur = ext.Root
		}
	}
	return nil
}

// FoldBottomUp traverses the database bottom-up in one backward linear
// scan of the .arb file (Proposition 5.1), combining child results into
// parent results. combine is called exactly once per node, in reverse
// preorder, with the results of the node's first and second child (nil
// for absent children) and the node's record and preorder index. It
// returns the root's result. Cancelling ctx makes the scan return
// ctx.Err() promptly (checked every few thousand nodes).
func FoldBottomUp[S any](ctx context.Context, db *DB, combine func(first, second *S, rec Record, v int64) S) (S, ScanStats, error) {
	return FoldBottomUpSkipping(ctx, db, nil, nil, combine)
}

// FoldBottomUpSkipping is FoldBottomUp with holes: the subtree extents in
// skip (sorted by Root, disjoint) are not read; instead subtree is called
// once per extent — in reverse preorder position — and its result stands
// in for the whole subtree, exactly as if combine had folded it. This is
// the leader scan of parallel evaluation: workers fold the extents, the
// leader folds the glue, and in aggregate every byte is read once.
func FoldBottomUpSkipping[S any](ctx context.Context, db *DB, skip []Extent, subtree func(Extent) (S, error), combine func(first, second *S, rec Record, v int64) S) (S, ScanStats, error) {
	var zero S
	f := backFold[S]{combine: combine, cancel: NewCanceller(ctx)}
	if err := f.foldRegionSkipping(db, 0, db.N, skip, subtree); err != nil {
		return zero, f.stats, err
	}
	if len(f.stack) != 1 {
		return zero, f.stats, fmt.Errorf("storage: malformed .arb: %d roots", len(f.stack))
	}
	return f.stack[0], f.stats, nil
}

// FoldBottomUpRangeSkipping is FoldBottomUpRange with holes: the subtree
// extents in skip (sorted by Root, disjoint, strictly inside x) are not
// read; subtree supplies each one's stand-in result. Workers of the
// parallel evaluators use it to prune irrelevant subtrees inside their
// own chunks.
func FoldBottomUpRangeSkipping[S any](ctx context.Context, db *DB, x Extent, skip []Extent, subtree func(Extent) (S, error), combine func(first, second *S, rec Record, v int64) S) (S, ScanStats, error) {
	var zero S
	f := backFold[S]{combine: combine, cancel: NewCanceller(ctx)}
	if x.Root < 0 || x.Size <= 0 || x.End() > db.N {
		return zero, f.stats, fmt.Errorf("%w: [%d,%d) out of range", ErrBadExtent, x.Root, x.End())
	}
	if err := f.foldRegionSkipping(db, x.Root, x.End(), skip, subtree); err != nil {
		if isCancel(err) {
			return zero, f.stats, err
		}
		return zero, f.stats, fmt.Errorf("%w: %v", ErrBadExtent, err)
	}
	if len(f.stack) != 1 {
		return zero, f.stats, fmt.Errorf("%w: [%d,%d) folds to %d roots", ErrBadExtent, x.Root, x.End(), len(f.stack))
	}
	return f.stack[0], f.stats, nil
}

// FoldBottomUpRange folds one complete subtree extent bottom-up in a
// backward scan of just its byte range. combine is called exactly once
// per node of the extent, in reverse preorder; the subtree root's result
// is returned. The extent must be a subtree extent (e.g. from
// SubtreeIndex.Cut) — anything else fails the structure check.
func FoldBottomUpRange[S any](ctx context.Context, db *DB, x Extent, combine func(first, second *S, rec Record, v int64) S) (S, ScanStats, error) {
	// Cancellation is deliberately not dressed up as ErrBadExtent (see
	// FoldBottomUpRangeSkipping): it would send callers into an index
	// rebuild for a non-structural condition.
	return FoldBottomUpRangeSkipping(ctx, db, x, nil, nil, combine)
}

// topDown is the shared inner loop of the forward (top-down) scans: it
// tracks, per node in preorder, which previously visited node is its
// parent and whether it is a first or second child. end is the exclusive
// node bound of the scanned region (the structure check).
type topDown[S any] struct {
	visit     func(v int64, rec Record, parent *S, k int) (S, error)
	end       int64
	pending   []S // nodes awaiting their second subtree
	parent    *S
	parentVal S
	k         int
	stats     ScanStats
}

// afterSubtree restores parent/k once the subtree preceding position next
// has been fully consumed.
func (t *topDown[S]) afterSubtree(next int64) error {
	if len(t.pending) > 0 {
		t.parentVal = t.pending[len(t.pending)-1]
		t.pending = t.pending[:len(t.pending)-1]
		t.parent = &t.parentVal
		t.k = 2
		return nil
	}
	t.parent = nil
	t.k = 0
	if next != t.end {
		return fmt.Errorf("storage: malformed .arb: scan ended at node %d of %d", next-1, t.end)
	}
	return nil
}

func (t *topDown[S]) node(v int64, rec Record) error {
	s, err := t.visit(v, rec, t.parent, t.k)
	if err != nil {
		return err
	}
	t.stats.Nodes++
	if rec.HasSecond {
		t.pending = append(t.pending, s)
		if len(t.pending) > t.stats.MaxStack {
			t.stats.MaxStack = len(t.pending)
		}
	}
	if rec.HasFirst {
		t.parentVal = s
		t.parent = &t.parentVal
		t.k = 1
		return nil
	}
	return t.afterSubtree(v + 1)
}

// sectionReaderPool recycles the buffered forward readers of the scan
// loops: the skipping scans open one reader per gap between extents, so
// on many-extent frontiers (parallel cuts, pruning plans) pooling the
// 256 KB buffers cuts the allocation churn to zero in steady state.
var sectionReaderPool = sync.Pool{
	New: func() interface{} { return bufio.NewReaderSize(nil, defaultBufSize) },
}

// sectionReader returns a buffered forward reader over the node range
// [lo, hi) backed by ReadAt, safe to use concurrently with other readers
// on the same handle. The reader comes from a pool; return it with
// putSectionReader when the scan is done with it.
func (db *DB) sectionReader(lo, hi int64) *bufio.Reader {
	r := sectionReaderPool.Get().(*bufio.Reader)
	r.Reset(io.NewSectionReader(db.arb, lo*NodeSize, (hi-lo)*NodeSize))
	return r
}

// resetSectionReader repoints a pooled reader at a new node range,
// reusing its buffer.
func (db *DB) resetSectionReader(r *bufio.Reader, lo, hi int64) {
	r.Reset(io.NewSectionReader(db.arb, lo*NodeSize, (hi-lo)*NodeSize))
}

// putSectionReader returns a reader obtained from sectionReader to the
// pool, dropping its reference to the underlying file.
func putSectionReader(r *bufio.Reader) {
	r.Reset(nil)
	sectionReaderPool.Put(r)
}

// ScanTopDown traverses the database top-down in one forward linear scan
// of the .arb file (Proposition 5.1). visit is called exactly once per
// node in preorder; for the root, parent is nil and k is 0; otherwise
// parent is the value visit returned for the node's parent and k tells
// whether the node is the first (1) or second (2) child. The stack holds
// one entry per ancestor whose second subtree is still pending.
// Cancelling ctx makes the scan return ctx.Err() promptly.
func ScanTopDown[S any](ctx context.Context, db *DB, visit func(v int64, rec Record, parent *S, k int) (S, error)) (ScanStats, error) {
	return ScanTopDownSkipping(ctx, db, nil, nil, visit)
}

// ScanTopDownSkipping is ScanTopDown with holes: the subtree extents in
// skip (sorted by Root, disjoint) are not read; instead subtree is called
// once per extent with the parent value and child position its root would
// have received, and the scan continues past the extent as if visit had
// consumed it. The parallel evaluator's leader uses it to assign top-down
// entry states to the frontier chunks without reading their bytes.
func ScanTopDownSkipping[S any](ctx context.Context, db *DB, skip []Extent, subtree func(x Extent, parent *S, k int) error, visit func(v int64, rec Record, parent *S, k int) (S, error)) (ScanStats, error) {
	t := topDown[S]{visit: visit, end: db.N}
	if err := t.scanRegion(ctx, db, 0, db.N, skip, subtree); err != nil {
		return t.stats, err
	}
	if t.parent != nil || len(t.pending) > 0 {
		return t.stats, fmt.Errorf("storage: malformed .arb: %d announced subtrees missing at end of file", len(t.pending)+1)
	}
	return t.stats, nil
}

// scanRegion runs the forward scan over the node range [lo, hi) with
// holes at the skip extents, reusing one pooled section reader across all
// gaps — the shared engine behind ScanTopDownSkipping (whole database)
// and ScanTopDownRangeSkipping (one chunk).
func (t *topDown[S]) scanRegion(ctx context.Context, db *DB, lo, hi int64, skip []Extent, subtree func(x Extent, parent *S, k int) error) error {
	cancel := NewCanceller(ctx)
	si := 0
	v := lo
	r := db.sectionReader(v, v)
	defer putSectionReader(r)
	for v < hi {
		gapEnd := hi
		if si < len(skip) {
			if skip[si].Root < v {
				return fmt.Errorf("storage: skip extents unsorted, overlapping or out of range")
			}
			gapEnd = skip[si].Root
		}
		db.resetSectionReader(r, v, gapEnd)
		t.stats.PhysicalBytes += db.PhysSpan(v, gapEnd)
		var buf [NodeSize]byte
		for ; v < gapEnd; v++ {
			if err := cancel.Step(); err != nil {
				return err
			}
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return fmt.Errorf("storage: forward scan: %w", err)
			}
			t.stats.Bytes += NodeSize
			if err := t.node(v, DecodeRecord(binary.BigEndian.Uint16(buf[:]))); err != nil {
				return err
			}
		}
		if si < len(skip) {
			x := skip[si]
			si++
			if x.Size <= 0 || x.End() > hi {
				return fmt.Errorf("storage: skip extent [%d,%d) out of range", x.Root, x.End())
			}
			if err := subtree(x, t.parent, t.k); err != nil {
				return err
			}
			t.stats.Nodes += x.Size
			v = x.End()
			if err := t.afterSubtree(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// ScanTopDownRange scans one complete subtree extent forward. visit is
// called exactly once per node of the extent in preorder; the extent's
// root is visited with parent nil and k 0 — the caller supplies its real
// top-down context through the closure (the parallel evaluator primes it
// with the entry state the leader computed).
func ScanTopDownRange[S any](ctx context.Context, db *DB, x Extent, visit func(v int64, rec Record, parent *S, k int) (S, error)) (ScanStats, error) {
	return ScanTopDownRangeSkipping(ctx, db, x, nil, nil, visit)
}

// ScanTopDownRangeSkipping is ScanTopDownRange with holes: the subtree
// extents in skip (sorted by Root, disjoint, strictly inside x) are not
// read; subtree is called once per extent with the parent value and child
// position its root would have received. Workers of the parallel
// evaluators use it to seek past irrelevant subtrees inside their chunks.
func ScanTopDownRangeSkipping[S any](ctx context.Context, db *DB, x Extent, skip []Extent, subtree func(x Extent, parent *S, k int) error, visit func(v int64, rec Record, parent *S, k int) (S, error)) (ScanStats, error) {
	t := topDown[S]{visit: visit, end: x.End()}
	if x.Root < 0 || x.Size <= 0 || x.End() > db.N {
		return t.stats, fmt.Errorf("%w: [%d,%d) out of range", ErrBadExtent, x.Root, x.End())
	}
	// Callback and read errors pass through unwrapped: only the final
	// structure check below is evidence of a stale extent (a mid-scan
	// error may be the caller's own — an aux write failure, say — and
	// dressing it as ErrBadExtent would trigger a pointless rebuild).
	if err := t.scanRegion(ctx, db, x.Root, x.End(), skip, subtree); err != nil {
		return t.stats, err
	}
	if t.parent != nil || len(t.pending) > 0 {
		return t.stats, fmt.Errorf("%w: [%d,%d) ends with %d subtrees missing", ErrBadExtent, x.Root, x.End(), len(t.pending)+1)
	}
	return t.stats, nil
}

// ReadTree materialises the whole database as an in-memory tree. Intended
// for tests and small databases.
func (db *DB) ReadTree(ctx context.Context) (*tree.Tree, error) {
	t := tree.New(db.Names)
	type frame struct {
		parent tree.NodeID
		k      int
	}
	_, err := ScanTopDown(ctx, db, func(v int64, rec Record, parent *frame, k int) (frame, error) {
		id := t.AddNode(tree.Label(rec.Label))
		if parent != nil {
			if k == 1 {
				t.SetFirst(parent.parent, id)
			} else {
				t.SetSecond(parent.parent, id)
			}
		}
		return frame{parent: id}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
