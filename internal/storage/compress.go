package storage

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Block-compressed .arb containers (database format v3).
//
// A v3 database keeps the logical record stream of Section 5 — one
// 2-byte preorder record per node — but stores it as independently
// compressed extents ("blocks") of a fixed logical size, so both linear
// scans read a fraction of the bytes while every scan primitive, pruning
// plan and evaluation strategy runs unmodified over the logical address
// space. The container is self-describing: a block table at the end maps
// each logical block to its physical offset, stored length and encoding,
// and blocks that do not compress stay raw, so the worst case costs one
// table lookup and a memcpy per block.
//
// Layout of a container file (all integers big-endian):
//
//	header  (16 bytes): magic "ARBZEXT3", codec byte, 3 reserved bytes,
//	                    uint32 logical block size
//	blocks  (variable): physical block payloads, in logical order
//	table   (8 bytes per block): uint32 stored length, encoding byte
//	                    (0 = raw, else the header codec), 3 reserved
//	footer  (32 bytes): uint64 table offset, uint64 block count,
//	                    uint64 logical size in bytes, magic "ARBZEND3"
//	pad     (0-1 bytes): one zero byte iff the file size would otherwise
//	                    be a multiple of NodeSize — pre-v3 readers then
//	                    reject the file with a clear size error instead
//	                    of misreading compressed bytes as records.
//
// Decompression happens behind io.ReaderAt: the block source keeps a
// small direct-mapped cache of decompressed blocks (per-slot mutexes, so
// concurrent scans at different file positions never serialise) and
// recycles compressed-input scratch through a sync.Pool.

// Codec identifiers, as stored in container headers and vstore
// manifests. CodecRaw marks a plain uncompressed .arb file or segment.
const (
	CodecRaw   = 0
	CodecLZ    = 1 // built-in byte-oriented LZ: fastest decode, good ratio on repetitive label streams
	CodecFlate = 2 // stdlib DEFLATE: tighter, several times slower to decode
)

// CodecName returns the human-readable codec name.
func CodecName(codec uint8) string {
	switch codec {
	case CodecRaw:
		return "raw"
	case CodecLZ:
		return "lz"
	case CodecFlate:
		return "flate"
	}
	return fmt.Sprintf("codec-%d", codec)
}

// ParseCodec resolves a codec name from the CLI surface.
func ParseCodec(name string) (uint8, error) {
	switch name {
	case "lz", "":
		return CodecLZ, nil
	case "flate":
		return CodecFlate, nil
	case "raw":
		return CodecRaw, nil
	}
	return 0, fmt.Errorf("storage: unknown codec %q (want lz, flate or raw)", name)
}

const (
	compressMagic    = "ARBZEXT3"
	compressEndMagic = "ARBZEND3"
	compressHeader   = 16
	compressFooter   = 32
	tableEntrySize   = 8

	// DefaultBlockSize is the default logical bytes per compressed
	// extent: large enough that per-block overhead vanishes and the LZ
	// window sees long repetition, small enough that pruning plans and
	// backward chunk reads decompress only what they touch.
	DefaultBlockSize = 1 << 18

	minBlockSize = 1 << 12
	maxBlockSize = 1 << 24

	// blockCacheSlots is the size of the per-container direct-mapped
	// decompressed-block cache. Sequential scans hit the same block for
	// every record in it; concurrent scans at different positions map to
	// different slots and never contend.
	blockCacheSlots = 32
)

// blockEnt describes one stored block.
type blockEnt struct {
	len uint32 // stored (physical) length
	enc uint8  // 0 = raw, else the container codec
}

// lzScratchPool recycles compressed-input scratch buffers across block
// decompressions (and compression staging on the write side).
var lzScratchPool = sync.Pool{
	New: func() interface{} { return make([]byte, 0, DefaultBlockSize+DefaultBlockSize/16) },
}

func getScratch(n int) []byte {
	b := lzScratchPool.Get().([]byte)
	if cap(b) < n {
		b = make([]byte, 0, n)
	}
	return b[:n]
}

func putScratch(b []byte) { lzScratchPool.Put(b[:0]) } //nolint:staticcheck

// blockSource serves a container's logical record space [0, logical)
// through io.ReaderAt, decompressing blocks on demand.
type blockSource struct {
	phys      io.ReaderAt
	codec     uint8
	blockSize int
	logical   int64
	offs      []int64 // physical start of block i; len = blocks+1
	enc       []uint8
	physSum   []int64 // prefix sums of stored lengths; len = blocks+1
	slots     []blockSlot
}

type blockSlot struct {
	mu   sync.Mutex
	idx  int64  // block index held, -1 when empty; guarded by: mu
	data []byte // decompressed block; guarded by: mu
}

// ContainerInfo summarises a compressed container for stats surfaces.
type ContainerInfo struct {
	Codec        uint8
	BlockSize    int
	Blocks       int
	LogicalBytes int64 // record bytes the container represents
	PhysBytes    int64 // container file size (payload + table + framing)
	PayloadBytes int64 // stored block payload bytes only
}

// Ratio returns the logical-to-physical compression ratio.
func (ci ContainerInfo) Ratio() float64 {
	if ci.PhysBytes == 0 {
		return 0
	}
	return float64(ci.LogicalBytes) / float64(ci.PhysBytes)
}

// sniffContainer reports whether the reader starts with the v3 container
// magic. size is the physical file size.
func sniffContainer(r io.ReaderAt, size int64) bool {
	if size < compressHeader+compressFooter {
		return false
	}
	var magic [8]byte
	if _, err := r.ReadAt(magic[:], 0); err != nil {
		return false
	}
	return string(magic[:]) == compressMagic
}

// OpenContainer sniffs r (size physical bytes). When r holds a v3
// compressed container it returns a ReaderAt serving the container's
// logical record space plus its description; otherwise ok is false and
// the caller should read r as a plain record stream. vstore uses this
// to open patch segments and manifested base files whose compression is
// discovered per file, not declared by the manifest.
func OpenContainer(r io.ReaderAt, size int64) (src io.ReaderAt, info ContainerInfo, ok bool, err error) {
	if !sniffContainer(r, size) {
		return nil, ContainerInfo{}, false, nil
	}
	bs, err := openBlockSource(r, size)
	if err != nil {
		return nil, ContainerInfo{}, false, err
	}
	return bs, bs.info(), true, nil
}

// ValidBlockSize reports whether blockSize is acceptable for a block
// writer: zero (the default) or within the container's legal range.
func ValidBlockSize(blockSize int) bool {
	return blockSize == 0 || (blockSize >= minBlockSize && blockSize <= maxBlockSize)
}

// openBlockSource parses a container served by r (size physical bytes)
// and returns a logical-space ReaderAt over it.
//
// arblint:holds mu — construction: the source is not yet shared.
func openBlockSource(r io.ReaderAt, size int64) (*blockSource, error) {
	var hdr [compressHeader]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("storage: container header: %w", err)
	}
	if string(hdr[:8]) != compressMagic {
		return nil, fmt.Errorf("storage: not a compressed container")
	}
	codec := hdr[8]
	if codec != CodecLZ && codec != CodecFlate {
		return nil, fmt.Errorf("storage: container uses unknown codec %d", codec)
	}
	blockSize := int(binary.BigEndian.Uint32(hdr[12:16]))
	if blockSize < minBlockSize || blockSize > maxBlockSize {
		return nil, fmt.Errorf("storage: container block size %d out of range", blockSize)
	}
	// The footer sits at the end, behind the pad byte the writer adds
	// when the footer would otherwise end the file at an even size.
	if size%NodeSize == 0 {
		return nil, fmt.Errorf("storage: container size %d lacks the odd-size guard", size)
	}
	footOff := size - compressFooter
	var foot [compressFooter]byte
	if _, err := r.ReadAt(foot[:], footOff); err != nil {
		return nil, fmt.Errorf("storage: container footer: %w", err)
	}
	if string(foot[24:32]) != compressEndMagic {
		footOff--
		if _, err := r.ReadAt(foot[:], footOff); err != nil {
			return nil, fmt.Errorf("storage: container footer: %w", err)
		}
		if string(foot[24:32]) != compressEndMagic {
			return nil, fmt.Errorf("storage: container footer magic missing (truncated file?)")
		}
	}
	tableOff := int64(binary.BigEndian.Uint64(foot[0:8]))
	blocks := int64(binary.BigEndian.Uint64(foot[8:16]))
	logical := int64(binary.BigEndian.Uint64(foot[16:24]))
	if logical < 0 || logical%NodeSize != 0 {
		return nil, fmt.Errorf("storage: container declares %d logical bytes", logical)
	}
	wantBlocks := (logical + int64(blockSize) - 1) / int64(blockSize)
	if blocks != wantBlocks || blocks > 1<<32 {
		return nil, fmt.Errorf("storage: container declares %d blocks, want %d", blocks, wantBlocks)
	}
	if tableOff < compressHeader || tableOff+blocks*tableEntrySize != footOff {
		return nil, fmt.Errorf("storage: container table at %d does not meet the footer at %d", tableOff, footOff)
	}
	table := make([]byte, blocks*tableEntrySize)
	if _, err := r.ReadAt(table, tableOff); err != nil {
		return nil, fmt.Errorf("storage: container table: %w", err)
	}
	bs := &blockSource{
		phys:      r,
		codec:     codec,
		blockSize: blockSize,
		logical:   logical,
		offs:      make([]int64, blocks+1),
		enc:       make([]uint8, blocks),
		physSum:   make([]int64, blocks+1),
		slots:     make([]blockSlot, blockCacheSlots),
	}
	off := int64(compressHeader)
	for i := int64(0); i < blocks; i++ {
		ln := int64(binary.BigEndian.Uint32(table[i*tableEntrySize:]))
		enc := table[i*tableEntrySize+4]
		if enc != 0 && enc != codec {
			return nil, fmt.Errorf("storage: block %d uses encoding %d in a %s container", i, enc, CodecName(codec))
		}
		want := bs.blockLen(i)
		if ln < 1 || (enc == 0 && ln != want) || ln > want+lzMaxExpansion(int(want)) {
			return nil, fmt.Errorf("storage: block %d stored length %d impossible for %d logical bytes", i, ln, want)
		}
		bs.offs[i] = off
		bs.enc[i] = enc
		bs.physSum[i+1] = bs.physSum[i] + ln
		off += ln
	}
	bs.offs[blocks] = off
	if off != tableOff {
		return nil, fmt.Errorf("storage: container blocks end at %d, table starts at %d", off, tableOff)
	}
	for i := range bs.slots {
		bs.slots[i].idx = -1
	}
	return bs, nil
}

// blockLen returns the logical length of block i (the last block may be
// short).
func (bs *blockSource) blockLen(i int64) int64 {
	start := i * int64(bs.blockSize)
	if rest := bs.logical - start; rest < int64(bs.blockSize) {
		return rest
	}
	return int64(bs.blockSize)
}

// info summarises the container.
func (bs *blockSource) info() ContainerInfo {
	blocks := len(bs.enc)
	return ContainerInfo{
		Codec:        bs.codec,
		BlockSize:    bs.blockSize,
		Blocks:       blocks,
		LogicalBytes: bs.logical,
		PhysBytes:    bs.offs[blocks] + int64(blocks)*tableEntrySize + compressFooter + 1,
		PayloadBytes: bs.physSum[blocks],
	}
}

// physSpan returns the stored bytes of every block overlapping the
// logical byte range [lo, hi) — the physical I/O cost of scanning that
// range (block-granular: a scan touching any byte of a block reads and
// decompresses the whole block).
func (bs *blockSource) physSpan(lo, hi int64) int64 {
	if hi > bs.logical {
		hi = bs.logical
	}
	if lo < 0 || lo >= hi {
		return 0
	}
	b0 := lo / int64(bs.blockSize)
	b1 := (hi + int64(bs.blockSize) - 1) / int64(bs.blockSize)
	return bs.physSum[b1] - bs.physSum[b0]
}

// ReadAt implements io.ReaderAt over the logical record space.
func (bs *blockSource) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative read offset %d", off)
	}
	n := 0
	for n < len(p) && off < bs.logical {
		i := off / int64(bs.blockSize)
		blockStart := i * int64(bs.blockSize)
		m, err := bs.readBlock(i, p[n:], off-blockStart)
		n += m
		off += int64(m)
		if err != nil {
			return n, err
		}
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// readBlock copies block i's bytes from logical offset rel into p,
// decompressing through the slot cache.
func (bs *blockSource) readBlock(i int64, p []byte, rel int64) (int, error) {
	s := &bs.slots[i%blockCacheSlots]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idx != i {
		if err := bs.fillSlot(s, i); err != nil {
			return 0, err
		}
	}
	if rel >= int64(len(s.data)) {
		return 0, fmt.Errorf("storage: block %d read at %d past its %d bytes", i, rel, len(s.data))
	}
	return copy(p, s.data[rel:]), nil
}

// fillSlot loads and decodes block i into the slot, which the caller
// (readBlock) holds locked.
//
// arblint:holds mu
func (bs *blockSource) fillSlot(s *blockSlot, i int64) error {
	s.idx = -1
	want := int(bs.blockLen(i))
	if cap(s.data) < want {
		s.data = make([]byte, want, bs.blockSize)
	}
	s.data = s.data[:want]
	stored := int(bs.offs[i+1] - bs.offs[i])
	if bs.enc[i] == 0 {
		if _, err := bs.phys.ReadAt(s.data, bs.offs[i]); err != nil {
			return fmt.Errorf("storage: raw block %d: %w", i, err)
		}
		s.idx = i
		return nil
	}
	comp := getScratch(stored)
	defer putScratch(comp)
	if _, err := bs.phys.ReadAt(comp, bs.offs[i]); err != nil {
		return fmt.Errorf("storage: compressed block %d: %w", i, err)
	}
	var err error
	switch bs.enc[i] {
	case CodecLZ:
		err = lzDecompress(s.data, comp)
	case CodecFlate:
		err = flateDecompress(s.data, comp)
	default:
		err = fmt.Errorf("unknown encoding %d", bs.enc[i])
	}
	if err != nil {
		return fmt.Errorf("storage: block %d: %w", i, err)
	}
	s.idx = i
	return nil
}

// BlockWriter streams a logical record stream into a container file:
// Write chunks the bytes into blocks, compresses each with the
// container codec (falling back to raw storage when compression does
// not pay), and Close appends the block table and footer. The caller
// owns f and is responsible for syncing and closing it after Close.
type BlockWriter struct {
	w         *bufio.Writer
	codec     uint8
	blockSize int
	buf       []byte
	used      int
	entries   []blockEnt
	logical   int64
	physOff   int64
	scratch   []byte
	closed    bool
	err       error
}

// NewBlockWriter starts a container with the given codec and logical
// block size (0 selects DefaultBlockSize) on f.
func NewBlockWriter(f io.Writer, codec uint8, blockSize int) (*BlockWriter, error) {
	if codec != CodecLZ && codec != CodecFlate {
		return nil, fmt.Errorf("storage: block writer needs a compressing codec, got %s", CodecName(codec))
	}
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize < minBlockSize || blockSize > maxBlockSize {
		return nil, fmt.Errorf("storage: block size %d out of range [%d, %d]", blockSize, minBlockSize, maxBlockSize)
	}
	blockSize -= blockSize % NodeSize // whole records per block
	bw := &BlockWriter{
		w:         bufio.NewWriterSize(f, defaultBufSize),
		codec:     codec,
		blockSize: blockSize,
		buf:       make([]byte, blockSize),
	}
	var hdr [compressHeader]byte
	copy(hdr[:8], compressMagic)
	hdr[8] = codec
	binary.BigEndian.PutUint32(hdr[12:16], uint32(blockSize))
	if _, err := bw.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	bw.physOff = compressHeader
	return bw, nil
}

// Write implements io.Writer over the logical record stream.
func (bw *BlockWriter) Write(p []byte) (int, error) {
	if bw.err != nil {
		return 0, bw.err
	}
	if bw.closed {
		return 0, fmt.Errorf("storage: write to a closed block writer")
	}
	total := len(p)
	for len(p) > 0 {
		n := copy(bw.buf[bw.used:], p)
		bw.used += n
		p = p[n:]
		if bw.used == bw.blockSize {
			if err := bw.flushBlock(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

// flushBlock encodes and emits the staged block.
func (bw *BlockWriter) flushBlock() error {
	if bw.used == 0 {
		return nil
	}
	src := bw.buf[:bw.used]
	var payload []byte
	enc := uint8(0)
	switch bw.codec {
	case CodecLZ:
		if cap(bw.scratch) < len(src) {
			bw.scratch = make([]byte, 0, len(src))
		}
		if out, ok := lzCompress(bw.scratch[:0], src); ok {
			bw.scratch = out
			payload = out
			enc = CodecLZ
		}
	case CodecFlate:
		if out, ok := flateCompress(bw.scratch[:0], src); ok {
			bw.scratch = out
			payload = out
			enc = CodecFlate
		}
	}
	if payload == nil {
		payload = src // incompressible: store raw
	}
	if _, err := bw.w.Write(payload); err != nil {
		bw.err = err
		return err
	}
	bw.entries = append(bw.entries, blockEnt{len: uint32(len(payload)), enc: enc})
	bw.logical += int64(bw.used)
	bw.physOff += int64(len(payload))
	bw.used = 0
	return nil
}

// Close flushes the final block and writes the table and footer. It
// does not sync or close the underlying file.
func (bw *BlockWriter) Close() error {
	if bw.err != nil {
		return bw.err
	}
	if bw.closed {
		return nil
	}
	bw.closed = true
	if err := bw.flushBlock(); err != nil {
		return err
	}
	tableOff := bw.physOff
	var ent [tableEntrySize]byte
	for _, e := range bw.entries {
		binary.BigEndian.PutUint32(ent[0:4], e.len)
		ent[4] = e.enc
		ent[5], ent[6], ent[7] = 0, 0, 0
		if _, err := bw.w.Write(ent[:]); err != nil {
			bw.err = err
			return err
		}
		bw.physOff += tableEntrySize
	}
	var foot [compressFooter]byte
	binary.BigEndian.PutUint64(foot[0:8], uint64(tableOff))
	binary.BigEndian.PutUint64(foot[8:16], uint64(len(bw.entries)))
	binary.BigEndian.PutUint64(foot[16:24], uint64(bw.logical))
	copy(foot[24:32], compressEndMagic)
	if _, err := bw.w.Write(foot[:]); err != nil {
		bw.err = err
		return err
	}
	bw.physOff += compressFooter
	// Odd-size guard: pre-v3 readers check size % NodeSize and reject.
	if bw.physOff%NodeSize == 0 {
		if err := bw.w.WriteByte(0); err != nil {
			bw.err = err
			return err
		}
		bw.physOff++
	}
	if err := bw.w.Flush(); err != nil {
		bw.err = err
		return err
	}
	return nil
}

// Logical returns the logical bytes written so far.
func (bw *BlockWriter) Logical() int64 { return bw.logical + int64(bw.used) }

// CompressInPlace rewrites base.arb as a block-compressed container
// (codec CodecLZ or CodecFlate, blockSize 0 for the default), replacing
// it atomically via temp file + rename + directory sync, and refreshes
// the .idx sidecar with the container descriptor. A database that is
// already compressed is first served raw through its own reader, so
// recompressing with a different codec or block size works too.
// Returns the container summary.
func CompressInPlace(base string, codec uint8, blockSize int) (ContainerInfo, error) {
	var zero ContainerInfo
	db, err := Open(base)
	if err != nil {
		return zero, err
	}
	defer db.Close()
	if codec == CodecRaw {
		return zero, fmt.Errorf("storage: compressing %s with codec raw is a no-op", base)
	}
	dir := filepath.Dir(base)
	f, err := os.CreateTemp(dir, filepath.Base(base)+".arb.tmp*")
	if err != nil {
		return zero, err
	}
	tmp := f.Name()
	renamed := false
	defer func() {
		if !renamed {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw, err := NewBlockWriter(f, codec, blockSize)
	if err != nil {
		return zero, err
	}
	size := db.N * NodeSize
	const chunk = int64(1 << 20)
	for off := int64(0); off < size; off += chunk {
		end := off + chunk
		if end > size {
			end = size
		}
		if _, err := io.Copy(bw, io.NewSectionReader(db.arb, off, end-off)); err != nil {
			return zero, err
		}
	}
	if err := bw.Close(); err != nil {
		return zero, err
	}
	if err := f.Sync(); err != nil {
		return zero, err
	}
	if err := f.Close(); err != nil {
		return zero, err
	}
	if err := os.Rename(tmp, base+".arb"); err != nil {
		return zero, err
	}
	renamed = true
	if err := syncDir(dir); err != nil {
		return zero, err
	}
	// Refresh the sidecar with the container descriptor (best-effort,
	// like every sidecar write: a read-only directory still serves).
	nf, err := os.Open(base + ".arb")
	if err != nil {
		return zero, err
	}
	st, err := nf.Stat()
	if err != nil {
		nf.Close()
		return zero, err
	}
	bs, err := openBlockSource(nf, st.Size())
	if err != nil {
		nf.Close()
		return zero, fmt.Errorf("storage: reopening freshly compressed %s: %w", base, err)
	}
	info := bs.info()
	nf.Close()
	db.idxMu.Lock()
	ix := db.idx
	db.idxMu.Unlock()
	if ix != nil {
		_ = WriteIndexFile(base+".idx", ix, &info)
	} else if ix2, err := ReadIndexFile(base + ".idx"); err == nil {
		_ = WriteIndexFile(base+".idx", ix2, &info)
	}
	return info, nil
}

// flateCompress appends src's DEFLATE stream to dst, reporting false
// when compression does not pay (caller then stores the block raw).
func flateCompress(dst, src []byte) ([]byte, bool) {
	buf := sliceWriter{b: dst, limit: len(src) - len(src)/16}
	fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, false
	}
	if _, err := fw.Write(src); err != nil {
		return nil, false
	}
	if err := fw.Close(); err != nil {
		return nil, false
	}
	return buf.b, true
}

// sliceWriter collects writes into a slice, failing once limit bytes
// have accumulated (the compression-does-not-pay signal).
type sliceWriter struct {
	b     []byte
	limit int
}

func (w *sliceWriter) Write(p []byte) (int, error) {
	if len(w.b)+len(p) > w.limit {
		return 0, fmt.Errorf("storage: block is incompressible")
	}
	w.b = append(w.b, p...)
	return len(p), nil
}

// flateDecompress inflates src into exactly len(dst) bytes.
func flateDecompress(dst, src []byte) error {
	fr := flate.NewReader(newByteReaderAt(src))
	defer fr.Close()
	if _, err := io.ReadFull(fr, dst); err != nil {
		return fmt.Errorf("flate block: %w", err)
	}
	// The block must end exactly here.
	var one [1]byte
	if n, _ := fr.Read(one[:]); n != 0 {
		return fmt.Errorf("flate block longer than its declared %d bytes", len(dst))
	}
	return nil
}

// newByteReaderAt wraps a byte slice as an io.Reader without the
// bytes.Reader allocation dance in the hot decompression path.
type byteReader struct {
	b   []byte
	pos int
}

func newByteReaderAt(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.pos:])
	r.pos += n
	return n, nil
}

func (r *byteReader) ReadByte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, io.EOF
	}
	c := r.b[r.pos]
	r.pos++
	return c, nil
}
