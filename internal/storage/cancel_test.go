package storage

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"arb/internal/testutil"
)

// TestScanCancel checks the scan primitives honour context cancellation:
// an already-cancelled context aborts every scan shape with ctx.Err()
// before any node is visited.
func TestScanCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := testutil.RandomTree(rng, 500)
	db, err := CreateFromTree(filepath.Join(t.TempDir(), "t"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	visited := 0
	_, _, err = FoldBottomUp(ctx, db, func(first, second *struct{}, rec Record, v int64) struct{} {
		visited++
		return struct{}{}
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("FoldBottomUp: error %v, want context.Canceled", err)
	}
	_, err = ScanTopDown(ctx, db, func(v int64, rec Record, parent *struct{}, k int) (struct{}, error) {
		visited++
		return struct{}{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("ScanTopDown: error %v, want context.Canceled", err)
	}
	x := Extent{Root: 0, Size: db.N}
	_, _, err = FoldBottomUpRange(ctx, db, x, func(first, second *struct{}, rec Record, v int64) struct{} {
		visited++
		return struct{}{}
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("FoldBottomUpRange: error %v, want context.Canceled", err)
	}
	_, err = ScanTopDownRange(ctx, db, x, func(v int64, rec Record, parent *struct{}, k int) (struct{}, error) {
		visited++
		return struct{}{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("ScanTopDownRange: error %v, want context.Canceled", err)
	}
	if visited != 0 {
		t.Errorf("cancelled scans visited %d nodes, want 0", visited)
	}

	// FoldBottomUpRange must not dress a cancellation up as a bad
	// extent: callers retry ErrBadExtent with a rebuilt index, which
	// would turn one cancelled scan into two. Cover plain cancellation
	// and WithCancelCause (whose Cause differs from ctx.Err()).
	for name, cctx := range map[string]context.Context{
		"canceled": ctx,
		"cause": func() context.Context {
			c, cancel := context.WithCancelCause(context.Background())
			cancel(errors.New("operator abort"))
			return c
		}(),
	} {
		_, _, err := FoldBottomUpRange(cctx, db, x, func(first, second *struct{}, rec Record, v int64) struct{} {
			return struct{}{}
		})
		if errors.Is(err, ErrBadExtent) {
			t.Errorf("%s: FoldBottomUpRange reports ErrBadExtent on cancellation: %v", name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error %v, want context.Canceled", name, err)
		}
	}
}
