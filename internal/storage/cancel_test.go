package storage

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"arb/internal/testutil"
)

// TestScanCancel checks the scan primitives honour context cancellation:
// an already-cancelled context aborts every scan shape with ctx.Err()
// before any node is visited.
func TestScanCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := testutil.RandomTree(rng, 500)
	db, err := CreateFromTree(filepath.Join(t.TempDir(), "t"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	visited := 0
	_, _, err = FoldBottomUp(ctx, db, func(first, second *struct{}, rec Record, v int64) struct{} {
		visited++
		return struct{}{}
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("FoldBottomUp: error %v, want context.Canceled", err)
	}
	_, err = ScanTopDown(ctx, db, func(v int64, rec Record, parent *struct{}, k int) (struct{}, error) {
		visited++
		return struct{}{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("ScanTopDown: error %v, want context.Canceled", err)
	}
	x := Extent{Root: 0, Size: db.N}
	_, _, err = FoldBottomUpRange(ctx, db, x, func(first, second *struct{}, rec Record, v int64) struct{} {
		visited++
		return struct{}{}
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("FoldBottomUpRange: error %v, want context.Canceled", err)
	}
	_, err = ScanTopDownRange(ctx, db, x, func(v int64, rec Record, parent *struct{}, k int) (struct{}, error) {
		visited++
		return struct{}{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("ScanTopDownRange: error %v, want context.Canceled", err)
	}
	if visited != 0 {
		t.Errorf("cancelled scans visited %d nodes, want 0", visited)
	}

	// FoldBottomUpRange must not dress a cancellation up as a bad
	// extent: callers retry ErrBadExtent with a rebuilt index, which
	// would turn one cancelled scan into two. Cover plain cancellation
	// and WithCancelCause (whose Cause differs from ctx.Err()).
	for name, cctx := range map[string]context.Context{
		"canceled": ctx,
		"cause": func() context.Context {
			c, cancel := context.WithCancelCause(context.Background())
			cancel(errors.New("operator abort"))
			return c
		}(),
	} {
		_, _, err := FoldBottomUpRange(cctx, db, x, func(first, second *struct{}, rec Record, v int64) struct{} {
			return struct{}{}
		})
		if errors.Is(err, ErrBadExtent) {
			t.Errorf("%s: FoldBottomUpRange reports ErrBadExtent on cancellation: %v", name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error %v, want context.Canceled", name, err)
		}
	}
}

// TestBatchScanCancel covers the scan shapes batch execution drives:
// vector-state folds (one state per batch member) and widened aux-mask
// sidecar readers. A cancelled context aborts them before any node is
// visited, and no temporary files survive next to the database.
func TestBatchScanCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := testutil.RandomTree(rng, 600)
	dir := t.TempDir()
	db, err := CreateFromTree(filepath.Join(dir, "t"), tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// A widened mask sidecar with one slot per member, as batch rounds
	// write it: slot m of node v carries v+m (for positioning checks).
	const stride = 3
	maskPath := filepath.Join(dir, "t.auxb")
	maskBytes := make([]byte, db.N*MaskStride(stride))
	for v := int64(0); v < db.N; v++ {
		for m := 0; m < stride; m++ {
			binary.BigEndian.PutUint16(maskBytes[v*MaskStride(stride)+int64(m)*MaskSize:], uint16(v)+uint16(m))
		}
	}
	if err := os.WriteFile(maskPath, maskBytes, 0o666); err != nil {
		t.Fatal(err)
	}
	maskF, err := OpenMaskFile(maskPath, db.N, stride)
	if err != nil {
		t.Fatal(err)
	}
	defer maskF.Close()
	if _, err := OpenMaskFile(maskPath, db.N, stride+1); err == nil {
		t.Error("OpenMaskFile accepted a sidecar with the wrong stride")
	}

	// The stride readers yield slot vectors in step with the scans.
	back, err := MaskBackward(maskF, 1, db.N, stride)
	if err != nil {
		t.Fatal(err)
	}
	for v := db.N - 1; v >= 1; v-- {
		b, err := back.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.BigEndian.Uint16(b[2*MaskSize:]); got != uint16(v)+2 {
			t.Fatalf("backward mask at node %d slot 2: %d, want %d", v, got, uint16(v)+2)
		}
	}
	fwd := MaskForward(maskF, 0, db.N, stride)
	vec := make([]byte, MaskStride(stride))
	for v := int64(0); v < db.N; v++ {
		if _, err := io.ReadFull(fwd, vec); err != nil {
			t.Fatal(err)
		}
		if got := binary.BigEndian.Uint16(vec); got != uint16(v) {
			t.Fatalf("forward mask at node %d slot 0: %d, want %d", v, got, uint16(v))
		}
	}

	// Vector-state scans (the batch shape: S = one state per member)
	// honour cancellation before visiting a single node.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	visited := 0
	_, _, err = FoldBottomUp(ctx, db, func(first, second *[]int32, rec Record, v int64) []int32 {
		visited++
		return make([]int32, stride)
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("vector FoldBottomUp: error %v, want context.Canceled", err)
	}
	_, err = ScanTopDown(ctx, db, func(v int64, rec Record, parent *int32, k int) (int32, error) {
		visited++
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("depth-state ScanTopDown: error %v, want context.Canceled", err)
	}
	if visited != 0 {
		t.Errorf("cancelled batch-shaped scans visited %d nodes, want 0", visited)
	}

	// Nothing beyond the database files and the sidecar this test wrote.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".arb", ".lab", ".idx", ".auxb":
		default:
			t.Errorf("stray file after cancelled scans: %s", e.Name())
		}
	}
}
