package storage

import (
	"bufio"
	"context"
	"fmt"
	"io"

	"arb/internal/tree"
)

// EmitXMLContext serialises the database back to XML in one forward
// scan, marking selected nodes: selected elements get an
// arb:selected="true" attribute, and runs of selected character nodes
// are wrapped in <arb:sel>..</arb:sel>. This is the Arb system's default
// output mode (Section 6.3: "the entire XML document is returned with
// selected nodes marked up in the usual XML fashion"). selected may be
// nil for plain serialisation. A cancelled ctx aborts the scan and
// returns ctx.Err().
func EmitXMLContext(ctx context.Context, db *DB, w io.Writer, selected func(v int64) bool) error {
	e := NewXMLEmitter(w, db.Names)
	_, err := ScanTopDown(ctx, db, func(v int64, rec Record, parent *struct{}, k int) (struct{}, error) {
		return struct{}{}, e.Node(v, rec, selected != nil && selected(v))
	})
	if err != nil {
		return err
	}
	return e.Finish()
}

// NewXMLEmitter returns a streaming XML serialiser for feeding nodes in
// preorder from an existing forward scan — this is how query answers are
// output during the second evaluation phase itself (Section 6.3), with
// no additional pass over the data.
func NewXMLEmitter(w io.Writer, names *tree.Names) *XMLEmitter {
	return &XMLEmitter{w: bufio.NewWriterSize(w, defaultBufSize), names: names}
}

type emitFrame struct {
	kind byte // 'c' = close element when popped; 's' = second subtree boundary
	tag  string
}

// XMLEmitter is the streaming serialiser behind EmitXML.
type XMLEmitter struct {
	w     *bufio.Writer
	names *tree.Names
	stack []emitFrame
	inSel bool // inside an <arb:sel> run of selected characters
	err   error
}

func (e *XMLEmitter) str(s string) {
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *XMLEmitter) endSelRun() {
	if e.inSel {
		e.str("</arb:sel>")
		e.inSel = false
	}
}

// Node processes one preorder node. sel marks it as selected.
func (e *XMLEmitter) Node(v int64, rec Record, sel bool) error {
	l := tree.Label(rec.Label)
	if l.IsChar() {
		if sel && !e.inSel {
			e.str("<arb:sel>")
			e.inSel = true
		} else if !sel {
			e.endSelRun()
		}
		e.str(escapeChar(l.Char()))
	} else {
		e.endSelRun()
		tag, ok := e.names.TagName(l)
		if !ok {
			tag = fmt.Sprintf("label-%d", l)
		}
		if sel {
			e.str("<" + tag + ` arb:selected="true"`)
		} else {
			e.str("<" + tag)
		}
		if rec.HasFirst {
			e.str(">")
			// Close after the first subtree. Frames are popped LIFO, so
			// push the second-subtree boundary below the close frame.
			if rec.HasSecond {
				e.stack = append(e.stack, emitFrame{kind: 's'})
			}
			e.stack = append(e.stack, emitFrame{kind: 'c', tag: tag})
			return e.err
		}
		e.str("/>")
	}
	// Leaf in the binary sense or an immediately-closed element: unwind
	// unless a second subtree follows directly.
	if rec.HasSecond {
		return e.err
	}
	for len(e.stack) > 0 {
		f := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		if f.kind == 'c' {
			e.endSelRun()
			e.str("</" + f.tag + ">")
			continue
		}
		break // 's': the owner's second subtree starts with the next node
	}
	return e.err
}

// Finish closes any open runs and flushes. It must be called once after
// the last node.
func (e *XMLEmitter) Finish() error {
	e.endSelRun()
	if e.err == nil && len(e.stack) != 0 {
		return fmt.Errorf("storage: emit finished with %d open frames", len(e.stack))
	}
	if e.err == nil {
		e.err = e.w.Flush()
	}
	return e.err
}

func escapeChar(c byte) string {
	switch c {
	case '<':
		return "&lt;"
	case '>':
		return "&gt;"
	case '&':
		return "&amp;"
	case '"':
		return "&quot;"
	default:
		return string(rune(c))
	}
}
