package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"arb"
)

// The coalescer turns concurrent requests into shared-scan batches. The
// two linear scans of a disk execution are query-independent I/O, so M
// concurrent queries folded into batches of up to K cost ~2·⌈M/K⌉ scans
// in aggregate instead of 2·M — the compile-once/query-many engine's
// answer to serving load, with no cross-request coordination beyond the
// batch boundary itself (requests never wait on each other's results,
// only share iterations).
//
// Adaptivity: an idle server answers a lone request immediately — no
// window tax — because a request arriving more than one window after the
// previous one, with execution capacity free and nothing pending, runs
// solo. Any denser arrival pattern opens a gather group that flushes
// when it holds BatchMax distinct plans or when the window elapses,
// whichever is first; groups then queue for an execution slot. So the
// batching degree tracks the arrival rate: bursts and saturated slots
// coalesce maximally, sparse traffic pays zero added latency.
//
// The window itself adapts too, unless pinned by configuration: waiting
// is only worth a fraction of the scan it amortises, so the coalescer
// keeps an EWMA of observed execution durations and sets the window to a
// quarter of it, clamped to [500µs, 25ms]. Fast in-memory workloads
// shrink toward the floor (near-zero added latency); long disk scans
// widen the gather so more requests share each scan pair.
type coalescer struct {
	sess    *arb.Session
	win     atomic.Int64  // current gather window, nanoseconds
	auto    bool          // tune win from observed scan durations
	ewma    atomic.Int64  // smoothed execution duration, nanoseconds
	max     int           // distinct plans per group
	sem     chan struct{} // execution slots (MaxInflight)
	opts    arb.ExecOpts  // Workers/NoPrune template; Stats always set
	profile func(*arb.Profile, int)

	mu         sync.Mutex
	pending    *group    // guarded by: mu
	lastSubmit time.Time // guarded by: mu

	groups, solos, batched, dedups int64 // guarded by: mu
	maxBatch                       int   // guarded by: mu
}

// group is one gather window's worth of requests: distinct plans in
// arrival order, with every duplicate request folded onto its plan's
// slot. After done closes, res/err are immutable and waiters read their
// slot without locks.
type group struct {
	keys  []string
	plans []*arb.PreparedQuery
	slot  map[string]int
	reqs  int

	full    chan struct{} // closed when max distinct plans joined
	done    chan struct{} // closed after execution
	res     []*arb.Result
	err     error
	version uint64    // database version the shared execution read
	later   time.Time // latest member deadline (zero: some member has none)
}

// Auto-tuning bounds: the seed before any execution has been observed,
// the smoothing factor (EWMA α = 1/ewmaDiv), the window-to-scan ratio,
// and the clamp.
const (
	windowSeed  = 2 * time.Millisecond
	windowFloor = 500 * time.Microsecond
	windowCeil  = 25 * time.Millisecond
	windowFrac  = 4 // window = ewma/windowFrac
	ewmaDiv     = 5 // α = 0.2
)

func newCoalescer(sess *arb.Session, window time.Duration, max, inflight int, opts arb.ExecOpts, profile func(*arb.Profile, int)) *coalescer {
	opts.Stats = true
	c := &coalescer{
		sess: sess, auto: window <= 0, max: max,
		sem: make(chan struct{}, inflight), opts: opts, profile: profile,
	}
	if c.auto {
		window = windowSeed
	}
	c.win.Store(int64(window))
	return c
}

// observe feeds one execution's duration into the window tuner. Updates
// are load/store rather than CAS on purpose: a lost sample under
// contention only delays convergence, and the EWMA absorbs it.
func (c *coalescer) observe(d time.Duration) {
	if !c.auto || d <= 0 {
		return
	}
	e := time.Duration(c.ewma.Load())
	if e == 0 {
		e = d
	} else {
		e += (d - e) / ewmaDiv
	}
	c.ewma.Store(int64(e))
	w := e / windowFrac
	if w < windowFloor {
		w = windowFloor
	}
	if w > windowCeil {
		w = windowCeil
	}
	c.win.Store(int64(w))
}

// submit routes one request: solo on an idle server, otherwise into the
// pending gather group. It blocks until the request's result is ready or
// ctx (the request's own deadline) gives up — the group execution keeps
// going for the other members either way. The returned version is the
// database version the execution read (0 for unversioned sessions and
// for requests that gave up before their group finished): a whole group
// shares one MVCC snapshot, so every coalesced member answers from the
// same version.
func (c *coalescer) submit(ctx context.Context, execCtx context.Context, key string, pq *arb.PreparedQuery) (*arb.Result, int, uint64, error) {
	deadline, hasDeadline := ctx.Deadline()

	c.mu.Lock()
	now := time.Now()
	idle := now.Sub(c.lastSubmit) > time.Duration(c.win.Load())
	c.lastSubmit = now

	if c.pending == nil && idle {
		select {
		case c.sem <- struct{}{}:
			// Idle fast path: capacity is free and nobody is gathering, so
			// this request pays no window latency and runs alone.
			c.solos++
			c.groups++
			c.batched++
			if c.maxBatch < 1 {
				c.maxBatch = 1
			}
			c.mu.Unlock()
			defer func() { <-c.sem }()
			runCtx, cancel := c.memberCtx(execCtx, deadline, hasDeadline)
			defer cancel()
			res, prof, err := pq.Exec(runCtx, c.opts)
			if err != nil {
				return nil, 1, 0, err
			}
			c.profile(prof, 1)
			c.observe(prof.Duration)
			return res, 1, prof.Version, nil
		default:
		}
	}

	g := c.pending
	if g == nil {
		g = &group{slot: map[string]int{}, full: make(chan struct{}), done: make(chan struct{})}
		c.pending = g
		go c.run(g, execCtx)
	}
	i, ok := g.slot[key]
	if !ok {
		i = len(g.plans)
		g.slot[key] = i
		g.keys = append(g.keys, key)
		g.plans = append(g.plans, pq)
		if len(g.plans) == c.max {
			c.pending = nil
			close(g.full)
		}
	} else {
		c.dedups++
	}
	joined := len(g.plans)
	g.reqs++
	if !hasDeadline {
		g.later = time.Time{}
	} else if g.reqs == 1 || (!g.later.IsZero() && deadline.After(g.later)) {
		g.later = deadline
	}
	c.mu.Unlock()

	select {
	case <-g.done:
		if g.err != nil {
			return nil, len(g.plans), 0, g.err
		}
		return g.res[i], len(g.plans), g.version, nil
	case <-ctx.Done():
		// This member's deadline expired first; the shared execution keeps
		// serving the rest of the group (joined is this waiter's view of
		// the group size — the group may still be gathering).
		return nil, joined, 0, ctx.Err()
	}
}

// run is the group's leader: gather until the group is full or the
// window elapses, take an execution slot, run the whole group as one
// shared-scan batch, and wake every waiter.
func (c *coalescer) run(g *group, execCtx context.Context) {
	timer := time.NewTimer(time.Duration(c.win.Load()))
	defer timer.Stop()
	select {
	case <-g.full:
	case <-timer.C:
	}

	c.mu.Lock()
	if c.pending == g {
		c.pending = nil
	}
	n := len(g.plans)
	c.groups++
	c.batched += int64(g.reqs)
	if n > c.maxBatch {
		c.maxBatch = n
	}
	later := g.later
	c.mu.Unlock()

	c.sem <- struct{}{}
	defer func() { <-c.sem }()

	ctx, cancel := c.memberCtx(execCtx, later, !later.IsZero())
	defer cancel()
	defer close(g.done)
	if n == 1 {
		res, prof, err := g.plans[0].Exec(ctx, c.opts)
		if err != nil {
			g.err = err
			return
		}
		c.profile(prof, 1)
		c.observe(prof.Duration)
		g.res = []*arb.Result{res}
		g.version = prof.Version
		return
	}
	pb, err := c.sess.BatchOf(g.plans...)
	if err != nil {
		g.err = err
		return
	}
	res, prof, err := pb.Exec(ctx, c.opts)
	if err != nil {
		g.err = err
		return
	}
	c.profile(prof, n)
	c.observe(prof.Duration)
	g.res = res
	g.version = prof.Version
}

// memberCtx derives the execution context: the server's base context
// (cancelled on Close) bounded by the latest member deadline, so a batch
// never outlives every request that wanted it.
func (c *coalescer) memberCtx(base context.Context, deadline time.Time, has bool) (context.Context, context.CancelFunc) {
	if !has || deadline.IsZero() {
		return base, func() {}
	}
	return context.WithDeadline(base, deadline)
}

// CoalescerStats is the coalescer's corner of the /stats payload.
type CoalescerStats struct {
	Groups     int64   `json:"groups"`          // executions dispatched (solo + batched)
	Solo       int64   `json:"solo"`            // idle fast-path executions
	Requests   int64   `json:"requests"`        // requests routed through groups
	Dedup      int64   `json:"dedup_hits"`      // requests folded onto a duplicate plan
	MaxBatch   int     `json:"max_batch_plans"` // largest distinct-plan group so far
	WindowMS   float64 `json:"window_ms"`       // current gather window
	WindowAuto bool    `json:"window_auto"`     // window is tuned, not pinned
	ScanEWMAMS float64 `json:"scan_ewma_ms"`    // smoothed execution duration feeding the tuner
}

func (c *coalescer) snapshot() CoalescerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CoalescerStats{
		Groups: c.groups, Solo: c.solos, Requests: c.batched, Dedup: c.dedups, MaxBatch: c.maxBatch,
		WindowMS:   float64(c.win.Load()) / 1e6,
		WindowAuto: c.auto,
		ScanEWMAMS: float64(c.ewma.Load()) / 1e6,
	}
}
