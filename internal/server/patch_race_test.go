package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"arb"
	"arb/internal/server"
)

// TestServePatchRace serves concurrent /query clients while one writer
// streams mutations through /patch (including compactions and patches
// that grow the label table). Every response must be consistent with
// exactly one committed version: the document alternates between 1 and 3
// zz-nodes, so any other count means an execution saw a half-applied
// patch. Versions must be non-decreasing per client, and when the dust
// settles no segment or temp file may be leaked.
func TestServePatchRace(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "db")
	db, _, err := arb.CreateDB(base, strings.NewReader("<a><zz/><b><c/></b><d/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	sess, err := arb.OpenVersionedSession(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	srv := server.New(context.Background(), sess, server.Config{
		BatchMax: 4, Window: time.Millisecond, MaxInflight: 4,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const (
		readers          = 6
		queriesPerClient = 40
		patchPairs       = 30
	)

	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	// Writer: insert two zz nodes under the root, delete them again.
	// Every third insert uses a freshly named wrapper tag, growing the
	// label table so prepared plans must recompile mid-traffic; every
	// tenth pair compacts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		post := func(body map[string]any) (uint64, error) {
			b, err := json.Marshal(body)
			if err != nil {
				return 0, err
			}
			resp, err := http.Post(ts.URL+"/patch", "application/json", bytes.NewReader(b))
			if err != nil {
				return 0, err
			}
			defer resp.Body.Close()
			var out struct {
				Version uint64 `json:"version"`
				Error   string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				return 0, err
			}
			if resp.StatusCode != http.StatusOK {
				return 0, fmt.Errorf("patch %v: status %d: %s", body, resp.StatusCode, out.Error)
			}
			return out.Version, nil
		}
		var last uint64
		bump := func(v uint64, err error) error {
			if err != nil {
				return err
			}
			if v <= last {
				return fmt.Errorf("writer saw version %d after %d", v, last)
			}
			last = v
			return nil
		}
		for i := 0; i < patchPairs; i++ {
			frag := "<zz><zz/></zz>"
			if i%3 == 2 {
				frag = fmt.Sprintf("<grown%d><zz/><zz/></grown%d>", i, i)
			}
			if err := bump(post(map[string]any{"op": "insert-child", "node": 0, "xml": frag})); err != nil {
				errs <- err
				return
			}
			if err := bump(post(map[string]any{"op": "delete", "node": 1})); err != nil {
				errs <- err
				return
			}
			if i%10 == 9 {
				if err := bump(post(map[string]any{"op": "compact"})); err != nil {
					errs <- err
					return
				}
			}
		}
	}()

	for c := 0; c < readers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			q := "xpath://zz"
			if c%2 == 1 {
				q = "xpath://b/c" // constant count 1 at every version
			}
			var lastVersion uint64
			for i := 0; i < queriesPerClient; i++ {
				resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(q))
				if err != nil {
					errs <- err
					return
				}
				var out struct {
					Results []struct {
						Count int64 `json:"count"`
					} `json:"results"`
					Version uint64 `json:"version"`
					Error   string `json:"error"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, out.Error)
					return
				}
				if out.Version == 0 {
					errs <- fmt.Errorf("client %d: response carries no version", c)
					return
				}
				if out.Version < lastVersion {
					errs <- fmt.Errorf("client %d: version went back from %d to %d", c, lastVersion, out.Version)
					return
				}
				lastVersion = out.Version
				count := out.Results[0].Count
				if c%2 == 1 {
					if count != 1 {
						errs <- fmt.Errorf("client %d: //b/c counted %d at version %d", c, count, out.Version)
						return
					}
				} else if count != 1 && count != 3 {
					errs <- fmt.Errorf("client %d: //zz counted %d at version %d — not one version's document",
						c, count, out.Version)
					return
				}
			}
		}(c)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiescent: the last delete restored the single-zz document.
	resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape("xpath://zz"))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Results []struct {
			Count int64 `json:"count"`
		} `json:"results"`
		Version uint64 `json:"version"`
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Count != 1 || out.Version != sess.Version() {
		t.Fatalf("final state: count %d version %d, want 1 at %d", out.Results[0].Count, out.Version, sess.Version())
	}

	// No leaks: every file in the directory belongs to the database, no
	// commit temp files survive, and on-disk segments do not exceed what
	// the store accounts as live.
	stats, ok := sess.StoreStats()
	if !ok {
		t.Fatal("session lost its store stats")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segFiles := 0
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.Contains(name, ".tmp"):
			t.Fatalf("leaked temp file %s", name)
		case strings.HasSuffix(name, ".seg"):
			segFiles++
		case name == "db.arb" || name == "db.lab" || name == "db.idx" || name == "db.arbm" || name == "db.vlab":
		default:
			t.Fatalf("unexpected file %s left in the database directory", name)
		}
	}
	if segFiles > stats.Segments {
		t.Fatalf("%d .seg files on disk, store accounts %d live segments", segFiles, stats.Segments)
	}
	if stats.Snapshots != 0 {
		t.Fatalf("%d snapshots still pinned after quiescence", stats.Snapshots)
	}
}
