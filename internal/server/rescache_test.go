package server_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"arb"
	"arb/internal/server"
	"arb/internal/storage"
)

// TestServeResCacheHit drives the result-cache fast path over HTTP: the
// second request for a query must be answered from the cache (the reply
// says so), return the same ids, bump the /stats counters, and show up
// in /metrics — all without the execution profile growing, since a hit
// runs zero scans.
func TestServeResCacheHit(t *testing.T) {
	base := filepath.Join(t.TempDir(), "full")
	db, err := storage.CreateFullBinary(base, 12, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	sess, err := arb.OpenSession(base)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	srv := server.New(context.Background(), sess, server.Config{ResCacheBytes: 1 << 20})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const q = `QUERY :- Label[b], HasFirstChild;`
	first, code := postQuery(t, ts.URL, map[string]any{"query": q, "ids": true})
	if code != http.StatusOK {
		t.Fatalf("first request: status %d: %v", code, first)
	}
	if rc, _ := first["result_cache"].(string); rc != "" {
		t.Fatalf("first request reports result_cache %q, want none", rc)
	}
	scansBefore := srv.Snapshot().Profile.ScanRounds

	second, code := postQuery(t, ts.URL, map[string]any{"query": q, "ids": true})
	if code != http.StatusOK {
		t.Fatalf("second request: status %d: %v", code, second)
	}
	if rc, _ := second["result_cache"].(string); rc != "hit" {
		t.Fatalf("second request reports result_cache %q, want hit", rc)
	}
	if got, want := fmt.Sprint(second["results"]), fmt.Sprint(first["results"]); got != want {
		t.Fatalf("cached reply differs:\n%s\nvs\n%s", got, want)
	}

	st := srv.Snapshot()
	if st.ResultCache == nil || st.ResultCache.Hits < 1 {
		t.Fatalf("stats result_cache = %+v, want at least one hit", st.ResultCache)
	}
	if st.Profile.ScanRounds != scansBefore {
		t.Fatalf("cache hit grew the scan profile: %d -> %d rounds", scansBefore, st.Profile.ScanRounds)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{"arb_result_cache_hits_total", "arb_result_cache_bytes", "arb_queue_depth", "arb_coalescer_window_seconds"} {
		if !strings.Contains(string(body), name) {
			t.Fatalf("/metrics lacks %s", name)
		}
	}
}

// TestServeResCacheQueueLimit exercises admission control: with a
// one-slot queue and a long pinned gather window, a concurrent burst
// must see exactly one request admitted and the rest refused with 429
// and a Retry-After header, counted in /stats.
func TestServeResCacheQueueLimit(t *testing.T) {
	base := filepath.Join(t.TempDir(), "full")
	db, err := storage.CreateFullBinary(base, 10, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	sess, err := arb.OpenSession(base)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	srv := server.New(context.Background(), sess, server.Config{
		Window:      time.Second, // pinned: the admitted request parks in its gather group
		MaxInflight: 1,
		MaxQueue:    1,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm the coalescer's idle clock so the burst cannot take the solo
	// fast path and drain the queue early.
	if _, code := postQuery(t, ts.URL, map[string]any{"query": `QUERY :- Root;`}); code != http.StatusOK {
		t.Fatalf("warm-up failed with status %d", code)
	}

	const burst = 8
	codes := make([]int, burst)
	retryAfter := make([]string, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := url.Values{"q": {fmt.Sprintf("QUERY :- Label[%c];", 'a'+i%4)}}
			resp, err := http.Get(ts.URL + "/query?" + q.Encode())
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	ok, throttled := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			throttled++
			if retryAfter[i] == "" {
				t.Fatal("429 reply lacks a Retry-After header")
			}
		default:
			t.Fatalf("request %d: unexpected status %d", i, code)
		}
	}
	if ok < 1 || throttled < 1 {
		t.Fatalf("burst of %d: %d ok, %d throttled — want both admission and refusal", burst, ok, throttled)
	}
	st := srv.Snapshot()
	if st.Queue.Throttled != int64(throttled) {
		t.Fatalf("stats report %d throttled, burst saw %d", st.Queue.Throttled, throttled)
	}
	if st.Queue.Limit != 1 {
		t.Fatalf("stats report queue limit %d, want 1", st.Queue.Limit)
	}
}
