// Package server implements `arb serve`: a long-running concurrent query
// server over one arb.Session. It is the serving shape the paper's
// engine was built for — compile once, query many — scaled out along two
// axes: an LRU plan cache keyed by normalized query text keeps the
// compiled automata of hot queries warm across requests, and an adaptive
// coalescer folds concurrent requests into shared-scan batches so M
// simultaneous disk queries cost ~2·⌈M/K⌉ linear scans instead of 2·M.
// Requests carry their own deadlines through the session's context
// plumbing, executions are bounded by a concurrency limiter, and /stats
// surfaces the merged execution profile (bytes scanned and skipped,
// pruned nodes, cache hit rate, batching degree).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arb"
	"arb/internal/xpath"
)

// Config tunes a Server. The zero value gets sensible defaults.
type Config struct {
	// Window is how long a gather group waits for companions before its
	// batch executes. Zero (the default) means auto: the coalescer seeds
	// a 2ms window and retunes it from an EWMA of observed scan
	// durations. A positive value pins the window and disables tuning.
	// Requests on an idle server skip the window entirely; see the
	// coalescer.
	Window time.Duration
	// BatchMax is K, the maximum number of distinct plans per shared-scan
	// batch (default 16). Duplicate concurrent queries never count twice —
	// they share one plan slot and one execution.
	BatchMax int
	// MaxInflight bounds concurrently running executions (default 2).
	MaxInflight int
	// CacheSize is the plan cache capacity in distinct queries (default 256).
	CacheSize int
	// Workers is the per-execution parallelism, as arb.ExecOpts.Workers
	// (default 1; negative = all CPUs).
	Workers int
	// Timeout is the default per-request deadline when the request names
	// none (default 30s). A request's timeout_ms field overrides it.
	Timeout time.Duration
	// MaxIDs caps the selected-node ids returned per predicate when a
	// request asks for ids (default 10000).
	MaxIDs int
	// NoPrune disables selectivity-aware pruning for all executions.
	NoPrune bool
	// ResCacheBytes enables the session result cache with the given byte
	// budget (default 0 = disabled). Cached queries answer with zero
	// scans; see internal/rescache.
	ResCacheBytes int64
	// MaxQueue bounds requests waiting on the coalescer (default 0 =
	// unbounded). When the bound is hit, new queries are refused with
	// 429 and a Retry-After header instead of piling onto the queue.
	// Result-cache hits bypass the queue and are never refused.
	MaxQueue int
}

func (c *Config) fill() {
	if c.Window < 0 {
		c.Window = 0 // auto
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxIDs <= 0 {
		c.MaxIDs = 10000
	}
}

// Server fields HTTP query requests against one session.
type Server struct {
	sess  *arb.Session
	cfg   Config
	cache *planCache
	coal  *coalescer

	base   context.Context
	cancel context.CancelFunc
	closed atomic.Bool

	start     time.Time
	requests  atomic.Int64
	errorsN   atomic.Int64
	inflight  atomic.Int64
	patchesN  atomic.Int64 // committed /patch operations
	queued    atomic.Int64 // queries waiting on (or in) the coalescer
	throttled atomic.Int64 // queries refused with 429 by admission control

	profMu sync.Mutex
	prof   ProfileCounters // guarded by: profMu
}

// ProfileCounters is the merged cost profile across every execution the
// server dispatched — the serving-level view of the engine's ScanStats
// and pruning counters.
type ProfileCounters struct {
	ScanRounds int64 `json:"scan_rounds"`      // shared scan pairs executed
	Phase1     int64 `json:"phase1_bytes"`     // .arb bytes read, backward scans
	Phase2     int64 `json:"phase2_bytes"`     // .arb bytes read, forward scans
	Skipped    int64 `json:"skipped_bytes"`    // bytes pruning seeked past
	Pruned     int64 `json:"pruned_nodes"`     // nodes proven irrelevant
	StateBytes int64 `json:"state_temp_bytes"` // temporary state-file bytes
	Queries    int64 `json:"queries_executed"` // plans executed (batch members count singly)
}

// New builds a server over the session. Close releases it; the session
// stays the caller's. ctx bounds the server's lifetime: when it is
// cancelled every in-flight and future request fails fast, exactly as if
// Close had been called.
func New(ctx context.Context, sess *arb.Session, cfg Config) *Server {
	cfg.fill()
	s := &Server{
		sess:  sess,
		cfg:   cfg,
		cache: newPlanCache(cfg.CacheSize),
		start: time.Now(),
	}
	s.base, s.cancel = context.WithCancel(ctx)
	opts := arb.ExecOpts{Workers: cfg.Workers, NoPrune: cfg.NoPrune}
	if cfg.ResCacheBytes > 0 {
		// Executions publish into (and read through) the result cache;
		// the handler additionally short-circuits hits before the
		// coalescer via TryCached.
		sess.SetResultCache(cfg.ResCacheBytes)
		opts.ResultCache = true
	}
	s.coal = newCoalescer(sess, cfg.Window, cfg.BatchMax, cfg.MaxInflight, opts, s.addProfile)
	return s
}

func (s *Server) addProfile(p *arb.Profile, plans int) {
	if p == nil {
		return
	}
	s.profMu.Lock()
	s.prof.ScanRounds += int64(p.Passes)
	s.prof.Phase1 += p.Disk.Phase1.Bytes
	s.prof.Phase2 += p.Disk.Phase2.Bytes
	s.prof.Skipped += p.Disk.Phase1.SkippedBytes + p.Disk.Phase2.SkippedBytes
	s.prof.Pruned += p.Engine.PrunedNodes
	s.prof.StateBytes += p.Disk.StateBytes
	s.prof.Queries += int64(plans)
	s.profMu.Unlock()
}

// Close rejects new requests and cancels outstanding executions. Call it
// after draining the HTTP listener (http.Server.Shutdown waits for
// in-flight handlers, whose executions then finish normally).
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.cancel()
	}
}

// Handler returns the server's HTTP mux:
//
//	POST /query   {"query": "...", "ids": true, "timeout_ms": 500}
//	GET  /query?q=...&ids=1&timeout_ms=500
//	POST /patch   {"op": "replace|delete|insert-child|compact", "node": 7, "xml": "<frag/>"}
//	GET  /stats
//	GET  /metrics
//	GET  /healthz
//
// Queries use the workload-file convention: TMNF programs by default, a
// Core XPath expression behind an "xpath:" prefix. /patch requires a
// versioned session (a database with a .arbm manifest); queries running
// when a patch commits keep reading the version snapshot they pinned.
// /metrics serves the /stats counters in Prometheus text format.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/patch", s.handlePatch)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": !s.closed.Load()})
	})
	return mux
}

// queryRequest is the /query payload.
type queryRequest struct {
	Query     string `json:"query"`
	IDs       bool   `json:"ids"`
	TimeoutMS int64  `json:"timeout_ms"`
}

// predResult is one query predicate's slice of a response.
type predResult struct {
	Predicate string  `json:"predicate"`
	Count     int64   `json:"count"`
	IDs       []int64 `json:"ids,omitempty"`
	Truncated bool    `json:"ids_truncated,omitempty"`
}

// queryResponse is the /query reply.
type queryResponse struct {
	Query       string       `json:"query"` // normalized form (the plan-cache key)
	Results     []predResult `json:"results"`
	PlanCache   string       `json:"plan_cache"`             // "hit" or "miss"
	ResultCache string       `json:"result_cache,omitempty"` // "hit" or "subsumed" when answered without scanning
	Coalesced   int          `json:"coalesced"`              // distinct plans sharing this request's scans
	Version     uint64       `json:"version,omitempty"`      // database version the execution read (versioned sessions)
	Elapsed     float64      `json:"elapsed_seconds"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.closed.Load() {
		s.fail(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	var req queryRequest
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	case http.MethodGet:
		req.Query = r.URL.Query().Get("q")
		if v := r.URL.Query().Get("ids"); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				s.fail(w, http.StatusBadRequest, "bad ids %q", v)
				return
			}
			req.IDs = b
		}
		if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
			v, err := strconv.ParseInt(ms, 10, 64)
			if err != nil {
				s.fail(w, http.StatusBadRequest, "bad timeout_ms %q", ms)
				return
			}
			req.TimeoutMS = v
		}
	default:
		s.fail(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		s.fail(w, http.StatusBadRequest, "empty query")
		return
	}

	key, pq, hit, err := s.plan(req.Query)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	planCache := map[bool]string{true: "hit", false: "miss"}[hit]

	start := time.Now()
	// Result-cache fast path: a hit answers from memory with zero scans,
	// skipping the deadline plumbing, the admission queue and the
	// coalescer entirely — the whole point of the tier.
	if res, prof, ok := pq.TryCached(); ok {
		writeJSON(w, http.StatusOK, queryResponse{
			Query:       key,
			Results:     s.predResults(pq, res, req.IDs),
			PlanCache:   planCache,
			ResultCache: prof.ResultCache,
			Version:     prof.Version,
			Elapsed:     time.Since(start).Seconds(),
		})
		return
	}

	// Admission control: past the cache, every request costs an
	// execution (or a wait for one). A bounded queue sheds load early
	// with 429 + Retry-After instead of letting deadlines expire deep in
	// the coalescer.
	if s.cfg.MaxQueue > 0 {
		if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
			s.queued.Add(-1)
			s.throttled.Add(1)
			w.Header().Set("Retry-After", "1")
			s.fail(w, http.StatusTooManyRequests, "query queue full (%d waiting); retry later", s.cfg.MaxQueue)
			return
		}
		defer s.queued.Add(-1)
	}

	timeout := s.cfg.Timeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	res, coalesced, version, err := s.coal.submit(ctx, s.base, key, pq)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.fail(w, http.StatusGatewayTimeout, "query timed out after %v", timeout)
		case errors.Is(err, context.Canceled):
			s.fail(w, http.StatusServiceUnavailable, "query cancelled: %v", err)
		default:
			s.fail(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}

	writeJSON(w, http.StatusOK, queryResponse{
		Query:     key,
		Results:   s.predResults(pq, res, req.IDs),
		PlanCache: planCache,
		Coalesced: coalesced,
		Version:   version,
		Elapsed:   time.Since(start).Seconds(),
	})
}

// predResults renders a result per query predicate, truncating id lists
// at the configured cap.
func (s *Server) predResults(pq *arb.PreparedQuery, res *arb.Result, wantIDs bool) []predResult {
	var out []predResult
	for _, q := range pq.Queries() {
		pr := predResult{Predicate: pq.Program().PredName(q), Count: res.Count(q)}
		if wantIDs {
			res.Walk(q, func(v arb.NodeID) bool {
				if len(pr.IDs) >= s.cfg.MaxIDs {
					pr.Truncated = true
					return false
				}
				pr.IDs = append(pr.IDs, int64(v))
				return true
			})
		}
		out = append(out, pr)
	}
	return out
}

// plan resolves a query text to its cached plan, compiling and caching
// on a miss. The cache key is the normalized query ("tmnf:" or "xpath:"
// prefixed), so whitespace, CRLF and axis-abbreviation variants of one
// query share a single compiled handle.
func (s *Server) plan(src string) (key string, pq *arb.PreparedQuery, hit bool, err error) {
	trimmed := strings.TrimSpace(src)
	if expr, ok := strings.CutPrefix(trimmed, "xpath:"); ok {
		// One parse serves both the normalized cache key and, on a miss,
		// the compilation (Translate works on the parsed path).
		path, err := xpath.Parse(expr)
		if err != nil {
			return "", nil, false, err
		}
		key = "xpath:" + path.String()
		if pq, ok := s.cache.get(key); ok {
			return key, pq, true, nil
		}
		q, err := xpath.Translate(path)
		if err != nil {
			return "", nil, false, err
		}
		if pq, err = s.sess.PrepareXPath(q); err != nil {
			return "", nil, false, err
		}
	} else {
		prog, err := arb.ParseProgram(trimmed)
		if err != nil {
			return "", nil, false, err
		}
		key = "tmnf:" + prog.String()
		if pq, ok := s.cache.get(key); ok {
			return key, pq, true, nil
		}
		if pq, err = s.sess.Prepare(prog); err != nil {
			return "", nil, false, err
		}
	}
	return key, s.cache.put(key, pq), false, nil
}

// patchRequest is the /patch payload: one mutation of the versioned
// database. "replace" and "insert-child" carry the fragment as XML;
// "delete" takes just the node; "compact" takes neither.
type patchRequest struct {
	Op   string `json:"op"`
	Node int64  `json:"node"`
	XML  string `json:"xml,omitempty"`
}

// patchResponse is the /patch reply: the committed operation's
// PatchInfo, flattened.
type patchResponse struct {
	Version      uint64  `json:"version"` // the version the operation produced
	Op           string  `json:"op"`
	Nodes        int64   `json:"nodes"`
	Delta        int64   `json:"delta"`
	SegmentBytes int64   `json:"segment_bytes"`
	Elapsed      float64 `json:"elapsed_seconds"`
}

// handlePatch applies one mutation to the session's versioned store and
// replies with the version it committed. Queries in flight keep their
// pinned snapshots; queries submitted after the reply see the new
// version. Writers serialise inside the store, so concurrent /patch
// requests simply queue.
func (s *Server) handlePatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.closed.Load() {
		s.fail(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if !s.sess.Versioned() {
		s.fail(w, http.StatusConflict, "database is not versioned; restart the server on a patched database (arb patch) to enable /patch")
		return
	}
	var req patchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()

	start := time.Now()
	var info *arb.PatchInfo
	var err error
	if req.Op == "compact" {
		info, err = s.sess.Compact(ctx)
	} else {
		op := arb.PatchOp{Op: req.Op, Node: req.Node}
		if req.XML != "" {
			if op.Tree, err = arb.ParseXML(strings.NewReader(req.XML)); err != nil {
				s.fail(w, http.StatusBadRequest, "bad fragment xml: %v", err)
				return
			}
		}
		info, err = s.sess.Patch(ctx, op)
	}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			s.fail(w, http.StatusServiceUnavailable, "patch aborted: %v", err)
		default:
			s.fail(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	s.patchesN.Add(1)
	writeJSON(w, http.StatusOK, patchResponse{
		Version:      info.Version,
		Op:           info.Op,
		Nodes:        info.Nodes,
		Delta:        info.Delta,
		SegmentBytes: info.SegmentBytes,
		Elapsed:      time.Since(start).Seconds(),
	})
}

// Stats is the /stats payload.
type Stats struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Requests      int64           `json:"requests"`
	Errors        int64           `json:"errors"`
	Inflight      int64           `json:"inflight"`
	Patches       int64           `json:"patch_requests"`
	PlanCache     CacheStats      `json:"plan_cache"`
	HitRate       float64         `json:"plan_cache_hit_rate"`
	Coalescer     CoalescerStats  `json:"coalescer"`
	Profile       ProfileCounters `json:"profile"`
	// ResultCache is the session result cache's counters (present only
	// when the server runs with -rescache).
	ResultCache *arb.ResultCacheStats `json:"result_cache,omitempty"`
	// Queue is the admission-control view: current depth, configured
	// limit (0 = unbounded) and queries refused with 429.
	Queue struct {
		Depth     int64 `json:"depth"`
		Limit     int   `json:"limit"`
		Throttled int64 `json:"throttled"`
	} `json:"queue"`
	Session struct {
		Nodes     int64  `json:"nodes"`
		Disk      bool   `json:"disk"`
		Versioned bool   `json:"versioned"`
		Version   uint64 `json:"version,omitempty"`
	} `json:"session"`
	// Store is the versioned store's bookkeeping (versioned sessions
	// only): segments and bytes held, live versions, snapshot pins, and
	// the patch/compaction counts since the store was opened.
	Store *arb.StoreStats `json:"store,omitempty"`
}

// Snapshot returns the server's current statistics (the /stats payload,
// also used directly by tests and benchmarks).
func (s *Server) Snapshot() Stats {
	st := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Errors:        s.errorsN.Load(),
		Inflight:      s.inflight.Load(),
		Patches:       s.patchesN.Load(),
		PlanCache:     s.cache.snapshot(),
		Coalescer:     s.coal.snapshot(),
	}
	s.profMu.Lock()
	st.Profile = s.prof
	s.profMu.Unlock()
	if total := st.PlanCache.Hits + st.PlanCache.Misses; total > 0 {
		st.HitRate = float64(st.PlanCache.Hits) / float64(total)
	}
	if rc, ok := s.sess.ResultCacheStats(); ok {
		st.ResultCache = &rc
	}
	st.Queue.Depth = s.queued.Load()
	st.Queue.Limit = s.cfg.MaxQueue
	st.Queue.Throttled = s.throttled.Load()
	st.Session.Nodes = s.sess.Len()
	st.Session.Disk = s.sess.DB() != nil || s.sess.Versioned()
	st.Session.Versioned = s.sess.Versioned()
	st.Session.Version = s.sess.Version()
	if ss, ok := s.sess.StoreStats(); ok {
		st.Store = &ss
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errorsN.Add(1)
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
