package server

import (
	"fmt"
	"net/http"
	"strings"
)

// /metrics serves the server's counters in the Prometheus text
// exposition format (text/plain; version=0.0.4) — the same numbers
// /stats reports as JSON, named and typed for a scraper, plus the
// versioned store's patch/version gauges when the session is versioned.
// The endpoint is handwritten on purpose: the format is a few lines of
// fmt, and the server carries no metrics dependency.

// metricsWriter accumulates one exposition: each metric is a HELP line,
// a TYPE line, and the sample.
type metricsWriter struct {
	b strings.Builder
}

func (m *metricsWriter) counter(name, help string, v int64) {
	fmt.Fprintf(&m.b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func (m *metricsWriter) gauge(name, help string, v float64) {
	fmt.Fprintf(&m.b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	st := s.Snapshot()
	var m metricsWriter

	m.gauge("arb_uptime_seconds", "Seconds since the server started.", st.UptimeSeconds)
	m.counter("arb_requests_total", "HTTP requests received (queries and patches).", st.Requests)
	m.counter("arb_errors_total", "Requests answered with an error status.", st.Errors)
	m.gauge("arb_inflight_requests", "Requests currently being handled.", float64(st.Inflight))
	m.counter("arb_patch_requests_total", "Mutations committed through /patch.", st.Patches)

	m.counter("arb_plan_cache_hits_total", "Plan cache hits.", st.PlanCache.Hits)
	m.counter("arb_plan_cache_misses_total", "Plan cache misses (compilations).", st.PlanCache.Misses)
	m.counter("arb_plan_cache_evictions_total", "Plans evicted from the LRU cache.", st.PlanCache.Evictions)
	m.gauge("arb_plan_cache_size", "Distinct plans currently cached.", float64(st.PlanCache.Size))
	m.gauge("arb_plan_cache_capacity", "Plan cache capacity.", float64(st.PlanCache.Capacity))

	if rc := st.ResultCache; rc != nil {
		m.counter("arb_result_cache_hits_total", "Result cache exact (key, version) hits.", int64(rc.Hits))
		m.counter("arb_result_cache_subsumed_total", "Result cache misses answered via subsumption.", int64(rc.Subsumed))
		m.counter("arb_result_cache_misses_total", "Result cache lookups answered by neither.", int64(rc.Misses))
		m.counter("arb_result_cache_evictions_total", "Result cache entries dropped for the byte budget.", int64(rc.Evictions))
		m.counter("arb_result_cache_rejected_total", "Result publishes refused by admission.", int64(rc.Rejected))
		m.gauge("arb_result_cache_entries", "Resident result cache entries.", float64(rc.Entries))
		m.gauge("arb_result_cache_bytes", "Resident result cache bytes.", float64(rc.Bytes))
		m.gauge("arb_result_cache_capacity_bytes", "Configured result cache byte budget.", float64(rc.Capacity))
	}

	m.gauge("arb_queue_depth", "Queries waiting on (or in) the coalescer.", float64(st.Queue.Depth))
	m.gauge("arb_queue_limit", "Admission-control queue bound (0 = unbounded).", float64(st.Queue.Limit))
	m.counter("arb_throttled_total", "Queries refused with 429 by admission control.", st.Queue.Throttled)

	m.counter("arb_coalescer_groups_total", "Executions dispatched (solo and batched).", st.Coalescer.Groups)
	m.counter("arb_coalescer_solo_total", "Idle fast-path executions.", st.Coalescer.Solo)
	m.counter("arb_coalescer_requests_total", "Requests routed through gather groups.", st.Coalescer.Requests)
	m.counter("arb_coalescer_dedup_total", "Requests folded onto a duplicate plan.", st.Coalescer.Dedup)
	m.gauge("arb_coalescer_max_batch_plans", "Largest distinct-plan group so far.", float64(st.Coalescer.MaxBatch))
	m.gauge("arb_coalescer_window_seconds", "Current gather window.", st.Coalescer.WindowMS/1e3)
	m.gauge("arb_coalescer_scan_ewma_seconds", "Smoothed execution duration feeding the window tuner.", st.Coalescer.ScanEWMAMS/1e3)

	m.counter("arb_scan_rounds_total", "Shared scan pairs executed.", st.Profile.ScanRounds)
	m.counter("arb_phase1_bytes_total", "Database bytes read by backward scans.", st.Profile.Phase1)
	m.counter("arb_phase2_bytes_total", "Database bytes read by forward scans.", st.Profile.Phase2)
	m.counter("arb_skipped_bytes_total", "Database bytes pruning seeked past.", st.Profile.Skipped)
	m.counter("arb_pruned_nodes_total", "Nodes proven irrelevant by pruning.", st.Profile.Pruned)
	m.counter("arb_state_temp_bytes_total", "Temporary state-file bytes written.", st.Profile.StateBytes)
	m.counter("arb_queries_executed_total", "Plans executed (batch members count singly).", st.Profile.Queries)

	m.gauge("arb_session_nodes", "Nodes in the session's document (current version).", float64(st.Session.Nodes))
	if st.Store != nil {
		m.gauge("arb_store_version", "Current database version id.", float64(st.Store.Version))
		m.gauge("arb_store_segments", "Open segments (base plus live patch segments).", float64(st.Store.Segments))
		m.gauge("arb_store_segment_bytes", "Record bytes held by open segments.", float64(st.Store.SegmentBytes))
		m.gauge("arb_store_live_versions", "Versions not yet collected (current included).", float64(st.Store.LiveVersions))
		m.gauge("arb_store_snapshots", "Outstanding snapshot pins.", float64(st.Store.Snapshots))
		m.gauge("arb_snapshot_pins", "Outstanding snapshot pins (snappin's runtime counterpart: nonzero at quiescence means a leak).", float64(st.Store.Pins))
		m.counter("arb_store_patches_total", "Patches committed since the store was opened.", st.Store.Patches)
		m.counter("arb_store_compactions_total", "Compactions committed since the store was opened.", st.Store.Compactions)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(m.b.String()))
}
