package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"arb"
	"arb/internal/server"
	"arb/internal/storage"
)

// postQuery sends one /query request and decodes the reply.
func postQuery(t *testing.T, url string, body map[string]any) (map[string]any, int) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return out, resp.StatusCode
}

func getStats(t *testing.T, url string) server.Stats {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServeDifferentialCoalesced is the server's acceptance test: N
// concurrent requests (hot and cold, TMNF and XPath, with duplicates)
// against a disk database must return results bit-identical to scalar
// PreparedQuery.Exec, while the merged profile proves the coalescer paid
// at most 2·⌈N/K⌉ linear scans for the whole burst.
func TestServeDifferentialCoalesced(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a multi-megabyte database")
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "full")
	// Depth 20: ~2.1M nodes, ~4.2MB — big enough that one scan pair takes
	// long enough for a concurrent burst to pile up behind it.
	db, err := storage.CreateFullBinary(base, 20, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()

	sess, err := arb.OpenSession(base)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const batchMax = 4
	const maxIDs = 2000
	srv := server.New(context.Background(), sess, server.Config{
		Window:      time.Second, // generous: the burst must gather, not fragment
		BatchMax:    batchMax,
		MaxInflight: 1,
		MaxIDs:      maxIDs,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	distinct := []string{
		`QUERY :- Label[d], HasFirstChild;`,
		`QUERY :- V.Label[b].FirstChild.Label[c];`,
		`QUERY :- Leaf, Label[b];`,
		`QUERY :- V.Label[a].SecondChild.HasFirstChild;`,
		`xpath://c/d`,
		`xpath://a/*`,
		`xpath://b[c]`,
		`xpath:/a/b`,
	}
	// 12 requests: the 8 distinct queries plus two hot duplicates each of
	// a TMNF and an XPath query.
	burst := append(append([]string{}, distinct...), distinct[0], distinct[0], distinct[4], distinct[4])

	// Scalar baseline through a separate session: count and leading ids
	// per query, computed sequentially before the server sees traffic.
	baseSess, err := arb.OpenSession(base)
	if err != nil {
		t.Fatal(err)
	}
	defer baseSess.Close()
	type expect struct {
		count int64
		ids   []int64
	}
	want := map[string]expect{}
	for _, src := range distinct {
		var pq *arb.PreparedQuery
		if expr, ok := strings.CutPrefix(src, "xpath:"); ok {
			xq, err := arb.ParseXPath(expr)
			if err != nil {
				t.Fatal(err)
			}
			if pq, err = baseSess.PrepareXPath(xq); err != nil {
				t.Fatal(err)
			}
		} else {
			prog, err := arb.ParseProgram(src)
			if err != nil {
				t.Fatal(err)
			}
			if pq, err = baseSess.Prepare(prog); err != nil {
				t.Fatal(err)
			}
		}
		res, _, err := pq.Exec(context.Background(), arb.ExecOpts{})
		if err != nil {
			t.Fatal(err)
		}
		q := pq.Queries()[0]
		e := expect{count: res.Count(q)}
		res.Walk(q, func(v arb.NodeID) bool {
			if len(e.ids) >= maxIDs {
				return false
			}
			e.ids = append(e.ids, int64(v))
			return true
		})
		want[src] = e
	}

	// Warm-up request: primes the coalescer's arrival clock so the burst
	// below is never mistaken for an idle server, and counts as the only
	// solo execution this test tolerates.
	if out, code := postQuery(t, ts.URL, map[string]any{"query": `QUERY :- Root;`}); code != http.StatusOK {
		t.Fatalf("warm-up failed: %d %v", code, out)
	}
	before := getStats(t, ts.URL)

	var wg sync.WaitGroup
	type reply struct {
		src  string
		out  map[string]any
		code int
	}
	replies := make([]reply, len(burst))
	for i, src := range burst {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			out, code := postQuery(t, ts.URL, map[string]any{"query": src, "ids": true})
			replies[i] = reply{src, out, code}
		}(i, src)
	}
	wg.Wait()

	for _, r := range replies {
		if r.code != http.StatusOK {
			t.Fatalf("request %q: status %d: %v", r.src, r.code, r.out)
		}
		e := want[r.src]
		results := r.out["results"].([]any)
		if len(results) != 1 {
			t.Fatalf("request %q: %d result predicates, want 1", r.src, len(results))
		}
		pr := results[0].(map[string]any)
		if got := int64(pr["count"].(float64)); got != e.count {
			t.Errorf("request %q: count %d, want %d", r.src, got, e.count)
		}
		var ids []int64
		if raw, ok := pr["ids"].([]any); ok {
			for _, v := range raw {
				ids = append(ids, int64(v.(float64)))
			}
		}
		if len(ids) != len(e.ids) {
			t.Errorf("request %q: %d ids, want %d", r.src, len(ids), len(e.ids))
			continue
		}
		for j := range ids {
			if ids[j] != e.ids[j] {
				t.Errorf("request %q: id[%d] = %d, want %d", r.src, j, ids[j], e.ids[j])
				break
			}
		}
	}

	after := getStats(t, ts.URL)
	n := len(burst)
	rounds := after.Profile.ScanRounds - before.Profile.ScanRounds
	bound := int64((n + batchMax - 1) / batchMax) // ⌈N/K⌉ scan pairs = 2·⌈N/K⌉ scans
	if rounds > bound {
		t.Errorf("burst of %d requests cost %d scan pairs, want <= %d (coalescer failed)", n, rounds, bound)
	}
	if rounds < 1 {
		t.Errorf("no scan rounds recorded for the burst")
	}
	// Coverage invariant: every scan pair reads or provably skips the
	// whole database once per phase.
	dbBytes := sess.Len() * storage.NodeSize
	covered := (after.Profile.Phase1 + after.Profile.Phase2 + after.Profile.Skipped) -
		(before.Profile.Phase1 + before.Profile.Phase2 + before.Profile.Skipped)
	if covered != 2*dbBytes*rounds {
		t.Errorf("scan coverage %d bytes over %d rounds, want %d (2 x %d db bytes per round)",
			covered, rounds, 2*dbBytes*rounds, dbBytes)
	}
	// The duplicate requests must have hit the plan cache.
	if hits := after.PlanCache.Hits - before.PlanCache.Hits; hits < 4 {
		t.Errorf("plan cache hits during burst = %d, want >= 4 (duplicates must share plans)", hits)
	}
	if after.Coalescer.MaxBatch < 2 {
		t.Errorf("max batch %d, want >= 2 (burst never coalesced)", after.Coalescer.MaxBatch)
	}
}

// TestServeHTTPBasics drives the endpoints over a small in-memory
// session: health, stats shape, GET and POST queries, multi-pass XPath,
// normalization folding variants onto one cached plan, and error paths.
func TestServeHTTPBasics(t *testing.T) {
	b := arb.NewTreeBuilder()
	for _, step := range []func() error{
		func() error { return b.Begin("lib") },
		func() error { return b.Begin("book") },
		func() error { return b.Begin("title") },
		func() error { return b.Text([]byte("A")) },
		func() error { return b.End() },
		func() error { return b.End() },
		func() error { return b.Begin("book") },
		func() error { return b.End() },
		func() error { return b.End() },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := b.Tree()
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(context.Background(), arb.NewSession(tr), server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Health.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// POST TMNF.
	out, code := postQuery(t, ts.URL, map[string]any{"query": `QUERY :- Label[book];`, "ids": true})
	if code != http.StatusOK {
		t.Fatalf("query status %d: %v", code, out)
	}
	pr := out["results"].([]any)[0].(map[string]any)
	if pr["count"].(float64) != 2 {
		t.Fatalf("book count = %v, want 2", pr["count"])
	}

	// GET XPath with a not(..) condition (multi-pass on the server).
	resp, err = http.Get(ts.URL + "/query?q=" + "xpath%3A%2F%2Fbook%5Bnot%28title%29%5D&ids=1")
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("xpath GET status %d: %v", resp.StatusCode, got)
	}
	if c := got["results"].([]any)[0].(map[string]any)["count"].(float64); c != 1 {
		t.Fatalf("titleless book count = %v, want 1", c)
	}

	// Normalization: whitespace/CRLF/axis variants share one plan.
	variants := []string{
		"xpath://book/title",
		"xpath: //book/title\r\n",
		"xpath:/descendant-or-self::node()/child::book/child::title",
	}
	keys := map[string]bool{}
	for _, v := range variants {
		out, code := postQuery(t, ts.URL, map[string]any{"query": v})
		if code != http.StatusOK {
			t.Fatalf("variant %q: status %d: %v", v, code, out)
		}
		keys[out["query"].(string)] = true
	}
	if len(keys) != 1 {
		t.Fatalf("query variants normalized to %d keys %v, want 1", len(keys), keys)
	}
	st := getStats(t, ts.URL)
	if st.PlanCache.Hits < 2 {
		t.Fatalf("plan cache hits = %d, want >= 2 (normalized variants must share a plan)", st.PlanCache.Hits)
	}
	if st.Requests < int64(len(variants))+2 {
		t.Fatalf("requests = %d, want >= %d", st.Requests, len(variants)+2)
	}

	// ids=0 on a GET must disable id output, not enable it.
	resp, err = http.Get(ts.URL + "/query?q=QUERY%20%3A-%20Label%5Bbook%5D%3B&ids=0")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, hasIDs := got["results"].([]any)[0].(map[string]any)["ids"]; hasIDs {
		t.Fatalf("ids=0 still returned ids: %v", got)
	}

	// Error paths: malformed query, empty query, bad method.
	if _, code := postQuery(t, ts.URL, map[string]any{"query": "xpath:book["}); code != http.StatusBadRequest {
		t.Fatalf("malformed query: status %d, want 400", code)
	}
	if _, code := postQuery(t, ts.URL, map[string]any{"query": "   "}); code != http.StatusBadRequest {
		t.Fatalf("empty query: status %d, want 400", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/query", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("DELETE /query: status %d, want 405", resp.StatusCode)
		}
	}
}

// TestServeDrain checks the shutdown contract: after Close the server
// rejects new queries with 503 and reports unhealthy, while the HTTP
// listener's own Shutdown is what drains in-flight handlers.
func TestServeDrain(t *testing.T) {
	b := arb.NewTreeBuilder()
	if err := b.Begin("r"); err != nil {
		t.Fatal(err)
	}
	if err := b.End(); err != nil {
		t.Fatal(err)
	}
	tr, err := b.Tree()
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(context.Background(), arb.NewSession(tr), server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if out, code := postQuery(t, ts.URL, map[string]any{"query": `QUERY :- Root;`}); code != http.StatusOK {
		t.Fatalf("pre-drain query: status %d: %v", code, out)
	}
	srv.Close()
	if _, code := postQuery(t, ts.URL, map[string]any{"query": `QUERY :- Root;`}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain query: status %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["ok"] != false {
		t.Fatalf("healthz after drain: %v, want ok=false", h)
	}
}

// TestServeDeadline checks that a request-level deadline surfaces as 504
// without poisoning the server for later requests.
func TestServeDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a multi-megabyte database")
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "full")
	db, err := storage.CreateFullBinary(base, 19, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	sess, err := arb.OpenSession(base)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	srv := server.New(context.Background(), sess, server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	out, code := postQuery(t, ts.URL, map[string]any{"query": `QUERY :- Label[b], HasFirstChild;`, "timeout_ms": 1})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("1ms deadline: status %d (%v), want 504", code, out)
	}
	if out, code := postQuery(t, ts.URL, map[string]any{"query": `QUERY :- Label[b], HasFirstChild;`}); code != http.StatusOK {
		t.Fatalf("query after timeout: status %d: %v", code, out)
	}
	// The timed-out execution must not have leaked temporary files.
	deadlineLeakCheck(t, dir)
}

func deadlineLeakCheck(t *testing.T, dir string) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		switch filepath.Ext(m) {
		case ".arb", ".lab", ".idx":
		default:
			t.Errorf("stray file after timed-out request: %s", m)
		}
	}
}
