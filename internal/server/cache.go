package server

import (
	"container/list"
	"sync"

	"arb"
)

// planCache is an LRU cache of compiled query plans keyed by normalized
// query text. A hit hands every request for a hot query the SAME
// PreparedQuery handle, so its lazily built automata warm once and then
// serve all traffic — and because Exec is reentrant, concurrent hits
// never queue behind each other. Eviction only drops the cache's
// reference; executions still holding the handle finish normally.
type planCache struct {
	mu  sync.Mutex
	cap int
	// ll is the LRU list, front = most recently used.
	ll    *list.List               // guarded by: mu
	items map[string]*list.Element // guarded by: mu

	hits, misses, evictions int64 // guarded by: mu
}

type cacheEntry struct {
	key string
	pq  *arb.PreparedQuery
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached plan for key, promoting it to most recent.
func (c *planCache) get(key string) (*arb.PreparedQuery, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).pq, true
	}
	c.misses++
	return nil, false
}

// put inserts a freshly compiled plan and returns the canonical handle
// for key: when two requests raced to compile the same cold query, the
// loser adopts the winner's handle so the whole server shares one.
func (c *planCache) put(key string, pq *arb.PreparedQuery) *arb.PreparedQuery {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).pq
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, pq: pq})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
		c.evictions++
	}
	return pq
}

// CacheStats is the plan cache's corner of the /stats payload.
type CacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

func (c *planCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size: c.ll.Len(), Capacity: c.cap,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}
