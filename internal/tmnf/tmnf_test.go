package tmnf

import (
	"math/rand"
	"testing"
)

// example22 is the even/odd leaf-counting program of Example 2.2.
const example22 = `
Even :- Leaf, -Label[a];
Odd  :- Leaf, Label[a];

SFREven :- Even, LastSibling;
SFROdd  :- Odd, LastSibling;

FSEven :- SFREven.invNextSibling;
FSOdd  :- SFROdd.invNextSibling;
SFREven :- FSEven, Even;
SFROdd  :- FSEven, Odd;
SFROdd  :- FSOdd, Even;
SFREven :- FSOdd, Odd;

Even :- SFREven.invFirstChild;
Odd  :- SFROdd.invFirstChild;
`

func TestParseExample22(t *testing.T) {
	p, err := Parse(example22)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Rules()); got != 12 {
		t.Fatalf("got %d rules, want 12:\n%s", got, p)
	}
	// All rules must be strict: no fresh predicates introduced.
	if got := p.NumPreds(); got != 6 {
		t.Fatalf("got %d preds, want 6 (Even Odd SFREven SFROdd FSEven FSOdd)", got)
	}
	// Spot-check a few rule shapes.
	r := p.Rules()[0] // Even :- Leaf, -Label[a];
	if r.Kind != RuleLocal || len(r.Body) != 2 || !r.Body[0].IsUnary || !r.Body[1].IsUnary {
		t.Errorf("rule 0 = %s, want local rule with two unary atoms", p.FormatRule(r))
	}
	u0 := p.Unaries()[r.Body[0].U]
	if u0.Kind != UHasFirstChild || !u0.Neg {
		t.Errorf("rule 0 first atom = %v, want Leaf (-HasFirstChild)", u0)
	}
	u1 := p.Unaries()[r.Body[1].U]
	if u1.Kind != ULabel || u1.Name != "a" || !u1.Neg {
		t.Errorf("rule 0 second atom = %v, want -Label[a]", u1)
	}
	r = p.Rules()[4] // FSEven :- SFREven.invNextSibling;
	if r.Kind != RuleInvMove || r.Rel != RelSecond {
		t.Errorf("rule 4 = %s, want invNextSibling move", p.FormatRule(r))
	}
	r = p.Rules()[10] // Even :- SFREven.invFirstChild;
	if r.Kind != RuleInvMove || r.Rel != RelFirst {
		t.Errorf("rule 10 = %s, want invFirstChild move", p.FormatRule(r))
	}
}

// example43 is the running example program of Example 4.3.
const example43 = `
P1 :- Root;
P2 :- P1.FirstChild;
P3 :- P2.FirstChild;
P4 :- P3, Leaf;
P5 :- P4.invFirstChild;
Q  :- P5.invFirstChild;
`

func TestParseExample43(t *testing.T) {
	p, err := Parse(example43)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Rules()); got != 6 {
		t.Fatalf("got %d rules, want 6:\n%s", got, p)
	}
	if got := p.NumPreds(); got != 6 {
		t.Fatalf("got %d preds, want 6", got)
	}
	kinds := []RuleKind{RuleLocal, RuleMove, RuleMove, RuleLocal, RuleInvMove, RuleInvMove}
	for i, k := range kinds {
		if p.Rules()[i].Kind != k {
			t.Errorf("rule %d kind = %v, want %v (%s)", i, p.Rules()[i].Kind, k, p.FormatRule(p.Rules()[i]))
		}
	}
}

func TestParseCaterpillar(t *testing.T) {
	// The shortcut example from Section 2.2:
	// Q :- P.FirstChild.NextSibling*.Label[a];
	p, err := Parse(`Q :- P.FirstChild.NextSibling*.Label[a];`)
	if err != nil {
		t.Fatal(err)
	}
	// Positions: P, FirstChild, NextSibling, Label[a] -> 4 state preds,
	// plus P and Q themselves.
	if p.NumPreds() != 6 {
		t.Errorf("got %d preds, want 6:\n%s", p.NumPreds(), p)
	}
	var moves, locals int
	for _, r := range p.Rules() {
		switch r.Kind {
		case RuleMove:
			moves++
		case RuleLocal:
			locals++
		}
	}
	// Moves: start(P)->FC, FC->NS, NS->NS = 3. Locals: start->P test,
	// FC->Label, NS->Label, accept = 4.
	if moves != 3 || locals != 4 {
		t.Errorf("moves=%d locals=%d, want 3 and 4:\n%s", moves, locals, p)
	}
}

func TestParsePaperTreebankQuery(t *testing.T) {
	// The Section 6.2 query with R spelled out.
	src := `QUERY :- V.Label[S].FirstChild.NextSibling*.Label[VP].
	         (FirstChild.NextSibling*.Label[NP].FirstChild.NextSibling*.Label[PP])*.
	         FirstChild.NextSibling*.Label[NP];`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Queries()) != 1 {
		t.Fatalf("QUERY predicate not auto-detected")
	}
	if p.PredName(p.Queries()[0]) != "QUERY" {
		t.Fatalf("wrong query predicate")
	}
	// 14 symbols -> 14 state preds + QUERY = 15.
	if p.NumPreds() != 15 {
		t.Errorf("got %d preds, want 15", p.NumPreds())
	}
}

func TestParseAlternationAndNullable(t *testing.T) {
	p, err := Parse(`Q :- P.(FirstChild|SecondChild)?;`)
	if err != nil {
		t.Fatal(err)
	}
	// Nullable tail: Q must also hold wherever P holds.
	found := false
	for _, r := range p.Rules() {
		if r.Kind == RuleLocal && r.Head == mustPred(t, p, "Q") {
			for _, a := range r.Body {
				if !a.IsUnary && p.PredName(a.Pred) == "P" {
					found = true
				}
			}
		}
	}
	// The nullable path goes P -> last(P) -> Q; P is itself a position, so
	// there is a rule chain; just check it parses and has some rules.
	if len(p.Rules()) < 4 {
		t.Errorf("suspiciously few rules:\n%s", p)
	}
	_ = found
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`P :- ;`,
		`P :- Q`,
		`P :- Q..R;`,
		`:- Q;`,
		`P :- -Q;`,              // negation of IDB predicate
		`Root :- Q;`,            // builtin as head
		`P :- Label[];`,         // empty label
		`P :- Char[ab];`,        // multi-char
		`P :- Label[unclosed;`,  // unterminated bracket
		`P :- Q.invThirdChild;`, // unknown relation is an IDB pred; then '.' chain is fine... see below
	}
	for _, src := range bad[:9] {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
	// invThirdChild is not a builtin, so it parses as an IDB predicate
	// test; that is legal (if vacuous).
	if _, err := Parse(bad[9]); err != nil {
		t.Errorf("Parse(%q) failed: %v", bad[9], err)
	}
}

func TestParseCaseInsensitiveBuiltins(t *testing.T) {
	p, err := Parse(`Q :- P, -hasSecondChild; R :- Q.INVFIRSTCHILD;`)
	if err != nil {
		t.Fatal(err)
	}
	r0 := p.Rules()[0]
	if r0.Kind != RuleLocal || !r0.Body[1].IsUnary {
		t.Errorf("rule 0 wrong: %s", p.FormatRule(r0))
	}
	u := p.Unaries()[r0.Body[1].U]
	if u.Kind != UHasSecondChild || !u.Neg {
		t.Errorf("-hasSecondChild parsed as %v", u)
	}
	if p.Rules()[1].Kind != RuleInvMove {
		t.Errorf("INVFIRSTCHILD not recognised")
	}
}

func TestCharUnary(t *testing.T) {
	p, err := Parse(`Q :- P, Char[G];`)
	if err != nil {
		t.Fatal(err)
	}
	u := p.Unaries()[p.Rules()[0].Body[1].U]
	if u.Kind != UChar || u.Char != 'G' {
		t.Errorf("Char[G] parsed as %v", u)
	}
}

func TestSetQueries(t *testing.T) {
	p := MustParse(`A :- Root; B :- A.FirstChild;`)
	if len(p.Queries()) != 0 {
		t.Fatalf("unexpected default queries")
	}
	if err := p.SetQueries("B"); err != nil {
		t.Fatal(err)
	}
	if len(p.Queries()) != 1 || p.PredName(p.Queries()[0]) != "B" {
		t.Errorf("SetQueries failed")
	}
	if err := p.SetQueries("NoSuch"); err == nil {
		t.Error("SetQueries with unknown predicate succeeded")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	p, err := Parse("# leading comment\nA :- Root; // trailing\n\n  B :- A, A;\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules()) != 2 {
		t.Errorf("got %d rules, want 2", len(p.Rules()))
	}
}

func TestFormatRoundTrip(t *testing.T) {
	p := MustParse(example43)
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse of printed program failed: %v\n%s", err, p)
	}
	if q.String() != p.String() {
		t.Errorf("print/parse not stable:\n%s\nvs\n%s", p, q)
	}
}

func TestStats(t *testing.T) {
	p := MustParse(example43)
	s := p.Stats()
	if s.NumIDB != 6 || s.NumRule != 6 {
		t.Errorf("Stats = %+v, want 6/6", s)
	}
}

func mustPred(t *testing.T, p *Program, name string) Pred {
	t.Helper()
	q, ok := p.Pred(name)
	if !ok {
		t.Fatalf("predicate %q missing", name)
	}
	return q
}

func TestAuxUnary(t *testing.T) {
	p, err := Parse(`QUERY :- Aux[3], -Aux[0];`)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules()[0]
	if len(r.Body) != 2 {
		t.Fatalf("body %v", r.Body)
	}
	u0 := p.Unaries()[r.Body[0].U]
	u1 := p.Unaries()[r.Body[1].U]
	if u0.Kind != UAux || u0.Aux != 3 || u0.Neg {
		t.Fatalf("first conjunct %v", u0)
	}
	if u1.Kind != UAux || u1.Aux != 0 || !u1.Neg {
		t.Fatalf("second conjunct %v", u1)
	}
	for _, bad := range []string{`Q :- Aux[16];`, `Q :- Aux[x];`, `Q :- Aux[-1];`, `Q :- Aux;`} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

// TestParserRobustness throws random byte soup at the parser: it must
// return an error or a program, never panic.
func TestParserRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	chars := []byte("PQ09azAZ :;,.-[]()|*?+\n\t")
	for iter := 0; iter < 2000; iter++ {
		n := rng.Intn(60)
		b := make([]byte, n)
		for i := range b {
			b[i] = chars[rng.Intn(len(chars))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", b, r)
				}
			}()
			Parse(string(b))
		}()
	}
}
