// Package tmnf implements TMNF (tree-marking normal form), the query
// language of Section 2.2 of the paper: monadic datalog over the binary
// tree model restricted to four rule templates,
//
//	P(x)  <- U(x).                   (type 1)
//	P(x)  <- P0(x0) /\ B(x0, x).     (type 2)
//	P(x0) <- P0(x)  /\ B(x0, x).     (type 3)
//	P(x)  <- P1(x)  /\ P2(x).        (type 4)
//
// where U is a unary and B a binary input relation. TMNF captures exactly
// the unary MSO queries over trees and is the internal formalism of the
// engine; richer surface languages (caterpillar expressions, regular path
// queries, Core XPath) are translated into it.
//
// The package provides the strict rule representation, a parser for the
// Arb surface syntax (P :- U; P :- P0.B; P :- P0.invB; P :- P1, P2;)
// extended with caterpillar expressions — arbitrary regular expressions
// over the input relations and their inverses, lowered to strict TMNF in
// linear time via the Glushkov position construction — and program
// manipulation helpers.
package tmnf

import (
	"fmt"
	"strings"
)

// Pred identifies an IDB predicate of a Program.
type Pred int32

// UnaryKind enumerates the unary EDB relations of the binary tree model
// (Section 2.1), including the aliases the paper introduces (Leaf for
// -HasFirstChild, LastSibling for -HasSecondChild).
type UnaryKind uint8

const (
	UAll            UnaryKind = iota // V: every node
	URoot                            // Root
	UHasFirstChild                   // HasFirstChild
	UHasSecondChild                  // HasSecondChild
	ULabel                           // Label[name]: named label (tag), resolved against the database
	UChar                            // Char[c]: character label
	UText                            // Text: any character node (label < 256)
	UAux                             // Aux[k]: the k-th auxiliary per-node predicate (precomputed input, Section 7)
)

// Unary is a (possibly complemented) unary EDB predicate.
type Unary struct {
	Kind UnaryKind
	Name string // ULabel: tag name
	Char byte   // UChar: character
	Aux  uint8  // UAux: auxiliary predicate index (0..15)
	Neg  bool   // complement -U
}

// Negate returns the complemented predicate.
func (u Unary) Negate() Unary { u.Neg = !u.Neg; return u }

func (u Unary) String() string {
	var s string
	switch u.Kind {
	case UAll:
		s = "V"
	case URoot:
		s = "Root"
	case UHasFirstChild:
		s = "HasFirstChild"
	case UHasSecondChild:
		s = "HasSecondChild"
	case ULabel:
		s = fmt.Sprintf("Label[%s]", u.Name)
	case UChar:
		s = fmt.Sprintf("Char[%c]", u.Char)
	case UText:
		s = "Text"
	case UAux:
		s = fmt.Sprintf("Aux[%d]", u.Aux)
	}
	if u.Neg {
		return "-" + s
	}
	return s
}

// Rel is a binary EDB relation of the binary tree model. SecondChild is
// also known as NextSibling.
type Rel uint8

const (
	RelFirst  Rel = 1 // FirstChild
	RelSecond Rel = 2 // SecondChild / NextSibling
)

func (r Rel) String() string {
	if r == RelFirst {
		return "FirstChild"
	}
	return "NextSibling"
}

// RuleKind classifies TMNF rules. RuleLocal covers the paper's rule types
// 1 and 4 (and, as in the Arb system itself, any conjunction of IDB
// predicates and unary EDB relations at a single node — the propositional
// translation of Definition 4.2 handles such "local rules" uniformly).
// RuleMove and RuleInvMove are the paper's types 2 and 3.
type RuleKind uint8

const (
	RuleLocal   RuleKind = iota // Head :- A1, ..., An;   (types 1 and 4)
	RuleMove                    // Head :- From.Rel;      (type 2: From at the parent end of Rel, Head at the child end)
	RuleInvMove                 // Head :- From.invRel;   (type 3: From at the child end, Head at the parent end)
)

// LocalAtom is one conjunct of a local rule's body: either an IDB
// predicate or a unary EDB relation (an index into Program.Unaries()).
type LocalAtom struct {
	IsUnary bool
	Pred    Pred // !IsUnary
	U       int  // IsUnary
}

// PredAtom returns a LocalAtom for an IDB predicate.
func PredAtom(p Pred) LocalAtom { return LocalAtom{Pred: p} }

// UnaryAtom returns a LocalAtom for an interned unary relation.
func UnaryAtom(u int) LocalAtom { return LocalAtom{IsUnary: true, U: u} }

// Rule is a TMNF rule.
type Rule struct {
	Kind RuleKind
	Head Pred
	Body []LocalAtom // RuleLocal
	From Pred        // RuleMove, RuleInvMove
	Rel  Rel         // RuleMove, RuleInvMove
}

// Program is a strict TMNF program: a predicate symbol table, a rule list,
// and a set of distinguished query predicates. TMNF programs may define
// several node-selecting queries at once (one per query predicate); by
// convention the parser marks a predicate named "QUERY" or "Query" as a
// query predicate if none is set explicitly.
type Program struct {
	preds    []string
	predIdx  map[string]Pred
	unaries  []Unary
	unaryIdx map[Unary]int
	rules    []Rule
	queries  []Pred
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		predIdx:  make(map[string]Pred),
		unaryIdx: make(map[Unary]int),
	}
}

// Intern returns the predicate with the given name, creating it if needed.
func (p *Program) Intern(name string) Pred {
	if i, ok := p.predIdx[name]; ok {
		return i
	}
	i := Pred(len(p.preds))
	p.preds = append(p.preds, name)
	p.predIdx[name] = i
	return i
}

// Fresh creates a new predicate with a unique name derived from prefix.
func (p *Program) Fresh(prefix string) Pred {
	for i := len(p.preds); ; i++ {
		name := fmt.Sprintf("%s~%d", prefix, i)
		if _, ok := p.predIdx[name]; !ok {
			return p.Intern(name)
		}
	}
}

// Pred looks up a predicate by name.
func (p *Program) Pred(name string) (Pred, bool) {
	i, ok := p.predIdx[name]
	return i, ok
}

// PredName returns the name of predicate i.
func (p *Program) PredName(i Pred) string { return p.preds[i] }

// NumPreds returns the number of IDB predicates.
func (p *Program) NumPreds() int { return len(p.preds) }

// InternUnary returns the index of the unary EDB descriptor, interning it.
func (p *Program) InternUnary(u Unary) int {
	if i, ok := p.unaryIdx[u]; ok {
		return i
	}
	i := len(p.unaries)
	p.unaries = append(p.unaries, u)
	p.unaryIdx[u] = i
	return i
}

// Unaries returns the interned unary EDB descriptors; Rule.U indexes this
// slice.
func (p *Program) Unaries() []Unary { return p.unaries }

// AddRule appends a rule.
func (p *Program) AddRule(r Rule) { p.rules = append(p.rules, r) }

// Rules returns the rule list.
func (p *Program) Rules() []Rule { return p.rules }

// Queries returns the distinguished query predicates.
func (p *Program) Queries() []Pred { return p.queries }

// SetQueries marks the named predicates as the program's queries.
func (p *Program) SetQueries(names ...string) error {
	p.queries = p.queries[:0]
	for _, n := range names {
		i, ok := p.predIdx[n]
		if !ok {
			return fmt.Errorf("tmnf: unknown query predicate %q", n)
		}
		p.queries = append(p.queries, i)
	}
	return nil
}

// AddQuery marks an existing predicate as a query predicate.
func (p *Program) AddQuery(q Pred) {
	for _, e := range p.queries {
		if e == q {
			return
		}
	}
	p.queries = append(p.queries, q)
}

// String renders the program in Arb surface syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.rules {
		b.WriteString(p.FormatRule(r))
		b.WriteString("\n")
	}
	return b.String()
}

// FormatRule renders one rule in Arb surface syntax.
func (p *Program) FormatRule(r Rule) string {
	head := p.preds[r.Head]
	switch r.Kind {
	case RuleMove:
		return fmt.Sprintf("%s :- %s.%s;", head, p.preds[r.From], r.Rel)
	case RuleInvMove:
		return fmt.Sprintf("%s :- %s.inv%s;", head, p.preds[r.From], r.Rel)
	default:
		parts := make([]string, len(r.Body))
		for i, a := range r.Body {
			if a.IsUnary {
				parts[i] = p.unaries[a.U].String()
			} else {
				parts[i] = p.preds[a.Pred]
			}
		}
		return fmt.Sprintf("%s :- %s;", head, strings.Join(parts, ", "))
	}
}

// Stats summarises a program for reporting (columns (2) and (3) of the
// paper's Figure 6 are exactly these numbers).
type Stats struct {
	NumIDB  int
	NumRule int
}

// Stats returns the program size statistics.
func (p *Program) Stats() Stats { return Stats{NumIDB: len(p.preds), NumRule: len(p.rules)} }
