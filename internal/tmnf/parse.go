package tmnf

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a program in the Arb surface syntax.
//
// The strict syntax of the paper is accepted verbatim:
//
//	P :- U;                  unary EDB relation (possibly -negated)
//	P :- P0.FirstChild;      type-2 move (also NextSibling/SecondChild)
//	P :- P0.invFirstChild;   type-3 move
//	P :- P1, P2;             conjunction
//
// As in the Arb system, rule bodies are more liberal than strict TMNF and
// are lowered to it: a body is a comma-separated list of conjuncts, and
// each conjunct is a caterpillar expression — a regular expression over
// IDB predicates, unary relations (as tests) and binary relations and
// their inverses (as moves), written with '.' for concatenation, '|' for
// alternation, '*', '+', '?' for repetition and parentheses for grouping.
// For example (Section 6.2 of the paper):
//
//	QUERY :- V.Label[S].R.Label[VP].(R.Label[NP].R.Label[PP])*.R.Label[NP];
//
// where R abbreviates FirstChild.NextSibling*. '#' and '//' start comments.
//
// Unary relation names are matched case-insensitively: V, Root,
// HasFirstChild, HasSecondChild, Leaf (= -HasFirstChild), LastSibling
// (= -HasSecondChild), Text (any character node), Label[tag], Char[c].
// Binary relations: FirstChild, SecondChild, NextSibling (= SecondChild),
// each optionally prefixed with "inv". Everything else is an IDB
// predicate name (case-sensitive).
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src), prog: NewProgram()}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	// Default query predicate convention.
	if len(p.prog.queries) == 0 {
		for _, n := range []string{"QUERY", "Query"} {
			if q, ok := p.prog.Pred(n); ok {
				p.prog.AddQuery(q)
				break
			}
		}
	}
	return p.prog, nil
}

// MustParse is Parse, panicking on error; for tests and fixed queries.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokDefine // :-
	tokComma
	tokSemi
	tokDot
	tokLParen
	tokRParen
	tokPipe
	tokStar
	tokPlus
	tokQuest
	tokMinus
	tokLBracket
	tokRBracket
)

type token struct {
	kind tokenKind
	text string
	pos  int
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("tmnf: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#' || (c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/'):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start, line: l.line}, nil
	}
	c := l.src[l.pos]
	mk := func(k tokenKind, n int) (token, error) {
		t := token{kind: k, text: l.src[start : start+n], pos: start, line: l.line}
		l.pos += n
		return t, nil
	}
	switch c {
	case ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			return mk(tokDefine, 2)
		}
		return token{}, l.errf("unexpected ':'")
	case ',':
		return mk(tokComma, 1)
	case ';':
		return mk(tokSemi, 1)
	case '.':
		return mk(tokDot, 1)
	case '(':
		return mk(tokLParen, 1)
	case ')':
		return mk(tokRParen, 1)
	case '|':
		return mk(tokPipe, 1)
	case '*':
		return mk(tokStar, 1)
	case '+':
		return mk(tokPlus, 1)
	case '?':
		return mk(tokQuest, 1)
	case '-':
		return mk(tokMinus, 1)
	case '[':
		return mk(tokLBracket, 1)
	case ']':
		return mk(tokRBracket, 1)
	}
	if isIdentByte(c) {
		n := 0
		for l.pos+n < len(l.src) && isIdentByte(l.src[l.pos+n]) {
			n++
		}
		return mk(tokIdent, n)
	}
	return token{}, l.errf("unexpected character %q", c)
}

// bracketContent reads raw content up to the closing ']' (used for
// Label[...] and Char[...], whose contents are not ordinary tokens).
func (l *lexer) bracketContent() (string, error) {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != ']' {
		if l.src[l.pos] == '\n' {
			return "", l.errf("unterminated '['")
		}
		l.pos++
	}
	if l.pos >= len(l.src) {
		return "", l.errf("unterminated '['")
	}
	s := l.src[start:l.pos]
	l.pos++ // consume ']'
	return s, nil
}

type parser struct {
	lex    *lexer
	prog   *Program
	tok    token
	peeked bool
}

func (p *parser) next() (token, error) {
	if p.peeked {
		p.peeked = false
		return p.tok, nil
	}
	return p.lex.next()
}

func (p *parser) peek() (token, error) {
	if !p.peeked {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.tok, p.peeked = t, true
	}
	return p.tok, nil
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	t, err := p.next()
	if err != nil {
		return token{}, err
	}
	if t.kind != k {
		return token{}, fmt.Errorf("tmnf: line %d: expected %s, got %q", t.line, what, t.text)
	}
	return t, nil
}

func (p *parser) parseProgram() error {
	for {
		t, err := p.peek()
		if err != nil {
			return err
		}
		if t.kind == tokEOF {
			return nil
		}
		if err := p.parseRule(); err != nil {
			return err
		}
	}
}

func (p *parser) parseRule() error {
	ht, err := p.expect(tokIdent, "rule head predicate")
	if err != nil {
		return err
	}
	if isBuiltinName(ht.text) {
		return fmt.Errorf("tmnf: line %d: %q is a built-in relation and cannot be a rule head", ht.line, ht.text)
	}
	head := p.prog.Intern(ht.text)
	if _, err := p.expect(tokDefine, "':-'"); err != nil {
		return err
	}
	var conjuncts []*rxNode
	for {
		e, err := p.parseRegex()
		if err != nil {
			return err
		}
		conjuncts = append(conjuncts, e)
		t, err := p.next()
		if err != nil {
			return err
		}
		if t.kind == tokSemi {
			break
		}
		if t.kind != tokComma {
			return fmt.Errorf("tmnf: line %d: expected ',' or ';', got %q", t.line, t.text)
		}
	}
	return p.lowerRule(head, conjuncts)
}

// Regex AST for caterpillar expressions.
type rxOp uint8

const (
	rxSym  rxOp = iota // leaf symbol
	rxCat              // concatenation
	rxAlt              // alternation
	rxStar             // zero or more
	rxPlus             // one or more
	rxOpt              // zero or one
)

type rxNode struct {
	op   rxOp
	a, b *rxNode // children for cat/alt; a for star/plus/opt
	sym  symbol  // for rxSym
}

type symKind uint8

const (
	symPred    symKind = iota // IDB predicate test
	symUnary                  // unary EDB test
	symMove                   // downward move along rel
	symInvMove                // upward move along rel
)

type symbol struct {
	kind  symKind
	pred  Pred
	unary Unary
	rel   Rel
}

// parseRegex parses alternation (lowest precedence).
func (p *parser) parseRegex() (*rxNode, error) {
	left, err := p.parseCat()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind != tokPipe {
			return left, nil
		}
		p.peeked = false
		right, err := p.parseCat()
		if err != nil {
			return nil, err
		}
		left = &rxNode{op: rxAlt, a: left, b: right}
	}
}

// parseCat parses '.'-separated concatenation.
func (p *parser) parseCat() (*rxNode, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind != tokDot {
			return left, nil
		}
		p.peeked = false
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &rxNode{op: rxCat, a: left, b: right}
	}
}

// parseFactor parses a base with postfix repetition operators.
func (p *parser) parseFactor() (*rxNode, error) {
	base, err := p.parseBase()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		switch t.kind {
		case tokStar:
			p.peeked = false
			base = &rxNode{op: rxStar, a: base}
		case tokPlus:
			p.peeked = false
			base = &rxNode{op: rxPlus, a: base}
		case tokQuest:
			p.peeked = false
			base = &rxNode{op: rxOpt, a: base}
		default:
			return base, nil
		}
	}
}

func (p *parser) parseBase() (*rxNode, error) {
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	switch t.kind {
	case tokLParen:
		e, err := p.parseRegex()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokMinus:
		u, err := p.parseUnaryAfterMinus()
		if err != nil {
			return nil, err
		}
		return &rxNode{op: rxSym, sym: symbol{kind: symUnary, unary: u}}, nil
	case tokIdent:
		return p.parseSymbolIdent(t)
	default:
		return nil, fmt.Errorf("tmnf: line %d: unexpected %q in expression", t.line, t.text)
	}
}

func (p *parser) parseUnaryAfterMinus() (Unary, error) {
	t, err := p.expect(tokIdent, "unary relation after '-'")
	if err != nil {
		return Unary{}, err
	}
	u, ok, err := p.parseUnaryName(t)
	if err != nil {
		return Unary{}, err
	}
	if !ok {
		return Unary{}, fmt.Errorf("tmnf: line %d: %q is not a unary relation ('-' applies only to unary relations)", t.line, t.text)
	}
	return u.Negate(), nil
}

// builtinUnaries maps lowercase names to descriptors; Leaf and LastSibling
// are the paper's aliases for the complements.
var builtinUnaries = map[string]Unary{
	"v":              {Kind: UAll},
	"root":           {Kind: URoot},
	"hasfirstchild":  {Kind: UHasFirstChild},
	"hassecondchild": {Kind: UHasSecondChild},
	"leaf":           {Kind: UHasFirstChild, Neg: true},
	"lastsibling":    {Kind: UHasSecondChild, Neg: true},
	"text":           {Kind: UText},
}

var builtinRels = map[string]Rel{
	"firstchild":  RelFirst,
	"secondchild": RelSecond,
	"nextsibling": RelSecond,
}

func isBuiltinName(name string) bool {
	lc := strings.ToLower(name)
	if _, ok := builtinUnaries[lc]; ok {
		return true
	}
	if _, ok := builtinRels[lc]; ok {
		return true
	}
	if lc == "label" || lc == "char" || lc == "aux" {
		return true
	}
	if rest, ok := strings.CutPrefix(lc, "inv"); ok {
		_, ok := builtinRels[rest]
		return ok
	}
	return false
}

// parseUnaryName recognises a unary relation (consuming a [..] argument for
// Label/Char). ok=false means the identifier is not a unary relation.
func (p *parser) parseUnaryName(t token) (Unary, bool, error) {
	lc := strings.ToLower(t.text)
	if u, ok := builtinUnaries[lc]; ok {
		return u, true, nil
	}
	if lc == "label" || lc == "char" || lc == "aux" {
		if _, err := p.expect(tokLBracket, "'[' after Label/Char/Aux"); err != nil {
			return Unary{}, false, err
		}
		content, err := p.lex.bracketContent()
		if err != nil {
			return Unary{}, false, err
		}
		if lc == "aux" {
			k, err := strconv.Atoi(content)
			if err != nil || k < 0 || k > 15 {
				return Unary{}, false, fmt.Errorf("tmnf: line %d: Aux[..] takes an index 0..15, got %q", t.line, content)
			}
			return Unary{Kind: UAux, Aux: uint8(k)}, true, nil
		}
		if lc == "char" {
			if len(content) != 1 {
				return Unary{}, false, fmt.Errorf("tmnf: line %d: Char[..] takes a single character, got %q", t.line, content)
			}
			return Unary{Kind: UChar, Char: content[0]}, true, nil
		}
		if content == "" {
			return Unary{}, false, fmt.Errorf("tmnf: line %d: empty Label[]", t.line)
		}
		return Unary{Kind: ULabel, Name: content}, true, nil
	}
	return Unary{}, false, nil
}

// parseSymbolIdent classifies an identifier token into a regex symbol.
func (p *parser) parseSymbolIdent(t token) (*rxNode, error) {
	lc := strings.ToLower(t.text)
	if rel, ok := builtinRels[lc]; ok {
		return &rxNode{op: rxSym, sym: symbol{kind: symMove, rel: rel}}, nil
	}
	if rest, ok := strings.CutPrefix(lc, "inv"); ok {
		if rel, ok := builtinRels[rest]; ok {
			return &rxNode{op: rxSym, sym: symbol{kind: symInvMove, rel: rel}}, nil
		}
	}
	u, isUnary, err := p.parseUnaryName(t)
	if err != nil {
		return nil, err
	}
	if isUnary {
		return &rxNode{op: rxSym, sym: symbol{kind: symUnary, unary: u}}, nil
	}
	return &rxNode{op: rxSym, sym: symbol{kind: symPred, pred: p.prog.Intern(t.text)}}, nil
}
