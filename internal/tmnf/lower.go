package tmnf

// Lowering of extended rule bodies (caterpillar expressions) to TMNF.
//
// A conjunct is a regular expression over an alphabet of IDB-predicate
// tests, unary-relation tests and binary-relation moves. Its meaning is
// the set of nodes y such that some node x reaches y along a path whose
// symbol sequence is in the language of the expression: tests stay at the
// current node and must hold there; moves follow (or, inverted, go
// against) a FirstChild/SecondChild edge.
//
// The lowering is the Glushkov position construction: one fresh IDB
// predicate per symbol occurrence, a rule per (implicit-start -> first
// position) and (position -> follow position) transition, and a rule per
// accepting position into the rule head. This translates programs with
// caterpillar expressions into strict TMNF in linear time (paper Section
// 2.2, citing [9]).

// lowerRule lowers one parsed rule: each conjunct becomes a local atom
// (plain predicates and unary tests directly; complex expressions through
// a fresh predicate), and the head is defined by a single local rule over
// those atoms — except for the simple shapes of the paper's strict
// syntax, which are emitted verbatim as single rules.
func (p *parser) lowerRule(head Pred, conjuncts []*rxNode) error {
	prog := p.prog
	// The paper's strict move rules: Head :- P.FirstChild; etc.
	if len(conjuncts) == 1 {
		e := conjuncts[0]
		if kind, from, rel, ok := strictMove(e); ok {
			prog.AddRule(Rule{Kind: kind, Head: head, From: from, Rel: rel})
			return nil
		}
		if e.op == rxSym && e.sym.kind == symPred {
			prog.AddRule(Rule{Kind: RuleLocal, Head: head, Body: []LocalAtom{PredAtom(e.sym.pred)}})
			return nil
		}
		if e.op == rxSym && e.sym.kind == symUnary {
			prog.AddRule(Rule{Kind: RuleLocal, Head: head,
				Body: []LocalAtom{UnaryAtom(prog.InternUnary(e.sym.unary))}})
			return nil
		}
		lowerGlushkov(prog, head, e)
		return nil
	}
	body := make([]LocalAtom, 0, len(conjuncts))
	for _, e := range conjuncts {
		switch {
		case e.op == rxSym && e.sym.kind == symPred:
			body = append(body, PredAtom(e.sym.pred))
		case e.op == rxSym && e.sym.kind == symUnary:
			body = append(body, UnaryAtom(prog.InternUnary(e.sym.unary)))
		default:
			v := prog.Fresh("c")
			if kind, from, rel, ok := strictMove(e); ok {
				prog.AddRule(Rule{Kind: kind, Head: v, From: from, Rel: rel})
			} else {
				lowerGlushkov(prog, v, e)
			}
			body = append(body, PredAtom(v))
		}
	}
	prog.AddRule(Rule{Kind: RuleLocal, Head: head, Body: body})
	return nil
}

// strictMove recognises the exact two-symbol shape P.B / P.invB of the
// paper's strict syntax.
func strictMove(e *rxNode) (RuleKind, Pred, Rel, bool) {
	if e.op != rxCat || e.a.op != rxSym || e.b.op != rxSym {
		return 0, 0, 0, false
	}
	if e.a.sym.kind != symPred {
		return 0, 0, 0, false
	}
	switch e.b.sym.kind {
	case symMove:
		return RuleMove, e.a.sym.pred, e.b.sym.rel, true
	case symInvMove:
		return RuleInvMove, e.a.sym.pred, e.b.sym.rel, true
	}
	return 0, 0, 0, false
}

// glushkov holds the position sets of the construction.
type glushkov struct {
	positions []symbol
	nullable  bool
	first     []int
	last      []int
	follow    [][]int
}

// analyse computes nullable/first/last/follow bottom-up.
func (g *glushkov) analyse(e *rxNode) (nullable bool, first, last []int) {
	switch e.op {
	case rxSym:
		p := len(g.positions)
		g.positions = append(g.positions, e.sym)
		g.follow = append(g.follow, nil)
		return false, []int{p}, []int{p}
	case rxCat:
		na, fa, la := g.analyse(e.a)
		nb, fb, lb := g.analyse(e.b)
		for _, x := range la {
			g.follow[x] = appendUnique(g.follow[x], fb)
		}
		first = fa
		if na {
			first = appendUnique(first, fb)
		}
		last = lb
		if nb {
			last = appendUnique(last, la)
		}
		return na && nb, first, last
	case rxAlt:
		na, fa, la := g.analyse(e.a)
		nb, fb, lb := g.analyse(e.b)
		return na || nb, appendUnique(fa, fb), appendUnique(la, lb)
	case rxStar, rxPlus, rxOpt:
		na, fa, la := g.analyse(e.a)
		if e.op != rxOpt {
			for _, x := range la {
				g.follow[x] = appendUnique(g.follow[x], fa)
			}
		}
		nullable = na || e.op != rxPlus
		return nullable, fa, la
	}
	panic("tmnf: bad regex node")
}

func appendUnique(dst, src []int) []int {
	for _, x := range src {
		found := false
		for _, y := range dst {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, x)
		}
	}
	return dst
}

// lowerGlushkov emits TMNF rules defining target as the endpoint set of
// expression e.
func lowerGlushkov(prog *Program, target Pred, e *rxNode) {
	g := &glushkov{}
	g.nullable, g.first, g.last = g.analyse(e)

	state := make([]Pred, len(g.positions))
	for i := range state {
		state[i] = prog.Fresh("q")
	}
	// allPred: nodes where a path may start (every node). Materialised
	// lazily; only needed when a first position is a move.
	var allPred Pred = -1
	all := func() Pred {
		if allPred < 0 {
			allPred = prog.Fresh("any")
			prog.AddRule(Rule{Kind: RuleLocal, Head: allPred,
				Body: []LocalAtom{UnaryAtom(prog.InternUnary(Unary{Kind: UAll}))}})
		}
		return allPred
	}

	// emitInto defines dst as "src-state extended by the symbol at
	// position q". src < 0 denotes the implicit start state (all nodes).
	emitInto := func(dst Pred, src Pred, q int) {
		sym := g.positions[q]
		switch sym.kind {
		case symPred:
			body := []LocalAtom{PredAtom(sym.pred)}
			if src >= 0 {
				body = append(body, PredAtom(src))
			}
			prog.AddRule(Rule{Kind: RuleLocal, Head: dst, Body: body})
		case symUnary:
			body := []LocalAtom{UnaryAtom(prog.InternUnary(sym.unary))}
			if src >= 0 {
				body = append(body, PredAtom(src))
			}
			prog.AddRule(Rule{Kind: RuleLocal, Head: dst, Body: body})
		case symMove:
			from := src
			if from < 0 {
				from = all()
			}
			prog.AddRule(Rule{Kind: RuleMove, Head: dst, From: from, Rel: sym.rel})
		case symInvMove:
			from := src
			if from < 0 {
				from = all()
			}
			prog.AddRule(Rule{Kind: RuleInvMove, Head: dst, From: from, Rel: sym.rel})
		}
	}

	for _, q := range g.first {
		emitInto(state[q], -1, q)
	}
	for p := range g.positions {
		for _, q := range g.follow[p] {
			emitInto(state[q], state[p], q)
		}
	}
	for _, q := range g.last {
		prog.AddRule(Rule{Kind: RuleLocal, Head: target, Body: []LocalAtom{PredAtom(state[q])}})
	}
	if g.nullable {
		prog.AddRule(Rule{Kind: RuleLocal, Head: target,
			Body: []LocalAtom{UnaryAtom(prog.InternUnary(Unary{Kind: UAll}))}})
	}
}
