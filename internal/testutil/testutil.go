// Package testutil provides shared random generators for property-based
// tests: random XML-like trees and random TMNF programs. Differential
// testing of the two-phase engine against the naive fixpoint oracle over
// these generators is the repository's main correctness argument for
// Theorem 4.1.
package testutil

import (
	"fmt"
	"math/rand"
	"strings"

	"arb/internal/tmnf"
	"arb/internal/tree"
)

// Tags is the tag alphabet of random trees.
var Tags = []string{"a", "b", "c", "d"}

// RandomTree builds a random document tree with up to maxNodes nodes,
// mixing element and character nodes.
func RandomTree(rng *rand.Rand, maxNodes int) *tree.Tree {
	return RandomTreeWithNames(rng, nil, maxNodes)
}

// RandomTreeWithNames is RandomTree with a shared label-name table, for
// tests that run one engine over many documents.
func RandomTreeWithNames(rng *rand.Rand, names *tree.Names, maxNodes int) *tree.Tree {
	b := tree.NewBuilder(names)
	budget := 1 + rng.Intn(maxNodes)
	var gen func(depth int)
	gen = func(depth int) {
		budget--
		must(b.Begin(Tags[rng.Intn(len(Tags))]))
		if depth < 12 {
			for budget > 0 && rng.Intn(3) > 0 {
				if rng.Intn(4) == 0 {
					budget--
					must(b.Text([]byte{byte('w' + rng.Intn(4))}))
				} else {
					gen(depth + 1)
				}
			}
		}
		must(b.End())
	}
	gen(0)
	t, err := b.Tree()
	if err != nil {
		panic(err)
	}
	return t
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// RandomProgram generates a random TMNF program source with nPreds IDB
// predicates and nRules rules, exercising all rule templates, negation,
// and all unary relations. The query predicate is P0.
func RandomProgram(rng *rand.Rand, nPreds, nRules int) string {
	pred := func() string { return fmt.Sprintf("P%d", rng.Intn(nPreds)) }
	unaries := []string{
		"Root", "-Root", "HasFirstChild", "-HasFirstChild", "HasSecondChild",
		"-HasSecondChild", "Leaf", "LastSibling", "V", "Text", "-Text",
		"Label[a]", "-Label[a]", "Label[b]", "Char[w]", "-Char[x]",
	}
	rels := []string{"FirstChild", "NextSibling", "invFirstChild", "invNextSibling",
		"SecondChild", "invSecondChild"}
	var sb strings.Builder
	for i := 0; i < nRules; i++ {
		switch rng.Intn(4) {
		case 0: // type 1
			fmt.Fprintf(&sb, "%s :- %s;\n", pred(), unaries[rng.Intn(len(unaries))])
		case 1: // types 2/3
			fmt.Fprintf(&sb, "%s :- %s.%s;\n", pred(), pred(), rels[rng.Intn(len(rels))])
		case 2: // type 4
			fmt.Fprintf(&sb, "%s :- %s, %s;\n", pred(), pred(), pred())
		case 3: // mixed local rule
			fmt.Fprintf(&sb, "%s :- %s, %s;\n", pred(), pred(), unaries[rng.Intn(len(unaries))])
		}
	}
	// Make sure something is derivable somewhere without trivialising the
	// query predicate: seed a random predicate at the leaves or the root.
	seeds := []string{"Leaf", "Root", "Label[a]"}
	fmt.Fprintf(&sb, "P0 :- %s;\n", seeds[rng.Intn(len(seeds))])
	return sb.String()
}

// RandomProgramParsed generates and parses a random program, marking P0 as
// the query predicate.
func RandomProgramParsed(rng *rand.Rand, nPreds, nRules int) *tmnf.Program {
	p := tmnf.MustParse(RandomProgram(rng, nPreds, nRules))
	if err := p.SetQueries("P0"); err != nil {
		panic(err)
	}
	return p
}

// RandomCaterpillarProgram generates a random program that uses caterpillar
// expressions (regular paths with alternation and stars), for differential
// tests of the Glushkov lowering.
func RandomCaterpillarProgram(rng *rand.Rand) *tmnf.Program {
	steps := []string{"FirstChild", "NextSibling", "invFirstChild", "invNextSibling",
		"Label[a]", "Label[b]", "Leaf", "-LastSibling", "Text"}
	var expr func(depth int) string
	expr = func(depth int) string {
		if depth > 2 || rng.Intn(3) == 0 {
			return steps[rng.Intn(len(steps))]
		}
		switch rng.Intn(4) {
		case 0:
			return expr(depth+1) + "." + expr(depth+1)
		case 1:
			return "(" + expr(depth+1) + "|" + expr(depth+1) + ")"
		case 2:
			return "(" + expr(depth+1) + ")*"
		default:
			return "(" + expr(depth+1) + ")?"
		}
	}
	src := fmt.Sprintf("QUERY :- V.%s;\n", expr(0))
	return tmnf.MustParse(src)
}
