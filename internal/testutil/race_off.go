//go:build !race

package testutil

// RaceEnabled reports whether the binary was built with the race
// detector; big-data tests use it to stay within CI time budgets.
const RaceEnabled = false
