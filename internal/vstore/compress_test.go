package vstore

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"arb/internal/storage"
	"arb/internal/tree"
)

// chainFragment builds an n-node single-subtree fragment of one
// repeated tag — a root whose first child heads a long sibling chain —
// big enough and repetitive enough that the store's write policy
// compresses the patch segment it lands in.
func chainFragment(n int) *tree.Tree {
	names := tree.NewNames()
	t := tree.New(names)
	l := names.MustIntern("blk")
	root := t.AddNode(l)
	prev := t.AddNode(l)
	t.SetFirst(root, prev)
	for i := 2; i < n; i++ {
		next := t.AddNode(l)
		t.SetSecond(prev, next)
		prev = next
	}
	return t
}

// newestSegment returns the path of the highest-numbered .seg file.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no patch segments on disk (err=%v)", err)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

// assertCompressedFile fails unless path is a v3 block container.
func assertCompressedFile(t *testing.T, path string, want bool) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	_, _, ok, err := storage.OpenContainer(f, fi.Size())
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if ok != want {
		t.Fatalf("%s: compressed=%v, want %v", path, ok, want)
	}
}

// TestCompressedStorePatchOracle runs the patch differential oracle over
// a store whose base.arb is a compressed container: the write policy is
// inherited at bootstrap, survives manifest reopen, and large patch and
// compaction segments come out block-compressed while every version
// stays byte-identical to the flat-splice oracle.
func TestCompressedStorePatchOracle(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(21))
	doc := randDoc(r, tree.NewNames(), 2500)
	dir := t.TempDir()
	base := filepath.Join(dir, "db")
	db, err := storage.CreateFromTree(base, doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.CompressInPlace(base, storage.CodecLZ, 1<<12); err != nil {
		t.Fatal(err)
	}
	st, err := Open(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { st.Close() }()
	if st.codec != storage.CodecLZ || st.blockSize != 1<<12 {
		t.Fatalf("bootstrap did not inherit the base codec: codec=%d blockSize=%d", st.codec, st.blockSize)
	}

	recs := oFromTree(doc)
	snap := st.Snapshot()
	checkVersion(t, snap, recs)
	snap.Release()

	serial := 0
	for step := 0; step < 60; step++ {
		v := r.Int63n(int64(len(recs)))
		var frag *tree.Tree
		if step%12 == 5 {
			// Past compressSegmentMin: this patch segment must compress.
			frag = chainFragment(3000)
		} else {
			frag = randFragment(r, &serial, 20)
		}
		if _, err := st.ReplaceSubtree(ctx, v, frag); err != nil {
			t.Fatalf("step %d: replace %d: %v", step, v, err)
		}
		recs = oReplace(recs, v, oFromTree(frag))
		if step%12 == 5 {
			assertCompressedFile(t, newestSegment(t, dir), true)
		}
		snap := st.Snapshot()
		checkVersion(t, snap, recs)
		snap.Release()

		switch step {
		case 20: // manifest v2 round-trip: reopen keeps the policy
			ver := st.Version()
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st2, err := Open(ctx, base)
			if err != nil {
				t.Fatalf("step %d: reopen: %v", step, err)
			}
			st = st2
			if st.Version() != ver {
				t.Fatalf("step %d: reopened at version %d, want %d", step, st.Version(), ver)
			}
			if st.codec != storage.CodecLZ || st.blockSize != 1<<12 {
				t.Fatalf("reopen lost the write policy: codec=%d blockSize=%d", st.codec, st.blockSize)
			}
			snap := st.Snapshot()
			checkVersion(t, snap, recs)
			snap.Release()
		case 40: // compaction output is one compressed segment
			if _, err := st.Compact(ctx); err != nil {
				t.Fatalf("step %d: compact: %v", step, err)
			}
			assertCompressedFile(t, newestSegment(t, dir), true)
			snap := st.Snapshot()
			checkVersion(t, snap, recs)
			snap.Release()
		}
	}
}

// TestManifestV1Accepted downgrades a committed v2 manifest to the v1
// wire format by hand (old magic, no codec/block-size fields) and
// reopens the store: v1 manifests keep loading, with the write policy
// falling back to raw.
func TestManifestV1Accepted(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(9))
	doc := randDoc(r, tree.NewNames(), 120)
	st, base := createStore(t, doc)
	serial := 0
	frag := randFragment(r, &serial, 10)
	if _, err := st.ReplaceSubtree(ctx, 1, frag); err != nil {
		t.Fatal(err)
	}
	recs := oReplace(oFromTree(doc), 1, oFromTree(frag))
	ver := st.Version()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the manifest as v1: swap the magic and drop the two
	// policy fields that follow version, n and names.
	b, err := os.ReadFile(base + ".arbm")
	if err != nil {
		t.Fatal(err)
	}
	if string(b[:8]) != manifestMagic {
		t.Fatalf("manifest magic %q, want %q", b[:8], manifestMagic)
	}
	v1 := append([]byte(manifestMagicV1), b[8:8+24]...)
	v1 = append(v1, b[8+40:]...)
	if err := os.WriteFile(base+".arbm", v1, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(ctx, base)
	if err != nil {
		t.Fatalf("v1 manifest rejected: %v", err)
	}
	defer st2.Close()
	if st2.Version() != ver {
		t.Fatalf("v1 reopen at version %d, want %d", st2.Version(), ver)
	}
	if st2.codec != storage.CodecRaw || st2.blockSize != 0 {
		t.Fatalf("v1 manifest produced policy codec=%d blockSize=%d, want raw", st2.codec, st2.blockSize)
	}
	snap := st2.Snapshot()
	checkVersion(t, snap, recs)
	snap.Release()
	// The next commit rewrites the manifest in the current format.
	if _, err := st2.ReplaceSubtree(ctx, 1, randFragment(r, &serial, 10)); err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(base + ".arbm")
	if err != nil {
		t.Fatal(err)
	}
	if string(b2[:8]) != manifestMagic {
		t.Fatalf("recommitted manifest magic %q, want %q", b2[:8], manifestMagic)
	}
}
