package vstore

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arb/internal/storage"
	"arb/internal/tree"
)

// ---------------------------------------------------------------------
// Independent oracle: the document as a flat record slice, patched by
// straightforward splicing with none of the store's run-table or index
// machinery. Labels are kept symbolically (tag name or char) so the
// oracle does not have to replicate the store's interning order.

type orec struct {
	name      string // tag name; empty for char labels
	char      uint16 // char label when name == ""
	hasFirst  bool
	hasSecond bool
}

func (r orec) label(names *tree.Names) (uint16, error) {
	if r.name == "" {
		return r.char, nil
	}
	l, ok := names.Lookup(r.name)
	if !ok {
		return 0, fmt.Errorf("tag %q not interned", r.name)
	}
	return uint16(l), nil
}

// oXMLEnd returns the end of the XML subtree at v (node + first
// subtree) by a pending-counter scan over the slice.
func oXMLEnd(recs []orec, v int64) int64 {
	if !recs[v].hasFirst {
		return v + 1
	}
	pending := int64(1)
	pos := v + 1
	for pending > 0 {
		r := recs[pos]
		pending--
		if r.hasFirst {
			pending++
		}
		if r.hasSecond {
			pending++
		}
		pos++
	}
	return pos
}

// oParent finds the binary parent of v and the child position (1 or 2)
// by a forward walk maintaining the pending-edge stack.
func oParent(recs []orec, v int64) (int64, int) {
	type edge struct {
		p int64
		k int
	}
	var stack []edge
	cur := edge{-1, 0}
	for u := int64(0); ; u++ {
		if u == v {
			return cur.p, cur.k
		}
		r := recs[u]
		if r.hasSecond {
			stack = append(stack, edge{u, 2})
		}
		if r.hasFirst {
			cur = edge{u, 1}
		} else if len(stack) > 0 {
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		} else {
			panic("oParent: walked off the document")
		}
	}
}

func osplice(recs []orec, start, end int64, frag []orec) []orec {
	out := make([]orec, 0, int64(len(recs))-(end-start)+int64(len(frag)))
	out = append(out, recs[:start]...)
	out = append(out, frag...)
	out = append(out, recs[end:]...)
	return out
}

func oReplace(recs []orec, v int64, frag []orec) []orec {
	end := oXMLEnd(recs, v)
	f := append([]orec(nil), frag...)
	f[0].hasSecond = recs[v].hasSecond
	return osplice(recs, v, end, f)
}

func oDelete(recs []orec, v int64) []orec {
	end := oXMLEnd(recs, v)
	out := append([]orec(nil), recs...)
	if !recs[v].hasSecond {
		p, k := oParent(recs, v)
		if k == 1 {
			out[p].hasFirst = false
		} else {
			out[p].hasSecond = false
		}
	}
	return osplice(out, v, end, nil)
}

func oInsert(recs []orec, p int64, frag []orec) []orec {
	f := append([]orec(nil), frag...)
	f[0].hasSecond = recs[p].hasFirst
	out := append([]orec(nil), recs...)
	out[p].hasFirst = true
	return osplice(out, p+1, p+1, f)
}

// oFromTree flattens a preorder tree into oracle records.
func oFromTree(t *tree.Tree) []orec {
	out := make([]orec, t.Len())
	for v := 0; v < t.Len(); v++ {
		id := tree.NodeID(v)
		l := t.Label(id)
		r := orec{hasFirst: t.HasFirst(id), hasSecond: t.HasSecond(id)}
		if l.IsChar() {
			r.char = uint16(l)
		} else {
			name, ok := t.Names().TagName(l)
			if !ok {
				panic("unnamed label in test tree")
			}
			r.name = name
		}
		out[v] = r
	}
	return out
}

// checkVersion compares a snapshot's full record stream against the
// oracle and audits every index entry against independently folded
// subtree sizes and signatures.
func checkVersion(t *testing.T, snap *Snapshot, recs []orec) {
	t.Helper()
	n := int64(len(recs))
	if snap.Nodes() != n {
		t.Fatalf("version %d: %d nodes, oracle has %d", snap.Version(), snap.Nodes(), n)
	}
	buf := make([]byte, n*storage.NodeSize)
	if _, err := snap.v.src.ReadAt(buf, 0); err != nil {
		t.Fatalf("version %d: read: %v", snap.Version(), err)
	}
	for v := int64(0); v < n; v++ {
		got := storage.DecodeRecord(binary.BigEndian.Uint16(buf[v*storage.NodeSize:]))
		want, err := recs[v].label(snap.Names())
		if err != nil {
			t.Fatalf("version %d node %d: %v", snap.Version(), v, err)
		}
		if got.Label != want || got.HasFirst != recs[v].hasFirst || got.HasSecond != recs[v].hasSecond {
			t.Fatalf("version %d node %d: got %+v, want label=%d first=%v second=%v",
				snap.Version(), v, got, want, recs[v].hasFirst, recs[v].hasSecond)
		}
	}

	// Audit the index: fold sizes/first-sizes/signatures bottom-up.
	size := make([]int64, n)
	firstSize := make([]int64, n)
	sigs := make([]storage.LabelSig, n)
	var fold []int64 // stack of subtree roots
	for v := n - 1; v >= 0; v-- {
		sz := int64(1)
		var sig storage.LabelSig
		l, _ := recs[v].label(snap.Names())
		sig.Add(l)
		if recs[v].hasFirst {
			c := fold[len(fold)-1]
			fold = fold[:len(fold)-1]
			sz += size[c]
			firstSize[v] = size[c]
			sig.Or(sigs[c])
		}
		if recs[v].hasSecond {
			c := fold[len(fold)-1]
			fold = fold[:len(fold)-1]
			sz += size[c]
			sig.Or(sigs[c])
		}
		size[v] = sz
		sigs[v] = sig
		fold = append(fold, v)
	}
	if len(fold) != 1 || size[0] != n {
		t.Fatalf("version %d: oracle document is not a well-formed tree", snap.Version())
	}
	for _, e := range snap.v.idx.Entries() {
		if e.Size != size[e.V] || e.FirstSize != firstSize[e.V] {
			t.Fatalf("version %d: entry at %d has Size=%d FirstSize=%d, actual %d/%d",
				snap.Version(), e.V, e.Size, e.FirstSize, size[e.V], firstSize[e.V])
		}
		for i := range sigs[e.V] {
			if sigs[e.V][i]&^e.Labels[i] != 0 {
				t.Fatalf("version %d: entry at %d label signature is not a superset of the subtree's",
					snap.Version(), e.V)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Random document / fragment generators (preorder ids by construction).

func randDoc(r *rand.Rand, names *tree.Names, n int) *tree.Tree {
	t := tree.New(names)
	budget := n - 1
	var gen func(depth int, allowSecond bool) tree.NodeID
	gen = func(depth int, allowSecond bool) tree.NodeID {
		v := t.AddNode(tree.Label(names.MustIntern(fmt.Sprintf("t%d", r.Intn(8)))))
		if budget > 0 && depth < 12 && r.Intn(3) > 0 {
			budget--
			if r.Intn(4) == 0 { // text child (char label, always a leaf)
				t.SetFirst(v, t.AddNode(tree.Label('a'+r.Intn(26))))
			} else {
				t.SetFirst(v, gen(depth+1, true))
			}
		}
		if allowSecond && budget > 0 && r.Intn(3) > 0 {
			budget--
			t.SetSecond(v, gen(depth, true))
		}
		return v
	}
	gen(0, false)
	return t
}

func randFragment(r *rand.Rand, serial *int, maxNodes int) *tree.Tree {
	names := tree.NewNames()
	t := tree.New(names)
	budget := r.Intn(maxNodes)
	tag := func() tree.Label {
		if r.Intn(8) == 0 { // occasionally a brand-new tag to grow the store's table
			*serial++
			return names.MustIntern(fmt.Sprintf("new%d", *serial))
		}
		return names.MustIntern(fmt.Sprintf("t%d", r.Intn(8)))
	}
	var gen func(depth int, allowSecond bool) tree.NodeID
	gen = func(depth int, allowSecond bool) tree.NodeID {
		v := t.AddNode(tag())
		if budget > 0 && depth < 8 && r.Intn(2) == 0 {
			budget--
			t.SetFirst(v, gen(depth+1, true))
		}
		if allowSecond && budget > 0 && r.Intn(2) == 0 {
			budget--
			t.SetSecond(v, gen(depth, true))
		}
		return v
	}
	gen(0, false)
	return t
}

func createStore(t *testing.T, doc *tree.Tree) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	base := filepath.Join(dir, "db")
	db, err := storage.CreateFromTree(base, doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Open(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	return st, base
}

// ---------------------------------------------------------------------

// TestPatchDifferentialOracle drives a long random patch sequence
// against the flat-splice oracle: after every operation the committed
// version's record stream must match byte-for-byte and every index
// entry must describe a true extent. Periodically the store is
// reopened from disk (crash-recovery equivalence) and compacted.
func TestPatchDifferentialOracle(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			doc := randDoc(r, tree.NewNames(), 200)
			st, base := createStore(t, doc)
			defer func() { st.Close() }()
			recs := oFromTree(doc)
			serial := 0

			snap := st.Snapshot()
			checkVersion(t, snap, recs)
			snap.Release()

			for step := 0; step < 120; step++ {
				n := int64(len(recs))
				v := r.Int63n(n)
				switch r.Intn(3) {
				case 0: // replace
					frag := randFragment(r, &serial, 20)
					if _, err := st.ReplaceSubtree(ctx, v, frag); err != nil {
						t.Fatalf("step %d: replace %d: %v", step, v, err)
					}
					recs = oReplace(recs, v, oFromTree(frag))
				case 1: // delete
					if v == 0 {
						continue
					}
					if oXMLEnd(recs, v)-v >= n {
						continue // would empty the document
					}
					if _, err := st.DeleteSubtree(ctx, v); err != nil {
						t.Fatalf("step %d: delete %d: %v", step, v, err)
					}
					recs = oDelete(recs, v)
				case 2: // insert
					if recs[v].name == "" {
						if _, err := st.InsertChild(ctx, v, randFragment(r, &serial, 5)); err == nil {
							t.Fatalf("step %d: insert under text node %d accepted", step, v)
						}
						continue
					}
					frag := randFragment(r, &serial, 20)
					if _, err := st.InsertChild(ctx, v, frag); err != nil {
						t.Fatalf("step %d: insert under %d: %v", step, v, err)
					}
					recs = oInsert(recs, v, oFromTree(frag))
				}
				snap := st.Snapshot()
				checkVersion(t, snap, recs)
				snap.Release()

				switch step % 40 {
				case 17: // crash-recovery equivalence: reopen from disk
					ver := st.Version()
					if err := st.Close(); err != nil {
						t.Fatal(err)
					}
					st2, err := Open(ctx, base)
					if err != nil {
						t.Fatalf("step %d: reopen: %v", step, err)
					}
					st = st2 // continue the loop on the reopened store
					if st.Version() != ver {
						t.Fatalf("step %d: reopened at version %d, want %d", step, st.Version(), ver)
					}
					snap := st.Snapshot()
					checkVersion(t, snap, recs)
					snap.Release()
				case 33: // compact and re-verify
					if _, err := st.Compact(ctx); err != nil {
						t.Fatalf("step %d: compact: %v", step, err)
					}
					snap := st.Snapshot()
					checkVersion(t, snap, recs)
					snap.Release()
				}
			}
		})
	}
}

// TestSnapshotIsolationAndGC pins a snapshot, patches past it, and
// verifies the pinned version stays bit-identical while patch segments
// are collected once the pin is released.
func TestSnapshotIsolationAndGC(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(7))
	doc := randDoc(r, tree.NewNames(), 150)
	st, base := createStore(t, doc)
	defer st.Close()
	recs := oFromTree(doc)
	serial := 0

	pinned := st.Snapshot()
	pinnedRecs := append([]orec(nil), recs...)

	for i := 0; i < 25; i++ {
		v := r.Int63n(int64(len(recs)))
		frag := randFragment(r, &serial, 15)
		if _, err := st.ReplaceSubtree(ctx, v, frag); err != nil {
			t.Fatal(err)
		}
		recs = oReplace(recs, v, oFromTree(frag))
	}
	checkVersion(t, pinned, pinnedRecs) // old version unchanged under churn
	cur := st.Snapshot()
	checkVersion(t, cur, recs)
	cur.Release()

	if got := st.Stats().LiveVersions; got < 2 {
		t.Fatalf("want >=2 live versions while pinned, got %d", got)
	}
	pinned.Release()
	pinned.Release() // idempotent

	// Compact: after it, only the base file and the compacted segment
	// should survive on disk.
	if _, err := st.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Segments != 1 {
		t.Fatalf("after compact: %d open segments, want 1", stats.Segments)
	}
	segs, err := filepath.Glob(filepath.Join(filepath.Dir(base), "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("after compact: %d .seg files on disk (%v), want 1", len(segs), segs)
	}
	if tmps, _ := filepath.Glob(filepath.Join(filepath.Dir(base), "*.tmp*")); len(tmps) != 0 {
		t.Fatalf("leaked temp files: %v", tmps)
	}
	snap := st.Snapshot()
	checkVersion(t, snap, recs)
	snap.Release()
}

// TestVersionedDBRunsStrategies sanity-checks that a snapshot's virtual
// DB feeds the generic scan primitives (the full strategy matrix is
// exercised by the root-level differential test).
func TestVersionedDBRunsStrategies(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(11))
	doc := randDoc(r, tree.NewNames(), 300)
	st, _ := createStore(t, doc)
	defer st.Close()
	serial := 0
	for i := 0; i < 10; i++ {
		if _, err := st.ReplaceSubtree(ctx, r.Int63n(st.Nodes()), randFragment(r, &serial, 30)); err != nil {
			t.Fatal(err)
		}
	}
	snap := st.Snapshot()
	defer snap.Release()
	var count int64
	if _, err := storage.ScanTopDown(ctx, snap.DB(), func(v int64, rec storage.Record, p *struct{}, k int) (struct{}, error) {
		count++
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != snap.Nodes() {
		t.Fatalf("top-down scan visited %d nodes of %d", count, snap.Nodes())
	}
	tr, err := snap.DB().ReadTree(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if int64(tr.Len()) != snap.Nodes() {
		t.Fatalf("ReadTree got %d nodes, want %d", tr.Len(), snap.Nodes())
	}
}

// TestPatchErrors exercises the refusal paths.
func TestPatchErrors(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(3))
	doc := randDoc(r, tree.NewNames(), 50)
	st, _ := createStore(t, doc)
	defer st.Close()
	serial := 0
	frag := randFragment(r, &serial, 5)
	if _, err := st.DeleteSubtree(ctx, 0); err == nil {
		t.Fatal("deleting the root succeeded")
	}
	if _, err := st.ReplaceSubtree(ctx, st.Nodes(), frag); err == nil {
		t.Fatal("replacing past the end succeeded")
	}
	if _, err := st.ReplaceSubtree(ctx, -1, frag); err == nil {
		t.Fatal("replacing node -1 succeeded")
	}
	// A fragment whose root has a sibling is not a single subtree.
	bad := tree.New(tree.NewNames())
	a := bad.AddNode(bad.Names().MustIntern("a"))
	b := bad.AddNode(bad.Names().MustIntern("b"))
	bad.SetSecond(a, b)
	if _, err := st.ReplaceSubtree(ctx, 1, bad); err == nil {
		t.Fatal("fragment with sibling root accepted")
	}
	if _, err := st.ReplaceSubtree(ctx, 1, tree.New(tree.NewNames())); err == nil {
		t.Fatal("empty fragment accepted")
	}
}

// TestOpenPlainDatabaseNoManifest checks that bootstrapping a plain
// .arb leaves the directory untouched until the first patch commits.
func TestOpenPlainDatabaseNoManifest(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	doc := randDoc(r, tree.NewNames(), 80)
	st, base := createStore(t, doc)
	if _, err := os.Stat(base + ".arbm"); !os.IsNotExist(err) {
		t.Fatalf("manifest exists before any patch (err=%v)", err)
	}
	serial := 0
	if _, err := st.ReplaceSubtree(context.Background(), 1, randFragment(r, &serial, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(base + ".arbm"); err != nil {
		t.Fatalf("manifest missing after patch: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The original .arb is never modified.
	if _, err := os.Stat(base + ".arb"); err != nil {
		t.Fatal(err)
	}
	names := st.Names()
	_ = names
	if !strings.HasSuffix(base, "db") {
		t.Fatalf("unexpected base %q", base)
	}
}
