package vstore

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"

	"arb/internal/storage"
	"arb/internal/tree"
)

// Fragment index-entry policy: a patch should leave the subtree it
// wrote as navigable as the rest of the database, so the encoder emits
// index entries for the fragment's heaviest inner subtrees — but a
// fragment is O(subtree), so a small budget suffices.
const (
	fragEntryBudget  = 512
	fragEntryMinSize = 8
)

// fragment is one encoded XML subtree, ready to become a patch segment:
// the preorder records, the label signature of the whole fragment, index
// entries for its heaviest inner subtrees (V relative to the fragment
// start; the fragment root itself is excluded — its extent depends on
// where the fragment lands, so the splice constructs it), and the
// label-name table the new version must use (grown copy-on-write when
// the fragment introduced new tags).
type fragment struct {
	recs     []byte
	nodes    int64
	sig      storage.LabelSig
	entries  []storage.IndexEntry
	names    *tree.Names
	grewName bool
}

// cloneNames copies an append-only label table; label ids are preserved
// because interning replays in index order.
func cloneNames(ns *tree.Names) *tree.Names {
	out := tree.NewNames()
	for _, name := range ns.All() {
		out.MustIntern(name)
	}
	return out
}

// encodeFragment serialises t — one XML subtree: its root must have no
// next sibling — into .arb records. Labels are remapped into names,
// growing a copy-on-write clone when t uses tags names has not seen
// (label ids are append-only across versions, so every existing
// snapshot's table remains valid as a prefix). rootHasSecond overrides
// the root record's second-subtree flag, which describes the splice
// target, not the fragment.
func encodeFragment(t *tree.Tree, rootHasSecond bool, names *tree.Names) (*fragment, error) {
	n := t.Len()
	if n == 0 {
		return nil, fmt.Errorf("vstore: empty replacement tree")
	}
	root := t.Root()
	if t.HasSecond(root) {
		return nil, fmt.Errorf("vstore: replacement tree root has a next sibling (not a single subtree)")
	}
	f := &fragment{recs: make([]byte, 0, n*storage.NodeSize), names: names}

	// Copy-on-write label remap: resolve each of t's named labels to an
	// id in the store's table, interning unseen tags into a clone.
	remap := make(map[tree.Label]uint16)
	mapLabel := func(l tree.Label) (uint16, error) {
		if l.IsChar() {
			return uint16(l), nil
		}
		if id, ok := remap[l]; ok {
			return id, nil
		}
		name, ok := t.Names().TagName(l)
		if !ok {
			return 0, fmt.Errorf("vstore: replacement tree uses unknown label %d", l)
		}
		id, ok := f.names.Lookup(name)
		if !ok {
			if !f.grewName {
				f.names = cloneNames(f.names)
				f.grewName = true
			}
			var err error
			id, err = f.names.Intern(name)
			if err != nil {
				return 0, err
			}
		}
		remap[l] = uint16(id)
		return uint16(id), nil
	}

	// Preorder walk in binary order (node, first subtree, second
	// subtree), recording each node's label and child flags for the
	// backward fold below.
	type meta struct {
		label     uint16
		hasFirst  bool
		hasSecond bool
	}
	metas := make([]meta, 0, n)
	stack := []tree.NodeID{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		label, err := mapLabel(t.Label(v))
		if err != nil {
			return nil, err
		}
		hasSecond := t.HasSecond(v)
		if v == root {
			hasSecond = false // folded locally; the splice flag is applied on encode
		}
		metas = append(metas, meta{label: label, hasFirst: t.HasFirst(v), hasSecond: hasSecond})
		if s := t.Second(v); v != root && s != tree.None {
			stack = append(stack, s)
		}
		if c := t.First(v); c != tree.None {
			stack = append(stack, c)
		}
	}
	f.nodes = int64(len(metas))

	// Backward fold over the walk order: per-position subtree sizes and
	// signatures, exactly like the index builder's scan — the pop
	// discipline doubles as a cycle/shape check on t.
	type fnode struct {
		size int64
		sig  storage.LabelSig
	}
	var h entryMinHeap
	fold := make([]fnode, 0, 64)
	for v := f.nodes - 1; v >= 0; v-- {
		m := metas[v]
		nd := fnode{size: 1}
		nd.sig.Add(m.label)
		var firstSize int64
		if m.hasFirst {
			if len(fold) == 0 {
				return nil, fmt.Errorf("vstore: replacement tree is not a well-formed subtree")
			}
			c := fold[len(fold)-1]
			fold = fold[:len(fold)-1]
			nd.size += c.size
			firstSize = c.size
			nd.sig.Or(c.sig)
		}
		if m.hasSecond {
			if len(fold) == 0 {
				return nil, fmt.Errorf("vstore: replacement tree is not a well-formed subtree")
			}
			c := fold[len(fold)-1]
			fold = fold[:len(fold)-1]
			nd.size += c.size
			nd.sig.Or(c.sig)
		}
		if v > 0 && nd.size >= fragEntryMinSize {
			heap.Push(&h, storage.IndexEntry{V: v, Size: nd.size, FirstSize: firstSize, Labels: nd.sig})
			if len(h) > fragEntryBudget {
				heap.Pop(&h)
			}
		}
		fold = append(fold, nd)
	}
	if len(fold) != 1 || fold[0].size != f.nodes {
		return nil, fmt.Errorf("vstore: replacement tree is not a well-formed subtree")
	}
	f.sig = fold[0].sig
	f.entries = []storage.IndexEntry(h)
	sort.Slice(f.entries, func(i, j int) bool { return f.entries[i].V < f.entries[j].V })

	// Encode the records; the root carries the splice target's
	// second-subtree flag.
	var buf [storage.NodeSize]byte
	for v, m := range metas {
		rec := storage.Record{Label: m.label, HasFirst: m.hasFirst, HasSecond: m.hasSecond}
		if v == 0 {
			rec.HasSecond = rootHasSecond
		}
		binary.BigEndian.PutUint16(buf[:], rec.Encode())
		f.recs = append(f.recs, buf[:]...)
	}
	return f, nil
}

// entryMinHeap keeps the largest fragment subtrees by evicting the
// smallest when over budget.
type entryMinHeap []storage.IndexEntry

func (h entryMinHeap) Len() int            { return len(h) }
func (h entryMinHeap) Less(i, j int) bool  { return h[i].Size < h[j].Size }
func (h entryMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryMinHeap) Push(x interface{}) { *h = append(*h, x.(storage.IndexEntry)) }
func (h *entryMinHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}
