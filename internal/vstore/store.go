package vstore

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"arb/internal/storage"
	"arb/internal/tree"
)

// storeIndexBudget bounds the per-version subtree index: patches splice
// fragment entries in and drop covered ones, and the smallest entries
// are evicted past this budget — the same footnote-sized index contract
// as storage.DefaultIndexBudget.
const storeIndexBudget = storage.DefaultIndexBudget

// segment is one open physical file serving record runs: the immutable
// original base.arb (kind segBase, never deleted) or an appended patch
// segment (kind segPatch, deleted once no live version references it).
type segment struct {
	id    uint64
	kind  uint8
	nodes int64
	name  string // file name relative to the store directory
	f     *os.File
	src   io.ReaderAt // logical record space: f itself, or a decompressing view over it
	refs  int         // live versions referencing the segment; guarded by: mu (the Store's)
}

// openSegmentSource sniffs an open segment file and returns the reader
// serving its logical record space — the file itself for a plain record
// stream, a decompressing block-container view otherwise — plus the
// logical byte count either way. Compression is a per-file property
// discovered here, never declared by the manifest: old raw segments and
// new compressed ones mix freely in one store.
func openSegmentSource(f *os.File) (io.ReaderAt, int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	src, info, ok, err := storage.OpenContainer(f, fi.Size())
	if err != nil {
		return nil, 0, err
	}
	if ok {
		return src, info.LogicalBytes, nil
	}
	return f, fi.Size(), nil
}

// version is one immutable database version: a run table stitching
// segments into the logical record space, the version's subtree index
// and label-name table, and the virtual storage.DB every reader scans.
type version struct {
	id     uint64
	n      int64
	runs   []run
	src    *stitchedReader
	idx    *storage.SubtreeIndex
	names  *tree.Names
	nNames int
	db     *storage.DB
	segs   []*segment // unique segments referenced by runs
	refs   int        // pins: the store's own (while current) plus one per snapshot; guarded by: mu (the Store's)
}

// Store is a versioned .arb database: one writer at a time (patches and
// compactions serialise on wmu), any number of lock-free readers, each
// pinning a version via Snapshot. The current version is published by
// atomic manifest rename; superseded versions survive until their last
// snapshot is released, which drives patch-segment garbage collection.
type Store struct {
	base string // database path prefix (like storage.DB.Base)
	dir  string

	// Segment write policy, fixed at Open: new patch and compaction
	// segments are block-compressed with this codec (storage.CodecRaw
	// writes plain segments). Inherited from a compressed base.arb at
	// bootstrap, persisted and reloaded through the manifest.
	codec     uint8
	blockSize int

	// wmu serialises writers: at most one patch/compact computes and
	// commits at a time. Readers never take it.
	wmu sync.Mutex

	// mu guards the version/segment bookkeeping below; it is held only
	// for pointer swaps and refcounts, never during I/O or scans.
	mu          sync.Mutex
	cur         *version            // guarded by: mu
	segs        map[uint64]*segment // open segments by id; guarded by: mu
	nextSeg     uint64              // guarded by: mu
	history     []HistoryEntry      // guarded by: mu
	live        int                 // versions not yet collected; guarded by: mu
	snapRefs    int                 // outstanding snapshots; guarded by: mu
	patches     int64               // committed patches; guarded by: mu
	compactions int64               // committed compactions; guarded by: mu
	closed      bool                // guarded by: mu
}

// Open opens base as a versioned database. With a base.arbm manifest
// present, the manifested version is loaded (rejecting manifests that
// reference missing or undersized segments) and orphaned patch segments
// or temp files from an interrupted commit are swept. Without one, the
// plain base.arb/.lab database bootstraps read-only as version 1 — no
// files are created or modified until the first patch commits.
// Cancelling ctx aborts a bootstrap index build.
func Open(ctx context.Context, base string) (*Store, error) {
	st := &Store{base: base, dir: filepath.Dir(base), segs: make(map[uint64]*segment)}
	if _, err := os.Stat(base + ".arbm"); err == nil {
		if err := st.openManifest(base + ".arbm"); err != nil {
			return nil, err
		}
	} else if os.IsNotExist(err) {
		if err := st.bootstrap(ctx); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}
	st.sweepOrphans()
	return st, nil
}

// bootstrap builds version 1 directly over the plain base.arb database:
// one base segment, one run, the database's own (possibly freshly
// built) subtree index.
//
// arblint:holds mu — construction: the store is not yet shared.
func (st *Store) bootstrap(ctx context.Context) error {
	db, err := storage.Open(st.base)
	if err != nil {
		return err
	}
	ix, err := db.Index(ctx, 0)
	if err != nil {
		db.Close()
		return err
	}
	n, names := db.N, db.Names
	if ci, ok := db.Compression(); ok {
		// A compressed base keeps its patch chain compressed too.
		st.codec, st.blockSize = ci.Codec, ci.BlockSize
	}
	if err := db.Close(); err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("vstore: %s.arb is empty", st.base)
	}
	f, err := os.Open(st.base + ".arb")
	if err != nil {
		return err
	}
	src, _, err := openSegmentSource(f)
	if err != nil {
		f.Close()
		return err
	}
	seg := &segment{id: 0, kind: segBase, nodes: n, name: filepath.Base(st.base) + ".arb", f: f, src: src}
	runs := []run{{seg: seg, logical: 0, phys: 0, count: n}}
	st.segs[0] = seg
	st.nextSeg = 1
	st.install(&version{id: 1, n: n, runs: runs, idx: ix, names: names, nNames: names.Len()})
	st.history = []HistoryEntry{{Version: 1, Op: "open"}}
	return nil
}

// openManifest loads the current version from a validated manifest,
// opening every referenced segment and verifying it holds the promised
// bytes — a manifest referencing a missing or truncated segment is
// rejected whole.
//
// arblint:holds mu — construction: the store is not yet shared.
func (st *Store) openManifest(path string) error {
	m, ix, err := readManifest(path)
	if err != nil {
		return err
	}
	names, err := st.loadNames(m.names)
	if err != nil {
		return err
	}
	segs := make(map[uint64]*segment, len(m.segs))
	ok := false
	defer func() {
		if !ok {
			for _, sg := range segs {
				sg.f.Close()
			}
		}
	}()
	var maxID uint64
	for _, ms := range m.segs {
		f, err := os.Open(filepath.Join(st.dir, ms.name))
		if err != nil {
			return fmt.Errorf("vstore: manifest references missing segment %s: %w", ms.name, err)
		}
		// The promised byte count is logical: a compressed segment is
		// validated against the record space its container declares, not
		// its (smaller) physical size.
		src, logical, err := openSegmentSource(f)
		if err != nil {
			f.Close()
			return fmt.Errorf("vstore: segment %s: %w", ms.name, err)
		}
		if logical < ms.nodes*storage.NodeSize {
			f.Close()
			return fmt.Errorf("vstore: segment %s holds %d bytes, manifest promises %d",
				ms.name, logical, ms.nodes*storage.NodeSize)
		}
		segs[ms.id] = &segment{id: ms.id, kind: ms.kind, nodes: ms.nodes, name: ms.name, f: f, src: src}
		if ms.id >= maxID {
			maxID = ms.id + 1
		}
	}
	runs := make([]run, len(m.runs))
	for i, mr := range m.runs {
		runs[i] = run{seg: segs[mr.seg], logical: mr.logical, phys: mr.phys, count: mr.count}
	}
	st.segs = segs
	st.nextSeg = maxID
	st.codec, st.blockSize = m.codec, m.blockSize
	st.install(&version{id: m.version, n: m.n, runs: runs, idx: ix, names: names, nNames: m.names})
	st.history = m.history
	ok = true
	return nil
}

// loadNames reads the store's label-name table — base.vlab when the
// store has committed new tags, base.lab otherwise — and truncates it
// to the count the manifest declares (a crash between the .vlab rename
// and the manifest rename leaves extra names; append-only ids make the
// declared prefix exactly the committed table).
func (st *Store) loadNames(count int) (*tree.Names, error) {
	names := tree.NewNames()
	for _, path := range []string{st.base + ".vlab", st.base + ".lab"} {
		f, err := os.Open(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		names, err = tree.ReadNames(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		break
	}
	all := names.All()
	if len(all) < count {
		return nil, fmt.Errorf("vstore: name table holds %d names, manifest declares %d", len(all), count)
	}
	if len(all) == count {
		return names, nil
	}
	trimmed := tree.NewNames()
	for _, name := range all[:count] {
		trimmed.MustIntern(name)
	}
	return trimmed, nil
}

// install makes ver the current version (store construction only; the
// commit path uses publish).
//
// arblint:holds mu — construction: the store is not yet shared.
func (st *Store) install(ver *version) {
	ver.finish(st.base)
	ver.refs = 1
	for _, sg := range ver.segs {
		sg.refs++
	}
	st.cur = ver
	st.live++
}

// finish derives a version's stitched reader, unique segment list and
// virtual database from its run table.
func (ver *version) finish(base string) {
	seen := make(map[uint64]bool)
	for _, r := range ver.runs {
		if !seen[r.seg.id] {
			seen[r.seg.id] = true
			ver.segs = append(ver.segs, r.seg)
		}
	}
	ver.src = newStitchedReader(ver.runs, ver.n)
	ver.db = storage.NewVirtualDB(base, ver.src, ver.n, ver.names, ver.idx)
}

// sweepOrphans removes leftovers of interrupted commits: patch segments
// not referenced by the loaded version and stray manifest/name-table
// temp files. Best-effort — a locked directory only delays cleanup to
// the next Open.
//
// arblint:holds mu — construction: the store is not yet shared.
func (st *Store) sweepOrphans() {
	referenced := make(map[string]bool)
	for _, sg := range st.segs {
		referenced[sg.name] = true
	}
	prefix := filepath.Base(st.base)
	if matches, err := filepath.Glob(filepath.Join(st.dir, prefix+"-*.seg")); err == nil {
		for _, path := range matches {
			if !referenced[filepath.Base(path)] {
				os.Remove(path)
			}
		}
	}
	for _, pat := range []string{prefix + ".arbm.tmp*", prefix + ".vlab.tmp*"} {
		if matches, err := filepath.Glob(filepath.Join(st.dir, pat)); err == nil {
			for _, path := range matches {
				os.Remove(path)
			}
		}
	}
}

// Base returns the store's database path prefix.
func (st *Store) Base() string { return st.base }

// Version returns the current version id.
func (st *Store) Version() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cur.id
}

// Nodes returns the node count of the current version.
func (st *Store) Nodes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cur.n
}

// Names returns the label-name table of the current version. The table
// is immutable (patches that add tags publish a grown copy), so the
// caller may hold it across versions: ids never change meaning, newer
// versions only append.
func (st *Store) Names() *tree.Names {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cur.names
}

// History returns the committed operation chain, oldest first.
func (st *Store) History() []HistoryEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]HistoryEntry, len(st.history))
	copy(out, st.history)
	return out
}

// Snapshot pins the current version and returns an immutable view of
// it. The caller must Release it; the last release of a superseded
// version deletes whatever patch segments only it referenced.
func (st *Store) Snapshot() *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.cur.refs++
	st.snapRefs++
	return &Snapshot{st: st, v: st.cur}
}

// Snapshot is a pinned database version. Its DB is a fully functional
// read-only *storage.DB — every scan primitive and evaluation strategy
// runs on it unmodified — valid until Release.
type Snapshot struct {
	st   *Store
	v    *version
	once sync.Once
}

// DB returns the version's virtual database handle.
func (s *Snapshot) DB() *storage.DB { return s.v.db }

// Version returns the pinned version id.
func (s *Snapshot) Version() uint64 { return s.v.id }

// Nodes returns the pinned version's node count.
func (s *Snapshot) Nodes() int64 { return s.v.n }

// Names returns the pinned version's label-name table.
func (s *Snapshot) Names() *tree.Names { return s.v.names }

// Release unpins the version. Releasing twice is safe (idempotent).
func (s *Snapshot) Release() {
	s.once.Do(func() {
		s.st.mu.Lock()
		defer s.st.mu.Unlock()
		s.st.snapRefs--
		s.st.releaseLocked(s.v)
	})
}

// releaseLocked drops one pin of ver; at zero the version dies and its
// segment references unwind — a patch segment no live version uses is
// closed and deleted (the base .arb is closed but always kept on disk).
//
// arblint:holds mu
func (st *Store) releaseLocked(ver *version) {
	ver.refs--
	if ver.refs > 0 {
		return
	}
	st.live--
	for _, sg := range ver.segs {
		sg.refs--
		if sg.refs > 0 {
			continue
		}
		sg.f.Close()
		delete(st.segs, sg.id)
		if sg.kind == segPatch {
			os.Remove(filepath.Join(st.dir, sg.name))
		}
	}
}

// publish commits ver as the new current version under st.mu: segment
// refcounts move to the new version, the store's pin on the old one is
// released (collecting it immediately if no snapshot holds it), and the
// history gains op.
func (st *Store) publish(ver *version, op string, isCompact bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ver.refs = 1
	for _, sg := range ver.segs {
		if _, known := st.segs[sg.id]; !known {
			st.segs[sg.id] = sg
		}
		sg.refs++
	}
	st.live++
	old := st.cur
	st.cur = ver
	st.history = append(st.history, HistoryEntry{Version: ver.id, Op: op})
	if len(st.history) > maxHistory {
		st.history = st.history[len(st.history)-maxHistory:]
	}
	if isCompact {
		st.compactions++
	} else {
		st.patches++
	}
	st.releaseLocked(old)
}

// manifestFor serialises a version (plus the current history) for the
// commit rename.
func (st *Store) manifestFor(ver *version, op string) *manifest {
	m := &manifest{
		version:   ver.id,
		n:         ver.n,
		names:     ver.nNames,
		codec:     st.codec,
		blockSize: st.blockSize,
		entries:   ver.idx.Entries(),
	}
	for _, sg := range ver.segs {
		m.segs = append(m.segs, manifestSeg{id: sg.id, kind: sg.kind, nodes: sg.nodes, name: sg.name})
	}
	sort.Slice(m.segs, func(i, j int) bool { return m.segs[i].id < m.segs[j].id })
	for _, r := range ver.runs {
		m.runs = append(m.runs, manifestRun{seg: r.seg.id, logical: r.logical, phys: r.phys, count: r.count})
	}
	st.mu.Lock()
	m.history = append(append([]HistoryEntry{}, st.history...), HistoryEntry{Version: ver.id, Op: op})
	st.mu.Unlock()
	if len(m.history) > maxHistory {
		m.history = m.history[len(m.history)-maxHistory:]
	}
	return m
}

// StoreStats is a point-in-time summary of the store for monitoring.
// Pins is the runtime counterpart of the snappin analyzer: a value that
// stays above zero while the store is quiescent means some execution
// leaked its snapshot and segment GC is wedged — the dynamic signal for
// whatever the static analysis could not see.
type StoreStats struct {
	Version      uint64 `json:"version"`      // current version id
	Nodes        int64  `json:"nodes"`        // nodes in the current version
	Segments     int    `json:"segments"`     // open segments (base + live patch segments)
	SegmentBytes int64  `json:"segmentBytes"` // record bytes held by open segments
	LiveVersions int    `json:"liveVersions"` // versions not yet collected (current included)
	Snapshots    int    `json:"snapshots"`    // outstanding snapshot pins
	Pins         int    `json:"pins"`         // alias of Snapshots under the gauge's name
	Patches      int64  `json:"patches"`      // patches committed since the store was opened
	Compactions  int64  `json:"compactions"`  // compactions committed since the store was opened
}

// Stats returns a snapshot of the store's bookkeeping.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := StoreStats{
		Version:      st.cur.id,
		Nodes:        st.cur.n,
		Segments:     len(st.segs),
		LiveVersions: st.live,
		Snapshots:    st.snapRefs,
		Pins:         st.snapRefs,
		Patches:      st.patches,
		Compactions:  st.compactions,
	}
	for _, sg := range st.segs {
		s.SegmentBytes += sg.nodes * storage.NodeSize
	}
	return s
}

// Close closes every open segment file. Outstanding snapshots become
// invalid — callers drain readers first (the server does). Files on
// disk are left exactly as the last commit published them.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	var first error
	for _, sg := range st.segs {
		if err := sg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
