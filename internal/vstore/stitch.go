package vstore

import (
	"fmt"
	"io"
	"sort"

	"arb/internal/storage"
)

// run is the in-memory form of a manifest run: one contiguous logical
// node range served from one physical range of one open segment.
type run struct {
	seg     *segment
	logical int64 // first logical node of the run
	phys    int64 // first physical node within the segment
	count   int64 // nodes in the run
}

// stitchedReader serves a version's logical record space [0, n*NodeSize)
// by translating ReadAt offsets through the run table — the io.ReaderAt
// behind every snapshot's virtual storage.DB. It is immutable after
// construction, so any number of concurrent scans may share it; the
// underlying segment sources (*os.File handles and decompressing block
// readers alike) are themselves safe for concurrent ReadAt.
type stitchedReader struct {
	runs []run // sorted by logical, tiling [0, n)
	size int64 // n * NodeSize
}

func newStitchedReader(runs []run, n int64) *stitchedReader {
	return &stitchedReader{runs: runs, size: n * storage.NodeSize}
}

// ReadAt implements io.ReaderAt over the stitched logical space. Reads
// spanning a run boundary are assembled from the underlying segments;
// reads past the end return io.EOF per the ReaderAt contract.
func (sr *stitchedReader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("vstore: negative read offset %d", off)
	}
	n := 0
	for n < len(p) && off < sr.size {
		// The run containing byte offset off: the last run whose start is
		// at or before it.
		i := sort.Search(len(sr.runs), func(i int) bool {
			return sr.runs[i].logical*storage.NodeSize > off
		}) - 1
		r := sr.runs[i]
		runStart := r.logical * storage.NodeSize
		runEnd := runStart + r.count*storage.NodeSize
		chunk := int64(len(p) - n)
		if rest := runEnd - off; chunk > rest {
			chunk = rest
		}
		m, err := r.seg.src.ReadAt(p[n:n+int(chunk)], r.phys*storage.NodeSize+(off-runStart))
		n += m
		off += int64(m)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF // the manifest promised these bytes
			}
			return n, err
		}
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}
