package vstore

import (
	"context"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arb/internal/storage"
	"arb/internal/tree"
)

// FuzzReadManifest fuzzes the .arbm parser the same way FuzzReadIndexFile
// fuzzes the .idx sidecar: arbitrary bytes must never panic, anything
// accepted must satisfy the structural invariants (validated segments,
// runs tiling the logical space, a laminar index) and survive a
// write/read round trip, and an accepted manifest must still refuse to
// open as a store when the segments it references do not exist on disk.
func FuzzReadManifest(f *testing.F) {
	// Seed: the manifest of a real patched store.
	valid := func() []byte {
		dir := f.TempDir()
		base := filepath.Join(dir, "seed")
		names := tree.NewNames()
		doc := tree.New(names)
		root := doc.AddNode(names.MustIntern("a"))
		kid := doc.AddNode(names.MustIntern("b"))
		doc.SetFirst(root, kid)
		db, err := storage.CreateFromTree(base, doc)
		if err != nil {
			f.Fatal(err)
		}
		db.Close()
		st, err := Open(context.Background(), base)
		if err != nil {
			f.Fatal(err)
		}
		frag := tree.New(names)
		frag.AddNode(names.MustIntern("c"))
		if _, err := st.ReplaceSubtree(context.Background(), 1, frag); err != nil {
			f.Fatal(err)
		}
		if err := st.Close(); err != nil {
			f.Fatal(err)
		}
		b, err := os.ReadFile(base + ".arbm")
		if err != nil {
			f.Fatal(err)
		}
		return b
	}()
	f.Add(valid)
	// Seed: truncations — mid-header and mid-payload.
	f.Add(valid[:len(manifestMagic)+12])
	f.Add(valid[:len(valid)-9])
	// Seed: an absurd segment count (must be capped, not allocated).
	huge := append([]byte(nil), valid...)
	binary.BigEndian.PutUint64(huge[len(manifestMagic)+24:], 1<<40)
	f.Add(huge)
	// Seed: a segment name escaping the database directory.
	evil := []byte(strings.Replace(string(valid), "seed.arb", "../../arb", 1))
	f.Add(evil)
	// Seed: junk.
	f.Add([]byte("ARBVST1\nnot a manifest at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		p := filepath.Join(dir, "db.arbm")
		if err := os.WriteFile(p, data, 0o666); err != nil {
			t.Skip()
		}
		m, ix, err := readManifest(p)
		if err != nil {
			return
		}
		// Accepted: re-validation must agree, and the index must exist.
		if ix == nil {
			t.Fatal("accepted manifest without an index")
		}
		if _, err := m.validate(); err != nil {
			t.Fatalf("accepted manifest fails validation: %v", err)
		}
		for _, s := range m.segs {
			if filepath.Base(s.name) != s.name {
				t.Fatalf("accepted segment name %q escapes the directory", s.name)
			}
		}
		// It must round-trip through the writer without changing shape.
		p2 := filepath.Join(dir, "rt.arbm")
		if err := writeManifest(p2, m); err != nil {
			t.Fatal(err)
		}
		back, _, err := readManifest(p2)
		if err != nil {
			t.Fatalf("round trip of accepted manifest rejected: %v", err)
		}
		if back.version != m.version || back.n != m.n || back.names != m.names ||
			len(back.segs) != len(m.segs) || len(back.runs) != len(m.runs) ||
			len(back.entries) != len(m.entries) || len(back.history) != len(m.history) {
			t.Fatal("round trip changed the manifest's shape")
		}
		// Opening the manifest as a store must verify every referenced
		// segment on disk: if any is missing or undersized, Open fails
		// whole. If Open accepts, each segment must really hold the
		// promised bytes (the directory holds only the two manifests, so
		// this branch means the fuzzer referenced one of them as data).
		st, err := Open(context.Background(), filepath.Join(dir, "db"))
		if err != nil {
			return
		}
		defer st.Close()
		for _, s := range m.segs {
			fi, err := os.Stat(filepath.Join(dir, s.name))
			if err != nil {
				t.Fatalf("store opened with missing segment %s: %v", s.name, err)
			}
			if fi.Size() < s.nodes*storage.NodeSize {
				t.Fatalf("store opened with undersized segment %s: %d bytes for %d nodes",
					s.name, fi.Size(), s.nodes)
			}
		}
	})
}
