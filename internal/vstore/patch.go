package vstore

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"arb/internal/storage"
	"arb/internal/tree"
)

// Patch-operation kinds (the anchor-entry fixup rules differ per kind).
type opKind int

const (
	opReplace opKind = iota
	opDelete
	opInsert
)

// spliceSpec describes one patch as a splice of the logical record
// stream: the replaced range [start, end) (empty for inserts), the
// fragment that takes its place (nil for pure deletions), the anchor
// node the index fixup classifies ancestors against (the patched node
// for replace/delete, the parent for insert), and up to one single-
// record flag fixup outside the range (a parent learning or losing a
// child).
type spliceSpec struct {
	kind   opKind
	anchor int64
	start  int64
	end    int64
	frag   *fragment
	fixups []fixup
}

type fixup struct {
	node int64 // logical position in the old version (always < start)
	rec  storage.Record
}

// PatchInfo reports one committed operation.
type PatchInfo struct {
	Version      uint64 // the version the operation produced
	Op           string // human-readable operation summary
	Nodes        int64  // node count of the new version
	Delta        int64  // node-count change
	SegmentBytes int64  // bytes appended by the operation
}

// ReplaceSubtree replaces the XML subtree rooted at node — the node and
// everything below it in the document, not its following siblings —
// with t, returning the new version. Cost is O(|old subtree| + |t|):
// the fragment is encoded into a fresh segment, the run table is
// spliced, and the subtree index is fixed up along the ancestor path
// only. Concurrent snapshots keep reading the old version.
func (st *Store) ReplaceSubtree(ctx context.Context, node int64, t *tree.Tree) (*PatchInfo, error) {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	snap := st.Snapshot()
	defer snap.Release()
	ver := snap.v
	rec, err := ver.checkedRec(node)
	if err != nil {
		return nil, err
	}
	frag, err := encodeFragment(t, rec.HasSecond, ver.names)
	if err != nil {
		return nil, err
	}
	end, err := ver.xmlEnd(ctx, node, rec)
	if err != nil {
		return nil, err
	}
	spec := spliceSpec{kind: opReplace, anchor: node, start: node, end: end, frag: frag}
	op := fmt.Sprintf("replace node %d (%d -> %d nodes)", node, end-node, frag.nodes)
	return st.commit(spec, op)
}

// DeleteSubtree removes the XML subtree rooted at node. When the node
// has a following sibling, the sibling chain takes its place; otherwise
// the parent's child flag is cleared (one fixed-up record). The
// document root cannot be deleted.
func (st *Store) DeleteSubtree(ctx context.Context, node int64) (*PatchInfo, error) {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	snap := st.Snapshot()
	defer snap.Release()
	ver := snap.v
	if node == 0 {
		return nil, fmt.Errorf("vstore: cannot delete the document root")
	}
	rec, err := ver.checkedRec(node)
	if err != nil {
		return nil, err
	}
	end, err := ver.xmlEnd(ctx, node, rec)
	if err != nil {
		return nil, err
	}
	spec := spliceSpec{kind: opDelete, anchor: node, start: node, end: end}
	if !rec.HasSecond {
		// No sibling steps into the node's place: the parent loses this
		// child (its record is the one byte-pair rewritten outside the
		// spliced range).
		parent, k, err := ver.parentOf(ctx, node)
		if err != nil {
			return nil, err
		}
		prec, err := ver.readRec(parent)
		if err != nil {
			return nil, err
		}
		if k == 1 {
			prec.HasFirst = false
		} else {
			prec.HasSecond = false
		}
		spec.fixups = []fixup{{node: parent, rec: prec}}
	}
	op := fmt.Sprintf("delete node %d (%d nodes)", node, end-node)
	return st.commit(spec, op)
}

// InsertChild inserts t as the new first child of node (document order:
// before the node's existing children). The fragment's root takes the
// node's old first child as its next sibling, and the node's record
// gains the first-child flag. Text nodes cannot take children.
func (st *Store) InsertChild(ctx context.Context, node int64, t *tree.Tree) (*PatchInfo, error) {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	snap := st.Snapshot()
	defer snap.Release()
	ver := snap.v
	rec, err := ver.checkedRec(node)
	if err != nil {
		return nil, err
	}
	if tree.Label(rec.Label).IsChar() {
		return nil, fmt.Errorf("vstore: node %d is a text node; it cannot take children", node)
	}
	frag, err := encodeFragment(t, rec.HasFirst, ver.names)
	if err != nil {
		return nil, err
	}
	newRec := rec
	newRec.HasFirst = true
	spec := spliceSpec{
		kind:   opInsert,
		anchor: node,
		start:  node + 1,
		end:    node + 1,
		frag:   frag,
		fixups: []fixup{{node: node, rec: newRec}},
	}
	op := fmt.Sprintf("insert %d nodes under node %d", frag.nodes, node)
	return st.commit(spec, op)
}

// commit materialises a splice as a new version and publishes it: write
// the segment (fragment records plus fixed-up records, synced), derive
// the new run table and index, persist a grown name table if the patch
// introduced tags, write the manifest to a temp file and rename it into
// place — the atomic commit point — then swap the current version.
func (st *Store) commit(spec spliceSpec, op string) (*PatchInfo, error) {
	// The caller (holding wmu) pinned the version we compute against.
	st.mu.Lock()
	ver := st.cur
	segID := st.nextSeg
	st.nextSeg++
	st.mu.Unlock()

	var fragNodes int64
	var fragSig storage.LabelSig
	var fragEntries []storage.IndexEntry
	var segBytes []byte
	if spec.frag != nil {
		fragNodes = spec.frag.nodes
		fragSig = spec.frag.sig
		fragEntries = spec.frag.entries
		segBytes = spec.frag.recs
	}
	for _, fx := range spec.fixups {
		var buf [storage.NodeSize]byte
		binary.BigEndian.PutUint16(buf[:], fx.rec.Encode())
		segBytes = append(segBytes, buf[:]...)
	}
	delta := fragNodes - (spec.end - spec.start)
	newN := ver.n + delta
	if newN < 1 {
		return nil, fmt.Errorf("vstore: operation would empty the database")
	}

	var seg *segment
	committed := false
	if len(segBytes) > 0 {
		name := fmt.Sprintf("%s-%06d.seg", filepath.Base(st.base), segID)
		path := filepath.Join(st.dir, name)
		f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, err
		}
		defer func() {
			if !committed {
				f.Close()
				os.Remove(path)
			}
		}()
		src, err := st.writeSegment(f, segBytes)
		if err != nil {
			return nil, err
		}
		seg = &segment{id: segID, kind: segPatch, nodes: int64(len(segBytes)) / storage.NodeSize, name: name, f: f, src: src}
	}

	runs := spliceRuns(ver.runs, ver.n, spec, seg, fragNodes)
	entries := fixupEntries(ver.idx.Entries(), spec, fragNodes, fragSig, fragEntries)
	ix, err := storage.NewIndex(newN, entries)
	if err != nil {
		// A fixup produced an invalid index — a bug, not a user error;
		// refuse the commit rather than publish a corrupt version.
		return nil, fmt.Errorf("vstore: internal: patched index invalid: %w", err)
	}

	names, nNames := ver.names, ver.nNames
	if spec.frag != nil && spec.frag.grewName {
		names = spec.frag.names
		nNames = names.Len()
		if err := writeNamesFile(st.base+".vlab", names); err != nil {
			return nil, err
		}
	}

	newVer := &version{id: ver.id + 1, n: newN, runs: runs, idx: ix, names: names, nNames: nNames}
	newVer.finish(st.base)
	if err := writeManifest(st.base+".arbm", st.manifestFor(newVer, op)); err != nil {
		return nil, err
	}
	committed = true
	st.publish(newVer, op, false)
	return &PatchInfo{
		Version:      newVer.id,
		Op:           op,
		Nodes:        newN,
		Delta:        delta,
		SegmentBytes: int64(len(segBytes)),
	}, nil
}

// compressSegmentMin is the smallest segment worth the container
// framing: below it (typical single-fixup patches) segments stay raw
// regardless of the store's codec policy. Readers never consult the
// policy — each segment file is sniffed individually at open.
const compressSegmentMin = 1 << 12

// writeSegment persists one new segment's record bytes to f — block-
// compressed when the store's write policy applies and the segment is
// big enough to benefit — syncs the file and its directory entry (the
// segment must be durable before the manifest rename that references
// it), and returns the reader serving the segment's logical space.
func (st *Store) writeSegment(f *os.File, segBytes []byte) (io.ReaderAt, error) {
	if st.codec != storage.CodecRaw && len(segBytes) >= compressSegmentMin {
		bw, err := storage.NewBlockWriter(f, st.codec, st.blockSize)
		if err != nil {
			return nil, err
		}
		if _, err := bw.Write(segBytes); err != nil {
			return nil, err
		}
		if err := bw.Close(); err != nil {
			return nil, err
		}
	} else if _, err := f.Write(segBytes); err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		return nil, err
	}
	if err := storage.SyncDir(st.dir); err != nil {
		return nil, err
	}
	src, logical, err := openSegmentSource(f)
	if err != nil {
		return nil, err
	}
	if logical != int64(len(segBytes)) {
		return nil, fmt.Errorf("vstore: internal: segment holds %d logical bytes, wrote %d", logical, len(segBytes))
	}
	return src, nil
}

// spliceRuns derives the new run table: old runs clipped to before the
// patch, the fragment as one run, old runs after the patch shifted by
// delta, and each fixed-up record overlaid as a one-node run into the
// patch segment (fixups follow the fragment bytes physically).
func spliceRuns(old []run, oldN int64, spec spliceSpec, seg *segment, fragNodes int64) []run {
	delta := fragNodes - (spec.end - spec.start)
	out := clipRuns(old, 0, spec.start, 0)
	if fragNodes > 0 {
		out = append(out, run{seg: seg, logical: spec.start, phys: 0, count: fragNodes})
	}
	out = append(out, clipRuns(old, spec.end, oldN, delta)...)
	for i, fx := range spec.fixups {
		out = overlayRun(out, fx.node, run{seg: seg, logical: fx.node, phys: fragNodes + int64(i), count: 1})
	}
	return out
}

// clipRuns returns the portions of runs inside the logical range
// [lo, hi), with logical positions shifted by delta.
func clipRuns(runs []run, lo, hi, delta int64) []run {
	var out []run
	for _, r := range runs {
		s, e := r.logical, r.logical+r.count
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if s >= e {
			continue
		}
		out = append(out, run{seg: r.seg, logical: s + delta, phys: r.phys + (s - r.logical), count: e - s})
	}
	return out
}

// overlayRun replaces the single logical node at pos with nr, splitting
// the run containing it.
func overlayRun(runs []run, pos int64, nr run) []run {
	i := sort.Search(len(runs), func(i int) bool { return runs[i].logical > pos }) - 1
	r := runs[i]
	out := make([]run, 0, len(runs)+2)
	out = append(out, runs[:i]...)
	if pos > r.logical {
		out = append(out, run{seg: r.seg, logical: r.logical, phys: r.phys, count: pos - r.logical})
	}
	out = append(out, nr)
	if rem := r.logical + r.count - (pos + 1); rem > 0 {
		out = append(out, run{seg: r.seg, logical: pos + 1, phys: r.phys + (pos - r.logical) + 1, count: rem})
	}
	out = append(out, runs[i+1:]...)
	return out
}

// fixupEntries derives the new version's index entries from the old
// ones. The laminar-family invariant makes the classification complete:
// an extent containing the anchor either is rooted at it (per-kind
// rules) or is a proper ancestor containing the whole patched range
// (sizes adjust exactly; signatures grow conservatively). Extents
// before the patch keep; extents after shift; extents inside are
// superseded by the fragment's own entries. Everything stays laminar by
// construction, and the result is trimmed to the store's index budget.
func fixupEntries(old []storage.IndexEntry, spec spliceSpec, fragNodes int64, fragSig storage.LabelSig, fragEntries []storage.IndexEntry) []storage.IndexEntry {
	delta := fragNodes - (spec.end - spec.start)
	out := make([]storage.IndexEntry, 0, len(old)+len(fragEntries))
	for _, e := range old {
		switch {
		case e.V <= spec.anchor && spec.anchor < e.V+e.Size:
			if e.V == spec.anchor {
				switch spec.kind {
				case opReplace:
					// New subtree at the anchor: fragment plus the old
					// second subtree. The fragment is the node and its
					// first subtree, so FirstSize is exact; old labels
					// over-approximate the kept second subtree.
					e.Size += delta
					e.FirstSize = fragNodes - 1
					e.Labels.Or(fragSig)
					out = append(out, e)
				case opInsert:
					// The fragment joins the anchor's first subtree.
					e.Size += delta
					e.FirstSize += delta
					e.Labels.Or(fragSig)
					out = append(out, e)
				case opDelete:
					// The anchor node is gone; whatever moved into its
					// position is covered by the shifted entries below.
				}
				continue
			}
			// Proper ancestor: its extent contains the whole patched
			// range, so the size delta is exact; the patch lands in its
			// first subtree iff the anchor does.
			e.Size += delta
			if spec.anchor < e.V+1+e.FirstSize {
				e.FirstSize += delta
			}
			e.Labels.Or(fragSig)
			out = append(out, e)
		case e.V+e.Size <= spec.start:
			out = append(out, e)
		case e.V >= spec.end:
			e.V += delta
			out = append(out, e)
		default:
			// Inside the replaced range: superseded.
		}
	}
	for _, fe := range fragEntries {
		fe.V += spec.start
		out = append(out, fe)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].V < out[j].V })
	return trimEntries(out, storeIndexBudget)
}

// trimEntries drops the smallest entries until the budget holds,
// preserving preorder ordering (any subset of a laminar family is
// laminar).
func trimEntries(entries []storage.IndexEntry, budget int) []storage.IndexEntry {
	if len(entries) <= budget {
		return entries
	}
	sizes := make([]int64, len(entries))
	for i, e := range entries {
		sizes[i] = e.Size
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] > sizes[j] })
	threshold := sizes[budget-1]
	over := 0 // entries of exactly threshold size we may still keep
	for _, s := range sizes[:budget] {
		if s == threshold {
			over++
		}
	}
	out := entries[:0]
	for _, e := range entries {
		if e.Size > threshold {
			out = append(out, e)
		} else if e.Size == threshold && over > 0 {
			over--
			out = append(out, e)
		}
	}
	return out
}

// writeNamesFile persists a grown label-name table via temp file and
// rename (the .vlab is committed before the manifest that relies on
// it; ids are append-only, so a stale-but-longer .vlab is harmless).
func writeNamesFile(path string, names *tree.Names) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	renamed := false
	defer func() {
		if !renamed {
			os.Remove(tmp)
		}
	}()
	_, werr := names.WriteTo(f)
	if err := f.Sync(); werr == nil {
		werr = err
	}
	if err := f.Close(); werr == nil {
		werr = err
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
		renamed = werr == nil
	}
	if werr == nil {
		werr = storage.SyncDir(filepath.Dir(path))
	}
	return werr
}

// checkedRec reads the record at node, validating the position.
func (ver *version) checkedRec(node int64) (storage.Record, error) {
	if node < 0 || node >= ver.n {
		return storage.Record{}, fmt.Errorf("vstore: node %d out of range [0,%d)", node, ver.n)
	}
	return ver.readRec(node)
}

// readRec reads the single record at logical position v.
func (ver *version) readRec(v int64) (storage.Record, error) {
	var b [storage.NodeSize]byte
	if _, err := ver.src.ReadAt(b[:], v*storage.NodeSize); err != nil {
		return storage.Record{}, err
	}
	return storage.DecodeRecord(binary.BigEndian.Uint16(b[:])), nil
}

// xmlEnd returns the exclusive end of the XML subtree of v — the node
// plus its first (descendant) subtree, not the sibling chain: the range
// every patch operation splices. Cost is O(subtree) at worst; indexed
// subtrees inside it are jumped over without reading.
func (ver *version) xmlEnd(ctx context.Context, v int64, rec storage.Record) (int64, error) {
	if !rec.HasFirst {
		return v + 1, nil
	}
	return ver.skipSubtrees(ctx, v+1, 1)
}

// skipSubtrees returns the position after `pending` complete binary
// subtrees starting at start, reading records in chunks and jumping
// over indexed extents.
func (ver *version) skipSubtrees(ctx context.Context, start, pending int64) (int64, error) {
	cancel := storage.NewCanceller(ctx)
	const chunkNodes = 16384
	var buf []byte
	bufStart, bufEnd := int64(0), int64(0)
	pos := start
	for pending > 0 {
		if err := cancel.Step(); err != nil {
			return 0, err
		}
		if pos >= ver.n {
			return 0, fmt.Errorf("vstore: malformed database: subtree at %d runs past the end", start)
		}
		if e, ok := ver.idx.Lookup(pos); ok && pos+e.Size <= ver.n {
			pos += e.Size
			pending--
			continue
		}
		if pos < bufStart || pos >= bufEnd {
			end := pos + chunkNodes
			if end > ver.n {
				end = ver.n
			}
			need := int((end - pos) * storage.NodeSize)
			if cap(buf) < need {
				buf = make([]byte, need)
			}
			buf = buf[:need]
			if _, err := ver.src.ReadAt(buf, pos*storage.NodeSize); err != nil {
				return 0, err
			}
			bufStart, bufEnd = pos, end
		}
		rec := storage.DecodeRecord(binary.BigEndian.Uint16(buf[(pos-bufStart)*storage.NodeSize:]))
		pending--
		if rec.HasFirst {
			pending++
		}
		if rec.HasSecond {
			pending++
		}
		pos++
	}
	return pos, nil
}

// errFoundParent aborts the parent-locating scan once the target node
// has been visited.
var errFoundParent = errors.New("vstore: parent located")

// parentOf locates the binary-tree parent of v and whether v is its
// first or second child, with one forward scan that seeks past every
// maximal indexed extent not containing v (an extent containing the
// parent necessarily contains v too, so skipping the rest is safe).
// The root has no parent: (-1, 0).
func (ver *version) parentOf(ctx context.Context, v int64) (int64, int, error) {
	if v == 0 {
		return -1, 0, nil
	}
	var skip []storage.Extent
	var end int64
	for _, e := range ver.idx.Entries() {
		if e.V > v {
			break // the scan aborts at v; later extents are never reached
		}
		if e.V < end {
			continue // nested inside an extent already skipped
		}
		if e.V <= v && v < e.V+e.Size {
			continue // contains v: the scan must descend into it
		}
		skip = append(skip, storage.Extent{Root: e.V, Size: e.Size})
		end = e.V + e.Size
	}
	type pframe struct{ id int64 }
	parent, k := int64(-1), 0
	_, err := storage.ScanTopDownSkipping(ctx, ver.db, skip,
		func(x storage.Extent, p *pframe, kk int) error { return nil },
		func(u int64, rec storage.Record, p *pframe, kk int) (pframe, error) {
			if u == v {
				if p != nil {
					parent, k = p.id, kk
				}
				return pframe{id: u}, errFoundParent
			}
			return pframe{id: u}, nil
		})
	if err == nil {
		return 0, 0, fmt.Errorf("vstore: node %d not reached by the parent scan", v)
	}
	if !errors.Is(err, errFoundParent) {
		return 0, 0, err
	}
	if parent < 0 {
		return 0, 0, fmt.Errorf("vstore: node %d has no parent", v)
	}
	return parent, k, nil
}
