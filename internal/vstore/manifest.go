// Package vstore implements a versioned extent store over the .arb
// storage model: copy-on-write subtree patching with MVCC snapshots.
//
// A versioned database is the original immutable base.arb file plus a
// chain of append-only patch segments (base-NNNNNN.seg), tied together
// by a base.arbm manifest. The manifest records the current version: a
// sorted list of runs mapping contiguous logical node ranges onto
// (segment, physical offset) pairs, the version's laminar subtree index
// with label signatures, the label-name count in force, and a bounded
// history of the operations that produced it.
//
// Because .arb records are position-independent (the two flag bits say
// only whether a first/second subtree follows — there are no absolute
// pointers), replacing the XML subtree at node v is a pure splice of
// the record stream: write the new subtree's records as a fresh
// segment, drop the old range from the run table, and fix up at most
// one record (a parent's child flag) — O(subtree), never O(database).
// The subtree index is fixed up for the affected path only: entries
// containing the patch stretch or shrink, entries after it shift,
// entries inside it are replaced by the fragment's own entries.
//
// Readers take Snapshot(), which pins a version behind an immutable
// *storage.DB whose record source stitches the runs back into one
// logical address space — every scan primitive (forward, backward,
// range, skipping) and therefore every evaluation strategy runs
// unmodified on any pinned version. The writer publishes a new version
// by atomic manifest rename; releasing the last snapshot of an
// unreachable version drives segment garbage collection. Readers and
// the writer share no locks on the hot path (coordination avoidance:
// queries are read-only per snapshot).
package vstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"arb/internal/storage"
	"arb/internal/tree"
)

// Manifest magics. v2 adds the store's segment write policy (codec and
// block size for newly written patch/compaction segments) right after
// the name count; v1 manifests load as policy raw. Per-segment
// compression is never declared here — each segment file carries its
// own container magic and is sniffed at open.
const (
	manifestMagicV1 = "ARBVST1\n"
	manifestMagic   = "ARBVST2\n"
)

// Validation caps: a manifest is a footnote next to the database, so
// anything claiming more than these is rejected as corrupt rather than
// allocated.
const (
	maxSegments = 1 << 16
	maxRuns     = 1 << 22
	maxEntries  = 1 << 24 // matches the .idx reader's cap
	maxHistory  = 1 << 12
	maxNameLen  = 4096
)

// Segment kinds: the immutable original base.arb file, or an appended
// patch segment (base-NNNNNN.seg) written by one patch or compaction.
const (
	segBase  = 0
	segPatch = 1
)

type manifestSeg struct {
	id    uint64
	kind  uint8
	nodes int64  // node capacity of the file (size / NodeSize)
	name  string // file name relative to the database directory
}

// manifestRun maps the logical node range [logical, logical+count) of
// the version onto the physical node range [phys, phys+count) of one
// segment.
type manifestRun struct {
	seg     uint64
	logical int64
	phys    int64
	count   int64
}

// HistoryEntry is one committed operation in the version chain.
type HistoryEntry struct {
	Version uint64
	Op      string
}

// manifest is the decoded form of a .arbm file: one complete version.
type manifest struct {
	version   uint64
	n         int64 // logical node count
	names     int   // named labels in force (prefix of the .vlab table)
	codec     uint8 // write policy for new segments (storage.CodecRaw = plain)
	blockSize int   // block size for compressed segment writes (0 = default)
	segs      []manifestSeg
	runs      []manifestRun
	entries   []storage.IndexEntry
	history   []HistoryEntry
}

// validate enforces every structural invariant a manifest must satisfy
// before the store will load it: unique segments with safe relative
// names, runs that tile [0, n) exactly and stay inside their segments,
// and a well-formed laminar index. It returns the validated index.
func (m *manifest) validate() (*storage.SubtreeIndex, error) {
	if m.version < 1 {
		return nil, fmt.Errorf("vstore: manifest version %d", m.version)
	}
	if m.n < 1 {
		return nil, fmt.Errorf("vstore: manifest declares %d nodes", m.n)
	}
	if m.names < 0 || m.names > int(tree.MaxLabel-tree.FirstNamedLabel)+1 {
		return nil, fmt.Errorf("vstore: manifest declares %d named labels", m.names)
	}
	if m.codec != storage.CodecRaw && m.codec != storage.CodecLZ && m.codec != storage.CodecFlate {
		return nil, fmt.Errorf("vstore: manifest declares unknown segment codec %d", m.codec)
	}
	if !storage.ValidBlockSize(m.blockSize) {
		return nil, fmt.Errorf("vstore: manifest declares block size %d", m.blockSize)
	}
	segByID := make(map[uint64]manifestSeg, len(m.segs))
	for _, s := range m.segs {
		if _, dup := segByID[s.id]; dup {
			return nil, fmt.Errorf("vstore: duplicate segment id %d", s.id)
		}
		if s.kind != segBase && s.kind != segPatch {
			return nil, fmt.Errorf("vstore: segment %d has unknown kind %d", s.id, s.kind)
		}
		if s.nodes < 1 {
			return nil, fmt.Errorf("vstore: segment %d declares %d nodes", s.id, s.nodes)
		}
		if s.name == "" || s.name == "." || s.name == ".." || filepath.Base(s.name) != s.name {
			return nil, fmt.Errorf("vstore: segment %d has unsafe name %q", s.id, s.name)
		}
		segByID[s.id] = s
	}
	var logical int64
	for _, r := range m.runs {
		s, ok := segByID[r.seg]
		if !ok {
			return nil, fmt.Errorf("vstore: run references unknown segment %d", r.seg)
		}
		if r.logical != logical {
			return nil, fmt.Errorf("vstore: runs do not tile the logical space at node %d", logical)
		}
		if r.count < 1 || r.phys < 0 || r.phys+r.count > s.nodes {
			return nil, fmt.Errorf("vstore: run [%d,%d) outside segment %d (%d nodes)",
				r.phys, r.phys+r.count, r.seg, s.nodes)
		}
		logical += r.count
	}
	if logical != m.n {
		return nil, fmt.Errorf("vstore: runs cover %d of %d nodes", logical, m.n)
	}
	ix, err := storage.NewIndex(m.n, m.entries)
	if err != nil {
		return nil, fmt.Errorf("vstore: manifest index: %w", err)
	}
	return ix, nil
}

// writeManifest persists m to path via a temporary file and atomic
// rename — the commit point of every patch, compaction and bootstrap.
func writeManifest(path string, m *manifest) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	renamed := false
	defer func() {
		if !renamed {
			os.Remove(tmp)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<16)
	werr := func() error {
		if _, err := w.WriteString(manifestMagic); err != nil {
			return err
		}
		var buf [8]byte
		put := func(v uint64) error {
			binary.BigEndian.PutUint64(buf[:], v)
			_, err := w.Write(buf[:])
			return err
		}
		putStr := func(s string) error {
			if err := put(uint64(len(s))); err != nil {
				return err
			}
			_, err := w.WriteString(s)
			return err
		}
		if err := put(m.version); err != nil {
			return err
		}
		if err := put(uint64(m.n)); err != nil {
			return err
		}
		if err := put(uint64(m.names)); err != nil {
			return err
		}
		if err := put(uint64(m.codec)); err != nil {
			return err
		}
		if err := put(uint64(m.blockSize)); err != nil {
			return err
		}
		if err := put(uint64(len(m.segs))); err != nil {
			return err
		}
		for _, s := range m.segs {
			if err := put(s.id); err != nil {
				return err
			}
			if err := put(uint64(s.kind)); err != nil {
				return err
			}
			if err := put(uint64(s.nodes)); err != nil {
				return err
			}
			if err := putStr(s.name); err != nil {
				return err
			}
		}
		if err := put(uint64(len(m.runs))); err != nil {
			return err
		}
		for _, r := range m.runs {
			if err := put(r.seg); err != nil {
				return err
			}
			if err := put(uint64(r.logical)); err != nil {
				return err
			}
			if err := put(uint64(r.phys)); err != nil {
				return err
			}
			if err := put(uint64(r.count)); err != nil {
				return err
			}
		}
		if err := put(uint64(len(m.entries))); err != nil {
			return err
		}
		for _, e := range m.entries {
			if err := put(uint64(e.V)); err != nil {
				return err
			}
			if err := put(uint64(e.Size)); err != nil {
				return err
			}
			if err := put(uint64(e.FirstSize)); err != nil {
				return err
			}
			for _, word := range e.Labels {
				if err := put(word); err != nil {
					return err
				}
			}
		}
		if err := put(uint64(len(m.history))); err != nil {
			return err
		}
		for _, h := range m.history {
			if err := put(h.Version); err != nil {
				return err
			}
			if err := putStr(h.Op); err != nil {
				return err
			}
		}
		return w.Flush()
	}()
	if err := f.Sync(); werr == nil {
		werr = err
	}
	if err := f.Close(); werr == nil {
		werr = err
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
		renamed = werr == nil
	}
	if werr == nil {
		// The rename is the commit point, but it is only durable once the
		// directory entry reaches disk.
		werr = storage.SyncDir(filepath.Dir(path))
	}
	return werr
}

// readManifest loads and validates a .arbm file. Corrupt, truncated or
// structurally impossible manifests are rejected with an error — the
// store never loads a version it cannot prove internally consistent.
// The returned index is the validated form of m.entries.
func readManifest(path string) (*manifest, *storage.SubtreeIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(manifestMagic))
	if _, err := io.ReadFull(r, magic); err != nil ||
		(string(magic) != manifestMagic && string(magic) != manifestMagicV1) {
		return nil, nil, fmt.Errorf("vstore: %s is not a manifest file", path)
	}
	v1 := string(magic) == manifestMagicV1
	var buf [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, fmt.Errorf("vstore: manifest %s truncated: %w", path, err)
		}
		return binary.BigEndian.Uint64(buf[:]), nil
	}
	getInt := func() (int64, error) {
		v, err := get()
		if err != nil {
			return 0, err
		}
		if v > 1<<62 {
			return 0, fmt.Errorf("vstore: manifest %s: field overflows", path)
		}
		return int64(v), nil
	}
	getCount := func(cap int64, what string) (int64, error) {
		v, err := getInt()
		if err != nil {
			return 0, err
		}
		if v < 0 || v > cap {
			return 0, fmt.Errorf("vstore: manifest %s declares %d %s", path, v, what)
		}
		return v, nil
	}
	getStr := func() (string, error) {
		n, err := getCount(maxNameLen, "name bytes")
		if err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", fmt.Errorf("vstore: manifest %s truncated: %w", path, err)
		}
		return string(b), nil
	}
	m := &manifest{}
	if m.version, err = get(); err != nil {
		return nil, nil, err
	}
	if m.n, err = getInt(); err != nil {
		return nil, nil, err
	}
	names, err := getInt()
	if err != nil {
		return nil, nil, err
	}
	m.names = int(names)
	if !v1 {
		codec, err := get()
		if err != nil {
			return nil, nil, err
		}
		if codec > 255 {
			return nil, nil, fmt.Errorf("vstore: manifest %s: segment codec %d", path, codec)
		}
		m.codec = uint8(codec)
		blockSize, err := getInt()
		if err != nil {
			return nil, nil, err
		}
		m.blockSize = int(blockSize)
	}
	nseg, err := getCount(maxSegments, "segments")
	if err != nil {
		return nil, nil, err
	}
	m.segs = make([]manifestSeg, nseg)
	for i := range m.segs {
		if m.segs[i].id, err = get(); err != nil {
			return nil, nil, err
		}
		kind, err := get()
		if err != nil {
			return nil, nil, err
		}
		if kind > 255 {
			return nil, nil, fmt.Errorf("vstore: manifest %s: segment kind %d", path, kind)
		}
		m.segs[i].kind = uint8(kind)
		if m.segs[i].nodes, err = getInt(); err != nil {
			return nil, nil, err
		}
		if m.segs[i].name, err = getStr(); err != nil {
			return nil, nil, err
		}
	}
	nrun, err := getCount(maxRuns, "runs")
	if err != nil {
		return nil, nil, err
	}
	m.runs = make([]manifestRun, nrun)
	for i := range m.runs {
		if m.runs[i].seg, err = get(); err != nil {
			return nil, nil, err
		}
		if m.runs[i].logical, err = getInt(); err != nil {
			return nil, nil, err
		}
		if m.runs[i].phys, err = getInt(); err != nil {
			return nil, nil, err
		}
		if m.runs[i].count, err = getInt(); err != nil {
			return nil, nil, err
		}
	}
	nent, err := getCount(maxEntries, "index entries")
	if err != nil {
		return nil, nil, err
	}
	m.entries = make([]storage.IndexEntry, nent)
	for i := range m.entries {
		if m.entries[i].V, err = getInt(); err != nil {
			return nil, nil, err
		}
		if m.entries[i].Size, err = getInt(); err != nil {
			return nil, nil, err
		}
		if m.entries[i].FirstSize, err = getInt(); err != nil {
			return nil, nil, err
		}
		for w := range m.entries[i].Labels {
			v, err := get()
			if err != nil {
				return nil, nil, err
			}
			m.entries[i].Labels[w] = v
		}
	}
	nhist, err := getCount(maxHistory, "history entries")
	if err != nil {
		return nil, nil, err
	}
	m.history = make([]HistoryEntry, nhist)
	for i := range m.history {
		if m.history[i].Version, err = get(); err != nil {
			return nil, nil, err
		}
		if m.history[i].Op, err = getStr(); err != nil {
			return nil, nil, err
		}
	}
	ix, err := m.validate()
	if err != nil {
		return nil, nil, fmt.Errorf("vstore: manifest %s: %w", path, err)
	}
	return m, ix, nil
}
