package vstore

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"arb/internal/storage"
)

// Compact rewrites the current version into a single fresh segment: the
// stitched logical record stream is copied out linearly, the run table
// collapses to one run, and the index and name table carry over
// unchanged. Once the last snapshot of the old chain is released, every
// superseded patch segment is deleted — compaction is how a
// long-patched store sheds its history. The commit is atomic exactly
// like a patch; concurrent readers are unaffected.
func (st *Store) Compact(ctx context.Context) (*PatchInfo, error) {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	snap := st.Snapshot()
	defer snap.Release()
	ver := snap.v

	st.mu.Lock()
	segID := st.nextSeg
	st.nextSeg++
	st.mu.Unlock()

	name := fmt.Sprintf("%s-%06d.seg", filepath.Base(st.base), segID)
	path := filepath.Join(st.dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	committed := false
	defer func() {
		if !committed {
			f.Close()
			os.Remove(path)
		}
	}()
	// Copy in bounded chunks so cancellation is honoured mid-copy. With a
	// compressing write policy the stream is re-blocked through a
	// BlockWriter — compaction is also how a store opened over a raw base
	// converges onto compressed storage after the policy changes.
	var w io.Writer = f
	var bw *storage.BlockWriter
	size := ver.n * storage.NodeSize
	if st.codec != storage.CodecRaw && size >= compressSegmentMin {
		var err error
		if bw, err = storage.NewBlockWriter(f, st.codec, st.blockSize); err != nil {
			return nil, err
		}
		w = bw
	}
	cancel := storage.NewCanceller(ctx)
	const chunk = int64(1 << 20)
	for off := int64(0); off < size; off += chunk {
		if err := cancel.Step(); err != nil {
			return nil, err
		}
		end := off + chunk
		if end > size {
			end = size
		}
		if _, err := io.Copy(w, io.NewSectionReader(ver.src, off, end-off)); err != nil {
			return nil, err
		}
	}
	if bw != nil {
		if err := bw.Close(); err != nil {
			return nil, err
		}
	}
	if err := f.Sync(); err != nil {
		return nil, err
	}
	if err := storage.SyncDir(st.dir); err != nil {
		return nil, err
	}
	src, logical, err := openSegmentSource(f)
	if err != nil {
		return nil, err
	}
	if logical != size {
		return nil, fmt.Errorf("vstore: internal: compacted segment holds %d logical bytes, want %d", logical, size)
	}

	seg := &segment{id: segID, kind: segPatch, nodes: ver.n, name: name, f: f, src: src}
	newVer := &version{
		id:     ver.id + 1,
		n:      ver.n,
		runs:   []run{{seg: seg, logical: 0, phys: 0, count: ver.n}},
		idx:    ver.idx,
		names:  ver.names,
		nNames: ver.nNames,
	}
	newVer.finish(st.base)
	op := fmt.Sprintf("compact (%d nodes, %d segments -> 1)", ver.n, len(ver.segs))
	if err := writeManifest(st.base+".arbm", st.manifestFor(newVer, op)); err != nil {
		return nil, err
	}
	committed = true
	st.publish(newVer, op, true)
	return &PatchInfo{
		Version:      newVer.id,
		Op:           op,
		Nodes:        ver.n,
		Delta:        0,
		SegmentBytes: size,
	}, nil
}
