package parallel

import (
	"math/rand"
	"testing"

	"arb/internal/core"
	"arb/internal/naive"
	"arb/internal/testutil"
	"arb/internal/tmnf"
	"arb/internal/tree"
	"arb/internal/workload"
)

func engineFor(tb testing.TB, prog *tmnf.Program, names *tree.Names) *core.Engine {
	tb.Helper()
	c, err := core.Compile(prog)
	if err != nil {
		tb.Fatalf("Compile: %v", err)
	}
	return core.NewEngine(c, names)
}

func TestRunMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 30; iter++ {
		tr := testutil.RandomTree(rng, 4000)
		prog := testutil.RandomProgramParsed(rng, 4, 8)

		seq, err := engineFor(t, prog, tr.Names()).Run(tr, core.RunOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			par, err := Run(engineFor(t, prog, tr.Names()), tr, workers)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range prog.Queries() {
				if par.Count(q) != seq.Count(q) {
					t.Fatalf("iter %d workers %d: count %d, sequential %d\nprogram:\n%s",
						iter, workers, par.Count(q), seq.Count(q), prog)
				}
				for v := 0; v < tr.Len(); v++ {
					if par.Holds(q, tree.NodeID(v)) != seq.Holds(q, tree.NodeID(v)) {
						t.Fatalf("iter %d workers %d node %d: parallel %v, sequential %v",
							iter, workers, v, par.Holds(q, tree.NodeID(v)), seq.Holds(q, tree.NodeID(v)))
					}
				}
			}
		}
	}
}

func TestRunMatchesNaiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for iter := 0; iter < 25; iter++ {
		tr := testutil.RandomTree(rng, 50)
		prog := testutil.RandomProgramParsed(rng, 3, 6)
		par, err := Run(engineFor(t, prog, tr.Names()), tr, 3)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.Evaluate(tr, prog)
		for _, q := range prog.Queries() {
			for v := 0; v < tr.Len(); v++ {
				if par.Holds(q, tree.NodeID(v)) != want.Holds(q, tree.NodeID(v)) {
					t.Fatalf("iter %d node %d: parallel %v, naive %v", iter, v,
						par.Holds(q, tree.NodeID(v)), want.Holds(q, tree.NodeID(v)))
				}
			}
		}
	}
}

// TestRunOnInfixSequence is the paper's parallel application: regular
// expression matching on a balanced infix tree.
func TestRunOnInfixSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	seq := workload.Sequence(6, 1<<12-1)
	tr := workload.InfixTree(seq)
	for i := 0; i < 5; i++ {
		r := workload.RandomPathRegex(rng, 5, workload.ACGTAlphabet)
		prog, err := r.Program(workload.RInfix)
		if err != nil {
			t.Fatal(err)
		}
		q := prog.Queries()[0]
		seqRes, err := engineFor(t, prog, tr.Names()).Run(tr, core.RunOpts{})
		if err != nil {
			t.Fatal(err)
		}
		parRes, err := Run(engineFor(t, prog, tr.Names()), tr, 4)
		if err != nil {
			t.Fatal(err)
		}
		if parRes.Count(q) != seqRes.Count(q) {
			t.Fatalf("regex %s: parallel %d, sequential %d", r, parRes.Count(q), seqRes.Count(q))
		}
	}
}

// TestRunDegenerateChain exercises the right-deep case where the frontier
// decomposition finds little parallelism but must stay correct (and not
// overflow any recursion).
func TestRunDegenerateChain(t *testing.T) {
	tr := workload.FlatTree(workload.Sequence(7, 50000))
	prog := tmnf.MustParse(`QUERY :- Label[A], LastSibling;`)
	par, err := Run(engineFor(t, prog, tr.Names()), tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := engineFor(t, prog, tr.Names()).Run(tr, core.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	q := prog.Queries()[0]
	if par.Count(q) != seq.Count(q) {
		t.Fatalf("parallel %d, sequential %d", par.Count(q), seq.Count(q))
	}
}

func TestSharedEngineConcurrentWarmup(t *testing.T) {
	// Repeated runs over the same engine must reuse the caches; run with
	// -race to exercise the locking.
	tr := workload.InfixTree(workload.Sequence(8, 1<<10-1))
	prog := tmnf.MustParse(`QUERY :- V.Label[A].` + "(FirstChild.SecondChild*.-HasSecondChild | -HasFirstChild.invFirstChild*.invSecondChild)" + `.Label[C];`)
	e := engineFor(t, prog, tr.Names())
	var first int64 = -1
	for i := 0; i < 3; i++ {
		res, err := Run(e, tr, 8)
		if err != nil {
			t.Fatal(err)
		}
		c := res.Count(prog.Queries()[0])
		if first == -1 {
			first = c
		} else if c != first {
			t.Fatalf("run %d: count %d, first run %d", i, c, first)
		}
	}
	if e.Stats().BUTransitions == 0 {
		t.Fatal("no transitions recorded")
	}
}
