package parallel

import (
	"context"
	"errors"
	"runtime"

	"arb/internal/core"
	"arb/internal/storage"
	"arb/internal/tree"
)

// RunBatchContext evaluates a batch of member programs over t with a pool
// of workers, the in-memory counterpart of core.RunDiskBatchParallel: the
// tree is cut once into a frontier of subtrees and every worker runs the
// whole batch over each chunk it claims — one traversal per chunk, N
// engine steps per node — so the shared iteration the batch buys on disk
// (one pair of scans) is preserved as one pair of passes over the tree.
// Each worker keeps a private dense core.BatchCache per member in front
// of the members' shared automata. Results are identical to
// core.RunBatchTree's. Cancelling ctx aborts all workers promptly.
func RunBatchContext(ctx context.Context, t *tree.Tree, workers int, members []core.BatchMember, topts core.TreeBatchOpts) ([]*core.Result, core.Stats, error) {
	var agg core.Stats
	n := t.Len()
	if n == 0 {
		return nil, agg, errors.New("parallel: empty tree")
	}
	nm := len(members)
	if nm == 0 {
		return nil, agg, errors.New("parallel: empty batch")
	}
	if err := ctx.Err(); err != nil {
		return nil, agg, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Selectivity-aware pruning, planned while the member engines are
	// still exclusively ours (before Share): an extent is skipped only
	// when every member's analysis proves it irrelevant.
	prunable := !topts.NoPrune
	engines := make([]*core.Engine, nm)
	for m, bm := range members {
		engines[m] = bm.E
		if bm.Aux != nil {
			prunable = false
		}
	}
	var prune *core.PrunePlan
	if prunable {
		prune = core.PlanPrune(engines, topts.Index, int64(n))
	}
	var planExts []storage.Extent
	if prune != nil {
		planExts = prune.Extents
	}

	res := make([]*core.Result, nm)
	shared := make([]*core.SharedEngine, nm)
	for m, bm := range members {
		res[m] = core.NewResult(bm.E.Compiled().Prog, int64(n))
		bm.E.AddNodes(int64(n))
		topts.Run.AddNodes(int64(n))
		if prune != nil {
			bm.E.AddPrunedNodes(prune.Nodes)
			topts.Run.AddPrunedNodes(prune.Nodes)
		}
		shared[m] = bm.E.ShareTo(topts.Run)
	}

	size := SubtreeSizes(t)
	target := int32(n/(workers*4) + 1)
	if target < 256 {
		target = 256
	}
	tasks := Frontier(t, size, target)
	tasks, inner, outer := core.SplitPrune(tasks, planExts)
	inTask := make([]bool, n)
	for _, x := range tasks {
		inTask[x.Root] = true
	}
	skipAt := make(map[tree.NodeID]int64, len(outer))
	for _, x := range outer {
		skipAt[tree.NodeID(x.Root)] = x.Size
	}
	var top []tree.NodeID
	{
		i := tree.NodeID(0)
		for i < tree.NodeID(n) {
			if inTask[i] {
				i += tree.NodeID(size[i])
				continue
			}
			if sz, ok := skipAt[i]; ok {
				i += tree.NodeID(sz)
				continue
			}
			top = append(top, i)
			i++
		}
	}

	bu := make([]core.StateID, n*nm)
	td := make([]core.StateID, n*nm)
	for _, x := range planExts {
		for m := range members {
			bu[int(x.Root)*nm+m] = prune.Sub(m)
		}
	}

	poolWorkers := workers
	if poolWorkers > len(tasks) {
		poolWorkers = len(tasks)
	}
	caches := make([][]*core.BatchCache, poolWorkers)
	for w := range caches {
		caches[w] = make([]*core.BatchCache, nm)
		for m := range caches[w] {
			caches[w][m] = shared[m].NewBatchCache()
		}
	}
	leader := make([]*core.BatchCache, nm)
	for m := range leader {
		leader[m] = shared[m].NewBatchCache()
	}

	buStep := func(cs []*core.BatchCache, v tree.NodeID) {
		first, second := t.First(v), t.Second(v)
		rec := storage.Record{
			Label:     uint16(t.Label(v)),
			HasFirst:  first != tree.None,
			HasSecond: second != tree.None,
		}.Encode()
		root := v == 0
		for m, bm := range members {
			left, right := core.NoState, core.NoState
			if first != tree.None {
				left = bu[int(first)*nm+m]
			}
			if second != tree.None {
				right = bu[int(second)*nm+m]
			}
			var extra uint16
			if bm.Aux != nil {
				extra = bm.Aux(v)
			}
			c := cs[m]
			bu[int(v)*nm+m] = c.BUStep(left, right, c.SigID(rec, root, extra))
		}
	}

	// Phase 1: workers fold their subtrees bottom-up (disjoint ranges, no
	// synchronisation on bu), then the leader folds the top glue. Pruned
	// extents inside a chunk are jumped over (their roots already carry
	// the substitute vector).
	err := runTasks(ctx, poolWorkers, tasks, func(worker, i int, x storage.Extent) error {
		cs := caches[worker]
		cancel := storage.NewCanceller(ctx)
		in := inner[i]
		pe := len(in) - 1
		for v := tree.NodeID(x.End()) - 1; v >= tree.NodeID(x.Root); v-- {
			if err := cancel.Step(); err != nil {
				return err
			}
			if pe >= 0 && int64(v) == in[pe].End()-1 {
				v = tree.NodeID(in[pe].Root) // the loop decrement steps past
				pe--
				continue
			}
			buStep(cs, v)
		}
		return nil
	})
	if err != nil {
		return nil, agg, err
	}
	cancel := storage.NewCanceller(ctx)
	for i := len(top) - 1; i >= 0; i-- {
		if err := cancel.Step(); err != nil {
			return nil, agg, err
		}
		buStep(leader, top[i])
	}

	// Phase 2: leader walks the top region — marking directly, no workers
	// are running — then workers descend into their subtrees with private
	// per-chunk bitsets per member.
	for m := range members {
		td[m] = leader[m].RootTrueSet(bu[m])
	}
	for _, v := range top {
		if err := cancel.Step(); err != nil {
			return nil, agg, err
		}
		first, second := t.First(v), t.Second(v)
		for m := range members {
			c := leader[m]
			tdv := td[int(v)*nm+m]
			if mask := c.QueryMask(tdv); mask != 0 {
				res[m].MarkMask(mask, int64(v))
			}
			if first != tree.None {
				td[int(first)*nm+m] = c.TDStep(tdv, bu[int(first)*nm+m], 1)
			}
			if second != tree.None {
				td[int(second)*nm+m] = c.TDStep(tdv, bu[int(second)*nm+m], 2)
			}
		}
	}
	err = runTasks(ctx, poolWorkers, tasks, func(worker, i int, x storage.Extent) error {
		cs := caches[worker]
		w0 := x.Root / 64
		words := (x.End()-1)/64 - w0 + 1
		local := make([][][]uint64, nm)
		for m := range local {
			local[m] = make([][]uint64, len(res[m].Queries()))
			for qi := range local[m] {
				local[m][qi] = make([]uint64, words)
			}
		}
		cancel := storage.NewCanceller(ctx)
		in := inner[i]
		pi := 0
		for v := tree.NodeID(x.Root); v < tree.NodeID(x.End()); v++ {
			if err := cancel.Step(); err != nil {
				return err
			}
			if pi < len(in) && int64(v) == in[pi].Root {
				v = tree.NodeID(in[pi].End()) - 1 // the loop increment steps past
				pi++
				continue
			}
			first, second := t.First(v), t.Second(v)
			for m := range members {
				c := cs[m]
				tdv := td[int(v)*nm+m]
				if mask := c.QueryMask(tdv); mask != 0 {
					for mm, qi := mask, 0; mm != 0; qi++ {
						if mm&1 != 0 {
							local[m][qi][int64(v)/64-w0] |= 1 << uint(v%64)
						}
						mm >>= 1
					}
				}
				if first != tree.None {
					td[int(first)*nm+m] = c.TDStep(tdv, bu[int(first)*nm+m], 1)
				}
				if second != tree.None {
					td[int(second)*nm+m] = c.TDStep(tdv, bu[int(second)*nm+m], 2)
				}
			}
		}
		for m := range local {
			for qi := range local[m] {
				res[m].MergeWords(qi, w0, local[m][qi])
			}
		}
		return nil
	})
	if err != nil {
		return nil, agg, err
	}
	return res, agg, nil
}
