//arblint:shims
// Deprecated context-less entry points kept for callers of earlier
// releases; in-repo code must not call them (enforced by noshims).

package parallel

import (
	"context"

	"arb/internal/core"
	"arb/internal/tree"
)

// Run evaluates the engine's compiled program over t using the given
// number of workers (0 = GOMAXPROCS).
//
// Deprecated: use RunContext (or the arb package's Session/PreparedQuery
// API) so long evaluations can be cancelled.
func Run(e *core.Engine, t *tree.Tree, workers int) (*Result, error) {
	return RunContext(context.Background(), e, t, workers, core.RunOpts{})
}
