// Package parallel evaluates TMNF programs over in-memory trees with
// multiple workers, exploiting the intrinsic parallelism of tree automata
// the paper points out in Sections 6.2 and 7: runs on disjoint subtrees
// are completely independent, so both evaluation phases parallelise by
// splitting the tree at a frontier of subtrees.
//
// The binary-tree preorder layout makes the decomposition trivial — every
// subtree is a contiguous index range, expressed as storage.Extent so the
// same frontier vocabulary covers in-memory node ranges and on-disk byte
// ranges (core.Engine.RunDiskParallel is the secondary-storage
// counterpart, cutting its frontier from the database's subtree index).
// The two automata are shared through core.SharedEngine with a private
// core.TxCache per worker, so states computed by one worker are reused by
// all. On balanced trees (the ACGT-infix model; see the paper's
// discussion of parallel regular expression matching) phase work divides
// evenly; on degenerate right-deep trees (ACGT-flat) the frontier
// collapses to a few huge chains and parallelism yields nothing — which
// is exactly why the paper restructures sequences into balanced infix
// trees.
package parallel

import (
	"errors"
	"runtime"

	"arb/internal/core"
	"arb/internal/edb"
	"arb/internal/storage"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// Result holds the selected nodes per query predicate.
type Result struct {
	queries []tmnf.Pred
	sel     [][]bool
}

// Queries returns the program's query predicates.
func (r *Result) Queries() []tmnf.Pred { return r.queries }

// Holds reports whether query predicate q selected node v.
func (r *Result) Holds(q tmnf.Pred, v tree.NodeID) bool {
	for i, p := range r.queries {
		if p == q {
			return r.sel[i][v]
		}
	}
	return false
}

// Count returns the number of nodes selected by q.
func (r *Result) Count(q tmnf.Pred) int64 {
	var n int64
	for i, p := range r.queries {
		if p == q {
			for _, ok := range r.sel[i] {
				if ok {
					n++
				}
			}
		}
	}
	return n
}

// SubtreeSizes returns, for every node of t, the size of its binary
// subtree — the length of its contiguous preorder extent.
func SubtreeSizes(t *tree.Tree) []int32 {
	n := t.Len()
	size := make([]int32, n)
	for v := n - 1; v >= 0; v-- {
		size[v] = 1
		if c := t.First(tree.NodeID(v)); c != tree.None {
			size[v] += size[c]
		}
		if c := t.Second(tree.NodeID(v)); c != tree.None {
			size[v] += size[c]
		}
	}
	return size
}

// Frontier cuts the tree into maximal subtrees no larger than target
// nodes, returned as contiguous preorder extents (the same byte-range
// form the disk evaluator's storage.SubtreeIndex.Cut produces). Nodes not
// covered by an extent are the top region gluing the frontier together.
func Frontier(t *tree.Tree, size []int32, target int32) []storage.Extent {
	if target < 1 {
		target = 1
	}
	var tasks []storage.Extent
	// Iterative cut: an explicit stack, since degenerate (right-deep)
	// trees would overflow the goroutine stack with recursion.
	stack := []tree.NodeID{t.Root()}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if size[v] <= target {
			tasks = append(tasks, storage.Extent{Root: int64(v), Size: int64(size[v])})
			continue
		}
		if c := t.Second(v); c != tree.None {
			stack = append(stack, c)
		}
		if c := t.First(v); c != tree.None {
			stack = append(stack, c)
		}
	}
	return tasks
}

// Run evaluates the engine's compiled program over t using the given
// number of workers (0 = GOMAXPROCS). The result is identical to
// (*core.Engine).Run — the decomposition only changes the evaluation
// order within each phase, never the transition functions.
func Run(e *core.Engine, t *tree.Tree, workers int) (*Result, error) {
	n := t.Len()
	if n == 0 {
		return nil, errors.New("parallel: empty tree")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := e.Share()
	prog := e.Compiled().Prog
	res := &Result{queries: prog.Queries()}
	res.sel = make([][]bool, len(res.queries))
	for i := range res.sel {
		res.sel[i] = make([]bool, n)
	}

	size := SubtreeSizes(t)

	// Frontier: maximal subtrees no larger than the per-task target.
	target := int32(n/(workers*4) + 1)
	if target < 256 {
		target = 256
	}
	tasks := Frontier(t, size, target)
	inTask := make([]bool, n) // v begins a frontier subtree
	for _, x := range tasks {
		inTask[x.Root] = true
	}

	// Top nodes: everything not inside a frontier subtree, in preorder.
	var top []tree.NodeID
	{
		i := tree.NodeID(0)
		for i < tree.NodeID(n) {
			if inTask[i] {
				i += tree.NodeID(size[i])
				continue
			}
			top = append(top, i)
			i++
		}
	}

	bu := make([]core.StateID, n)
	td := make([]core.StateID, n)

	// Per-worker transition caches in front of the shared engine, so the
	// warm steady state takes no locks at all; reused across both phases.
	poolWorkers := workers
	if poolWorkers > len(tasks) {
		poolWorkers = len(tasks)
	}
	caches := make([]*core.TxCache, poolWorkers)
	for i := range caches {
		caches[i] = s.NewCache()
	}

	// Phase 1: workers fold their subtrees bottom-up; ranges are
	// disjoint, so bu writes need no synchronisation.
	runTasks(poolWorkers, tasks, func(worker int, x storage.Extent) {
		cache := caches[worker]
		for v := tree.NodeID(x.End()) - 1; v >= tree.NodeID(x.Root); v-- {
			bu[v] = buStep(cache, t, bu, v)
		}
	})
	// Then the top part sequentially (its children are either top nodes
	// or frontier roots, all computed).
	topCache := s.NewCache()
	for i := len(top) - 1; i >= 0; i-- {
		v := top[i]
		bu[v] = buStep(topCache, t, bu, v)
	}

	// Phase 2: top part first (assigning the top-down states of frontier
	// roots), then workers descend into their subtrees.
	mark := func(wc *core.TxCache, v tree.NodeID) {
		if mask := wc.QueryMask(td[v]); mask != 0 {
			for i := range res.queries {
				if mask&(1<<uint(i)) != 0 {
					res.sel[i][v] = true
				}
			}
		}
	}
	td[0] = s.RootTrueSet(bu[0])
	for _, v := range top {
		mark(topCache, v)
		if c := t.First(v); c != tree.None {
			td[c] = topCache.TruePreds(td[v], bu[c], 1)
		}
		if c := t.Second(v); c != tree.None {
			td[c] = topCache.TruePreds(td[v], bu[c], 2)
		}
	}
	runTasks(poolWorkers, tasks, func(worker int, x storage.Extent) {
		cache := caches[worker]
		for v := tree.NodeID(x.Root); v < tree.NodeID(x.End()); v++ {
			mark(cache, v)
			if c := t.First(v); c != tree.None {
				td[c] = cache.TruePreds(td[v], bu[c], 1)
			}
			if c := t.Second(v); c != tree.None {
				td[c] = cache.TruePreds(td[v], bu[c], 2)
			}
		}
	})
	return res, nil
}

// buStep computes one bottom-up transition through the worker's cache.
func buStep(cache *core.TxCache, t *tree.Tree, bu []core.StateID, v tree.NodeID) core.StateID {
	left, right := core.NoState, core.NoState
	if c := t.First(v); c != tree.None {
		left = bu[c]
	}
	if c := t.Second(v); c != tree.None {
		right = bu[c]
	}
	return cache.ReachableStates(left, right, edb.SigOf(t, v))
}

// runTasks fans the extents out over core.RunPool's worker pool; run
// receives the worker id so each goroutine can use its private cache.
func runTasks(workers int, tasks []storage.Extent, run func(worker int, x storage.Extent)) {
	if len(tasks) == 0 {
		return
	}
	core.RunPool(workers, len(tasks), func(worker, i int) error {
		run(worker, tasks[i])
		return nil
	})
}
