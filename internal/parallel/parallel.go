// Package parallel evaluates TMNF programs over in-memory trees with
// multiple workers, exploiting the intrinsic parallelism of tree automata
// the paper points out in Sections 6.2 and 7: runs on disjoint subtrees
// are completely independent, so both evaluation phases parallelise by
// splitting the tree at a frontier of subtrees.
//
// The binary-tree preorder layout makes the decomposition trivial — every
// subtree is a contiguous index range, expressed as storage.Extent so the
// same frontier vocabulary covers in-memory node ranges and on-disk byte
// ranges (core.Engine.RunDiskParallelContext is the secondary-storage
// counterpart, cutting its frontier from the database's subtree index).
// The two automata are shared through core.SharedEngine with a private
// core.TxCache per worker, so states computed by one worker are reused by
// all. On balanced trees (the ACGT-infix model; see the paper's
// discussion of parallel regular expression matching) phase work divides
// evenly; on degenerate right-deep trees (ACGT-flat) the frontier
// collapses to a few huge chains and parallelism yields nothing — which
// is exactly why the paper restructures sequences into balanced infix
// trees.
package parallel

import (
	"context"
	"errors"
	"runtime"

	"arb/internal/core"
	"arb/internal/edb"
	"arb/internal/storage"
	"arb/internal/tree"
)

// Result is the unified result type shared with the sequential and disk
// evaluators; the former package-private result is retired.
//
// Deprecated: use core.Result (arb.Result) directly.
type Result = core.Result

// SubtreeSizes returns, for every node of t, the size of its binary
// subtree — the length of its contiguous preorder extent.
func SubtreeSizes(t *tree.Tree) []int32 {
	n := t.Len()
	size := make([]int32, n)
	for v := n - 1; v >= 0; v-- {
		size[v] = 1
		if c := t.First(tree.NodeID(v)); c != tree.None {
			size[v] += size[c]
		}
		if c := t.Second(tree.NodeID(v)); c != tree.None {
			size[v] += size[c]
		}
	}
	return size
}

// Frontier cuts the tree into maximal subtrees no larger than target
// nodes, returned as contiguous preorder extents (the same byte-range
// form the disk evaluator's storage.SubtreeIndex.Cut produces). Nodes not
// covered by an extent are the top region gluing the frontier together.
func Frontier(t *tree.Tree, size []int32, target int32) []storage.Extent {
	if target < 1 {
		target = 1
	}
	var tasks []storage.Extent
	// Iterative cut: an explicit stack, since degenerate (right-deep)
	// trees would overflow the goroutine stack with recursion.
	stack := []tree.NodeID{t.Root()}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if size[v] <= target {
			tasks = append(tasks, storage.Extent{Root: int64(v), Size: int64(size[v])})
			continue
		}
		if c := t.Second(v); c != tree.None {
			stack = append(stack, c)
		}
		if c := t.First(v); c != tree.None {
			stack = append(stack, c)
		}
	}
	return tasks
}

// RunContext evaluates the engine's compiled program over t using the
// given number of workers (0 = GOMAXPROCS). The result is identical to
// (*core.Engine).RunContext with the same options — the decomposition
// only changes the evaluation order within each phase, never the
// transition functions. opts.Aux supplies auxiliary predicate masks (the
// multi-pass XPath machinery); opts.KeepStates records the per-node
// automaton states in the result. Cancelling ctx aborts all workers
// promptly with ctx.Err().
func RunContext(ctx context.Context, e *core.Engine, t *tree.Tree, workers int, opts core.RunOpts) (*core.Result, error) {
	n := t.Len()
	if n == 0 {
		return nil, errors.New("parallel: empty tree")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Selectivity-aware pruning (planned before the engine is shared):
	// pruned extents vanish from the frontier, workers jump over pruned
	// subtrees inside their chunks, and the top scan skips the rest.
	var prune *core.PrunePlan
	if !opts.NoPrune && opts.Aux == nil && !opts.KeepStates {
		prune = core.PlanPrune([]*core.Engine{e}, opts.Index, int64(n))
	}
	var planExts []storage.Extent
	if prune != nil {
		planExts = prune.Extents
		e.AddPrunedNodes(prune.Nodes)
		opts.Run.AddPrunedNodes(prune.Nodes)
	}
	opts.Run.AddNodes(int64(n))
	s := e.ShareTo(opts.Run)
	prog := e.Compiled().Prog
	res := core.NewResult(prog, int64(n))
	nq := len(prog.Queries())

	size := SubtreeSizes(t)

	// Frontier: maximal subtrees no larger than the per-task target.
	target := int32(n/(workers*4) + 1)
	if target < 256 {
		target = 256
	}
	tasks := Frontier(t, size, target)
	tasks, inner, outer := core.SplitPrune(tasks, planExts)
	inTask := make([]bool, n) // v begins a frontier subtree
	for _, x := range tasks {
		inTask[x.Root] = true
	}
	skipAt := make(map[tree.NodeID]int64, len(outer)) // pruned roots in the top region
	for _, x := range outer {
		skipAt[tree.NodeID(x.Root)] = x.Size
	}

	// Top nodes: everything not inside a frontier subtree or a pruned
	// extent, in preorder.
	var top []tree.NodeID
	{
		i := tree.NodeID(0)
		for i < tree.NodeID(n) {
			if inTask[i] {
				i += tree.NodeID(size[i])
				continue
			}
			if sz, ok := skipAt[i]; ok {
				i += tree.NodeID(sz)
				continue
			}
			top = append(top, i)
			i++
		}
	}

	bu := make([]core.StateID, n)
	td := make([]core.StateID, n)
	// Pruned subtree roots fold to the substitute state; parents read it,
	// nothing below is ever touched.
	for _, x := range planExts {
		bu[x.Root] = prune.Sub(0)
	}

	// Per-worker transition caches in front of the shared engine, so the
	// warm steady state takes no locks at all; reused across both phases.
	poolWorkers := workers
	if poolWorkers > len(tasks) {
		poolWorkers = len(tasks)
	}
	caches := make([]*core.TxCache, poolWorkers)
	for i := range caches {
		caches[i] = s.NewCache()
	}

	// Phase 1: workers fold their subtrees bottom-up; ranges are
	// disjoint, so bu writes need no synchronisation. Pruned extents
	// inside a chunk are jumped over (their roots already carry the
	// substitute state).
	err := runTasks(ctx, poolWorkers, tasks, func(worker, i int, x storage.Extent) error {
		cache := caches[worker]
		cancel := storage.NewCanceller(ctx)
		in := inner[i]
		pe := len(in) - 1
		for v := tree.NodeID(x.End()) - 1; v >= tree.NodeID(x.Root); v-- {
			if err := cancel.Step(); err != nil {
				return err
			}
			if pe >= 0 && int64(v) == in[pe].End()-1 {
				v = tree.NodeID(in[pe].Root) // the loop decrement steps past
				pe--
				continue
			}
			bu[v] = buStep(cache, t, bu, v, opts.Aux)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Then the top part sequentially (its children are either top nodes
	// or frontier roots, all computed).
	topCache := s.NewCache()
	cancel := storage.NewCanceller(ctx)
	for i := len(top) - 1; i >= 0; i-- {
		if err := cancel.Step(); err != nil {
			return nil, err
		}
		v := top[i]
		bu[v] = buStep(topCache, t, bu, v, opts.Aux)
	}

	// Phase 2: top part first — marking directly on the result, which is
	// safe while no workers run — assigning the top-down states of
	// frontier roots; then workers descend into their subtrees,
	// accumulating marks in private per-task bitsets merged under the
	// result's lock (task boundaries may share a bitset word).
	td[0] = s.RootTrueSet(bu[0])
	for _, v := range top {
		if err := cancel.Step(); err != nil {
			return nil, err
		}
		if mask := topCache.QueryMask(td[v]); mask != 0 {
			res.MarkMask(mask, int64(v))
		}
		if c := t.First(v); c != tree.None {
			td[c] = topCache.TruePreds(td[v], bu[c], 1)
		}
		if c := t.Second(v); c != tree.None {
			td[c] = topCache.TruePreds(td[v], bu[c], 2)
		}
	}
	err = runTasks(ctx, poolWorkers, tasks, func(worker, i int, x storage.Extent) error {
		cache := caches[worker]
		w0 := x.Root / 64
		words := (x.End()-1)/64 - w0 + 1
		local := make([][]uint64, nq)
		for qi := range local {
			local[qi] = make([]uint64, words)
		}
		cancel := storage.NewCanceller(ctx)
		in := inner[i]
		pi := 0
		for v := tree.NodeID(x.Root); v < tree.NodeID(x.End()); v++ {
			if err := cancel.Step(); err != nil {
				return err
			}
			if pi < len(in) && int64(v) == in[pi].Root {
				v = tree.NodeID(in[pi].End()) - 1 // the loop increment steps past
				pi++
				continue
			}
			if mask := cache.QueryMask(td[v]); mask != 0 {
				for m, qi := mask, 0; m != 0; qi++ {
					if m&1 != 0 {
						local[qi][int64(v)/64-w0] |= 1 << uint(v%64)
					}
					m >>= 1
				}
			}
			if c := t.First(v); c != tree.None {
				td[c] = cache.TruePreds(td[v], bu[c], 1)
			}
			if c := t.Second(v); c != tree.None {
				td[c] = cache.TruePreds(td[v], bu[c], 2)
			}
		}
		for qi := range local {
			res.MergeWords(qi, w0, local[qi])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if opts.KeepStates {
		res.BUStateOf = bu
		res.TDStateOf = td
	}
	return res, nil
}

// buStep computes one bottom-up transition through the worker's cache.
func buStep(cache *core.TxCache, t *tree.Tree, bu []core.StateID, v tree.NodeID, aux func(tree.NodeID) uint16) core.StateID {
	left, right := core.NoState, core.NoState
	if c := t.First(v); c != tree.None {
		left = bu[c]
	}
	if c := t.Second(v); c != tree.None {
		right = bu[c]
	}
	sig := edb.SigOf(t, v)
	if aux != nil {
		sig.Extra = aux(v)
	}
	return cache.ReachableStates(left, right, sig)
}

// runTasks fans the extents out over core.RunPool's worker pool; run
// receives the worker id so each goroutine can use its private cache,
// and the task index so it can find its in-chunk prune list.
func runTasks(ctx context.Context, workers int, tasks []storage.Extent, run func(worker, i int, x storage.Extent) error) error {
	if len(tasks) == 0 {
		return nil
	}
	return core.RunPool(ctx, workers, len(tasks), func(worker, i int) error {
		return run(worker, i, tasks[i])
	})
}
