// Package parallel evaluates TMNF programs over in-memory trees with
// multiple workers, exploiting the intrinsic parallelism of tree automata
// the paper points out in Sections 6.2 and 7: runs on disjoint subtrees
// are completely independent, so both evaluation phases parallelise by
// splitting the tree at a frontier of subtrees.
//
// The binary-tree preorder layout makes the decomposition trivial — every
// subtree is a contiguous index range — and the two automata are shared
// through core.SharedEngine, so states computed by one worker are reused
// by all. On balanced trees (the ACGT-infix model; see the paper's
// discussion of parallel regular expression matching) phase work divides
// evenly; on degenerate right-deep trees (ACGT-flat) the frontier
// collapses to a few huge chains and parallelism yields nothing — which
// is exactly why the paper restructures sequences into balanced infix
// trees.
package parallel

import (
	"errors"
	"runtime"
	"sync"

	"arb/internal/core"
	"arb/internal/edb"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// Result holds the selected nodes per query predicate.
type Result struct {
	queries []tmnf.Pred
	sel     [][]bool
}

// Queries returns the program's query predicates.
func (r *Result) Queries() []tmnf.Pred { return r.queries }

// Holds reports whether query predicate q selected node v.
func (r *Result) Holds(q tmnf.Pred, v tree.NodeID) bool {
	for i, p := range r.queries {
		if p == q {
			return r.sel[i][v]
		}
	}
	return false
}

// Count returns the number of nodes selected by q.
func (r *Result) Count(q tmnf.Pred) int64 {
	var n int64
	for i, p := range r.queries {
		if p == q {
			for _, ok := range r.sel[i] {
				if ok {
					n++
				}
			}
		}
	}
	return n
}

// task is one frontier subtree: the contiguous preorder range
// [root, root+size).
type task struct {
	root tree.NodeID
	size int32
}

// Run evaluates the engine's compiled program over t using the given
// number of workers (0 = GOMAXPROCS). The result is identical to
// (*core.Engine).Run — the decomposition only changes the evaluation
// order within each phase, never the transition functions.
func Run(e *core.Engine, t *tree.Tree, workers int) (*Result, error) {
	n := t.Len()
	if n == 0 {
		return nil, errors.New("parallel: empty tree")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := e.Share()
	prog := e.Compiled().Prog
	res := &Result{queries: prog.Queries()}
	res.sel = make([][]bool, len(res.queries))
	for i := range res.sel {
		res.sel[i] = make([]bool, n)
	}

	// Subtree sizes; size[v] spans v's entire binary subtree.
	size := make([]int32, n)
	for v := n - 1; v >= 0; v-- {
		size[v] = 1
		if c := t.First(tree.NodeID(v)); c != tree.None {
			size[v] += size[c]
		}
		if c := t.Second(tree.NodeID(v)); c != tree.None {
			size[v] += size[c]
		}
	}

	// Frontier: maximal subtrees no larger than the per-task target.
	target := int32(n/(workers*4) + 1)
	if target < 256 {
		target = 256
	}
	var tasks []task
	inTask := make([]bool, n) // v begins a frontier subtree
	// Iterative cut: an explicit stack, since degenerate (right-deep)
	// trees would overflow the goroutine stack with recursion.
	stack := []tree.NodeID{t.Root()}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if size[v] <= target {
			tasks = append(tasks, task{root: v, size: size[v]})
			inTask[v] = true
			continue
		}
		if c := t.Second(v); c != tree.None {
			stack = append(stack, c)
		}
		if c := t.First(v); c != tree.None {
			stack = append(stack, c)
		}
	}

	// Top nodes: everything not inside a frontier subtree, in preorder.
	var top []tree.NodeID
	{
		i := tree.NodeID(0)
		for i < tree.NodeID(n) {
			if inTask[i] {
				i += tree.NodeID(size[i])
				continue
			}
			top = append(top, i)
			i++
		}
	}

	bu := make([]core.StateID, n)
	td := make([]core.StateID, n)

	// Phase 1: workers fold their subtrees bottom-up; ranges are
	// disjoint, so bu writes need no synchronisation. Each worker keeps
	// a private transition cache in front of the shared engine, so the
	// warm steady state takes no locks at all.
	runTasks(workers, tasks, func() func(task) {
		cache := newWorkerCache(s)
		return func(tk task) {
			for v := tk.root + tree.NodeID(tk.size) - 1; v >= tk.root; v-- {
				bu[v] = cache.buStep(t, bu, v)
			}
		}
	})
	// Then the top part sequentially (its children are either top nodes
	// or frontier roots, all computed).
	topCache := newWorkerCache(s)
	for i := len(top) - 1; i >= 0; i-- {
		v := top[i]
		bu[v] = topCache.buStep(t, bu, v)
	}

	// Phase 2: top part first (assigning the top-down states of frontier
	// roots), then workers descend into their subtrees.
	mark := func(wc *workerCache, v tree.NodeID) {
		if mask := wc.queryMask(td[v]); mask != 0 {
			for i := range res.queries {
				if mask&(1<<uint(i)) != 0 {
					res.sel[i][v] = true
				}
			}
		}
	}
	td[0] = s.RootTrueSet(bu[0])
	for _, v := range top {
		mark(topCache, v)
		if c := t.First(v); c != tree.None {
			td[c] = topCache.truePreds(td[v], bu[c], 1)
		}
		if c := t.Second(v); c != tree.None {
			td[c] = topCache.truePreds(td[v], bu[c], 2)
		}
	}
	runTasks(workers, tasks, func() func(task) {
		cache := newWorkerCache(s)
		return func(tk task) {
			for v := tk.root; v < tk.root+tree.NodeID(tk.size); v++ {
				mark(cache, v)
				if c := t.First(v); c != tree.None {
					td[c] = cache.truePreds(td[v], bu[c], 1)
				}
				if c := t.Second(v); c != tree.None {
					td[c] = cache.truePreds(td[v], bu[c], 2)
				}
			}
		}
	})
	return res, nil
}

// workerCache is a private, lock-free cache of automaton transitions in
// front of the shared engine. States are engine-global ids, so caching
// them locally is sound; the shared maps are only consulted on local
// misses.
type workerCache struct {
	s     *core.SharedEngine
	bu    map[buKey]core.StateID
	td    map[tdKey]core.StateID
	masks map[core.StateID]uint64
}

type buKey struct {
	left, right core.StateID
	sig         edb.NodeSig
}

type tdKey struct {
	parent, resid core.StateID
	k             uint8
}

func newWorkerCache(s *core.SharedEngine) *workerCache {
	return &workerCache{
		s:     s,
		bu:    map[buKey]core.StateID{},
		td:    map[tdKey]core.StateID{},
		masks: map[core.StateID]uint64{},
	}
}

// queryMask caches the query bitmask per top-down state.
func (wc *workerCache) queryMask(td core.StateID) uint64 {
	if m, ok := wc.masks[td]; ok {
		return m
	}
	m := wc.s.QueryMask(td)
	wc.masks[td] = m
	return m
}

// buStep computes one bottom-up transition.
func (wc *workerCache) buStep(t *tree.Tree, bu []core.StateID, v tree.NodeID) core.StateID {
	left, right := core.NoState, core.NoState
	if c := t.First(v); c != tree.None {
		left = bu[c]
	}
	if c := t.Second(v); c != tree.None {
		right = bu[c]
	}
	key := buKey{left, right, edb.SigOf(t, v)}
	if id, ok := wc.bu[key]; ok {
		return id
	}
	id := wc.s.ReachableStates(left, right, key.sig)
	wc.bu[key] = id
	return id
}

func (wc *workerCache) truePreds(parent, resid core.StateID, k int) core.StateID {
	key := tdKey{parent, resid, uint8(k)}
	if id, ok := wc.td[key]; ok {
		return id
	}
	id := wc.s.TruePreds(parent, resid, k)
	wc.td[key] = id
	return id
}

// runTasks fans the tasks out over the workers; makeWorker builds one
// closure (with private caches) per worker goroutine.
func runTasks(workers int, tasks []task, makeWorker func() func(task)) {
	if len(tasks) == 0 {
		return
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	ch := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := makeWorker()
			for tk := range ch {
				f(tk)
			}
		}()
	}
	for _, tk := range tasks {
		ch <- tk
	}
	close(ch)
	wg.Wait()
}
