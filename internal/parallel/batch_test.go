package parallel

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"arb/internal/core"
	"arb/internal/testutil"
	"arb/internal/tree"
)

// TestRunBatchMatchesSequentialBatch checks the worker-pool batch against
// core.RunBatchTree on random trees and random programs, including
// members with auxiliary masks.
func TestRunBatchMatchesSequentialBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ctx := context.Background()
	for iter := 0; iter < 10; iter++ {
		tr := testutil.RandomTree(rng, 600)
		aux := make([]uint16, tr.Len())
		for i := range aux {
			aux[i] = uint16(rng.Intn(4))
		}
		auxFn := func(v tree.NodeID) uint16 { return aux[v] }
		// Each program gets two engines: the sequential reference and the
		// parallel run must not share one (Share's contract).
		var seq, par []core.BatchMember
		for i := 0; i < 4; i++ {
			prog := testutil.RandomProgramParsed(rng, 3, 6)
			c, err := core.Compile(prog)
			if err != nil {
				t.Fatal(err)
			}
			var auxf func(tree.NodeID) uint16
			if i%2 == 1 {
				auxf = auxFn
			}
			seq = append(seq, core.BatchMember{E: core.NewEngine(c, tr.Names()), Aux: auxf, AuxInSlot: -1, AuxOutSlot: -1})
			par = append(par, core.BatchMember{E: core.NewEngine(c, tr.Names()), Aux: auxf, AuxInSlot: -1, AuxOutSlot: -1})
		}
		want, _, err := core.RunBatchTree(ctx, tr, seq, core.TreeBatchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := RunBatchContext(ctx, tr, 4, par, core.TreeBatchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for m := range seq {
			for _, q := range want[m].Queries() {
				if g, w := got[m].Count(q), want[m].Count(q); g != w {
					t.Fatalf("iter %d member %d: parallel batch selected %d nodes, sequential %d", iter, m, g, w)
				}
				for v := 0; v < tr.Len(); v++ {
					if g, w := got[m].Holds(q, tree.NodeID(v)), want[m].Holds(q, tree.NodeID(v)); g != w {
						t.Fatalf("iter %d member %d node %d: parallel %v, sequential %v", iter, m, v, g, w)
					}
				}
			}
		}
	}
}

// TestRunBatchCancel checks an already-cancelled context aborts the
// parallel batch with ctx.Err().
func TestRunBatchCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := testutil.RandomTree(rng, 400)
	prog := testutil.RandomProgramParsed(rng, 3, 6)
	c, err := core.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = RunBatchContext(ctx, tr, 3, []core.BatchMember{
		{E: core.NewEngine(c, tr.Names()), AuxInSlot: -1, AuxOutSlot: -1},
	}, core.TreeBatchOpts{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
}
