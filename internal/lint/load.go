package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	shimFiles  map[string]bool
	suppress   map[suppressKey]bool
	directives []directive
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir and returns its stdout.
func goList(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// ExportMap maps import paths to compiler export-data files, obtained
// from `go list -deps -export`. It is what lets the loader type-check
// against precompiled dependencies without any network or module
// downloads: the go tool builds (or reuses from the build cache) the
// export data for every dependency, including the standard library.
func ExportMap(dir string, patterns ...string) (map[string]string, error) {
	args := append([]string{"-deps", "-export", "-e", "-f",
		"{{if .Export}}{{.ImportPath}}={{.Export}}{{end}}"}, patterns...)
	out, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	m := make(map[string]string)
	for _, line := range strings.Split(string(out), "\n") {
		if path, file, ok := strings.Cut(strings.TrimSpace(line), "="); ok {
			m[path] = file
		}
	}
	return m, nil
}

// exportImporter returns a types.Importer resolving imports through an
// export map. All packages loaded against one importer share fset, so
// their type objects are position-compatible.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Load lists patterns in module directory dir (module root, typically),
// parses and type-checks each non-standard-library package from source,
// and returns them ready for analysis. Test files are not loaded: the
// analyzers enforce library-code invariants, and `*_test.go` is exempt
// from all of them by construction.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"-e", "-json=ImportPath,Dir,Name,GoFiles,Standard,Incomplete,Error"}, patterns...)
	out, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		listed = append(listed, p)
	}
	exports, err := ExportMap(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		var files []string
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := typecheck(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses the given files and type-checks them as one package
// with the given import path.
func typecheck(fset *token.FileSet, imp types.Importer, path, dir string, filenames []string) (*Package, error) {
	pkg := &Package{
		Path:      path,
		Dir:       dir,
		Fset:      fset,
		shimFiles: make(map[string]bool),
		suppress:  make(map[suppressKey]bool),
	}
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.parseDirectives(fset, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
