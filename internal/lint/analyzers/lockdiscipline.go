package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"arb/internal/lint"
)

// LockDiscipline enforces the `// guarded by: <mutex>` annotation
// convention. A struct field (or local variable) annotated
//
//	stats Stats // guarded by: mu
//
// may only be accessed where the named mutex is visibly held: the
// enclosing function (or a lexically enclosing one) calls
// <...>.mu.Lock() / RLock(), or the enclosing function's doc comment
// carries `arblint:holds mu`, declaring its contract that callers either
// hold the mutex or otherwise guarantee exclusive access (for example a
// single-owner marking phase). Guarded locals are the batch statsMu
// pattern: only closures must hold the lock — the declaring function
// owns the variable exclusively before the workers start and after they
// join.
//
// Mutexes are matched by name, not by instance: locking a.mu satisfies
// an access to b's mu-guarded field. That keeps the check simple and
// syntactic; the annotations' value is making the discipline explicit
// and catching the common regression (a new method touching engine state
// without taking the lock at all).
var LockDiscipline = &lint.Analyzer{
	Name: "lockdiscipline",
	Doc:  "fields annotated `guarded by: <mutex>` must be accessed with the mutex held or under an arblint:holds contract",
	Run:  runLockDiscipline,
}

var (
	guardedRE = regexp.MustCompile(`guarded by:?\s+([A-Za-z_]\w*)`)
	holdsRE   = regexp.MustCompile(`arblint:holds\s+([A-Za-z_]\w*)`)
)

// guardName extracts the mutex name from a field's or spec's comments.
func guardName(groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(g.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// annotationNames finds every mutex name re claims across the comment
// groups, for resolving annotations against the declared mutexes.
func annotationNames(re *regexp.Regexp, groups ...*ast.CommentGroup) []string {
	var out []string
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, m := range re.FindAllStringSubmatch(g.Text(), -1) {
			out = append(out, m[1])
		}
	}
	return out
}

// declaredMutexes collects the name of every mutex-typed variable or
// field defined in this package — the namespace `guarded by:` and
// `arblint:holds` annotations resolve against. Matching is by name
// package-wide (not per struct) because annotations legitimately point
// across structs: vstore's segment.refs is guarded by the *Store's* mu.
func declaredMutexes(pass *lint.Pass) map[string]bool {
	out := make(map[string]bool)
	for _, obj := range pass.Info.Defs {
		if v, ok := obj.(*types.Var); ok && isMutexType(v.Type(), pass.Pkg) {
			out[v.Name()] = true
		}
	}
	return out
}

// holdsNames extracts each held-mutex contract (arblint:holds) from a
// doc comment.
func holdsNames(doc *ast.CommentGroup) map[string]bool {
	if doc == nil {
		return nil
	}
	var out map[string]bool
	for _, m := range holdsRE.FindAllStringSubmatch(doc.Text(), -1) {
		if out == nil {
			out = make(map[string]bool)
		}
		out[m[1]] = true
	}
	return out
}

// lockedIn collects the mutex names visibly locked in the immediate body
// of fn (nested function literals excluded — their locks protect their
// own executions, not the enclosing frame's).
func lockedIn(fn ast.Node) map[string]bool {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return nil
	}
	names := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			names[x.Name] = true
		case *ast.SelectorExpr:
			names[x.Sel.Name] = true
		}
		return true
	})
	return names
}

func runLockDiscipline(pass *lint.Pass) error {
	// Guarded struct fields of this package (unexported fields make this
	// a same-package property).
	guardedField := make(map[types.Object]string)
	// Guarded locals, with the function that owns them exclusively.
	guardedLocal := make(map[types.Object]string)
	localOwner := make(map[types.Object]ast.Node)

	// An annotation naming a mutex nobody declared is a typo that would
	// otherwise pass silently: the name check never matches, so every
	// access looks unguarded-but-unannotated or guarded-by-nothing.
	declared := declaredMutexes(pass)
	checkName := func(names []string, pos token.Pos, kind string) {
		for _, name := range names {
			if !declared[name] {
				pass.Reportf(pos,
					"%s names mutex %q, but no mutex of that name is declared in this package",
					kind, name)
			}
		}
	}

	for _, f := range pass.Files {
		var funcs []ast.Node // enclosing function stack during collection
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				funcs = funcs[:len(funcs)-1]
				return true
			}
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkName(annotationNames(holdsRE, n.Doc), n.Name.Pos(), "arblint:holds contract")
			case *ast.StructType:
				for _, fld := range n.Fields.List {
					checkName(annotationNames(guardedRE, fld.Doc, fld.Comment), fld.Pos(), "guarded-by annotation")
					if m := guardName(fld.Doc, fld.Comment); m != "" {
						for _, name := range fld.Names {
							if obj := pass.Info.Defs[name]; obj != nil {
								guardedField[obj] = m
							}
						}
					}
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					m := guardName(vs.Doc, vs.Comment)
					usedDeclDoc := false
					if m == "" && len(n.Specs) == 1 {
						usedDeclDoc = true
						m = guardName(n.Doc)
					}
					var owner ast.Node
					for i := len(funcs) - 1; i >= 0; i-- {
						if funcs[i] != nil {
							owner = funcs[i]
							break
						}
					}
					if m == "" || owner == nil {
						// Package-level guarded vars are outside the local
						// discipline (and their docs may quote examples), so
						// their names are not resolved either.
						continue
					}
					if usedDeclDoc {
						checkName(annotationNames(guardedRE, n.Doc), vs.Pos(), "guarded-by annotation")
					} else {
						checkName(annotationNames(guardedRE, vs.Doc, vs.Comment), vs.Pos(), "guarded-by annotation")
					}
					for _, name := range vs.Names {
						if obj := pass.Info.Defs[name]; obj != nil {
							guardedLocal[obj] = m
							localOwner[obj] = owner
						}
					}
				}
			}
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, n)
			default:
				funcs = append(funcs, nil)
			}
			return true
		})
	}
	if len(guardedField) == 0 && len(guardedLocal) == 0 {
		return nil
	}

	for _, f := range pass.Files {
		type frame struct {
			fn    ast.Node // non-nil for function frames
			locks map[string]bool
			holds map[string]bool
		}
		var stack []frame
		held := func(name string) bool {
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].locks[name] || stack[i].holds[name] {
					return true
				}
			}
			return false
		}
		innermostFn := func() ast.Node {
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].fn != nil {
					return stack[i].fn
				}
			}
			return nil
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			fr := frame{}
			switch n := n.(type) {
			case *ast.FuncDecl:
				fr = frame{fn: n, locks: lockedIn(n), holds: holdsNames(n.Doc)}
			case *ast.FuncLit:
				fr = frame{fn: n, locks: lockedIn(n)}
			case *ast.SelectorExpr:
				if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if m, ok := guardedField[sel.Obj()]; ok && !held(m) {
						pass.Reportf(n.Sel.Pos(),
							"%s is guarded by %s: lock it here or declare the contract with arblint:holds %s",
							n.Sel.Name, m, m)
					}
				}
			case *ast.Ident:
				obj := pass.Info.Uses[n]
				if m, ok := guardedLocal[obj]; ok && innermostFn() != localOwner[obj] && !held(m) {
					pass.Reportf(n.Pos(),
						"%s is guarded by %s: closures sharing it with the owning function must hold the lock", n.Name, m)
				}
			}
			stack = append(stack, fr)
			return true
		})
	}
	return nil
}
