package analyzers

import (
	"go/ast"
	"go/types"

	"arb/internal/lint"
)

// NoShims keeps the deprecated pre-context, pre-Session entry points
// from creeping back into library code, examples, or commands. The shims
// exist only so external users of earlier releases keep compiling; every
// in-repo caller must use the context-threaded, reentrant API. Uses are
// resolved through the type checker, so an unrelated method that happens
// to be called Run (e.g. the DFA simulator's) never trips the rule.
//
// Allowed exceptions: *_test.go files (not analyzed at all) and the shim
// definition files themselves, marked //arblint:shims.
var NoShims = &lint.Analyzer{
	Name: "noshims",
	Doc:  "deprecated shim entry points are forbidden outside tests and the shim files themselves",
	Run:  runNoShims,
}

// shimReplacements maps each deprecated entry point to the API that
// replaced it.
var shimReplacements = map[string]string{
	"arb/internal/core.Engine.Run":             "Engine.RunContext",
	"arb/internal/core.Engine.RunDisk":         "Engine.RunDiskContext",
	"arb/internal/core.Engine.RunDiskParallel": "Engine.RunDiskParallelContext",
	"arb/internal/xpath.Query.Eval":            "Query.Prepare + Prepared.ExecTree",
	"arb/internal/xpath.Query.EvalDisk":        "Query.Prepare + Prepared.ExecDisk",
	"arb/internal/parallel.Run":                "parallel.RunContext",
	"arb.RunParallel":                          "Session.Prepare + PreparedQuery.Exec",
	"arb.NewEngine":                            "arb.NewSession",
	"arb.PreparedQuery.Count":                  "PreparedQuery.Exec + Result.Count",
}

func runNoShims(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if pass.IsShimFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			key := funcKey(fn)
			if repl, ok := shimReplacements[key]; ok {
				pass.Reportf(id.Pos(), "%s is a deprecated shim: use %s", key, repl)
			}
			return true
		})
	}
	return nil
}
