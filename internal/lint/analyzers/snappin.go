package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"arb/internal/lint"
)

// SnapPin enforces the MVCC pin discipline: every snapshot pin — a
// *vstore.Snapshot from Store.Snapshot(), or the release closure from
// Session.acquire() — must be Released on every path through the
// acquiring function, including error and cancellation paths. A leaked
// pin means segment GC never fires: superseded patch segments
// accumulate on disk for the life of the process, invisibly.
//
// The analysis is CFG-based and interprocedural: a pin is satisfied on
// a path by a (possibly deferred) Release/call, by returning it to the
// caller (ownership transfer), by passing it to a module function whose
// own body provably releases that parameter on all paths, or by storing
// it into a struct field that declares ownership with an
//
//	snap *vstore.Snapshot //arblint:owns -- released in Close
//
// annotation. Storing a pin into an unannotated field, discarding one,
// or reaching function exit on some path without releasing is reported.
//
// Functions whose doc comment carries `arblint:acquires` are treated as
// pin producers too: their Release-bearing (or func-typed) result must
// be handled by every caller, which is how Session.acquire and fixture
// producers join the discipline without hard-coding.
var SnapPin = &lint.Analyzer{
	Name: "snappin",
	Doc:  "snapshot pins (vstore.Snapshot, Session.acquire) must be Released on every path",
	Run:  runSnapPin,
}

// pinProducers maps known producers to the result index holding the
// pin. Producers outside this table are discovered through the
// arblint:acquires doc directive.
var pinProducers = map[string]int{
	"arb/internal/vstore.Store.Snapshot": 0,
	"arb.Session.acquire":                3,
}

var (
	acquiresRE = regexp.MustCompile(`arblint:acquires\b`)
	ownsRE     = regexp.MustCompile(`arblint:owns\b`)
)

// snapMemo is the analyzer's module-wide summary store, living in
// Mod.Memo("snappin"):
//
//	"owns"              -> map[string]bool   (pkgpath.Field owning fields)
//	"acquires:" + key   -> int               (producer result index, -1 none)
//	"releases:" + key#i -> bool              (param i released on all paths)

// ownsFields collects, once per module, the set of struct fields
// declaring pin ownership, keyed pkgpath.FieldName.
func ownsFields(pass *lint.Pass) map[string]bool {
	memo := pass.Mod.Memo("snappin")
	if m, ok := memo["owns"].(map[string]bool); ok {
		return m
	}
	m := make(map[string]bool)
	for _, pkg := range pass.Mod.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, fld := range st.Fields.List {
					if !commentMatches(ownsRE, fld.Doc, fld.Comment) {
						continue
					}
					for _, name := range fld.Names {
						m[pkg.Types.Path()+"."+name.Name] = true
					}
				}
				return true
			})
		}
	}
	memo["owns"] = m
	return m
}

// commentMatches scans raw comment lines: CommentGroup.Text() strips
// directive-style comments (//arblint:...), which are exactly what we
// are looking for.
func commentMatches(re *regexp.Regexp, groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if re.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}

// producerIndex reports whether fn produces a pin and at which result
// index (-1: not a producer). Beyond the hard-coded table, a module
// function whose doc carries arblint:acquires produces a pin at its
// first Release-bearing or func-typed result.
func producerIndex(pass *lint.Pass, fn *types.Func) int {
	key := lint.FuncKey(fn)
	if i, ok := pinProducers[key]; ok {
		return i
	}
	memo := pass.Mod.Memo("snappin")
	if v, ok := memo["acquires:"+key].(int); ok {
		return v
	}
	idx := -1
	if fi := pass.Mod.Decl(fn); fi != nil && commentMatches(acquiresRE, fi.Decl.Doc) {
		if sig, ok := fn.Type().(*types.Signature); ok {
			for i := 0; i < sig.Results().Len(); i++ {
				if isPinType(sig.Results().At(i).Type()) {
					idx = i
					break
				}
			}
		}
	}
	memo["acquires:"+key] = idx
	return idx
}

// isPinType reports whether t is a releasable pin: a type with a
// Release method, or a plain func() release closure.
func isPinType(t types.Type) bool {
	if sig, ok := types.Unalias(t).Underlying().(*types.Signature); ok {
		return sig.Params().Len() == 0 && sig.Results().Len() == 0
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Release")
	_, isFunc := obj.(*types.Func)
	return isFunc
}

func runSnapPin(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				snapCheckFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// snapCheckFunc checks one function body (closures are checked within
// the frame that creates their pins: a pin made inside a FuncLit is
// analyzed against that literal's own CFG).
func snapCheckFunc(pass *lint.Pass, body *ast.BlockStmt) {
	// Find pin-producing calls belonging to this frame (not nested
	// literals — those get their own recursive check).
	type site struct {
		call *ast.CallExpr
		fn   *types.Func
		idx  int
	}
	var sites []site
	var stack []ast.Node
	parents := make(map[*ast.CallExpr][]ast.Node)
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			snapCheckFunc(pass, lit.Body)
			return false // no f(nil) follows a pruned subtree: do not push
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(pass.Info, call); fn != nil {
				if idx := producerIndex(pass, fn); idx >= 0 {
					sites = append(sites, site{call, fn, idx})
					parents[call] = append([]ast.Node(nil), stack...)
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	if len(sites) == 0 {
		return
	}

	var cfg *lint.CFG
	for _, s := range sites {
		pin, verdict := pinObject(pass, s.call, s.idx, parents[s.call])
		switch verdict {
		case pinDiscarded:
			pass.Reportf(s.call.Pos(),
				"%s returns a pin that is discarded: Release it on every path (or hand it to an owner)",
				lint.FuncKey(s.fn))
			continue
		case pinUnownedStore:
			pass.Reportf(s.call.Pos(),
				"pin from %s is stored into a field with no arblint:owns contract: nobody is accountable for releasing it",
				lint.FuncKey(s.fn))
			continue
		}
		if pin == nil {
			continue // consumed inline by a handled form (returned, handed off)
		}
		if cfg == nil {
			cfg = lint.BuildCFG(body)
		}
		blk, i := cfg.BlockOf(s.call)
		if blk == nil {
			continue
		}
		stop := func(n ast.Node) bool { return pinHandled(pass, n, pin) }
		if cfg.ReachesExit(blk, i+1, stop) {
			pass.Reportf(s.call.Pos(),
				"pin from %s may not be Released on this function's error or early-return paths: defer its release right after acquiring",
				lint.FuncKey(s.fn))
		}
	}
}

// Verdicts for how a producer call's pin is bound at the call site.
const (
	pinBound        = iota // bound to a variable: run the CFG leak check
	pinConsumed            // consumed by an ownership-transferring form
	pinDiscarded           // visibly dropped (blank assign, bare call)
	pinUnownedStore        // stored into a field lacking arblint:owns
)

// pinObject resolves the variable a producer call binds its pin to
// (verdict pinBound), or classifies the call-site consumption when no
// variable carries the pin.
func pinObject(pass *lint.Pass, call *ast.CallExpr, idx int, stack []ast.Node) (types.Object, int) {
	var parent ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		parent = stack[i]
		break
	}
	switch p := parent.(type) {
	case *ast.AssignStmt:
		// a, b, c := call()  (tuple) or  x := call()  (single result).
		var lhs ast.Expr
		if len(p.Rhs) == 1 && len(p.Lhs) > idx {
			lhs = p.Lhs[idx]
		} else {
			for i, r := range p.Rhs {
				if ast.Unparen(r) == ast.Expr(call) && i < len(p.Lhs) {
					lhs = p.Lhs[i]
				}
			}
		}
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				return nil, pinDiscarded
			}
			if obj := pass.Info.Defs[lhs]; obj != nil {
				return obj, pinBound
			}
			if obj := pass.Info.Uses[lhs]; obj != nil {
				return obj, pinBound
			}
			return nil, pinConsumed
		case *ast.SelectorExpr:
			if ownsStore(pass, lhs, ownsFields(pass)) {
				return nil, pinConsumed
			}
			return nil, pinUnownedStore
		}
		return nil, pinConsumed
	case *ast.ValueSpec:
		if len(p.Names) > idx {
			if p.Names[idx].Name == "_" {
				return nil, pinDiscarded
			}
			return pass.Info.Defs[p.Names[idx]], pinBound
		}
	case *ast.ReturnStmt:
		return nil, pinConsumed // ownership to the caller
	case *ast.CallExpr:
		return nil, pinConsumed // handed straight onward
	case *ast.ExprStmt:
		return nil, pinDiscarded // bare call: the pin evaporates
	}
	return nil, pinConsumed
}

// pinHandled reports whether CFG node n releases pin or transfers its
// ownership: a call of the pin (release closures) or of its Release
// method, the same under a defer (including deferred closures), a
// return mentioning it, an aliasing assignment, a store into an
// arblint:owns field, a channel send, or a pass to a module function
// that provably releases that parameter.
func pinHandled(pass *lint.Pass, n ast.Node, pin types.Object) bool {
	owns := ownsFields(pass)
	handled := false
	var stack []ast.Node
	ast.Inspect(n, func(m ast.Node) bool {
		if handled {
			return false
		}
		if m == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == pin {
			if pinUseHandled(pass, id, stack, owns) {
				handled = true
			}
		}
		stack = append(stack, m)
		return true
	})
	return handled
}

// pinUseHandled classifies one use of the pin given its ancestor stack
// within the CFG node (innermost last).
func pinUseHandled(pass *lint.Pass, id *ast.Ident, stack []ast.Node, owns map[string]bool) bool {
	var parent ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		parent = stack[i]
		break
	}
	for _, anc := range stack {
		if _, ok := anc.(*ast.ReturnStmt); ok {
			return true // returned (possibly wrapped): caller owns it now
		}
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// snap.Release / snap.Release() — also as a deferred call or a
		// method value being registered/returned.
		if p.X == ast.Expr(id) && p.Sel.Name == "Release" {
			return true
		}
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == ast.Expr(id) {
			return true // release() — calling the closure is the release
		}
		for i, arg := range p.Args {
			if ast.Unparen(arg) != ast.Expr(id) {
				continue
			}
			fn := calleeFunc(pass.Info, p)
			if fn == nil {
				return true // dynamic callee: assume it takes ownership
			}
			return releasesParam(pass, fn, i)
		}
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) != ast.Expr(id) {
				continue
			}
			if i < len(p.Lhs) {
				switch lhs := ast.Unparen(p.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					return ownsStore(pass, lhs, owns)
				case *ast.Ident:
					if lhs.Name == "_" {
						return false // `_ = pin` keeps nothing alive
					}
				}
			}
			return true // aliased to a new variable; the alias owns it
		}
	case *ast.KeyValueExpr:
		if p.Value == ast.Expr(id) {
			if key, ok := p.Key.(*ast.Ident); ok {
				return ownsCompositeField(pass, stack, key.Name, owns)
			}
		}
		return true
	case *ast.CompositeLit:
		// Positional literal field: resolve by index against the struct.
		if st, ok := structOf(pass.Info.TypeOf(p)); ok {
			for i, el := range p.Elts {
				if ast.Unparen(el) == ast.Expr(id) && i < st.NumFields() {
					fld := st.Field(i)
					return fld.Pkg() != nil && owns[fld.Pkg().Path()+"."+fld.Name()]
				}
			}
		}
		return false
	case *ast.SendStmt:
		return true // handed to whoever drains the channel
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

// ownsStore reports whether the assignment target sel is a struct field
// annotated arblint:owns.
func ownsStore(pass *lint.Pass, sel *ast.SelectorExpr, owns map[string]bool) bool {
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		obj := s.Obj()
		return obj.Pkg() != nil && owns[obj.Pkg().Path()+"."+obj.Name()]
	}
	return false
}

// ownsCompositeField resolves a keyed composite-literal field name
// against the literal's struct type.
func ownsCompositeField(pass *lint.Pass, stack []ast.Node, field string, owns map[string]bool) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if cl, ok := stack[i].(*ast.CompositeLit); ok {
			if st, ok := structOf(pass.Info.TypeOf(cl)); ok {
				for j := 0; j < st.NumFields(); j++ {
					if st.Field(j).Name() == field {
						fld := st.Field(j)
						return fld.Pkg() != nil && owns[fld.Pkg().Path()+"."+fld.Name()]
					}
				}
			}
			return false
		}
	}
	return false
}

func structOf(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	if ptr, ok := types.Unalias(t).Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := types.Unalias(t).Underlying().(*types.Struct)
	return st, ok
}

// releasesParam is the interprocedural summary: does fn release (or
// transfer onward) its i-th parameter on every path? Cycles resolve
// optimistically — mutual recursion that releases in one participant
// counts for both.
func releasesParam(pass *lint.Pass, fn *types.Func, i int) bool {
	key := lint.FuncKey(fn)
	memoKey := fmt.Sprintf("releases:%s#%d", key, i)
	memo := pass.Mod.Memo("snappin")
	if v, ok := memo[memoKey].(bool); ok {
		return v
	}
	fi := pass.Mod.Decl(fn)
	if fi == nil {
		// Outside the module (or an interface method): assume ownership
		// transfers — the analyzers stay low-noise at module edges.
		memo[memoKey] = true
		return true
	}
	memo[memoKey] = true // optimistic in-progress value for cycles
	param := paramObject(fi, i)
	result := false
	if param != nil {
		fpass := &lint.Pass{
			Analyzer: pass.Analyzer,
			Fset:     fi.Pkg.Fset,
			Files:    fi.Pkg.Files,
			Pkg:      fi.Pkg.Types,
			Info:     fi.Pkg.Info,
			Mod:      pass.Mod,
		}
		cfg := lint.BuildCFG(fi.Decl.Body)
		stop := func(n ast.Node) bool { return pinHandled(fpass, n, param) }
		result = !cfg.ReachesExit(cfg.Entry, 0, stop)
	}
	memo[memoKey] = result
	return result
}

// paramObject resolves the i-th (flattened) parameter's object of a
// declared function.
func paramObject(fi *lint.FuncInfo, i int) types.Object {
	if fi.Decl.Type.Params == nil {
		return nil
	}
	idx := 0
	for _, field := range fi.Decl.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			idx++ // unnamed parameter cannot be released
			continue
		}
		for _, name := range names {
			if idx == i {
				return fi.Pkg.Info.Defs[name]
			}
			idx++
		}
	}
	return nil
}
