package analyzers_test

import (
	"testing"

	"arb/internal/lint"
	"arb/internal/lint/analyzers"
)

// Each fixture package is typechecked under a synthetic import path that
// puts it in the analyzer's scope, then the analyzer's diagnostics are
// matched exactly — both directions — against the // want markers.

func TestCtxflowFixture(t *testing.T) {
	lint.RunFixture(t, analyzers.Ctxflow, "testdata/ctxflow", "arb/internal/core/ctxfixture")
}

func TestLockDisciplineFixture(t *testing.T) {
	lint.RunFixture(t, analyzers.LockDiscipline, "testdata/lockdiscipline", "arb/internal/core/lockfixture")
}

func TestTmpCleanupFixture(t *testing.T) {
	lint.RunFixture(t, analyzers.TmpCleanup, "testdata/tmpcleanup", "arb/internal/core/tmpfixture")
}

func TestNoShimsFixture(t *testing.T) {
	lint.RunFixture(t, analyzers.NoShims, "testdata/noshims", "arb/internal/lintfixture")
}

func TestCloseCheckFixture(t *testing.T) {
	lint.RunFixture(t, analyzers.CloseCheck, "testdata/closecheck", "arb/internal/core/closefixture")
}

func TestSnapPinFixture(t *testing.T) {
	lint.RunFixture(t, analyzers.SnapPin, "testdata/snappin", "arb/internal/vstore/snapfixture")
}

func TestAtomicMixFixture(t *testing.T) {
	lint.RunFixture(t, analyzers.AtomicMix, "testdata/atomicmix", "arb/internal/server/atomfixture")
}

func TestGoroLeakFixture(t *testing.T) {
	lint.RunFixture(t, analyzers.GoroLeak, "testdata/goroleak", "arb/internal/parallel/gorofixture")
}

func TestLockOrderFixture(t *testing.T) {
	lint.RunFixture(t, analyzers.LockOrder, "testdata/lockorder", "arb/internal/vstore/lockfixture")
}
