package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"arb/internal/lint"
)

// LockOrder records, across the whole module, the order in which the
// declared mutexes (the ones lockdiscipline's `guarded by:` /
// `arblint:holds` annotations and Lock/Unlock calls name) are acquired,
// and flags any pair taken in both orders — the classic AB/BA deadlock
// shape that no single run of the race detector reliably provokes.
//
// Identity is (package path, mutex name), matching lockdiscipline's
// name-based model; pairs with the same qualified name are skipped
// (they may be distinct instances, e.g. per-Result vs per-Engine `mu`
// in the same package). Held sets propagate interprocedurally: calling
// a module function while holding A charges every mutex that callee
// may transitively acquire as ordered after A. A `defer mu.Unlock()`
// holds to function exit, so acquisitions after it still see the lock
// held — which is exactly how the code behaves.
//
// Edges accumulate in the module memo as packages are analyzed; an
// inversion is reported once, at the edge that completes the cycle,
// citing where the opposite order was first seen.
var LockOrder = &lint.Analyzer{
	Name: "lockorder",
	Doc:  "mutex pairs must be acquired in one global order (AB/BA inversions deadlock)",
	Run:  runLockOrder,
}

// lockEdge is "a was held while b was acquired".
type lockEdge struct{ a, b string }

func runLockOrder(pass *lint.Pass) error {
	memo := pass.Mod.Memo("lockorder")
	edges, _ := memo["edges"].(map[lockEdge]token.Position)
	if edges == nil {
		edges = make(map[lockEdge]token.Position)
		memo["edges"] = edges
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var held []string
			for h := range holdsNames(fd.Doc) {
				held = append(held, qualifyMutex(pass, nil, h))
			}
			sort.Strings(held)
			lockOrderWalk(pass, fd.Body, held, edges, make(map[string]bool))
		}
	}
	return nil
}

// lockOrderWalk tracks the held set through one body in syntactic
// order, recording ordering edges at each acquisition. Nested function
// literals start from an empty held set only when deferred/asynchronous
// acquisition cannot be assumed — here we conservatively analyze them
// with the current held set, since immediately-invoked and
// synchronously-called literals dominate in this codebase.
func lockOrderWalk(pass *lint.Pass, body ast.Node, held []string, edges map[lockEdge]token.Position, seen map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock keeps the mutex held for the rest of the
			// function; a deferred Lock (rare) is not an acquisition here.
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if name := mutexName(pass, sel.X); name != "" {
						q := qualifyMutex(pass, sel.X, name)
						recordAcquire(pass, n.Pos(), q, held, edges)
						held = append(held, q)
						return true
					}
				case "Unlock", "RUnlock":
					if name := mutexName(pass, sel.X); name != "" {
						q := qualifyMutex(pass, sel.X, name)
						for i := len(held) - 1; i >= 0; i-- {
							if held[i] == q {
								held = append(held[:i:i], held[i+1:]...)
								break
							}
						}
						return true
					}
				}
			}
			// Interprocedural: everything the callee may acquire is
			// ordered after what we hold now.
			if fn := calleeFunc(pass.Info, n); fn != nil {
				for _, m := range mayAcquire(pass, fn, seen) {
					recordAcquire(pass, n.Pos(), m, held, edges)
				}
			}
		}
		return true
	})
}

// recordAcquire adds held→acquired edges and reports an inversion the
// moment the reverse edge already exists.
func recordAcquire(pass *lint.Pass, pos token.Pos, acquired string, held []string, edges map[lockEdge]token.Position) {
	for _, h := range held {
		if h == acquired {
			continue // same qualified name: possibly distinct instances
		}
		e := lockEdge{h, acquired}
		if _, ok := edges[e]; !ok {
			edges[e] = pass.Fset.Position(pos)
		}
		if rev, ok := edges[lockEdge{acquired, h}]; ok {
			pass.Reportf(pos,
				"lock order inversion: %s acquired while holding %s, but the opposite order is taken at %s",
				acquired, h, rev)
		}
	}
}

// mutexName extracts the receiver mutex's name from the expression a
// Lock call hangs off: mu, s.mu, e.res.mu → "mu". Non-mutex receivers
// (e.g. a type with its own Lock method) are filtered by type.
func mutexName(pass *lint.Pass, x ast.Expr) string {
	var id *ast.Ident
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	if t := pass.Info.TypeOf(x); t == nil || !isMutexType(t, pass.Pkg) {
		return ""
	}
	return id.Name
}

// qualifyMutex builds the module-wide identity of a mutex: the path of
// the package declaring the field/var (falling back to the current
// package), dot, its name.
func qualifyMutex(pass *lint.Pass, x ast.Expr, name string) string {
	pkgPath := pass.Pkg.Path()
	if x != nil {
		if obj := referencedObject(pass.Info, x); obj != nil && obj.Pkg() != nil {
			pkgPath = obj.Pkg().Path()
		}
	}
	return pkgPath + "." + name
}

// isMutexType reports whether t (or *t) has a Lock method — sync.Mutex,
// sync.RWMutex, and locker-shaped named types.
func isMutexType(t types.Type, pkg *types.Package) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, "Lock")
	_, ok := obj.(*types.Func)
	return ok
}

// mayAcquire is the transitive summary of qualified mutex names fn may
// lock, memoized module-wide; cycles contribute what was discovered
// before re-entry.
func mayAcquire(pass *lint.Pass, fn *types.Func, seen map[string]bool) []string {
	key := lint.FuncKey(fn)
	memo := pass.Mod.Memo("lockorder")
	if v, ok := memo["may:"+key].([]string); ok {
		return v
	}
	if seen[key] {
		return nil
	}
	seen[key] = true
	fi := pass.Mod.Decl(fn)
	if fi == nil {
		return nil // outside the module
	}
	fpass := &lint.Pass{
		Analyzer: pass.Analyzer,
		Fset:     fi.Pkg.Fset,
		Files:    fi.Pkg.Files,
		Pkg:      fi.Pkg.Types,
		Info:     fi.Pkg.Info,
		Mod:      pass.Mod,
	}
	set := make(map[string]bool)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				if name := mutexName(fpass, sel.X); name != "" {
					set[qualifyMutex(fpass, sel.X, name)] = true
					return true
				}
			}
		}
		if callee := calleeFunc(fi.Pkg.Info, call); callee != nil {
			for _, m := range mayAcquire(fpass, callee, seen) {
				set[m] = true
			}
		}
		return true
	})
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	memo["may:"+key] = out
	return out
}
