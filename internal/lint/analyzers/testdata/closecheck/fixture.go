// Package closefixture exercises the closecheck analyzer: loaded under an
// arb/internal/... import path so the library-scope rule applies.
package closefixture

import (
	"os"

	"arb/internal/storage"
)

// leaksFile opens a file and only reads it; nothing ever closes it.
func leaksFile(path string) (int64, error) {
	f, err := os.Open(path) // want "os.Open result is never closed"
	if err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// closesFile is the clean counterpart.
func closesFile(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// leaksReader abandons a pooled backward reader: its buffers never
// return to the pool.
func leaksReader(f *os.File, end int64) error {
	br, err := storage.NewBackwardReader(f, end, 4) // want "storage.NewBackwardReader result is never closed"
	if err != nil {
		return err
	}
	_, err = br.Next()
	return err
}

// releasesReader hands the buffers back.
func releasesReader(f *os.File, end int64) error {
	br, err := storage.NewBackwardReader(f, end, 4)
	if err != nil {
		return err
	}
	defer br.Release()
	_, err = br.Next()
	return err
}

// returnsReader transfers ownership to the caller.
func returnsReader(f *os.File, end int64) (*storage.BackwardReader, error) {
	return storage.NewBackwardReader(f, end, 4)
}

// handsOff passes the resource to another function, which owns it now.
func handsOff(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	consume(f)
	return nil
}

func consume(f *os.File) { f.Close() }

// storesReader parks the resource in a struct; the struct's owner closes.
type scanState struct {
	br *storage.BackwardReader
}

func storesReader(f *os.File, end int64) (*scanState, error) {
	br, err := storage.NewBackwardReader(f, end, 4)
	if err != nil {
		return nil, err
	}
	return &scanState{br: br}, nil
}
