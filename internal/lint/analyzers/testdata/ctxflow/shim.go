//arblint:shims

package ctxfixture

import "context"

// DeprecatedRun imitates a pre-context shim: minting Background here is
// the whole point of the file, and the //arblint:shims marker exempts it.
func DeprecatedRun() error {
	return scan(context.Background(), 7)
}
