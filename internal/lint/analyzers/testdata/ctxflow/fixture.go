// Package ctxfixture exercises the ctxflow analyzer: the fixture is
// loaded under an arb/internal/core/... import path, so the engine-scope
// rules apply.
package ctxfixture

import "context"

// scan stands in for a Fold*/Scan* loop that takes the caller's context.
func scan(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

// mintsBackground detaches the scan from the caller's cancellation.
func mintsBackground() error {
	return scan(context.Background(), 1) // want "context.Background in engine code detaches the scan"
}

// mintsTODO is the same violation spelled TODO.
func mintsTODO() error {
	return scan(context.TODO(), 1) // want "context.TODO in engine code detaches the scan"
}

// dropsIncoming has a context and drops it on the floor.
func dropsIncoming(ctx context.Context) error {
	return scan(nil, 2) // want "nil context passed to scan"
}

// dropsInClosure inherits ctx availability lexically.
func dropsInClosure(ctx context.Context) func() error {
	return func() error {
		return scan(nil, 3) // want "nil context passed to scan"
	}
}

// forwards is the clean counter-example: the incoming ctx is threaded.
func forwards(ctx context.Context) error {
	if err := scan(ctx, 4); err != nil {
		return err
	}
	return func() error { return scan(ctx, 5) }()
}

// contextless has no context to forward; passing nil here is the
// documented convention for creation paths and must not be reported.
func contextless() error {
	return scan(nil, 6)
}
