// Package atomfix exercises atomicmix: once any access to a variable
// or field goes through sync/atomic, every access must.
package atomfix

import "sync/atomic"

type counter struct {
	hits int64 // accessed atomically everywhere below
	cold int64 // never atomic: plain access is fine
	wide atomic.Int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counter) mixedRead() int64 {
	return c.hits // want "accessed with sync/atomic"
}

func (c *counter) mixedWrite() {
	c.hits = 0 // want "accessed with sync/atomic"
}

func (c *counter) plainOnly() int64 {
	c.cold++
	return c.cold
}

func (c *counter) typed() int64 {
	// Typed atomics are immune by construction: methods are the only
	// way in, so no mixing is possible.
	c.wide.Add(1)
	return c.wide.Load()
}

var total uint64

func addTotal() {
	atomic.AddUint64(&total, 1)
}

func swapTotal(n uint64) uint64 {
	return atomic.SwapUint64(&total, n)
}

func mixedTotal() uint64 {
	total++ // want "accessed with sync/atomic"
	return atomic.LoadUint64(&total)
}
