// Package lockfixture exercises the lockdiscipline analyzer: guarded
// struct fields, guarded locals shared with closures, and the
// arblint:holds contract.
package lockfixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int64 // guarded by: mu
}

// addLocked is the clean case: the mutex is visibly held.
func (c *counter) addLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// readRLocked holds the read lock (RLock also satisfies the guard).
func (c *counter) readRLocked(mu *sync.RWMutex) int64 {
	mu.RLock()
	defer mu.RUnlock()
	return c.n
}

// addUnlocked touches the guarded field with no lock in sight.
func (c *counter) addUnlocked() {
	c.n++ // want "n is guarded by mu"
}

// snapshot declares the exclusive-access contract instead of locking.
//
// arblint:holds mu
func (c *counter) snapshot() int64 {
	return c.n
}

// underContract may call into guarded state because its own doc carries
// the contract; the nested closure inherits it lexically.
//
// arblint:holds mu
func (c *counter) underContract() int64 {
	f := func() int64 { return c.n }
	return f()
}

// typoed annotations must not pass silently: the named mutex has to
// exist somewhere in the package.
type typoed struct {
	mux sync.Mutex
	// guarded by: mutex
	n int // want "names mutex \"mutex\""
}

// contractTypo declares it holds a mutex nobody declared.
//
// arblint:holds muu
func (t *typoed) contractTypo() int { // want "names mutex \"muu\""
	return 0
}

// sharedLocal is the statsMu pattern: the declaring function owns the
// variable before and after the workers; only closures must lock.
func sharedLocal() int64 {
	var mu sync.Mutex
	var total int64 // guarded by: mu
	done := make(chan struct{})
	go func() {
		mu.Lock()
		total++ // closure holds the lock: clean
		mu.Unlock()
		close(done)
	}()
	go func() {
		total++ // want "total is guarded by mu"
	}()
	<-done
	return total // declaring function reads after the join: clean
}
