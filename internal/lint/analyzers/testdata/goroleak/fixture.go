// Package gorofix exercises goroleak: spawned goroutines must provably
// terminate — bounded loops, channel ranges (ended by the spawner's
// close), or infinite loops with a cancellation-bound exit.
package gorofix

import "context"

func bounded() {
	go func() {
		for i := 0; i < 64; i++ {
			_ = i
		}
	}()
}

func worker(ch chan int) {
	go func() {
		// RunPool shape: the range ends when the spawner closes ch.
		for v := range ch {
			_ = v
		}
	}()
}

func cancellable(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

func watcher(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
}

func spin() {
	for {
	}
}

func spawnSpin() {
	go spin() // want "may never terminate"
}

func busyLoop() {
	go func() { // want "may never terminate"
		for {
			step()
		}
	}()
}

func unboundCounter() {
	go func() { // want "may never terminate"
		// Exits exist, but none is fed by a cancellation signal: the
		// spawner has no way to stop this goroutine.
		n := 0
		for {
			n++
			if n > 1<<20 {
				return
			}
		}
	}()
}

func viaCallee() {
	go func() { // want "may never terminate"
		step()
		spin() // the leak hides one call deep
	}()
}

func decode() {
	// Parser shape: an infinite loop whose exits are data-driven. Fine
	// for a synchronous callee — the goroutine's own top level is where
	// the cancellation requirement applies.
	n := 0
	for {
		n++
		if n == 3 {
			break
		}
	}
}

func spawnDecoder() {
	go func() {
		decode()
	}()
}

func step() {}
