// Package snapfix exercises snappin: pins must be Released on every
// path, transferred to the caller, handed to a releasing helper, or
// stored under an arblint:owns contract. The fixture declares its own
// producers through arblint:acquires and also drives the real
// vstore.Store.Snapshot producer.
package snapfix

import (
	"errors"

	"arb/internal/vstore"
)

// pin is a releasable resource handle, shaped like vstore.Snapshot.
type pin struct{ released bool }

func (p *pin) Release() { p.released = true }

// acquire mints a pin the caller must balance.
//
//arblint:acquires
func acquire() *pin { return &pin{} }

// acquirePair returns data plus a release closure, shaped like
// Session.acquire.
//
//arblint:acquires
func acquirePair() (int, func()) { return 1, func() {} }

func deferred() {
	p := acquire()
	defer p.Release()
}

func closurePin() {
	n, release := acquirePair()
	defer release()
	_ = n
}

func transferred() *pin {
	return acquire() // the caller owns it now
}

func boundThenReturned() *pin {
	p := acquire()
	p.released = false
	return p
}

func leakOnError(fail bool) error {
	p := acquire() // want "may not be Released"
	if fail {
		return errors.New("early exit skips the release")
	}
	p.Release()
	return nil
}

func bareCall() {
	acquire() // want "discarded"
}

func blankAssign() {
	_, _ = acquirePair() // want "discarded"
}

func releaseHelper(p *pin) { p.Release() }

func viaHelper() {
	p := acquire()
	releaseHelper(p)
}

func dropHelper(p *pin) { _ = p }

func viaDropHelper() {
	p := acquire() // want "may not be Released"
	dropHelper(p)
}

// holder keeps its pin alive deliberately and releases it in close.
// (The field name differs from leaky's: ownership is per field.)
type holder struct {
	held *pin //arblint:owns -- released in close
}

func (h *holder) close() {
	if h.held != nil {
		h.held.Release()
	}
}

func stashOwned(h *holder) {
	h.held = acquire()
}

// leaky has no ownership contract on its pin field.
type leaky struct{ p *pin }

func stashUnowned(l *leaky) {
	l.p = acquire() // want "no arblint:owns contract"
}

func realStore(st *vstore.Store) {
	snap := st.Snapshot()
	defer snap.Release()
}

func realStoreLeak(st *vstore.Store, fail bool) error {
	snap := st.Snapshot() // want "may not be Released"
	if fail {
		return errors.New("pin leaks: segment GC never fires")
	}
	snap.Release()
	return nil
}
