// Package lockfix exercises lockorder: every pair of declared mutexes
// must be acquired in one global order, including acquisitions hidden
// behind helper calls and held sets seeded by arblint:holds contracts.
package lockfix

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

// ab establishes the canonical order: a before b.
func (p *pair) ab() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

// abDeferred holds a to function exit; b nests inside — same order.
func (p *pair) abDeferred() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	p.b.Unlock()
}

// ba inverts it.
func (p *pair) ba() {
	p.b.Lock()
	p.a.Lock() // want "lock order inversion"
	p.a.Unlock()
	p.b.Unlock()
}

// sequential never nests: unlocking a before taking b adds no edge.
func (p *pair) sequential() {
	p.b.Lock()
	p.b.Unlock()
	p.a.Lock()
	p.a.Unlock()
}

type other struct {
	c sync.Mutex
	d sync.Mutex
}

func (o *other) lockD() {
	o.d.Lock()
}

// cd orders c before d through the helper.
func (o *other) cd() {
	o.c.Lock()
	o.lockD()
	o.d.Unlock()
	o.c.Unlock()
}

// dc completes the inversion at the direct acquisition.
func (o *other) dc() {
	o.d.Lock()
	defer o.d.Unlock()
	o.c.Lock() // want "lock order inversion"
	o.c.Unlock()
}

type contract struct {
	e sync.Mutex
	f sync.Mutex
}

// lockFThenE is called with e already held per its contract, so its f
// acquisition is ordered after e.
//
// arblint:holds e
func (c *contract) lockFThenE() {
	c.f.Lock()
	c.f.Unlock()
}

// fe takes f then e directly: the reverse of the contract's order.
func (c *contract) fe() {
	c.f.Lock()
	c.e.Lock() // want "lock order inversion"
	c.e.Unlock()
	c.f.Unlock()
}
