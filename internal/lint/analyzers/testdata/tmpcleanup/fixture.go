// Package tmpfixture exercises the tmpcleanup analyzer: loaded under an
// arb/internal/core/... import path, so os.Create is tracked alongside
// os.CreateTemp and os.MkdirTemp.
package tmpfixture

import "os"

// leaksTemp creates a temp file and registers no cleanup: a failed or
// cancelled run would leave it next to the database.
func leaksTemp() error {
	f, err := os.CreateTemp("", "state-*.sta") // want "os.CreateTemp result is not cleaned up"
	if err != nil {
		return err
	}
	_, err = f.WriteString("phase-1 state")
	f.Close()
	return err
}

// removesTemp is the unconditional-cleanup counter-example.
func removesTemp() error {
	f, err := os.CreateTemp("", "state-*.sta")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	return f.Close()
}

// keepsOnSuccess is the keep-on-success pattern: the cleanup defer is
// conditional, which still counts — error and cancel paths remove.
func keepsOnSuccess() (string, error) {
	f, err := os.CreateTemp("", "state-*.sta")
	if err != nil {
		return "", err
	}
	succeeded := false
	defer func() {
		f.Close()
		if !succeeded {
			os.Remove(f.Name())
		}
	}()
	succeeded = true
	return f.Name(), nil
}

// returnsHandle transfers cleanup ownership to the caller.
func returnsHandle() (*os.File, error) {
	f, err := os.CreateTemp("", "scratch-*")
	if err != nil {
		return nil, err
	}
	return f, nil
}

// leaksDir leaves a scratch directory behind on every path.
func leaksDir() error {
	_, err := os.MkdirTemp("", "aux-*") // want "os.MkdirTemp result is not cleaned up"
	return err
}

// removesDir cleans the scratch directory up with RemoveAll.
func removesDir() error {
	dir, err := os.MkdirTemp("", "aux-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	return nil
}

// leaksCreate is the core/xpath-only rule: plain os.Create writes state
// files and sidecars there, so it needs the same discipline.
func leaksCreate(path string) error {
	f, err := os.Create(path) // want "os.Create result is not cleaned up"
	if err != nil {
		return err
	}
	_, err = f.WriteString("aux sidecar")
	f.Close()
	return err
}

// createsWithCleanup pairs os.Create with a conditional remove.
func createsWithCleanup(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		f.Close()
		os.Remove(path)
	}()
	return nil
}
