//arblint:shims

package shimfixture

import "arb"

// CompatNewEngine imitates a shim file: referencing a deprecated entry
// point inside a //arblint:shims file is the allowed exception.
func CompatNewEngine() {
	_ = arb.NewEngine
}
