// Package shimfixture exercises the noshims analyzer: every deprecated
// pre-context, pre-Session entry point referenced outside a shim file is
// reported, with its replacement named.
package shimfixture

import (
	"arb"
	"arb/internal/core"
	"arb/internal/parallel"
	"arb/internal/xpath"
)

// legacyCalls references deprecated entry points through method
// expressions and direct calls alike — the type checker resolves both.
func legacyCalls() {
	_ = (*core.Engine).Run             // want "core.Engine.Run is a deprecated shim: use Engine.RunContext"
	_ = (*core.Engine).RunDisk         // want "core.Engine.RunDisk is a deprecated shim: use Engine.RunDiskContext"
	_ = (*core.Engine).RunDiskParallel // want "core.Engine.RunDiskParallel is a deprecated shim"
	_ = (*xpath.Query).Eval            // want "xpath.Query.Eval is a deprecated shim"
	_ = (*xpath.Query).EvalDisk        // want "xpath.Query.EvalDisk is a deprecated shim"
	_ = parallel.Run                   // want "parallel.Run is a deprecated shim: use parallel.RunContext"
	_ = arb.RunParallel                // want "arb.RunParallel is a deprecated shim"
	_ = arb.NewEngine                  // want "arb.NewEngine is a deprecated shim: use arb.NewSession"
	_ = (*arb.PreparedQuery).Count     // want "arb.PreparedQuery.Count is a deprecated shim"
}

// modernCalls references the replacement API: never reported.
func modernCalls() {
	_ = (*core.Engine).RunContext
	_ = (*core.Engine).RunDiskContext
	_ = parallel.RunContext
	_ = arb.NewSession
	_ = (*arb.PreparedQuery).Exec
}
