package analyzers

import (
	"go/ast"
	"go/types"

	"arb/internal/lint"
)

// TmpCleanup enforces the temp-file discipline of the disk execution
// paths: every temporary state file, aux sidecar or scratch directory a
// library function creates must be removed on failure and cancellation —
// a cancelled multi-pass query must not leak .sta/.stb/aux files next to
// the database. Tracked creations are os.CreateTemp and os.MkdirTemp
// anywhere in library code, plus os.Create in internal/core and
// internal/xpath (where os.Create writes state files and sidecars;
// internal/storage's os.Create sites build the persistent database
// files, whose lifetime the caller owns).
//
// A creation passes if the enclosing function either registers a defer
// that calls os.Remove/os.RemoveAll (the cleanup may be conditional —
// `if !succeeded` — which is exactly the keep-on-success pattern), or
// returns the created handle/path, transferring cleanup ownership to the
// caller.
var TmpCleanup = &lint.Analyzer{
	Name: "tmpcleanup",
	Doc:  "temp files and directories created in library code must be removed on error and cancel paths",
	Run:  runTmpCleanup,
}

func runTmpCleanup(pass *lint.Pass) error {
	path := pass.Pkg.Path()
	if !libraryScope(path) {
		return nil
	}
	trackCreate := underPath(path, "arb/internal/core") || underPath(path, "arb/internal/xpath")
	tracked := func(key string) bool {
		switch key {
		case "os.CreateTemp", "os.MkdirTemp":
			return true
		case "os.Create":
			return trackCreate
		}
		return false
	}
	for _, f := range pass.Files {
		var funcs []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				funcs = funcs[:len(funcs)-1]
				return true
			}
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, n)
			default:
				funcs = append(funcs, nil)
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !tracked(funcKey(fn)) {
				return true
			}
			var enclosing ast.Node
			for i := len(funcs) - 1; i >= 0; i-- {
				if funcs[i] != nil {
					enclosing = funcs[i]
					break
				}
			}
			if enclosing == nil {
				return true
			}
			if deferCleansUp(pass.Info, enclosing) || resultReturned(pass.Info, enclosing, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s result is not cleaned up on error paths: defer os.Remove/os.RemoveAll in this function, or return the handle so the caller owns removal",
				funcKey(fn))
			return true
		})
	}
	return nil
}

// funcBody returns the body of a FuncDecl or FuncLit.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// deferCleansUp reports whether fn registers any defer whose call
// (including a deferred closure's body) reaches os.Remove or
// os.RemoveAll.
func deferCleansUp(info *types.Info, fn ast.Node) bool {
	body := funcBody(fn)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		ast.Inspect(d.Call, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if cf := calleeFunc(info, call); cf != nil {
					if k := funcKey(cf); k == "os.Remove" || k == "os.RemoveAll" {
						found = true
					}
				}
			}
			return !found
		})
		return !found
	})
	return found
}

// resultReturned reports whether a variable assigned from call is part
// of some return statement of fn — ownership transfer to the caller.
func resultReturned(info *types.Info, fn ast.Node, call *ast.CallExpr) bool {
	body := funcBody(fn)
	if body == nil {
		return false
	}
	// The objects the call's results land in.
	owned := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			if ast.Unparen(rhs) != call {
				continue
			}
			for _, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !isErrorType(obj.Type()) {
					owned[obj] = true
				}
			}
		}
		return true
	})
	if len(owned) == 0 {
		return false
	}
	returned := false
	ast.Inspect(body, func(n ast.Node) bool {
		if returned {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		ast.Inspect(ret, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && owned[info.Uses[id]] {
				returned = true
			}
			return !returned
		})
		return !returned
	})
	return returned
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}
