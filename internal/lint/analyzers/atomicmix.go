package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"arb/internal/lint"
)

// AtomicMix enforces all-or-nothing atomicity: once any access to a
// variable or field goes through the sync/atomic functions
// (atomic.LoadInt64(&c.n), atomic.AddUint64(&hits, 1), ...), every
// access must — a plain read concurrent with an atomic write is a data
// race the race detector only catches when the interleaving actually
// fires. The coalescer's auto-tuned window and the server counters are
// the motivating sites; they migrated to typed atomics (atomic.Int64),
// which are immune by construction, and this analyzer keeps any future
// function-style atomics honest.
//
// Analysis is per package (the mixed accesses that race in practice
// share a struct, and those fields are unexported): first collect every
// object whose address is taken by a sync/atomic call anywhere in the
// package, then flag every other syntactic use of those objects that is
// not itself inside a sync/atomic argument.
var AtomicMix = &lint.Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic must never be read or written plainly elsewhere",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *lint.Pass) error {
	// Pass 1: objects accessed atomically, with one sample position each.
	atomicObjs := make(map[types.Object]token.Pos)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.Info, call) || len(call.Args) == 0 {
				return true
			}
			// The address-of argument names the shared word. (For
			// CompareAndSwap/Store the first argument is still the target.)
			if addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && addr.Op == token.AND {
				if obj := referencedObject(pass.Info, addr.X); obj != nil {
					if _, seen := atomicObjs[obj]; !seen {
						atomicObjs[obj] = call.Pos()
					}
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: any use of those objects outside a sync/atomic argument
	// list (and outside its own declaration) is a plain access.
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if id, ok := n.(*ast.Ident); ok {
				// Defs (the declaration itself) is not a use and stays
				// exempt by construction.
				if obj := pass.Info.Uses[id]; obj != nil {
					if pos, hot := atomicObjs[obj]; hot && !underAtomicArg(pass.Info, stack) {
						pass.Reportf(id.Pos(),
							"%s is accessed with sync/atomic (e.g. %s); this plain access races with it",
							id.Name, pass.Fset.Position(pos))
					}
				}
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a package-level sync/atomic
// function (not a typed-atomic method: atomic.Int64 values cannot be
// accessed plainly in the first place).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	return fn.Type().(*types.Signature).Recv() == nil
}

// referencedObject resolves the variable or field an addressable
// expression names: the field object for c.win, the var for hits.
func referencedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		return referencedObject(info, e.X)
	}
	return nil
}

// underAtomicArg reports whether the innermost enclosing call in stack
// is a sync/atomic function — i.e. the use being classified is the
// atomic access itself.
func underAtomicArg(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if isAtomicCall(info, call) {
			return true
		}
		// A different call in between (atomic.AddInt64(&n, f(n)) — the
		// inner n is plain) breaks the protection, unless that call is
		// itself the selector resolution of the atomic call's target.
		if i+1 < len(stack) {
			if sel, ok := stack[i+1].(*ast.SelectorExpr); ok && sel == call.Fun {
				continue
			}
		}
		return false
	}
	return false
}
