// Package analyzers holds the nine arblint analyzers, one per
// load-bearing invariant of the two-scan engine:
//
//   - ctxflow: engine code threads context, never mints its own roots
//   - lockdiscipline: `// guarded by:` fields are accessed under their mutex
//   - tmpcleanup: temp state/aux files are removed on error and cancel paths
//   - noshims: deprecated shim entry points stay out of library code
//   - closecheck: storage readers and files get closed or released
//   - snappin: MVCC snapshot pins are Released on every path (CFG-based,
//     interprocedural through arblint:acquires / arblint:owns contracts)
//   - atomicmix: fields touched via sync/atomic are never accessed plainly
//   - goroleak: spawned goroutines provably terminate (cancellation-bound)
//   - lockorder: declared mutexes keep one global acquisition order
//
// Analyzers are heuristic but deliberately low-noise: each rule is scoped
// to the package layers where its invariant is load-bearing, and the
// directives in package lint (//arblint:allow, //arblint:todo,
// //arblint:shims) give reviewed escape hatches. The last four lean on
// the lint.Module/lint.CFG interprocedural layer: per-function control
// flow graphs plus module-wide may-reach summaries shared through
// Mod.Memo.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"arb/internal/lint"
)

// All is the full suite in reporting order.
var All = []*lint.Analyzer{
	Ctxflow, LockDiscipline, TmpCleanup, NoShims, CloseCheck,
	SnapPin, AtomicMix, GoroLeak, LockOrder,
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *lint.Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// calleeFunc resolves the function or method a call statically invokes.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcKey names a function or method as pkgpath.Func or pkgpath.Type.Method,
// ignoring pointerness of the receiver.
func funcKey(f *types.Func) string {
	s := f.FullName()
	s = strings.ReplaceAll(s, "(*", "")
	s = strings.ReplaceAll(s, "(", "")
	return strings.ReplaceAll(s, ")", "")
}

// exprName renders a call target for diagnostics (best effort).
func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprName(e.X)
	case *ast.CallExpr:
		return exprName(e.Fun) + "(...)"
	}
	return "call"
}

// underPath reports whether package path is pkg itself or below it.
func underPath(path, pkg string) bool {
	return path == pkg || strings.HasPrefix(path, pkg+"/")
}

// libraryScope reports whether path is arb library code (the module root
// package or anything under arb/internal), as opposed to cmd/ and
// examples/ binaries where a process-lifetime context root or an
// OS-cleaned temp file is fine.
func libraryScope(path string) bool {
	return path == "arb" || underPath(path, "arb/internal")
}
