package analyzers

import (
	"go/ast"
	"go/token"

	"arb/internal/lint"
)

// GoroLeak proves termination for every goroutine spawned in library
// code. A goroutine is accepted when its body provably finishes:
//
//   - straight-line bodies and bounded loops (a `for` with a condition,
//     or any `range` — ranging a channel ends when the spawner closes
//     it, which is the RunPool worker shape);
//   - infinite `for {}` loops only when they are cancellation-bound:
//     somewhere in the loop a channel receive or ctx.Err()/ctx.Done()
//     check feeds an exit (return, or a break/goto that leaves the
//     loop) — the bench watcher's `select { case <-stop: return ... }`
//     shape;
//   - callees resolvable within the module are checked transitively
//     (memoized, cycle-tolerant) under a weaker rule — their infinite
//     loops just need some exit — so parsers' `for { ... break }`
//     decode loops don't trip the signal requirement that only makes
//     sense at the goroutine's own top level.
//
// Anything else — an infinite loop with no exit, or exits never tied to
// a cancellation signal — is reported: such a goroutine outlives its
// spawner, and under sharded fan-out every leaked worker is multiplied
// by shard count.
var GoroLeak = &lint.Analyzer{
	Name: "goroleak",
	Doc:  "every spawned goroutine must provably terminate (ctx cancellation, channel close, or bounded work)",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *lint.Pass) error {
	if !libraryScope(pass.Pkg.Path()) {
		return nil // cmd/ and examples own their process lifetime
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
			default:
				if fn := calleeFunc(pass.Info, g.Call); fn != nil {
					if fi := pass.Mod.Decl(fn); fi != nil {
						body = fi.Decl.Body
					}
				}
			}
			if body == nil {
				return true // dynamic target: nothing to prove against
			}
			if loop := nonTerminatingLoop(pass, body, true, make(map[string]bool)); loop != nil {
				pass.Reportf(g.Pos(),
					"goroutine may never terminate: infinite loop at %s has no cancellation-bound exit (no channel receive or ctx check leading to return/break)",
					pass.Fset.Position(loop.Pos()))
			}
			return true
		})
	}
	return nil
}

// nonTerminatingLoop returns the first loop in body (nested literals
// excluded — they are their own goroutines or callbacks) that cannot be
// shown to terminate, or nil. needSignal applies the stricter
// top-of-goroutine rule: an infinite loop's exit must be fed by a
// channel receive or a ctx check, not just exist. seen guards callee
// recursion against cycles.
func nonTerminatingLoop(pass *lint.Pass, body *ast.BlockStmt, needSignal bool, seen map[string]bool) (bad ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond != nil {
				return true // bounded by its condition
			}
			if !loopExits(n.Body, needSignal) {
				bad = n
				return false
			}
		case *ast.RangeStmt:
			return true // bounded, or ends on channel close
		case *ast.SelectStmt:
			if len(n.Body.List) == 0 {
				bad = n // select{} blocks forever
				return false
			}
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, n)
			if fn == nil {
				return true
			}
			fi := pass.Mod.Decl(fn)
			if fi == nil {
				return true // outside the module: trusted
			}
			key := lint.FuncKey(fn)
			if seen[key] {
				return true
			}
			seen[key] = true
			// Callees only need their loops to have *some* exit.
			if inner := nonTerminatingLoop(pass, fi.Decl.Body, false, seen); inner != nil {
				bad = n // report at the call inside the goroutine body
				return false
			}
		}
		return true
	})
	return bad
}

// loopExits reports whether an infinite loop's body can leave the loop.
// With needSignal, at least one exit must be downstream of a channel
// receive or a ctx.Done()/ctx.Err() check — the shapes that make a
// worker cancellable rather than merely able to stop on its own terms.
func loopExits(body *ast.BlockStmt, needSignal bool) bool {
	var (
		hasExit   bool
		hasSignal bool
		depth     int // nested for/switch/select capture unlabeled break
	)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			depth++
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n {
					return true
				}
				return walk(m)
			})
			depth--
			return false
		case *ast.ReturnStmt:
			hasExit = true
		case *ast.BranchStmt:
			switch n.Tok {
			case token.BREAK:
				// Unlabeled break inside a nested statement leaves that
				// statement, not our loop; a labeled break is assumed to
				// target an enclosing loop.
				if n.Label != nil || depth == 0 {
					hasExit = true
				}
			case token.GOTO:
				hasExit = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				hasSignal = true // a channel receive: <-stop, v := <-ch
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "Err" || n.Sel.Name == "Done" {
				hasSignal = true // ctx.Err() / ctx.Done() in any position
			}
		case *ast.CallExpr:
			if isNoReturnName(n) {
				hasExit = true
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	if !hasExit {
		return false
	}
	return !needSignal || hasSignal
}

// isNoReturnName spots panic(...) — a loop whose only exit is a panic
// still terminates the goroutine.
func isNoReturnName(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
