package analyzers

import (
	"go/ast"
	"go/types"

	"arb/internal/lint"
)

// Ctxflow enforces the engine's cancellation discipline: inside
// internal/{storage,core,parallel,xpath,server}, non-test code must
// thread the caller's context.Context down to the scan loops. Two rules:
//
//  1. context.Background() and context.TODO() are forbidden — a minted
//     root context silently detaches a scan from the caller's deadline
//     and cancel signal (the Canceller polls ctx every cancelEvery
//     nodes, which is worthless if the ctx is not the caller's).
//  2. a function that receives a context.Context must not pass a nil
//     context onward — Fold*/Scan*/Run*Context callees must be handed
//     the incoming ctx, not an empty one.
//
// Files marked //arblint:shims are exempt: deprecated context-less entry
// points have nothing to forward.
var Ctxflow = &lint.Analyzer{
	Name: "ctxflow",
	Doc:  "engine code must forward the caller's context, never mint or drop one",
	Run:  runCtxflow,
}

// enginePkgs are the layers where every loop is (or calls) one of the
// two scans and must stay cancellable.
var enginePkgs = []string{
	"arb/internal/storage",
	"arb/internal/core",
	"arb/internal/parallel",
	"arb/internal/xpath",
	"arb/internal/server",
}

func inEngineScope(path string) bool {
	for _, p := range enginePkgs {
		if underPath(path, p) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func runCtxflow(pass *lint.Pass) error {
	if !inEngineScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsShimFile(f.Pos()) {
			continue
		}
		// stack mirrors the traversal; ctx availability is that of the
		// innermost enclosing function, with closures inheriting from
		// their lexical environment.
		type frame struct {
			isFunc bool
			avail  bool
		}
		var stack []frame
		avail := func() bool {
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].isFunc {
					return stack[i].avail
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			fr := frame{}
			switch n := n.(type) {
			case *ast.FuncDecl:
				fr = frame{isFunc: true, avail: hasCtxParam(pass.Info, n.Type)}
			case *ast.FuncLit:
				fr = frame{isFunc: true, avail: avail() || hasCtxParam(pass.Info, n.Type)}
			case *ast.CallExpr:
				checkCtxCall(pass, n, avail())
			}
			stack = append(stack, fr)
			return true
		})
	}
	return nil
}

func checkCtxCall(pass *lint.Pass, call *ast.CallExpr, ctxAvail bool) {
	if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			pass.Reportf(call.Pos(),
				"context.%s in engine code detaches the scan from the caller's cancellation: thread the incoming ctx", fn.Name())
		}
	}
	if !ctxAvail {
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() || (sig.Variadic() && i >= sig.Params().Len()-1) {
			break
		}
		if isContextType(sig.Params().At(i).Type()) && pass.Info.Types[arg].IsNil() {
			pass.Reportf(arg.Pos(),
				"nil context passed to %s: the enclosing function has a context to forward", exprName(call.Fun))
		}
	}
}
