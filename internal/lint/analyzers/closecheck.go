package analyzers

import (
	"go/ast"
	"go/types"

	"arb/internal/lint"
)

// CloseCheck enforces resource hygiene on the storage layer's open/scan
// primitives: a *storage.DB, *os.File or *BackwardReader obtained in
// library code must be closed or released on every path. BackwardReaders
// draw their I/O buffers from a shared pool — an abandoned reader
// quietly degrades the pool for every later scan, which is invisible in
// tests and expensive under serving load.
//
// A producer call passes if its result is closed/released (deferred or
// not), returned to the caller, passed to another function, or stored
// into a longer-lived structure (field, composite literal, channel) —
// anything that transfers ownership. A result that is discarded, or
// bound to a variable that is only ever read, is reported.
var CloseCheck = &lint.Analyzer{
	Name: "closecheck",
	Doc:  "storage readers and files must be closed or released on every path",
	Run:  runCloseCheck,
}

// closeProducers return values that own a releasable resource.
var closeProducers = map[string]bool{
	"arb/internal/storage.Open":                     true,
	"arb/internal/storage.NewBackwardReader":        true,
	"arb/internal/storage.NewBackwardSectionReader": true,
	"arb/internal/storage.MaskBackward":             true,
	"arb/internal/storage.OpenMaskFile":             true,
	"os.Open":                                       true,
}

func runCloseCheck(pass *lint.Pass) error {
	if !libraryScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCloseInFunc(pass, fd)
		}
	}
	return nil
}

func checkCloseInFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	// Walk with a parent stack so each producer call can be classified by
	// the statement consuming it.
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(pass.Info, call); fn != nil && closeProducers[funcKey(fn)] {
				checkProducerCall(pass, fd, call, fn, stack)
			}
		}
		stack = append(stack, n)
		return true
	})
}

func checkProducerCall(pass *lint.Pass, fd *ast.FuncDecl, call *ast.CallExpr, fn *types.Func, stack []ast.Node) {
	var parent ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		parent = stack[i]
		break
	}
	switch p := parent.(type) {
	case *ast.ReturnStmt:
		return // ownership transferred to the caller
	case *ast.CallExpr:
		return // handed straight to another function
	case *ast.AssignStmt:
		// The resource is the first (non-error) result.
		if len(p.Lhs) == 0 {
			break
		}
		id, ok := ast.Unparen(p.Lhs[0]).(*ast.Ident)
		if !ok || id.Name == "_" {
			break
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil && resourceHandled(pass.Info, fd, obj) {
			return
		}
	case *ast.ValueSpec:
		if len(p.Names) > 0 && p.Names[0].Name != "_" {
			if obj := pass.Info.Defs[p.Names[0]]; obj != nil && resourceHandled(pass.Info, fd, obj) {
				return
			}
		}
	}
	pass.Reportf(call.Pos(),
		"%s result is never closed: defer its Close/Release (or hand it off) so the resource is reclaimed on every path",
		funcKey(fn))
}

// resourceHandled reports whether obj is closed/released somewhere in fd,
// or escapes to an owner that can (returned, passed as an argument,
// stored into a structure, aliased).
func resourceHandled(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	handled := false
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if handled {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj && useHandlesResource(id, stack) {
			handled = true
		}
		stack = append(stack, n)
		return true
	})
	return handled
}

// useHandlesResource classifies one use of the resource variable given
// the ancestor stack (innermost last).
func useHandlesResource(id *ast.Ident, stack []ast.Node) bool {
	var parent ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		parent = stack[i]
		break
	}
	// Anywhere under a return statement counts (return r, or return
	// wrap(r)).
	for _, anc := range stack {
		if _, ok := anc.(*ast.ReturnStmt); ok {
			return true
		}
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X == id && (p.Sel.Name == "Close" || p.Sel.Name == "Release") {
			return true
		}
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if ast.Unparen(arg) == ast.Expr(id) {
				return true // escapes into the callee
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if ast.Unparen(rhs) == ast.Expr(id) {
				return true // aliased or stored; the new name owns it
			}
		}
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		return true // stored into a longer-lived structure
	case *ast.UnaryExpr:
		return p.Op.String() == "&"
	}
	return false
}
