package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baselines separate debt from regression: a committed baseline file
// records the findings a repo has accepted (reviewed, tracked, not yet
// fixed), and CI fails only on findings beyond it. Unlike a blanket
// suppression, baselined debt stays visible — `arblint -todos` lists
// the in-source markers, and the baseline file itself is diffable
// review material. Entries match on (analyzer, file, message) with an
// occurrence count rather than line numbers, so unrelated edits that
// shift lines do not invalidate the baseline, while a genuinely new
// instance of an old finding in the same file still fails (the count
// would exceed the recorded one).

// BaselineEntry is one accepted finding class.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative, slash-separated
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// baselineFile is the on-disk format.
type baselineFile struct {
	Comment string          `json:"comment,omitempty"`
	Entries []BaselineEntry `json:"entries"`
}

type baselineKey struct {
	analyzer, file, message string
}

// Baseline is a loaded baseline: accepted occurrence budgets per
// finding class.
type Baseline struct {
	budget map[baselineKey]int
}

// RelFile renders a diagnostic's filename relative to root with forward
// slashes — the stable form baselines and machine output use.
func RelFile(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !filepath.IsAbs(rel) && rel != ".." && !isDotDot(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

func isDotDot(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// WriteBaseline records diags as the accepted baseline at path.
func WriteBaseline(path, root string, diags []Diagnostic) error {
	counts := make(map[baselineKey]int)
	for _, d := range diags {
		counts[baselineKey{d.Analyzer, RelFile(root, d.Pos.Filename), d.Message}]++
	}
	bf := baselineFile{
		Comment: "accepted arblint findings; regenerate with arblint -writebaseline " + filepath.Base(path),
	}
	for k, n := range counts {
		bf.Entries = append(bf.Entries, BaselineEntry{Analyzer: k.analyzer, File: k.file, Message: k.message, Count: n})
	}
	sort.Slice(bf.Entries, func(i, j int) bool {
		a, b := bf.Entries[i], bf.Entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	if bf.Entries == nil {
		bf.Entries = []BaselineEntry{}
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads the baseline at path. A missing file is an empty
// baseline, so a fresh checkout without one simply treats every finding
// as new.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{budget: map[baselineKey]int{}}, nil
	}
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	b := &Baseline{budget: make(map[baselineKey]int, len(bf.Entries))}
	for _, e := range bf.Entries {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		b.budget[baselineKey{e.Analyzer, e.File, e.Message}] += n
	}
	return b, nil
}

// Filter splits diags into fresh findings (beyond the baseline) and the
// number of accepted ones it absorbed.
func (b *Baseline) Filter(root string, diags []Diagnostic) (fresh []Diagnostic, absorbed int) {
	remaining := make(map[baselineKey]int, len(b.budget))
	for k, n := range b.budget {
		remaining[k] = n
	}
	for _, d := range diags {
		k := baselineKey{d.Analyzer, RelFile(root, d.Pos.Filename), d.Message}
		if remaining[k] > 0 {
			remaining[k]--
			absorbed++
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, absorbed
}

// ModuleRoot exposes the go.mod-anchored root for callers that need to
// relativize paths the way baselines do.
func ModuleRoot(dir string) (string, error) { return moduleRoot(dir) }
