package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFrom parses src as a file containing one function and returns
// that function's CFG.
func buildFrom(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// stopOnCall builds a stop predicate matching any node containing a
// call to the named function — the shape the leak analyses use.
func stopOnCall(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
		return found
	}
}

func TestReachesExitStraightLine(t *testing.T) {
	cfg := buildFrom(t, `
func f() {
	acquire()
	release()
}`)
	if cfg.ReachesExit(cfg.Entry, 0, stopOnCall("release")) {
		t.Error("straight-line path passes release(): exit must not be reachable around it")
	}
	if !cfg.ReachesExit(cfg.Entry, 0, stopOnCall("nosuch")) {
		t.Error("no stop nodes at all: exit must be reachable")
	}
}

func TestReachesExitEarlyReturn(t *testing.T) {
	cfg := buildFrom(t, `
func f(fail bool) {
	acquire()
	if fail {
		return
	}
	release()
}`)
	if !cfg.ReachesExit(cfg.Entry, 0, stopOnCall("release")) {
		t.Error("the early return skips release(): a leaking path must be found")
	}
}

func TestReachesExitBothBranchesRelease(t *testing.T) {
	cfg := buildFrom(t, `
func f(fail bool) {
	acquire()
	if fail {
		release()
		return
	}
	release()
}`)
	if cfg.ReachesExit(cfg.Entry, 0, stopOnCall("release")) {
		t.Error("every path releases: no leaking path should exist")
	}
}

func TestReachesExitLoopBack(t *testing.T) {
	// The loop can be skipped entirely (zero iterations), so a path
	// avoiding the in-loop release exists.
	cfg := buildFrom(t, `
func f(n int) {
	acquire()
	for i := 0; i < n; i++ {
		release()
	}
}`)
	if !cfg.ReachesExit(cfg.Entry, 0, stopOnCall("release")) {
		t.Error("zero-iteration loop path must reach exit without releasing")
	}
}

func TestReachesExitPanicIsDeadEnd(t *testing.T) {
	// A branch ending in panic does not reach normal exit, so a release
	// only on the non-panicking path still covers every exiting path.
	cfg := buildFrom(t, `
func f(bad bool) {
	acquire()
	if bad {
		panic("boom")
	}
	release()
}`)
	if cfg.ReachesExit(cfg.Entry, 0, stopOnCall("release")) {
		t.Error("panic branch is a dead end: only the releasing path exits")
	}
}

func TestBlockOfFindsStatement(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "b.go", `package p
func f() {
	a()
	b()
}`, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	cfg := BuildCFG(fd.Body)
	var bCall ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "b" {
				bCall = call
			}
		}
		return true
	})
	blk, idx := cfg.BlockOf(bCall)
	if blk == nil {
		t.Fatal("BlockOf failed to locate the b() call")
	}
	// Starting after b() there is nothing left: exit reachable with no
	// stops, and a() is behind us.
	if !cfg.ReachesExit(blk, idx+1, func(ast.Node) bool { return true }) {
		t.Error("all-stop predicate after the last statement: exit still directly reachable")
	}
}
