package lint_test

import (
	"go/ast"
	"testing"

	"arb/internal/lint"
)

// doubler reports twice at every call to a function literally named
// "twice" — the smallest analyzer that forces one source line to carry
// two diagnostics, which is what multi-pattern want lines exist for.
var doubler = &lint.Analyzer{
	Name: "doubler",
	Doc:  "test analyzer: two diagnostics per marked call",
	Run: func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "twice" {
					pass.Reportf(call.Pos(), "first report")
					pass.Reportf(call.Pos(), "second report")
				}
				return true
			})
		}
		return nil
	},
}

// TestRunFixtureMultiWant pins the runner's contract for lines carrying
// several diagnostics: one `// want` comment lists each pattern, every
// pattern must be consumed by a distinct diagnostic, and both surplus
// and missing diagnostics fail. The fixture also carries a suppressed
// call proving directives apply inside fixtures.
func TestRunFixtureMultiWant(t *testing.T) {
	lint.RunFixture(t, doubler, "testdata/runner", "arb/internal/core/runnerfixture")
}
