package lint

// A conservative per-function control-flow graph over go/ast, the
// foundation of the interprocedural analyzers (snappin, goroleak). The
// graph is statement-granular: each basic block holds the statements
// (and branch-condition expressions) that execute in order, and Succs
// are the possible continuations. One synthetic Exit block represents
// normal function return — a path that "reaches Exit" is a path on
// which the function returns; panicking statements end their block with
// no successors (deferred cleanup runs on panic, so resource analyses
// treat those paths as out of scope).

import (
	"go/ast"
)

// CFGBlock is one basic block: nodes executed in order, then a branch
// to one of Succs. A block with no successors either panics or is the
// Exit.
type CFGBlock struct {
	Nodes []ast.Node // ast.Stmt and branch-condition ast.Expr, in order
	Succs []*CFGBlock
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *CFGBlock
	Exit   *CFGBlock // single synthetic return block (always empty)
	Blocks []*CFGBlock
}

// cfgBuilder carries the under-construction graph plus the lexical
// branch-target context.
type cfgBuilder struct {
	cfg *CFG
	cur *CFGBlock

	// Innermost-last stacks of break/continue targets. Labeled entries
	// carry their label so `break L` / `continue L` resolve.
	breaks    []cfgTarget
	continues []cfgTarget

	labels map[string]*CFGBlock // goto targets (label start blocks)
	gotos  []pendingGoto
}

type cfgTarget struct {
	label string
	block *CFGBlock
}

type pendingGoto struct {
	from  *CFGBlock
	label string
}

// BuildCFG builds the graph for one function body. A nil body (external
// declaration) yields a graph whose entry is the exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	cfg := &CFG{Exit: &CFGBlock{}}
	b := &cfgBuilder{cfg: cfg, labels: make(map[string]*CFGBlock)}
	cfg.Entry = b.newBlock()
	b.cur = cfg.Entry
	if body != nil {
		b.stmts(body.List)
	}
	b.edge(b.cur, cfg.Exit)
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		}
	}
	cfg.Blocks = append(cfg.Blocks, cfg.Exit)
	return cfg
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge links from→to unless from is nil (unreachable continuation).
func (b *cfgBuilder) edge(from, to *CFGBlock) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock begins a fresh block as the current one, linked from the
// previous current block when that is still live.
func (b *cfgBuilder) startBlock() *CFGBlock {
	blk := b.newBlock()
	b.edge(b.cur, blk)
	b.cur = blk
	return blk
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		// Unreachable code (after return/break/...); park it in a fresh
		// orphan block so analyses still see its statements.
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// findTarget resolves a break/continue target: the innermost entry, or
// the innermost entry carrying the label.
func findTarget(stack []cfgTarget, label string) *CFGBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// stmt builds one statement. label is non-empty when the statement is
// the body of a LabeledStmt, so loops and switches register labeled
// break/continue targets.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		// The label starts a fresh block so gotos can land on it.
		blk := b.startBlock()
		b.labels[s.Label.Name] = blk
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok.String() {
		case "break":
			b.edge(b.cur, findTarget(b.breaks, labelOf(s)))
		case "continue":
			b.edge(b.cur, findTarget(b.continues, labelOf(s)))
		case "goto":
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
		case "fallthrough":
			// Handled by the switch builder (the case body's end falls
			// through to the next clause); nothing to do here.
			return
		}
		b.cur = nil

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Cond != nil {
			b.add(s.Cond)
		}
		head := b.cur
		after := b.newBlock()
		thenB := b.newBlock()
		b.edge(head, thenB)
		b.cur = thenB
		b.stmts(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(head, elseB)
			b.cur = elseB
			b.stmt(s.Else, "")
			b.edge(b.cur, after)
		} else {
			b.edge(head, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			b.add(s.Cond)
		}
		post := b.newBlock()
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.breaks = append(b.breaks, cfgTarget{label, after})
		b.continues = append(b.continues, cfgTarget{label, post})
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, post)
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.edge(post, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.startBlock()
		after := b.newBlock()
		b.edge(head, after) // the range may be empty (or the channel closed)
		b.breaks = append(b.breaks, cfgTarget{label, after})
		b.continues = append(b.continues, cfgTarget{label, head})
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, false)

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.breaks = append(b.breaks, cfgTarget{label, after})
		anyCase := false
		for _, clause := range s.Body.List {
			c, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			anyCase = true
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if c.Comm != nil {
				b.add(c.Comm)
			}
			b.stmts(c.Body)
			b.edge(b.cur, after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if !anyCase {
			// `select {}` blocks forever: no continuation.
			after = nil
		}
		b.cur = after

	case *ast.ExprStmt:
		b.add(s)
		if isNoReturnCall(s.X) {
			b.cur = nil // panic/Goexit: deferred cleanup runs, path ends
		}

	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		b.add(s)

	default:
		if s != nil {
			b.add(s)
		}
	}
}

// switchClauses builds the shared case structure of switch and type
// switch. withFallthrough enables the expression-switch fallthrough
// edge.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, withFallthrough bool) {
	head := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, cfgTarget{label, after})
	hasDefault := false
	var bodies []*CFGBlock
	var caseStmts []*ast.CaseClause
	for _, clause := range clauses {
		c, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if c.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(head, blk)
		bodies = append(bodies, blk)
		caseStmts = append(caseStmts, c)
	}
	for i, c := range caseStmts {
		b.cur = bodies[i]
		for _, e := range c.List {
			b.add(e)
		}
		b.stmts(c.Body)
		next := after
		if withFallthrough && endsInFallthrough(c.Body) && i+1 < len(bodies) {
			next = bodies[i+1]
		}
		b.edge(b.cur, next)
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

func labelOf(s *ast.BranchStmt) string {
	if s.Label != nil {
		return s.Label.Name
	}
	return ""
}

// isNoReturnCall recognises calls that never return normally: panic and
// runtime.Goexit (plus os.Exit and the log.Fatal family, which end the
// process). Purely syntactic — precise enough for path analyses, and a
// shadowed `panic` in engine code would be its own problem.
func isNoReturnCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			switch x.Name + "." + fun.Sel.Name {
			case "runtime.Goexit", "os.Exit":
				return true
			case "log.Fatal", "log.Fatalf", "log.Fatalln":
				return true
			}
		}
	}
	return false
}

// ReachesExit reports whether, starting after node index start of block
// from, some path reaches the CFG's Exit without first executing a node
// for which stop returns true. It is the core query of the
// released-on-all-paths analyses: stop marks the releasing/ownership-
// transferring nodes, and a true answer means some path leaks.
func (c *CFG) ReachesExit(from *CFGBlock, start int, stop func(ast.Node) bool) bool {
	// blockSafe caches, per block, whether scanning from its first node
	// hits a stop node before the block ends.
	type blockState int
	const (
		unvisited blockState = iota
		visiting
		done
	)
	state := make(map[*CFGBlock]blockState)

	var walk func(b *CFGBlock, idx int) bool
	walk = func(b *CFGBlock, idx int) bool {
		if b == c.Exit {
			return true
		}
		if idx == 0 {
			switch state[b] {
			case visiting, done:
				// Already on the path or fully explored without reaching
				// exit — cycles cannot newly reach exit.
				return false
			}
			state[b] = visiting
			defer func() { state[b] = done }()
		}
		for i := idx; i < len(b.Nodes); i++ {
			if stop(b.Nodes[i]) {
				return false
			}
		}
		for _, s := range b.Succs {
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	return walk(from, start)
}

// BlockOf locates the block and node index containing n (by identity),
// searching node subtrees too: a producer call nested inside an
// assignment statement is found at that statement's slot. Returns nil
// when n is not in the graph.
func (c *CFG) BlockOf(n ast.Node) (*CFGBlock, int) {
	for _, b := range c.Blocks {
		for i, node := range b.Nodes {
			if node == n {
				return b, i
			}
			found := false
			ast.Inspect(node, func(m ast.Node) bool {
				if m == n {
					found = true
				}
				return !found
			})
			if found {
				return b, i
			}
		}
	}
	return nil, 0
}
