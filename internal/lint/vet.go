package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
)

// vetConfig is the package description `go vet` hands a -vettool for
// each package, as a JSON .cfg file (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// LoadVetConfig loads and type-checks the single package described by a
// `go vet` .cfg file, resolving imports through the export files the go
// tool already built. The returned done function writes the (empty)
// facts file go vet expects; facts are unused because arblint's
// analyzers are all single-package.
func LoadVetConfig(path string) (pkg *Package, vetxOnly bool, done func() error, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, false, nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for path, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[path] = file
		}
	}
	done = func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, nil, 0o666)
	}
	fset := token.NewFileSet()
	pkg, err = typecheck(fset, exportImporter(fset, exports), cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil && cfg.SucceedOnTypecheckFailure {
		return nil, true, done, nil
	}
	return pkg, cfg.VetxOnly, done, err
}
