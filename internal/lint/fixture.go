package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// This file is the analysistest counterpart: fixture packages under
// testdata/ carry intentional violations annotated with
//
//	// want "regexp"
//
// markers, and RunFixture fails the test unless the analyzer reports
// exactly the expected diagnostics. Fixture packages are type-checked
// under a caller-chosen synthetic import path, so scope-sensitive
// analyzers (ctxflow's internal-package rule, noshims' shim-file rule)
// see them as the library code they imitate.

var (
	fixtureOnce    sync.Once
	fixtureExports map[string]string
	fixtureErr     error
)

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// fixtureExportMap builds (once per process) the export map covering the
// whole module and its dependencies, so fixtures may import both the
// standard library and arb packages.
func fixtureExportMap() (map[string]string, error) {
	fixtureOnce.Do(func() {
		root, err := moduleRoot(".")
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureExports, fixtureErr = ExportMap(root, "./...")
	})
	return fixtureExports, fixtureErr
}

// LoadFixture type-checks the fixture package in dir (every *.go file)
// under the synthetic import path asPath.
func LoadFixture(dir, asPath string) (*Package, error) {
	exports, err := fixtureExportMap()
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	return typecheck(fset, exportImporter(fset, exports), asPath, dir, files)
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectations parses the `// want "re" ...` markers of a loaded package
// into a map from file:line to pending regexps.
func expectations(pkg *Package) (map[string][]*regexp.Regexp, error) {
	want := make(map[string][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					re, err := regexp.Compile(strings.ReplaceAll(m[1], `\"`, `"`))
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %w", key, m[1], err)
					}
					want[key] = append(want[key], re)
				}
			}
		}
	}
	return want, nil
}

// RunFixture runs one analyzer over the fixture package in dir (loaded
// under import path asPath) and fails t unless the diagnostics match the
// fixture's want markers exactly.
func RunFixture(t *testing.T, a *Analyzer, dir, asPath string) {
	t.Helper()
	pkg, err := LoadFixture(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	want, err := expectations(pkg)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for i, re := range want[key] {
			if re.MatchString(d.Message) {
				want[key] = append(want[key][:i], want[key][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var keys []string
	for k, res := range want {
		if len(res) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, re := range want[k] {
			t.Errorf("%s: expected diagnostic matching %q, got none", k, re)
		}
	}
}
