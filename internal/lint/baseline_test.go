package lint

import (
	"go/token"
	"path/filepath"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	const root = "/mod"
	diags := []Diagnostic{
		{Analyzer: "snappin", Pos: token.Position{Filename: "/mod/a/f.go", Line: 10}, Message: "leak"},
		{Analyzer: "snappin", Pos: token.Position{Filename: "/mod/a/f.go", Line: 22}, Message: "leak"},
		{Analyzer: "goroleak", Pos: token.Position{Filename: "/mod/b.go", Line: 3}, Message: "spin"},
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := WriteBaseline(path, root, diags); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	fresh, absorbed := b.Filter(root, diags)
	if len(fresh) != 0 || absorbed != 3 {
		t.Fatalf("identical findings: fresh=%d absorbed=%d, want 0/3", len(fresh), absorbed)
	}

	// Line numbers are not part of the match: shifted findings still
	// land in the baseline.
	shifted := make([]Diagnostic, len(diags))
	copy(shifted, diags)
	for i := range shifted {
		shifted[i].Pos.Line += 100
	}
	if fresh, absorbed = b.Filter(root, shifted); len(fresh) != 0 || absorbed != 3 {
		t.Fatalf("line-shifted findings: fresh=%d absorbed=%d, want 0/3", len(fresh), absorbed)
	}

	// A new instance of an already-baselined finding in the same file
	// exceeds the recorded count and must surface.
	extra := append(shifted, Diagnostic{
		Analyzer: "snappin",
		Pos:      token.Position{Filename: "/mod/a/f.go", Line: 999},
		Message:  "leak",
	})
	fresh, absorbed = b.Filter(root, extra)
	if len(fresh) != 1 || absorbed != 3 {
		t.Fatalf("count overflow: fresh=%d absorbed=%d, want 1/3", len(fresh), absorbed)
	}

	// A missing baseline file is an empty baseline, not an error.
	empty, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if fresh, absorbed = empty.Filter(root, diags); len(fresh) != 3 || absorbed != 0 {
		t.Fatalf("empty baseline: fresh=%d absorbed=%d, want 3/0", len(fresh), absorbed)
	}
}

func TestRelFile(t *testing.T) {
	if got := RelFile("/mod", "/mod/pkg/file.go"); got != "pkg/file.go" {
		t.Errorf("RelFile under root = %q, want pkg/file.go", got)
	}
	if got := RelFile("/mod", "/elsewhere/file.go"); got != "/elsewhere/file.go" {
		t.Errorf("RelFile outside root = %q, want the absolute path back", got)
	}
	if got := RelFile("", "/abs/file.go"); got != "/abs/file.go" {
		t.Errorf("RelFile without root = %q, want the path unchanged", got)
	}
}
