// Package lint is a minimal static-analysis framework in the shape of
// golang.org/x/tools/go/analysis, built on the standard library alone so
// the repo's analyzers need no module downloads. An Analyzer inspects one
// type-checked package at a time through a Pass and reports Diagnostics;
// the loader (load.go) type-checks packages from source against compiler
// export data obtained from `go list`, and the fixture runner
// (fixture.go) is the analysistest counterpart driving `// want` marker
// files. cmd/arblint is the driver.
//
// Suppression directives, shared by every analyzer:
//
//	//arblint:allow <name>[,<name>...] -- <reason>
//	//arblint:todo <name>[,<name>...] -- <reason>
//
// placed on the offending line or the line directly above it. `allow` is
// a reviewed, permanent exemption; `todo` marks tracked debt — a spot
// known to be unsound that the suite documents instead of silently
// passing (`arblint -todos` lists them). A file whose leading comments
// contain `//arblint:shims` is a deprecated-shim compatibility file:
// noshims permits calls to deprecated entry points there, and ctxflow
// permits the context.Background() roots those context-less shims mint.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects the package behind pass and reports findings through
	// pass.Report/Reportf. Returning an error aborts the whole run
	// (reserved for internal failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package. Mod is the whole
// run's module view, through which interprocedural analyzers resolve
// callees across package boundaries and share summaries.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Mod      *Module

	pkg  *Package
	diag *[]Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf reports a finding at pos unless a matching allow/todo
// directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.pkg.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diag = append(*p.diag, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsShimFile reports whether the file containing pos carries the
// //arblint:shims marker.
func (p *Pass) IsShimFile(pos token.Pos) bool {
	return p.pkg.shimFiles[p.Fset.Position(pos).Filename]
}

// directive is one parsed //arblint: comment.
type directive struct {
	kind      string // "allow" or "todo"
	analyzers []string
	reason    string
	pos       token.Position
}

// parseDirectives scans a file's comments for arblint directives,
// recording suppressions per (analyzer, line) and whether the file is a
// shims file.
func (pkg *Package) parseDirectives(fset *token.FileSet, f *ast.File) {
	filename := fset.Position(f.Pos()).Filename
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "arblint:") {
				continue
			}
			text = strings.TrimPrefix(text, "arblint:")
			if text == "shims" || strings.HasPrefix(text, "shims ") {
				pkg.shimFiles[filename] = true
				continue
			}
			var kind string
			switch {
			case strings.HasPrefix(text, "allow "):
				kind, text = "allow", strings.TrimPrefix(text, "allow ")
			case strings.HasPrefix(text, "todo "):
				kind, text = "todo", strings.TrimPrefix(text, "todo ")
			default:
				continue
			}
			names, reason := text, ""
			if i := strings.Index(text, "--"); i >= 0 {
				names, reason = strings.TrimSpace(text[:i]), strings.TrimSpace(text[i+2:])
			}
			d := directive{kind: kind, reason: reason, pos: fset.Position(c.Pos())}
			for _, n := range strings.Split(names, ",") {
				if n = strings.TrimSpace(n); n != "" {
					d.analyzers = append(d.analyzers, n)
				}
			}
			pkg.directives = append(pkg.directives, d)
			for _, a := range d.analyzers {
				// The directive covers its own line and the next line, so
				// it can sit at the end of the offending line or alone on
				// the line above it.
				pkg.suppress[suppressKey{a, filename, d.pos.Line}] = true
				pkg.suppress[suppressKey{a, filename, d.pos.Line + 1}] = true
			}
		}
	}
}

type suppressKey struct {
	analyzer string
	file     string
	line     int
}

func (pkg *Package) suppressed(analyzer string, pos token.Position) bool {
	return pkg.suppress[suppressKey{analyzer, pos.Filename, pos.Line}]
}

// Todo is one tracked-debt marker (//arblint:todo).
type Todo struct {
	Pos       token.Position
	Analyzers []string
	Reason    string
}

// Todos returns every tracked-debt directive in the loaded packages, for
// `arblint -todos`.
func Todos(pkgs []*Package) []Todo {
	var out []Todo
	for _, pkg := range pkgs {
		for _, d := range pkg.directives {
			if d.kind == "todo" {
				out = append(out, Todo{Pos: d.pos, Analyzers: d.analyzers, Reason: d.reason})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics in file/line order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	mod := NewModule(pkgs)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Mod:      mod,
				pkg:      pkg,
				diag:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
