package lint

// Module is the whole-run view the interprocedural analyzers work
// against: every loaded package, with function declarations resolvable
// across package boundaries. Analyzers still report per package (one
// Pass each), but may-reach summaries — "this helper releases its pin
// parameter", "this function's goroutine body terminates", "this
// function may acquire these mutexes" — are computed once per module
// and shared between passes through Memo.
//
// Cross-package identity: a *types.Func seen from its defining package
// (type-checked from source) and the same function seen from an
// importer (resolved through export data) are different objects, so the
// module keys function facts by FuncKey — the stable
// pkgpath.Type.Method string both views agree on.

import (
	"go/ast"
	"go/types"
	"strings"
)

// FuncKey names a function or method as pkgpath.Func or
// pkgpath.Type.Method, ignoring pointerness of the receiver — the
// module-wide identity of a function across source and export-data
// views.
func FuncKey(f *types.Func) string {
	s := f.FullName()
	s = strings.ReplaceAll(s, "(*", "")
	s = strings.ReplaceAll(s, "(", "")
	return strings.ReplaceAll(s, ")", "")
}

// FuncInfo is one resolved function declaration: the syntax plus the
// package it was loaded in (whose Info type-checks its body).
type FuncInfo struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Module indexes the loaded packages for interprocedural analysis.
type Module struct {
	Pkgs []*Package

	decls map[string]*FuncInfo      // FuncKey -> declaration
	memos map[string]map[string]any // analyzer -> its summary store
}

// NewModule builds the module view over pkgs.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:  pkgs,
		decls: make(map[string]*FuncInfo),
		memos: make(map[string]map[string]any),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				m.decls[FuncKey(obj)] = &FuncInfo{Decl: fd, Pkg: pkg}
			}
		}
	}
	return m
}

// Decl resolves a called function to its declaration anywhere in the
// module, or nil for functions outside it (standard library, interface
// methods, function values).
func (m *Module) Decl(f *types.Func) *FuncInfo {
	if f == nil {
		return nil
	}
	return m.decls[FuncKey(f)]
}

// DeclByKey resolves a FuncKey directly.
func (m *Module) DeclByKey(key string) *FuncInfo { return m.decls[key] }

// Memo returns the named analyzer's module-wide summary store. The
// store persists across the analyzer's passes over different packages;
// the analyzer owns the keys and values (typically FuncKey -> summary).
// Runs are single-goroutine, so no locking.
func (m *Module) Memo(analyzer string) map[string]any {
	s, ok := m.memos[analyzer]
	if !ok {
		s = make(map[string]any)
		m.memos[analyzer] = s
	}
	return s
}
