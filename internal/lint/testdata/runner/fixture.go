// Package runnerfix exercises the fixture runner itself: multiple
// want patterns on one line, calls expected to stay silent, and
// directive suppression inside fixtures.
package runnerfix

func twice() {}

func once() {}

func use() {
	twice() // want "first report" "second report"
	once()
	twice() //arblint:allow doubler -- runner test: directives work in fixtures
}
