package tree

import "fmt"

// EventHandler consumes a document event stream; it is structurally
// identical to xmlparse.Handler (tree cannot import xmlparse, which
// depends on this package).
type EventHandler interface {
	Begin(name string) error
	Text(s []byte) error
	End() error
}

// Emit replays t as a document event stream: one Begin/End pair per
// element node, runs of character siblings coalesced into Text events.
// Nodes are visited in document order (= preorder), so event consumers
// observe the same node numbering as the tree. The traversal is iterative
// with a stack bounded by the document depth.
func Emit(t *Tree, h EventHandler) error {
	if t.Len() == 0 {
		return nil
	}
	type frame struct {
		next NodeID // next sibling to process, None when done
	}
	root := t.Root()
	if t.Label(root).IsChar() {
		return fmt.Errorf("tree: root is a character node")
	}
	name, ok := t.names.TagName(t.Label(root))
	if !ok {
		return fmt.Errorf("tree: unnamed label %d at root", t.Label(root))
	}
	if err := h.Begin(name); err != nil {
		return err
	}
	stack := []frame{{next: t.First(root)}}
	var text []byte
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		v := top.next
		if v != None && t.Label(v).IsChar() {
			// Coalesce a run of character siblings.
			text = text[:0]
			for v != None && t.Label(v).IsChar() {
				text = append(text, t.Label(v).Char())
				v = t.Second(v)
			}
			top.next = v
			if err := h.Text(text); err != nil {
				return err
			}
			continue
		}
		if v == None {
			stack = stack[:len(stack)-1]
			if err := h.End(); err != nil {
				return err
			}
			continue
		}
		name, ok := t.names.TagName(t.Label(v))
		if !ok {
			return fmt.Errorf("tree: unnamed label %d at node %d", t.Label(v), v)
		}
		if err := h.Begin(name); err != nil {
			return err
		}
		top.next = t.Second(v)
		stack = append(stack, frame{next: t.First(v)})
	}
	return nil
}

// DocDepth returns the maximum document depth of t (the root has depth 1),
// computed from the binary encoding: following a first-child edge
// descends one level, following a second-child (next-sibling) edge stays.
func DocDepth(t *Tree) int {
	maxDepth := 0
	n := t.Len()
	if n == 0 {
		return 0
	}
	depth := make([]int32, n)
	depth[0] = 1
	for v := 0; v < n; v++ {
		d := depth[v]
		if int(d) > maxDepth {
			maxDepth = int(d)
		}
		if c := t.First(NodeID(v)); c != None {
			depth[c] = d + 1
		}
		if c := t.Second(NodeID(v)); c != None {
			depth[c] = d
		}
	}
	return maxDepth
}
