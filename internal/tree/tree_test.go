package tree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// figure1 builds the unranked tree of Figure 1(a): v1 with children v2, v5,
// v6, where v2 has children v3 and v4. Its binary version (Figure 1(b)) has
// v2 as first child of v1, v3 as first child of v2, v5 as second child of
// v2, v4 as second child of v3, and v6 as second child of v5.
func figure1(t *testing.T) *Tree {
	t.Helper()
	tr, err := BuildUnranked(UNode{Tag: "v1", Children: []UNode{
		{Tag: "v2", Children: []UNode{{Tag: "v3"}, {Tag: "v4"}}},
		{Tag: "v5"},
		{Tag: "v6"},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFigure1BinaryEncoding(t *testing.T) {
	tr := figure1(t)
	if tr.Len() != 6 {
		t.Fatalf("got %d nodes, want 6", tr.Len())
	}
	// Preorder ids: v1=0 v2=1 v3=2 v4=3 v5=4 v6=5.
	want := []struct {
		first, second NodeID
	}{
		{1, None},    // v1
		{2, 4},       // v2
		{None, 3},    // v3
		{None, None}, // v4... see below
		{None, 5},    // v5
		{None, None}, // v6
	}
	for v, w := range want {
		if tr.First(NodeID(v)) != w.first || tr.Second(NodeID(v)) != w.second {
			t.Errorf("node %d: first=%d second=%d, want %d %d",
				v, tr.First(NodeID(v)), tr.Second(NodeID(v)), w.first, w.second)
		}
	}
	if err := tr.CheckPreorder(); err != nil {
		t.Fatal(err)
	}
	for v, wantName := range []string{"v1", "v2", "v3", "v4", "v5", "v6"} {
		if got := tr.Names().Name(tr.Label(NodeID(v))); got != wantName {
			t.Errorf("node %d labeled %s, want %s", v, got, wantName)
		}
	}
}

func TestBuilderTextNodes(t *testing.T) {
	b := NewBuilder(nil)
	if err := b.Begin("a"); err != nil {
		t.Fatal(err)
	}
	if err := b.Text([]byte("xy")); err != nil {
		t.Fatal(err)
	}
	if err := b.Begin("b"); err != nil {
		t.Fatal(err)
	}
	if err := b.End(); err != nil {
		t.Fatal(err)
	}
	if err := b.End(); err != nil {
		t.Fatal(err)
	}
	tr, err := b.Tree()
	if err != nil {
		t.Fatal(err)
	}
	// a(x, y, b): binary: a.first=x, x.second=y, y.second=b.
	if tr.Len() != 4 {
		t.Fatalf("got %d nodes, want 4", tr.Len())
	}
	if !tr.Label(1).IsChar() || tr.Label(1).Char() != 'x' {
		t.Errorf("node 1 label = %v, want char 'x'", tr.Label(1))
	}
	if !tr.Label(2).IsChar() || tr.Label(2).Char() != 'y' {
		t.Errorf("node 2 label = %v, want char 'y'", tr.Label(2))
	}
	if tr.Label(3).IsChar() {
		t.Errorf("node 3 should be element <b>")
	}
	if tr.First(0) != 1 || tr.Second(1) != 2 || tr.Second(2) != 3 {
		t.Errorf("unexpected shape:\n%s", tr)
	}
	if err := tr.CheckPreorder(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(nil)
	if err := b.End(); err == nil {
		t.Error("unbalanced End not rejected")
	}

	b = NewBuilder(nil)
	_ = b.Begin("a")
	_ = b.End()
	if err := b.Begin("b"); err == nil {
		t.Error("second root not rejected")
	}

	b = NewBuilder(nil)
	_ = b.Begin("a")
	if _, err := b.Tree(); err == nil {
		t.Error("unclosed element not rejected")
	}

	b = NewBuilder(nil)
	if _, err := b.Tree(); err == nil {
		t.Error("empty document not rejected")
	}

	b = NewBuilder(nil)
	if err := b.Text([]byte("z")); err == nil {
		t.Error("text outside root not rejected")
	}
}

func TestNamesInternLookup(t *testing.T) {
	ns := NewNames()
	a := ns.MustIntern("alpha")
	b := ns.MustIntern("beta")
	if a == b {
		t.Fatal("distinct names got the same label")
	}
	if a2 := ns.MustIntern("alpha"); a2 != a {
		t.Errorf("re-intern changed label: %d vs %d", a2, a)
	}
	if got, ok := ns.Lookup("beta"); !ok || got != b {
		t.Errorf("Lookup(beta) = %d,%v", got, ok)
	}
	if _, ok := ns.Lookup("gamma"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
	if got, ok := ns.TagName(a); !ok || got != "alpha" {
		t.Errorf("TagName = %q,%v", got, ok)
	}
	if a != FirstNamedLabel {
		t.Errorf("first named label = %d, want %d", a, FirstNamedLabel)
	}
	if ns.Len() != 2 {
		t.Errorf("Len = %d, want 2", ns.Len())
	}
}

func TestNamesRoundTrip(t *testing.T) {
	ns := NewNames()
	names := []string{"gene", "sequence", "publication", "abstract", "page"}
	for _, n := range names {
		ns.MustIntern(n)
	}
	var sb strings.Builder
	if _, err := ns.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	ns2, err := ReadNames(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		l1, _ := ns.Lookup(n)
		l2, ok := ns2.Lookup(n)
		if !ok || l1 != l2 {
			t.Errorf("label for %q not preserved: %d vs %d (ok=%v)", n, l1, l2, ok)
		}
	}
}

func TestCharLabel(t *testing.T) {
	l := Label('G')
	if !l.IsChar() || l.Char() != 'G' {
		t.Errorf("Label('G') misbehaves: %v", l)
	}
	if Label(300).IsChar() {
		t.Error("Label(300) claims to be a char")
	}
	defer func() {
		if recover() == nil {
			t.Error("Char() on named label did not panic")
		}
	}()
	_ = Label(300).Char()
}

func TestParents(t *testing.T) {
	tr := figure1(t)
	parent, kind := tr.Parents()
	wantParent := []NodeID{None, 0, 1, 2, 1, 4}
	wantKind := []uint8{0, 1, 1, 2, 2, 2}
	for v := range wantParent {
		if parent[v] != wantParent[v] || kind[v] != wantKind[v] {
			t.Errorf("node %d: parent=%d kind=%d, want %d %d",
				v, parent[v], kind[v], wantParent[v], wantKind[v])
		}
	}
}

func TestDepths(t *testing.T) {
	tr := figure1(t)
	if d := tr.Depth(); d != 4 {
		// Binary depth: v1-v2-v3-v4 is a path of 4 nodes.
		t.Errorf("binary Depth = %d, want 4", d)
	}
	dd := tr.DocDepth()
	want := []int32{1, 2, 3, 3, 2, 2}
	for v := range want {
		if dd[v] != want[v] {
			t.Errorf("DocDepth[%d] = %d, want %d", v, dd[v], want[v])
		}
	}
}

// RandomUnranked generates a random unranked document for property tests.
func RandomUnranked(rng *rand.Rand, maxNodes int) UNode {
	tags := []string{"a", "b", "c", "d"}
	budget := 1 + rng.Intn(maxNodes)
	var gen func(depth int) UNode
	gen = func(depth int) UNode {
		budget--
		n := UNode{Tag: tags[rng.Intn(len(tags))]}
		if depth < 12 {
			for budget > 0 && rng.Intn(3) > 0 {
				if rng.Intn(4) == 0 {
					budget--
					n.Children = append(n.Children, UNode{Text: string(rune('w' + rng.Intn(4)))})
				} else {
					n.Children = append(n.Children, gen(depth+1))
				}
			}
		}
		return n
	}
	return gen(0)
}

func TestPreorderInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := BuildUnranked(RandomUnranked(rng, 60), nil)
		if err != nil {
			return false
		}
		return tr.CheckPreorder() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDocDepthBoundsBuilderStack(t *testing.T) {
	// A wide flat document: builder stack must stay at document depth (2),
	// not sibling count.
	b := NewBuilder(nil)
	_ = b.Begin("root")
	maxDepth := b.Depth()
	for i := 0; i < 1000; i++ {
		_ = b.Begin("c")
		if b.Depth() > maxDepth {
			maxDepth = b.Depth()
		}
		_ = b.End()
	}
	_ = b.End()
	if _, err := b.Tree(); err != nil {
		t.Fatal(err)
	}
	if maxDepth != 2 {
		t.Errorf("builder stack reached %d, want 2", maxDepth)
	}
}
