package tree

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// recordingHandler captures events as a canonical string.
type recordingHandler struct {
	b     strings.Builder
	depth int
}

func (h *recordingHandler) Begin(name string) error {
	fmt.Fprintf(&h.b, "<%s>", name)
	h.depth++
	return nil
}

func (h *recordingHandler) Text(s []byte) error {
	h.b.Write(s)
	return nil
}

func (h *recordingHandler) End() error {
	h.depth--
	h.b.WriteString("</>")
	return nil
}

func TestEmitRoundTrip(t *testing.T) {
	// Building a tree from events and emitting it back must produce the
	// same event stream.
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 40; iter++ {
		var ref recordingHandler
		b := NewBuilder(nil)
		emitBoth := func(f func(h EventHandler) error) {
			if err := f(&ref); err != nil {
				t.Fatal(err)
			}
			if err := f(b); err != nil {
				t.Fatal(err)
			}
		}
		var gen func(depth int)
		gen = func(depth int) {
			tag := []string{"a", "b", "c"}[rng.Intn(3)]
			emitBoth(func(h EventHandler) error { return h.Begin(tag) })
			for depth < 6 && rng.Intn(3) > 0 {
				if rng.Intn(3) == 0 {
					text := []byte("hello"[:1+rng.Intn(4)])
					emitBoth(func(h EventHandler) error { return h.Text(text) })
				} else {
					gen(depth + 1)
				}
			}
			emitBoth(func(h EventHandler) error { return h.End() })
		}
		gen(0)
		tr, err := b.Tree()
		if err != nil {
			t.Fatal(err)
		}
		var got recordingHandler
		if err := Emit(tr, &got); err != nil {
			t.Fatal(err)
		}
		if got.b.String() != ref.b.String() {
			t.Fatalf("iter %d:\n got %s\nwant %s", iter, got.b.String(), ref.b.String())
		}
	}
}

func TestEmitCoalescesText(t *testing.T) {
	// Adjacent character siblings arrive as one Text event.
	tr := New(nil)
	a := tr.Names().MustIntern("a")
	root := tr.AddNode(a)
	prev := None
	for _, c := range []byte("hi") {
		n := tr.AddNode(Label(c))
		if prev == None {
			tr.SetFirst(root, n)
		} else {
			tr.SetSecond(prev, n)
		}
		prev = n
	}
	var h recordingHandler
	if err := Emit(tr, &h); err != nil {
		t.Fatal(err)
	}
	if h.b.String() != "<a>hi</>" {
		t.Fatalf("emitted %q", h.b.String())
	}
}

func TestEmitRejectsCharRoot(t *testing.T) {
	tr := New(nil)
	tr.AddNode(Label('x'))
	var h recordingHandler
	if err := Emit(tr, &h); err == nil {
		t.Fatal("Emit accepted a character root")
	}
}

func TestEmitEmptyTree(t *testing.T) {
	var h recordingHandler
	if err := Emit(New(nil), &h); err != nil {
		t.Fatal(err)
	}
	if h.b.Len() != 0 {
		t.Fatalf("emitted %q from an empty tree", h.b.String())
	}
}

func TestDocDepth(t *testing.T) {
	b := NewBuilder(nil)
	for _, ev := range []string{"a", "b", "c", "/", "/", "b", "/", "/"} {
		var err error
		if ev == "/" {
			err = b.End()
		} else {
			err = b.Begin(ev)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	tr, err := b.Tree()
	if err != nil {
		t.Fatal(err)
	}
	if d := DocDepth(tr); d != 3 {
		t.Fatalf("DocDepth = %d, want 3", d)
	}
}
