package tree

import (
	"errors"
	"fmt"
)

// Builder incrementally constructs a Tree from an unranked-document event
// stream (begin-element / text / end-element), producing the first-child/
// next-sibling binary encoding in preorder. Because document order equals
// preorder of the binary encoding, the builder works in a single forward
// pass with a stack bounded by the document depth.
type Builder struct {
	t *Tree
	// stack holds, per open element, the element node and its most
	// recently added child (None if it has none yet).
	stack []builderFrame
	done  bool
	err   error
}

type builderFrame struct {
	node      NodeID
	lastChild NodeID
}

// NewBuilder returns a builder producing into a fresh tree that uses the
// given name table (nil for a fresh one).
func NewBuilder(names *Names) *Builder {
	return &Builder{t: New(names)}
}

func (b *Builder) fail(err error) error {
	if b.err == nil {
		b.err = err
	}
	return b.err
}

// attach links a fresh node v as the next child of the innermost open
// element (or as the root if none is open).
func (b *Builder) attach(v NodeID) error {
	if len(b.stack) == 0 {
		if v != 0 {
			return b.fail(errors.New("tree: multiple document roots"))
		}
		return nil
	}
	top := &b.stack[len(b.stack)-1]
	if top.lastChild == None {
		b.t.SetFirst(top.node, v)
	} else {
		b.t.SetSecond(top.lastChild, v)
	}
	top.lastChild = v
	return nil
}

// Begin opens an element with the given tag name.
func (b *Builder) Begin(name string) error {
	if b.err != nil {
		return b.err
	}
	if b.done {
		return b.fail(errors.New("tree: content after document root"))
	}
	l, err := b.t.names.Intern(name)
	if err != nil {
		return b.fail(err)
	}
	v := b.t.AddNode(l)
	if err := b.attach(v); err != nil {
		return err
	}
	b.stack = append(b.stack, builderFrame{node: v, lastChild: None})
	return nil
}

// BeginLabel opens an element with an already-interned label.
func (b *Builder) BeginLabel(l Label) error {
	if b.err != nil {
		return b.err
	}
	if b.done {
		return b.fail(errors.New("tree: content after document root"))
	}
	v := b.t.AddNode(l)
	if err := b.attach(v); err != nil {
		return err
	}
	b.stack = append(b.stack, builderFrame{node: v, lastChild: None})
	return nil
}

// Text adds the bytes of s as character nodes, one node per byte, children
// of the innermost open element (paper Section 2.1: text is part of the
// tree, one node per character).
func (b *Builder) Text(s []byte) error {
	if b.err != nil {
		return b.err
	}
	if len(b.stack) == 0 {
		if len(s) > 0 {
			return b.fail(errors.New("tree: text outside document root"))
		}
		return nil
	}
	for _, c := range s {
		v := b.t.AddNode(Label(c))
		if err := b.attach(v); err != nil {
			return err
		}
	}
	return nil
}

// End closes the innermost open element.
func (b *Builder) End() error {
	if b.err != nil {
		return b.err
	}
	if len(b.stack) == 0 {
		return b.fail(errors.New("tree: unbalanced end event"))
	}
	b.stack = b.stack[:len(b.stack)-1]
	if len(b.stack) == 0 {
		b.done = true
	}
	return nil
}

// Depth returns the current open-element nesting depth.
func (b *Builder) Depth() int { return len(b.stack) }

// Tree finalises and returns the built tree. It is an error if elements
// remain open or no root was ever produced.
func (b *Builder) Tree() (*Tree, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("tree: %d unclosed elements", len(b.stack))
	}
	if b.t.Len() == 0 {
		return nil, errors.New("tree: empty document")
	}
	return b.t, nil
}

// FromUnranked builds a tree from a parent/children adjacency given as
// nested structure, mainly for tests. A Node value is an element with a tag
// and children, or a text string.
type UNode struct {
	Tag      string
	Text     string // if Tag == "", a text run
	Children []UNode
}

// BuildUnranked converts a nested unranked description into a binary Tree.
func BuildUnranked(root UNode, names *Names) (*Tree, error) {
	b := NewBuilder(names)
	var walk func(n UNode) error
	walk = func(n UNode) error {
		if n.Tag == "" {
			return b.Text([]byte(n.Text))
		}
		if err := b.Begin(n.Tag); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return b.End()
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return b.Tree()
}
