package tree

import (
	"fmt"
	"strings"
)

// NodeID identifies a node of a Tree: its preorder index. Nodes of the
// binary tree are stored in preorder, where a node precedes its entire first
// subtree, which precedes its entire second subtree. For the first-child/
// next-sibling encoding of an XML document, this preorder coincides with XML
// document order.
type NodeID int32

// None is the absent-node sentinel.
const None NodeID = -1

// Tree is an in-memory binary tree in the model of Section 2.1 of the
// paper: each node carries a label and up to two children (first child =
// first child of the XML node; second child = next sibling of the XML
// node). The zero node (if the tree is non-empty) is the root.
//
// Tree is the in-memory counterpart of a .arb database and is used by the
// in-memory evaluation drivers, the oracle evaluators and the tests. Huge
// databases are processed directly from disk by internal/storage without
// materialising a Tree.
type Tree struct {
	label  []Label
	first  []NodeID
	second []NodeID
	names  *Names
}

// New returns an empty tree using the given label-name table. A nil table
// is replaced by a fresh one.
func New(names *Names) *Tree {
	if names == nil {
		names = NewNames()
	}
	return &Tree{names: names}
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.label) }

// Names returns the label-name table of the tree.
func (t *Tree) Names() *Names { return t.names }

// Root returns the root node, or None for an empty tree.
func (t *Tree) Root() NodeID {
	if len(t.label) == 0 {
		return None
	}
	return 0
}

// Label returns the label of node v.
func (t *Tree) Label(v NodeID) Label { return t.label[v] }

// First returns the first (left) child of v, or None.
func (t *Tree) First(v NodeID) NodeID { return t.first[v] }

// Second returns the second (right) child of v — the next sibling in the
// unranked view — or None.
func (t *Tree) Second(v NodeID) NodeID { return t.second[v] }

// HasFirst reports whether v has a first child.
func (t *Tree) HasFirst(v NodeID) bool { return t.first[v] != None }

// HasSecond reports whether v has a second child.
func (t *Tree) HasSecond(v NodeID) bool { return t.second[v] != None }

// IsRoot reports whether v is the root.
func (t *Tree) IsRoot(v NodeID) bool { return v == 0 }

// AddNode appends a node with the given label and no children and returns
// its id. Children must be attached with SetFirst/SetSecond; to keep the
// preorder invariant, callers must attach a node only to an earlier node,
// first subtrees before second subtrees. Builder (see build.go) maintains
// the invariant automatically.
func (t *Tree) AddNode(l Label) NodeID {
	id := NodeID(len(t.label))
	t.label = append(t.label, l)
	t.first = append(t.first, None)
	t.second = append(t.second, None)
	return id
}

// SetFirst makes c the first child of v.
func (t *Tree) SetFirst(v, c NodeID) { t.first[v] = c }

// SetSecond makes c the second child of v.
func (t *Tree) SetSecond(v, c NodeID) { t.second[v] = c }

// Parents computes, for every node, its binary-tree parent and which child
// it is (1 or 2). The root has parent None and kind 0. This inverse view is
// needed by the naive fixpoint evaluator for invFirstChild/invSecondChild
// moves; the automata engines never need it.
func (t *Tree) Parents() (parent []NodeID, kind []uint8) {
	n := t.Len()
	parent = make([]NodeID, n)
	kind = make([]uint8, n)
	for i := range parent {
		parent[i] = None
	}
	for v := 0; v < n; v++ {
		if c := t.first[v]; c != None {
			parent[c] = NodeID(v)
			kind[c] = 1
		}
		if c := t.second[v]; c != None {
			parent[c] = NodeID(v)
			kind[c] = 2
		}
	}
	return parent, kind
}

// CheckPreorder verifies the structural invariants: node 0 is the root,
// every node's first child is the next preorder index, and every node's
// second child immediately follows its first subtree. It returns an error
// describing the first violation found.
func (t *Tree) CheckPreorder() error {
	n := NodeID(t.Len())
	if n == 0 {
		return nil
	}
	// end[v] = preorder index one past the binary subtree of v.
	var check func(v NodeID) (NodeID, error)
	check = func(v NodeID) (NodeID, error) {
		end := v + 1
		if c := t.first[v]; c != None {
			if c != end {
				return 0, fmt.Errorf("tree: node %d: first child %d, want %d", v, c, end)
			}
			var err error
			end, err = check(c)
			if err != nil {
				return 0, err
			}
		}
		if c := t.second[v]; c != None {
			if c != end {
				return 0, fmt.Errorf("tree: node %d: second child %d, want %d", v, c, end)
			}
			var err error
			end, err = check(c)
			if err != nil {
				return 0, err
			}
		}
		return end, nil
	}
	end, err := check(0)
	if err != nil {
		return err
	}
	if end != n {
		return fmt.Errorf("tree: root subtree covers %d of %d nodes", end, n)
	}
	return nil
}

// Depth returns the depth of the binary tree (number of nodes on the
// longest root-to-leaf path); 0 for an empty tree. Computed iteratively so
// right-deep trees (long sibling chains) do not overflow the goroutine
// stack.
func (t *Tree) Depth() int {
	if t.Len() == 0 {
		return 0
	}
	type frame struct {
		v NodeID
		d int
	}
	max := 0
	stack := []frame{{0, 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.d > max {
			max = f.d
		}
		if c := t.second[f.v]; c != None {
			stack = append(stack, frame{c, f.d + 1})
		}
		if c := t.first[f.v]; c != None {
			stack = append(stack, frame{c, f.d + 1})
		}
	}
	return max
}

// DocDepth returns the depth of the node in the *unranked* (XML document)
// view for every node: the root has document depth 1, element children and
// character children one more than their parent. Second-child (sibling)
// edges do not increase document depth.
func (t *Tree) DocDepth() []int32 {
	n := t.Len()
	d := make([]int32, n)
	if n == 0 {
		return d
	}
	d[0] = 1
	for v := 0; v < n; v++ {
		if c := t.first[v]; c != None {
			d[c] = d[v] + 1
		}
		if c := t.second[v]; c != None {
			d[c] = d[v]
		}
	}
	return d
}

// String renders small trees for test failure messages, one node per line.
func (t *Tree) String() string {
	var b strings.Builder
	for v := 0; v < t.Len(); v++ {
		fmt.Fprintf(&b, "%d: %s first=%d second=%d\n", v, t.names.Name(t.label[v]), t.first[v], t.second[v])
	}
	return b.String()
}
