// Package tree implements the binary (first-child/next-sibling) tree model
// of XML documents used throughout the paper (Section 2.1).
//
// XML documents are modelled as node-labeled ordered trees in which text is
// part of the tree: every text character is its own leaf node. Unranked XML
// trees are interpreted as binary trees by taking the first child of a node
// as the left (first) child and the next sibling as the right (second)
// child. Nodes are stored in preorder, which for this encoding coincides
// with XML document order.
package tree

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Label is a node label index. Indices 0..255 are reserved for text
// characters (the byte value is the label); indices >= 256 denote named
// labels (XML tags) resolved through a Names table. This matches the .arb
// storage model, where the label field is 14 bits wide.
type Label uint16

// MaxLabel is the largest representable label index (14 bits).
const MaxLabel Label = 1<<14 - 1

// FirstNamedLabel is the smallest label index that denotes a named label
// (tag) rather than a text character.
const FirstNamedLabel Label = 256

// IsChar reports whether l denotes a text character node.
func (l Label) IsChar() bool { return l < FirstNamedLabel }

// Char returns the text character denoted by l. It panics if l is a named
// label.
func (l Label) Char() byte {
	if !l.IsChar() {
		panic(fmt.Sprintf("tree: label %d is not a character", l))
	}
	return byte(l)
}

// Names maps named labels (indices >= 256) to their string names, mirroring
// the contents of a .lab file: the name of label index i is the (i-255)th
// whitespace-separated entry.
type Names struct {
	names []string       // names[i] is the name of label 256+i
	index map[string]int // name -> offset into names
}

// NewNames returns an empty label-name table.
func NewNames() *Names {
	return &Names{index: make(map[string]int)}
}

// Intern returns the label index for name, assigning a fresh index if the
// name has not been seen before. It returns an error if the 14-bit label
// space is exhausted.
func (ns *Names) Intern(name string) (Label, error) {
	if i, ok := ns.index[name]; ok {
		return FirstNamedLabel + Label(i), nil
	}
	i := len(ns.names)
	if Label(i) > MaxLabel-FirstNamedLabel {
		return 0, fmt.Errorf("tree: label space exhausted (%d named labels max)", MaxLabel-FirstNamedLabel+1)
	}
	ns.names = append(ns.names, name)
	ns.index[name] = i
	return FirstNamedLabel + Label(i), nil
}

// MustIntern is Intern, panicking on label-space exhaustion. Intended for
// tests and generators with known-small alphabets.
func (ns *Names) MustIntern(name string) Label {
	l, err := ns.Intern(name)
	if err != nil {
		panic(err)
	}
	return l
}

// Lookup returns the label index of name, if known.
func (ns *Names) Lookup(name string) (Label, bool) {
	i, ok := ns.index[name]
	if !ok {
		return 0, false
	}
	return FirstNamedLabel + Label(i), true
}

// Name returns a printable form of label l: the interned name for named
// labels, or a quoted character for text labels.
func (ns *Names) Name(l Label) string {
	if l.IsChar() {
		return fmt.Sprintf("%q", string(rune(l)))
	}
	i := int(l - FirstNamedLabel)
	if i >= len(ns.names) {
		return fmt.Sprintf("label#%d", l)
	}
	return ns.names[i]
}

// TagName returns the tag name of a named label l, and false for character
// or unknown labels.
func (ns *Names) TagName(l Label) (string, bool) {
	if l.IsChar() {
		return "", false
	}
	i := int(l - FirstNamedLabel)
	if i >= len(ns.names) {
		return "", false
	}
	return ns.names[i], true
}

// Len returns the number of named labels in the table.
func (ns *Names) Len() int { return len(ns.names) }

// All returns the named labels in index order.
func (ns *Names) All() []string {
	out := make([]string, len(ns.names))
	copy(out, ns.names)
	return out
}

// WriteTo serialises the table in .lab format: whitespace-separated names in
// index order. Names must not contain whitespace; Intern does not enforce
// this because XML tag names cannot contain whitespace anyway.
func (ns *Names) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for i, name := range ns.names {
		sep := ""
		if i > 0 {
			sep = "\n"
		}
		m, err := fmt.Fprintf(w, "%s%s", sep, name)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadNames parses a .lab file: the (i+1)th whitespace-separated entry names
// label index 256+i.
func ReadNames(r io.Reader) (*Names, error) {
	ns := NewNames()
	sc := bufio.NewScanner(r)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		if _, err := ns.Intern(sc.Text()); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ns, nil
}

// String renders the table for debugging.
func (ns *Names) String() string {
	var b strings.Builder
	keys := make([]string, 0, len(ns.index))
	for k := range ns.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return ns.index[keys[i]] < ns.index[keys[j]] })
	for _, k := range keys {
		fmt.Fprintf(&b, "%d=%s ", FirstNamedLabel+Label(ns.index[k]), k)
	}
	return strings.TrimSpace(b.String())
}
