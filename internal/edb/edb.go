// Package edb evaluates the unary EDB relations of the binary tree model
// (Section 2.1) on node signatures. It is shared by every evaluator in the
// repository: the two-phase automata engine (which interns EDB fact sets
// per signature), the naive fixpoint oracle, and the streaming baseline.
package edb

import (
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// NodeSig captures everything about a node that unary EDB relations can
// observe: its label, whether it has a first/second child, and whether it
// is the root. In the .arb storage model this is exactly the information
// in a node's 2-byte record (plus root-ness, which is positional).
type NodeSig struct {
	Label     tree.Label
	HasFirst  bool
	HasSecond bool
	IsRoot    bool
	// Extra is a bitmask of auxiliary per-node predicates (Aux[k] holds
	// iff bit k is set) — the paper's Section 7 mechanism for making
	// precomputed information available to the automata as part of the
	// labeling. Zero when unused.
	Extra uint16
}

// SigOf returns the signature of node v of t.
func SigOf(t *tree.Tree, v tree.NodeID) NodeSig {
	return NodeSig{
		Label:     t.Label(v),
		HasFirst:  t.HasFirst(v),
		HasSecond: t.HasSecond(v),
		IsRoot:    t.IsRoot(v),
	}
}

// ResolveLabel resolves a tmnf.Unary label reference against a name table.
// A Label[x] test refers to the tag named x if the database knows such a
// tag; otherwise, if x is a single character, it refers to the character
// label x (the paper's model makes no lexical distinction: characters are
// just labels 0..255). The boolean result reports whether the label could
// be resolved at all — an unresolvable label test holds on no node.
func ResolveLabel(u tmnf.Unary, names *tree.Names) (tree.Label, bool) {
	switch u.Kind {
	case ULabelKind:
		if l, ok := names.Lookup(u.Name); ok {
			return l, true
		}
		if len(u.Name) == 1 {
			return tree.Label(u.Name[0]), true
		}
		return 0, false
	case UCharKind:
		return tree.Label(u.Char), true
	}
	return 0, false
}

// Kind aliases, so callers of this package do not need to import tmnf for
// the constants alone.
const (
	ULabelKind = tmnf.ULabel
	UCharKind  = tmnf.UChar
)

// Holds reports whether the unary relation u holds on a node with
// signature sig, resolving label names against names.
func Holds(u tmnf.Unary, names *tree.Names, sig NodeSig) bool {
	var v bool
	switch u.Kind {
	case tmnf.UAll:
		v = true
	case tmnf.URoot:
		v = sig.IsRoot
	case tmnf.UHasFirstChild:
		v = sig.HasFirst
	case tmnf.UHasSecondChild:
		v = sig.HasSecond
	case tmnf.UText:
		v = sig.Label.IsChar()
	case tmnf.ULabel, tmnf.UChar:
		l, ok := ResolveLabel(u, names)
		v = ok && sig.Label == l
	case tmnf.UAux:
		v = sig.Extra&(1<<u.Aux) != 0
	}
	if u.Neg {
		return !v
	}
	return v
}
