package edb

import (
	"testing"

	"arb/internal/tmnf"
	"arb/internal/tree"
)

func TestHolds(t *testing.T) {
	names := tree.NewNames()
	a := names.MustIntern("a")
	sig := NodeSig{Label: a, HasFirst: true, HasSecond: false, IsRoot: true}
	charSig := NodeSig{Label: tree.Label('x')}

	cases := []struct {
		u    tmnf.Unary
		sig  NodeSig
		want bool
	}{
		{tmnf.Unary{Kind: tmnf.UAll}, sig, true},
		{tmnf.Unary{Kind: tmnf.URoot}, sig, true},
		{tmnf.Unary{Kind: tmnf.URoot, Neg: true}, sig, false},
		{tmnf.Unary{Kind: tmnf.UHasFirstChild}, sig, true},
		{tmnf.Unary{Kind: tmnf.UHasSecondChild}, sig, false},
		{tmnf.Unary{Kind: tmnf.UHasSecondChild, Neg: true}, sig, true}, // LastSibling
		{tmnf.Unary{Kind: tmnf.UText}, sig, false},
		{tmnf.Unary{Kind: tmnf.UText}, charSig, true},
		{tmnf.Unary{Kind: tmnf.ULabel, Name: "a"}, sig, true},
		{tmnf.Unary{Kind: tmnf.ULabel, Name: "b"}, sig, false},
		{tmnf.Unary{Kind: tmnf.ULabel, Name: "x"}, charSig, true}, // single chars fall back to char labels
		{tmnf.Unary{Kind: tmnf.UChar, Char: 'x'}, charSig, true},
		{tmnf.Unary{Kind: tmnf.UChar, Char: 'y'}, charSig, false},
		{tmnf.Unary{Kind: tmnf.UAux, Aux: 3}, NodeSig{Extra: 1 << 3}, true},
		{tmnf.Unary{Kind: tmnf.UAux, Aux: 2}, NodeSig{Extra: 1 << 3}, false},
		{tmnf.Unary{Kind: tmnf.UAux, Aux: 2, Neg: true}, NodeSig{Extra: 1 << 3}, true},
	}
	for _, c := range cases {
		if got := Holds(c.u, names, c.sig); got != c.want {
			t.Errorf("Holds(%s, %+v) = %v, want %v", c.u, c.sig, got, c.want)
		}
	}
}

func TestResolveLabelUnknown(t *testing.T) {
	names := tree.NewNames()
	// Unknown multi-character tag: unresolvable, holds nowhere.
	if _, ok := ResolveLabel(tmnf.Unary{Kind: tmnf.ULabel, Name: "missing"}, names); ok {
		t.Fatal("resolved a label no database knows")
	}
	if Holds(tmnf.Unary{Kind: tmnf.ULabel, Name: "missing"}, names, NodeSig{Label: 300}) {
		t.Fatal("unresolvable label test held")
	}
	// Its complement holds everywhere.
	if !Holds(tmnf.Unary{Kind: tmnf.ULabel, Name: "missing", Neg: true}, names, NodeSig{Label: 300}) {
		t.Fatal("complement of unresolvable label test did not hold")
	}
}

func TestSigOf(t *testing.T) {
	tr := tree.New(nil)
	a := tr.Names().MustIntern("a")
	root := tr.AddNode(a)
	c := tr.AddNode(tree.Label('h'))
	tr.SetFirst(root, c)

	if got := SigOf(tr, root); got != (NodeSig{Label: a, HasFirst: true, IsRoot: true}) {
		t.Fatalf("SigOf(root) = %+v", got)
	}
	if got := SigOf(tr, c); got != (NodeSig{Label: tree.Label('h')}) {
		t.Fatalf("SigOf(child) = %+v", got)
	}
}
