package automata

import (
	"math/rand"
	"testing"

	"arb/internal/naive"
	"arb/internal/testutil"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// TestSelectTMNFMatchesNaive is the Proposition 3.3 differential: the STA
// selection semantics applied to a TMNF program's assignment automaton
// must coincide with the program's minimal-model semantics.
func TestSelectTMNFMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 80; iter++ {
		tr := testutil.RandomTree(rng, 25)
		prog := testutil.RandomProgramParsed(rng, 3, 6)
		got, err := SelectTMNF(tr, prog)
		if err != nil {
			t.Fatalf("SelectTMNF: %v", err)
		}
		want := naive.Evaluate(tr, prog)
		for _, q := range prog.Queries() {
			for v := 0; v < tr.Len(); v++ {
				if got[q][v] != want.Holds(q, tree.NodeID(v)) {
					t.Fatalf("iter %d: %s(%d): STA %v, naive %v\nprogram:\n%s\ntree:\n%s",
						iter, prog.PredName(q), v, got[q][v], want.Holds(q, tree.NodeID(v)), prog, tr)
				}
			}
		}
	}
}

// TestFromTMNFMatchesNaive materialises the explicit STA and runs its
// generic Select; same differential, exercising the formal automaton
// object end to end.
func TestFromTMNFMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 25; iter++ {
		tr := testutil.RandomTree(rng, 15)
		prog := testutil.RandomProgramParsed(rng, 3, 5)
		sta, err := FromTMNF(prog, tr.Names(), labelsOf(tr))
		if err != nil {
			t.Fatalf("FromTMNF: %v", err)
		}
		got := sta.Select(tr)
		q := prog.Queries()[0]
		want := naive.Evaluate(tr, prog)
		for v := 0; v < tr.Len(); v++ {
			if got[v] != want.Holds(q, tree.NodeID(v)) {
				t.Fatalf("iter %d: node %d: STA %v, naive %v\nprogram:\n%s\ntree:\n%s",
					iter, v, got[v], want.Holds(q, tree.NodeID(v)), prog, tr)
			}
		}
	}
}

func TestFromTMNFAlwaysHasAcceptingRun(t *testing.T) {
	// The all-true assignment is closed under any Horn rule set, so the
	// assignment automaton accepts every tree.
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 20; iter++ {
		tr := testutil.RandomTree(rng, 10)
		prog := testutil.RandomProgramParsed(rng, 3, 5)
		sta, err := FromTMNF(prog, tr.Names(), labelsOf(tr))
		if err != nil {
			t.Fatalf("FromTMNF: %v", err)
		}
		if n := sta.AcceptingRunCount(tr, 1); n == 0 {
			t.Fatalf("iter %d: no accepting run\nprogram:\n%s", iter, prog)
		}
	}
}

func TestSelectTMNFPaperExample22(t *testing.T) {
	// Example 2.2: Even/Odd leaf counting. On a document with three "a"
	// leaves under a root, Even must hold at the root iff the count is
	// even.
	src := `
Even :- Leaf, -Label[a];
Odd  :- Leaf, Label[a];
SFREven :- Even, LastSibling;
SFROdd  :- Odd, LastSibling;
FSEven :- SFREven.invNextSibling;
FSOdd  :- SFROdd.invNextSibling;
SFREven :- FSEven, Even;
SFROdd  :- FSEven, Odd;
SFROdd  :- FSOdd, Even;
SFREven :- FSOdd, Odd;
Even :- SFREven.invFirstChild;
Odd  :- SFROdd.invFirstChild;
`
	for leaves, wantEven := range map[int]bool{1: false, 2: true, 3: false, 4: true} {
		prog := tmnf.MustParse(src)
		if err := prog.SetQueries("Even"); err != nil {
			t.Fatal(err)
		}
		tr := tree.New(nil)
		root := tr.AddNode(tr.Names().MustIntern("r"))
		a := tr.Names().MustIntern("a")
		prev := tree.None
		for i := 0; i < leaves; i++ {
			n := tr.AddNode(a)
			if prev == tree.None {
				tr.SetFirst(root, n)
			} else {
				tr.SetSecond(prev, n)
			}
			prev = n
		}
		got, err := SelectTMNF(tr, prog)
		if err != nil {
			t.Fatal(err)
		}
		q := prog.Queries()[0]
		if got[q][0] != wantEven {
			t.Fatalf("%d a-leaves: Even at root = %v, want %v", leaves, got[q][0], wantEven)
		}
	}
}

func TestOraclePredicateLimits(t *testing.T) {
	var sb []byte
	for i := 0; i < 25; i++ {
		sb = append(sb, []byte("P"+string(rune('0'+i/10))+string(rune('0'+i%10))+" :- Root;\n")...)
	}
	prog := tmnf.MustParse(string(sb))
	prog.AddQuery(0)
	tr := tree.New(nil)
	tr.AddNode(tr.Names().MustIntern("a"))
	if _, err := SelectTMNF(tr, prog); err == nil {
		t.Fatal("SelectTMNF accepted a 25-predicate program")
	}
	if _, err := FromTMNF(prog, tr.Names(), labelsOf(tr)); err == nil {
		t.Fatal("FromTMNF accepted a 25-predicate program")
	}
}

// TestDeterminizeFromTMNF determinizes the assignment STA of tiny TMNF
// programs and checks acceptance equivalence with the NTA on random
// trees (the STAs accept every tree — F covers all root-flagged
// assignments reachable by the always-present all-true run).
func TestDeterminizeFromTMNF(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for iter := 0; iter < 10; iter++ {
		tr := testutil.RandomTree(rng, 10)
		prog := testutil.RandomProgramParsed(rng, 2, 3)
		sta, err := FromTMNF(prog, tr.Names(), labelsOf(tr))
		if err != nil {
			t.Fatalf("FromTMNF: %v", err)
		}
		dta, _ := sta.Determinize(labelsOf(tr))
		got, err := dta.Accepts(tr)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if want := sta.Accepts(tr); got != want {
			t.Fatalf("iter %d: determinized %v, NTA %v", iter, got, want)
		}
		if !got {
			t.Fatalf("iter %d: assignment automaton rejected a tree", iter)
		}
	}
}
