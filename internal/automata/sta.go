package automata

import "arb/internal/tree"

// STA is a selecting tree automaton (Definition 3.2): an NTA together with
// a set S of selecting states. The unary query defined by an STA maps a
// tree T to
//
//	A(T) = { v | ρ(v) ∈ S for every accepting run ρ of A on T }.
//
// Note the universal quantification: when T admits no accepting run at
// all, every node is (vacuously) selected; Select implements this literal
// semantics. The STAs produced by FromTMNF always have at least one
// accepting run.
type STA struct {
	NTA
	Selecting []bool // S; len NumStates
}

// NewSTA returns an STA with n states and empty F, S and δ.
func NewSTA(n int) *STA {
	return &STA{NTA: *NewNTA(n), Selecting: make([]bool, n)}
}

// SetSelecting puts q into S.
func (a *STA) SetSelecting(q State) { a.Selecting[q] = true }

// Select evaluates the STA's unary query on t, returning one boolean per
// node (indexed by preorder id).
//
// The computation mirrors the two-phase scheme of Section 4, with explicit
// state sets in place of residual programs: a bottom-up pass computes the
// states reachable at each node in some run (the powerset construction),
// and a top-down pass prunes them to the states that occur in at least one
// accepting run ("viable" states). Because run constraints are local to
// tree edges, partial runs compose, so v is selected iff every viable
// state at v is selecting.
func (a *STA) Select(t *tree.Tree) []bool {
	n := t.Len()
	selected := make([]bool, n)
	if n == 0 {
		return selected
	}
	reach := a.reachable(t)

	// viable[v] ⊆ reach[v]: states occurring at v in some accepting run.
	viable := make([]stateSet, n)
	var rootViable []State
	for _, q := range reach[0] {
		if a.Final[q] {
			rootViable = append(rootViable, q)
		}
	}
	viable[0] = canonSet(rootViable)

	for v := 0; v < n; v++ {
		label := t.Label(tree.NodeID(v))
		first := t.First(tree.NodeID(v))
		second := t.Second(tree.NodeID(v))
		if first == tree.None && second == tree.None {
			continue
		}
		lefts := []State{Bottom}
		if first != tree.None {
			lefts = reach[first]
		}
		rights := []State{Bottom}
		if second != tree.None {
			rights = reach[second]
		}
		var v1, v2 []State
		for _, ql := range lefts {
			for _, qr := range rights {
				// Does some viable parent state extend (ql, qr)?
				ok := false
				for _, q := range a.Trans[Key{ql, qr, label}] {
					if viable[v].has(q) {
						ok = true
						break
					}
				}
				if ok {
					if first != tree.None {
						v1 = append(v1, ql)
					}
					if second != tree.None {
						v2 = append(v2, qr)
					}
				}
			}
		}
		if first != tree.None {
			viable[first] = canonSet(v1)
		}
		if second != tree.None {
			viable[second] = canonSet(v2)
		}
	}

	for v := 0; v < n; v++ {
		sel := true
		for _, q := range viable[v] {
			if !a.Selecting[q] {
				sel = false
				break
			}
		}
		selected[v] = sel
	}
	return selected
}

// AcceptingRunCount returns the number of accepting runs of the automaton
// on t, capped at limit (0 = no cap). Exponential; for tests on tiny
// trees, where it lets properties quantify over "every accepting run"
// directly.
func (a *STA) AcceptingRunCount(t *tree.Tree, limit int) int {
	return a.NTA.countAcceptingRuns(t, limit)
}

func (a *NTA) countAcceptingRuns(t *tree.Tree, limit int) int {
	n := t.Len()
	if n == 0 {
		return 0
	}
	// runs[v][q] = number of runs of the subtree of v assigning q to v.
	runs := make([]map[State]int, n)
	for v := n - 1; v >= 0; v-- {
		runs[v] = map[State]int{}
		lefts := map[State]int{Bottom: 1}
		if c := t.First(tree.NodeID(v)); c != tree.None {
			lefts = runs[c]
		}
		rights := map[State]int{Bottom: 1}
		if c := t.Second(tree.NodeID(v)); c != tree.None {
			rights = runs[c]
		}
		label := t.Label(tree.NodeID(v))
		for ql, cl := range lefts {
			for qr, cr := range rights {
				for _, q := range a.Trans[Key{ql, qr, label}] {
					runs[v][q] += cl * cr
					if limit > 0 && runs[v][q] > limit {
						runs[v][q] = limit
					}
				}
			}
		}
	}
	total := 0
	for q, c := range runs[0] {
		if a.Final[q] {
			total += c
			if limit > 0 && total > limit {
				return limit
			}
		}
	}
	return total
}
