package automata

import (
	"fmt"

	"arb/internal/edb"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// This file implements the translation from TMNF to selecting tree
// automata underlying Proposition 3.3 (the [8] construction): STA states
// are truth assignments to the IDB predicates, a run is a labeling of the
// tree with assignments that is closed under the program's rules, all
// states are final (so all runs are accepting), and the selecting states
// for query predicate P are the assignments containing P. Because each
// run is a model of the grounded Horn program and the minimal model is
// the intersection of all models, a node satisfies P in the TMNF
// semantics iff every (accepting) run assigns it a P-containing state —
// which is exactly the STA selection criterion.
//
// Both entry points are oracles for the test suite: FromTMNF materialises
// an explicit STA (exponential in the number of predicates; tiny programs
// only), while SelectTMNF evaluates the same semantics directly on a tree
// without materialising the transition relation.

// pairRules captures the inter-node consistency constraints of a TMNF
// program as bitmask implications. A labeling assignment is a bitmask over
// the program's predicates.
type pairRules struct {
	prog    *tmnf.Program
	names   *tree.Names
	unaries []tmnf.Unary
	// local rules: if every body predicate bit is set and every body
	// unary holds on the signature, head must be set.
	local []localRule
	// moveK[k-1]: From at parent forces Head at k-th child.
	// invK[k-1]: From at k-th child forces Head at parent.
	move, inv [2][]implication
}

type localRule struct {
	head    uint32
	body    uint32 // predicate bits that must all be set
	unaries []int  // indices into unaries that must all hold
}

type implication struct{ from, to uint32 }

func newPairRules(prog *tmnf.Program, names *tree.Names) (*pairRules, error) {
	if prog.NumPreds() > 20 {
		return nil, fmt.Errorf("automata: oracle limited to 20 IDB predicates, program has %d", prog.NumPreds())
	}
	pr := &pairRules{prog: prog, names: names, unaries: prog.Unaries()}
	for _, r := range prog.Rules() {
		switch r.Kind {
		case tmnf.RuleLocal:
			lr := localRule{head: 1 << uint(r.Head)}
			for _, a := range r.Body {
				if a.IsUnary {
					lr.unaries = append(lr.unaries, a.U)
				} else {
					lr.body |= 1 << uint(a.Pred)
				}
			}
			pr.local = append(pr.local, lr)
		case tmnf.RuleMove:
			pr.move[r.Rel-1] = append(pr.move[r.Rel-1], implication{1 << uint(r.From), 1 << uint(r.Head)})
		case tmnf.RuleInvMove:
			pr.inv[r.Rel-1] = append(pr.inv[r.Rel-1], implication{1 << uint(r.From), 1 << uint(r.Head)})
		default:
			return nil, fmt.Errorf("automata: unknown rule kind %d", r.Kind)
		}
	}
	return pr, nil
}

// localOK reports whether assignment mask is closed under the local rules
// at a node with signature sig.
func (pr *pairRules) localOK(mask uint32, sig edb.NodeSig) bool {
	for _, r := range pr.local {
		if mask&r.head != 0 {
			continue
		}
		if mask&r.body != r.body {
			continue
		}
		fire := true
		for _, u := range r.unaries {
			if !edb.Holds(pr.unaries[u], pr.names, sig) {
				fire = false
				break
			}
		}
		if fire {
			return false
		}
	}
	return true
}

// pairOK reports whether parent assignment p and k-th-child assignment c
// are jointly closed under the move/inverse-move rules along relation k.
func (pr *pairRules) pairOK(k int, p, c uint32) bool {
	for _, im := range pr.move[k-1] {
		if p&im.from != 0 && c&im.to == 0 {
			return false
		}
	}
	for _, im := range pr.inv[k-1] {
		if c&im.from != 0 && p&im.to == 0 {
			return false
		}
	}
	return true
}

// SelectTMNF evaluates a TMNF program on t through the STA selection
// semantics, without materialising the automaton: reachable assignment
// sets bottom-up, viable (occurring-in-some-accepting-run) sets top-down,
// then a node satisfies a query predicate iff every viable assignment
// contains it. The result maps each query predicate to its per-node truth
// vector. Exponential in the number of predicates; a test oracle.
func SelectTMNF(t *tree.Tree, prog *tmnf.Program) (map[tmnf.Pred][]bool, error) {
	pr, err := newPairRules(prog, t.Names())
	if err != nil {
		return nil, err
	}
	n := t.Len()
	if n == 0 {
		return nil, fmt.Errorf("automata: empty tree")
	}
	numMasks := uint32(1) << uint(prog.NumPreds())

	reach := make([][]uint32, n)
	for v := n - 1; v >= 0; v-- {
		id := tree.NodeID(v)
		sig := edb.SigOf(t, id)
		var set []uint32
		for m := uint32(0); m < numMasks; m++ {
			if !pr.localOK(m, sig) {
				continue
			}
			ok := true
			if c := t.First(id); c != tree.None {
				ok = false
				for _, mc := range reach[c] {
					if pr.pairOK(1, m, mc) {
						ok = true
						break
					}
				}
			}
			if ok {
				if c := t.Second(id); c != tree.None {
					ok = false
					for _, mc := range reach[c] {
						if pr.pairOK(2, m, mc) {
							ok = true
							break
						}
					}
				}
			}
			if ok {
				set = append(set, m)
			}
		}
		reach[v] = set
	}

	viable := make([][]uint32, n)
	viable[0] = reach[0] // all states final: every run is accepting
	for v := 0; v < n; v++ {
		id := tree.NodeID(v)
		for k := 1; k <= 2; k++ {
			var c tree.NodeID
			if k == 1 {
				c = t.First(id)
			} else {
				c = t.Second(id)
			}
			if c == tree.None {
				continue
			}
			var set []uint32
			for _, mc := range reach[c] {
				for _, mp := range viable[v] {
					if pr.pairOK(k, mp, mc) {
						set = append(set, mc)
						break
					}
				}
			}
			viable[c] = set
		}
	}

	out := make(map[tmnf.Pred][]bool, len(prog.Queries()))
	for _, q := range prog.Queries() {
		bit := uint32(1) << uint(q)
		sel := make([]bool, n)
		for v := 0; v < n; v++ {
			all := true
			for _, m := range viable[v] {
				if m&bit == 0 {
					all = false
					break
				}
			}
			sel[v] = all
		}
		out[q] = sel
	}
	return out, nil
}

// FromTMNF materialises the explicit STA of the [8] construction for a
// TMNF program over the given label alphabet. Root-ness is not visible to
// a bottom-up transition function, so each assignment appears in two
// variants, with and without a root flag; only root-flagged states are
// final, and flagged states never occur as children. Selecting states are
// those containing the program's first query predicate.
//
// The automaton has 2^(preds+1) states; programs are limited to 7
// predicates to keep the transition relation enumerable.
func FromTMNF(prog *tmnf.Program, names *tree.Names, alphabet []tree.Label) (*STA, error) {
	if prog.NumPreds() > 7 {
		return nil, fmt.Errorf("automata: explicit STA limited to 7 predicates, program has %d", prog.NumPreds())
	}
	if len(prog.Queries()) == 0 {
		return nil, fmt.Errorf("automata: program has no query predicate")
	}
	pr, err := newPairRules(prog, names)
	if err != nil {
		return nil, err
	}
	ell := uint(prog.NumPreds())
	numMasks := uint32(1) << ell
	rootFlag := State(numMasks)

	a := NewSTA(int(numMasks) * 2)
	qbit := uint32(1) << uint(prog.Queries()[0])
	for m := uint32(0); m < numMasks; m++ {
		a.SetFinal(State(m) | rootFlag)
		if m&qbit != 0 {
			a.SetSelecting(State(m))
			a.SetSelecting(State(m) | rootFlag)
		}
	}

	// Child states range over ⊥ and unflagged assignments.
	children := make([]State, 0, numMasks+1)
	children = append(children, Bottom)
	for m := uint32(0); m < numMasks; m++ {
		children = append(children, State(m))
	}
	for _, label := range alphabet {
		for _, q1 := range children {
			for _, q2 := range children {
				for m := uint32(0); m < numMasks; m++ {
					if q1 != Bottom && !pr.pairOK(1, m, uint32(q1)) {
						continue
					}
					if q2 != Bottom && !pr.pairOK(2, m, uint32(q2)) {
						continue
					}
					for _, isRoot := range []bool{false, true} {
						sig := edb.NodeSig{Label: label, HasFirst: q1 != Bottom, HasSecond: q2 != Bottom, IsRoot: isRoot}
						if !pr.localOK(m, sig) {
							continue
						}
						q := State(m)
						if isRoot {
							q |= rootFlag
						}
						a.AddTransition(q1, q2, label, q)
					}
				}
			}
		}
	}
	return a, nil
}
