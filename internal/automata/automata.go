// Package automata implements the formal tree-automata notions of
// Section 3 of the paper: nondeterministic bottom-up tree automata (NTA,
// Definition 3.1), deterministic bottom-up tree automata (DTA), the weak
// deterministic top-down tree automata used by the second evaluation phase,
// and selecting tree automata (STA, Definition 3.2) with their
// universally-quantified node-selection semantics.
//
// These are reference implementations with explicit transition relations,
// built for clarity rather than scale; the production engine in
// internal/core represents (sets of) STA states implicitly as residual Horn
// programs and never enumerates them. The package also provides a direct
// translation of TMNF programs into STAs (the [8] construction), which the
// test suite uses as an independent oracle for the engine.
package automata

import (
	"fmt"
	"sort"

	"arb/internal/tree"
)

// State is a tree-automaton state.
type State int32

// Bottom is the pseudo-state ⊥ for non-existent children.
const Bottom State = -1

// Key indexes the transition relation: the states of the two children (or
// Bottom) and the node's label.
type Key struct {
	Left, Right State
	Label       tree.Label
}

// NTA is a nondeterministic bottom-up tree automaton (Q, Σ, F, δ)
// (Definition 3.1). States are 0..NumStates-1; the alphabet is implicit in
// the transition relation's keys.
type NTA struct {
	NumStates int
	Final     []bool          // F; len NumStates
	Trans     map[Key][]State // δ; values are state sets
}

// NewNTA returns an NTA with n states and an empty transition relation.
func NewNTA(n int) *NTA {
	return &NTA{NumStates: n, Final: make([]bool, n), Trans: make(map[Key][]State)}
}

// AddTransition adds q to δ(left, right, label).
func (a *NTA) AddTransition(left, right State, label tree.Label, q State) {
	k := Key{left, right, label}
	for _, s := range a.Trans[k] {
		if s == q {
			return
		}
	}
	a.Trans[k] = append(a.Trans[k], q)
}

// SetFinal marks q as accepting.
func (a *NTA) SetFinal(q State) { a.Final[q] = true }

// stateSet is a sorted duplicate-free set of states.
type stateSet []State

func (s stateSet) has(q State) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= q })
	return i < len(s) && s[i] == q
}

func canonSet(s []State) stateSet {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, q := range s {
		if i == 0 || q != s[i-1] {
			out = append(out, q)
		}
	}
	return out
}

func (s stateSet) key() string {
	b := make([]byte, 0, 4*len(s))
	for _, q := range s {
		b = append(b, byte(q), byte(q>>8), byte(q>>16), byte(q>>24))
	}
	return string(b)
}

// reachable computes, bottom-up, the set of states some run can reach at
// every node of t (the powerset construction applied along the tree).
func (a *NTA) reachable(t *tree.Tree) []stateSet {
	n := t.Len()
	r := make([]stateSet, n)
	for v := n - 1; v >= 0; v-- {
		var set []State
		lefts := []State{Bottom}
		if c := t.First(tree.NodeID(v)); c != tree.None {
			lefts = r[c]
		}
		rights := []State{Bottom}
		if c := t.Second(tree.NodeID(v)); c != tree.None {
			rights = r[c]
		}
		label := t.Label(tree.NodeID(v))
		for _, ql := range lefts {
			for _, qr := range rights {
				set = append(set, a.Trans[Key{ql, qr, label}]...)
			}
		}
		r[v] = canonSet(set)
	}
	return r
}

// Accepts reports whether the automaton accepts t: whether some run
// assigns an accepting state to the root.
func (a *NTA) Accepts(t *tree.Tree) bool {
	if t.Len() == 0 {
		return false
	}
	for _, q := range a.reachable(t)[0] {
		if a.Final[q] {
			return true
		}
	}
	return false
}

// IsRun verifies that rho (one state per node of t) is a run of the
// automaton per Definition 3.1, and whether it is accepting.
func (a *NTA) IsRun(t *tree.Tree, rho []State) (isRun, accepting bool) {
	if len(rho) != t.Len() || t.Len() == 0 {
		return false, false
	}
	for v := 0; v < t.Len(); v++ {
		left, right := Bottom, Bottom
		if c := t.First(tree.NodeID(v)); c != tree.None {
			left = rho[c]
		}
		if c := t.Second(tree.NodeID(v)); c != tree.None {
			right = rho[c]
		}
		ok := false
		for _, q := range a.Trans[Key{left, right, t.Label(tree.NodeID(v))}] {
			if q == rho[v] {
				ok = true
				break
			}
		}
		if !ok {
			return false, false
		}
	}
	return true, a.Final[rho[0]]
}

// DTA is a deterministic bottom-up tree automaton: δ maps to exactly one
// state. A missing entry means the automaton is partial; Run reports an
// error when it falls off the transition table.
type DTA struct {
	NumStates int
	Final     []bool
	Trans     map[Key]State
}

// Run computes the unique run of the automaton on t (one state per node,
// indexed by preorder id).
func (d *DTA) Run(t *tree.Tree) ([]State, error) {
	n := t.Len()
	rho := make([]State, n)
	for v := n - 1; v >= 0; v-- {
		left, right := Bottom, Bottom
		if c := t.First(tree.NodeID(v)); c != tree.None {
			left = rho[c]
		}
		if c := t.Second(tree.NodeID(v)); c != tree.None {
			right = rho[c]
		}
		q, ok := d.Trans[Key{left, right, t.Label(tree.NodeID(v))}]
		if !ok {
			return nil, fmt.Errorf("automata: no transition for (%d, %d, %d) at node %d", left, right, t.Label(tree.NodeID(v)), v)
		}
		rho[v] = q
	}
	return rho, nil
}

// Accepts reports whether the run on t ends in an accepting root state.
func (d *DTA) Accepts(t *tree.Tree) (bool, error) {
	rho, err := d.Run(t)
	if err != nil {
		return false, err
	}
	return d.Final[rho[0]], nil
}

// Determinize performs the powerset construction over the given alphabet,
// producing a complete DTA equivalent to a (for acceptance). The DTA's
// states are reachable subsets of a's states; subset membership is exposed
// through the returned decode function, which maps a DTA state to the NTA
// state set it denotes.
//
// Exponential in the worst case — this is the construction the paper's
// residual-program representation avoids; it is provided for the formal
// development and for differential tests on small automata.
func (a *NTA) Determinize(alphabet []tree.Label) (*DTA, func(State) []State) {
	d := &DTA{Trans: make(map[Key]State)}
	index := map[string]State{}
	var sets []stateSet
	intern := func(s stateSet) State {
		k := s.key()
		if id, ok := index[k]; ok {
			return id
		}
		id := State(len(sets))
		sets = append(sets, s)
		index[k] = id
		return id
	}

	// Seed with the ⊥-only combination (leaf transitions), then saturate.
	type pair struct{ l, r State } // DTA states or Bottom
	seen := map[pair]bool{}
	step := func(l, r State, label tree.Label) {
		var set []State
		ls := []State{Bottom}
		if l != Bottom {
			ls = sets[l]
		}
		rs := []State{Bottom}
		if r != Bottom {
			rs = sets[r]
		}
		for _, ql := range ls {
			for _, qr := range rs {
				set = append(set, a.Trans[Key{ql, qr, label}]...)
			}
		}
		d.Trans[Key{l, r, label}] = intern(canonSet(set))
	}
	for _, label := range alphabet {
		step(Bottom, Bottom, label)
	}
	// Saturate over all pairs of discovered states (plus Bottom).
	for i := 0; i < len(sets); i++ {
		all := append([]State{Bottom}, seqStates(len(sets))...)
		for _, l := range all {
			for _, r := range all {
				if seen[pair{l, r}] {
					continue
				}
				seen[pair{l, r}] = true
				for _, label := range alphabet {
					step(l, r, label)
				}
			}
		}
	}
	d.NumStates = len(sets)
	d.Final = make([]bool, len(sets))
	for id, s := range sets {
		for _, q := range s {
			if a.Final[q] {
				d.Final[id] = true
				break
			}
		}
	}
	decode := func(q State) []State { return sets[q] }
	return d, decode
}

func seqStates(n int) []State {
	out := make([]State, n)
	for i := range out {
		out[i] = State(i)
	}
	return out
}

// TopDownDTA is the weak deterministic top-down tree automaton of
// Section 3: separate transition functions δ1, δ2 for the two children, a
// start state for the root, and no acceptance condition — its sole purpose
// is annotating nodes with states.
type TopDownDTA struct {
	NumStates int
	Start     State
	Trans1    map[[2]int32]State // (state, label) -> state of first child
	Trans2    map[[2]int32]State // (state, label) -> state of second child
}

// Run annotates every node of t with a state, assigning Start to the root
// and propagating through δ1/δ2 keyed by the parent's state and label.
func (d *TopDownDTA) Run(t *tree.Tree) ([]State, error) {
	n := t.Len()
	rho := make([]State, n)
	if n == 0 {
		return rho, nil
	}
	rho[0] = d.Start
	for v := 0; v < n; v++ {
		key := [2]int32{int32(rho[v]), int32(t.Label(tree.NodeID(v)))}
		if c := t.First(tree.NodeID(v)); c != tree.None {
			q, ok := d.Trans1[key]
			if !ok {
				return nil, fmt.Errorf("automata: no δ1 transition for %v at node %d", key, v)
			}
			rho[c] = q
		}
		if c := t.Second(tree.NodeID(v)); c != tree.None {
			q, ok := d.Trans2[key]
			if !ok {
				return nil, fmt.Errorf("automata: no δ2 transition for %v at node %d", key, v)
			}
			rho[c] = q
		}
	}
	return rho, nil
}
