package automata

import (
	"math/rand"
	"testing"

	"arb/internal/testutil"
	"arb/internal/tree"
)

// labelsOf collects the distinct labels of a tree, for determinization
// alphabets.
func labelsOf(t *tree.Tree) []tree.Label {
	seen := map[tree.Label]bool{}
	var out []tree.Label
	for v := 0; v < t.Len(); v++ {
		l := t.Label(tree.NodeID(v))
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// evenLeafDTA builds the deterministic bottom-up automaton of Example 2.2:
// state 0 = even number of a-labeled leaves in the subtree, state 1 = odd.
// With the first-child/next-sibling encoding, a node's .arb subtree covers
// the node, its descendants and its right siblings; parity composes as the
// XOR of the children's parities plus the node's own contribution.
func evenLeafDTA(a tree.Label, alphabet []tree.Label) *DTA {
	d := &DTA{NumStates: 2, Final: []bool{true, false}, Trans: map[Key]State{}}
	for _, l := range alphabet {
		for _, ql := range []State{Bottom, 0, 1} {
			for _, qr := range []State{Bottom, 0, 1} {
				own := State(0)
				if l == a && ql == Bottom { // leaf of the document tree: no first child
					own = 1
				}
				sum := own
				if ql == 1 {
					sum ^= 1
				}
				if qr == 1 {
					sum ^= 1
				}
				d.Trans[Key{ql, qr, l}] = sum
			}
		}
	}
	return d
}

func TestDTAEvenLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 60; iter++ {
		tr := testutil.RandomTree(rng, 50)
		a, ok := tr.Names().Lookup("a")
		if !ok {
			continue
		}
		d := evenLeafDTA(a, labelsOf(tr))
		got, err := d.Accepts(tr)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		count := 0
		for v := 0; v < tr.Len(); v++ {
			if tr.Label(tree.NodeID(v)) == a && !tr.HasFirst(tree.NodeID(v)) {
				count++
			}
		}
		if got != (count%2 == 0) {
			t.Fatalf("iter %d: Accepts=%v with %d a-leaves", iter, got, count)
		}
	}
}

// containsNTA accepts trees containing at least one node labeled l,
// nondeterministically: state 1 = "seen", state 0 = "not yet".
func containsNTA(l tree.Label, alphabet []tree.Label) *NTA {
	a := NewNTA(2)
	a.SetFinal(1)
	for _, lab := range alphabet {
		for _, ql := range []State{Bottom, 0, 1} {
			for _, qr := range []State{Bottom, 0, 1} {
				seen := lab == l || ql == 1 || qr == 1
				if seen {
					a.AddTransition(ql, qr, lab, 1)
				} else {
					a.AddTransition(ql, qr, lab, 0)
				}
			}
		}
	}
	return a
}

func TestNTAAcceptsAndDeterminize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 60; iter++ {
		tr := testutil.RandomTree(rng, 40)
		alphabet := labelsOf(tr)
		l := alphabet[rng.Intn(len(alphabet))]
		nta := containsNTA(l, alphabet)

		want := false
		for v := 0; v < tr.Len(); v++ {
			if tr.Label(tree.NodeID(v)) == l {
				want = true
				break
			}
		}
		if got := nta.Accepts(tr); got != want {
			t.Fatalf("iter %d: NTA.Accepts=%v, want %v", iter, got, want)
		}

		dta, decode := nta.Determinize(alphabet)
		got, err := dta.Accepts(tr)
		if err != nil {
			t.Fatalf("iter %d: DTA.Run: %v", iter, err)
		}
		if got != want {
			t.Fatalf("iter %d: determinized accepts %v, want %v", iter, got, want)
		}
		// Determinized run at each node must equal the NTA's reachable set.
		rho, err := dta.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		reach := nta.reachable(tr)
		for v := range rho {
			dec := decode(rho[v])
			if len(dec) != len(reach[v]) {
				t.Fatalf("node %d: decoded set %v, reachable %v", v, dec, reach[v])
			}
			for i := range dec {
				if dec[i] != reach[v][i] {
					t.Fatalf("node %d: decoded set %v, reachable %v", v, dec, reach[v])
				}
			}
		}
	}
}

func TestIsRun(t *testing.T) {
	tr := tree.New(nil)
	a := tr.Names().MustIntern("a")
	root := tr.AddNode(a)
	c := tr.AddNode(a)
	tr.SetFirst(root, c)

	nta := containsNTA(a, []tree.Label{a})
	// Both nodes labeled a: only state 1 is reachable everywhere.
	if ok, acc := nta.IsRun(tr, []State{1, 1}); !ok || !acc {
		t.Fatalf("IsRun([1 1]) = %v, %v; want true, true", ok, acc)
	}
	if ok, _ := nta.IsRun(tr, []State{0, 1}); ok {
		t.Fatal("IsRun accepted an inconsistent labeling")
	}
	if ok, _ := nta.IsRun(tr, []State{1}); ok {
		t.Fatal("IsRun accepted a wrong-length labeling")
	}
}

func TestTopDownDTADepthParity(t *testing.T) {
	// Annotate nodes with their document depth parity: in the FCNS
	// encoding, the first child is one level deeper, the second child
	// (next sibling) stays at the same level.
	tr := tree.New(nil)
	a := tr.Names().MustIntern("a")
	root := tr.AddNode(a) // depth 0
	c1 := tr.AddNode(a)   // depth 1
	c2 := tr.AddNode(a)   // depth 1 (sibling of c1)
	g := tr.AddNode(a)    // depth 2
	tr.SetFirst(root, c1)
	tr.SetSecond(c1, c2)
	tr.SetFirst(c2, g)

	d := &TopDownDTA{NumStates: 2, Start: 0,
		Trans1: map[[2]int32]State{{0, int32(a)}: 1, {1, int32(a)}: 0},
		Trans2: map[[2]int32]State{{0, int32(a)}: 0, {1, int32(a)}: 1},
	}
	rho, err := d.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	want := []State{0, 1, 1, 0}
	for v := range want {
		if rho[v] != want[v] {
			t.Fatalf("rho = %v, want %v", rho, want)
		}
	}
}

func TestTopDownDTAMissingTransition(t *testing.T) {
	tr := tree.New(nil)
	a := tr.Names().MustIntern("a")
	root := tr.AddNode(a)
	tr.SetFirst(root, tr.AddNode(a))
	d := &TopDownDTA{NumStates: 1, Start: 0, Trans1: map[[2]int32]State{}, Trans2: map[[2]int32]State{}}
	if _, err := d.Run(tr); err == nil {
		t.Fatal("Run succeeded despite missing transition")
	}
}

// TestSTASelectBruteForce checks Select against literal enumeration of all
// accepting runs on tiny trees.
func TestSTASelectBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 120; iter++ {
		tr := testutil.RandomTree(rng, 7)
		alphabet := labelsOf(tr)

		// Random small STA.
		n := 2 + rng.Intn(2)
		a := NewSTA(n)
		for q := 0; q < n; q++ {
			if rng.Intn(2) == 0 {
				a.SetFinal(State(q))
			}
			if rng.Intn(2) == 0 {
				a.SetSelecting(State(q))
			}
		}
		states := append([]State{Bottom}, seqStates(n)...)
		for _, l := range alphabet {
			for _, ql := range states {
				for _, qr := range states {
					for q := 0; q < n; q++ {
						if rng.Intn(3) == 0 {
							a.AddTransition(ql, qr, l, State(q))
						}
					}
				}
			}
		}

		got := a.Select(tr)
		want := bruteForceSelect(a, tr)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("iter %d: Select[%d]=%v, brute force %v", iter, v, got[v], want[v])
			}
		}
	}
}

// bruteForceSelect enumerates every state labeling, filters to accepting
// runs, and applies Definition 3.2 literally.
func bruteForceSelect(a *STA, t *tree.Tree) []bool {
	n := t.Len()
	sel := make([]bool, n)
	for v := range sel {
		sel[v] = true // vacuous if no accepting runs
	}
	rho := make([]State, n)
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			if ok, acc := a.IsRun(t, rho); ok && acc {
				for u := 0; u < n; u++ {
					if !a.Selecting[rho[u]] {
						sel[u] = false
					}
				}
			}
			return
		}
		for q := 0; q < a.NumStates; q++ {
			rho[v] = State(q)
			rec(v + 1)
		}
	}
	rec(0)
	return sel
}

func TestSTAVacuousSelection(t *testing.T) {
	tr := tree.New(nil)
	a := tr.Names().MustIntern("a")
	tr.AddNode(a)
	sta := NewSTA(1) // no transitions, no final states: no accepting runs
	got := sta.Select(tr)
	if !got[0] {
		t.Fatal("with no accepting runs, every node is vacuously selected")
	}
}

func TestAcceptingRunCount(t *testing.T) {
	tr := tree.New(nil)
	a := tr.Names().MustIntern("a")
	tr.AddNode(a)
	sta := NewSTA(3)
	sta.SetFinal(0)
	sta.SetFinal(1)
	sta.AddTransition(Bottom, Bottom, a, 0)
	sta.AddTransition(Bottom, Bottom, a, 1)
	sta.AddTransition(Bottom, Bottom, a, 2) // non-final
	if got := sta.AcceptingRunCount(tr, 0); got != 2 {
		t.Fatalf("AcceptingRunCount = %d, want 2", got)
	}
	if got := sta.AcceptingRunCount(tr, 1); got != 1 {
		t.Fatalf("capped AcceptingRunCount = %d, want 1", got)
	}
}
