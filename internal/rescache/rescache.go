// Package rescache is the result-cache tier above the plan cache: it
// retains completed, immutable core.Result id-sets keyed by (normalized
// query text, database version), with byte-budgeted LRU eviction, so a
// hot query repeated against an unchanged version is answered in O(1)
// with zero scans.
//
// Entries published from a single-query execution whose program admits a
// label-determined selection summary (core.SelSummary) additionally
// carry a packed (id, label, root) list of their selected nodes. Those
// entries serve as subsumption sources: a miss whose own summary is
// pointwise contained in a cached entry's summary — same version, so
// same document and name table — is answered by re-filtering the cached
// list on the miss's verdicts, in memory, without touching the store.
// The filtered result is inserted back as a derived entry, so the next
// repeat of the narrower query is an exact hit.
//
// Version keying is what makes staleness impossible: executions pin a
// version via Session.acquire, lookups and publishes both happen at the
// pinned version, and an entry for version v can only ever answer a
// request that pinned v. A patch committing mid-flight publishes a new
// version and simply stops matching old entries; eviction prefers
// superseded versions so the budget drains toward the current one.
package rescache

import (
	"container/list"
	"sync"

	"arb/internal/core"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// Packed id-list layout: bits 0..47 node id, 48..61 label, 62 root flag.
const (
	idBits    = 48
	idMask    = 1<<idBits - 1
	labelMask = 1<<14 - 1
	rootFlag  = 1 << 62
)

// PackID packs one selected node for an entry's subsumption list.
func PackID(v int64, l tree.Label, isRoot bool) uint64 {
	w := uint64(v) | uint64(l&labelMask)<<idBits
	if isRoot {
		w |= rootFlag
	}
	return w
}

// MaxNodes is the largest document a packed id can address; results over
// bigger documents are not cached (far beyond any real .arb database).
const MaxNodes = int64(1) << idBits

// Kind classifies a lookup outcome.
type Kind int

const (
	Miss     Kind = iota
	Hit           // exact (key, version) match
	Subsumed      // answered by re-filtering a superset entry
)

// String names the outcome for profiles and logs.
func (k Kind) String() string {
	switch k {
	case Hit:
		return "hit"
	case Subsumed:
		return "subsumed"
	}
	return "miss"
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits      uint64 `json:"hits"`      // exact (key, version) hits
	Subsumed  uint64 `json:"subsumed"`  // misses answered via subsumption
	Misses    uint64 `json:"misses"`    // lookups answered by neither
	Evictions uint64 `json:"evictions"` // entries dropped for the budget
	Rejected  uint64 `json:"rejected"`  // publishes refused by admission
	Entries   int    `json:"entries"`   // resident entries
	Bytes     int64  `json:"bytes"`     // resident bytes (accounted)
	Capacity  int64  `json:"capacity"`  // configured byte budget
}

type entryKey struct {
	key     string
	version uint64
}

type entry struct {
	k     entryKey
	res   *core.Result     // the published, completed, immutable result
	ids   []uint64         // packed selected nodes; nil = exact-hit only
	sum   *core.SelSummary // selection summary; nil = not a subsumption source
	bytes int64
	elem  *list.Element
}

// Cache is a byte-budgeted result cache. All methods are safe for
// concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64               // guarded by: mu
	entries map[entryKey]*entry // guarded by: mu
	lru     *list.List          // guarded by: mu; front = most recent
	maxVer  uint64              // guarded by: mu; newest version seen
	stats   Stats               // guarded by: mu
}

// New returns a cache with the given byte budget; maxBytes <= 0 is
// rejected by returning a nil cache (callers treat nil as disabled).
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	return &Cache{
		max:     maxBytes,
		entries: make(map[entryKey]*entry),
		lru:     list.New(),
	}
}

// IDBudget is the largest packed id-list (in entries) worth publishing:
// a list bigger than a quarter of the budget would evict most of the
// cache on arrival, so publishers skip building it.
func (c *Cache) IDBudget() int64 { return c.max / 4 / 8 }

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.bytes
	s.Capacity = c.max
	return s
}

// Lookup answers a query about to execute at a pinned version: an exact
// (key, version) entry wins outright; otherwise, when sum is non-nil, a
// same-version entry whose summary subsumes sum answers by re-filtering
// its packed id list on sum's verdicts (prog and n — the miss's main
// program and the version's node count — shape the rebuilt Result). The
// returned result is shared and must be treated as immutable.
func (c *Cache) Lookup(key string, version uint64, sum *core.SelSummary, prog *tmnf.Program, n int64) (*core.Result, Kind) {
	if c == nil {
		return nil, Miss
	}
	c.mu.Lock()
	c.noteVersion(version)
	if e, ok := c.entries[entryKey{key, version}]; ok && e.res.Len() == n {
		c.lru.MoveToFront(e.elem)
		c.stats.Hits++
		res := e.res
		c.mu.Unlock()
		return res, Hit
	}
	var src []uint64
	found := false
	if sum != nil {
		for _, e := range c.entries {
			if e.k.version == version && e.ids != nil && e.res.Len() == n && core.Subsumes(sum, e.sum) {
				c.lru.MoveToFront(e.elem)
				src, found = e.ids, true
				break
			}
		}
	}
	if !found {
		c.stats.Misses++
		c.mu.Unlock()
		return nil, Miss
	}
	c.stats.Subsumed++
	c.mu.Unlock()

	// Re-filter outside the lock: packed lists are immutable once
	// published, and the verdicts need no store access — the labels ride
	// in the list. Insert the derived entry so the next repeat of this
	// narrower query is an exact hit.
	res := core.NewResult(prog, n)
	var ids []uint64
	for _, w := range src {
		if sum.Selected(tree.Label(w>>idBits&labelMask), w&rootFlag != 0) {
			ids = append(ids, w)
			res.MarkMask(1, int64(w&idMask))
		}
	}
	c.Put(key, version, res, sum, ids)
	return res, Subsumed
}

// Put publishes a completed result under (key, version). ids and sum
// make the entry a subsumption source and may both be nil (exact-hit
// only). Entries exceeding a quarter of the budget are rejected rather
// than letting one giant result evict everything else.
func (c *Cache) Put(key string, version uint64, res *core.Result, sum *core.SelSummary, ids []uint64) {
	if c == nil || res == nil {
		return
	}
	if ids == nil {
		sum = nil // a summary without its id list cannot source subsumption
	}
	words := (res.Len() + 63) / 64
	bytes := int64(len(res.Queries()))*words*8 + int64(len(ids))*8 + int64(len(key)) + 256
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteVersion(version)
	if bytes > c.max/4 {
		c.stats.Rejected++
		return
	}
	k := entryKey{key, version}
	if old, ok := c.entries[k]; ok {
		// Identical key and version means an identical result; keep the
		// resident entry (it may carry ids this publish lacks, or vice
		// versa — prefer whichever has the subsumption list).
		if old.ids == nil && ids != nil {
			c.bytes += int64(len(ids)) * 8
			old.ids, old.sum = ids, sum
			old.bytes += int64(len(ids)) * 8
			c.evict()
		}
		c.lru.MoveToFront(old.elem)
		return
	}
	e := &entry{k: k, res: res, ids: ids, sum: sum, bytes: bytes}
	e.elem = c.lru.PushFront(e)
	c.entries[k] = e
	c.bytes += bytes
	c.evict()
}

// noteVersion records a newly observed version, demoting every entry of
// superseded versions to the back of the LRU so eviction drains them
// first — they can only ever answer executions still pinning an old
// snapshot, which end as those snapshots release.
//
// arblint:holds mu
func (c *Cache) noteVersion(version uint64) {
	if version <= c.maxVer {
		return
	}
	c.maxVer = version
	var stale []*list.Element
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*entry).k.version < version {
			stale = append(stale, el)
		}
	}
	for _, el := range stale {
		c.lru.MoveToBack(el)
	}
}

// evict drops LRU-back entries until the budget holds.
//
// arblint:holds mu
func (c *Cache) evict() {
	for c.bytes > c.max {
		el := c.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		c.lru.Remove(el)
		delete(c.entries, e.k)
		c.bytes -= e.bytes
		c.stats.Evictions++
	}
}
