package rescache

import (
	"fmt"
	"testing"

	"arb/internal/core"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// summaryFor compiles src against names and returns its selection summary.
func summaryFor(t *testing.T, src string, names *tree.Names) (*core.SelSummary, *tmnf.Program) {
	t.Helper()
	p := tmnf.MustParse(src)
	c, err := core.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	sum := core.NewEngine(c, names).SelectionSummary()
	if sum == nil {
		t.Fatalf("%s: no selection summary", src)
	}
	return sum, p
}

func testNames(t *testing.T) *tree.Names {
	t.Helper()
	names := tree.NewNames()
	for _, tag := range []string{"a", "b"} {
		if _, err := names.Intern(tag); err != nil {
			t.Fatal(err)
		}
	}
	return names
}

// result marks vs selected on an n-node document for prog's only query.
func result(prog *tmnf.Program, n int64, vs ...int64) *core.Result {
	r := core.NewResult(prog, n)
	for _, v := range vs {
		r.MarkMask(1, v)
	}
	return r
}

func TestResCacheExactHit(t *testing.T) {
	c := New(1 << 20)
	names := testNames(t)
	_, prog := summaryFor(t, `QUERY :- Label[a];`, names)
	res := result(prog, 100, 3, 7)
	c.Put("xpath://a", 1, res, nil, nil)

	got, kind := c.Lookup("xpath://a", 1, nil, prog, 100)
	if kind != Hit || got != res {
		t.Fatalf("lookup = (%p, %v), want the published result as a Hit", got, kind)
	}
	if _, kind := c.Lookup("xpath://a", 2, nil, prog, 100); kind != Miss {
		t.Fatalf("other version: kind = %v, want Miss", kind)
	}
	if _, kind := c.Lookup("xpath://b", 1, nil, prog, 100); kind != Miss {
		t.Fatalf("other key: kind = %v, want Miss", kind)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 2 misses, 1 entry", st)
	}
}

func TestResCacheSubsumption(t *testing.T) {
	c := New(1 << 20)
	names := testNames(t)
	la, _ := names.Lookup("a")
	lb, _ := names.Lookup("b")

	// Superset S: every node labeled a or b (root included).
	sumS, progS := summaryFor(t, `QUERY :- Label[a]; QUERY :- Label[b];`, names)
	// Narrower Q: only nodes labeled a, and never the root.
	sumQ, progQ := summaryFor(t, `
R :- Root;
D :- R.FirstChild;
D :- R.SecondChild;
D :- D.FirstChild;
D :- D.SecondChild;
QUERY :- D, Label[a];
`, names)
	if !core.Subsumes(sumQ, sumS) {
		t.Fatal("expected sumQ ⊆ sumS")
	}

	// Document of 10 nodes: root labeled a, node 4 labeled a, node 6
	// labeled b; S selected all three.
	resS := result(progS, 10, 0, 4, 6)
	ids := []uint64{
		PackID(0, la, true),
		PackID(4, la, false),
		PackID(6, lb, false),
	}
	c.Put("s", 1, resS, sumS, ids)

	got, kind := c.Lookup("q", 1, sumQ, progQ, 10)
	if kind != Subsumed {
		t.Fatalf("kind = %v, want Subsumed", kind)
	}
	q := progQ.Queries()[0]
	want := map[int64]bool{4: true} // not the root (0), not the b node (6)
	for v := int64(0); v < 10; v++ {
		if got.Holds(q, tree.NodeID(v)) != want[v] {
			t.Fatalf("filtered result: node %d selected=%v, want %v", v, got.Holds(q, tree.NodeID(v)), want[v])
		}
	}

	// The derived entry answers the repeat exactly.
	if _, kind := c.Lookup("q", 1, sumQ, progQ, 10); kind != Hit {
		t.Fatalf("repeat kind = %v, want Hit", kind)
	}
	// A different version must not be served by either entry.
	if _, kind := c.Lookup("q", 2, sumQ, progQ, 10); kind != Miss {
		t.Fatalf("other version kind = %v, want Miss", kind)
	}
	st := c.Stats()
	if st.Subsumed != 1 {
		t.Fatalf("stats = %+v, want exactly one subsumed hit", st)
	}
}

func TestResCacheEvictionAndAdmission(t *testing.T) {
	names := testNames(t)
	_, prog := summaryFor(t, `QUERY :- Label[a];`, names)

	c := New(4096)
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("k%d", i), 1, result(prog, 64, 1), nil, nil)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions after overfilling a 4 KiB budget", st)
	}
	if st.Bytes > 4096 {
		t.Fatalf("resident bytes %d exceed the budget", st.Bytes)
	}

	// One result bigger than a quarter of the budget is refused outright.
	c.Put("huge", 1, result(prog, 1<<16, 1), nil, nil)
	if st := c.Stats(); st.Rejected != 1 {
		t.Fatalf("stats = %+v, want one rejected publish", st)
	}

	// Disabled caches are nil and safe to use.
	var nc *Cache
	if nc != New(0) {
		t.Fatal("New(0) must return nil")
	}
	nc.Put("k", 1, result(prog, 64, 1), nil, nil)
	if _, kind := nc.Lookup("k", 1, nil, prog, 64); kind != Miss {
		t.Fatal("nil cache must miss")
	}
}

func TestResCacheStaleVersionsEvictFirst(t *testing.T) {
	names := testNames(t)
	_, prog := summaryFor(t, `QUERY :- Label[a];`, names)

	c := New(4096)
	c.Put("old", 1, result(prog, 64, 1), nil, nil)
	_, _ = c.Lookup("old", 1, nil, prog, 64) // most recently touched
	// A newer version arrives; the old entry is demoted to the eviction
	// end even though it was touched most recently.
	c.Put("new", 2, result(prog, 64, 1), nil, nil)
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("k%d", i), 2, result(prog, 64, 1), nil, nil)
	}
	if _, kind := c.Lookup("old", 1, nil, prog, 64); kind != Miss {
		t.Fatal("stale-version entry survived pressure that should evict it first")
	}
}
