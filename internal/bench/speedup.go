package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"arb/internal/core"
	"arb/internal/storage"
)

// SpeedupRow reports one worker count of the parallel-disk speedup sweep.
type SpeedupRow struct {
	Workers  int
	Seconds  float64 // average wall time per query
	Speedup  float64 // sequential seconds / this row's seconds
	Selected float64 // average selected count (must match across rows)
}

// SpeedupOpts configures a speedup sweep.
type SpeedupOpts struct {
	Size    int // regex size (the paper's 5..15 range)
	Queries int // queries averaged per worker count
	Scale   float64
	Base    string // reuse an existing database; otherwise created in Dir
	Dir     string
}

// Speedup measures parallel secondary-storage evaluation against the
// sequential two-scan baseline on one benchmark thread: the same queries
// are evaluated per worker count (workers 1 = sequential RunDisk) and the
// average wall time compared. On the balanced ACGT-infix thread chunks
// divide evenly and the speedup approaches the worker count once the
// shared automata are warm; on ACGT-flat the right-deep tree defeats the
// frontier and the sweep documents that, matching Section 6.2.
func Speedup(th Thread, workerCounts []int, opts SpeedupOpts) ([]SpeedupRow, error) {
	if opts.Scale == 0 {
		opts.Scale = DefaultScale
	}
	if opts.Size == 0 {
		opts.Size = 10
	}
	if opts.Queries == 0 {
		opts.Queries = 5
	}
	base := opts.Base
	if base == "" {
		if opts.Dir == "" {
			return nil, fmt.Errorf("bench: need Base or Dir")
		}
		var err error
		base, err = createThreadDB(th, opts.Dir, opts.Scale)
		if err != nil {
			return nil, err
		}
	}
	db, err := storage.Open(base)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	queries := th.Queries(opts.Size, opts.Queries)
	var rows []SpeedupRow
	for _, workers := range workerCounts {
		row := SpeedupRow{Workers: workers}
		for _, rx := range queries {
			prog, err := rx.Program(th.RStep())
			if err != nil {
				return nil, err
			}
			c, err := core.Compile(prog)
			if err != nil {
				return nil, err
			}
			e := core.NewEngine(c, db.Names)
			start := time.Now()
			var selected int64
			if workers <= 1 {
				res, _, err := e.RunDiskContext(context.Background(), db, core.DiskOpts{})
				if err != nil {
					return nil, err
				}
				selected = res.Count(prog.Queries()[0])
			} else {
				res, _, err := e.RunDiskParallelContext(context.Background(), db, workers, core.DiskOpts{})
				if err != nil {
					return nil, err
				}
				selected = res.Count(prog.Queries()[0])
			}
			row.Seconds += time.Since(start).Seconds()
			row.Selected += float64(selected)
		}
		q := float64(len(queries))
		row.Seconds /= q
		row.Selected /= q
		rows = append(rows, row)
	}
	for i := range rows {
		if rows[i].Seconds > 0 {
			rows[i].Speedup = rows[0].Seconds / rows[i].Seconds
		}
		if rows[i].Selected != rows[0].Selected {
			return nil, fmt.Errorf("bench: workers=%d selected %.1f nodes, sequential selected %.1f",
				rows[i].Workers, rows[i].Selected, rows[0].Selected)
		}
	}
	return rows, nil
}

// WriteSpeedup renders a speedup sweep.
func WriteSpeedup(w io.Writer, th Thread, rows []SpeedupRow) {
	fmt.Fprintf(w, "%s parallel disk evaluation.\n", th)
	fmt.Fprintf(w, "%8s %10s %8s %12s\n", "workers", "time(s)", "speedup", "selected")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %10.3f %8.2f %12.1f\n", r.Workers, r.Seconds, r.Speedup, r.Selected)
	}
}
