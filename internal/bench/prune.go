// Selectivity-aware pruning experiment: how much of the two-scan cost
// does the engine actually pay once it can seek past provably irrelevant
// subtrees? The experiment generates a large full-binary database with a
// distinct tag per depth, plants a "hit" tag inside a controlled
// fraction of its top-level subtrees (the selectivity dial), rebuilds the
// v2 label-summary index, and compares `//hit`-style execution with and
// without pruning — recording wall time, bytes read, bytes skipped, and
// the resulting speedup per selectivity level.
package bench

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"os"
	"path/filepath"
	"time"

	"arb"
	"arb/internal/storage"
)

// PruneRow is one selectivity level of the pruning experiment.
type PruneRow struct {
	Selectivity     float64 `json:"selectivity"`
	LiveSubtrees    int     `json:"live_subtrees"`
	TotalSubtrees   int     `json:"total_subtrees"`
	NoPruneSeconds  float64 `json:"noprune_seconds"`
	PruneSeconds    float64 `json:"prune_seconds"`
	Speedup         float64 `json:"speedup"`
	BytesRead       int64   `json:"bytes_read"`
	BytesSkipped    int64   `json:"bytes_skipped"`
	SkippedFraction float64 `json:"skipped_fraction"`
	Selected        int64   `json:"selected"`
}

// PruneReport is the machine-readable output of the pruning experiment
// (written to BENCH_prune.json by arbbench).
type PruneReport struct {
	Experiment string     `json:"experiment"`
	DBBytes    int64      `json:"db_bytes"`
	Nodes      int64      `json:"nodes"`
	Depth      int        `json:"depth"`
	Rows       []PruneRow `json:"rows"`
}

// PruneOpts configures the pruning experiment.
type PruneOpts struct {
	// Selectivities are the live-subtree fractions to sweep, ascending;
	// default 1%, 10%, 50%.
	Selectivities []float64
	// MinDBBytes is the minimum generated database size; default 64 MB.
	MinDBBytes int64
	// Dir is where the database is created.
	Dir string
}

// pruneLiveDepth is the depth whose subtrees form the selectivity grid
// (2^pruneLiveDepth subtrees), and pruneHitDepth the depth at which hits
// are planted inside a live subtree — deep enough that every indexed
// extent of a live subtree contains a hit (so live subtrees are read in
// full and skipped bytes track selectivity), shallow enough that planting
// stays cheap.
const (
	pruneLiveDepth = 7
	pruneHitDepth  = 12
)

// fullBinarySubtreeSize returns the node count of a subtree rooted at
// depth d of a full binary tree of the given total depth.
func fullBinarySubtreeSize(depth, d int) int64 {
	return (int64(1) << (depth - d + 1)) - 1
}

// nodesAtDepth returns the preorder positions (relative to a subtree
// root at depth from) of all its descendants at depth to.
func nodesAtDepth(depth, from, to int) []int64 {
	var out []int64
	var walk func(pos int64, d int)
	walk = func(pos int64, d int) {
		if d == to {
			out = append(out, pos)
			return
		}
		walk(pos+1, d+1)
		walk(pos+1+fullBinarySubtreeSize(depth, d+1), d+1)
	}
	walk(0, from)
	return out
}

// Prune runs the pruning experiment and returns the report.
func Prune(opts PruneOpts) (*PruneReport, error) {
	if len(opts.Selectivities) == 0 {
		opts.Selectivities = []float64{0.01, 0.10, 0.50}
	}
	if opts.MinDBBytes == 0 {
		opts.MinDBBytes = 64_000_000
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("bench: prune experiment needs Dir")
	}
	depth := 1
	for (int64(2)<<depth)-1 < opts.MinDBBytes/storage.NodeSize {
		depth++
	}
	if depth <= pruneHitDepth {
		return nil, fmt.Errorf("bench: prune experiment needs depth > %d, got %d", pruneHitDepth, depth)
	}

	// One distinct tag per depth plus the (initially unused) hit tag the
	// patcher plants.
	tags := make([]string, depth+2)
	for d := 0; d <= depth; d++ {
		tags[d] = fmt.Sprintf("d%d", d)
	}
	tags[depth+1] = "hit"

	// Always build fresh: the patcher mutates labels in place, so a
	// leftover database would carry the previous run's hits.
	base := filepath.Join(opts.Dir, fmt.Sprintf("prunedb-%d", depth))
	for _, ext := range []string{".arb", ".lab", ".idx"} {
		os.Remove(base + ext)
	}
	db, err := storage.CreateFullBinary(base, depth, tags)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	hit, ok := db.Names.Lookup("hit")
	if !ok {
		return nil, fmt.Errorf("bench: hit tag missing from name table")
	}

	// The selectivity grid: the 2^pruneLiveDepth top-level subtrees, in
	// bit-reversed order so every prefix is evenly spread across the
	// document — and later (larger) selectivities extend earlier ones, so
	// patching is cumulative.
	grid := 1 << pruneLiveDepth
	order := make([]int, grid)
	for i := range order {
		order[i] = int(bits.Reverse8(uint8(i)) >> (8 - pruneLiveDepth))
	}
	liveRoots := nodesAtDepth(depth, 0, pruneLiveDepth)
	hitOffsets := nodesAtDepth(depth, pruneLiveDepth, pruneHitDepth)

	arbF, err := os.OpenFile(base+".arb", os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer arbF.Close()
	var rec [storage.NodeSize]byte
	binary.BigEndian.PutUint16(rec[:], storage.Record{Label: uint16(hit), HasFirst: true, HasSecond: true}.Encode())
	patched := 0
	patchUpTo := func(k int) error {
		for ; patched < k && patched < grid; patched++ {
			root := liveRoots[order[patched]]
			for _, off := range hitOffsets {
				if _, err := arbF.WriteAt(rec[:], (root+off)*storage.NodeSize); err != nil {
					return err
				}
			}
		}
		return nil
	}

	sess := arb.NewDBSession(db)
	prog, err := arb.ParseProgram(`QUERY :- Label[hit];`)
	if err != nil {
		return nil, err
	}
	pq, err := sess.Prepare(prog)
	if err != nil {
		return nil, err
	}
	query := pq.Queries()[0]

	report := &PruneReport{
		Experiment: "prune",
		DBBytes:    db.N * storage.NodeSize,
		Nodes:      db.N,
		Depth:      depth,
	}
	ctx := context.Background()
	run := func(noprune bool) (*arb.Result, *arb.Profile, float64, error) {
		// Best of two, so a stray page-cache miss does not decide a row.
		best := 0.0
		var res *arb.Result
		var prof *arb.Profile
		for i := 0; i < 2; i++ {
			start := time.Now()
			r, p, err := pq.Exec(ctx, arb.ExecOpts{Stats: true, NoPrune: noprune})
			if err != nil {
				return nil, nil, 0, err
			}
			if secs := time.Since(start).Seconds(); i == 0 || secs < best {
				best, res, prof = secs, r, p
			}
		}
		return res, prof, best, nil
	}

	prev := 0.0
	for _, sel := range opts.Selectivities {
		if sel < prev || sel < 0 || sel > 1 {
			return nil, fmt.Errorf("bench: selectivities must be ascending fractions in [0,1], got %v", opts.Selectivities)
		}
		prev = sel
		k := int(sel*float64(grid) + 0.5)
		if k < 1 {
			k = 1
		}
		if err := patchUpTo(k); err != nil {
			return nil, err
		}
		// The label summaries must reflect the planted hits, or pruning
		// would be unsound — out-of-band edits always require a rebuild.
		if _, err := db.RebuildIndex(ctx, 0); err != nil {
			return nil, err
		}

		// Warm the page cache and the automata before timing either mode.
		if _, _, err := pq.Exec(ctx, arb.ExecOpts{NoPrune: true}); err != nil {
			return nil, err
		}
		npRes, _, npSecs, err := run(true)
		if err != nil {
			return nil, err
		}
		pRes, pProf, pSecs, err := run(false)
		if err != nil {
			return nil, err
		}
		if pRes.Count(query) != npRes.Count(query) {
			return nil, fmt.Errorf("bench: pruned run selected %d nodes, unpruned %d",
				pRes.Count(query), npRes.Count(query))
		}
		row := PruneRow{
			Selectivity:    sel,
			LiveSubtrees:   k,
			TotalSubtrees:  grid,
			NoPruneSeconds: npSecs,
			PruneSeconds:   pSecs,
			BytesRead:      pProf.Disk.Phase1.Bytes + pProf.Disk.Phase2.Bytes,
			BytesSkipped:   pProf.SkippedBytes(),
			Selected:       pRes.Count(query),
		}
		if pSecs > 0 {
			row.Speedup = npSecs / pSecs
		}
		if total := row.BytesRead + row.BytesSkipped; total > 0 {
			row.SkippedFraction = float64(row.BytesSkipped) / float64(total)
		}
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// WritePrune renders the experiment as a table.
func WritePrune(w io.Writer, r *PruneReport) {
	fmt.Fprintf(w, "Selectivity-aware scan pruning, %d-node database (%d MB, depth %d).\n",
		r.Nodes, r.DBBytes>>20, r.Depth)
	fmt.Fprintf(w, "%12s %6s %12s %10s %8s %9s %14s %10s\n",
		"selectivity", "live", "noprune(s)", "prune(s)", "speedup", "skipped%", "bytes skipped", "selected")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%11.0f%% %3d/%-3d %12.3f %10.3f %8.2f %8.1f%% %14d %10d\n",
			row.Selectivity*100, row.LiveSubtrees, row.TotalSubtrees,
			row.NoPruneSeconds, row.PruneSeconds, row.Speedup,
			row.SkippedFraction*100, row.BytesSkipped, row.Selected)
	}
}

// WritePruneJSON writes the machine-readable report.
func WritePruneJSON(w io.Writer, r *PruneReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
