// Shared-scan batch experiment: how much does amortising the two linear
// scans across a workload of concurrent queries buy? The experiment
// generates a large database, prepares a pool of queries, and compares N
// sequential PreparedQuery.Exec calls against one PreparedBatch.Exec at
// several batch sizes, recording wall time, queries per second, and the
// bytes of data scanned per query (which fall as 1/N — the paper's cost
// model made visible).
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"arb"
	"arb/internal/storage"
)

// BatchRow is one batch size of the shared-scan experiment.
type BatchRow struct {
	BatchSize            int     `json:"batch_size"`
	SequentialSeconds    float64 `json:"sequential_seconds"`
	BatchSeconds         float64 `json:"batch_seconds"`
	Speedup              float64 `json:"speedup"`
	QueriesPerSec        float64 `json:"queries_per_sec"`
	BytesScannedPerQuery int64   `json:"bytes_scanned_per_query"`
	SelectedTotal        int64   `json:"selected_total"`
}

// BatchReport is the machine-readable output of the batch experiment
// (written to BENCH_batch.json by arbbench).
type BatchReport struct {
	Experiment string     `json:"experiment"`
	DBBytes    int64      `json:"db_bytes"`
	Nodes      int64      `json:"nodes"`
	Workers    int        `json:"workers"`
	Rows       []BatchRow `json:"rows"`
}

// BatchOpts configures the batch experiment.
type BatchOpts struct {
	// Sizes are the batch sizes to sweep; default 1, 4, 16.
	Sizes []int
	// MinDBBytes is the minimum generated database size; default 64 MB.
	MinDBBytes int64
	// Dir is where the database is created (reused if already present).
	Dir string
	// Workers per execution (sequential and batch alike); default 1.
	Workers int
}

// batchQueryPool returns count single-pass TMNF query programs over the
// generated full-binary tags, cycling a few structural shapes.
func batchQueryPool(count int, tags []string) ([]*arb.Program, error) {
	progs := make([]*arb.Program, count)
	for i := range progs {
		tag := func(k int) string { return tags[(i/4+k)%len(tags)] }
		var src string
		switch i % 4 {
		case 0:
			src = fmt.Sprintf(`QUERY :- Label[%s];`, tag(0))
		case 1:
			src = fmt.Sprintf(`QUERY :- V.Label[%s].FirstChild.Label[%s];`, tag(0), tag(1))
		case 2:
			src = fmt.Sprintf(`QUERY :- Leaf, Label[%s];`, tag(0))
		case 3:
			src = fmt.Sprintf(`QUERY :- V.Label[%s].SecondChild.HasFirstChild;`, tag(0))
		}
		p, err := arb.ParseProgram(src)
		if err != nil {
			return nil, err
		}
		progs[i] = p
	}
	return progs, nil
}

// Batch runs the shared-scan batch experiment and returns the report.
func Batch(opts BatchOpts) (*BatchReport, error) {
	if len(opts.Sizes) == 0 {
		opts.Sizes = []int{1, 4, 16}
	}
	if opts.MinDBBytes == 0 {
		opts.MinDBBytes = 64_000_000
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("bench: batch experiment needs Dir")
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	maxSize := 0
	for _, s := range opts.Sizes {
		if s < 1 {
			return nil, fmt.Errorf("bench: batch size %d out of range", s)
		}
		if s > maxSize {
			maxSize = s
		}
	}

	// Generate (or reuse) the full-binary database just past the size
	// floor: depth d holds 2^(d+1)-1 two-byte records.
	depth := 1
	for (int64(2)<<depth)-1 < opts.MinDBBytes/storage.NodeSize {
		depth++
	}
	tags := []string{"a", "b", "c", "d"}
	base := filepath.Join(opts.Dir, fmt.Sprintf("batchdb-%d", depth))
	sess, err := arb.OpenSession(base)
	if err != nil {
		db, err := storage.CreateFullBinary(base, depth, tags)
		if err != nil {
			return nil, err
		}
		db.Close()
		if sess, err = arb.OpenSession(base); err != nil {
			return nil, err
		}
	}
	defer sess.Close()

	progs, err := batchQueryPool(maxSize, tags)
	if err != nil {
		return nil, err
	}
	report := &BatchReport{
		Experiment: "batch",
		DBBytes:    sess.Len() * storage.NodeSize,
		Nodes:      sess.Len(),
		Workers:    workers,
	}
	ctx := context.Background()
	for _, size := range opts.Sizes {
		row := BatchRow{BatchSize: size}

		// Sequential baseline: one PreparedQuery.Exec per query. Queries
		// are prepared fresh so both sides pay the same (tiny, one-time)
		// automata construction.
		seqStart := time.Now()
		var seqSelected int64
		for i := 0; i < size; i++ {
			pq, err := sess.Prepare(progs[i])
			if err != nil {
				return nil, err
			}
			res, _, err := pq.Exec(ctx, arb.ExecOpts{Workers: workers})
			if err != nil {
				return nil, err
			}
			seqSelected += res.Count(pq.Queries()[0])
		}
		row.SequentialSeconds = time.Since(seqStart).Seconds()

		// The same queries as one shared-scan batch; PrepareBatch sits
		// inside the timed region exactly as the sequential side's
		// Prepare calls do.
		items := make([]any, size)
		for i := range items {
			items[i] = progs[i]
		}
		batchStart := time.Now()
		pb, err := sess.PrepareBatch(items...)
		if err != nil {
			return nil, err
		}
		res, prof, err := pb.Exec(ctx, arb.ExecOpts{Workers: workers, Stats: true})
		if err != nil {
			return nil, err
		}
		row.BatchSeconds = time.Since(batchStart).Seconds()
		var batchSelected int64
		for i := range res {
			batchSelected += res[i].Count(pb.Queries(i)[0])
		}
		if batchSelected != seqSelected {
			return nil, fmt.Errorf("bench: batch size %d selected %d nodes, sequential %d",
				size, batchSelected, seqSelected)
		}
		row.SelectedTotal = batchSelected
		if row.BatchSeconds > 0 {
			row.Speedup = row.SequentialSeconds / row.BatchSeconds
			row.QueriesPerSec = float64(size) / row.BatchSeconds
		}
		row.BytesScannedPerQuery = (prof.Disk.Phase1.Bytes + prof.Disk.Phase2.Bytes) / int64(size)
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// WriteBatch renders the experiment as a table.
func WriteBatch(w io.Writer, r *BatchReport) {
	fmt.Fprintf(w, "Shared-scan batch execution, %d-node database (%d MB), %d worker(s).\n",
		r.Nodes, r.DBBytes>>20, r.Workers)
	fmt.Fprintf(w, "%6s %14s %12s %8s %10s %14s\n",
		"batch", "sequential(s)", "batch(s)", "speedup", "queries/s", "bytes/query")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%6d %14.3f %12.3f %8.2f %10.1f %14d\n",
			row.BatchSize, row.SequentialSeconds, row.BatchSeconds, row.Speedup,
			row.QueriesPerSec, row.BytesScannedPerQuery)
	}
}

// WriteBatchJSON writes the machine-readable report.
func WriteBatchJSON(w io.Writer, r *BatchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
