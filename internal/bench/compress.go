// Compressed-extent experiment: what does block compression buy the
// two-scan evaluator when the device, not the CPU, is the bottleneck?
// The experiment builds a large full-binary database with a distinct tag
// per depth (repetitive in exactly the way real markup is), compresses
// copies of it at several block sizes, and times the full two-scan pass
// (FoldBottomUp + ScanTopDown with trivial callbacks) over each through
// a token-bucket ReaderAt that models a sequential device of a given
// bandwidth. The raw database must move every logical byte through the
// device; a compressed one moves only the physical bytes and spends CPU
// decompressing — a trade that pays whenever decode bandwidth exceeds
// the device. A second, unthrottled section runs a real query end to end
// (pruned and unpruned) against raw and compressed containers on a warm
// page cache, as the no-regression check for the compute-bound regime.
//
// The page cache is dropped (best effort, needs root) before each
// throttled measurement so the numbers start from a cold cache; the
// token bucket still dominates because it is far slower than the disk.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"arb"
	"arb/internal/storage"
)

// CompressRow is one block-size configuration of the experiment.
type CompressRow struct {
	Codec        string  `json:"codec"`
	BlockSize    int     `json:"block_size"`
	Blocks       int     `json:"blocks"`
	LogicalBytes int64   `json:"logical_bytes"`
	PhysBytes    int64   `json:"phys_bytes"`
	Ratio        float64 `json:"ratio"`
	// ScanSeconds is the full two-scan pass over the simulated device.
	ScanSeconds float64 `json:"scan_seconds"`
	// Speedup is RawScanSeconds of the report over ScanSeconds.
	Speedup float64 `json:"speedup"`
}

// CompressReport is the machine-readable output of the experiment
// (written to BENCH_compress.json by arbbench).
type CompressReport struct {
	Experiment string `json:"experiment"`
	DBBytes    int64  `json:"db_bytes"`
	Nodes      int64  `json:"nodes"`
	Depth      int    `json:"depth"`
	// DeviceMBps is the simulated sequential device bandwidth the
	// throttled rows are measured against.
	DeviceMBps float64 `json:"device_mbps"`
	// ColdCache records whether the page cache was actually dropped
	// before the throttled measurements (needs root).
	ColdCache bool `json:"cold_cache"`
	// RawScanSeconds is the two-scan pass over the raw database through
	// the same simulated device — the baseline for every row's speedup.
	RawScanSeconds float64       `json:"raw_scan_seconds"`
	Rows           []CompressRow `json:"rows"`

	// Unthrottled end-to-end query checks on a warm cache (compressed at
	// the default block size): compression must not regress the
	// compute-bound regime, and pruning must keep working because the
	// index records physical block offsets.
	QueryRawSeconds        float64 `json:"query_raw_seconds"`
	QueryCompSeconds       float64 `json:"query_comp_seconds"`
	QuerySelected          int64   `json:"query_selected"`
	PrunedQueryRawSeconds  float64 `json:"pruned_query_raw_seconds"`
	PrunedQueryCompSeconds float64 `json:"pruned_query_comp_seconds"`
	PrunedQuerySelected    int64   `json:"pruned_query_selected"`
}

// CompressOpts configures the compression experiment.
type CompressOpts struct {
	// MinDBBytes is the minimum generated database size; default 64 MB.
	MinDBBytes int64
	// Dir is where the databases are created.
	Dir string
	// Codec is "lz" (default) or "flate".
	Codec string
	// BlockSizes to sweep; default 64 KB, 256 KB, 1 MB.
	BlockSizes []int
	// DeviceMBps is the simulated device bandwidth; default 64.
	DeviceMBps float64
}

// throttledReaderAt meters reads through a token bucket so the wall
// clock sees a sequential device of a fixed bandwidth regardless of how
// fast the machine underneath is. Seeks are free: the model charges for
// bytes moved, which is the quantity compression changes.
type throttledReaderAt struct {
	r    io.ReaderAt
	rate float64 // bytes per second

	mu    sync.Mutex
	avail float64
	last  time.Time
}

func newThrottledReaderAt(r io.ReaderAt, mbps float64) *throttledReaderAt {
	return &throttledReaderAt{r: r, rate: mbps * 1e6, last: time.Now()}
}

func (t *throttledReaderAt) ReadAt(p []byte, off int64) (int, error) {
	t.mu.Lock()
	now := time.Now()
	t.avail += now.Sub(t.last).Seconds() * t.rate
	t.last = now
	// An eighth of a second of burst keeps sleeps coarse enough to be
	// schedulable without letting the bucket mask whole reads.
	if burst := t.rate / 8; t.avail > burst {
		t.avail = burst
	}
	t.avail -= float64(len(p))
	var wait time.Duration
	if t.avail < 0 {
		wait = time.Duration(-t.avail / t.rate * float64(time.Second))
	}
	t.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
	return t.r.ReadAt(p, off)
}

// dropPageCache asks the kernel to drop clean page-cache entries so the
// next read really comes from the device. Needs root; callers treat
// failure as "measure warm" and record it. A variable so the smoke test
// can leave the machine's cache alone.
var dropPageCache = func() bool {
	if err := os.WriteFile("/proc/sys/vm/drop_caches", []byte("3\n"), 0); err != nil {
		return false
	}
	return true
}

// scanPassSeconds times one full two-scan pass — the backward fold and
// the forward scan every disk query pays — with trivial callbacks, over
// a database served through the given ReaderAt.
func scanPassSeconds(base string, r io.ReaderAt, size int64) (float64, error) {
	db, err := storage.OpenReaderAt(base, r, size)
	if err != nil {
		return 0, err
	}
	defer db.Close()
	ctx := context.Background()
	start := time.Now()
	if _, _, err := storage.FoldBottomUp(ctx, db, func(first, second *struct{}, rec storage.Record, v int64) struct{} {
		return struct{}{}
	}); err != nil {
		return 0, err
	}
	if _, err := storage.ScanTopDown(ctx, db, func(v int64, rec storage.Record, parent *struct{}, k int) (struct{}, error) {
		return struct{}{}, nil
	}); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// throttledScan opens base through a fresh token bucket (dropping the
// page cache first when possible) and times the two-scan pass.
func throttledScan(base string, mbps float64, cold *bool) (float64, error) {
	f, err := os.Open(base + ".arb")
	if err != nil {
		return 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	*cold = dropPageCache() && *cold
	return scanPassSeconds(base, newThrottledReaderAt(f, mbps), fi.Size())
}

// copyDatabase clones the raw database files (not the index; the
// compressor rewrites it) to a new base.
func copyDatabase(src, dst string) error {
	for _, ext := range []string{".arb", ".lab"} {
		b, err := os.ReadFile(src + ext)
		if err != nil {
			return err
		}
		if err := os.WriteFile(dst+ext, b, 0o644); err != nil {
			return err
		}
	}
	os.Remove(dst + ".idx")
	return nil
}

// timeQuery runs the prepared query (best of two) and returns seconds
// and the selected count.
func timeQuery(pq *arb.PreparedQuery, noprune bool) (float64, int64, error) {
	ctx := context.Background()
	query := pq.Queries()[0]
	best := 0.0
	var count int64
	for i := 0; i < 2; i++ {
		start := time.Now()
		res, _, err := pq.Exec(ctx, arb.ExecOpts{NoPrune: noprune})
		if err != nil {
			return 0, 0, err
		}
		if secs := time.Since(start).Seconds(); i == 0 || secs < best {
			best, count = secs, res.Count(query)
		}
	}
	return best, count, nil
}

// queryPair opens base, rebuilds/loads its index, and times the marker
// query unpruned and pruned.
func queryPair(base, tag string) (unpruned, pruned float64, selUnpruned, selPruned int64, err error) {
	db, err := storage.Open(base)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer db.Close()
	ctx := context.Background()
	if _, err := db.RebuildIndex(ctx, 0); err != nil {
		return 0, 0, 0, 0, err
	}
	sess := arb.NewDBSession(db)
	prog, err := arb.ParseProgram(fmt.Sprintf(`QUERY :- Label[%s];`, tag))
	if err != nil {
		return 0, 0, 0, 0, err
	}
	pq, err := sess.Prepare(prog)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	// Warm the page cache and automata before timing either mode.
	if _, _, err := pq.Exec(ctx, arb.ExecOpts{NoPrune: true}); err != nil {
		return 0, 0, 0, 0, err
	}
	unpruned, selUnpruned, err = timeQuery(pq, true)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	pruned, selPruned, err = timeQuery(pq, false)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return unpruned, pruned, selUnpruned, selPruned, nil
}

// Compress runs the compressed-extent experiment and returns the report.
func Compress(opts CompressOpts) (*CompressReport, error) {
	if opts.MinDBBytes == 0 {
		opts.MinDBBytes = 64_000_000
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("bench: compress experiment needs Dir")
	}
	codec, err := storage.ParseCodec(opts.Codec)
	if err != nil {
		return nil, err
	}
	if codec == storage.CodecRaw {
		return nil, fmt.Errorf("bench: compress experiment needs a real codec, not raw")
	}
	if len(opts.BlockSizes) == 0 {
		opts.BlockSizes = []int{1 << 16, 1 << 18, 1 << 20}
	}
	if opts.DeviceMBps == 0 {
		opts.DeviceMBps = 64
	}
	depth := 1
	for (int64(2)<<depth)-1 < opts.MinDBBytes/storage.NodeSize {
		depth++
	}
	tags := make([]string, depth+1)
	for d := 0; d <= depth; d++ {
		tags[d] = fmt.Sprintf("d%d", d)
	}

	rawBase := filepath.Join(opts.Dir, fmt.Sprintf("compressdb-%d", depth))
	for _, ext := range []string{".arb", ".lab", ".idx"} {
		os.Remove(rawBase + ext)
	}
	db, err := storage.CreateFullBinary(rawBase, depth, tags)
	if err != nil {
		return nil, err
	}
	report := &CompressReport{
		Experiment: "compress",
		DBBytes:    db.N * storage.NodeSize,
		Nodes:      db.N,
		Depth:      depth,
		DeviceMBps: opts.DeviceMBps,
		ColdCache:  true,
	}
	if err := db.Close(); err != nil {
		return nil, err
	}

	// Baseline: the raw database through the simulated device.
	report.RawScanSeconds, err = throttledScan(rawBase, opts.DeviceMBps, &report.ColdCache)
	if err != nil {
		return nil, err
	}

	// One compressed copy per block size through the same device.
	compBase := rawBase + "-z"
	for _, bs := range opts.BlockSizes {
		if err := copyDatabase(rawBase, compBase); err != nil {
			return nil, err
		}
		info, err := storage.CompressInPlace(compBase, codec, bs)
		if err != nil {
			return nil, err
		}
		secs, err := throttledScan(compBase, opts.DeviceMBps, &report.ColdCache)
		if err != nil {
			return nil, err
		}
		row := CompressRow{
			Codec:        storage.CodecName(info.Codec),
			BlockSize:    info.BlockSize,
			Blocks:       info.Blocks,
			LogicalBytes: info.LogicalBytes,
			PhysBytes:    info.PhysBytes,
			Ratio:        info.Ratio(),
			ScanSeconds:  secs,
		}
		if secs > 0 {
			row.Speedup = report.RawScanSeconds / secs
		}
		report.Rows = append(report.Rows, row)
	}

	// Unthrottled warm-cache no-regression check: a selective query,
	// pruned and unpruned, raw vs compressed at the default block size.
	// The marker tag sits at a shallow fixed depth, so everything below
	// it is provably dead and the pruned runs must seek past most
	// extents — on the compressed container that means seeking by
	// physical block offsets.
	if err := copyDatabase(rawBase, compBase); err != nil {
		return nil, err
	}
	if _, err := storage.CompressInPlace(compBase, codec, 0); err != nil {
		return nil, err
	}
	markDepth := 8
	if markDepth > depth/2 {
		markDepth = depth / 2
	}
	markTag := fmt.Sprintf("d%d", markDepth)
	rawUn, rawPr, rawSelUn, rawSelPr, err := queryPair(rawBase, markTag)
	if err != nil {
		return nil, err
	}
	compUn, compPr, compSelUn, compSelPr, err := queryPair(compBase, markTag)
	if err != nil {
		return nil, err
	}
	if rawSelUn != compSelUn || rawSelPr != compSelPr || rawSelUn != rawSelPr {
		return nil, fmt.Errorf("bench: compressed query selected %d/%d nodes, raw %d/%d",
			compSelUn, compSelPr, rawSelUn, rawSelPr)
	}
	report.QueryRawSeconds = rawUn
	report.QueryCompSeconds = compUn
	report.QuerySelected = rawSelUn
	report.PrunedQueryRawSeconds = rawPr
	report.PrunedQueryCompSeconds = compPr
	report.PrunedQuerySelected = rawSelPr
	return report, nil
}

// WriteCompress renders the experiment as a table.
func WriteCompress(w io.Writer, r *CompressReport) {
	fmt.Fprintf(w, "Compressed extents on the scan path, %d-node database (%d MB, depth %d), simulated %g MB/s device (cold cache: %v).\n",
		r.Nodes, r.DBBytes>>20, r.Depth, r.DeviceMBps, r.ColdCache)
	fmt.Fprintf(w, "Raw two-scan pass: %.3f s.\n", r.RawScanSeconds)
	fmt.Fprintf(w, "%8s %10s %8s %7s %14s %10s %8s\n",
		"codec", "block", "blocks", "ratio", "phys bytes", "scan(s)", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8s %10d %8d %6.2fx %14d %10.3f %7.2fx\n",
			row.Codec, row.BlockSize, row.Blocks, row.Ratio,
			row.PhysBytes, row.ScanSeconds, row.Speedup)
	}
	fmt.Fprintf(w, "Warm-cache query (unthrottled): raw %.3f s vs compressed %.3f s unpruned; raw %.3f s vs compressed %.3f s pruned (%d selected).\n",
		r.QueryRawSeconds, r.QueryCompSeconds,
		r.PrunedQueryRawSeconds, r.PrunedQueryCompSeconds, r.QuerySelected)
}

// WriteCompressJSON writes the machine-readable report.
func WriteCompressJSON(w io.Writer, r *CompressReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
