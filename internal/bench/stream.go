package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"arb/internal/core"
	"arb/internal/storage"
	"arb/internal/stream"
	"arb/internal/tree"
)

// StreamComparisonRow compares, for one query size, the one-pass
// streaming matcher of [12] (internal/stream) with the two-pass automata
// engine on the same top-down Treebank path queries — the query class
// both systems can express. It quantifies the Section 1 trade-off: the
// stream processor saves a pass (and all temporary storage) but is
// limited to this class, while the engine pays two scans for full unary
// MSO.
type StreamComparisonRow struct {
	Size          int
	StreamSeconds float64 // one-pass DFA matching, avg per query
	EngineSeconds float64 // two-pass automata run, avg per query
	Matches       float64 // avg matches (must agree between the two)
	Agreed        bool
}

// StreamComparison runs the comparison over a Treebank database. The
// tree is materialised once (the stream side consumes it as an event
// stream; the engine side runs in memory too, so the comparison isolates
// per-node evaluation cost rather than I/O).
func StreamComparison(base string, sizes []int, queries int) ([]StreamComparisonRow, error) {
	db, err := storage.Open(base)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	t, err := db.ReadTree(context.Background())
	if err != nil {
		return nil, err
	}

	var rows []StreamComparisonRow
	for _, size := range sizes {
		row := StreamComparisonRow{Size: size, Agreed: true}
		for _, rx := range Treebank.Queries(size, queries) {
			// One-pass streaming matcher.
			m, err := stream.Compile(rx.StreamQuery())
			if err != nil {
				return nil, fmt.Errorf("bench: stream compile %s: %w", rx, err)
			}
			sess := m.NewCountingSession()
			start := time.Now()
			if err := tree.Emit(t, sess); err != nil {
				return nil, err
			}
			row.StreamSeconds += time.Since(start).Seconds()

			// Two-pass engine on the equivalent TMNF program.
			prog, err := rx.Program(Treebank.RStep())
			if err != nil {
				return nil, err
			}
			c, err := core.Compile(prog)
			if err != nil {
				return nil, err
			}
			e := core.NewEngine(c, t.Names())
			start = time.Now()
			res, err := e.RunContext(context.Background(), t, core.RunOpts{})
			if err != nil {
				return nil, err
			}
			row.EngineSeconds += time.Since(start).Seconds()

			engineCount := res.Count(prog.Queries()[0])
			if engineCount != sess.Count() {
				row.Agreed = false
			}
			row.Matches += float64(engineCount)
		}
		q := float64(queries)
		row.StreamSeconds /= q
		row.EngineSeconds /= q
		row.Matches /= q
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteStreamComparison renders the comparison table.
func WriteStreamComparison(w io.Writer, rows []StreamComparisonRow) {
	fmt.Fprintf(w, "Stream (one-pass [12]) vs engine (two-pass MSO) on Treebank path queries.\n")
	fmt.Fprintf(w, "%4s %12s %12s %12s %8s\n", "size", "stream(s)", "engine(s)", "matches", "agreed")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %12.4f %12.4f %12.1f %8v\n",
			r.Size, r.StreamSeconds, r.EngineSeconds, r.Matches, r.Agreed)
	}
}
