// Result-cache experiment: what does the versioned result cache buy a
// hot workload? The experiment generates a large database, attaches a
// result cache to the session, and measures the three answer paths —
// cold miss (full execution and publish), exact hit (O(1) id-set
// return) and subsumption hit (in-memory re-filter of a superset
// entry) — then sweeps a Zipf-distributed query mix to show the hit
// rate and effective throughput a skewed workload sees. The acceptance
// numbers the report carries: exact hits must be orders of magnitude
// below the cold miss, and subsumption hits must read zero database
// bytes.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"time"

	"arb"
	"arb/internal/storage"
)

// ResCacheZipfRow is one skew level of the Zipf sweep.
type ResCacheZipfRow struct {
	Exponent       float64 `json:"exponent"`         // Zipf s over the query pool
	Requests       int     `json:"requests"`         // requests issued
	Distinct       int     `json:"distinct_queries"` // pool size
	Hits           uint64  `json:"hits"`             // exact hits
	Subsumed       uint64  `json:"subsumed"`         // subsumption answers
	Misses         uint64  `json:"misses"`           // full executions
	HitRate        float64 `json:"hit_rate"`         // (hits+subsumed)/requests
	ElapsedSeconds float64 `json:"elapsed_seconds"`  // wall time for the whole mix
	QueriesPerSec  float64 `json:"queries_per_sec"`
	// EstimatedSpeedup compares against every request paying the
	// measured cold-miss latency.
	EstimatedSpeedup float64 `json:"estimated_speedup"`
}

// ResCacheReport is the machine-readable output of the result-cache
// experiment (written to BENCH_rescache.json by arbbench).
type ResCacheReport struct {
	Experiment        string            `json:"experiment"`
	DBBytes           int64             `json:"db_bytes"`
	Nodes             int64             `json:"nodes"`
	CacheBytes        int64             `json:"cache_bytes"`
	ColdMissSeconds   float64           `json:"cold_miss_seconds"`   // mean full execution
	ExactHitSeconds   float64           `json:"exact_hit_seconds"`   // mean cached answer
	SubsumedSeconds   float64           `json:"subsumed_seconds"`    // mean subsumption answer
	HitSpeedup        float64           `json:"hit_speedup"`         // cold / exact
	SubsumedScanBytes int64             `json:"subsumed_scan_bytes"` // database bytes read by subsumption answers (must be 0)
	Zipf              []ResCacheZipfRow `json:"zipf"`
}

// ResCacheOpts configures the result-cache experiment.
type ResCacheOpts struct {
	// MinDBBytes is the minimum generated database size; default 64 MB.
	MinDBBytes int64
	// CacheBytes is the result cache budget; default 64 MB.
	CacheBytes int64
	// Dir is where the database is created (reused if already present).
	Dir string
	// Requests per Zipf row; default 256.
	Requests int
	// Exponents are the Zipf skews to sweep (each must be > 1, the
	// stdlib generator's domain); default 1.2 and 2.0.
	Exponents []float64
}

// resCachePool builds the experiment's distinct-query pool: label and
// structural shapes over the generated tags, TMNF and XPath alike, so
// the mix holds both summary-admitting queries (subsumption-capable)
// and structural ones (exact hits only).
func resCachePool(sess *arb.Session, tags []string) ([]*arb.PreparedQuery, error) {
	var srcs []string
	for _, t := range tags {
		srcs = append(srcs,
			fmt.Sprintf(`QUERY :- Label[%s];`, t),
			fmt.Sprintf(`QUERY :- Leaf, Label[%s];`, t))
	}
	for _, t := range tags {
		for _, u := range tags {
			srcs = append(srcs, fmt.Sprintf(`QUERY :- V.Label[%s].FirstChild.Label[%s];`, t, u))
		}
	}
	for _, t := range tags[:2] {
		for _, u := range tags {
			srcs = append(srcs, fmt.Sprintf(`//%s/%s`, t, u))
		}
	}
	pool := make([]*arb.PreparedQuery, 0, len(srcs))
	for _, src := range srcs {
		var pq *arb.PreparedQuery
		var err error
		if src[0] == '/' {
			var q *arb.XPathQuery
			if q, err = arb.ParseXPath(src); err == nil {
				pq, err = sess.PrepareXPath(q)
			}
		} else {
			var p *arb.Program
			if p, err = arb.ParseProgram(src); err == nil {
				pq, err = sess.Prepare(p)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("bench: pool query %q: %w", src, err)
		}
		pool = append(pool, pq)
	}
	return pool, nil
}

// ResCache runs the result-cache experiment and returns the report.
func ResCache(opts ResCacheOpts) (*ResCacheReport, error) {
	if opts.MinDBBytes == 0 {
		opts.MinDBBytes = 64_000_000
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 64 << 20
	}
	if opts.Requests == 0 {
		opts.Requests = 256
	}
	if len(opts.Exponents) == 0 {
		opts.Exponents = []float64{1.2, 2.0}
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("bench: rescache experiment needs Dir")
	}

	depth := 1
	for (int64(2)<<depth)-1 < opts.MinDBBytes/storage.NodeSize {
		depth++
	}
	tags := []string{"a", "b", "c", "d"}
	base := filepath.Join(opts.Dir, fmt.Sprintf("rescachedb-%d", depth))
	sess, err := arb.OpenSession(base)
	if err != nil {
		db, err := storage.CreateFullBinary(base, depth, tags)
		if err != nil {
			return nil, err
		}
		db.Close()
		if sess, err = arb.OpenSession(base); err != nil {
			return nil, err
		}
	}
	defer sess.Close()
	sess.SetResultCache(opts.CacheBytes)

	report := &ResCacheReport{
		Experiment: "rescache",
		DBBytes:    sess.Len() * storage.NodeSize,
		Nodes:      sess.Len(),
		CacheBytes: opts.CacheBytes,
	}
	ctx := context.Background()

	// Cold misses and exact hits over a measurement set of label
	// queries: the first execution of each pays the scans and publishes,
	// the repeats answer from the cache.
	var cold, hot []*arb.PreparedQuery
	for _, t := range tags {
		p, err := arb.ParseProgram(fmt.Sprintf(`QUERY :- Label[%s], HasFirstChild;`, t))
		if err != nil {
			return nil, err
		}
		pq, err := sess.Prepare(p)
		if err != nil {
			return nil, err
		}
		cold = append(cold, pq)
		hot = append(hot, pq)
	}
	var coldTotal time.Duration
	for _, pq := range cold {
		start := time.Now()
		_, prof, err := pq.Exec(ctx, arb.ExecOpts{ResultCache: true, Stats: true})
		if err != nil {
			return nil, err
		}
		if prof.ResultCache != "miss" {
			return nil, fmt.Errorf("bench: cold execution answered %q, want miss", prof.ResultCache)
		}
		coldTotal += time.Since(start)
	}
	report.ColdMissSeconds = coldTotal.Seconds() / float64(len(cold))

	const hitReps = 50
	var hitTotal time.Duration
	for i := 0; i < hitReps; i++ {
		for _, pq := range hot {
			start := time.Now()
			_, prof, err := pq.Exec(ctx, arb.ExecOpts{ResultCache: true, Stats: true})
			if err != nil {
				return nil, err
			}
			if prof.ResultCache != "hit" {
				return nil, fmt.Errorf("bench: hot execution answered %q, want hit", prof.ResultCache)
			}
			hitTotal += time.Since(start)
		}
	}
	report.ExactHitSeconds = hitTotal.Seconds() / float64(hitReps*len(hot))
	if report.ExactHitSeconds > 0 {
		report.HitSpeedup = report.ColdMissSeconds / report.ExactHitSeconds
	}

	// Subsumption: a broad single-label entry answers the narrower
	// non-root variant of the same label with zero scan bytes. On this
	// synthetic uniform tree a label query selects Θ(n) nodes, so its
	// packed id list only clears the cache's quarter-budget admission
	// guard with a budget scaled to the database; real workloads with
	// selective hot queries need far less. The sweep below runs at the
	// configured budget, where such giant entries serve exact hits only.
	subBudget := report.DBBytes * 8
	if subBudget < opts.CacheBytes {
		subBudget = opts.CacheBytes
	}
	sess.SetResultCache(subBudget)
	broad, err := arb.ParseProgram(`QUERY :- Label[c];`)
	if err != nil {
		return nil, err
	}
	pqBroad, err := sess.Prepare(broad)
	if err != nil {
		return nil, err
	}
	if _, _, err := pqBroad.Exec(ctx, arb.ExecOpts{ResultCache: true}); err != nil {
		return nil, err
	}
	narrow, err := arb.ParseProgram(`
R :- Root;
D :- R.FirstChild;
D :- R.SecondChild;
D :- D.FirstChild;
D :- D.SecondChild;
QUERY :- D, Label[c];
`)
	if err != nil {
		return nil, err
	}
	pqNarrow, err := sess.Prepare(narrow)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	_, prof, err := pqNarrow.Exec(ctx, arb.ExecOpts{ResultCache: true, Stats: true})
	if err != nil {
		return nil, err
	}
	if prof.ResultCache != "subsumed" {
		return nil, fmt.Errorf("bench: narrow non-root Label[c] answered %q, want subsumed", prof.ResultCache)
	}
	report.SubsumedScanBytes = prof.Disk.Phase1.Bytes + prof.Disk.Phase2.Bytes
	report.SubsumedSeconds = time.Since(start).Seconds()

	// Zipf sweep: a skewed mix over a fresh cache per row.
	pool, err := resCachePool(sess, tags)
	if err != nil {
		return nil, err
	}
	for _, s := range opts.Exponents {
		sess.SetResultCache(opts.CacheBytes) // fresh cache per row
		r := rand.New(rand.NewSource(int64(s * 1000)))
		zipf := rand.NewZipf(r, s, 1, uint64(len(pool)-1))
		start := time.Now()
		for i := 0; i < opts.Requests; i++ {
			pq := pool[zipf.Uint64()]
			if _, _, err := pq.Exec(ctx, arb.ExecOpts{ResultCache: true}); err != nil {
				return nil, fmt.Errorf("bench: zipf s=%.1f request %d: %w", s, i, err)
			}
		}
		elapsed := time.Since(start)
		stats, _ := sess.ResultCacheStats()
		row := ResCacheZipfRow{
			Exponent:       s,
			Requests:       opts.Requests,
			Distinct:       len(pool),
			Hits:           stats.Hits,
			Subsumed:       stats.Subsumed,
			Misses:         stats.Misses,
			HitRate:        float64(stats.Hits+stats.Subsumed) / float64(opts.Requests),
			ElapsedSeconds: elapsed.Seconds(),
			QueriesPerSec:  float64(opts.Requests) / elapsed.Seconds(),
		}
		if elapsed > 0 && report.ColdMissSeconds > 0 {
			row.EstimatedSpeedup = report.ColdMissSeconds * float64(opts.Requests) / elapsed.Seconds()
		}
		report.Zipf = append(report.Zipf, row)
	}
	return report, nil
}

// WriteResCache renders the experiment as a table.
func WriteResCache(w io.Writer, r *ResCacheReport) {
	fmt.Fprintf(w, "Result cache on a %d-node database (%d MB), %d MB budget.\n",
		r.Nodes, r.DBBytes>>20, r.CacheBytes>>20)
	fmt.Fprintf(w, "cold miss %.4fs, exact hit %.6fs (%.0fx), subsumption answer %.6fs (%d scan bytes)\n",
		r.ColdMissSeconds, r.ExactHitSeconds, r.HitSpeedup, r.SubsumedSeconds, r.SubsumedScanBytes)
	fmt.Fprintf(w, "%8s %9s %9s %6s %9s %7s %9s %11s %9s\n",
		"zipf-s", "requests", "distinct", "hits", "subsumed", "misses", "hit-rate", "queries/s", "speedup")
	for _, row := range r.Zipf {
		fmt.Fprintf(w, "%8.1f %9d %9d %6d %9d %7d %9.2f %11.1f %9.1f\n",
			row.Exponent, row.Requests, row.Distinct, row.Hits, row.Subsumed, row.Misses,
			row.HitRate, row.QueriesPerSec, row.EstimatedSpeedup)
	}
}

// WriteResCacheJSON writes the machine-readable report.
func WriteResCacheJSON(w io.Writer, r *ResCacheReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
