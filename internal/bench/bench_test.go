package bench

import (
	"io"
	"testing"
)

// Tiny-scale smoke runs of the full harness; the real experiments run
// through cmd/arbbench and the repository's bench_test.go.

func TestFig5Small(t *testing.T) {
	rows, bases, err := Fig5(t.TempDir(), 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(bases) != 4 {
		t.Fatalf("got %d rows, %d bases; want 4, 4", len(rows), len(bases))
	}
	for _, r := range rows {
		n := r.ElemNodes + r.CharNodes
		if n == 0 {
			t.Fatalf("%s: empty database", r.Name)
		}
		if r.ArbBytes != 2*n {
			t.Fatalf("%s: .arb size %d for %d nodes, want %d", r.Name, r.ArbBytes, n, 2*n)
		}
		if r.EvtBytes != 2*r.ArbBytes {
			t.Fatalf("%s: .evt size %d, want twice .arb (%d)", r.Name, r.EvtBytes, 2*r.ArbBytes)
		}
	}
	WriteFig5(io.Discard, rows)
}

func TestFig6SmallAllThreads(t *testing.T) {
	dir := t.TempDir()
	opts := Fig6Opts{Sizes: []int{5, 6}, Queries: 3, Scale: 0.0005, Dir: dir}
	var flat, infix []Fig6Row
	for _, th := range []Thread{Treebank, ACGTFlat, ACGTInfix} {
		rows, err := Fig6(th, opts)
		if err != nil {
			t.Fatalf("%s: %v", th, err)
		}
		if len(rows) != 2 {
			t.Fatalf("%s: %d rows", th, len(rows))
		}
		for _, r := range rows {
			if r.IDB == 0 || r.Rules == 0 {
				t.Fatalf("%s: empty program stats: %+v", th, r)
			}
			if r.BUTransitions == 0 || r.TDTransitions == 0 {
				t.Fatalf("%s: no transitions: %+v", th, r)
			}
		}
		switch th {
		case ACGTFlat:
			flat = rows
		case ACGTInfix:
			infix = rows
		}
		WriteFig6(io.Discard, th, rows)
	}
	// The paper's column (9) cross-check: identical selected counts on
	// the flat and infix versions of the same sequence and queries.
	for i := range flat {
		if flat[i].Selected != infix[i].Selected {
			t.Fatalf("size %d: flat selected %v, infix %v", flat[i].Size, flat[i].Selected, infix[i].Selected)
		}
	}
}

func TestCompressSmall(t *testing.T) {
	// A device fast enough that the throttle never sleeps noticeably:
	// this is a harness smoke test, not a measurement — so it must not
	// flush the machine's page cache either.
	oldDrop := dropPageCache
	dropPageCache = func() bool { return false }
	defer func() { dropPageCache = oldDrop }()
	r, err := Compress(CompressOpts{
		MinDBBytes: 2_000_000, Dir: t.TempDir(),
		DeviceMBps: 4000, BlockSizes: []int{1 << 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(r.Rows))
	}
	row := r.Rows[0]
	if row.Ratio <= 1 || row.PhysBytes >= row.LogicalBytes {
		t.Fatalf("repetitive database did not compress: %+v", row)
	}
	if row.LogicalBytes != r.DBBytes {
		t.Fatalf("logical bytes %d, want db bytes %d", row.LogicalBytes, r.DBBytes)
	}
	if r.QuerySelected == 0 || r.QuerySelected != r.PrunedQuerySelected {
		t.Fatalf("query selected %d unpruned, %d pruned", r.QuerySelected, r.PrunedQuerySelected)
	}
	WriteCompress(io.Discard, r)
	if err := WriteCompressJSON(io.Discard, r); err != nil {
		t.Fatal(err)
	}
}

func TestStreamComparisonSmall(t *testing.T) {
	dir := t.TempDir()
	base, err := createThreadDB(Treebank, dir, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := StreamComparison(base, []int{5, 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Agreed {
			t.Fatalf("size %d: stream and engine disagree", r.Size)
		}
	}
	WriteStreamComparison(io.Discard, rows)
}
