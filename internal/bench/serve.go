// Serving experiment: what does adaptive shared-scan coalescing buy a
// concurrent query server? The experiment generates a large database,
// starts the internal/server engine over it twice — once with batching
// disabled (every request pays its own scan pair) and once with the
// coalescer on — and fires bursts of concurrent HTTP requests at both,
// recording wall time, requests per second, scan pairs executed and data
// bytes scanned per request. The per-request cost falling as 1/K is the
// paper's scan-dominated cost model surfacing at the serving layer.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"sync"
	"time"

	"arb"
	"arb/internal/server"
	"arb/internal/storage"
)

// serveQueryPool returns count distinct query strings over the
// generated full-binary tags, in the /query wire form (TMNF source and
// xpath:-prefixed Core XPath), cycling a few structural shapes.
func serveQueryPool(count int, tags []string) []string {
	out := make([]string, count)
	for i := range out {
		tag := func(k int) string { return tags[(i/4+k)%len(tags)] }
		switch i % 4 {
		case 0:
			out[i] = fmt.Sprintf(`QUERY :- Label[%s];`, tag(0))
		case 1:
			out[i] = fmt.Sprintf(`QUERY :- V.Label[%s].FirstChild.Label[%s];`, tag(0), tag(1))
		case 2:
			out[i] = fmt.Sprintf(`xpath://%s/%s`, tag(0), tag(1))
		case 3:
			out[i] = fmt.Sprintf(`QUERY :- Leaf, Label[%s];`, tag(0))
		}
	}
	return out
}

// ServeRow is one concurrency level of the serving experiment.
type ServeRow struct {
	Concurrency       int     `json:"concurrency"`
	PerRequestSeconds float64 `json:"per_request_seconds"`
	CoalescedSeconds  float64 `json:"coalesced_seconds"`
	Speedup           float64 `json:"speedup"`
	QueriesPerSec     float64 `json:"queries_per_sec"`
	PerRequestScans   int64   `json:"per_request_scan_pairs"`
	CoalescedScans    int64   `json:"coalesced_scan_pairs"`
	BytesPerRequest   int64   `json:"bytes_scanned_per_request"`
}

// ServeReport is the machine-readable output of the serving experiment
// (written to BENCH_serve.json by arbbench).
type ServeReport struct {
	Experiment string     `json:"experiment"`
	DBBytes    int64      `json:"db_bytes"`
	Nodes      int64      `json:"nodes"`
	BatchMax   int        `json:"batch_max"`
	Rows       []ServeRow `json:"rows"`
}

// ServeOpts configures the serving experiment.
type ServeOpts struct {
	// Concurrency levels to sweep; default 1, 8, 32.
	Concurrency []int
	// MinDBBytes is the minimum generated database size; default 16 MB.
	MinDBBytes int64
	// Dir is where the database is created (reused if already present).
	Dir string
	// BatchMax is the coalescer's K; default 16.
	BatchMax int
}

// Serve runs the serving experiment and returns the report.
func Serve(opts ServeOpts) (*ServeReport, error) {
	if len(opts.Concurrency) == 0 {
		opts.Concurrency = []int{1, 8, 32}
	}
	if opts.MinDBBytes == 0 {
		opts.MinDBBytes = 16_000_000
	}
	if opts.BatchMax == 0 {
		opts.BatchMax = 16
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("bench: serve experiment needs Dir")
	}

	depth := 1
	for (int64(2)<<depth)-1 < opts.MinDBBytes/storage.NodeSize {
		depth++
	}
	tags := []string{"a", "b", "c", "d"}
	base := filepath.Join(opts.Dir, fmt.Sprintf("servedb-%d", depth))
	sess, err := arb.OpenSession(base)
	if err != nil {
		db, err := storage.CreateFullBinary(base, depth, tags)
		if err != nil {
			return nil, err
		}
		db.Close()
		if sess, err = arb.OpenSession(base); err != nil {
			return nil, err
		}
	}
	defer sess.Close()

	maxC := 0
	for _, c := range opts.Concurrency {
		if c < 1 {
			return nil, fmt.Errorf("bench: concurrency %d out of range", c)
		}
		if c > maxC {
			maxC = c
		}
	}
	queries := serveQueryPool(maxC, tags)

	report := &ServeReport{
		Experiment: "serve",
		DBBytes:    sess.Len() * storage.NodeSize,
		Nodes:      sess.Len(),
		BatchMax:   opts.BatchMax,
	}

	// fire sends queries[0:n] concurrently and returns the wall time plus
	// the server's scan-pair and byte deltas.
	fire := func(srv *server.Server, ts *httptest.Server, n int) (time.Duration, int64, int64, error) {
		before := srv.Snapshot()
		var wg sync.WaitGroup
		errs := make([]error, n)
		start := time.Now()
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(queries[i]))
				if err != nil {
					errs[i] = err
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					body, _ := io.ReadAll(resp.Body)
					errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
				_, errs[i] = io.Copy(io.Discard, resp.Body)
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, 0, 0, err
			}
		}
		after := srv.Snapshot()
		scans := after.Profile.ScanRounds - before.Profile.ScanRounds
		bytes := (after.Profile.Phase1 + after.Profile.Phase2) - (before.Profile.Phase1 + before.Profile.Phase2)
		return elapsed, scans, bytes, nil
	}

	run := func(cfg server.Config, n int) (time.Duration, int64, int64, error) {
		srv := server.New(context.Background(), sess, cfg)
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		// Warm-up: compile every plan and prime the coalescer's arrival
		// clock, so both modes measure scan time, not compilation.
		if _, _, _, err := fire(srv, ts, n); err != nil {
			return 0, 0, 0, err
		}
		return fire(srv, ts, n)
	}

	for _, n := range opts.Concurrency {
		row := ServeRow{Concurrency: n}

		// Baseline: coalescing off (K = 1), every request its own scans.
		perReq, perScans, _, err := run(server.Config{
			BatchMax: 1, Window: time.Millisecond, MaxInflight: 2,
		}, n)
		if err != nil {
			return nil, fmt.Errorf("bench: per-request mode at %d: %w", n, err)
		}
		row.PerRequestSeconds = perReq.Seconds()
		row.PerRequestScans = perScans

		// Coalesced: gather the burst into shared-scan batches of up to K.
		co, coScans, coBytes, err := run(server.Config{
			BatchMax: opts.BatchMax, Window: 25 * time.Millisecond, MaxInflight: 2,
		}, n)
		if err != nil {
			return nil, fmt.Errorf("bench: coalesced mode at %d: %w", n, err)
		}
		row.CoalescedSeconds = co.Seconds()
		row.CoalescedScans = coScans
		if co > 0 {
			row.Speedup = perReq.Seconds() / co.Seconds()
			row.QueriesPerSec = float64(n) / co.Seconds()
		}
		row.BytesPerRequest = coBytes / int64(n)
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// WriteServe renders the experiment as a table.
func WriteServe(w io.Writer, r *ServeReport) {
	fmt.Fprintf(w, "Concurrent serving with shared-scan coalescing, %d-node database (%d MB), K = %d.\n",
		r.Nodes, r.DBBytes>>20, r.BatchMax)
	fmt.Fprintf(w, "%8s %15s %13s %8s %10s %11s %11s %13s\n",
		"clients", "per-request(s)", "coalesced(s)", "speedup", "queries/s", "scans-before", "scans-after", "bytes/request")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8d %15.3f %13.3f %8.2f %10.1f %11d %11d %13d\n",
			row.Concurrency, row.PerRequestSeconds, row.CoalescedSeconds, row.Speedup,
			row.QueriesPerSec, row.PerRequestScans, row.CoalescedScans, row.BytesPerRequest)
	}
}

// WriteServeJSON writes the machine-readable report.
func WriteServeJSON(w io.Writer, r *ServeReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
