// Patch experiment: what does copy-on-write subtree patching buy over
// rebuilding the database? The experiment generates a large full-binary
// database, opens it versioned, and measures three things — the wall
// time of a small subtree patch against the wall time of recreating the
// database from scratch (the only way to change an immutable .arb), the
// sustained read throughput of a prepared query while a writer commits
// a steady stream of patches versus the same query on an idle store,
// and the cost of compacting the patched store back to one segment.
// MVCC snapshots are doing the work in the middle number: every
// execution pins one version, so readers never wait on the writer.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"arb"
	"arb/internal/storage"
)

// PatchReport is the machine-readable output of the patch experiment
// (written to BENCH_patch.json by arbbench).
type PatchReport struct {
	Experiment        string  `json:"experiment"`
	DBBytes           int64   `json:"db_bytes"`
	Nodes             int64   `json:"nodes"`
	RecreateSeconds   float64 `json:"recreate_seconds"`
	Patches           int     `json:"patches"`
	AvgPatchSeconds   float64 `json:"avg_patch_seconds"`
	Speedup           float64 `json:"patch_vs_recreate_speedup"`
	IdleQPS           float64 `json:"idle_queries_per_sec"`
	PatchingQPS       float64 `json:"patching_queries_per_sec"`
	ReadRatio         float64 `json:"patching_read_ratio"`
	PatchesDuringRead int64   `json:"patches_during_read_window"`
	CompactSeconds    float64 `json:"compact_seconds"`
	FinalVersion      uint64  `json:"final_version"`
}

// PatchOpts configures the patch experiment.
type PatchOpts struct {
	// MinDBBytes is the minimum generated database size; default 64 MB.
	MinDBBytes int64
	// Dir is where the database is created. The experiment always
	// rebuilds it: creation time is the baseline being measured.
	Dir string
	// Patches is the number of timed mutations; default 64.
	Patches int
	// ReadExecs is how many query executions each throughput
	// measurement averages over; default 3. A full scan pair of the
	// 64 MB database takes seconds, so a fixed count beats a time
	// window: both modes do identical work and the ratio is a clean
	// latency comparison.
	ReadExecs int
}

// Patch runs the patch experiment and returns the report.
func Patch(opts PatchOpts) (*PatchReport, error) {
	if opts.MinDBBytes == 0 {
		opts.MinDBBytes = 64_000_000
	}
	if opts.Patches == 0 {
		opts.Patches = 64
	}
	if opts.ReadExecs == 0 {
		opts.ReadExecs = 3
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("bench: patch experiment needs Dir")
	}
	ctx := context.Background()

	depth := 1
	for (int64(2)<<depth)-1 < opts.MinDBBytes/storage.NodeSize {
		depth++
	}
	tags := []string{"a", "b", "c", "d"}
	base := filepath.Join(opts.Dir, fmt.Sprintf("patchdb-%d", depth))
	for _, ext := range []string{".arb", ".lab", ".idx", ".arbm"} {
		os.Remove(base + ext)
	}
	if segs, err := filepath.Glob(base + "-*.seg"); err == nil {
		for _, seg := range segs {
			os.Remove(seg)
		}
	}

	// The recreate baseline is everything a patchless engine pays to
	// reflect a change: write the records and rebuild the pruning
	// index (the first versioned open bootstraps the .idx sidecar).
	start := time.Now()
	db, err := storage.CreateFullBinary(base, depth, tags)
	if err != nil {
		return nil, err
	}
	db.Close()
	sess, err := arb.OpenVersionedSession(ctx, base)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	recreate := time.Since(start)

	report := &PatchReport{
		Experiment:      "patch",
		DBBytes:         sess.Len() * storage.NodeSize,
		Nodes:           sess.Len(),
		RecreateSeconds: recreate.Seconds(),
		Patches:         opts.Patches,
	}

	// Timed mutations: alternate inserting a small fragment under the
	// root and deleting it again, so the database stays the same size
	// and every op is a genuinely small subtree patch.
	frag, err := arb.ParseXML(strings.NewReader(`<b><c/><d/></b>`))
	if err != nil {
		return nil, err
	}
	patchStart := time.Now()
	for i := 0; i < opts.Patches; i++ {
		if i%2 == 0 {
			_, err = sess.InsertChild(ctx, 0, frag)
		} else {
			_, err = sess.DeleteSubtree(ctx, 1)
		}
		if err != nil {
			return nil, fmt.Errorf("bench: patch %d: %w", i, err)
		}
	}
	report.AvgPatchSeconds = time.Since(patchStart).Seconds() / float64(opts.Patches)
	if report.AvgPatchSeconds > 0 {
		report.Speedup = report.RecreateSeconds / report.AvgPatchSeconds
	}

	// Read throughput, idle versus under a patching writer. The query
	// matches nothing but cannot be pruned (every subtree carries b),
	// so each Exec is a full scan pair over the database — the honest
	// unit of read work.
	xq, err := arb.ParseXPath("//b/b")
	if err != nil {
		return nil, err
	}
	pq, err := sess.PrepareXPath(xq)
	if err != nil {
		return nil, err
	}
	measure := func() (float64, error) {
		begin := time.Now()
		for n := 0; n < opts.ReadExecs; n++ {
			if _, _, err := pq.Exec(ctx, arb.ExecOpts{}); err != nil {
				return 0, err
			}
		}
		return float64(opts.ReadExecs) / time.Since(begin).Seconds(), nil
	}

	if report.IdleQPS, err = measure(); err != nil {
		return nil, fmt.Errorf("bench: idle reads: %w", err)
	}

	// Pin a stable target for the writer: one inserted child whose
	// preorder id (1) never moves while it is replaced in place.
	if _, err := sess.InsertChild(ctx, 0, frag); err != nil {
		return nil, err
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var patched int64
	var patchErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sess.ReplaceSubtree(ctx, 1, frag); err != nil {
				patchErr = err
				return
			}
			patched++
			time.Sleep(5 * time.Millisecond)
		}
	}()
	report.PatchingQPS, err = measure()
	close(stop)
	wg.Wait()
	if err != nil {
		return nil, fmt.Errorf("bench: reads under patching: %w", err)
	}
	if patchErr != nil {
		return nil, fmt.Errorf("bench: background writer: %w", patchErr)
	}
	report.PatchesDuringRead = patched
	if report.IdleQPS > 0 {
		report.ReadRatio = report.PatchingQPS / report.IdleQPS
	}

	compactStart := time.Now()
	if _, err := sess.Compact(ctx); err != nil {
		return nil, fmt.Errorf("bench: compact: %w", err)
	}
	report.CompactSeconds = time.Since(compactStart).Seconds()
	report.FinalVersion = sess.Version()
	return report, nil
}

// WritePatch renders the experiment as a table.
func WritePatch(w io.Writer, r *PatchReport) {
	fmt.Fprintf(w, "Copy-on-write patching versus recreation, %d-node database (%d MB).\n",
		r.Nodes, r.DBBytes>>20)
	fmt.Fprintf(w, "%-28s %12.3f s\n", "recreate from scratch", r.RecreateSeconds)
	fmt.Fprintf(w, "%-28s %12.6f s  (%d patches, %.0fx faster)\n", "subtree patch (avg)",
		r.AvgPatchSeconds, r.Patches, r.Speedup)
	fmt.Fprintf(w, "%-28s %12.2f queries/s\n", "reads on idle store", r.IdleQPS)
	fmt.Fprintf(w, "%-28s %12.2f queries/s  (%.1f%% of idle, %d patches committed meanwhile)\n",
		"reads under patching", r.PatchingQPS, 100*r.ReadRatio, r.PatchesDuringRead)
	fmt.Fprintf(w, "%-28s %12.3f s  (final version %d)\n", "compact", r.CompactSeconds, r.FinalVersion)
}

// WritePatchJSON writes the machine-readable report.
func WritePatchJSON(w io.Writer, r *PatchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
