// Package bench regenerates the paper's experimental evaluation: the
// database-creation statistics of Figure 5 and the three query-benchmark
// threads of Figure 6 (top-down regular path queries on a Treebank-like
// database, bottom-up regular path queries on ACGT-flat, and sideways
// caterpillar queries on ACGT-infix).
//
// Absolute times cannot be compared with the paper's (a 2003 laptop);
// what must reproduce is the shape: creation cost linear in document
// size with fixed per-node file sizes (Figure 5); per-query evaluation
// time dominated by the two linear scans and nearly independent of query
// size after automaton warm-up, tiny transition tables for Treebank and
// ACGT-flat, large but still lazily-manageable ones for ACGT-infix, and
// identical selected counts between ACGT-flat and ACGT-infix (Figure 6).
//
// The harness is shared by cmd/arbbench (human-readable tables, any
// scale) and the repository's bench_test.go (testing.B integration).
package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"arb/internal/core"
	"arb/internal/parallel"
	"arb/internal/storage"
	"arb/internal/tmnf"
	"arb/internal/workload"
)

// DefaultScale is the fraction of the paper's dataset sizes used when no
// scale is given: small enough for CI, large enough that scan costs
// dominate. Scale 1.0 reproduces the paper's sizes exactly (2^25-1
// sequence symbols, ~32M-node Treebank, ~307M-node Swissprot; needs
// ~2.5 GB of disk).
const DefaultScale = 1.0 / 32

// Fig5Row is one row of Figure 5 (database creation statistics).
type Fig5Row struct {
	Name      string
	ElemNodes int64
	CharNodes int64
	Tags      int
	Seconds   float64
	ArbBytes  int64
	LabBytes  int64
	EvtBytes  int64
}

// Fig5 creates the paper's four databases under dir at the given scale
// and reports the creation statistics. The returned base paths (keyed by
// row name) can be reused by Fig6 runs.
func Fig5(dir string, scale float64) ([]Fig5Row, map[string]string, error) {
	bases := map[string]string{}
	var rows []Fig5Row

	add := func(name string, stats *storage.CreateStats, base string) {
		bases[name] = base
		rows = append(rows, Fig5Row{
			Name:      name,
			ElemNodes: stats.ElemNodes,
			CharNodes: stats.CharNodes,
			Tags:      stats.Tags,
			Seconds:   stats.Duration.Seconds(),
			ArbBytes:  stats.ArbBytes,
			LabBytes:  stats.LabBytes,
			EvtBytes:  stats.EvtBytes,
		})
	}

	// Treebank-like.
	base := filepath.Join(dir, "treebank")
	db, stats, err := workload.CreateTreebankDB(base, workload.DefaultTreebank(scale))
	if err != nil {
		return nil, nil, fmt.Errorf("bench: treebank: %w", err)
	}
	db.Close()
	add("Treebank", stats, base)

	// ACGT: the paper's sequence has 2^25-1 symbols; keep the 2^k-1 form
	// so the infix tree is complete.
	bits := 25
	for scale < 1 && bits > 10 && float64(int64(1)<<25)*scale < float64(int64(1)<<bits) {
		bits--
	}
	seq := workload.Sequence(4, 1<<bits-1)

	for _, kind := range []string{"ACGT-infix", "ACGT-flat"} {
		base := filepath.Join(dir, kind)
		start := time.Now()
		var db *storage.DB
		var err error
		if kind == "ACGT-infix" {
			db, err = workload.CreateInfixDB(base, seq)
		} else {
			db, err = workload.CreateFlatDB(base, seq)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %s: %w", kind, err)
		}
		n := db.N
		labSize := int64(0)
		if st, err := os.Stat(base + ".lab"); err == nil {
			labSize = st.Size()
		}
		db.Close()
		// Direct binary creation has no event file; report the size the
		// paper's two-pass scheme would have used, for comparability.
		add(kind, &storage.CreateStats{
			ElemNodes: n,
			Tags:      5,
			Duration:  time.Since(start),
			ArbBytes:  n * storage.NodeSize,
			LabBytes:  labSize,
			EvtBytes:  2 * n * storage.NodeSize,
		}, base)
	}

	// Swissprot-like.
	base = filepath.Join(dir, "swissprot")
	db, stats, err = workload.CreateSwissprotDB(base, workload.DefaultSwissprot(scale))
	if err != nil {
		return nil, nil, fmt.Errorf("bench: swissprot: %w", err)
	}
	db.Close()
	add("SWISSPROT", stats, base)
	return rows, bases, nil
}

// WriteFig5 renders rows in the layout of Figure 5.
func WriteFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintf(w, "%-12s %12s %12s %6s %9s %14s %9s %14s\n",
		"", "elem nodes", "char nodes", "tags", "time(s)", ".arb bytes", ".lab", ".evt bytes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12d %12d %6d %9.2f %14d %9d %14d\n",
			r.Name, r.ElemNodes, r.CharNodes, r.Tags, r.Seconds,
			r.ArbBytes, r.LabBytes, r.EvtBytes)
	}
}

// Thread selects one of the Figure 6 benchmark threads.
type Thread int

const (
	// Treebank: random top-down regular path queries over {NP,VP,PP,S},
	// R = FirstChild.NextSibling*.
	Treebank Thread = iota
	// ACGTFlat: the same regex classes over {A,C,G,T} matched bottom-up
	// (R = invNextSibling) in the flat sequence tree.
	ACGTFlat
	// ACGTInfix: the same regexes matched with the in-order-predecessor
	// caterpillar in the balanced infix tree.
	ACGTInfix
)

func (th Thread) String() string {
	switch th {
	case Treebank:
		return "Treebank"
	case ACGTFlat:
		return "ACGT-flat"
	case ACGTInfix:
		return "ACGT-infix"
	}
	return "?"
}

// RStep returns the thread's caterpillar step.
func (th Thread) RStep() string {
	switch th {
	case Treebank:
		return workload.RTreebank
	case ACGTFlat:
		return workload.RFlat
	}
	return workload.RInfix
}

// Alphabet returns the thread's query alphabet.
func (th Thread) Alphabet() []string {
	if th == Treebank {
		return workload.GrammarAlphabet
	}
	return workload.ACGTAlphabet
}

// Queries generates the thread's benchmark queries of one size. The
// generator is seeded by the query size only, so ACGTFlat and ACGTInfix
// receive the same regexes — the paper's column (9) cross-check depends
// on it.
func (th Thread) Queries(size, count int) []workload.PathRegex {
	rng := rand.New(rand.NewSource(int64(size)*1009 + 17))
	out := make([]workload.PathRegex, count)
	for i := range out {
		out[i] = workload.RandomPathRegex(rng, size, th.Alphabet())
	}
	return out
}

// Fig6Row is one row of Figure 6: averages over the queries of one size.
type Fig6Row struct {
	Size          int     // (1) regex size
	IDB           float64 // (2) IDB predicates in the TMNF program
	Rules         float64 // (3) rules
	Phase1Seconds float64 // (4) bottom-up time
	BUTransitions float64 // (5) bottom-up transitions computed lazily
	Phase2Seconds float64 // (6) top-down time
	TDTransitions float64 // (7) top-down transitions
	TotalSeconds  float64 // (8) wall time per query
	Selected      float64 // (9) nodes selected
	MemKB         float64 // (10) peak heap during the run (approximate)
}

// Fig6Opts configures a Figure 6 thread run.
type Fig6Opts struct {
	Sizes   []int // query sizes; the paper uses 5..15
	Queries int   // queries per size; the paper uses 25
	Scale   float64
	// InMemory evaluates over in-memory trees instead of .arb databases
	// on disk (the paper's runs are on disk; in-memory is for quick
	// checks and ablation).
	InMemory bool
	// Workers evaluates each query with that many parallel workers
	// (0 or 1 = sequential): RunDiskParallel on disk, parallel.Run in
	// memory. The selected counts are identical either way.
	Workers int
	// Base reuses an existing database (from Fig5) instead of creating
	// one under Dir.
	Base string
	Dir  string
}

// DefaultSizes is the paper's query size range.
func DefaultSizes() []int {
	sizes := make([]int, 0, 11)
	for s := 5; s <= 15; s++ {
		sizes = append(sizes, s)
	}
	return sizes
}

// Fig6 runs one benchmark thread and returns one row per query size.
func Fig6(th Thread, opts Fig6Opts) ([]Fig6Row, error) {
	if opts.Scale == 0 {
		opts.Scale = DefaultScale
	}
	if len(opts.Sizes) == 0 {
		opts.Sizes = DefaultSizes()
	}
	if opts.Queries == 0 {
		opts.Queries = 25
	}
	base := opts.Base
	if base == "" {
		if opts.Dir == "" {
			return nil, fmt.Errorf("bench: need Base or Dir")
		}
		var err error
		base, err = createThreadDB(th, opts.Dir, opts.Scale)
		if err != nil {
			return nil, err
		}
	}
	db, err := storage.Open(base)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	var rows []Fig6Row
	for _, size := range opts.Sizes {
		row := Fig6Row{Size: size}
		for _, rx := range th.Queries(size, opts.Queries) {
			prog, err := rx.Program(th.RStep())
			if err != nil {
				return nil, fmt.Errorf("bench: %s size %d: %w", th, size, err)
			}
			st := prog.Stats()
			row.IDB += float64(st.NumIDB)
			row.Rules += float64(st.NumRule)

			c, err := core.Compile(prog)
			if err != nil {
				return nil, err
			}
			e := core.NewEngine(c, db.Names)

			runtime.GC()
			var m0 runtime.MemStats
			runtime.ReadMemStats(&m0)

			start := time.Now()
			selected, err := evalQuery(e, db, prog.Queries()[0], opts)
			if err != nil {
				return nil, err
			}
			total := time.Since(start)

			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			heap := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
			if heap < 0 {
				heap = 0
			}

			es := e.Stats()
			row.Phase1Seconds += es.Phase1Time.Seconds()
			row.BUTransitions += float64(es.BUTransitions)
			row.Phase2Seconds += es.Phase2Time.Seconds()
			row.TDTransitions += float64(es.TDTransitions)
			row.TotalSeconds += total.Seconds()
			row.Selected += float64(selected)
			row.MemKB += float64(heap) / 1024
		}
		q := float64(opts.Queries)
		row.IDB /= q
		row.Rules /= q
		row.Phase1Seconds /= q
		row.BUTransitions /= q
		row.Phase2Seconds /= q
		row.TDTransitions /= q
		row.TotalSeconds /= q
		row.Selected /= q
		row.MemKB /= q
		rows = append(rows, row)
	}
	return rows, nil
}

// evalQuery runs one compiled query in the mode opts selects (in memory
// or on disk, sequential or with opts.Workers workers) and returns the
// selected count for query q — identical in every mode.
func evalQuery(e *core.Engine, db *storage.DB, q tmnf.Pred, opts Fig6Opts) (int64, error) {
	if opts.InMemory {
		t, err := db.ReadTree(context.Background())
		if err != nil {
			return 0, err
		}
		if opts.Workers > 1 {
			res, err := parallel.RunContext(context.Background(), e, t, opts.Workers, core.RunOpts{})
			if err != nil {
				return 0, err
			}
			return res.Count(q), nil
		}
		res, err := e.RunContext(context.Background(), t, core.RunOpts{})
		if err != nil {
			return 0, err
		}
		return res.Count(q), nil
	}
	if opts.Workers > 1 {
		res, _, err := e.RunDiskParallelContext(context.Background(), db, opts.Workers, core.DiskOpts{})
		if err != nil {
			return 0, err
		}
		return res.Count(q), nil
	}
	res, _, err := e.RunDiskContext(context.Background(), db, core.DiskOpts{})
	if err != nil {
		return 0, err
	}
	return res.Count(q), nil
}

// createThreadDB builds the database a thread runs against.
func createThreadDB(th Thread, dir string, scale float64) (string, error) {
	base := filepath.Join(dir, th.String())
	var db *storage.DB
	var err error
	switch th {
	case Treebank:
		db, _, err = workload.CreateTreebankDB(base, workload.DefaultTreebank(scale))
	default:
		bits := 25
		for scale < 1 && bits > 10 && float64(int64(1)<<25)*scale < float64(int64(1)<<bits) {
			bits--
		}
		seq := workload.Sequence(4, 1<<bits-1)
		if th == ACGTFlat {
			db, err = workload.CreateFlatDB(base, seq)
		} else {
			db, err = workload.CreateInfixDB(base, seq)
		}
	}
	if err != nil {
		return "", err
	}
	db.Close()
	return base, nil
}

// WriteFig6 renders rows in the layout of Figure 6.
func WriteFig6(w io.Writer, th Thread, rows []Fig6Row) {
	fmt.Fprintf(w, "%s queries.\n", th)
	fmt.Fprintf(w, "%4s %6s %6s | %8s %10s | %8s %10s | %8s %12s %10s\n",
		"size", "|IDB|", "|P|", "BU time", "BU trans", "TD time", "TD trans", "total", "selected", "mem KB")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %6.0f %6.0f | %8.3f %10.1f | %8.3f %10.1f | %8.3f %12.1f %10.1f\n",
			r.Size, r.IDB, r.Rules, r.Phase1Seconds, r.BUTransitions,
			r.Phase2Seconds, r.TDTransitions, r.TotalSeconds, r.Selected, r.MemKB)
	}
}
