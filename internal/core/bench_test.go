package core

import (
	"path/filepath"
	"testing"

	"arb/internal/storage"
	"arb/internal/tmnf"
	"arb/internal/workload"
)

// Ablation benchmarks for the engine's design choices: warm per-node
// cost (two hash lookups), cold warm-up (LTUR + Contract per new
// transition), and the in-memory vs two-scan-disk drivers.

func benchProgram(b *testing.B) *tmnf.Program {
	b.Helper()
	rx := workload.PathRegex{W1: []string{"A", "C"}, W2: []string{"G"}, W3: []string{"T"}}
	prog, err := rx.Program(workload.RFlat)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkRunWarm measures the steady state of the in-memory driver:
// transition tables converged, per-node work is cache lookups only.
func BenchmarkRunWarm(b *testing.B) {
	t := workload.FlatTree(workload.Sequence(4, 1<<16-1))
	prog := benchProgram(b)
	c, err := Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(c, t.Names())
	if _, err := e.Run(t, RunOpts{}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(t.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(t, RunOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunCold includes engine construction and lazy warm-up — the
// m of O(m + n).
func BenchmarkRunCold(b *testing.B) {
	t := workload.FlatTree(workload.Sequence(4, 1<<16-1))
	prog := benchProgram(b)
	c, err := Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(t.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(c, t.Names())
		if _, err := e.Run(t, RunOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunDisk measures the two-linear-scan secondary-storage driver
// (including writing and re-reading the temporary state file).
func BenchmarkRunDisk(b *testing.B) {
	base := filepath.Join(b.TempDir(), "db")
	db, err := workload.CreateFlatDB(base, workload.Sequence(4, 1<<16-1))
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	prog := benchProgram(b)
	c, err := Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(c, db.Names)
	b.SetBytes(db.N * storage.NodeSize * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.RunDisk(db, DiskOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransitionCold isolates one lazy transition computation
// (LTUR + Contract + interning) by resetting the engine each round.
func BenchmarkTransitionCold(b *testing.B) {
	t := workload.FlatTree(workload.Sequence(4, 255))
	prog := benchProgram(b)
	c, err := Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(c, t.Names())
		if _, err := e.Run(t, RunOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}
