package core

import (
	"math/bits"
	"sync"

	"arb/internal/tmnf"
	"arb/internal/tree"
)

// Result is the outcome of evaluating a TMNF program over a tree or
// database: which nodes each query predicate selected, plus (optionally)
// the per-node automaton states for inspection and output generation.
type Result struct {
	prog    *tmnf.Program
	queries []tmnf.Pred
	n       int64
	// sel[qi] is a bitset over preorder node indices.
	sel [][]uint64 // guarded by: mu
	// counts[qi] is the number of selected nodes, maintained eagerly so
	// huge runs can report counts without rescanning bitsets.
	counts []int64 // guarded by: mu
	// mu serialises concurrent MergeWords calls from parallel workers.
	// The single-threaded marking and read paths (mark, MarkMask, Holds,
	// Count, Walk) declare arblint:holds mu instead: they run while one
	// goroutine owns the result — during its single-threaded filling
	// phase or after the parallel workers have been joined.
	mu sync.Mutex

	// Optional per-node states (in-memory runs with KeepStates).
	BUStateOf []StateID
	TDStateOf []StateID

	// StateFile is the path of the retained phase-1 state file after a
	// successful disk run with KeepStateFile. Each run keeps its own
	// uniquely named file, so concurrent KeepStateFile runs over one
	// database never clobber each other; the caller owns removal.
	StateFile string
}

// NewResult returns an empty result for evaluating prog over n nodes,
// ready for marking. Exposed so sibling evaluators (internal/parallel)
// can produce the same unified result type as the engine itself.
//
// arblint:holds mu — the fresh result is exclusively owned.
func NewResult(prog *tmnf.Program, n int64) *Result {
	qs := prog.Queries()
	r := &Result{
		prog:    prog,
		queries: qs,
		n:       n,
		sel:     make([][]uint64, len(qs)),
		counts:  make([]int64, len(qs)),
	}
	words := (n + 63) / 64
	for i := range r.sel {
		r.sel[i] = make([]uint64, words)
	}
	return r
}

// mark records that query qi selects node v.
//
// arblint:holds mu — marking is single-threaded.
func (r *Result) mark(qi int, v int64) {
	w, b := v/64, uint(v%64)
	if r.sel[qi][w]&(1<<b) == 0 {
		r.sel[qi][w] |= 1 << b
		r.counts[qi]++
	}
}

// MarkMask records all queries in the bitmask (bit i = query i) as
// selecting node v. Not safe for concurrent use; parallel markers should
// accumulate private bitsets and MergeWords them.
//
// arblint:holds mu — marking is single-threaded.
func (r *Result) MarkMask(mask uint64, v int64) {
	for qi := 0; mask != 0; qi++ {
		if mask&1 != 0 {
			r.mark(qi, v)
		}
		mask >>= 1
	}
}

// MergeWords ORs a bitset fragment for query qi — words starting at word
// index w0 — into the result under the result's lock, keeping counts in
// step. Parallel workers accumulate marks into private per-chunk bitsets
// and merge them here, so chunk boundaries sharing a word never race.
func (r *Result) MergeWords(qi int, w0 int64, words []uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	dst := r.sel[qi][w0 : w0+int64(len(words))]
	for i, w := range words {
		if w == 0 {
			continue
		}
		old := dst[i]
		if nw := old | w; nw != old {
			dst[i] = nw
			r.counts[qi] += int64(bits.OnesCount64(nw) - bits.OnesCount64(old))
		}
	}
}

// Queries returns the query predicates the result covers.
func (r *Result) Queries() []tmnf.Pred { return r.queries }

// Len returns the number of nodes of the evaluated tree.
func (r *Result) Len() int64 { return r.n }

// queryIndex locates q among the result's queries.
func (r *Result) queryIndex(q tmnf.Pred) int {
	for i, e := range r.queries {
		if e == q {
			return i
		}
	}
	return -1
}

// Holds reports whether query predicate q selected node v.
//
// arblint:holds mu — reads run after evaluation has completed.
func (r *Result) Holds(q tmnf.Pred, v tree.NodeID) bool {
	qi := r.queryIndex(q)
	if qi < 0 {
		return false
	}
	return r.sel[qi][int64(v)/64]&(1<<(uint(v)%64)) != 0
}

// Count returns the number of nodes selected by q.
//
// arblint:holds mu — reads run after evaluation has completed.
func (r *Result) Count(q tmnf.Pred) int64 {
	qi := r.queryIndex(q)
	if qi < 0 {
		return 0
	}
	return r.counts[qi]
}

// Selected returns the nodes selected by q in preorder. For very large
// results prefer Walk.
func (r *Result) Selected(q tmnf.Pred) []tree.NodeID {
	var out []tree.NodeID
	r.Walk(q, func(v tree.NodeID) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Walk calls f on each node selected by q in preorder until f returns
// false.
//
// arblint:holds mu — reads run after evaluation has completed.
func (r *Result) Walk(q tmnf.Pred, f func(tree.NodeID) bool) {
	qi := r.queryIndex(q)
	if qi < 0 {
		return
	}
	for w, word := range r.sel[qi] {
		for word != 0 {
			b := word & -word
			v := int64(w)*64 + int64(bits.TrailingZeros64(word))
			if v >= r.n || !f(tree.NodeID(v)) {
				return
			}
			word ^= b
		}
	}
}
