package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"arb/internal/naive"
	"arb/internal/storage"
	"arb/internal/testutil"
	"arb/internal/tmnf"
	"arb/internal/tree"
	"arb/internal/workload"
)

// lowerParallelKnobs makes RunDiskParallel take the real parallel path on
// tiny trees so the property tests exercise the chunked machinery.
func lowerParallelKnobs(t *testing.T) {
	t.Helper()
	minNodes, minTask := parMinNodes, parMinTask
	parMinNodes, parMinTask = 1, 1
	t.Cleanup(func() { parMinNodes, parMinTask = minNodes, minTask })
}

// sameResults asserts two results select bit-identical node sets for
// every query of prog.
func sameResults(t *testing.T, prog *tmnf.Program, n int, got, want *Result, label string) {
	t.Helper()
	for _, q := range prog.Queries() {
		if got.Count(q) != want.Count(q) {
			t.Fatalf("%s: %s selected %d nodes, want %d\nprogram:\n%s",
				label, prog.PredName(q), got.Count(q), want.Count(q), prog)
		}
		for v := 0; v < n; v++ {
			id := tree.NodeID(v)
			if g, w := got.Holds(q, id), want.Holds(q, id); g != w {
				t.Fatalf("%s: %s(%d)=%v, want %v\nprogram:\n%s", label, prog.PredName(q), v, g, w, prog)
			}
		}
	}
}

func TestRunDiskParallelMatchesSequentialAndNaive(t *testing.T) {
	lowerParallelKnobs(t)
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 30; iter++ {
		tr := testutil.RandomTree(rng, 300)
		prog := testutil.RandomProgramParsed(rng, 4, 8)
		base := filepath.Join(t.TempDir(), "db")
		db, err := storage.CreateFromTree(base, tr)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(prog)
		if err != nil {
			t.Fatal(err)
		}

		seq, _, err := NewEngine(c, db.Names).RunDisk(db, DiskOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 7} {
			par, ds, err := NewEngine(c, db.Names).RunDiskParallel(db, workers, DiskOpts{})
			if err != nil {
				t.Fatalf("iter %d workers %d: %v", iter, workers, err)
			}
			if ds.Phase1.Nodes != db.N || ds.Phase2.Nodes != db.N {
				t.Fatalf("iter %d workers %d: scans visited %d/%d nodes, want %d each",
					iter, workers, ds.Phase1.Nodes, ds.Phase2.Nodes, db.N)
			}
			sameResults(t, prog, tr.Len(), par, seq, "parallel vs sequential")
		}

		want := naive.Evaluate(tr, prog)
		par, _, err := NewEngine(c, db.Names).RunDiskParallel(db, 4, DiskOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range prog.Queries() {
			for v := 0; v < tr.Len(); v++ {
				id := tree.NodeID(v)
				if g, w := par.Holds(q, id), want.Holds(q, id); g != w {
					t.Fatalf("iter %d: parallel %s(%d)=%v, naive %v\nprogram:\n%s\ntree:\n%s",
						iter, prog.PredName(q), v, g, w, prog, tr)
				}
			}
		}
		db.Close()
	}
}

func TestRunDiskParallelRightDeepChain(t *testing.T) {
	// Degenerate sibling chain: the frontier collapses toward tiny
	// first-child leaves and one big tail; results must still match.
	lowerParallelKnobs(t)
	tr := tree.New(nil)
	root := tr.AddNode(tr.Names().MustIntern("r"))
	prev := tree.None
	for i := 0; i < 2000; i++ {
		n := tr.AddNode(tr.Names().MustIntern([]string{"a", "b"}[i%2]))
		if prev == tree.None {
			tr.SetFirst(root, n)
		} else {
			tr.SetSecond(prev, n)
		}
		prev = n
	}
	prog := tmnf.MustParse(`QUERY :- Label[a], LastSibling; OTHER :- Label[b]; QUERY2 :- OTHER.NextSibling;`)
	if err := prog.SetQueries("QUERY", "QUERY2"); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "db")
	db, err := storage.CreateFromTree(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := NewEngine(c, db.Names).RunDisk(db, DiskOpts{})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := NewEngine(c, db.Names).RunDiskParallel(db, 4, DiskOpts{})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, prog, tr.Len(), par, seq, "chain")
}

func TestRunDiskParallelLargeBalancedDefaults(t *testing.T) {
	// A balanced infix tree big enough to clear the default thresholds:
	// the headline case where chunks divide evenly.
	if testing.Short() {
		t.Skip("builds a 128k-node database")
	}
	tr := workload.InfixTree(workload.Sequence(4, 1<<17-1))
	base := filepath.Join(t.TempDir(), "infix")
	db, err := storage.CreateFromTree(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rx := workload.PathRegex{W1: []string{"A", "C"}, W2: []string{"G"}, W3: []string{"T", "A"}}
	prog, err := rx.Program(workload.RInfix)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := NewEngine(c, db.Names).RunDisk(db, DiskOpts{})
	if err != nil {
		t.Fatal(err)
	}
	par, ds, err := NewEngine(c, db.Names).RunDiskParallel(db, 4, DiskOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Phase1.Nodes != db.N || ds.Phase2.Nodes != db.N {
		t.Fatalf("scans visited %d/%d nodes, want %d each", ds.Phase1.Nodes, ds.Phase2.Nodes, db.N)
	}
	sameResults(t, prog, tr.Len(), par, seq, "infix")
}

func TestRunDiskParallelAuxFiles(t *testing.T) {
	// The aux sidecar pipeline (XPath negation's disk path) must produce
	// byte-identical aux output under parallel evaluation.
	lowerParallelKnobs(t)
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 10; iter++ {
		tr := testutil.RandomTree(rng, 200)
		dir := t.TempDir()
		base := filepath.Join(dir, "db")
		db, err := storage.CreateFromTree(base, tr)
		if err != nil {
			t.Fatal(err)
		}
		// Random input masks over 2 aux bits.
		auxIn := filepath.Join(dir, "in.aux")
		masks := make([]byte, 2*tr.Len())
		for v := 0; v < tr.Len(); v++ {
			binary.BigEndian.PutUint16(masks[2*v:], uint16(rng.Intn(4)))
		}
		if err := os.WriteFile(auxIn, masks, 0o644); err != nil {
			t.Fatal(err)
		}
		prog := tmnf.MustParse(`QUERY :- Aux[0]; P :- Aux[1]; QUERY2 :- P.FirstChild;`)
		if err := prog.SetQueries("QUERY", "QUERY2"); err != nil {
			t.Fatal(err)
		}
		c, err := Compile(prog)
		if err != nil {
			t.Fatal(err)
		}
		opts := func(out string) DiskOpts {
			return DiskOpts{AuxIn: auxIn, AuxOut: out, AuxOutBit: 3, AuxOutQuery: 1}
		}
		seq, _, err := NewEngine(c, db.Names).RunDisk(db, opts(filepath.Join(dir, "seq.aux")))
		if err != nil {
			t.Fatal(err)
		}
		par, _, err := NewEngine(c, db.Names).RunDiskParallel(db, 3, opts(filepath.Join(dir, "par.aux")))
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, prog, tr.Len(), par, seq, "aux")
		seqOut, err := os.ReadFile(filepath.Join(dir, "seq.aux"))
		if err != nil {
			t.Fatal(err)
		}
		parOut, err := os.ReadFile(filepath.Join(dir, "par.aux"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seqOut, parOut) {
			t.Fatalf("iter %d: parallel aux output differs from sequential", iter)
		}
		db.Close()
	}
}

func TestRunDiskConcurrentRunsShareDatabase(t *testing.T) {
	// Two concurrent default-option runs over one database must not
	// clobber each other's state files (the old default was a shared
	// base.sta).
	lowerParallelKnobs(t)
	rng := rand.New(rand.NewSource(79))
	tr := testutil.RandomTree(rng, 400)
	prog := testutil.RandomProgramParsed(rng, 4, 8)
	base := filepath.Join(t.TempDir(), "db")
	db, err := storage.CreateFromTree(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := NewEngine(c, db.Names).RunDisk(db, DiskOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	results := make([]*Result, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := NewEngine(c, db.Names)
			if i%2 == 0 {
				results[i], _, errs[i] = e.RunDisk(db, DiskOpts{})
			} else {
				results[i], _, errs[i] = e.RunDiskParallel(db, 3, DiskOpts{})
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		sameResults(t, prog, tr.Len(), results[i], want, "concurrent")
	}
	// No stray state files left next to the database.
	entries, err := os.ReadDir(filepath.Dir(base))
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".sta") {
			t.Fatalf("stray state file %s left behind", ent.Name())
		}
	}
}

func TestRunDiskParallelRecoversFromForeignIndex(t *testing.T) {
	// Swap the .arb underneath a same-node-count index (so the N check
	// cannot catch it): the run must detect the extent mismatch, rebuild
	// the index, and still return results identical to RunDisk.
	lowerParallelKnobs(t)
	names := tree.NewNames()
	balanced := workload.InfixTree(workload.Sequence(5, 1<<10-1))
	chain := tree.New(names)
	prev := tree.None
	for i := 0; i < balanced.Len(); i++ {
		n := chain.AddNode(chain.Names().MustIntern([]string{"l", "i", "p"}[i%3]))
		if prev == tree.None {
			prev = n
		} else {
			chain.SetSecond(prev, n)
			prev = n
		}
	}
	dir := t.TempDir()
	if _, err := storage.CreateFromTree(filepath.Join(dir, "bal"), balanced); err != nil {
		t.Fatal(err)
	}
	db, err := storage.CreateFromTree(filepath.Join(dir, "db"), chain)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	// The chain database keeps its .lab and node count, but its .arb and
	// .idx now disagree: the .arb is the balanced tree's.
	bal, err := os.ReadFile(filepath.Join(dir, "bal.arb"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "db.arb"), bal, 0o644); err != nil {
		t.Fatal(err)
	}
	balLab, err := os.ReadFile(filepath.Join(dir, "bal.lab"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "db.lab"), balLab, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err = storage.Open(filepath.Join(dir, "db"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	prog := tmnf.MustParse(`QUERY :- Label[A];`)
	c, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := NewEngine(c, db.Names).RunDisk(db, DiskOpts{})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := NewEngine(c, db.Names).RunDiskParallel(db, 4, DiskOpts{})
	if err != nil {
		t.Fatalf("parallel run did not recover from the stale index: %v", err)
	}
	sameResults(t, prog, balanced.Len(), par, seq, "foreign index")
	// The recovery must have rebuilt and re-persisted the sidecar: the
	// chain index had FirstSize 0 at the root, the balanced tree does not.
	ix, err := storage.ReadIndexFile(filepath.Join(dir, "db.idx"))
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := ix.Lookup(0); !ok || e.FirstSize == 0 {
		t.Fatalf("index was not rebuilt from the swapped data: root entry %+v, ok=%v", e, ok)
	}
}

func TestRunDiskParallelFallsBackForMarkedOutput(t *testing.T) {
	// MarkTo is order-dependent streaming output: the parallel entry
	// point must still produce it (via the sequential path).
	lowerParallelKnobs(t)
	rng := rand.New(rand.NewSource(83))
	tr := testutil.RandomTree(rng, 80)
	prog := testutil.RandomProgramParsed(rng, 3, 6)
	base := filepath.Join(t.TempDir(), "db")
	db, err := storage.CreateFromTree(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	var seqXML, parXML bytes.Buffer
	if _, _, err := NewEngine(c, db.Names).RunDisk(db, DiskOpts{MarkTo: &seqXML}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewEngine(c, db.Names).RunDiskParallel(db, 4, DiskOpts{MarkTo: &parXML}); err != nil {
		t.Fatal(err)
	}
	if seqXML.String() != parXML.String() {
		t.Fatalf("marked output differs:\nseq: %s\npar: %s", seqXML.String(), parXML.String())
	}
}
