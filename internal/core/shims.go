//arblint:shims
// This file gathers the deprecated context-less entry points kept for
// callers of earlier releases. Nothing in this repository may call them
// (enforced by the noshims analyzer); the context roots they mint are
// exactly what the ctxflow analyzer forbids elsewhere.

package core

import (
	"context"

	"arb/internal/storage"
	"arb/internal/tree"
)

// Run evaluates the engine's program over an in-memory tree.
//
// Deprecated: use RunContext (or the arb package's Session/PreparedQuery
// API) so long evaluations can be cancelled.
func (e *Engine) Run(t *tree.Tree, opts RunOpts) (*Result, error) {
	return e.RunContext(context.Background(), t, opts)
}

// RunDisk evaluates the engine's program over a .arb database.
//
// Deprecated: use RunDiskContext (or the arb package's
// Session/PreparedQuery API) so long scans can be cancelled.
func (e *Engine) RunDisk(db *storage.DB, opts DiskOpts) (*Result, *DiskStats, error) {
	return e.RunDiskContext(context.Background(), db, opts)
}

// RunDiskParallel evaluates the engine's program over a .arb database
// with parallel workers.
//
// Deprecated: use RunDiskParallelContext (or the arb package's
// Session/PreparedQuery API) so long scans can be cancelled.
func (e *Engine) RunDiskParallel(db *storage.DB, workers int, opts DiskOpts) (*Result, *DiskStats, error) {
	return e.RunDiskParallelContext(context.Background(), db, workers, opts)
}
