package core

import (
	"testing"

	"arb/internal/storage"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// TestPruneAnalysisAdmission checks which programs the static analysis
// admits for pruning: label-selective queries (including caterpillar
// paths) converge to a single dead-subtree state with no reachable
// selection, while label-independent or structure-sensitive queries must
// be refused — their answers genuinely depend on subtree shape.
func TestPruneAnalysisAdmission(t *testing.T) {
	names := tree.NewNames()
	for _, n := range []string{"hit", "item", "name", "flag"} {
		if _, err := names.Intern(n); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name string
		src  string
		ok   bool
	}{
		{"label", `QUERY :- Label[hit];`, true},
		{"path", `QUERY :- V.Label[item].FirstChild.NextSibling*.Label[name];`, true},
		{"neg-label", `QUERY :- Label[hit], -Label[flag];`, true},
		{"all-leaves", `QUERY :- Leaf, -Text;`, false},
		{"structural", `QUERY :- V.Label[hit].SecondChild.HasFirstChild;`, false},
		// Selecting the root alone is prunable: extents never contain
		// node 0, so no dead subtree can hold the selection.
		{"root", `QUERY :- Root;`, true},
	}
	for _, tc := range cases {
		p := tmnf.MustParse(tc.src)
		c, err := Compile(p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		e := NewEngine(c, names)
		a := e.pruneAnalysis()
		if a.ok != tc.ok {
			t.Errorf("%s: analysis ok=%v, want %v", tc.name, a.ok, tc.ok)
		}
		if a2 := e.pruneAnalysis(); a2 != a {
			t.Errorf("%s: analysis not cached", tc.name)
		}
	}
}

// TestPruneAnalysisRootSafety: the Root unary must block pruning — the
// analysis models extents with IsRoot false, and while the planner never
// prunes the extent at node 0, a Root-dependent program can still select
// everywhere (QUERY :- -Root selects every non-root node, including all
// of any dead subtree).
func TestPruneAnalysisNegRoot(t *testing.T) {
	p := tmnf.MustParse(`QUERY :- -Root;`)
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(c, tree.NewNames())
	if a := e.pruneAnalysis(); a.ok {
		t.Fatal("analysis admitted a query that selects every non-root node")
	}
}

// TestPruneSplit checks the distribution of plan extents over a task
// frontier: swallowing, nesting, and leader-level holes.
func TestPruneSplit(t *testing.T) {
	ext := func(root, size int64) storage.Extent { return storage.Extent{Root: root, Size: size} }
	tasks := []storage.Extent{ext(10, 20), ext(40, 10), ext(60, 30), ext(95, 5)}
	plan := []storage.Extent{
		ext(2, 5),   // before every task: leader hole
		ext(15, 5),  // strictly inside task [10,30)
		ext(35, 20), // swallows task [40,50)
		ext(61, 9),  // inside task [60,90)
		ext(80, 10), // inside task [60,90)
		ext(95, 5),  // equals task [95,100): swallowed
	}
	kept, inner, outer := SplitPrune(tasks, plan)
	if len(kept) != 2 || kept[0] != ext(10, 20) || kept[1] != ext(60, 30) {
		t.Fatalf("kept = %v", kept)
	}
	if len(inner) != 2 || len(inner[0]) != 1 || inner[0][0] != ext(15, 5) ||
		len(inner[1]) != 2 || inner[1][0] != ext(61, 9) || inner[1][1] != ext(80, 10) {
		t.Fatalf("inner = %v", inner)
	}
	if len(outer) != 3 || outer[0] != ext(2, 5) || outer[1] != ext(35, 20) || outer[2] != ext(95, 5) {
		t.Fatalf("outer = %v", outer)
	}

	exts, taskOf := mergeSkipLists(kept, outer)
	wantExts := []storage.Extent{ext(2, 5), ext(10, 20), ext(35, 20), ext(60, 30), ext(95, 5)}
	wantTask := []int{-1, 0, -1, 1, -1}
	if len(exts) != len(wantExts) {
		t.Fatalf("merged = %v", exts)
	}
	for i := range exts {
		if exts[i] != wantExts[i] || taskOf[i] != wantTask[i] {
			t.Fatalf("merged[%d] = %v/%d, want %v/%d", i, exts[i], taskOf[i], wantExts[i], wantTask[i])
		}
	}

	// No plan: everything stays a task.
	kept2, inner2, outer2 := SplitPrune(tasks, nil)
	if len(kept2) != len(tasks) || len(outer2) != 0 {
		t.Fatalf("nil plan changed the frontier: %v / %v", kept2, outer2)
	}
	for i := range inner2 {
		if len(inner2[i]) != 0 {
			t.Fatalf("nil plan produced inner extents: %v", inner2)
		}
	}
}

// TestPrunePlanSelectsMaximalDisjointExtents checks the planner picks
// maximal label-disjoint index extents, never the root, nothing below
// the size floor, and respects the engines' union live set.
func TestPrunePlanSelectsMaximalDisjointExtents(t *testing.T) {
	names := tree.NewNames()
	for _, n := range []string{"hit", "other"} {
		if _, err := names.Intern(n); err != nil {
			t.Fatal(err)
		}
	}
	hit, _ := names.Lookup("hit")
	other, _ := names.Lookup("other")

	mk := func(src string) *Engine {
		c, err := Compile(tmnf.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		return NewEngine(c, names)
	}
	eHit := mk(`QUERY :- Label[hit];`)
	eOther := mk(`QUERY :- Label[other];`)

	sig := func(labels ...tree.Label) (s storage.LabelSig) {
		for _, l := range labels {
			s.Add(uint16(l))
		}
		return s
	}
	defer func(n, x int64) { PruneMinNodes, PruneMinExtent = n, x }(PruneMinNodes, PruneMinExtent)
	PruneMinNodes, PruneMinExtent = 100, 10

	// Synthetic laminar index over 1000 nodes: a dead parent with a dead
	// child (only the parent should be picked), a live extent, a
	// too-small dead extent, and a dead extent containing `other`.
	entries := []storage.IndexEntry{
		{V: 0, Size: 1000, FirstSize: 499, Labels: sig(hit, other, 400)},
		{V: 1, Size: 400, FirstSize: 200, Labels: sig(400)},        // label 400 untested: dead for both queries
		{V: 2, Size: 200, FirstSize: 0, Labels: sig(400)},          // nested in [1,401): must not double-count
		{V: 500, Size: 100, FirstSize: 0, Labels: sig(hit)},        // live for eHit
		{V: 700, Size: 5, FirstSize: 0, Labels: sig(401)},          // below the size floor
		{V: 800, Size: 150, FirstSize: 0, Labels: sig(other, 402)}, // live for eOther only
	}
	ix := storage.NewIndexForTest(1000, entries)

	plan := PlanPrune([]*Engine{eHit}, ix, 1000)
	if plan == nil {
		t.Fatal("no plan for the hit query")
	}
	want := []storage.Extent{{Root: 1, Size: 400}, {Root: 800, Size: 150}}
	if len(plan.Extents) != len(want) || plan.Extents[0] != want[0] || plan.Extents[1] != want[1] {
		t.Fatalf("hit plan extents = %v, want %v", plan.Extents, want)
	}
	if plan.Nodes != 550 {
		t.Fatalf("hit plan nodes = %d, want 550", plan.Nodes)
	}

	// Batched with the other query, the union live set shrinks the plan.
	plan2 := PlanPrune([]*Engine{eHit, eOther}, ix, 1000)
	if plan2 == nil || len(plan2.Extents) != 1 || plan2.Extents[0] != want[0] {
		t.Fatalf("joint plan = %+v, want just %v", plan2, want[0])
	}

	// A foreign index (wrong node count) must never produce a plan.
	if p := PlanPrune([]*Engine{eHit}, ix, 999); p != nil {
		t.Fatal("planner accepted a foreign index")
	}
}
