package core

import (
	"math/rand"
	"testing"

	"arb/internal/naive"
	"arb/internal/testutil"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// The paper's Section 7 "multiple query evaluation": TMNF programs can
// define several node-selecting queries at once, answered together by
// the same two passes.

func TestMultipleQueriesOneRun(t *testing.T) {
	prog := tmnf.MustParse(`
		Leaves  :- Leaf;
		As      :- Label[a];
		ALeaves :- Leaves, As;
	`)
	if err := prog.SetQueries("Leaves", "As", "ALeaves"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(81))
	for iter := 0; iter < 15; iter++ {
		tr := testutil.RandomTree(rng, 80)
		c, err := Compile(prog)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(c, tr.Names())
		res, err := e.Run(tr, RunOpts{})
		if err != nil {
			t.Fatal(err)
		}
		want := naive.Evaluate(tr, prog)
		for _, q := range prog.Queries() {
			for v := 0; v < tr.Len(); v++ {
				if res.Holds(q, tree.NodeID(v)) != want.Holds(q, tree.NodeID(v)) {
					t.Fatalf("iter %d: %s(%d)", iter, prog.PredName(q), v)
				}
			}
		}
		// The conjunction query must be the intersection of the others.
		leaves, _ := prog.Pred("Leaves")
		as, _ := prog.Pred("As")
		aleaves, _ := prog.Pred("ALeaves")
		for v := 0; v < tr.Len(); v++ {
			id := tree.NodeID(v)
			if res.Holds(aleaves, id) != (res.Holds(leaves, id) && res.Holds(as, id)) {
				t.Fatalf("iter %d: ALeaves(%d) inconsistent", iter, v)
			}
		}
	}
}

// TestSixtyFourQueries exercises the query bitmask width (up to 64 query
// predicates per program).
func TestSixtyFourQueries(t *testing.T) {
	prog := tmnf.NewProgram()
	names := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		name := "Q" + string(rune('A'+i/26)) + string(rune('a'+i%26))
		p := prog.Intern(name)
		u := prog.InternUnary(tmnf.Unary{Kind: tmnf.UHasFirstChild, Neg: i%2 == 0})
		prog.AddRule(tmnf.Rule{Kind: tmnf.RuleLocal, Head: p, Body: []tmnf.LocalAtom{tmnf.UnaryAtom(u)}})
		names = append(names, name)
	}
	if err := prog.SetQueries(names...); err != nil {
		t.Fatal(err)
	}
	tr := tree.New(nil)
	root := tr.AddNode(tr.Names().MustIntern("r"))
	tr.SetFirst(root, tr.AddNode(tr.Names().MustIntern("x")))

	c, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(c, tr.Names())
	res, err := e.Run(tr, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range prog.Queries() {
		// Even i: Leaf (no first child) — true at the leaf only.
		wantRoot, wantLeaf := i%2 == 1, i%2 == 0
		if res.Holds(q, 0) != wantRoot || res.Holds(q, 1) != wantLeaf {
			t.Fatalf("query %d: root=%v leaf=%v", i, res.Holds(q, 0), res.Holds(q, 1))
		}
	}
}

// TestAuxPredicatesDifferential checks the Section 7 auxiliary-labeling
// mechanism against a rewritten program where the auxiliary predicate is
// inlined as a label test.
func TestAuxPredicatesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for iter := 0; iter < 20; iter++ {
		tr := testutil.RandomTree(rng, 60)

		// Aux[0] marks nodes labeled a; the program selects nodes whose
		// first child carries Aux[0].
		withAux := tmnf.MustParse(`
			M :- Aux[0];
			QUERY :- M.invFirstChild;
		`)
		inlined := tmnf.MustParse(`
			M :- Label[a];
			QUERY :- M.invFirstChild;
		`)
		a, ok := tr.Names().Lookup("a")
		if !ok {
			continue
		}
		aux := func(v tree.NodeID) uint16 {
			if tr.Label(v) == a {
				return 1
			}
			return 0
		}

		run := func(p *tmnf.Program, auxFn func(tree.NodeID) uint16) *Result {
			c, err := Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			e := NewEngine(c, tr.Names())
			res, err := e.Run(tr, RunOpts{Aux: auxFn})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		got := run(withAux, aux)
		want := run(inlined, nil)
		for v := 0; v < tr.Len(); v++ {
			if got.Holds(withAux.Queries()[0], tree.NodeID(v)) != want.Holds(inlined.Queries()[0], tree.NodeID(v)) {
				t.Fatalf("iter %d node %d: aux and inlined runs disagree", iter, v)
			}
		}
	}
}

// TestResidualStatesBeatPowerset validates the paper's central empirical
// claim (Section 4.1): the number of distinct residual programs the
// deterministic automaton actually needs is far below the powerset bound
// 2^(2^IDB) — and in practice even far below 2^IDB.
func TestResidualStatesBeatPowerset(t *testing.T) {
	rx := workloadPathRegex()
	prog := tmnf.MustParse(rx)
	c, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(91))
	// Run over many random trees sharing a name table to converge the
	// state space.
	names := testutil.RandomTree(rng, 10).Names()
	e := NewEngine(c, names)
	for i := 0; i < 30; i++ {
		tr := testutil.RandomTreeWithNames(rng, names, 300)
		if _, err := e.Run(tr, RunOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	states := e.Stats().BUStates
	preds := prog.NumPreds()
	if states == 0 {
		t.Fatal("no states interned")
	}
	if states >= 1<<preds {
		t.Fatalf("%d residual-program states for %d predicates — no better than the 2^IDB powerset", states, preds)
	}
	t.Logf("%d predicates: %d residual-program states (vs 2^%d = %d assignments, 2^2^%d reachable-set bound)",
		preds, states, preds, 1<<preds, preds)
}

// workloadPathRegex is a size-7 top-down path query like the Figure 6
// Treebank thread's (inlined to avoid an import cycle with workload).
func workloadPathRegex() string {
	return `QUERY :- V.Label[a].FirstChild.NextSibling*.Label[b].` +
		`(FirstChild.NextSibling*.Label[a].FirstChild.NextSibling*.Label[c])*.` +
		`FirstChild.NextSibling*.Label[b];`
}
