package core

import (
	"sync"

	"arb/internal/edb"
)

// SharedEngine adapts an Engine for concurrent use by the parallel
// evaluator (internal/parallel): lookups of already-computed states and
// transitions take a read lock; lazily computing a new transition takes
// the write lock. Tree automata admit parallel evaluation naturally —
// runs on disjoint subtrees are independent (Section 6.2) — and because
// transition tables converge quickly, the write lock is rarely contended
// after warm-up.
type SharedEngine struct {
	mu sync.RWMutex
	e  *Engine
}

// Share wraps the engine for concurrent use. The underlying engine must
// not be used directly while shared.
func (e *Engine) Share() *SharedEngine { return &SharedEngine{e: e} }

// Engine returns the wrapped engine for single-threaded use (statistics,
// state inspection) once concurrent work has finished.
func (s *SharedEngine) Engine() *Engine { return s.e }

// ReachableStates is the concurrent δA: it interns the node signature and
// returns the bottom-up state for the given child states.
func (s *SharedEngine) ReachableStates(left, right StateID, sig edb.NodeSig) StateID {
	s.mu.RLock()
	sigID, okSig := s.e.sigIndex[sig]
	if okSig {
		if id, ok := s.e.buTrans[buKey{left, right, sigID}]; ok {
			s.mu.RUnlock()
			return id
		}
	}
	s.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.ReachableStates(left, right, s.e.SigID(sig))
}

// RootTrueSet is the concurrent step 2 of Algorithm 4.6.
func (s *SharedEngine) RootTrueSet(rootState StateID) StateID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.RootTrueSet(rootState)
}

// TruePreds is the concurrent δB.
func (s *SharedEngine) TruePreds(parent, resid StateID, k int) StateID {
	s.mu.RLock()
	if id, ok := s.e.tdTrans[tdKey{parent, resid, uint8(k)}]; ok {
		s.mu.RUnlock()
		return id
	}
	s.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.TruePreds(parent, resid, k)
}

// QueryMask returns the query-predicate bitmask of a top-down state (bit
// i set iff query i's predicate is in the state).
func (s *SharedEngine) QueryMask(td StateID) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.e.queryMask(td)
}
