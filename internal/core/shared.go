package core

import (
	"arb/internal/edb"
)

// SharedEngine adapts an Engine for concurrent use: lookups of
// already-computed states and transitions take a read lock; lazily
// computing a new transition takes the write lock. Tree automata admit
// parallel evaluation naturally — runs on disjoint subtrees are
// independent (Section 6.2) — and because transition tables converge
// quickly, the write lock is rarely contended after warm-up.
//
// The locks are the engine's own, so any number of SharedEngine views of
// one engine — workers of one run, or entirely separate overlapping runs
// (a reentrant PreparedQuery, a coalesced server batch sharing a scalar
// handle's automata) — synchronise with each other.
type SharedEngine struct {
	e  *Engine
	rs *RunStats // per-run attribution sink; nil discards
}

// Share returns a concurrent view of the engine. Views are cheap and any
// number may exist at once; they all serialise through the engine's lock.
func (e *Engine) Share() *SharedEngine { return &SharedEngine{e: e} }

// ShareTo is Share with per-run attribution: every transition or state
// the view's slow paths lazily compute is credited to rs as well as to
// the engine's cumulative stats. The delta is taken inside the write
// lock around the raw call, so it contains exactly this call's work —
// overlapping runs on one engine each see precisely what their own
// cache misses cost, where deltas of the cumulative Stats would
// misattribute concurrent work.
func (e *Engine) ShareTo(rs *RunStats) *SharedEngine { return &SharedEngine{e: e, rs: rs} }

// Engine returns the wrapped engine for single-threaded use (statistics,
// state inspection) once concurrent work has finished.
func (s *SharedEngine) Engine() *Engine { return s.e }

// ReachableStates is the concurrent δA: it interns the node signature and
// returns the bottom-up state for the given child states.
func (s *SharedEngine) ReachableStates(left, right StateID, sig edb.NodeSig) StateID {
	s.e.mu.RLock()
	sigID, okSig := s.e.sigIndex[sig]
	if okSig {
		if id, ok := s.e.buTrans[buKey{left, right, sigID}]; ok {
			s.e.mu.RUnlock()
			return id
		}
	}
	s.e.mu.RUnlock()

	s.e.mu.Lock()
	before := s.e.statsSnapshot()
	id := s.e.ReachableStates(left, right, s.e.SigID(sig))
	delta := s.e.statsSnapshot().Sub(before)
	s.e.mu.Unlock()
	s.rs.Add(delta)
	return id
}

// RootTrueSet is the concurrent step 2 of Algorithm 4.6.
func (s *SharedEngine) RootTrueSet(rootState StateID) StateID {
	s.e.mu.Lock()
	before := s.e.statsSnapshot()
	id := s.e.RootTrueSet(rootState)
	delta := s.e.statsSnapshot().Sub(before)
	s.e.mu.Unlock()
	s.rs.Add(delta)
	return id
}

// TruePreds is the concurrent δB.
func (s *SharedEngine) TruePreds(parent, resid StateID, k int) StateID {
	s.e.mu.RLock()
	if id, ok := s.e.tdTrans[tdKey{parent, resid, uint8(k)}]; ok {
		s.e.mu.RUnlock()
		return id
	}
	s.e.mu.RUnlock()

	s.e.mu.Lock()
	before := s.e.statsSnapshot()
	id := s.e.TruePreds(parent, resid, k)
	delta := s.e.statsSnapshot().Sub(before)
	s.e.mu.Unlock()
	s.rs.Add(delta)
	return id
}

// QueryMask returns the query-predicate bitmask of a top-down state (bit
// i set iff query i's predicate is in the state).
func (s *SharedEngine) QueryMask(td StateID) uint64 {
	s.e.mu.RLock()
	defer s.e.mu.RUnlock()
	return s.e.queryMask(td)
}

// TxCache is a per-worker, lock-free cache of automaton transitions in
// front of a SharedEngine, shared by the in-memory parallel evaluator
// (internal/parallel) and the parallel disk evaluator (RunDiskParallel).
// States are engine-global ids, so caching them locally is sound; the
// shared tables are only consulted on local misses, which makes the warm
// steady state take no locks at all.
type TxCache struct {
	s     *SharedEngine
	bu    map[txBuKey]StateID
	td    map[tdKey]StateID
	masks map[StateID]uint64
}

type txBuKey struct {
	left, right StateID
	sig         edb.NodeSig
}

// NewCache returns a fresh private transition cache for one worker.
func (s *SharedEngine) NewCache() *TxCache {
	return &TxCache{
		s:     s,
		bu:    map[txBuKey]StateID{},
		td:    map[tdKey]StateID{},
		masks: map[StateID]uint64{},
	}
}

// ReachableStates is the cached concurrent δA.
func (c *TxCache) ReachableStates(left, right StateID, sig edb.NodeSig) StateID {
	key := txBuKey{left, right, sig}
	if id, ok := c.bu[key]; ok {
		return id
	}
	id := c.s.ReachableStates(left, right, sig)
	c.bu[key] = id
	return id
}

// RootTrueSet is the concurrent step 2 of Algorithm 4.6 (uncached: it
// runs once per evaluation).
func (c *TxCache) RootTrueSet(rootState StateID) StateID { return c.s.RootTrueSet(rootState) }

// TruePreds is the cached concurrent δB.
func (c *TxCache) TruePreds(parent, resid StateID, k int) StateID {
	key := tdKey{parent, resid, uint8(k)}
	if id, ok := c.td[key]; ok {
		return id
	}
	id := c.s.TruePreds(parent, resid, k)
	c.td[key] = id
	return id
}

// QueryMask caches the query bitmask per top-down state.
func (c *TxCache) QueryMask(td StateID) uint64 {
	if m, ok := c.masks[td]; ok {
		return m
	}
	m := c.s.QueryMask(td)
	c.masks[td] = m
	return m
}
