// Label-determined selection summaries (this file) underpin the result
// cache's semantic subsumption path: a static analysis over the compiled
// automata decides whether the program's selection depends only on a
// node's label and root-ness — and if so, records the per-label verdict.
//
// When two single-query programs Q and S both admit such a summary and
// Q's selected-label set is pointwise contained in S's (Subsumes), then
// R(Q) ⊆ R(S) on every document, and R(Q) is recoverable from a cached
// R(S) id list by re-filtering on the recorded labels — no scan needed.
//
// Soundness rests on the same alphabet-collapse argument as prune.go:
// the automaton alphabet is the program's EDB fact sets (SigID), so all
// labels the program's resolved Label[..]/char tests do not mention
// collapse into one class representative per class (characters, named
// labels). The analysis closes the bottom-up state space over arbitrary
// trees built from the mentioned labels plus the representatives,
// enumerates every root configuration, and closes the top-down state
// space over every (parent state, child state, side) combination — an
// over-approximation of the configurations real documents can reach, so
// a verdict inconsistency can only make the analysis fail conservatively
// (no summary, exact-hit caching only), never produce a wrong verdict.
package core

import (
	"arb/internal/edb"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// Closure caps: the analysis gives up (disabling subsumption, never
// correctness) if the state sets grow past these bounds. Label-determined
// query automata converge within a handful of states.
const (
	selBUCap = 32
	selTDCap = 256
)

// selVerdicts maps labels to selection verdicts for one node position
// (root or non-root): mentioned labels individually, everything else by
// class default.
type selVerdicts struct {
	labels       map[tree.Label]bool
	charDefault  bool // unmentioned character labels
	namedDefault bool // unmentioned named labels
}

func (v *selVerdicts) verdict(l tree.Label) bool {
	if sel, ok := v.labels[l]; ok {
		return sel
	}
	if l.IsChar() {
		return v.charDefault
	}
	return v.namedDefault
}

// SelSummary is the result of the label-determined selection analysis: a
// total function (label, isRoot) → selected, valid for the program on
// every document using the name table the summary was computed against.
// The zero value (ok=false) records an inadmissible program.
type SelSummary struct {
	ok        bool
	mentioned map[tree.Label]bool
	child     selVerdicts // verdicts at non-root nodes
	root      selVerdicts // verdicts at the root
}

// Selected reports whether a node labeled l (at root or non-root
// position) is selected by the summarized program.
func (s *SelSummary) Selected(l tree.Label, isRoot bool) bool {
	if isRoot {
		return s.root.verdict(l)
	}
	return s.child.verdict(l)
}

// Subsumes reports whether q's selection is pointwise contained in s's:
// every (label, position) q selects, s selects too. Then R(q) ⊆ R(s) on
// every document, and filtering s's result by q's verdicts yields
// exactly R(q). Both summaries must come from engines sharing one name
// table (one Session version guarantees this).
func Subsumes(q, s *SelSummary) bool {
	if q == nil || s == nil || !q.ok || !s.ok {
		return false
	}
	implied := func(l tree.Label) bool {
		return (!q.child.verdict(l) || s.child.verdict(l)) &&
			(!q.root.verdict(l) || s.root.verdict(l))
	}
	for l := range q.mentioned {
		if !implied(l) {
			return false
		}
	}
	for l := range s.mentioned {
		if !implied(l) {
			return false
		}
	}
	// Labels mentioned by neither side fall to the class defaults.
	if q.child.charDefault && !s.child.charDefault {
		return false
	}
	if q.child.namedDefault && !s.child.namedDefault {
		return false
	}
	if q.root.charDefault && !s.root.charDefault {
		return false
	}
	if q.root.namedDefault && !s.root.namedDefault {
		return false
	}
	return true
}

// SelectionSummary returns the engine's label-determined selection
// summary, or nil when the program does not admit one (selection depends
// on context or shape, several query predicates, aux input, or the
// closure caps were exceeded). The result is computed once and cached.
func (e *Engine) SelectionSummary() *SelSummary {
	s := e.lockedSelSummary()
	if !s.ok {
		return nil
	}
	return s
}

// lockedSelSummary runs selSummary under the engine's write lock, so
// summaries may be computed while other runs of the engine are in flight.
func (e *Engine) lockedSelSummary() *SelSummary {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.selSummary()
}

// selSummary computes (and caches) the engine's selection summary. It
// interns synthetic states and transitions into the engine's tables, so
// it must run while the caller holds the engine's write lock
// (lockedSelSummary) or owns the engine exclusively.
//
// arblint:holds mu
func (e *Engine) selSummary() *SelSummary {
	if e.sel != nil {
		return e.sel
	}
	a := &SelSummary{}
	e.sel = a

	// One query predicate, so one selection bit per node; the xpath
	// compiler always emits exactly one.
	if len(e.c.Queries) != 1 {
		return a
	}

	// Mentioned labels: only resolved Label[..]/char tests pin individual
	// labels. Structural tests are label-independent; Text distinguishes
	// the classes, which the class representatives model. Aux bits vary
	// per node outside the label, so they defeat the analysis outright.
	mentioned := map[tree.Label]bool{}
	for _, un := range e.c.Unaries {
		switch un.Kind {
		case tmnf.UAll, tmnf.URoot, tmnf.UHasFirstChild, tmnf.UHasSecondChild, tmnf.UText:
		case tmnf.ULabel, tmnf.UChar:
			if l, ok := edb.ResolveLabel(un, e.names); ok {
				mentioned[l] = true
			}
		default:
			return a
		}
	}

	// Alphabet: every mentioned label plus one representative per
	// unmentioned class. A class with every label mentioned would leave
	// its default verdict meaningless; give up (cannot happen for named
	// labels, and a program naming all 256 characters is pathological).
	alphabet := make([]tree.Label, 0, len(mentioned)+2)
	for l := range mentioned {
		alphabet = append(alphabet, l)
	}
	var charRep, namedRep tree.Label
	foundChar, foundNamed := false, false
	for c := 0; c < 256; c++ {
		if !mentioned[tree.Label(c)] {
			charRep, foundChar = tree.Label(c), true
			break
		}
	}
	for l := 1<<14 - 1; l >= 256; l-- {
		if !mentioned[tree.Label(l)] {
			namedRep, foundNamed = tree.Label(l), true
			break
		}
	}
	if !foundChar || !foundNamed {
		return a
	}
	alphabet = append(alphabet, charRep, namedRep)

	sig := func(l tree.Label, hf, hs, root bool) int32 {
		return e.SigID(edb.NodeSig{Label: l, HasFirst: hf, HasSecond: hs, IsRoot: root})
	}

	// Bottom-up closure: every state reachable by a non-root subtree over
	// the alphabet, over the four child shapes, attributing to each state
	// the labels that can sit at its subtree root (several labels may
	// fold to one state; the verdict check below needs them all).
	bu := map[StateID]map[tree.Label]bool{}
	note := func(s StateID, l tree.Label) bool {
		m := bu[s]
		if m == nil {
			m = map[tree.Label]bool{}
			bu[s] = m
		}
		if m[l] {
			return false
		}
		m[l] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		cur := make([]StateID, 0, len(bu))
		for s := range bu {
			cur = append(cur, s)
		}
		for _, l := range alphabet {
			if note(e.ReachableStates(NoState, NoState, sig(l, false, false, false)), l) {
				changed = true
			}
			for _, s1 := range cur {
				if note(e.ReachableStates(s1, NoState, sig(l, true, false, false)), l) {
					changed = true
				}
				if note(e.ReachableStates(NoState, s1, sig(l, false, true, false)), l) {
					changed = true
				}
				for _, s2 := range cur {
					if note(e.ReachableStates(s1, s2, sig(l, true, true, false)), l) {
						changed = true
					}
				}
			}
		}
		if len(bu) > selBUCap {
			return a
		}
	}
	buList := make([]StateID, 0, len(bu))
	for s := range bu {
		buList = append(buList, s)
	}

	// Root configurations: the root's own verdict is the query mask of
	// its top-down start state (RootTrueSet). For a fixed label it must
	// agree across every shape and child-state combination.
	rootV := map[tree.Label]bool{}
	rootTDs := map[StateID]bool{}
	rootCfg := func(l tree.Label, left, right StateID, hf, hs bool) bool {
		td := e.RootTrueSet(e.ReachableStates(left, right, sig(l, hf, hs, true)))
		rootTDs[td] = true
		sel := e.queryMask(td) != 0
		if v, ok := rootV[l]; ok && v != sel {
			return false
		}
		rootV[l] = sel
		return true
	}
	for _, l := range alphabet {
		if !rootCfg(l, NoState, NoState, false, false) {
			return a
		}
		for _, s1 := range buList {
			if !rootCfg(l, s1, NoState, true, false) {
				return a
			}
			if !rootCfg(l, NoState, s1, false, true) {
				return a
			}
			for _, s2 := range buList {
				if !rootCfg(l, s1, s2, true, true) {
					return a
				}
			}
		}
	}

	// Top-down closure: every state a non-root node can be assigned,
	// seeded from the root start states and closed under both transition
	// sides against every bottom-up state. A node's verdict is the query
	// mask of its top-down state; for a fixed label it must agree across
	// every reachable configuration.
	childV := map[tree.Label]bool{}
	tdSeen := map[StateID]bool{}
	work := []StateID{}
	push := func(t StateID) {
		if !tdSeen[t] {
			tdSeen[t] = true
			work = append(work, t)
		}
	}
	for t := range rootTDs {
		push(t)
	}
	for len(work) > 0 {
		t := work[len(work)-1]
		work = work[:len(work)-1]
		if len(tdSeen) > selTDCap {
			return a
		}
		for _, s := range buList {
			for k := 1; k <= 2; k++ {
				td := e.TruePreds(t, s, k)
				sel := e.queryMask(td) != 0
				for l := range bu[s] {
					if v, ok := childV[l]; ok && v != sel {
						return a
					}
					childV[l] = sel
				}
				push(td)
			}
		}
	}

	a.ok = true
	a.mentioned = mentioned
	a.child = selVerdicts{
		labels:       make(map[tree.Label]bool, len(mentioned)),
		charDefault:  childV[charRep],
		namedDefault: childV[namedRep],
	}
	a.root = selVerdicts{
		labels:       make(map[tree.Label]bool, len(mentioned)),
		charDefault:  rootV[charRep],
		namedDefault: rootV[namedRep],
	}
	for l := range mentioned {
		a.child.labels[l] = childV[l]
		a.root.labels[l] = rootV[l]
	}
	return a
}
