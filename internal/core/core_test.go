package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"arb/internal/horn"
	"arb/internal/naive"
	"arb/internal/testutil"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// example43 is the running example program of Examples 4.3, 4.5 and 4.7.
const example43 = `
P1 :- Root;
P2 :- P1.FirstChild;
P3 :- P2.FirstChild;
P4 :- P3, Leaf;
P5 :- P4.invFirstChild;
Q  :- P5.invFirstChild;
`

// chainA builds the three-node tree of Example 4.5: <a><a><a/></a></a>.
func chainA(t *testing.T) *tree.Tree {
	t.Helper()
	tr, err := tree.BuildUnranked(tree.UNode{Tag: "a", Children: []tree.UNode{
		{Tag: "a", Children: []tree.UNode{{Tag: "a"}}},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestPropLocalExample43 checks the rule-group split of Example 4.3.
func TestPropLocalExample43(t *testing.T) {
	p := tmnf.MustParse(example43)
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	u := c.U
	pred := func(name string) horn.Atom {
		q, ok := p.Pred(name)
		if !ok {
			t.Fatalf("missing pred %s", name)
		}
		return u.LocalAtom(int(q))
	}
	s1 := func(name string) horn.Atom { return u.PushDown(1, pred(name)) }

	// local_rules = {P1 <- Root; P4 <- P3 /\ Leaf}
	if len(c.Local) != 2 {
		t.Fatalf("got %d local rules, want 2", len(c.Local))
	}
	if c.Local[0].Head != pred("P1") || len(c.Local[0].Body) != 1 || !u.IsEDB(c.Local[0].Body[0]) {
		t.Errorf("local rule 0 wrong: %v", c.Local[0])
	}
	if c.Local[1].Head != pred("P4") || len(c.Local[1].Body) != 2 {
		t.Errorf("local rule 1 wrong: %v", c.Local[1])
	}

	// left_rules = {P2^1 <- P1; P3^1 <- P2; P5 <- P4^1; Q <- P5^1}
	if len(c.Left) != 4 {
		t.Fatalf("got %d left rules, want 4: %v", len(c.Left), c.Left)
	}
	wantLeft := []horn.Rule{
		horn.NewRule(s1("P2"), pred("P1")),
		horn.NewRule(s1("P3"), pred("P2")),
		horn.NewRule(pred("P5"), s1("P4")),
		horn.NewRule(pred("Q"), s1("P5")),
	}
	for i, w := range wantLeft {
		if c.Left[i].Head != w.Head || len(c.Left[i].Body) != 1 || c.Left[i].Body[0] != w.Body[0] {
			t.Errorf("left rule %d = %v, want %v", i, c.Left[i], w)
		}
	}

	// right_rules = {} ; downward_rules_1 = {P2^1 <- P1; P3^1 <- P2} ;
	// downward_rules_2 = {}.
	if len(c.Right) != 0 || len(c.Down2) != 0 {
		t.Errorf("right=%v down2=%v, want empty", c.Right, c.Down2)
	}
	if len(c.Down1) != 2 {
		t.Fatalf("got %d down1 rules, want 2", len(c.Down1))
	}
}

// TestExample45Residuals reproduces the residual programs ρA(v2), ρA(v1),
// ρA(v0) of Example 4.5 exactly.
func TestExample45Residuals(t *testing.T) {
	p := tmnf.MustParse(example43)
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	tr := chainA(t)
	e := NewEngine(c, tr.Names())
	res, err := e.Run(tr, RunOpts{KeepStates: true})
	if err != nil {
		t.Fatal(err)
	}
	u := c.U
	pred := func(name string) horn.Atom {
		q, _ := p.Pred(name)
		return u.LocalAtom(int(q))
	}
	want := []*horn.Program{
		// v0: {P1 <-; Q <-}
		{Rules: []horn.Rule{{Head: pred("P1")}, {Head: pred("Q")}}},
		// v1: {P5 <- P2}
		{Rules: []horn.Rule{horn.NewRule(pred("P5"), pred("P2"))}},
		// v2: {P4 <- P3}
		{Rules: []horn.Rule{horn.NewRule(pred("P4"), pred("P3"))}},
	}
	for v, w := range want {
		w.Canon()
		got := e.BUState(res.BUStateOf[v])
		if got.Key() != w.Key() {
			t.Errorf("rho_A(v%d) = %s, want %s", v,
				got.Format(c.AtomName), w.Format(c.AtomName))
		}
	}
}

// TestExample47TruePreds reproduces the top-down state assignments of
// Example 4.7 exactly: {P1,Q} for v0, {P2,P5} for v1, {P3,P4} for v2.
func TestExample47TruePreds(t *testing.T) {
	p := tmnf.MustParse(example43)
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	tr := chainA(t)
	e := NewEngine(c, tr.Names())
	res, err := e.Run(tr, RunOpts{KeepStates: true})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"P1", "Q"}, {"P2", "P5"}, {"P3", "P4"}}
	for v, wantNames := range want {
		got := e.TDSet(res.TDStateOf[v])
		if len(got) != len(wantNames) {
			t.Errorf("v%d true preds = %v, want %v", v, predNames(p, got), wantNames)
			continue
		}
		for i, q := range got {
			if p.PredName(q) != wantNames[i] {
				t.Errorf("v%d true preds = %v, want %v", v, predNames(p, got), wantNames)
				break
			}
		}
	}
	// Q selects exactly the root.
	q, _ := p.Pred("Q")
	if err := p.SetQueries("Q"); err != nil {
		t.Fatal(err)
	}
	// Re-run with query set.
	c2, _ := Compile(p)
	e2 := NewEngine(c2, tr.Names())
	res2, err := e2.Run(tr, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Selected(q); len(got) != 1 || got[0] != 0 {
		t.Errorf("Q selected %v, want [0]", got)
	}
}

func predNames(p *tmnf.Program, preds []tmnf.Pred) []string {
	out := make([]string, len(preds))
	for i, q := range preds {
		out[i] = p.PredName(q)
	}
	return out
}

// evalBoth runs the two-phase engine and the naive oracle on the same
// inputs and compares the query predicate's selected sets.
func evalBoth(t *testing.T, tr *tree.Tree, p *tmnf.Program) bool {
	t.Helper()
	c, err := Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	e := NewEngine(c, tr.Names())
	res, err := e.Run(tr, RunOpts{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	oracle := naive.Evaluate(tr, p)
	for _, q := range p.Queries() {
		for v := 0; v < tr.Len(); v++ {
			if res.Holds(q, tree.NodeID(v)) != oracle.Holds(q, tree.NodeID(v)) {
				t.Logf("mismatch on pred %s node %d: engine=%v oracle=%v\nprogram:\n%s\ntree:\n%s",
					p.PredName(q), v, res.Holds(q, tree.NodeID(v)), oracle.Holds(q, tree.NodeID(v)), p, tr)
				return false
			}
		}
	}
	return true
}

// TestTheorem41Differential is the central correctness property test:
// two-phase evaluation agrees with the naive fixpoint on random programs
// and random trees (Theorem 4.1).
func TestTheorem41Differential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := testutil.RandomTree(rng, 40)
		p := testutil.RandomProgramParsed(rng, 1+rng.Intn(5), 1+rng.Intn(12))
		return evalBoth(t, tr, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem41AllPredsDifferential marks *every* predicate as a query
// (multiple query evaluation, Section 7) and compares all of them.
func TestTheorem41AllPredsDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := testutil.RandomTree(rng, 30)
		nPreds := 1 + rng.Intn(4)
		p := testutil.RandomProgramParsed(rng, nPreds, 1+rng.Intn(10))
		var names []string
		for i := 0; i < nPreds; i++ {
			if q, ok := p.Pred(predName(i)); ok {
				names = append(names, p.PredName(q))
			}
		}
		if err := p.SetQueries(names...); err != nil {
			return false
		}
		return evalBoth(t, tr, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func predName(i int) string {
	return "P" + string(rune('0'+i))
}

// TestCaterpillarDifferential compares caterpillar-expression programs
// (Glushkov lowering) against the oracle.
func TestCaterpillarDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := testutil.RandomTree(rng, 30)
		p := testutil.RandomCaterpillarProgram(rng)
		return evalBoth(t, tr, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestExample22EvenOdd evaluates the even/odd leaf-counting program of
// Example 2.2 and checks the root's predicate against a direct count.
func TestExample22EvenOdd(t *testing.T) {
	const example22 = `
Even :- Leaf, -Label[a];
Odd  :- Leaf, Label[a];
SFREven :- Even, LastSibling;
SFROdd  :- Odd, LastSibling;
FSEven :- SFREven.invNextSibling;
FSOdd  :- SFROdd.invNextSibling;
SFREven :- FSEven, Even;
SFROdd  :- FSEven, Odd;
SFROdd  :- FSOdd, Even;
SFREven :- FSOdd, Odd;
Even :- SFREven.invFirstChild;
Odd  :- SFROdd.invFirstChild;
`
	p := tmnf.MustParse(example22)
	if err := p.SetQueries("Even", "Odd"); err != nil {
		t.Fatal(err)
	}
	even, _ := p.Pred("Even")
	odd, _ := p.Pred("Odd")
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := testutil.RandomTree(rng, 50)
		c, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(c, tr.Names())
		res, err := e.Run(tr, RunOpts{})
		if err != nil {
			t.Fatal(err)
		}
		// Direct count: leaves of the *binary* tree labeled "a" in each
		// node's binary subtree. Example 2.2 annotates node v Even iff its
		// subtree contains an even number of leaves labeled a.
		aLabel, haveA := tr.Names().Lookup("a")
		counts := make([]int, tr.Len())
		for v := tr.Len() - 1; v >= 0; v-- {
			n := 0
			if c := tr.First(tree.NodeID(v)); c != tree.None {
				n += counts[c]
			}
			if c := tr.Second(tree.NodeID(v)); c != tree.None {
				n += counts[c]
			}
			if !tr.HasFirst(tree.NodeID(v)) && haveA && tr.Label(tree.NodeID(v)) == aLabel {
				n++
			}
			counts[v] = n
		}
		// The program counts leaves in the subtree reachable via
		// FirstChild and sibling chains below v... its "subtree" is the
		// paper's unranked subtree: node itself plus descendants. In the
		// binary encoding that is v plus the binary subtree of First(v).
		for v := 0; v < tr.Len(); v++ {
			subtree := 0
			if c := tr.First(tree.NodeID(v)); c != tree.None {
				subtree = counts[c]
			}
			if !tr.HasFirst(tree.NodeID(v)) && haveA && tr.Label(tree.NodeID(v)) == aLabel {
				subtree++
			}
			wantEven := subtree%2 == 0
			if res.Holds(even, tree.NodeID(v)) != wantEven {
				t.Fatalf("seed %d node %d: Even=%v, want %v (count %d)",
					seed, v, res.Holds(even, tree.NodeID(v)), wantEven, subtree)
			}
			if res.Holds(odd, tree.NodeID(v)) != !wantEven {
				t.Fatalf("seed %d node %d: Odd=%v, want %v", seed, v, res.Holds(odd, tree.NodeID(v)), !wantEven)
			}
		}
	}
}

func TestSingleNodeTree(t *testing.T) {
	tr, err := tree.BuildUnranked(tree.UNode{Tag: "only"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := tmnf.MustParse(`QUERY :- Root, Leaf, LastSibling;`)
	c, _ := Compile(p)
	e := NewEngine(c, tr.Names())
	res, err := e.Run(tr, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Count(p.Queries()[0]); got != 1 {
		t.Errorf("Count = %d, want 1", got)
	}
}

func TestEmptyTreeRejected(t *testing.T) {
	p := tmnf.MustParse(`QUERY :- Root;`)
	c, _ := Compile(p)
	e := NewEngine(c, tree.NewNames())
	if _, err := e.Run(tree.New(nil), RunOpts{}); err == nil {
		t.Error("empty tree accepted")
	}
}

// TestTransitionCacheReuse: running the same engine on the same tree twice
// must not compute any new transitions the second time.
func TestTransitionCacheReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := testutil.RandomTree(rng, 200)
	p := testutil.RandomProgramParsed(rng, 4, 10)
	c, _ := Compile(p)
	e := NewEngine(c, tr.Names())
	if _, err := e.Run(tr, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	s1 := e.Stats()
	if _, err := e.Run(tr, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	s2 := e.Stats()
	if s2.BUTransitions != s1.BUTransitions || s2.TDTransitions != s1.TDTransitions {
		t.Errorf("transitions recomputed: %+v then %+v", s1, s2)
	}
}

// TestStatsPopulated: a run reports plausible statistics.
func TestStatsPopulated(t *testing.T) {
	tr := chainA(t)
	p := tmnf.MustParse(example43)
	c, _ := Compile(p)
	e := NewEngine(c, tr.Names())
	if _, err := e.Run(tr, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.BUTransitions == 0 || s.TDTransitions == 0 || s.BUStates == 0 || s.TDStates == 0 {
		t.Errorf("stats not populated: %+v", s)
	}
	if s.Nodes != 3 {
		t.Errorf("Nodes = %d, want 3", s.Nodes)
	}
}

// TestResultWalkAndCount exercises the bitset result accessors.
func TestResultWalkAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := testutil.RandomTree(rng, 100)
	p := tmnf.MustParse(`QUERY :- Label[a];`)
	c, _ := Compile(p)
	e := NewEngine(c, tr.Names())
	res, err := e.Run(tr, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queries()[0]
	sel := res.Selected(q)
	if int64(len(sel)) != res.Count(q) {
		t.Errorf("len(Selected) %d != Count %d", len(sel), res.Count(q))
	}
	stop := 0
	res.Walk(q, func(v tree.NodeID) bool {
		stop++
		return stop < 2
	})
	if len(sel) >= 2 && stop != 2 {
		t.Errorf("Walk early stop failed: %d", stop)
	}
	for _, v := range sel {
		if !res.Holds(q, v) {
			t.Errorf("Holds(%d) false for selected node", v)
		}
	}
}
