package core

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"arb/internal/naive"
	"arb/internal/storage"
	"arb/internal/testutil"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// diskRun builds a temporary .arb database from t and evaluates prog over
// it with RunDisk.
func diskRun(tb testing.TB, t *tree.Tree, prog *tmnf.Program, opts DiskOpts) (*Result, *DiskStats, *storage.DB) {
	tb.Helper()
	base := filepath.Join(tb.TempDir(), "db")
	db, err := storage.CreateFromTree(base, t)
	if err != nil {
		tb.Fatalf("CreateFromTree: %v", err)
	}
	tb.Cleanup(func() { db.Close() })
	c, err := Compile(prog)
	if err != nil {
		tb.Fatalf("Compile: %v", err)
	}
	e := NewEngine(c, db.Names)
	res, ds, err := e.RunDisk(db, opts)
	if err != nil {
		tb.Fatalf("RunDisk: %v", err)
	}
	return res, ds, db
}

func TestRunDiskMatchesMemoryAndNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 40; iter++ {
		tr := testutil.RandomTree(rng, 60)
		prog := testutil.RandomProgramParsed(rng, 4, 8)
		res, _, _ := diskRun(t, tr, prog, DiskOpts{})

		want := naive.Evaluate(tr, prog)
		c, err := Compile(prog)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		e := NewEngine(c, tr.Names())
		mem, err := e.Run(tr, RunOpts{})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for _, q := range prog.Queries() {
			for v := 0; v < tr.Len(); v++ {
				id := tree.NodeID(v)
				if got, exp := res.Holds(q, id), want.Holds(q, id); got != exp {
					t.Fatalf("iter %d: disk: %s(%d)=%v, naive %v\nprogram:\n%s\ntree:\n%s",
						iter, prog.PredName(q), v, got, exp, prog, tr)
				}
				if got, exp := res.Holds(q, id), mem.Holds(q, id); got != exp {
					t.Fatalf("iter %d: disk %v != memory %v at %s(%d)", iter, got, exp, prog.PredName(q), v)
				}
			}
		}
	}
}

func TestRunDiskStackBoundedByDepth(t *testing.T) {
	// A right-deep chain (long sibling list) must not grow the scan
	// stacks: per Proposition 5.1 they are bounded by the XML document
	// depth, and sibling lists are depth-1 structures.
	tr := tree.New(nil)
	root := tr.AddNode(tr.Names().MustIntern("r"))
	prev := tree.None
	for i := 0; i < 500; i++ {
		n := tr.AddNode(tr.Names().MustIntern("a"))
		if prev == tree.None {
			tr.SetFirst(root, n)
		} else {
			tr.SetSecond(prev, n)
		}
		prev = n
	}
	prog := tmnf.MustParse(`QUERY :- Label[a], LastSibling;`)
	res, ds, _ := diskRun(t, tr, prog, DiskOpts{})
	if n := res.Count(prog.Queries()[0]); n != 1 {
		t.Fatalf("selected %d nodes, want 1", n)
	}
	// Document depth is 2 (root + children); binary-tree depth is ~501.
	if ds.Phase1.MaxStack > 4 || ds.Phase2.MaxStack > 4 {
		t.Fatalf("scan stacks grew with sibling count: phase1=%d phase2=%d", ds.Phase1.MaxStack, ds.Phase2.MaxStack)
	}
}

func TestRunDiskStateFile(t *testing.T) {
	tr := tree.New(nil)
	root := tr.AddNode(tr.Names().MustIntern("a"))
	c1 := tr.AddNode(tr.Names().MustIntern("b"))
	tr.SetFirst(root, c1)
	prog := tmnf.MustParse(`QUERY :- Label[b];`)

	base := filepath.Join(t.TempDir(), "db")
	db, err := storage.CreateFromTree(base, tr)
	if err != nil {
		t.Fatalf("CreateFromTree: %v", err)
	}
	defer db.Close()
	cpl, err := Compile(prog)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	e := NewEngine(cpl, db.Names)

	// KeepStateFile retains a uniquely named state file with 4 bytes per
	// node, reported as Result.StateFile.
	res, ds, err := e.RunDisk(db, DiskOpts{KeepStateFile: true})
	if err != nil {
		t.Fatalf("RunDisk: %v", err)
	}
	if res.StateFile == "" {
		t.Fatal("KeepStateFile run did not report Result.StateFile")
	}
	st, err := os.Stat(res.StateFile)
	if err != nil {
		t.Fatalf("state file not kept: %v", err)
	}
	if st.Size() != db.N*stateIDSize || ds.StateBytes != st.Size() {
		t.Fatalf("state file size %d, want %d (stats say %d)", st.Size(), db.N*stateIDSize, ds.StateBytes)
	}

	// Default: the state file is removed after the run and no path is
	// reported.
	os.Remove(res.StateFile)
	res2, _, err := e.RunDisk(db, DiskOpts{})
	if err != nil {
		t.Fatalf("RunDisk: %v", err)
	}
	if res2.StateFile != "" {
		t.Fatalf("default run reported state file %s", res2.StateFile)
	}
	entries, err := os.ReadDir(filepath.Dir(base))
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) == ".sta" {
			t.Fatalf("state file %s left behind", ent.Name())
		}
	}
}

func TestRunDiskRejectsForeignNames(t *testing.T) {
	tr := tree.New(nil)
	tr.AddNode(tr.Names().MustIntern("a"))
	base := filepath.Join(t.TempDir(), "db")
	db, err := storage.CreateFromTree(base, tr)
	if err != nil {
		t.Fatalf("CreateFromTree: %v", err)
	}
	defer db.Close()
	prog := tmnf.MustParse(`QUERY :- Label[a];`)
	c, err := Compile(prog)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	e := NewEngine(c, tree.NewNames()) // wrong table
	if _, _, err := e.RunDisk(db, DiskOpts{}); err == nil {
		t.Fatal("RunDisk accepted mismatched name table")
	}
}

func TestRunDiskFailureInjection(t *testing.T) {
	tr := tree.New(nil)
	root := tr.AddNode(tr.Names().MustIntern("a"))
	tr.SetFirst(root, tr.AddNode(tr.Names().MustIntern("b")))
	base := filepath.Join(t.TempDir(), "db")
	db, err := storage.CreateFromTree(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	prog := tmnf.MustParse(`QUERY :- Label[b];`)
	c, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(c, db.Names)

	// State file in a directory that does not exist.
	if _, _, err := e.RunDisk(db, DiskOpts{StatePath: filepath.Join(t.TempDir(), "no", "such", "dir", "x.sta")}); err == nil {
		t.Fatal("RunDisk succeeded with an uncreatable state file")
	}

	// Corrupted state file cross-check: run once keeping the state file,
	// truncate the database underneath a mismatched state file.
	if _, _, err := e.RunDisk(db, DiskOpts{KeepStateFile: true}); err != nil {
		t.Fatal(err)
	}
	// Overwrite the .arb with a different (single-node) tree while the
	// two-node state file is still around: phase 2's root-state check
	// must catch the mismatch rather than return garbage.
	tr2 := tree.New(db.Names)
	tr2.AddNode(db.Names.MustIntern("a"))
	db2, err := storage.CreateFromTree(base+"2", tr2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, _, err := e.RunDisk(db2, DiskOpts{StatePath: base + ".sta"}); err == nil {
		t.Fatal("RunDisk accepted a stale state file") // the .sta is 8 bytes, db2 has 1 node
	}
}

func TestRunDiskMarkedOutputInPhase2(t *testing.T) {
	// The marked-XML output produced during phase 2 must equal the
	// separate-scan EmitXML output.
	rng := rand.New(rand.NewSource(27))
	for iter := 0; iter < 10; iter++ {
		tr := testutil.RandomTree(rng, 60)
		prog := testutil.RandomProgramParsed(rng, 3, 6)
		base := filepath.Join(t.TempDir(), "db")
		db, err := storage.CreateFromTree(base, tr)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(prog)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(c, db.Names)
		var inPhase bytes.Buffer
		res, _, err := e.RunDisk(db, DiskOpts{MarkTo: &inPhase})
		if err != nil {
			t.Fatal(err)
		}
		var separate bytes.Buffer
		q := prog.Queries()[0]
		if err := storage.EmitXMLContext(context.Background(), db, &separate, func(v int64) bool {
			return res.Holds(q, tree.NodeID(v))
		}); err != nil {
			t.Fatal(err)
		}
		if inPhase.String() != separate.String() {
			t.Fatalf("iter %d:\nphase 2:  %s\nseparate: %s", iter, inPhase.String(), separate.String())
		}
		db.Close()
	}
}
