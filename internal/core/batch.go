package core

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"arb/internal/edb"
	"arb/internal/storage"
	"arb/internal/tree"
)

// Batch evaluation runs N compiled programs over one document during a
// single pair of linear scans. The scans are query-independent I/O — the
// paper's cost model is dominated by them — so a server fielding many
// concurrent queries amortises the passes across the whole workload: at
// every scan position each member engine takes its own transition, the
// phase-1 states of all members stream to one widened state file
// (stateWidth bytes per member per node), and auxiliary predicate masks
// travel in one widened sidecar with a slot per member. Results are
// bit-identical to running each member alone: the decomposition only
// shares the iteration, never the automata.

// BatchMember is one query's engine inside a batch run, plus the wiring
// of its auxiliary predicate masks (the multi-pass XPath mechanism).
type BatchMember struct {
	E *Engine

	// Aux supplies the member's auxiliary mask for in-memory runs; nil
	// means no auxiliary predicates.
	Aux func(v tree.NodeID) uint16

	// AuxInSlot is the member's uint16 slot in the AuxIn sidecar of disk
	// runs; negative means no aux input.
	AuxInSlot int
	// AuxOutSlot, when non-negative, makes phase 2 write the member's
	// updated mask — the input mask ORed with bit AuxOutBit for every
	// node selected by query predicate AuxOutQuery — to that slot of the
	// AuxOut sidecar.
	AuxOutSlot  int
	AuxOutBit   uint8
	AuxOutQuery int
}

// DiskBatchOpts configures a secondary-storage batch run. The sidecar
// paths name widened aux-mask files (storage.MaskStride bytes per node);
// empty paths mean no aux input/output.
type DiskBatchOpts struct {
	AuxIn        string
	AuxInStride  int
	AuxOut       string
	AuxOutStride int

	// NoPrune disables selectivity-aware scan pruning for this round. A
	// batch round prunes an extent only when every member's analysis
	// proves it irrelevant (the scans are shared); rounds with aux input
	// never prune.
	NoPrune bool

	// Run, when non-nil, receives the round's exact statistics across
	// all members — deterministic per-run attribution even when batch
	// executions overlap on shared engines.
	Run *RunStats
}

// transSource is the narrow automata interface the batch inner loops run
// against — a SharedEngine view of each member engine, so batch runs may
// overlap each other and scalar runs of the same engines.
type transSource interface {
	ReachableStates(left, right StateID, sig edb.NodeSig) StateID
	TruePreds(parent, resid StateID, k int) StateID
	RootTrueSet(rootState StateID) StateID
	QueryMask(td StateID) uint64
}

// BatchCache is a dense per-member (and, in parallel runs, per-worker)
// transition memo for the batch inner loops. A batch pays N engine steps
// per node instead of one, so the per-step constant matters more here
// than anywhere else in the system: node signatures resolve straight from
// the 2-byte record bits (an array lookup), and the two transition
// functions from flat tables indexed by their small dense state ids.
// Tables grow geometrically as lazy automata construction discovers
// states; misses fall through to the underlying source, so the cache is
// semantics-free — it can never change which state a step yields.
type BatchCache struct {
	src transSource

	// Local signature interning. Non-root signatures without aux bits are
	// indexed directly by their record bits; root or aux-extra signatures
	// (rare: one root per document, aux only on multi-pass members) go
	// through the map, keyed rec | extra<<16 | root<<32.
	sigByRec []int32 // 1<<16 entries; 0 = unknown, else local sig id + 1
	sigAux   map[uint64]int32
	sigs     []edb.NodeSig // local sig id -> signature, for miss calls

	// δA: bu[((l+1)*dimS + (r+1))*dimSig + sig] = state id + 1. Keys the
	// dense table will not grow to hold (maxDenseEntries) live in buMap.
	dimS, dimSig int32
	bu           []StateID
	buMap        map[buMapKey]StateID

	// δB: td[(parent*dimB + child)*2 + (k-1)] = state id + 1.
	dimP, dimB int32
	td         []StateID
	tdMap      map[tdMapKey]StateID

	// Query-predicate masks per top-down state.
	masks     []uint64
	maskKnown []bool
}

type buMapKey struct {
	l, r StateID
	sig  int32
}

type tdMapKey struct {
	p, b StateID
	k    uint8
}

// maxDenseEntries bounds each dense transition table (4 MB of StateIDs):
// automata in practice stay far below it, and pathological state or
// signature counts degrade to hash lookups instead of huge allocations.
const maxDenseEntries = 1 << 20

func newBatchCache(src transSource) *BatchCache {
	return &BatchCache{src: src, sigByRec: make([]int32, 1<<16), sigAux: map[uint64]int32{}}
}

// NewBatchCache returns a private dense cache in front of the shared
// engine for one worker of a parallel batch run.
func (s *SharedEngine) NewBatchCache() *BatchCache { return newBatchCache(s) }

// SigID interns the signature given by a node's record bits (label and
// child flags, storage.Record.Encode form), root-ness and aux mask,
// returning a cache-local signature id for BUStep.
func (c *BatchCache) SigID(rec uint16, root bool, extra uint16) int32 {
	if !root && extra == 0 {
		if s := c.sigByRec[rec]; s != 0 {
			return s - 1
		}
		s := c.internSig(rec, root, extra)
		c.sigByRec[rec] = s + 1
		return s
	}
	key := uint64(rec) | uint64(extra)<<16
	if root {
		key |= 1 << 32
	}
	if s, ok := c.sigAux[key]; ok {
		return s
	}
	s := c.internSig(rec, root, extra)
	c.sigAux[key] = s
	return s
}

func (c *BatchCache) internSig(rec uint16, root bool, extra uint16) int32 {
	r := storage.DecodeRecord(rec)
	c.sigs = append(c.sigs, edb.NodeSig{
		Label:     tree.Label(r.Label),
		HasFirst:  r.HasFirst,
		HasSecond: r.HasSecond,
		IsRoot:    root,
		Extra:     extra,
	})
	return int32(len(c.sigs) - 1)
}

// BUStep is the cached δA on a local signature id.
func (c *BatchCache) BUStep(left, right StateID, sig int32) StateID {
	l1, r1 := left+1, right+1
	if l1 < c.dimS && r1 < c.dimS && sig < c.dimSig {
		if id := c.bu[(l1*c.dimS+r1)*c.dimSig+sig]; id != 0 {
			return id - 1
		}
	} else if id, ok := c.buMap[buMapKey{left, right, sig}]; ok {
		return id
	}
	id := c.src.ReachableStates(left, right, c.sigs[sig])
	c.storeBU(left, right, sig, id)
	return id
}

func (c *BatchCache) storeBU(left, right StateID, sig int32, id StateID) {
	l1, r1 := left+1, right+1
	if l1 >= c.dimS || r1 >= c.dimS || sig >= c.dimSig {
		if !c.growBU(max32(l1, r1), sig) {
			if c.buMap == nil {
				c.buMap = map[buMapKey]StateID{}
			}
			c.buMap[buMapKey{left, right, sig}] = id
			return
		}
	}
	c.bu[(l1*c.dimS+r1)*c.dimSig+sig] = id + 1
}

// growBU widens the dense δA table to cover state needS and signature
// needSig, reporting false when that would exceed the dense budget.
func (c *BatchCache) growBU(needS StateID, needSig int32) bool {
	newS, newSig := c.dimS, c.dimSig
	if newS == 0 {
		newS, newSig = 8, 8
	}
	for newS <= int32(needS) {
		newS *= 2
	}
	for newSig <= needSig {
		newSig *= 2
	}
	if int64(newS)*int64(newS)*int64(newSig) > maxDenseEntries {
		return false
	}
	nb := make([]StateID, int(newS)*int(newS)*int(newSig))
	for l := int32(0); l < c.dimS; l++ {
		for r := int32(0); r < c.dimS; r++ {
			copy(nb[(l*newS+r)*newSig:(l*newS+r)*newSig+c.dimSig],
				c.bu[(l*c.dimS+r)*c.dimSig:(l*c.dimS+r+1)*c.dimSig])
		}
	}
	c.bu, c.dimS, c.dimSig = nb, newS, newSig
	return true
}

// TDStep is the cached δB_k.
func (c *BatchCache) TDStep(parent, bu StateID, k int) StateID {
	if parent < c.dimP && bu < c.dimB {
		if id := c.td[(parent*c.dimB+bu)*2+StateID(k-1)]; id != 0 {
			return id - 1
		}
	} else if id, ok := c.tdMap[tdMapKey{parent, bu, uint8(k)}]; ok {
		return id
	}
	id := c.src.TruePreds(parent, bu, k)
	c.storeTD(parent, bu, k, id)
	return id
}

func (c *BatchCache) storeTD(parent, bu StateID, k int, id StateID) {
	if parent >= c.dimP || bu >= c.dimB {
		newP, newB := c.dimP, c.dimB
		if newP == 0 {
			newP, newB = 8, 8
		}
		for newP <= parent {
			newP *= 2
		}
		for newB <= bu {
			newB *= 2
		}
		if int64(newP)*int64(newB)*2 > maxDenseEntries {
			if c.tdMap == nil {
				c.tdMap = map[tdMapKey]StateID{}
			}
			c.tdMap[tdMapKey{parent, bu, uint8(k)}] = id
			return
		}
		nt := make([]StateID, int(newP)*int(newB)*2)
		for p := int32(0); p < c.dimP; p++ {
			copy(nt[p*newB*2:p*newB*2+c.dimB*2], c.td[p*c.dimB*2:(p+1)*c.dimB*2])
		}
		c.td, c.dimP, c.dimB = nt, newP, newB
	}
	c.td[(parent*c.dimB+bu)*2+StateID(k-1)] = id + 1
}

// RootTrueSet is step 2 of Algorithm 4.6 (uncached: once per run).
func (c *BatchCache) RootTrueSet(bu StateID) StateID { return c.src.RootTrueSet(bu) }

// QueryMask returns the query-predicate bitmask of a top-down state.
func (c *BatchCache) QueryMask(td StateID) uint64 {
	if int(td) < len(c.maskKnown) && c.maskKnown[td] {
		return c.masks[td]
	}
	m := c.src.QueryMask(td)
	for int(td) >= len(c.maskKnown) {
		c.maskKnown = append(c.maskKnown, false)
		c.masks = append(c.masks, 0)
	}
	c.maskKnown[td], c.masks[td] = true, m
	return m
}

func max32(a, b StateID) StateID {
	if a > b {
		return a
	}
	return b
}

// TreeBatchOpts configures an in-memory batch pass.
type TreeBatchOpts struct {
	// Index optionally supplies a subtree index with label signatures
	// over the tree (storage.BuildTreeIndex), enabling selectivity-aware
	// pruning: an extent is skipped only when every member's analysis
	// proves it irrelevant. Members with Aux set disable pruning for the
	// whole pass.
	Index *storage.SubtreeIndex
	// NoPrune disables pruning even when Index is available.
	NoPrune bool
	// Run, when non-nil, receives the pass's exact statistics across all
	// members — deterministic per-run attribution even when batch
	// executions overlap on shared engines.
	Run *RunStats
}

// RunBatchTree evaluates every member's program over an in-memory tree in
// one shared pair of passes: phase 1 walks the tree bottom-up once,
// stepping all member automata per node; phase 2 top-down likewise. The
// returned results (one per member, in member order) are identical to
// running each member's engine alone. The aggregate Stats carries the
// shared phase wall times; per-engine lazy-transition work lands in each
// member engine's own Stats as usual. Cancelling ctx aborts the pass in
// progress with ctx.Err().
func RunBatchTree(ctx context.Context, t *tree.Tree, members []BatchMember, topts TreeBatchOpts) ([]*Result, Stats, error) {
	var agg Stats
	n := t.Len()
	if n == 0 {
		return nil, agg, errors.New("core: empty tree")
	}
	nm := len(members)
	if nm == 0 {
		return nil, agg, errors.New("core: empty batch")
	}
	cancel := storage.NewCanceller(ctx)
	res := make([]*Result, nm)
	caches := make([]*BatchCache, nm)
	prunable := !topts.NoPrune
	engines := make([]*Engine, nm)
	for m, bm := range members {
		res[m] = NewResult(bm.E.c.Prog, int64(n))
		bm.E.AddNodes(int64(n))
		topts.Run.AddNodes(int64(n))
		caches[m] = newBatchCache(bm.E.ShareTo(topts.Run))
		engines[m] = bm.E
		if bm.Aux != nil {
			prunable = false
		}
	}
	var prune *PrunePlan
	if prunable {
		prune = PlanPrune(engines, topts.Index, int64(n))
	}
	var exts []storage.Extent
	if prune != nil {
		exts = prune.Extents
		for _, e := range engines {
			e.AddPrunedNodes(prune.Nodes)
			topts.Run.AddPrunedNodes(prune.Nodes)
		}
	}

	// Phase 1: one bottom-up pass, all members per node.
	start := time.Now()
	bu := make([]StateID, n*nm)
	pe := len(exts) - 1
	for v := n - 1; v >= 0; v-- {
		if err := cancel.Step(); err != nil {
			return nil, agg, err
		}
		if pe >= 0 && int64(v) == exts[pe].End()-1 {
			x := exts[pe]
			pe--
			for m := range members {
				bu[int(x.Root)*nm+m] = prune.Sub(m)
			}
			v = int(x.Root) // the loop decrement steps past the extent
			continue
		}
		first, second := t.First(tree.NodeID(v)), t.Second(tree.NodeID(v))
		rec := storage.Record{
			Label:     uint16(t.Label(tree.NodeID(v))),
			HasFirst:  first != tree.None,
			HasSecond: second != tree.None,
		}.Encode()
		root := v == 0
		for m, bm := range members {
			left, right := NoState, NoState
			if first != tree.None {
				left = bu[int(first)*nm+m]
			}
			if second != tree.None {
				right = bu[int(second)*nm+m]
			}
			var extra uint16
			if bm.Aux != nil {
				extra = bm.Aux(tree.NodeID(v))
			}
			c := caches[m]
			bu[v*nm+m] = c.BUStep(left, right, c.SigID(rec, root, extra))
		}
	}
	agg.Phase1Time = time.Since(start)

	// Phase 2: one top-down pass.
	start = time.Now()
	td := make([]StateID, n*nm)
	for m := range members {
		td[m] = caches[m].RootTrueSet(bu[m])
	}
	pi := 0
	for v := 0; v < n; v++ {
		if err := cancel.Step(); err != nil {
			return nil, agg, err
		}
		if pi < len(exts) && int64(v) == exts[pi].Root {
			v = int(exts[pi].End()) - 1 // the loop increment steps past
			pi++
			continue
		}
		first, second := t.First(tree.NodeID(v)), t.Second(tree.NodeID(v))
		for m := range members {
			c := caches[m]
			tdv := td[v*nm+m]
			if mask := c.QueryMask(tdv); mask != 0 {
				res[m].MarkMask(mask, int64(v))
			}
			if first != tree.None {
				td[int(first)*nm+m] = c.TDStep(tdv, bu[int(first)*nm+m], 1)
			}
			if second != tree.None {
				td[int(second)*nm+m] = c.TDStep(tdv, bu[int(second)*nm+m], 2)
			}
		}
	}
	agg.Phase2Time = time.Since(start)
	return res, agg, nil
}

// Widened state file: per node, one stateWidth-byte big-endian id per
// member, in member order. The state file is the dominant temporary I/O
// of a big batch, so runs start with the narrowest width the members'
// automata currently fit (typical programs intern a few dozen bottom-up
// states — one byte) and restart wider in the rare event that lazy
// construction outgrows it mid-run.
const (
	stateByte   = 1
	stateNarrow = 2
	stateWide   = 4
)

var errStateWidth = errors.New("core: bottom-up state id exceeds the narrow on-disk width")

func putState(b []byte, width int, id StateID) error {
	switch width {
	case stateByte:
		if uint32(id) >= 1<<8 {
			return errStateWidth
		}
		b[0] = byte(id)
	case stateNarrow:
		if uint32(id) >= 1<<16 {
			return errStateWidth
		}
		binary.BigEndian.PutUint16(b, uint16(id))
	default:
		binary.BigEndian.PutUint32(b, uint32(id))
	}
	return nil
}

func getState(b []byte, width int) StateID {
	switch width {
	case stateByte:
		return StateID(b[0])
	case stateNarrow:
		return StateID(binary.BigEndian.Uint16(b))
	default:
		return StateID(binary.BigEndian.Uint32(b))
	}
}

// batchStateWidth picks the initial on-disk state width for the members'
// engines, leaving headroom under each width's limit for states a run
// interns as it goes; a mid-run overflow restarts the run at stateWide.
func batchStateWidth(members []BatchMember) int {
	width := stateByte
	for _, bm := range members {
		switch n := bm.E.BUStateCount(); {
		case n >= 1<<16-256:
			return stateWide
		case n >= 1<<8-64:
			width = stateNarrow
		}
	}
	return width
}

// RunDiskBatch evaluates every member's program over a .arb database in
// secondary storage with exactly two linear scans of the data for the
// whole batch: phase 1 is one backward scan streaming every member's
// bottom-up state per node to one widened temporary state file; phase 2
// is one forward scan reading that file backwards and computing each
// member's true predicates. Auxiliary masks ride in widened sidecars with
// one slot per member (DiskBatchOpts), so multi-pass members chain their
// passes through shared scans too. Results are identical to running each
// member through RunDiskContext alone. Cancelling ctx aborts the scan in
// progress; a failed or cancelled run removes the state file and any
// partially written AuxOut sidecar.
func RunDiskBatch(ctx context.Context, db *storage.DB, members []BatchMember, opts DiskBatchOpts) ([]*Result, Stats, *DiskStats, error) {
	res, agg, ds, err := runDiskBatch(ctx, db, members, opts, batchStateWidth(members))
	if errors.Is(err, errStateWidth) {
		res, agg, ds, err = runDiskBatch(ctx, db, members, opts, stateWide)
	}
	return res, agg, ds, err
}

func runDiskBatch(ctx context.Context, db *storage.DB, members []BatchMember, opts DiskBatchOpts, width int) ([]*Result, Stats, *DiskStats, error) {
	var agg Stats
	nm := len(members)
	if nm == 0 {
		return nil, agg, nil, errors.New("core: empty batch")
	}
	if db.N == 0 {
		return nil, agg, nil, errors.New("core: empty database")
	}
	for _, bm := range members {
		if bm.E.names != db.Names {
			return nil, agg, nil, errors.New("core: engine name table does not match database")
		}
	}
	stride := nm * width
	res := make([]*Result, nm)
	caches := make([]*BatchCache, nm)
	engines := make([]*Engine, nm)
	for m, bm := range members {
		res[m] = NewResult(bm.E.c.Prog, db.N)
		caches[m] = newBatchCache(bm.E.ShareTo(opts.Run))
		engines[m] = bm.E
	}
	ds := &DiskStats{StateBytes: db.N * int64(stride)}

	// Selectivity-aware pruning: only extents every member proves
	// irrelevant can be skipped, since the batch shares one scan pair.
	var prune *PrunePlan
	if !opts.NoPrune && opts.AuxIn == "" && db.N >= PruneMinNodes {
		if ix, ierr := db.Index(ctx, 0); ierr == nil {
			prune = PlanPrune(engines, ix, db.N)
		}
	}
	var pruneExts []storage.Extent
	if prune != nil {
		pruneExts = prune.Extents
	}

	var auxF *os.File
	if opts.AuxIn != "" {
		var err error
		auxF, err = storage.OpenMaskFile(opts.AuxIn, db.N, opts.AuxInStride)
		if err != nil {
			return nil, agg, nil, err
		}
		defer auxF.Close()
	}

	stateF, err := os.CreateTemp(filepath.Dir(db.Base), filepath.Base(db.Base)+"-*.stb")
	if err != nil {
		return nil, agg, nil, err
	}
	statePath := stateF.Name()
	defer func() {
		stateF.Close()
		os.Remove(statePath)
	}()

	// Phase 1: one backward scan; every node steps all member automata
	// and streams the widened state vector.
	start := time.Now()
	var auxBack *storage.BackwardReader
	if auxF != nil {
		auxBack, err = storage.MaskBackward(auxF, 0, db.N, opts.AuxInStride)
		if err != nil {
			return nil, agg, nil, err
		}
		defer auxBack.Release()
	}
	sw := &runWriter{f: stateF}
	stateBuf := make([]byte, stride)
	var free [][]StateID
	var werr error
	rootVec, scan1, err := storage.FoldBottomUpSkipping(ctx, db, pruneExts,
		func(x storage.Extent) ([]StateID, error) {
			// Hand the fold a fresh copy: it recycles child vectors freely.
			return prune.SubVec(), nil
		},
		func(first, second *[]StateID, rec storage.Record, v int64) []StateID {
			out := takeVec(&free, first, second, nm)
			var auxVec []byte
			if auxBack != nil {
				b, err := auxBack.Next()
				if err != nil && werr == nil {
					werr = fmt.Errorf("core: reading aux file: %w", err)
				} else if err == nil {
					auxVec = b
				}
			}
			recBits := rec.Encode()
			root := v == 0
			for m, bm := range members {
				left, right := NoState, NoState
				if first != nil {
					left = (*first)[m]
				}
				if second != nil {
					right = (*second)[m]
				}
				var extra uint16
				if auxVec != nil && bm.AuxInSlot >= 0 {
					extra = binary.BigEndian.Uint16(auxVec[bm.AuxInSlot*storage.MaskSize:])
				}
				c := caches[m]
				id := c.BUStep(left, right, c.SigID(recBits, root, extra))
				out[m] = id
				if err := putState(stateBuf[m*width:], width, id); err != nil && werr == nil {
					werr = err
				}
			}
			sw.writeAt(stateBuf, (db.N-1-v)*int64(stride))
			return out
		})
	if err != nil {
		return nil, agg, nil, err
	}
	if werr == nil {
		werr = sw.flush()
	}
	if werr != nil {
		if errors.Is(werr, errStateWidth) {
			return nil, agg, nil, werr
		}
		return nil, agg, nil, fmt.Errorf("core: writing state file: %w", werr)
	}
	if prune != nil {
		scan1.SkippedBytes += prune.Nodes * storage.NodeSize
	}
	ds.Phase1 = scan1
	agg.Phase1Time = time.Since(start)

	// Phase 2: one forward scan; the state file, read backwards, yields
	// the phase-1 vectors in preorder.
	start = time.Now()
	br, err := storage.NewBackwardReader(stateF, db.N*int64(stride), stride)
	if err != nil {
		return nil, agg, nil, err
	}
	defer br.Release()
	var auxFwd *bufio.Reader
	if auxF != nil {
		auxFwd = storage.MaskForward(auxF, 0, db.N, opts.AuxInStride)
	}
	succeeded := false
	var auxOut *bufio.Writer
	var auxOutF *os.File
	if opts.AuxOut != "" {
		auxOutF, err = os.Create(opts.AuxOut)
		if err != nil {
			return nil, agg, nil, err
		}
		defer func() {
			auxOutF.Close()
			if !succeeded {
				os.Remove(opts.AuxOut)
			}
		}()
		auxOut = bufio.NewWriterSize(auxOutF, 1<<16)
	}
	inVec := make([]byte, storage.MaskStride(opts.AuxInStride))
	outVec := make([]byte, storage.MaskStride(opts.AuxOutStride))

	// Top-down states live in a depth-indexed arena: a node's vector is
	// only ever needed by its descendants' visits, and no two live path
	// entries share a depth, so the scan's S value can be the depth alone.
	var arena [][]StateID
	atDepth := func(d int32) []StateID {
		for int(d) >= len(arena) {
			arena = append(arena, make([]StateID, nm))
		}
		return arena[d]
	}
	scan2, err := storage.ScanTopDownSkipping(ctx, db, pruneExts,
		func(x storage.Extent, parent *int32, k int) error {
			if err := br.Skip(x.Size); err != nil {
				return err
			}
			if auxOut != nil {
				// No node of a pruned extent is selected and prunable
				// rounds have no aux input, so its slots are all zero.
				if err := writeZeros(auxOut, x.Size*int64(len(outVec))); err != nil {
					return err
				}
			}
			return nil
		},
		func(v int64, rec storage.Record, parent *int32, k int) (int32, error) {
			b, err := br.Next()
			if err != nil {
				return 0, fmt.Errorf("core: reading state file: %w", err)
			}
			var d int32
			var pvec []StateID
			if parent == nil {
				if v != 0 {
					return 0, fmt.Errorf("core: parentless node %d", v)
				}
			} else {
				d = *parent + 1
				pvec = arena[*parent]
			}
			tvec := atDepth(d)
			if auxFwd != nil {
				if _, err := io.ReadFull(auxFwd, inVec); err != nil {
					return 0, fmt.Errorf("core: reading aux file: %w", err)
				}
			}
			if auxOut != nil {
				for i := range outVec {
					outVec[i] = 0
				}
			}
			for m, bm := range members {
				bu := getState(b[m*width:], width)
				c := caches[m]
				var td StateID
				if parent == nil {
					if bu != rootVec[m] {
						return 0, fmt.Errorf("core: state file corrupt: root state %d, phase 1 computed %d", bu, rootVec[m])
					}
					td = c.RootTrueSet(bu)
				} else {
					td = c.TDStep(pvec[m], bu, k)
				}
				tvec[m] = td
				mask := c.QueryMask(td)
				if mask != 0 {
					res[m].MarkMask(mask, v)
				}
				if auxOut != nil && bm.AuxOutSlot >= 0 {
					var cur uint16
					if auxFwd != nil && bm.AuxInSlot >= 0 {
						cur = binary.BigEndian.Uint16(inVec[bm.AuxInSlot*storage.MaskSize:])
					}
					if mask&(1<<uint(bm.AuxOutQuery)) != 0 {
						cur |= 1 << bm.AuxOutBit
					}
					binary.BigEndian.PutUint16(outVec[bm.AuxOutSlot*storage.MaskSize:], cur)
				}
			}
			if auxOut != nil {
				if _, err := auxOut.Write(outVec); err != nil {
					return 0, err
				}
			}
			return d, nil
		})
	if err != nil {
		return nil, agg, nil, err
	}
	if auxOut != nil {
		if err := auxOut.Flush(); err != nil {
			return nil, agg, nil, err
		}
		if err := auxOutF.Close(); err != nil {
			return nil, agg, nil, err
		}
	}
	if prune != nil {
		scan2.SkippedBytes += prune.Nodes * storage.NodeSize
	}
	ds.Phase2 = scan2
	agg.Phase2Time = time.Since(start)
	// Count node visits only on success: a narrow-width restart re-enters
	// this function and must not double-count the aborted attempt.
	for _, bm := range members {
		bm.E.AddNodes(db.N)
		opts.Run.AddNodes(db.N)
		if prune != nil {
			bm.E.AddPrunedNodes(prune.Nodes)
			opts.Run.AddPrunedNodes(prune.Nodes)
		}
	}
	succeeded = true
	return res, agg, ds, nil
}

// RunDiskBatchParallel is RunDiskBatch with a pool of workers streaming
// disjoint chunk byte ranges, preserving the aggregate two-linear-scans
// I/O bound exactly as RunDiskParallelContext does for one query: the
// database's subtree index cuts a frontier of chunks, each worker runs
// every member engine over its chunk through private dense caches backed
// by the members' shared automata, and the leader scans the glue.
// workers <= 0 uses GOMAXPROCS; small databases and single-worker
// requests delegate to the sequential batch.
func RunDiskBatchParallel(ctx context.Context, db *storage.DB, workers int, members []BatchMember, opts DiskBatchOpts) ([]*Result, Stats, *DiskStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || db.N < parMinNodes {
		return RunDiskBatch(ctx, db, members, opts)
	}
	if db.N == 0 {
		return nil, Stats{}, nil, errors.New("core: empty database")
	}
	for _, bm := range members {
		if bm.E.names != db.Names {
			return nil, Stats{}, nil, errors.New("core: engine name table does not match database")
		}
	}
	idx, err := db.Index(ctx, 0)
	if err != nil {
		return nil, Stats{}, nil, err
	}
	target := db.N / (int64(workers) * parTasksPerWorker)
	run := func(idx *storage.SubtreeIndex) ([]*Result, Stats, *DiskStats, error, bool) {
		tasks := idx.Cut(target, parMinTask)
		if len(tasks) == 0 {
			res, agg, ds, err := RunDiskBatch(ctx, db, members, opts)
			return res, agg, ds, err, false
		}
		var plan *PrunePlan
		if !opts.NoPrune && opts.AuxIn == "" {
			engines := make([]*Engine, len(members))
			for m, bm := range members {
				engines[m] = bm.E
			}
			plan = PlanPrune(engines, idx, db.N)
		}
		res, agg, ds, err := runDiskBatchChunked(ctx, db, workers, members, opts, tasks, batchStateWidth(members), plan)
		if errors.Is(err, errStateWidth) {
			res, agg, ds, err = runDiskBatchChunked(ctx, db, workers, members, opts, tasks, stateWide, plan)
		}
		return res, agg, ds, err, true
	}
	res, agg, ds, err, chunked := run(idx)
	if chunked && err != nil && errors.Is(err, storage.ErrBadExtent) {
		// Stale or foreign .idx sidecar: rebuild and retry once, exactly
		// like the single-query parallel evaluator.
		idx, rerr := db.RebuildIndex(ctx, 0)
		if rerr != nil {
			return nil, Stats{}, nil, rerr
		}
		res, agg, ds, err, _ = run(idx)
	}
	return res, agg, ds, err
}

// runDiskBatchChunked is one attempt at chunk-parallel batch evaluation
// over a frontier cut, pruning exactly as the single-query chunked
// evaluator does: swallowed tasks never run, workers seek inside their
// chunks, the leader skips the remaining pruned holes.
func runDiskBatchChunked(ctx context.Context, db *storage.DB, workers int, members []BatchMember, opts DiskBatchOpts, tasks []storage.Extent, width int, plan *PrunePlan) ([]*Result, Stats, *DiskStats, error) {
	var agg Stats
	nm := len(members)
	stride := nm * width
	var planExts []storage.Extent
	if plan != nil {
		planExts = plan.Extents
	}
	tasks, inner, outer := SplitPrune(tasks, planExts)
	if len(tasks) == 0 {
		return RunDiskBatch(ctx, db, members, opts)
	}
	leaderSkip, taskOf := mergeSkipLists(tasks, outer)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	gaps := gapsOf(db.N, leaderSkip)

	res := make([]*Result, nm)
	shared := make([]*SharedEngine, nm)
	for m, bm := range members {
		res[m] = NewResult(bm.E.c.Prog, db.N)
		shared[m] = bm.E.ShareTo(opts.Run)
	}
	ds := &DiskStats{StateBytes: db.N * int64(stride)}

	var auxF *os.File
	if opts.AuxIn != "" {
		var err error
		auxF, err = storage.OpenMaskFile(opts.AuxIn, db.N, opts.AuxInStride)
		if err != nil {
			return nil, agg, nil, err
		}
		defer auxF.Close()
	}

	stateF, err := os.CreateTemp(filepath.Dir(db.Base), filepath.Base(db.Base)+"-*.stb")
	if err != nil {
		return nil, agg, nil, err
	}
	statePath := stateF.Name()
	defer func() {
		stateF.Close()
		os.Remove(statePath)
	}()

	// Per-worker, per-member dense caches backed by the shared automata,
	// reused across both phases.
	caches := make([][]*BatchCache, workers)
	for w := range caches {
		caches[w] = make([]*BatchCache, nm)
		for m := range caches[w] {
			caches[w][m] = newBatchCache(shared[m])
		}
	}
	leader := make([]*BatchCache, nm)
	for m := range leader {
		leader[m] = newBatchCache(shared[m])
	}

	buVec := func(cs []*BatchCache, first, second *[]StateID, rec storage.Record, v int64, auxVec []byte, out []StateID, stateBuf []byte, werr *error) {
		recBits := rec.Encode()
		root := v == 0
		for m, bm := range members {
			left, right := NoState, NoState
			if first != nil {
				left = (*first)[m]
			}
			if second != nil {
				right = (*second)[m]
			}
			var extra uint16
			if auxVec != nil && bm.AuxInSlot >= 0 {
				extra = binary.BigEndian.Uint16(auxVec[bm.AuxInSlot*storage.MaskSize:])
			}
			c := cs[m]
			id := c.BUStep(left, right, c.SigID(recBits, root, extra))
			out[m] = id
			if err := putState(stateBuf[m*width:], width, id); err != nil && *werr == nil {
				*werr = err
			}
		}
	}

	// Phase 1: workers fold their chunks bottom-up, each writing its
	// slice of the widened state file at its own offset; then the leader
	// folds the glue, consuming chunk root vectors.
	start := time.Now()
	rootVecs := make([][]StateID, len(tasks))
	var statsMu sync.Mutex
	var phase1 storage.ScanStats // guarded by: statsMu
	err = RunPool(ctx, workers, len(tasks), func(worker, i int) error {
		x := tasks[i]
		cs := caches[worker]
		sw := &runWriter{f: stateF}
		var auxBack *storage.BackwardReader
		if auxF != nil {
			var err error
			auxBack, err = storage.MaskBackward(auxF, x.Root, x.End(), opts.AuxInStride)
			if err != nil {
				return err
			}
			defer auxBack.Release()
		}
		stateBuf := make([]byte, stride)
		var free [][]StateID
		var skipped int64
		var werr error
		rootVec, st, err := storage.FoldBottomUpRangeSkipping(ctx, db, x, inner[i],
			func(sub storage.Extent) ([]StateID, error) {
				skipped += sub.Size * storage.NodeSize
				return plan.SubVec(), nil
			},
			func(first, second *[]StateID, rec storage.Record, v int64) []StateID {
				out := takeVec(&free, first, second, nm)
				var auxVec []byte
				if auxBack != nil {
					b, err := auxBack.Next()
					if err != nil && werr == nil {
						werr = fmt.Errorf("core: reading aux file: %w", err)
					} else if err == nil {
						auxVec = b
					}
				}
				buVec(cs, first, second, rec, v, auxVec, out, stateBuf, &werr)
				sw.writeAt(stateBuf, (db.N-1-v)*int64(stride))
				return out
			})
		if err != nil {
			return err
		}
		if werr == nil {
			werr = sw.flush()
		}
		if werr != nil {
			if errors.Is(werr, errStateWidth) {
				return werr
			}
			return fmt.Errorf("core: chunk [%d,%d): %w", x.Root, x.End(), werr)
		}
		rootVecs[i] = rootVec
		statsMu.Lock()
		phase1.Merge(storage.ScanStats{Bytes: st.Bytes, SkippedBytes: st.SkippedBytes + skipped, MaxStack: st.MaxStack, PhysicalBytes: st.PhysicalBytes})
		statsMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, agg, nil, err
	}

	// Leader glue scan, reverse preorder over everything outside the
	// chunks, with each chunk standing in as one already-folded subtree.
	lw := &runWriter{f: stateF}
	gi := len(gaps) - 1
	var auxBack *storage.BackwardReader
	defer func() {
		if auxBack != nil {
			auxBack.Release()
		}
	}()
	mi := len(leaderSkip) - 1
	var leaderSkipped int64
	stateBuf := make([]byte, stride)
	var free [][]StateID
	var werr error
	rootVec, scan1, err := storage.FoldBottomUpSkipping(ctx, db, leaderSkip,
		func(x storage.Extent) ([]StateID, error) {
			ti := taskOf[mi]
			mi--
			if ti < 0 {
				leaderSkipped += x.Size * storage.NodeSize
				return plan.SubVec(), nil
			}
			// Hand the fold a copy: the original must survive for phase 2,
			// but the fold recycles child vectors freely.
			return append([]StateID(nil), rootVecs[ti]...), nil
		},
		func(first, second *[]StateID, rec storage.Record, v int64) []StateID {
			if auxF != nil {
				for gi >= 0 && v < gaps[gi].Root {
					gi--
				}
				if gi < 0 {
					if werr == nil {
						werr = fmt.Errorf("core: glue scan lost its gap at node %d", v)
					}
				} else if g := gaps[gi]; v == g.End()-1 {
					if auxBack != nil {
						auxBack.Release()
					}
					var err error
					auxBack, err = storage.MaskBackward(auxF, g.Root, g.End(), opts.AuxInStride)
					if err != nil && werr == nil {
						werr = err
					}
				}
			}
			out := takeVec(&free, first, second, nm)
			var auxVec []byte
			if auxBack != nil {
				b, err := auxBack.Next()
				if err != nil && werr == nil {
					werr = fmt.Errorf("core: reading aux file: %w", err)
				} else if err == nil {
					auxVec = b
				}
			}
			buVec(leader, first, second, rec, v, auxVec, out, stateBuf, &werr)
			lw.writeAt(stateBuf, (db.N-1-v)*int64(stride))
			return out
		})
	if err != nil {
		return nil, agg, nil, err
	}
	if werr == nil {
		werr = lw.flush()
	}
	if werr != nil {
		if errors.Is(werr, errStateWidth) {
			return nil, agg, nil, werr
		}
		return nil, agg, nil, fmt.Errorf("core: writing state file: %w", werr)
	}
	scan1.SkippedBytes += leaderSkipped
	scan1.Merge(phase1)
	ds.Phase1 = scan1
	agg.Phase1Time = time.Since(start)

	// Phase 2, leader first: forward over the glue, assigning each chunk
	// root its top-down entry vector.
	start = time.Now()
	succeeded := false
	var auxOutF *os.File
	if opts.AuxOut != "" {
		auxOutF, err = os.Create(opts.AuxOut)
		if err != nil {
			return nil, agg, nil, err
		}
		defer func() {
			auxOutF.Close()
			if !succeeded {
				os.Remove(opts.AuxOut)
			}
		}()
	}
	strideOut := storage.MaskStride(opts.AuxOutStride)

	tdRoots := make([][]StateID, len(tasks))
	mi = 0
	gi = 0
	var leaderSkipped2 int64
	var stateBack *storage.BackwardReader
	defer func() {
		if stateBack != nil {
			stateBack.Release()
		}
	}()
	var auxFwd *bufio.Reader
	auxOut := &runWriter{f: auxOutF}
	newGapReaders := func(v int64) error {
		for gi < len(gaps) && v >= gaps[gi].End() {
			gi++
		}
		if gi >= len(gaps) || v != gaps[gi].Root {
			return fmt.Errorf("core: glue scan lost its gap at node %d", v)
		}
		g := gaps[gi]
		if stateBack != nil {
			stateBack.Release()
		}
		var err error
		stateBack, err = storage.NewBackwardSectionReader(stateF, (db.N-g.End())*int64(stride), (db.N-g.Root)*int64(stride), stride)
		if err != nil {
			return err
		}
		if auxF != nil {
			auxFwd = storage.MaskForward(auxF, g.Root, g.End(), opts.AuxInStride)
		}
		return nil
	}
	var arena [][]StateID
	atDepth := func(d int32) []StateID {
		for int(d) >= len(arena) {
			arena = append(arena, make([]StateID, nm))
		}
		return arena[d]
	}
	inVec := make([]byte, storage.MaskStride(opts.AuxInStride))
	outVec := make([]byte, strideOut)
	nextGapNode := int64(-1)
	scan2, err := storage.ScanTopDownSkipping(ctx, db, leaderSkip,
		func(x storage.Extent, parent *int32, k int) error {
			ti := taskOf[mi]
			mi++
			if ti < 0 {
				// Pruned hole: no entry vector, no state-file slice; only
				// the (all-zero) aux slots of its nodes.
				leaderSkipped2 += x.Size * storage.NodeSize
				if auxOutF != nil {
					writeZeroMasksAt(auxOut, x.Root*strideOut, x.Size*strideOut)
				}
				return nil
			}
			entry := make([]StateID, nm)
			for m := range members {
				bu := rootVecs[ti][m]
				if parent == nil {
					if x.Root != 0 {
						return fmt.Errorf("core: parentless chunk at node %d", x.Root)
					}
					entry[m] = leader[m].RootTrueSet(bu)
				} else {
					entry[m] = leader[m].TDStep(arena[*parent][m], bu, k)
				}
			}
			tdRoots[ti] = entry
			return nil
		},
		func(v int64, rec storage.Record, parent *int32, k int) (int32, error) {
			if v != nextGapNode {
				if err := newGapReaders(v); err != nil {
					return 0, err
				}
			}
			nextGapNode = v + 1
			b, err := stateBack.Next()
			if err != nil {
				return 0, fmt.Errorf("core: reading state file: %w", err)
			}
			var d int32
			var pvec []StateID
			if parent == nil {
				if v != 0 {
					return 0, fmt.Errorf("core: parentless node %d", v)
				}
			} else {
				d = *parent + 1
				pvec = arena[*parent]
			}
			tvec := atDepth(d)
			if auxFwd != nil {
				if _, err := io.ReadFull(auxFwd, inVec); err != nil {
					return 0, fmt.Errorf("core: reading aux file: %w", err)
				}
			}
			if auxOutF != nil {
				for i := range outVec {
					outVec[i] = 0
				}
			}
			for m, bm := range members {
				bu := getState(b[m*width:], width)
				c := leader[m]
				var td StateID
				if parent == nil {
					if bu != rootVec[m] {
						return 0, fmt.Errorf("core: state file corrupt: root state %d, phase 1 computed %d", bu, rootVec[m])
					}
					td = c.RootTrueSet(bu)
				} else {
					td = c.TDStep(pvec[m], bu, k)
				}
				tvec[m] = td
				mask := c.QueryMask(td)
				if mask != 0 {
					// Workers are not running yet: marking needs no lock.
					res[m].MarkMask(mask, v)
				}
				if auxOutF != nil && bm.AuxOutSlot >= 0 {
					var cur uint16
					if auxFwd != nil && bm.AuxInSlot >= 0 {
						cur = binary.BigEndian.Uint16(inVec[bm.AuxInSlot*storage.MaskSize:])
					}
					if mask&(1<<uint(bm.AuxOutQuery)) != 0 {
						cur |= 1 << bm.AuxOutBit
					}
					binary.BigEndian.PutUint16(outVec[bm.AuxOutSlot*storage.MaskSize:], cur)
				}
			}
			if auxOutF != nil {
				auxOut.writeAt(outVec, v*strideOut)
			}
			return d, nil
		})
	if err != nil {
		return nil, agg, nil, err
	}

	// Phase 2, workers: descend into the chunks from their entry vectors,
	// accumulating marks in private per-chunk bitsets per member.
	err = RunPool(ctx, workers, len(tasks), func(worker, i int) error {
		x := tasks[i]
		cs := caches[worker]
		stateBack, err := storage.NewBackwardSectionReader(stateF, (db.N-x.End())*int64(stride), (db.N-x.Root)*int64(stride), stride)
		if err != nil {
			return err
		}
		defer stateBack.Release()
		var auxFwd *bufio.Reader
		if auxF != nil {
			auxFwd = storage.MaskForward(auxF, x.Root, x.End(), opts.AuxInStride)
		}
		var auxOut *bufio.Writer
		if auxOutF != nil {
			auxOut = bufio.NewWriterSize(io.NewOffsetWriter(auxOutF, x.Root*strideOut), 1<<16)
		}
		w0 := x.Root / 64
		words := (x.End()-1)/64 - w0 + 1
		local := make([][][]uint64, nm)
		for m := range local {
			local[m] = make([][]uint64, len(res[m].queries))
			for qi := range local[m] {
				local[m][qi] = make([]uint64, words)
			}
		}
		var arena [][]StateID
		atDepth := func(d int32) []StateID {
			for int(d) >= len(arena) {
				arena = append(arena, make([]StateID, nm))
			}
			return arena[d]
		}
		inVec := make([]byte, storage.MaskStride(opts.AuxInStride))
		outVec := make([]byte, strideOut)
		var skipped int64
		st, err := storage.ScanTopDownRangeSkipping(ctx, db, x, inner[i], func(sub storage.Extent, parent *int32, k int) error {
			if err := stateBack.Skip(sub.Size); err != nil {
				return err
			}
			skipped += sub.Size * storage.NodeSize
			if auxOut != nil {
				if err := writeZeros(auxOut, sub.Size*strideOut); err != nil {
					return err
				}
			}
			return nil
		}, func(v int64, rec storage.Record, parent *int32, k int) (int32, error) {
			b, err := stateBack.Next()
			if err != nil {
				return 0, fmt.Errorf("core: reading state file: %w", err)
			}
			var d int32
			var pvec []StateID
			if parent != nil {
				d = *parent + 1
				pvec = arena[*parent]
			}
			tvec := atDepth(d)
			if auxFwd != nil {
				if _, err := io.ReadFull(auxFwd, inVec); err != nil {
					return 0, fmt.Errorf("core: reading aux file: %w", err)
				}
			}
			if auxOut != nil {
				for i := range outVec {
					outVec[i] = 0
				}
			}
			for m, bm := range members {
				bu := getState(b[m*width:], width)
				c := cs[m]
				var td StateID
				if parent == nil {
					// Chunk root: phase 1 of this very chunk computed its
					// state, so a mismatch means the file changed under us.
					if bu != rootVecs[i][m] {
						return 0, fmt.Errorf("core: state file corrupt: chunk root state %d, phase 1 computed %d", bu, rootVecs[i][m])
					}
					td = tdRoots[i][m]
				} else {
					td = c.TDStep(pvec[m], bu, k)
				}
				tvec[m] = td
				mask := c.QueryMask(td)
				for mm, qi := mask, 0; mm != 0; qi++ {
					if mm&1 != 0 {
						local[m][qi][v/64-w0] |= 1 << uint(v%64)
					}
					mm >>= 1
				}
				if auxOut != nil && bm.AuxOutSlot >= 0 {
					var cur uint16
					if auxFwd != nil && bm.AuxInSlot >= 0 {
						cur = binary.BigEndian.Uint16(inVec[bm.AuxInSlot*storage.MaskSize:])
					}
					if mask&(1<<uint(bm.AuxOutQuery)) != 0 {
						cur |= 1 << bm.AuxOutBit
					}
					binary.BigEndian.PutUint16(outVec[bm.AuxOutSlot*storage.MaskSize:], cur)
				}
			}
			if auxOut != nil {
				if _, err := auxOut.Write(outVec); err != nil {
					return 0, err
				}
			}
			return d, nil
		})
		if err != nil {
			return err
		}
		if auxOut != nil {
			if err := auxOut.Flush(); err != nil {
				return err
			}
		}
		for m := range local {
			for qi := range local[m] {
				res[m].MergeWords(qi, w0, local[m][qi])
			}
		}
		statsMu.Lock()
		scan2.Merge(storage.ScanStats{Bytes: st.Bytes, SkippedBytes: st.SkippedBytes + skipped, MaxStack: st.MaxStack, PhysicalBytes: st.PhysicalBytes})
		statsMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, agg, nil, err
	}
	if werr := auxOut.flush(); werr != nil {
		return nil, agg, nil, werr
	}
	if auxOutF != nil {
		if err := auxOutF.Close(); err != nil {
			return nil, agg, nil, err
		}
	}
	scan2.SkippedBytes += leaderSkipped2
	ds.Phase2 = scan2
	agg.Phase2Time = time.Since(start)
	// Count node visits only on success: a narrow-width restart re-enters
	// this function and must not double-count the aborted attempt.
	for _, bm := range members {
		bm.E.AddNodes(db.N)
		opts.Run.AddNodes(db.N)
		if plan != nil {
			bm.E.AddPrunedNodes(plan.Nodes)
			opts.Run.AddPrunedNodes(plan.Nodes)
		}
	}
	succeeded = true
	return res, agg, ds, nil
}

// takeVec hands the bottom-up fold an output vector, recycling popped
// child vectors so allocation stays bounded by the scan stack depth.
func takeVec(free *[][]StateID, first, second *[]StateID, nm int) []StateID {
	switch {
	case first != nil:
		if second != nil {
			*free = append(*free, *second)
		}
		return *first
	case second != nil:
		return *second
	default:
		if k := len(*free); k > 0 {
			out := (*free)[k-1]
			*free = (*free)[:k-1]
			return out
		}
		return make([]StateID, nm)
	}
}
