package core

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"arb/internal/edb"
	"arb/internal/storage"
	"arb/internal/tree"
)

// Tuning knobs for the parallel frontier cut. Variables (not constants)
// so the package tests can exercise the full parallel machinery on small
// trees.
var (
	// parMinNodes is the database size below which RunDiskParallelContext
	// delegates to the sequential scans — coordination would cost more
	// than it buys.
	parMinNodes int64 = 1 << 15
	// parMinTask is the smallest subtree worth dispatching as its own
	// chunk; smaller subtrees stay in the leader's glue scan.
	parMinTask int64 = 1 << 12
	// parTasksPerWorker oversizes the frontier so the pool stays busy
	// when chunks finish at different speeds.
	parTasksPerWorker int64 = 4
)

// RunDiskParallelContext evaluates the engine's program over a .arb
// database in secondary storage with a pool of workers, preserving
// RunDiskContext's structure and invariants: phase 1 is one backward
// scan's worth of I/O streaming every node's bottom-up state to the state
// file, phase 2 one forward scan's worth computing the true predicates;
// memory per worker stays bounded by the document depth (plus the shared
// automata); and the selected-node results are identical to
// RunDiskContext's.
//
// Parallelism comes from the preorder layout (Sections 6.2/7 of the
// paper): every subtree is one contiguous byte range, so the database's
// subtree index cuts the file into a frontier of chunks that workers
// stream independently — each through its own buffered reader, writing
// its slice of the state file at its own offset — while the leader scans
// the glue between chunks. The lazily-computed automata are shared
// through the engine's SharedEngine, so transitions computed by one
// worker are reused by all; on balanced trees (ACGT-infix) the phases
// divide evenly, while on degenerate right-deep trees (ACGT-flat) the
// frontier collapses and evaluation degrades toward sequential.
//
// workers <= 0 uses GOMAXPROCS. Runs that stream marked XML (MarkTo) are
// inherently order-dependent and fall back to the sequential path, as do
// databases too small to be worth coordinating. Cancelling ctx aborts
// all workers' scans with ctx.Err() and removes the temporary state file
// and any partially written AuxOut sidecar.
func (e *Engine) RunDiskParallelContext(ctx context.Context, db *storage.DB, workers int, opts DiskOpts) (*Result, *DiskStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || db.N < parMinNodes || opts.MarkTo != nil {
		return e.RunDiskContext(ctx, db, opts)
	}
	if db.N == 0 {
		return nil, nil, errors.New("core: empty database")
	}
	if e.names != db.Names {
		return nil, nil, errors.New("core: engine name table does not match database")
	}
	idx, err := db.Index(ctx, 0)
	if err != nil {
		return nil, nil, err
	}
	target := db.N / (int64(workers) * parTasksPerWorker)
	attempt := func(idx *storage.SubtreeIndex) (*Result, *DiskStats, error, bool) {
		tasks := idx.Cut(target, parMinTask)
		if len(tasks) == 0 {
			r, d, err := e.RunDiskContext(ctx, db, opts)
			return r, d, err, false
		}
		var plan *PrunePlan
		if !opts.NoPrune && opts.AuxIn == "" && !opts.KeepStateFile && opts.StatePath == "" {
			plan = PlanPrune([]*Engine{e}, idx, db.N)
		}
		r, d, err := e.runDiskChunked(ctx, db, workers, opts, tasks, plan)
		return r, d, err, true
	}
	res, ds, err, chunked := attempt(idx)
	if chunked && err != nil && errors.Is(err, storage.ErrBadExtent) {
		// A stale or foreign .idx sidecar (e.g. the .arb was replaced
		// out-of-band by one of equal size) cut extents that don't match
		// the data. Rebuild the index from the file and retry once; a
		// genuinely malformed database fails the rebuild scan instead.
		idx, rerr := db.RebuildIndex(ctx, 0)
		if rerr != nil {
			return nil, nil, rerr
		}
		res, ds, err, _ = attempt(idx)
	}
	return res, ds, err
}

// runDiskChunked is one attempt at chunk-parallel evaluation over a
// frontier cut; RunDiskParallel wraps it with the stale-index retry.
// When a prune plan is given, tasks swallowed by a pruned extent never
// run, workers seek past pruned extents inside their own chunks, and the
// leader's glue scan skips the remaining pruned holes.
func (e *Engine) runDiskChunked(ctx context.Context, db *storage.DB, workers int, opts DiskOpts, tasks []storage.Extent, plan *PrunePlan) (*Result, *DiskStats, error) {
	var planExts []storage.Extent
	if plan != nil {
		planExts = plan.Extents
	}
	tasks, inner, outer := SplitPrune(tasks, planExts)
	if len(tasks) == 0 {
		// Everything splittable was pruned away; the sequential path
		// handles the remainder (and prunes the same extents itself).
		return e.RunDiskContext(ctx, db, opts)
	}
	leaderSkip, taskOf := mergeSkipLists(tasks, outer)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	gaps := gapsOf(db.N, leaderSkip)

	res := NewResult(e.c.Prog, db.N)
	ds := &DiskStats{StateBytes: db.N * stateIDSize}
	e.AddNodes(db.N)
	opts.Run.AddNodes(db.N)
	s := e.ShareTo(opts.Run)

	var err error
	var auxF *os.File
	if opts.AuxIn != "" {
		auxF, err = os.Open(opts.AuxIn)
		if err != nil {
			return nil, nil, err
		}
		defer auxF.Close()
		st, err := auxF.Stat()
		if err != nil {
			return nil, nil, err
		}
		if st.Size() != db.N*auxMaskSize {
			return nil, nil, fmt.Errorf("core: aux file %s has %d bytes for %d nodes", opts.AuxIn, st.Size(), db.N)
		}
	}

	stateF, statePath, err := createStateFile(db, opts)
	if err != nil {
		return nil, nil, err
	}
	succeeded := false
	defer func() {
		stateF.Close()
		if !opts.KeepStateFile || !succeeded {
			os.Remove(statePath)
		}
	}()

	// Per-worker transition caches, reused across both phases.
	caches := make([]*TxCache, workers)
	for i := range caches {
		caches[i] = s.NewCache()
	}
	leaderCache := s.NewCache()

	// Phase 1: workers fold their chunks bottom-up — each streaming its
	// own byte range backwards and pwriting its slice of the state file —
	// then the leader folds the glue, consuming chunk root states.
	start := time.Now()
	rootStates := make([]StateID, len(tasks))
	var statsMu sync.Mutex
	var phase1 storage.ScanStats // guarded by: statsMu
	err = RunPool(ctx, workers, len(tasks), func(worker, i int) error {
		x := tasks[i]
		cache := caches[worker]
		// Absolute reverse-preorder offsets; in-chunk pruned extents are
		// holes the run-batched writer jumps over.
		sw := &runWriter{f: stateF}
		var auxBack *storage.BackwardReader
		if auxF != nil {
			var err error
			auxBack, err = storage.NewBackwardSectionReader(auxF, x.Root*auxMaskSize, x.End()*auxMaskSize, auxMaskSize)
			if err != nil {
				return err
			}
			defer auxBack.Release()
		}
		var skipped int64
		var werr error
		rootState, st, err := storage.FoldBottomUpRangeSkipping(ctx, db, x, inner[i],
			func(sub storage.Extent) (StateID, error) {
				skipped += sub.Size * storage.NodeSize
				return plan.Sub(0), nil
			},
			func(first, second *StateID, rec storage.Record, v int64) StateID {
				id := buStep(cache, first, second, rec, v, auxBack, &werr)
				var buf [stateIDSize]byte
				binary.BigEndian.PutUint32(buf[:], uint32(id))
				sw.writeAt(buf[:], (db.N-1-v)*stateIDSize)
				return id
			})
		if err != nil {
			return err
		}
		if werr == nil {
			werr = sw.flush()
		}
		if werr != nil {
			return fmt.Errorf("core: chunk [%d,%d): %w", x.Root, x.End(), werr)
		}
		rootStates[i] = rootState
		statsMu.Lock()
		// Nodes are counted once by the leader's skipping fold (a chunk
		// stands in as one already-folded subtree there), so workers merge
		// only their byte and stack columns.
		phase1.Merge(storage.ScanStats{Bytes: st.Bytes, SkippedBytes: st.SkippedBytes + skipped, MaxStack: st.MaxStack, PhysicalBytes: st.PhysicalBytes})
		statsMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Leader glue scan: reverse preorder over everything outside the
	// chunks, with each chunk standing in as one already-folded subtree
	// and each leader-level pruned extent as the substitute state.
	lw := &runWriter{f: stateF}
	gi := len(gaps) - 1
	var auxBack *storage.BackwardReader
	mi := len(leaderSkip) - 1
	var leaderSkipped int64
	var werr error
	rootState, scan1, err := storage.FoldBottomUpSkipping(ctx, db, leaderSkip,
		func(x storage.Extent) (StateID, error) {
			ti := taskOf[mi]
			mi--
			if ti < 0 {
				leaderSkipped += x.Size * storage.NodeSize
				return plan.Sub(0), nil
			}
			return rootStates[ti], nil
		},
		func(first, second *StateID, rec storage.Record, v int64) StateID {
			if auxF != nil {
				for gi >= 0 && v < gaps[gi].Root {
					gi--
				}
				if gi < 0 {
					if werr == nil {
						werr = fmt.Errorf("core: glue scan lost its gap at node %d", v)
					}
				} else if g := gaps[gi]; v == g.End()-1 {
					// First (highest) node of a new gap: open its slice
					// of the aux file.
					var err error
					auxBack, err = storage.NewBackwardSectionReader(auxF, g.Root*auxMaskSize, g.End()*auxMaskSize, auxMaskSize)
					if err != nil && werr == nil {
						werr = err
					}
				}
			}
			id := buStep(leaderCache, first, second, rec, v, auxBack, &werr)
			var buf [stateIDSize]byte
			binary.BigEndian.PutUint32(buf[:], uint32(id))
			lw.writeAt(buf[:], (db.N-1-v)*stateIDSize)
			return id
		})
	if err != nil {
		return nil, nil, err
	}
	if werr == nil {
		werr = lw.flush()
	}
	if werr != nil {
		return nil, nil, fmt.Errorf("core: writing state file: %w", werr)
	}
	scan1.SkippedBytes += leaderSkipped
	scan1.Merge(phase1)
	ds.Phase1 = scan1
	phase1Time := time.Since(start)

	// Phase 2, leader first: forward over the glue, reading the state
	// file backwards per gap (which yields the glue's phase-1 states in
	// preorder), assigning each chunk root its top-down entry state.
	start = time.Now()
	var auxOutF *os.File
	if opts.AuxOut != "" {
		auxOutF, err = os.Create(opts.AuxOut)
		if err != nil {
			return nil, nil, err
		}
		defer func() {
			auxOutF.Close()
			if !succeeded {
				// A failed or cancelled run must not leave a partial
				// sidecar behind for a later pass to trust.
				os.Remove(opts.AuxOut)
			}
		}()
	}
	outBit := uint16(1) << opts.AuxOutBit
	queryBit := uint64(1) << uint(opts.AuxOutQuery)

	tdRoots := make([]StateID, len(tasks))
	mi = 0
	gi = 0
	var leaderSkipped2 int64
	var stateBack *storage.BackwardReader
	defer func() {
		if stateBack != nil {
			stateBack.Release()
		}
	}()
	var auxFwd *bufio.Reader
	auxOut := &runWriter{f: auxOutF}
	newGapReaders := func(v int64) error {
		for gi < len(gaps) && v >= gaps[gi].End() {
			gi++
		}
		if gi >= len(gaps) || v != gaps[gi].Root {
			return fmt.Errorf("core: glue scan lost its gap at node %d", v)
		}
		g := gaps[gi]
		if stateBack != nil {
			stateBack.Release()
		}
		var err error
		stateBack, err = storage.NewBackwardSectionReader(stateF, (db.N-g.End())*stateIDSize, (db.N-g.Root)*stateIDSize, stateIDSize)
		if err != nil {
			return err
		}
		if auxF != nil {
			auxFwd = bufio.NewReaderSize(io.NewSectionReader(auxF, g.Root*auxMaskSize, g.Size*auxMaskSize), 1<<16)
		}
		return nil
	}
	nextGapNode := int64(-1) // first unvisited node of the current gap
	scan2, err := storage.ScanTopDownSkipping(ctx, db, leaderSkip,
		func(x storage.Extent, parent *StateID, k int) error {
			ti := taskOf[mi]
			mi++
			if ti < 0 {
				// Pruned hole: provably selection-free, so there is no
				// entry state to compute and no state-file slice to read —
				// only the aux slots (zero: nothing selected, no input).
				leaderSkipped2 += x.Size * storage.NodeSize
				if auxOutF != nil {
					writeZeroMasksAt(auxOut, x.Root*auxMaskSize, x.Size*auxMaskSize)
				}
				return nil
			}
			bu := rootStates[ti]
			var td StateID
			if parent == nil {
				if x.Root != 0 {
					return fmt.Errorf("core: parentless chunk at node %d", x.Root)
				}
				td = leaderCache.RootTrueSet(bu)
			} else {
				td = leaderCache.TruePreds(*parent, bu, k)
			}
			tdRoots[ti] = td
			return nil
		},
		func(v int64, rec storage.Record, parent *StateID, k int) (StateID, error) {
			if v != nextGapNode {
				if err := newGapReaders(v); err != nil {
					return NoState, err
				}
			}
			nextGapNode = v + 1
			b, err := stateBack.Next()
			if err != nil {
				return NoState, fmt.Errorf("core: reading state file: %w", err)
			}
			bu := StateID(binary.BigEndian.Uint32(b))
			var td StateID
			if parent == nil {
				if v != 0 {
					return NoState, fmt.Errorf("core: parentless node %d", v)
				}
				if bu != rootState {
					return NoState, fmt.Errorf("core: state file corrupt: root state %d, phase 1 computed %d", bu, rootState)
				}
				td = leaderCache.RootTrueSet(bu)
			} else {
				td = leaderCache.TruePreds(*parent, bu, k)
			}
			mask := leaderCache.QueryMask(td)
			if mask != 0 {
				// Workers are not running yet: marking needs no lock.
				res.MarkMask(mask, v)
			}
			if auxOutF != nil {
				var cur uint16
				if auxFwd != nil {
					var ab [auxMaskSize]byte
					if _, err := io.ReadFull(auxFwd, ab[:]); err != nil {
						return NoState, fmt.Errorf("core: reading aux file: %w", err)
					}
					cur = binary.BigEndian.Uint16(ab[:])
				}
				if mask&queryBit != 0 {
					cur |= outBit
				}
				var ab [auxMaskSize]byte
				binary.BigEndian.PutUint16(ab[:], cur)
				auxOut.writeAt(ab[:], v*auxMaskSize)
			}
			return td, nil
		})
	if err != nil {
		return nil, nil, err
	}

	// Phase 2, workers: descend into the chunks from their entry states,
	// reading each chunk's state-file slice backwards and accumulating
	// marks in private per-chunk bitsets merged under the result's lock.
	nq := len(res.queries)
	err = RunPool(ctx, workers, len(tasks), func(worker, i int) error {
		x := tasks[i]
		cache := caches[worker]
		stateBack, err := storage.NewBackwardSectionReader(stateF, (db.N-x.End())*stateIDSize, (db.N-x.Root)*stateIDSize, stateIDSize)
		if err != nil {
			return err
		}
		defer stateBack.Release()
		var auxFwd *bufio.Reader
		if auxF != nil {
			auxFwd = bufio.NewReaderSize(io.NewSectionReader(auxF, x.Root*auxMaskSize, x.Size*auxMaskSize), 1<<16)
		}
		var auxOut *bufio.Writer
		if auxOutF != nil {
			auxOut = bufio.NewWriterSize(io.NewOffsetWriter(auxOutF, x.Root*auxMaskSize), 1<<16)
		}
		w0 := x.Root / 64
		local := make([][]uint64, nq)
		words := (x.End()-1)/64 - w0 + 1
		for qi := range local {
			local[qi] = make([]uint64, words)
		}
		var skipped int64
		st, err := storage.ScanTopDownRangeSkipping(ctx, db, x, inner[i], func(sub storage.Extent, parent *StateID, k int) error {
			if err := stateBack.Skip(sub.Size); err != nil {
				return err
			}
			skipped += sub.Size * storage.NodeSize
			if auxOut != nil {
				if err := writeZeros(auxOut, sub.Size*auxMaskSize); err != nil {
					return err
				}
			}
			return nil
		}, func(v int64, rec storage.Record, parent *StateID, k int) (StateID, error) {
			b, err := stateBack.Next()
			if err != nil {
				return NoState, fmt.Errorf("core: reading state file: %w", err)
			}
			bu := StateID(binary.BigEndian.Uint32(b))
			var td StateID
			if parent == nil {
				// Chunk root: phase 1 of this very chunk computed its
				// state, so a mismatch means the file changed under us.
				if bu != rootStates[i] {
					return NoState, fmt.Errorf("core: state file corrupt: chunk root state %d, phase 1 computed %d", bu, rootStates[i])
				}
				td = tdRoots[i]
			} else {
				td = cache.TruePreds(*parent, bu, k)
			}
			mask := cache.QueryMask(td)
			for m, qi := mask, 0; m != 0; qi++ {
				if m&1 != 0 {
					local[qi][v/64-w0] |= 1 << uint(v%64)
				}
				m >>= 1
			}
			if auxOut != nil {
				var cur uint16
				if auxFwd != nil {
					var ab [auxMaskSize]byte
					if _, err := io.ReadFull(auxFwd, ab[:]); err != nil {
						return NoState, fmt.Errorf("core: reading aux file: %w", err)
					}
					cur = binary.BigEndian.Uint16(ab[:])
				}
				if mask&queryBit != 0 {
					cur |= outBit
				}
				var ab [auxMaskSize]byte
				binary.BigEndian.PutUint16(ab[:], cur)
				if _, err := auxOut.Write(ab[:]); err != nil {
					return NoState, err
				}
			}
			return td, nil
		})
		if err != nil {
			return err
		}
		if auxOut != nil {
			if err := auxOut.Flush(); err != nil {
				return err
			}
		}
		for qi := range local {
			res.MergeWords(qi, w0, local[qi])
		}
		statsMu.Lock()
		scan2.Merge(storage.ScanStats{Bytes: st.Bytes, SkippedBytes: st.SkippedBytes + skipped, MaxStack: st.MaxStack, PhysicalBytes: st.PhysicalBytes})
		statsMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if werr := auxOut.flush(); werr != nil {
		return nil, nil, werr
	}
	if auxOutF != nil {
		if err := auxOutF.Close(); err != nil {
			return nil, nil, err
		}
	}
	scan2.SkippedBytes += leaderSkipped2
	ds.Phase2 = scan2
	phase2 := time.Since(start)
	e.addPhaseTimes(phase1Time, phase2)
	opts.Run.AddPhaseTimes(phase1Time, phase2)
	// Count pruned nodes only on success: the stale-index retry re-enters
	// this function and must not double-count the aborted attempt's plan.
	if plan != nil {
		e.AddPrunedNodes(plan.Nodes)
		opts.Run.AddPrunedNodes(plan.Nodes)
	}
	if opts.KeepStateFile {
		res.StateFile = statePath
	}
	succeeded = true
	return res, ds, nil
}

// buStep performs one bottom-up transition from a scan record, optionally
// consuming one auxiliary mask from auxBack.
func buStep(cache *TxCache, first, second *StateID, rec storage.Record, v int64, auxBack *storage.BackwardReader, werr *error) StateID {
	left, right := NoState, NoState
	if first != nil {
		left = *first
	}
	if second != nil {
		right = *second
	}
	sig := edb.NodeSig{
		Label:     tree.Label(rec.Label),
		HasFirst:  rec.HasFirst,
		HasSecond: rec.HasSecond,
		IsRoot:    v == 0,
	}
	if auxBack != nil {
		b, err := auxBack.Next()
		if err != nil && *werr == nil {
			*werr = fmt.Errorf("core: reading aux file: %w", err)
		} else if err == nil {
			sig.Extra = binary.BigEndian.Uint16(b)
		}
	}
	return cache.ReachableStates(left, right, sig)
}

// gapsOf returns the complement of the (sorted, disjoint) task extents
// within [0, n) — the glue the leader scans itself.
func gapsOf(n int64, tasks []storage.Extent) []storage.Extent {
	var gaps []storage.Extent
	cur := int64(0)
	for _, t := range tasks {
		if t.Root > cur {
			gaps = append(gaps, storage.Extent{Root: cur, Size: t.Root - cur})
		}
		cur = t.End()
	}
	if cur < n {
		gaps = append(gaps, storage.Extent{Root: cur, Size: n - cur})
	}
	return gaps
}

// RunPool fans n task indices out over a worker pool, stopping at the
// first error or when ctx is cancelled (in which case it reports
// ctx.Err() unless a task failed first). run receives the worker id so
// callers can give each goroutine private caches; it is shared with
// internal/parallel.
func RunPool(ctx context.Context, workers, n int, run func(worker, i int) error) error {
	if workers > n {
		workers = n
	}
	ch := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range ch {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop || ctx.Err() != nil {
					continue
				}
				if err := run(worker, i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// runWriter buffers WriteAt output that arrives in ascending runs with
// occasional jumps (the leader's scattered glue writes): contiguous bytes
// are batched through one buffered writer, and a jump flushes and
// restarts at the new offset. A nil file makes it a no-op sink.
type runWriter struct {
	f    *os.File
	w    *bufio.Writer
	next int64
	err  error
}

func (rw *runWriter) writeAt(p []byte, off int64) {
	if rw.f == nil || rw.err != nil {
		return
	}
	if rw.w == nil || off != rw.next {
		if rw.w != nil {
			if err := rw.w.Flush(); err != nil {
				rw.err = err
				return
			}
		}
		rw.w = bufio.NewWriterSize(io.NewOffsetWriter(rw.f, off), 1<<16)
		rw.next = off
	}
	if _, err := rw.w.Write(p); err != nil {
		rw.err = err
		return
	}
	rw.next = off + int64(len(p))
}

func (rw *runWriter) flush() error {
	if rw.err == nil && rw.w != nil {
		rw.err = rw.w.Flush()
	}
	return rw.err
}
