package core

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"arb/internal/naive"
	"arb/internal/storage"
	"arb/internal/testutil"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// batchEngines compiles count random programs into fresh engines plus the
// parallel scalar results to compare against.
func batchPrograms(t *testing.T, rng *rand.Rand, count int) []*tmnf.Program {
	t.Helper()
	progs := make([]*tmnf.Program, count)
	for i := range progs {
		progs[i] = testutil.RandomProgramParsed(rng, 3, 6)
	}
	return progs
}

func batchMembers(t *testing.T, progs []*tmnf.Program, names *tree.Names) []BatchMember {
	t.Helper()
	members := make([]BatchMember, len(progs))
	for i, prog := range progs {
		c, err := Compile(prog)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = BatchMember{E: NewEngine(c, names), AuxInSlot: -1, AuxOutSlot: -1}
	}
	return members
}

// TestBatchMatchesScalarAndNaive is the core-level differential test: the
// three batch strategies select bit-identical nodes to per-program scalar
// runs and to the naive fixpoint oracle, on random trees and programs.
func TestBatchMatchesScalarAndNaive(t *testing.T) {
	lowerParallelKnobs(t)
	rng := rand.New(rand.NewSource(2024))
	ctx := context.Background()
	for iter := 0; iter < 12; iter++ {
		tr := testutil.RandomTree(rng, 400)
		progs := batchPrograms(t, rng, 3+rng.Intn(4))
		base := filepath.Join(t.TempDir(), "db")
		db, err := storage.CreateFromTree(base, tr)
		if err != nil {
			t.Fatal(err)
		}

		// Scalar reference runs, one engine per program.
		want := make([]*Result, len(progs))
		for i, prog := range progs {
			c, err := Compile(prog)
			if err != nil {
				t.Fatal(err)
			}
			want[i], err = NewEngine(c, db.Names).RunContext(ctx, tr, RunOpts{})
			if err != nil {
				t.Fatal(err)
			}
		}

		memRes, _, err := RunBatchTree(ctx, tr, batchMembers(t, progs, db.Names), TreeBatchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		diskRes, _, ds, err := RunDiskBatch(ctx, db, batchMembers(t, progs, db.Names), DiskBatchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		parRes, _, pds, err := RunDiskBatchParallel(ctx, db, 4, batchMembers(t, progs, db.Names), DiskBatchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for i, prog := range progs {
			sameResults(t, prog, tr.Len(), memRes[i], want[i], "batch-memory vs scalar")
			sameResults(t, prog, tr.Len(), diskRes[i], want[i], "batch-disk vs scalar")
			sameResults(t, prog, tr.Len(), parRes[i], want[i], "batch-parallel-disk vs scalar")
			oracle := naive.Evaluate(tr, prog)
			for _, q := range prog.Queries() {
				for v := 0; v < tr.Len(); v++ {
					if g, w := memRes[i].Holds(q, tree.NodeID(v)), oracle.Holds(q, tree.NodeID(v)); g != w {
						t.Fatalf("iter %d member %d: batch %s(%d)=%v, naive %v\nprogram:\n%s",
							iter, i, prog.PredName(q), v, g, w, prog)
					}
				}
			}
		}

		// One aggregate pair of linear scans for the whole batch, however
		// many members and workers: every .arb byte is read or
		// provably-irrelevant-and-skipped exactly once per phase.
		for name, d := range map[string]*DiskStats{"sequential": ds, "parallel": pds} {
			p1 := d.Phase1.Bytes + d.Phase1.SkippedBytes
			p2 := d.Phase2.Bytes + d.Phase2.SkippedBytes
			if p1 != db.N*storage.NodeSize || p2 != db.N*storage.NodeSize {
				t.Fatalf("iter %d %s: scans covered %d/%d bytes, want %d each",
					iter, name, p1, p2, db.N*storage.NodeSize)
			}
		}
		db.Close()
	}
}

// TestBatchWideStateFallback forces the narrow->wide state width restart
// and checks the run still agrees with the scalar result.
func TestBatchWideStateFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := testutil.RandomTree(rng, 300)
	prog := testutil.RandomProgramParsed(rng, 3, 6)
	base := filepath.Join(t.TempDir(), "db")
	db, err := storage.CreateFromTree(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewEngine(c, db.Names).RunContext(context.Background(), tr, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(c, db.Names)
	// An engine that already interned states near the 16-bit limit makes
	// batchStateWidth pick the wide layout up front.
	for len(e.buStates) < 1<<16-256 {
		e.buStates = append(e.buStates, nil)
	}
	members := []BatchMember{{E: e, AuxInSlot: -1, AuxOutSlot: -1}}
	if batchStateWidth(members) != stateWide {
		t.Fatal("padded engine did not select the wide state layout")
	}
	res, _, _, err := RunDiskBatch(context.Background(), db, members, DiskBatchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, prog, tr.Len(), res[0], want, "wide-state batch vs scalar")
}
