package core

import (
	"sync"
	"time"

	"arb/internal/edb"
	"arb/internal/horn"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// StateID identifies a state of the deterministic bottom-up automaton A (a
// canonical residual program) or of the top-down automaton B (a canonical
// set of true predicates). The pseudo-state ⊥ for non-existent children is
// NoState.
type StateID = int32

// NoState is the ⊥ pseudo-state.
const NoState StateID = -1

type buKey struct {
	left, right StateID
	sig         int32
}

type tdKey struct {
	parent StateID // top-down state of the parent (true-predicate set)
	resid  StateID // bottom-up state of the child (residual program)
	k      uint8   // 1 = first child, 2 = second child
}

// Stats reports the work done by an engine run; the fields mirror the
// columns of the paper's Figure 6.
type Stats struct {
	Phase1Time    time.Duration // bottom-up pass, column (4)
	Phase2Time    time.Duration // top-down pass, column (6)
	BUTransitions int           // lazily computed transitions of A, column (5)
	TDTransitions int           // lazily computed transitions of B, column (7)
	BUStates      int           // residual programs interned
	TDStates      int           // true-predicate sets interned
	Nodes         int64
	// PrunedNodes counts the nodes selectivity-aware pruning proved
	// irrelevant and seeked past (they are included in Nodes): the
	// engine's visible measure of how much of the document a query
	// actually needed, on every strategy including in-memory runs.
	PrunedNodes int64
}

// Add accumulates o into s (summing every column).
func (s *Stats) Add(o Stats) {
	s.Phase1Time += o.Phase1Time
	s.Phase2Time += o.Phase2Time
	s.BUTransitions += o.BUTransitions
	s.TDTransitions += o.TDTransitions
	s.BUStates += o.BUStates
	s.TDStates += o.TDStates
	s.Nodes += o.Nodes
	s.PrunedNodes += o.PrunedNodes
}

// Sub returns the column-wise difference s - o; with o a snapshot taken
// before a run, the result is the work of that run alone.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Phase1Time:    s.Phase1Time - o.Phase1Time,
		Phase2Time:    s.Phase2Time - o.Phase2Time,
		BUTransitions: s.BUTransitions - o.BUTransitions,
		TDTransitions: s.TDTransitions - o.TDTransitions,
		BUStates:      s.BUStates - o.BUStates,
		TDStates:      s.TDStates - o.TDStates,
		Nodes:         s.Nodes - o.Nodes,
		PrunedNodes:   s.PrunedNodes - o.PrunedNodes,
	}
}

// Engine evaluates one compiled TMNF program over any number of trees.
// As in the Arb system, it maintains four hash tables: states and
// transitions for each of the two automata; transition functions are
// computed lazily by ComputeReachableStates and ComputeTruePreds and are
// reused across nodes and across trees (footnote 15 of the paper).
//
// Concurrency: the engine's caches are guarded by one RWMutex, and every
// evaluation driver reaches them through a SharedEngine view (Share) or a
// per-run TxCache/BatchCache in front of one — so any number of runs of
// one engine may overlap, and transitions computed by one run serve all.
// The raw transition methods (ReachableStates, TruePreds, ...) do not
// lock; they are for callers that hold mu or own the engine exclusively.
type Engine struct {
	// mu guards every lazily grown table below. The raw interning and
	// transition methods declare the contract arblint:holds mu — they run
	// either under SharedEngine (which takes mu) or on an engine the
	// caller owns exclusively; lockdiscipline enforces the split.
	mu     sync.RWMutex
	c      *Compiled
	solver *horn.Solver

	// Bottom-up automaton A: states are canonical residual programs.
	buStates []*horn.Program    // guarded by: mu
	buIndex  map[string]StateID // guarded by: mu
	buTrans  map[buKey]StateID  // guarded by: mu

	// Node-signature interning; sig ids key the transition table and map
	// to precomputed EDB fact sets. Signatures with identical fact sets
	// share one id: the automaton alphabet is 2^sigma for the program's
	// own sigma (Definition 4.2), so all labels the program does not
	// mention collapse into one equivalence class.
	sigIndex  map[edb.NodeSig]int32 // guarded by: mu
	factIndex map[string]int32      // guarded by: mu
	sigFacts  [][]horn.Atom         // guarded by: mu

	// Top-down automaton B: states are canonical sorted sets of local
	// atoms (the predicates true at a node).
	tdStates [][]horn.Atom      // guarded by: mu
	tdIndex  map[string]StateID // guarded by: mu
	tdTrans  map[tdKey]StateID  // guarded by: mu
	// tdQuery caches, per top-down state, the bitmask of query predicates
	// it contains (bit i = Queries[i]).
	tdQuery []uint64 // guarded by: mu

	names *tree.Names

	stats Stats // guarded by: mu

	// prune caches the engine's selectivity analysis (prune.go), computed
	// once: live labels, the dead-subtree substitute state, and whether
	// pruning is admissible at all.
	prune *pruneAnalysis // guarded by: mu

	// sel caches the engine's label-determined selection summary
	// (selsum.go), computed once; ok=false records inadmissibility.
	sel *SelSummary // guarded by: mu

	// scratch rule buffer reused across transition computations
	ruleBuf []horn.Rule // guarded by: mu
}

// NewEngine returns an engine for the compiled program. The name table is
// needed to resolve Label[..] tests; it must match the databases the
// engine will be run on.
func NewEngine(c *Compiled, names *tree.Names) *Engine {
	return &Engine{
		c:         c,
		solver:    horn.NewSolver(c.U),
		buIndex:   make(map[string]StateID),
		buTrans:   make(map[buKey]StateID),
		sigIndex:  make(map[edb.NodeSig]int32),
		factIndex: make(map[string]int32),
		tdIndex:   make(map[string]StateID),
		tdTrans:   make(map[tdKey]StateID),
		names:     names,
	}
}

// Compiled returns the engine's compiled program.
func (e *Engine) Compiled() *Compiled { return e.c }

// Stats returns a snapshot of the statistics accumulated so far, across
// every run of the engine. Per-run attribution under overlapping
// executions goes through RunStats sinks (ShareTo and the drivers' Run
// options), not through deltas of this cumulative snapshot.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.stats
}

// ResetStats clears the accumulated statistics (the state and transition
// caches are kept).
func (e *Engine) ResetStats() {
	e.mu.Lock()
	e.stats = Stats{}
	e.mu.Unlock()
}

// AddNodes records n node visits in the engine's statistics; evaluators
// outside this package (the parallel batch runner) call it once up front
// because they only touch the engine through its SharedEngine afterwards.
func (e *Engine) AddNodes(n int64) {
	e.mu.Lock()
	e.stats.Nodes += n
	e.mu.Unlock()
}

// AddPrunedNodes records n pruned node visits (see Stats.PrunedNodes);
// the external parallel evaluators call it when they apply a prune plan.
func (e *Engine) AddPrunedNodes(n int64) {
	e.mu.Lock()
	e.stats.PrunedNodes += n
	e.mu.Unlock()
}

// addPhaseTimes folds one run's phase wall times into the engine's
// cumulative statistics.
func (e *Engine) addPhaseTimes(p1, p2 time.Duration) {
	e.mu.Lock()
	e.stats.Phase1Time += p1
	e.stats.Phase2Time += p2
	e.mu.Unlock()
}

// statsSnapshot reads the cumulative statistics without locking; the
// ShareTo slow paths bracket raw transition calls with it to compute
// exact per-call deltas.
//
// arblint:holds mu
func (e *Engine) statsSnapshot() Stats { return e.stats }

// BUStateCount returns the number of bottom-up states interned so far
// (the batch drivers size their on-disk state width from it).
func (e *Engine) BUStateCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.buStates)
}

// SigID interns a node signature, collapsing signatures that satisfy the
// same EDB facts of the program into one alphabet symbol.
//
// arblint:holds mu — the caller holds the engine's write lock
// (SharedEngine) or owns the engine exclusively.
func (e *Engine) SigID(sig edb.NodeSig) int32 {
	if id, ok := e.sigIndex[sig]; ok {
		return id
	}
	facts := e.c.FactsFor(e.names, sig)
	var key []byte
	for _, a := range facts {
		key = appendUvarint(key, uint64(a))
	}
	id, ok := e.factIndex[string(key)]
	if !ok {
		id = int32(len(e.sigFacts))
		e.factIndex[string(key)] = id
		e.sigFacts = append(e.sigFacts, facts)
	}
	e.sigIndex[sig] = id
	return id
}

// internBU hash-conses a canonical residual program into a state of A.
//
// arblint:holds mu
func (e *Engine) internBU(p *horn.Program) StateID {
	k := p.Key()
	if id, ok := e.buIndex[k]; ok {
		return id
	}
	id := StateID(len(e.buStates))
	e.buStates = append(e.buStates, p)
	e.buIndex[k] = id
	e.stats.BUStates++
	return id
}

// BUState returns the residual program of bottom-up state id.
//
// arblint:holds mu
func (e *Engine) BUState(id StateID) *horn.Program { return e.buStates[id] }

// internTD hash-conses a sorted set of local atoms into a state of B.
//
// arblint:holds mu
func (e *Engine) internTD(atoms []horn.Atom) StateID {
	var buf []byte
	for _, a := range atoms {
		buf = appendUvarint(buf, uint64(a))
	}
	k := string(buf)
	if id, ok := e.tdIndex[k]; ok {
		return id
	}
	id := StateID(len(e.tdStates))
	e.tdStates = append(e.tdStates, atoms)
	e.tdIndex[k] = id
	var qmask uint64
	for qi, q := range e.c.Queries {
		for _, a := range atoms {
			if a == q {
				qmask |= 1 << uint(qi)
				break
			}
		}
	}
	e.tdQuery = append(e.tdQuery, qmask)
	e.stats.TDStates++
	return id
}

// TDSet returns the true predicates of top-down state id.
//
// arblint:holds mu
func (e *Engine) TDSet(id StateID) []tmnf.Pred {
	atoms := e.tdStates[id]
	out := make([]tmnf.Pred, len(atoms))
	for i, a := range atoms {
		out[i] = tmnf.Pred(a)
	}
	return out
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// ReachableStates is the transition function δA of the bottom-up
// automaton (procedure ComputeReachableStates, Figure 2), with lazy
// caching: given the states of the two children (NoState for ⊥) and the
// node signature, it returns the state of the node.
//
// arblint:holds mu — the caller holds the engine's write lock
// (SharedEngine) or owns the engine exclusively.
func (e *Engine) ReachableStates(left, right StateID, sigID int32) StateID {
	key := buKey{left, right, sigID}
	if id, ok := e.buTrans[key]; ok {
		return id
	}
	e.stats.BUTransitions++

	u := e.c.U
	rules := e.ruleBuf[:0]
	rules = append(rules, e.c.Local...)
	for _, a := range e.sigFacts[sigID] {
		rules = append(rules, horn.Rule{Head: a})
	}
	if left != NoState {
		rules = append(rules, e.c.Left...)
		rules = append(rules, horn.PushDownProgram(u, 1, e.buStates[left])...)
	}
	if right != NoState {
		rules = append(rules, e.c.Right...)
		rules = append(rules, horn.PushDownProgram(u, 2, e.buStates[right])...)
	}
	e.ruleBuf = rules[:0]

	res := e.solver.LTUR(rules)
	if left != NoState || right != NoState {
		res = horn.Contract(u, res)
	}
	id := e.internBU(res)
	e.buTrans[key] = id
	return id
}

// RootTrueSet extracts the top-down start state s_B from the bottom-up
// state of the root: the predicates true in every reachable STA state,
// i.e. the facts of the root's residual program (step 2 of Algorithm 4.6).
//
// arblint:holds mu
func (e *Engine) RootTrueSet(rootState StateID) StateID {
	return e.internTD(e.buStates[rootState].TruePreds())
}

// TruePreds is the transition function δB_k of the top-down automaton
// (procedure ComputeTruePreds, Figure 3), with lazy caching: given the
// top-down state of the parent, the bottom-up state (residual program) of
// the k-th child, and k, it returns the top-down state of the child.
//
// arblint:holds mu — the caller holds the engine's write lock
// (SharedEngine) or owns the engine exclusively.
func (e *Engine) TruePreds(parent StateID, resid StateID, k int) StateID {
	key := tdKey{parent, resid, uint8(k)}
	if id, ok := e.tdTrans[key]; ok {
		return id
	}
	e.stats.TDTransitions++

	u := e.c.U
	rules := e.ruleBuf[:0]
	if k == 1 {
		rules = append(rules, e.c.Down1...)
	} else {
		rules = append(rules, e.c.Down2...)
	}
	for _, a := range e.tdStates[parent] {
		rules = append(rules, horn.Rule{Head: a})
	}
	rules = append(rules, horn.PushDownProgram(u, k, e.buStates[resid])...)
	e.ruleBuf = rules[:0]

	derived := e.solver.Derivable(rules)
	space := horn.Super1
	if k == 2 {
		space = horn.Super2
	}
	childPreds := horn.PushUpFrom(u, k, horn.PredsInSpace(u, derived, space))
	id := e.internTD(childPreds)
	e.tdTrans[key] = id
	return id
}

// queryMask returns the query-predicate bitmask of a top-down state.
//
// arblint:holds mu
func (e *Engine) queryMask(td StateID) uint64 { return e.tdQuery[td] }
