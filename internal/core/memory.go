package core

import (
	"context"
	"errors"
	"time"

	"arb/internal/edb"
	"arb/internal/storage"
	"arb/internal/tree"
)

// RunOpts configures an evaluation run.
type RunOpts struct {
	// KeepStates records the bottom-up and top-down state of every node
	// in the Result (in-memory runs only); used by tests, debugging and
	// the marked-XML output path.
	KeepStates bool
	// Aux supplies the auxiliary per-node predicate bitmask (Aux[k] holds
	// at v iff bit k of Aux(v) is set) — the paper's Section 7 mechanism
	// for exposing precomputed information to the automata as part of
	// the node labeling. The XPath frontend uses it for multi-pass
	// negation. Nil means no auxiliary predicates.
	Aux func(v tree.NodeID) uint16

	// Index optionally supplies a subtree index with label signatures
	// over the tree (storage.BuildTreeIndex; sessions cache one per
	// tree), enabling selectivity-aware pruning for in-memory runs: both
	// passes jump over subtrees the engine's analysis proves irrelevant.
	Index *storage.SubtreeIndex
	// NoPrune disables pruning even when Index is available. Runs with
	// Aux or KeepStates never prune.
	NoPrune bool
	// Run, when non-nil, receives this run's exact statistics (node
	// visits, prune savings, phase times, and the transitions its own
	// cache misses computed) — deterministic per-run attribution even
	// when executions overlap on one engine.
	Run *RunStats
}

// RunContext evaluates the engine's program over an in-memory tree using
// Algorithm 4.6: one bottom-up pass computing the run ρA of automaton A
// (reverse preorder — children of a node always follow it in preorder, so
// a single descending index loop is a bottom-up traversal), then one
// top-down pass computing the run ρB of automaton B (ascending index
// loop). The per-node work is two hash-table lookups once the lazy
// transition tables are warm. Cancelling ctx aborts either pass promptly
// with ctx.Err(). Runs of one engine may overlap: the shared automata
// tables are reached through a per-run cache over the engine's lock.
func (e *Engine) RunContext(ctx context.Context, t *tree.Tree, opts RunOpts) (*Result, error) {
	n := t.Len()
	if n == 0 {
		return nil, errors.New("core: empty tree")
	}
	cancel := storage.NewCanceller(ctx)
	res := NewResult(e.c.Prog, int64(n))
	e.AddNodes(int64(n))
	opts.Run.AddNodes(int64(n))

	// Selectivity-aware pruning: with a tree index available, both passes
	// jump over subtrees the static analysis proves irrelevant (the same
	// soundness conditions as on disk; see prune.go). KeepStates runs
	// never prune — the recorded per-node states must be complete.
	var prune *PrunePlan
	if !opts.NoPrune && opts.Aux == nil && !opts.KeepStates {
		prune = PlanPrune([]*Engine{e}, opts.Index, int64(n))
	}
	var exts []storage.Extent
	if prune != nil {
		exts = prune.Extents
		e.AddPrunedNodes(prune.Nodes)
		opts.Run.AddPrunedNodes(prune.Nodes)
	}
	cache := e.ShareTo(opts.Run).NewCache()

	// Phase 1: bottom-up run of A.
	start := time.Now()
	bu := make([]StateID, n)
	pe := len(exts) - 1
	for v := n - 1; v >= 0; v-- {
		if err := cancel.Step(); err != nil {
			return nil, err
		}
		if pe >= 0 && int64(v) == exts[pe].End()-1 {
			x := exts[pe]
			pe--
			bu[x.Root] = prune.Sub(0)
			v = int(x.Root) // the loop decrement steps past the extent
			continue
		}
		left, right := NoState, NoState
		if c := t.First(tree.NodeID(v)); c != tree.None {
			left = bu[c]
		}
		if c := t.Second(tree.NodeID(v)); c != tree.None {
			right = bu[c]
		}
		sig := edb.SigOf(t, tree.NodeID(v))
		if opts.Aux != nil {
			sig.Extra = opts.Aux(tree.NodeID(v))
		}
		bu[v] = cache.ReachableStates(left, right, sig)
	}
	phase1 := time.Since(start)

	// Phase 2: top-down run of B over the ρA-labeled tree.
	start = time.Now()
	td := make([]StateID, n)
	td[0] = cache.RootTrueSet(bu[0])
	pi := 0
	for v := 0; v < n; v++ {
		if err := cancel.Step(); err != nil {
			return nil, err
		}
		if pi < len(exts) && int64(v) == exts[pi].Root {
			// Provably selection-free: nothing to mark, nothing below
			// needs a top-down state.
			v = int(exts[pi].End()) - 1 // the loop increment steps past
			pi++
			continue
		}
		if mask := cache.QueryMask(td[v]); mask != 0 {
			res.MarkMask(mask, int64(v))
		}
		if c := t.First(tree.NodeID(v)); c != tree.None {
			td[c] = cache.TruePreds(td[v], bu[c], 1)
		}
		if c := t.Second(tree.NodeID(v)); c != tree.None {
			td[c] = cache.TruePreds(td[v], bu[c], 2)
		}
	}
	phase2 := time.Since(start)
	e.addPhaseTimes(phase1, phase2)
	opts.Run.AddPhaseTimes(phase1, phase2)

	if opts.KeepStates {
		res.BUStateOf = bu
		res.TDStateOf = td
	}
	return res, nil
}
