package core

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"arb/internal/edb"
	"arb/internal/storage"
	"arb/internal/tree"
)

// DiskOpts configures a secondary-storage evaluation run.
type DiskOpts struct {
	// StatePath overrides the path of the temporary state file. The file
	// holds one 4-byte state id per node, written in reverse preorder by
	// phase 1 and read backwards (i.e. in preorder) by phase 2 — the
	// paper's footnote 12. When empty, the run uses a unique temporary
	// file next to the database, so concurrent runs over one database —
	// kept or not — never collide.
	StatePath string
	// KeepStateFile retains the state file after a successful run and
	// reports its (unique) path as Result.StateFile; a failed run always
	// removes the file it created.
	KeepStateFile bool

	// AuxIn optionally names a sidecar file holding one 2-byte
	// big-endian auxiliary predicate mask per node in preorder (bit k =
	// Aux[k]) — the disk form of RunOpts.Aux. Phase 1 reads it backwards
	// alongside the .arb file, phase 2 forwards, preserving the
	// two-linear-scans property.
	AuxIn string
	// AuxOut, when non-empty, makes phase 2 stream an updated aux file:
	// the input masks (zero if AuxIn is empty) ORed with bit AuxOutBit
	// for every node the query predicate AuxOutQuery selects. Chaining
	// runs through aux files is how multi-pass XPath negation evaluates
	// entirely in secondary storage.
	AuxOut      string
	AuxOutBit   uint8
	AuxOutQuery int

	// MarkTo, when non-nil, streams the document back out as XML during
	// phase 2 itself, with the nodes selected by query predicate
	// MarkQuery marked up — the system's default output mode
	// (Section 6.3), produced with no pass beyond the two scans.
	MarkTo    io.Writer
	MarkQuery int

	// NoPrune disables selectivity-aware scan pruning (prune.go) for this
	// run. Pruning is otherwise applied automatically whenever it is
	// provably sound; runs with aux input, marked output, or an external
	// state-file contract (StatePath/KeepStateFile) never prune.
	NoPrune bool

	// Run, when non-nil, receives this run's exact statistics (node
	// visits, prune savings, phase times, and the transitions its own
	// cache misses computed) — deterministic per-run attribution even
	// when executions overlap on one engine.
	Run *RunStats
}

// DiskStats reports the per-scan cost profile of a disk run, alongside the
// engine's cumulative Stats. StateBytes is the temporary disk space the
// run needed (4 bytes per node, as in the paper's implementation).
type DiskStats struct {
	Phase1     storage.ScanStats
	Phase2     storage.ScanStats
	StateBytes int64
}

// Merge folds another run's disk profile into this one (e.g. the passes
// of one multi-pass execution): scan costs merge per phase, temporary
// state bytes add up.
func (d *DiskStats) Merge(o DiskStats) {
	d.Phase1.Merge(o.Phase1)
	d.Phase2.Merge(o.Phase2)
	d.StateBytes += o.StateBytes
}

// stateIDSize is the on-disk size of one streamed state id.
const stateIDSize = 4

// RunDiskContext evaluates the engine's program over a .arb database in
// secondary storage using Algorithm 4.6 with exactly two linear scans of
// the data (Proposition 5.1): phase 1 is one backward scan of the .arb
// file that streams the bottom-up state of every node to a temporary
// file; phase 2 is one forward scan of the .arb file that reads the state
// file backwards — yielding the phase-1 states in preorder — and computes
// the true predicates per node. Main memory holds only the two automata
// (computed lazily) and a stack bounded by the depth of the XML document.
// Cancelling ctx aborts the scan in progress with ctx.Err(); a failed or
// cancelled run removes the temporary state file and any partially
// written AuxOut sidecar.
func (e *Engine) RunDiskContext(ctx context.Context, db *storage.DB, opts DiskOpts) (*Result, *DiskStats, error) {
	if db.N == 0 {
		return nil, nil, errors.New("core: empty database")
	}
	if e.names != db.Names {
		// Label[..] tests are resolved against e.names; running against a
		// database with a different name table would silently misresolve.
		return nil, nil, errors.New("core: engine name table does not match database")
	}
	res := NewResult(e.c.Prog, db.N)
	ds := &DiskStats{StateBytes: db.N * stateIDSize}
	e.AddNodes(db.N)
	opts.Run.AddNodes(db.N)

	// Selectivity-aware pruning: seek past extents the static analysis
	// proves irrelevant. Sound only without aux input (aux bits vary per
	// node), without marked output (every node must be emitted), and
	// without an external state-file contract (the pruned state file has
	// holes where extents were skipped).
	var prune *PrunePlan
	if !opts.NoPrune && opts.AuxIn == "" && opts.MarkTo == nil && !opts.KeepStateFile && opts.StatePath == "" && db.N >= PruneMinNodes {
		if ix, ierr := db.Index(ctx, 0); ierr == nil {
			prune = PlanPrune([]*Engine{e}, ix, db.N)
		}
	}
	var pruneExts []storage.Extent
	if prune != nil {
		pruneExts = prune.Extents
		e.AddPrunedNodes(prune.Nodes)
		opts.Run.AddPrunedNodes(prune.Nodes)
	}
	cache := e.ShareTo(opts.Run).NewCache()

	// Optional auxiliary mask file, read backwards in phase 1 and
	// forwards in phase 2.
	var auxBack *storage.BackwardReader
	var auxFwd *bufio.Reader
	var auxF *os.File
	if opts.AuxIn != "" {
		var err error
		auxF, err = os.Open(opts.AuxIn)
		if err != nil {
			return nil, nil, err
		}
		defer auxF.Close()
		st, err := auxF.Stat()
		if err != nil {
			return nil, nil, err
		}
		if st.Size() != db.N*auxMaskSize {
			return nil, nil, fmt.Errorf("core: aux file %s has %d bytes for %d nodes", opts.AuxIn, st.Size(), db.N)
		}
		auxBack, err = storage.NewBackwardReader(auxF, db.N*auxMaskSize, auxMaskSize)
		if err != nil {
			return nil, nil, err
		}
		defer auxBack.Release()
	}

	// Phase 1: backward scan of .arb; combine child states through the
	// lazy transition function of A and stream every node's state id.
	start := time.Now()
	stateF, statePath, err := createStateFile(db, opts)
	if err != nil {
		return nil, nil, err
	}
	succeeded := false
	defer func() {
		stateF.Close()
		if !opts.KeepStateFile || !succeeded {
			os.Remove(statePath)
		}
	}()
	// States stream through a run-batched writer at the offset of each
	// node's reverse-preorder slot: without pruning the offsets are one
	// contiguous ascending run (plain sequential writes); a pruned extent
	// is a hole the writer jumps over and the file never materialises.
	sw := &runWriter{f: stateF}
	var werr error
	rootState, scan1, err := storage.FoldBottomUpSkipping(ctx, db, pruneExts,
		func(x storage.Extent) (StateID, error) {
			return prune.Sub(0), nil
		},
		func(first, second *StateID, rec storage.Record, v int64) StateID {
			left, right := NoState, NoState
			if first != nil {
				left = *first
			}
			if second != nil {
				right = *second
			}
			sig := edb.NodeSig{
				Label:     tree.Label(rec.Label),
				HasFirst:  rec.HasFirst,
				HasSecond: rec.HasSecond,
				IsRoot:    v == 0,
			}
			if auxBack != nil {
				b, err := auxBack.Next()
				if err != nil && werr == nil {
					werr = fmt.Errorf("core: reading aux file: %w", err)
				} else if err == nil {
					sig.Extra = binary.BigEndian.Uint16(b)
				}
			}
			s := cache.ReachableStates(left, right, sig)
			var buf [stateIDSize]byte
			binary.BigEndian.PutUint32(buf[:], uint32(s))
			sw.writeAt(buf[:], (db.N-1-v)*stateIDSize)
			return s
		})
	if err != nil {
		return nil, nil, err
	}
	if werr == nil {
		werr = sw.flush()
	}
	if werr != nil {
		return nil, nil, fmt.Errorf("core: writing state file: %w", werr)
	}
	if prune != nil {
		scan1.SkippedBytes += prune.Nodes * storage.NodeSize
	}
	ds.Phase1 = scan1
	phase1 := time.Since(start)

	// Phase 2: forward scan of .arb; the state file, read backwards,
	// yields the phase-1 states in preorder.
	start = time.Now()
	br, err := storage.NewBackwardReader(stateF, db.N*stateIDSize, stateIDSize)
	if err != nil {
		return nil, nil, err
	}
	defer br.Release()
	if auxF != nil {
		if _, err := auxF.Seek(0, io.SeekStart); err != nil {
			return nil, nil, err
		}
		auxFwd = bufio.NewReaderSize(auxF, 1<<16)
	}
	var auxOut *bufio.Writer
	var auxOutF *os.File
	if opts.AuxOut != "" {
		auxOutF, err = os.Create(opts.AuxOut)
		if err != nil {
			return nil, nil, err
		}
		defer func() {
			auxOutF.Close()
			if !succeeded {
				// A failed or cancelled run must not leave a partial
				// sidecar behind for a later pass to trust.
				os.Remove(opts.AuxOut)
			}
		}()
		auxOut = bufio.NewWriterSize(auxOutF, 1<<16)
	}
	outBit := uint16(1) << opts.AuxOutBit
	queryBit := uint64(1) << uint(opts.AuxOutQuery)
	var emitter *storage.XMLEmitter
	markBit := uint64(1) << uint(opts.MarkQuery)
	if opts.MarkTo != nil {
		emitter = storage.NewXMLEmitter(opts.MarkTo, db.Names)
	}
	scan2, err := storage.ScanTopDownSkipping(ctx, db, pruneExts,
		func(x storage.Extent, parent *StateID, k int) error {
			// The analysis proved no node of the extent can be selected:
			// skip its bytes, its state-file hole, and stream zero aux
			// masks for its slots (prunable passes have no aux input).
			if err := br.Skip(x.Size); err != nil {
				return err
			}
			if auxOut != nil {
				if err := writeZeros(auxOut, x.Size*auxMaskSize); err != nil {
					return err
				}
			}
			return nil
		},
		func(v int64, rec storage.Record, parent *StateID, k int) (StateID, error) {
			b, err := br.Next()
			if err != nil {
				return NoState, fmt.Errorf("core: reading state file: %w", err)
			}
			bu := StateID(binary.BigEndian.Uint32(b))
			var td StateID
			if parent == nil {
				if v != 0 {
					return NoState, fmt.Errorf("core: parentless node %d", v)
				}
				if bu != rootState {
					return NoState, fmt.Errorf("core: state file corrupt: root state %d, phase 1 computed %d", bu, rootState)
				}
				td = cache.RootTrueSet(bu)
			} else {
				td = cache.TruePreds(*parent, bu, k)
			}
			mask := cache.QueryMask(td)
			if mask != 0 {
				res.MarkMask(mask, v)
			}
			if emitter != nil {
				if err := emitter.Node(v, rec, mask&markBit != 0); err != nil {
					return NoState, err
				}
			}
			if auxOut != nil {
				var cur uint16
				if auxFwd != nil {
					var ab [auxMaskSize]byte
					if _, err := io.ReadFull(auxFwd, ab[:]); err != nil {
						return NoState, fmt.Errorf("core: reading aux file: %w", err)
					}
					cur = binary.BigEndian.Uint16(ab[:])
				}
				if mask&queryBit != 0 {
					cur |= outBit
				}
				var ab [auxMaskSize]byte
				binary.BigEndian.PutUint16(ab[:], cur)
				if _, err := auxOut.Write(ab[:]); err != nil {
					return NoState, err
				}
			}
			return td, nil
		})
	if err != nil {
		return nil, nil, err
	}
	if auxOut != nil {
		if err := auxOut.Flush(); err != nil {
			return nil, nil, err
		}
		if err := auxOutF.Close(); err != nil {
			return nil, nil, err
		}
	}
	if emitter != nil {
		if err := emitter.Finish(); err != nil {
			return nil, nil, err
		}
	}
	if prune != nil {
		scan2.SkippedBytes += prune.Nodes * storage.NodeSize
	}
	ds.Phase2 = scan2
	phase2 := time.Since(start)
	e.addPhaseTimes(phase1, phase2)
	opts.Run.AddPhaseTimes(phase1, phase2)
	if opts.KeepStateFile {
		res.StateFile = statePath
	}
	succeeded = true
	return res, ds, nil
}

// createStateFile opens the phase-1 state file for a run: opts.StatePath
// if set; otherwise a unique temporary file next to the database, so two
// concurrent runs sharing a database directory never clobber each other's
// state. KeepStateFile runs use the same unique naming — the kept path is
// reported as Result.StateFile rather than through a fixed, discoverable
// name, so concurrent kept runs neither block nor overwrite one another.
func createStateFile(db *storage.DB, opts DiskOpts) (*os.File, string, error) {
	if opts.StatePath != "" {
		f, err := os.Create(opts.StatePath)
		return f, opts.StatePath, err
	}
	f, err := os.CreateTemp(filepath.Dir(db.Base), filepath.Base(db.Base)+"-*.sta")
	if err != nil {
		return nil, "", err
	}
	return f, f.Name(), nil
}

// auxMaskSize is the on-disk size of one auxiliary predicate mask.
const auxMaskSize = 2
