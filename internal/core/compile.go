// Package core implements the paper's primary contribution: two-phase
// evaluation of TMNF programs by a deterministic bottom-up tree automaton
// followed by a deterministic top-down tree automaton, both with lazily
// computed transition functions whose states are canonical residual
// propositional Horn programs (Sections 4 and 4.1-4.3).
//
// A TMNF program is first compiled (Definition 4.2, PropLocal) into groups
// of propositional rules over a three-space atom universe (local,
// superscript-1, superscript-2) plus EDB atoms. The engine then evaluates
// the program over a tree in two linear passes:
//
//   - bottom-up, assigning to every node a canonical residual program that
//     represents the set of all states a selecting tree automaton could
//     reach at that node (ComputeReachableStates, Figure 2), and
//   - top-down, pruning those sets with information from above and
//     extracting the predicates true in all remaining states — which by
//     Theorem 4.1 is exactly the TMNF semantics P(T)
//     (ComputeTruePreds, Figure 3).
//
// The engine works both over in-memory trees (memory.go) and over .arb
// databases in secondary storage with two linear scans (disk.go).
package core

import (
	"fmt"

	"arb/internal/edb"
	"arb/internal/horn"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// Compiled is the PropLocal(P) split of a TMNF program (Definition 4.2):
// its propositional rules grouped into local rules (bullets 1-2), left
// rules (3 and 5), right rules (4 and 6), and the downward subsets
// (5 alone and 6 alone) used by the top-down phase.
type Compiled struct {
	Prog *tmnf.Program
	U    horn.Universe

	Local []horn.Rule // head and body atoms local or EDB
	Left  []horn.Rule // upward-left (X <- X^1) and downward-left (X^1 <- X)
	Right []horn.Rule // upward-right and downward-right
	Down1 []horn.Rule // downward-left only: X^1_i <- X_j
	Down2 []horn.Rule // downward-right only: X^2_i <- X_j

	// Unaries lists the EDB predicates; EDB atom j of U is Unaries[j].
	Unaries []tmnf.Unary

	// Queries are the program's query predicates as local atoms.
	Queries []horn.Atom
}

// Compile builds the PropLocal split of p.
func Compile(p *tmnf.Program) (*Compiled, error) {
	c := &Compiled{
		Prog:    p,
		U:       horn.Universe{NumIDB: p.NumPreds(), NumEDB: len(p.Unaries())},
		Unaries: p.Unaries(),
	}
	u := c.U
	for _, r := range p.Rules() {
		switch r.Kind {
		case tmnf.RuleLocal:
			body := make([]horn.Atom, len(r.Body))
			for i, a := range r.Body {
				if a.IsUnary {
					body[i] = u.EDBAtom(a.U)
				} else {
					body[i] = u.LocalAtom(int(a.Pred))
				}
			}
			c.Local = append(c.Local, horn.NewRule(u.LocalAtom(int(r.Head)), body...))
		case tmnf.RuleMove:
			// Definition 4.2 (5)/(6): Xi :- Xj.FirstChild gives
			// X^1_i <- X_j — a downward rule, also a left rule.
			k := int(r.Rel)
			rule := horn.NewRule(u.SuperAtom(k, int(r.Head)), u.LocalAtom(int(r.From)))
			if k == 1 {
				c.Left = append(c.Left, rule)
				c.Down1 = append(c.Down1, rule)
			} else {
				c.Right = append(c.Right, rule)
				c.Down2 = append(c.Down2, rule)
			}
		case tmnf.RuleInvMove:
			// Definition 4.2 (3)/(4): Xi :- Xj.invFirstChild gives
			// X_i <- X^1_j.
			k := int(r.Rel)
			rule := horn.NewRule(u.LocalAtom(int(r.Head)), u.SuperAtom(k, int(r.From)))
			if k == 1 {
				c.Left = append(c.Left, rule)
			} else {
				c.Right = append(c.Right, rule)
			}
		default:
			return nil, fmt.Errorf("core: unknown rule kind %d", r.Kind)
		}
	}
	for _, q := range p.Queries() {
		c.Queries = append(c.Queries, u.LocalAtom(int(q)))
	}
	return c, nil
}

// AtomName renders an atom for debugging using the program's predicate
// names.
func (c *Compiled) AtomName(a horn.Atom) string {
	space, i := c.U.SpaceOf(a)
	switch space {
	case horn.Local:
		return c.Prog.PredName(tmnf.Pred(i))
	case horn.Super1:
		return c.Prog.PredName(tmnf.Pred(i)) + "^1"
	case horn.Super2:
		return c.Prog.PredName(tmnf.Pred(i)) + "^2"
	default:
		return c.Unaries[i].String()
	}
}

// FactsFor computes the EDB facts (as atoms) holding on a node with the
// given signature. The engine interns the result per signature.
func (c *Compiled) FactsFor(names *tree.Names, sig edb.NodeSig) []horn.Atom {
	var out []horn.Atom
	for j, un := range c.Unaries {
		if edb.Holds(un, names, sig) {
			out = append(out, c.U.EDBAtom(j))
		}
	}
	return out
}
