package core

import (
	"sync"
	"time"
)

// RunStats is a per-run statistics sink: every evaluation driver that is
// handed one mirrors the work it does — node visits, prune savings,
// phase wall times — into it, and engine views created with ShareTo
// credit it with exactly the transitions and states the run's own cache
// misses computed. Deltas of the engines' shared cumulative Stats
// cannot do this: when executions overlap on one engine, work computed
// by a concurrent run lands in whichever delta observes it. A RunStats
// belongs to one execution, so its totals are deterministic however
// many executions overlap.
//
// All methods are safe for concurrent use (parallel workers of one run
// share the sink) and nil-safe: a nil *RunStats discards everything, so
// drivers mirror unconditionally.
type RunStats struct {
	mu sync.Mutex
	s  Stats // guarded by: mu
}

// Add folds a stats delta into the run.
func (rs *RunStats) Add(o Stats) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.s.Add(o)
	rs.mu.Unlock()
}

// AddNodes records n node visits.
func (rs *RunStats) AddNodes(n int64) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.s.Nodes += n
	rs.mu.Unlock()
}

// AddPrunedNodes records n pruned node visits (see Stats.PrunedNodes).
func (rs *RunStats) AddPrunedNodes(n int64) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.s.PrunedNodes += n
	rs.mu.Unlock()
}

// AddPhaseTimes records one run's phase wall times.
func (rs *RunStats) AddPhaseTimes(p1, p2 time.Duration) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.s.Phase1Time += p1
	rs.s.Phase2Time += p2
	rs.mu.Unlock()
}

// Snapshot returns the statistics accumulated so far.
func (rs *RunStats) Snapshot() Stats {
	if rs == nil {
		return Stats{}
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.s
}
