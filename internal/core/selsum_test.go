package core

import (
	"context"
	"math/rand"
	"testing"

	"arb/internal/testutil"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// selSummaryFor compiles src against names and runs the analysis.
func selSummaryFor(t *testing.T, src string, names *tree.Names) *SelSummary {
	t.Helper()
	c, err := Compile(tmnf.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(c, names).SelectionSummary()
}

// namesWith returns a name table knowing the given tags.
func namesWith(t *testing.T, tags ...string) *tree.Names {
	t.Helper()
	names := tree.NewNames()
	for _, tag := range tags {
		if _, err := names.Intern(tag); err != nil {
			t.Fatal(err)
		}
	}
	return names
}

// descendantsLabeled is the TMNF rendering of //a: every non-root node
// labeled a (D closes downward from the root's children).
const descendantsLabeled = `
R :- Root;
D :- R.FirstChild;
D :- R.SecondChild;
D :- D.FirstChild;
D :- D.SecondChild;
QUERY :- D, Label[a];
`

func TestSelSummaryLabel(t *testing.T) {
	names := namesWith(t, "a", "b")
	sum := selSummaryFor(t, `QUERY :- Label[a];`, names)
	if sum == nil {
		t.Fatal("QUERY :- Label[a] admits no summary")
	}
	la, _ := names.Lookup("a")
	lb, _ := names.Lookup("b")
	for _, isRoot := range []bool{false, true} {
		if !sum.Selected(la, isRoot) {
			t.Errorf("Selected(a, root=%v) = false, want true", isRoot)
		}
		if sum.Selected(lb, isRoot) {
			t.Errorf("Selected(b, root=%v) = true, want false", isRoot)
		}
		if sum.Selected(tree.Label('x'), isRoot) {
			t.Errorf("Selected('x', root=%v) = true, want false", isRoot)
		}
	}
}

func TestSelSummaryNonRootLabel(t *testing.T) {
	names := namesWith(t, "a", "b")
	sum := selSummaryFor(t, descendantsLabeled, names)
	if sum == nil {
		t.Fatal("//a-shaped program admits no summary")
	}
	la, _ := names.Lookup("a")
	if !sum.Selected(la, false) {
		t.Error("Selected(a, child) = false, want true")
	}
	if sum.Selected(la, true) {
		t.Error("Selected(a, root) = true, want false (a root is nobody's child)")
	}
}

func TestSelSummaryText(t *testing.T) {
	names := namesWith(t, "a")
	sum := selSummaryFor(t, `QUERY :- Text;`, names)
	if sum == nil {
		t.Fatal("QUERY :- Text admits no summary")
	}
	la, _ := names.Lookup("a")
	if !sum.Selected(tree.Label('x'), false) || !sum.Selected(tree.Label('y'), true) {
		t.Error("character labels must be selected")
	}
	if sum.Selected(la, false) {
		t.Error("named labels must not be selected")
	}
}

// Context- and shape-dependent selections must refuse a summary rather
// than hand out wrong verdicts.
func TestSelSummaryInadmissible(t *testing.T) {
	names := namesWith(t, "a")
	for _, src := range []string{
		`P :- Root; QUERY :- P.FirstChild;`, // positional: first child of root only
		`QUERY :- Leaf;`,                    // shape: depends on HasFirstChild
		`QUERY :- Label[a], HasSecondChild;`,
	} {
		if sum := selSummaryFor(t, src, names); sum != nil {
			t.Errorf("%s: got a summary, want nil", src)
		}
	}
}

func TestSelSummaryMultiQueryNil(t *testing.T) {
	names := namesWith(t, "a")
	p := tmnf.MustParse(`Query1 :- Label[a]; Query2 :- Root;`)
	if err := p.SetQueries("Query1", "Query2"); err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if sum := NewEngine(c, names).SelectionSummary(); sum != nil {
		t.Error("multi-query program: got a summary, want nil")
	}
}

func TestSubsumes(t *testing.T) {
	names := namesWith(t, "a", "b")
	labelA := selSummaryFor(t, `QUERY :- Label[a];`, names)
	labelB := selSummaryFor(t, `QUERY :- Label[b];`, names)
	nonRootA := selSummaryFor(t, descendantsLabeled, names)
	all := selSummaryFor(t, `QUERY :- V;`, names)
	for _, s := range []*SelSummary{labelA, labelB, nonRootA, all} {
		if s == nil {
			t.Fatal("missing summary")
		}
	}
	cases := []struct {
		name string
		q, s *SelSummary
		want bool
	}{
		{"nonRootA ⊆ labelA", nonRootA, labelA, true},
		{"labelA ⊄ nonRootA", labelA, nonRootA, false},
		{"labelA ⊄ labelB", labelA, labelB, false},
		{"labelA ⊆ all", labelA, all, true},
		{"all ⊄ labelA", all, labelA, false},
		{"labelA ⊆ labelA", labelA, labelA, true},
		{"nil q", nil, labelA, false},
		{"nil s", labelA, nil, false},
	}
	for _, c := range cases {
		if got := Subsumes(c.q, c.s); got != c.want {
			t.Errorf("%s: Subsumes = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSelSummaryDifferential checks the soundness contract on random
// documents: whenever a summary exists, each node's actual selection
// equals the summary's verdict for (label, root-ness).
func TestSelSummaryDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	names := tree.NewNames()
	srcs := []string{
		`QUERY :- Label[a];`,
		`QUERY :- Label[c];`,
		`QUERY :- Text;`,
		`QUERY :- V;`,
		`QUERY :- Char[x];`,
		descendantsLabeled,
	}
	// Pre-intern the tags random trees use so Label[..] resolves.
	for _, tag := range testutil.Tags {
		if _, err := names.Intern(tag); err != nil {
			t.Fatal(err)
		}
	}
	for _, src := range srcs {
		c, err := Compile(tmnf.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(c, names)
		sum := e.SelectionSummary()
		if sum == nil {
			t.Fatalf("%s: no summary", src)
		}
		q := e.Compiled().Prog.Queries()[0]
		for i := 0; i < 25; i++ {
			tr := testutil.RandomTreeWithNames(rng, names, 60)
			res, err := e.RunContext(context.Background(), tr, RunOpts{})
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < tr.Len(); v++ {
				got := res.Holds(q, tree.NodeID(v))
				want := sum.Selected(tr.Label(tree.NodeID(v)), v == 0)
				if got != want {
					t.Fatalf("%s: node %d (label %d, root=%v): selected=%v, summary says %v",
						src, v, tr.Label(tree.NodeID(v)), v == 0, got, want)
				}
			}
		}
	}
}
