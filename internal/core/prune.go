// Selectivity-aware scan pruning (this file) turns the engine's fixed
// two-full-scan cost into one proportional to query selectivity: a static
// analysis over the compiled automata decides which label sets are
// provably irrelevant to the program, and the drivers then seek past
// whole subtree extents whose label signature (carried by the v2 .idx
// sidecar, or by an in-memory tree index) is disjoint from the live set.
//
// Soundness rests on two facts established once per engine:
//
//  1. Dead-subtree convergence (bottom-up): labels the program's EDB
//     tests cannot distinguish collapse into class representatives (one
//     for characters, one for named labels). The set of bottom-up states
//     reachable by subtrees built only from dead labels is closed under
//     the transition function; when that closure is a single state s*,
//     every dead subtree — whatever its shape — folds to s*, so phase 1
//     may substitute s* without reading the extent.
//
//  2. Selection unreachability (top-down): propositional Horn derivation
//     is monotone, so entering a dead subtree from the ⊤ top-down state
//     (all local predicates true) over-approximates entering it from any
//     real parent state. If the top-down closure of {δB_k(⊤, s*)} under
//     δB_k(·, s*) contains no state with a query predicate, no node of
//     any dead subtree can ever be selected, in any context — phase 2 may
//     skip the extent entirely.
//
// When either analysis fails (the closure does not converge, is not a
// singleton, or a query predicate is reachable), the engine simply reads
// everything, as before: pruning is a proof-carrying fast path, never a
// semantics change. Passes with auxiliary mask input never prune — aux
// bits vary per node and are not covered by the closure.
package core

import (
	"io"

	"arb/internal/edb"
	"arb/internal/horn"
	"arb/internal/storage"
	"arb/internal/tmnf"
	"arb/internal/tree"
)

// Pruning thresholds. Variables (not constants) so tests and benchmarks
// can exercise the pruning machinery on small documents.
var (
	// PruneMinNodes is the document size below which drivers skip the
	// planning step entirely — seeking buys nothing on data this small.
	PruneMinNodes int64 = 1 << 15
	// PruneMinExtent is the smallest extent worth seeking past; skipping
	// tiny extents fragments the sequential scan for no I/O win.
	PruneMinExtent int64 = 1 << 12
)

// Closure caps: analysis gives up (disabling pruning, never correctness)
// if the dead-subtree state sets grow past these bounds. Real query
// automata converge within a handful of states.
const (
	deadBUCap = 16
	deadTDCap = 64
)

// pruneAnalysis is the per-engine static analysis result, computed once
// and cached (the automata tables it rests on only ever grow).
type pruneAnalysis struct {
	ok   bool             // the program admits label-based pruning
	live storage.LabelSig // labels that can influence the program
	sub  StateID          // the unique dead-subtree bottom-up state s*
}

// lockedPruneAnalysis runs pruneAnalysis under the engine's write lock,
// so plans may be computed while other runs of the engine are in flight.
func (e *Engine) lockedPruneAnalysis() *pruneAnalysis {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pruneAnalysis()
}

// pruneAnalysis computes (and caches) the engine's pruning analysis. It
// interns a few synthetic states and transitions into the engine's
// tables, so it must run while the caller holds the engine's write lock
// (lockedPruneAnalysis) or owns the engine exclusively.
//
// arblint:holds mu
func (e *Engine) pruneAnalysis() *pruneAnalysis {
	if e.prune != nil {
		return e.prune
	}
	a := &pruneAnalysis{}
	e.prune = a

	// Live labels: a label is live iff the EDB facts of a node carrying it
	// can differ from those of another label of the same class. Only
	// resolved Label[..]/char tests pin individual labels; Text
	// distinguishes the two classes, which the class representatives
	// below model; the structural tests are label-independent.
	liveLabels := map[tree.Label]bool{}
	for _, un := range e.c.Unaries {
		switch un.Kind {
		case tmnf.UAll, tmnf.URoot, tmnf.UHasFirstChild, tmnf.UHasSecondChild, tmnf.UText, tmnf.UAux:
			// Label-independent (root-ness and child flags are covered by
			// the shape closure; aux input disables pruning at the driver).
		case tmnf.ULabel, tmnf.UChar:
			if l, ok := edb.ResolveLabel(un, e.names); ok {
				liveLabels[l] = true
			}
			// An unresolvable label test holds on no node at all — it
			// cannot distinguish labels.
		default:
			return a // unknown unary kind: assume everything is live
		}
	}
	for l := range liveLabels {
		a.live.Add(uint16(l))
	}

	// Class representatives: one dead character and one dead named label.
	// A class with no dead member needs no representative — extents
	// containing that class always intersect the live set.
	var reps []tree.Label
	for c := 0; c < 256; c++ {
		if !liveLabels[tree.Label(c)] {
			reps = append(reps, tree.Label(c))
			break
		}
	}
	for l := 1<<14 - 1; l >= 256; l-- {
		if !liveLabels[tree.Label(l)] {
			reps = append(reps, tree.Label(l))
			break
		}
	}
	if len(reps) == 0 {
		return a
	}

	// Bottom-up closure: all states reachable by dead subtrees, over the
	// four child shapes and both class representatives. IsRoot is false
	// throughout — the planner never prunes an extent rooted at node 0.
	sig := func(rep tree.Label, hf, hs bool) int32 {
		return e.SigID(edb.NodeSig{Label: rep, HasFirst: hf, HasSecond: hs})
	}
	states := map[StateID]bool{}
	for _, rep := range reps {
		states[e.ReachableStates(NoState, NoState, sig(rep, false, false))] = true
	}
	for changed := true; changed; {
		changed = false
		cur := make([]StateID, 0, len(states))
		for s := range states {
			cur = append(cur, s)
		}
		add := func(s StateID) {
			if !states[s] {
				states[s] = true
				changed = true
			}
		}
		for _, rep := range reps {
			for _, s1 := range cur {
				add(e.ReachableStates(s1, NoState, sig(rep, true, false)))
				add(e.ReachableStates(NoState, s1, sig(rep, false, true)))
				for _, s2 := range cur {
					add(e.ReachableStates(s1, s2, sig(rep, true, true)))
				}
			}
		}
		if len(states) > deadBUCap {
			return a
		}
	}
	if len(states) != 1 {
		// Dead subtrees of different shapes fold to different states, so
		// no single substitute is sound.
		return a
	}
	var sub StateID
	for s := range states {
		sub = s
	}

	// Top-down closure from the ⊤ state. Horn derivation is monotone in
	// the parent's atom set, so every real top-down state inside a dead
	// subtree is a subset of some state in this closure; if none of them
	// contains a query predicate, neither can any real state.
	u := e.c.U
	atoms := make([]horn.Atom, u.NumIDB)
	for i := range atoms {
		atoms[i] = u.LocalAtom(i)
	}
	topState := e.internTD(atoms)
	seen := map[StateID]bool{}
	work := []StateID{}
	push := func(t StateID) {
		if !seen[t] {
			seen[t] = true
			work = append(work, t)
		}
	}
	push(e.TruePreds(topState, sub, 1))
	push(e.TruePreds(topState, sub, 2))
	for len(work) > 0 {
		t := work[len(work)-1]
		work = work[:len(work)-1]
		if e.queryMask(t) != 0 {
			return a // a selection is reachable inside a dead subtree
		}
		if len(seen) > deadTDCap {
			return a
		}
		push(e.TruePreds(t, sub, 1))
		push(e.TruePreds(t, sub, 2))
	}

	a.ok = true
	a.sub = sub
	return a
}

// PrunePlan is the set of extents one execution may seek past, with the
// substitute bottom-up state per participating engine. A plan is computed
// against one specific document (the index's node count is checked), and
// is valid for any run of those engines over that document without aux
// input.
type PrunePlan struct {
	Extents []storage.Extent // sorted by Root, disjoint, none rooted at 0
	Nodes   int64            // total nodes covered by Extents
	subs    []StateID        // per engine, in PlanPrune order
}

// Sub returns the substitute bottom-up state for engine m of the plan.
func (p *PrunePlan) Sub(m int) StateID { return p.subs[m] }

// PhysicalSavings reports the physical bytes the plan's extents map to
// in db — on a block-compressed database the stored size of every block
// an extent touches, on a raw one the extents' record bytes. The scans
// themselves account the exact figure (a boundary block shared with
// live records is still read once); this is the planner's upper bound,
// what the stats surfaces report as "prunable physical bytes". Extent
// selection is deliberately logical: a sub-block extent still saves its
// share of decompression and per-node work even when its block must be
// read for neighbouring live records, so admission thresholds
// (PruneMinExtent) stay in node units on compressed databases too.
func (p *PrunePlan) PhysicalSavings(db *storage.DB) int64 {
	var sum int64
	for _, x := range p.Extents {
		sum += db.PhysSpan(x.Root, x.End())
	}
	return sum
}

// SubVec returns a fresh copy of the per-engine substitute state vector
// (batch drivers hand it to folds that recycle vectors freely).
func (p *PrunePlan) SubVec() []StateID { return append([]StateID(nil), p.subs...) }

// PlanPrune runs the pruning analysis for every engine and selects the
// maximal index extents whose label signatures are disjoint from the
// union of the engines' live sets — an extent is only prunable if it is
// prunable for every engine sharing the scan. Returns nil (no pruning)
// when any engine's analysis fails, the index does not describe an
// n-node document, or no extent qualifies.
func PlanPrune(engines []*Engine, ix *storage.SubtreeIndex, n int64) *PrunePlan {
	if ix == nil || ix.N != n || n < PruneMinNodes {
		return nil
	}
	var live storage.LabelSig
	subs := make([]StateID, len(engines))
	for m, e := range engines {
		a := e.lockedPruneAnalysis()
		if !a.ok {
			return nil
		}
		live.Or(a.live)
		subs[m] = a.sub
	}
	plan := &PrunePlan{subs: subs}
	lastEnd := int64(0)
	for _, ent := range ix.Entries() {
		if ent.V < lastEnd || ent.V == 0 || ent.Size < PruneMinExtent {
			continue
		}
		if ent.Labels.Intersects(live) {
			continue
		}
		plan.Extents = append(plan.Extents, storage.Extent{Root: ent.V, Size: ent.Size})
		plan.Nodes += ent.Size
		lastEnd = ent.V + ent.Size
	}
	if len(plan.Extents) == 0 {
		return nil
	}
	return plan
}

// SplitPrune distributes a plan's extents over a frontier of worker
// tasks. Both lists are sorted families of subtree extents of one tree,
// so any two extents are nested or disjoint: tasks swallowed by a pruned
// extent are dropped (the leader skips the whole pruned extent), pruned
// extents strictly inside a task become that worker's in-chunk skip list,
// and the rest are holes in the leader's own scan. Shared with the
// in-memory parallel evaluator (internal/parallel).
func SplitPrune(tasks, plan []storage.Extent) (kept []storage.Extent, inner [][]storage.Extent, outer []storage.Extent) {
	pi := 0
	for _, t := range tasks {
		for pi < len(plan) && plan[pi].End() <= t.Root {
			outer = append(outer, plan[pi])
			pi++
		}
		if pi < len(plan) && plan[pi].Root <= t.Root && plan[pi].End() >= t.End() {
			continue // task swallowed; the pruned extent stays pending
		}
		var in []storage.Extent
		for pi < len(plan) && plan[pi].End() <= t.End() {
			in = append(in, plan[pi])
			pi++
		}
		kept = append(kept, t)
		inner = append(inner, in)
	}
	outer = append(outer, plan[pi:]...)
	return kept, inner, outer
}

// mergeSkipLists interleaves surviving tasks and leader-pruned extents
// into one sorted skip list for the leader's scans. taskOf[i] is the
// index of exts[i] in tasks, or -1 for a pruned hole.
func mergeSkipLists(tasks, pruned []storage.Extent) (exts []storage.Extent, taskOf []int) {
	ti, pi := 0, 0
	for ti < len(tasks) || pi < len(pruned) {
		if pi >= len(pruned) || (ti < len(tasks) && tasks[ti].Root < pruned[pi].Root) {
			exts = append(exts, tasks[ti])
			taskOf = append(taskOf, ti)
			ti++
		} else {
			exts = append(exts, pruned[pi])
			taskOf = append(taskOf, -1)
			pi++
		}
	}
	return exts, taskOf
}

// zeroMasks is a reusable block of zero bytes for streaming the aux-mask
// slots of pruned extents (no node of a pruned extent is ever selected,
// and prunable passes have no aux input to propagate).
var zeroMasks [1 << 15]byte

// writeZeros writes n zero bytes to w in blocks.
func writeZeros(w io.Writer, n int64) error {
	for n > 0 {
		c := n
		if c > int64(len(zeroMasks)) {
			c = int64(len(zeroMasks))
		}
		if _, err := w.Write(zeroMasks[:c]); err != nil {
			return err
		}
		n -= c
	}
	return nil
}

// writeZeroMasksAt writes n zero bytes at offset off through a
// run-batched writer (errors surface at the writer's flush).
func writeZeroMasksAt(w *runWriter, off, n int64) {
	for n > 0 {
		c := n
		if c > int64(len(zeroMasks)) {
			c = int64(len(zeroMasks))
		}
		w.writeAt(zeroMasks[:c], off)
		off += c
		n -= c
	}
}
