package xpath

import (
	"fmt"

	"arb/internal/tmnf"
)

// Query is a Core XPath query compiled to TMNF. Positive queries compile
// to a single program; each not(..) subcondition adds one earlier pass
// whose selected nodes are fed to later passes as the auxiliary predicate
// Aux[k]. Passes are evaluated in order; Main is last.
type Query struct {
	Path   *Path
	Passes []*tmnf.Program // pass k computes Aux[k]
	Main   *tmnf.Program
}

// maxPasses is the number of auxiliary predicate slots (the Aux bitmask
// is 16 bits wide).
const maxPasses = 16

// Translate compiles a parsed Core XPath query to TMNF. The translation
// is linear in the size of the query: every step contributes a constant
// number of rules (following/preceding contribute the rules of their
// three-axis decomposition).
func Translate(p *Path) (*Query, error) {
	q := &Query{Path: p}
	tr := &translator{q: q}
	main, err := tr.pathProgram(p)
	if err != nil {
		return nil, err
	}
	q.Main = main
	return q, nil
}

// Compile parses and translates src.
func Compile(src string) (*Query, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Translate(p)
}

type translator struct {
	q *Query
}

// pathProgram builds one complete program that selects the result of the
// absolute path p, marking its query predicate.
func (tr *translator) pathProgram(p *Path) (*tmnf.Program, error) {
	prog := tmnf.NewProgram()
	result, err := tr.path(prog, p, tmnf.Pred(-1))
	if err != nil {
		return nil, err
	}
	prog.AddQuery(result)
	return prog, nil
}

// local adds Head :- body to prog.
func local(prog *tmnf.Program, head tmnf.Pred, body ...tmnf.LocalAtom) {
	prog.AddRule(tmnf.Rule{Kind: tmnf.RuleLocal, Head: head, Body: body})
}

// move adds Head :- From.Rel (type 2).
func move(prog *tmnf.Program, head, from tmnf.Pred, rel tmnf.Rel) {
	prog.AddRule(tmnf.Rule{Kind: tmnf.RuleMove, Head: head, From: from, Rel: rel})
}

// invMove adds Head :- From.invRel (type 3).
func invMove(prog *tmnf.Program, head, from tmnf.Pred, rel tmnf.Rel) {
	prog.AddRule(tmnf.Rule{Kind: tmnf.RuleInvMove, Head: head, From: from, Rel: rel})
}

func unaryAtom(prog *tmnf.Program, u tmnf.Unary) tmnf.LocalAtom {
	return tmnf.UnaryAtom(prog.InternUnary(u))
}

// path translates a path evaluated from context predicate ctx (-1 = no
// context yet; only legal for absolute paths) and returns the predicate
// holding at the result nodes. Absolute paths start at the virtual
// document node above the root element: only its child (node 0) and
// descendant axes lead anywhere.
func (tr *translator) path(prog *tmnf.Program, p *Path, ctx tmnf.Pred) (tmnf.Pred, error) {
	virtual := false
	if p.Absolute || ctx == tmnf.Pred(-1) {
		if !p.Absolute && ctx == tmnf.Pred(-1) {
			return 0, fmt.Errorf("xpath: relative path %s without context", p)
		}
		ctx = prog.Fresh("Empty") // no real node is in the initial context
		virtual = true
	}
	var err error
	for i := range p.Steps {
		st := &p.Steps[i]
		moved := tr.axis(prog, st.Axis, ctx)
		if virtual {
			// Contributions of the virtual document node: its child is
			// the root element, its descendants are all nodes. For the
			// self axis, axis() returned ctx itself, which is fine: the
			// virtual node contributes no real node there.
			switch st.Axis {
			case AxisChild:
				local(prog, moved, unaryAtom(prog, tmnf.Unary{Kind: tmnf.URoot}))
			case AxisDescendant, AxisDescendantOrSelf:
				local(prog, moved, unaryAtom(prog, tmnf.Unary{Kind: tmnf.UAll}))
			}
		}
		virtual = virtual && len(st.Quals) == 0 && st.Test.Kind == TestNode &&
			(st.Axis == AxisSelf || st.Axis == AxisDescendantOrSelf)
		ctx, err = tr.filterStep(prog, st, moved)
		if err != nil {
			return 0, err
		}
	}
	return ctx, nil
}

// filterStep applies a step's node test and qualifiers to the moved
// predicate.
func (tr *translator) filterStep(prog *tmnf.Program, st *Step, moved tmnf.Pred) (tmnf.Pred, error) {
	body := []tmnf.LocalAtom{tmnf.PredAtom(moved)}
	body = append(body, testAtoms(prog, st.Test)...)
	for _, qc := range st.Quals {
		qp, err := tr.cond(prog, qc)
		if err != nil {
			return 0, err
		}
		body = append(body, qp)
	}
	out := prog.Fresh("Step")
	local(prog, out, body...)
	return out, nil
}

// testAtoms renders a node test as unary EDB atoms. A name test requires
// both the label and element-ness: single-character names would otherwise
// also resolve to character labels (the paper's model does not
// distinguish them lexically).
func testAtoms(prog *tmnf.Program, nt NodeTest) []tmnf.LocalAtom {
	notText := unaryAtom(prog, tmnf.Unary{Kind: tmnf.UText, Neg: true})
	switch nt.Kind {
	case TestName:
		return []tmnf.LocalAtom{unaryAtom(prog, tmnf.Unary{Kind: tmnf.ULabel, Name: nt.Name}), notText}
	case TestStar:
		return []tmnf.LocalAtom{notText}
	case TestText:
		return []tmnf.LocalAtom{unaryAtom(prog, tmnf.Unary{Kind: tmnf.UText})}
	}
	return nil
}

// axis adds the rules moving a set along an axis in the binary
// (first-child/next-sibling) encoding and returns the predicate holding
// at the axis image. Each case is a constant number of TMNF rules.
func (tr *translator) axis(prog *tmnf.Program, a Axis, src tmnf.Pred) tmnf.Pred {
	switch a {
	case AxisSelf:
		return src

	case AxisChild:
		// Children of x: FirstChild(x), then its NextSibling closure.
		out := prog.Fresh("Child")
		move(prog, out, src, tmnf.RelFirst)
		move(prog, out, out, tmnf.RelSecond)
		return out

	case AxisParent:
		// Walk left to the first sibling, then up.
		up := prog.Fresh("Up")
		local(prog, up, tmnf.PredAtom(src))
		invMove(prog, up, up, tmnf.RelSecond)
		out := prog.Fresh("Parent")
		invMove(prog, out, up, tmnf.RelFirst)
		return out

	case AxisDescendant:
		// The document descendants of x are the binary subtree of
		// FirstChild(x).
		out := prog.Fresh("Desc")
		move(prog, out, src, tmnf.RelFirst)
		move(prog, out, out, tmnf.RelFirst)
		move(prog, out, out, tmnf.RelSecond)
		return out

	case AxisDescendantOrSelf:
		out := prog.Fresh("DescSelf")
		local(prog, out, tmnf.PredAtom(src))
		d := tr.axis(prog, AxisDescendant, src)
		local(prog, out, tmnf.PredAtom(d))
		return out

	case AxisAncestor:
		// Repeat the parent walk: Up climbs sibling lists, each
		// invFirstChild step reaches an ancestor, which climbs further.
		up := prog.Fresh("AncUp")
		local(prog, up, tmnf.PredAtom(src))
		invMove(prog, up, up, tmnf.RelSecond)
		out := prog.Fresh("Anc")
		invMove(prog, out, up, tmnf.RelFirst)
		local(prog, up, tmnf.PredAtom(out))
		return out

	case AxisAncestorOrSelf:
		out := prog.Fresh("AncSelf")
		local(prog, out, tmnf.PredAtom(src))
		an := tr.axis(prog, AxisAncestor, src)
		local(prog, out, tmnf.PredAtom(an))
		return out

	case AxisFollowingSibling:
		out := prog.Fresh("FollSib")
		move(prog, out, src, tmnf.RelSecond)
		move(prog, out, out, tmnf.RelSecond)
		return out

	case AxisPrecedingSibling:
		out := prog.Fresh("PrecSib")
		invMove(prog, out, src, tmnf.RelSecond)
		invMove(prog, out, out, tmnf.RelSecond)
		return out

	case AxisFollowing:
		return tr.axis(prog, AxisDescendantOrSelf,
			tr.axis(prog, AxisFollowingSibling,
				tr.axis(prog, AxisAncestorOrSelf, src)))

	case AxisPreceding:
		return tr.axis(prog, AxisDescendantOrSelf,
			tr.axis(prog, AxisPrecedingSibling,
				tr.axis(prog, AxisAncestorOrSelf, src)))
	}
	panic("xpath: unknown axis")
}

// cond translates a qualifier condition into a LocalAtom that holds at
// exactly the nodes satisfying it.
func (tr *translator) cond(prog *tmnf.Program, c *Cond) (tmnf.LocalAtom, error) {
	switch c.Kind {
	case CondAnd:
		l, err := tr.cond(prog, c.L)
		if err != nil {
			return tmnf.LocalAtom{}, err
		}
		r, err := tr.cond(prog, c.R)
		if err != nil {
			return tmnf.LocalAtom{}, err
		}
		out := prog.Fresh("And")
		local(prog, out, l, r)
		return tmnf.PredAtom(out), nil

	case CondOr:
		l, err := tr.cond(prog, c.L)
		if err != nil {
			return tmnf.LocalAtom{}, err
		}
		r, err := tr.cond(prog, c.R)
		if err != nil {
			return tmnf.LocalAtom{}, err
		}
		out := prog.Fresh("Or")
		local(prog, out, l)
		local(prog, out, r)
		return tmnf.PredAtom(out), nil

	case CondNot:
		// Compile the inner condition as its own pass; later passes see
		// its result as Aux[k] and we use the complement. The inner pass
		// must mark every node satisfying the condition, so it is
		// compiled as a full program whose query predicate is the
		// condition itself evaluated at all nodes.
		// Recurse first: passes for nested not(..) conditions are
		// appended during the recursion and so get lower indices —
		// passes run in index order and may only reference earlier
		// passes' Aux slots.
		inner := tmnf.NewProgram()
		atom, err := tr.cond(inner, c.L)
		if err != nil {
			return tmnf.LocalAtom{}, err
		}
		head := inner.Fresh("NotInner")
		local(inner, head, atom)
		inner.AddQuery(head)
		if len(tr.q.Passes) == maxPasses {
			return tmnf.LocalAtom{}, fmt.Errorf("xpath: more than %d not(..) conditions", maxPasses)
		}
		k := len(tr.q.Passes)
		tr.q.Passes = append(tr.q.Passes, inner)
		return unaryAtom(prog, tmnf.Unary{Kind: tmnf.UAux, Aux: uint8(k), Neg: true}), nil
	}

	// Existential path: propagate backwards with inverse axes from the
	// nodes matching the full path to the nodes having such a match.
	return tr.existsPath(prog, c.Path)
}

// existsPath translates the condition "this node has a (possibly
// absolute) path match" into a predicate.
func (tr *translator) existsPath(prog *tmnf.Program, p *Path) (tmnf.LocalAtom, error) {
	if p.Absolute {
		// Node-independent: the path has a match somewhere iff its
		// result set is nonempty. Propagate the result to the root and
		// broadcast back down.
		res, err := tr.path(prog, p, tmnf.Pred(-1))
		if err != nil {
			return tmnf.LocalAtom{}, err
		}
		anc := tr.axis(prog, AxisAncestorOrSelf, res)
		atRoot := prog.Fresh("NonEmpty")
		local(prog, atRoot, tmnf.PredAtom(anc), unaryAtom(prog, tmnf.Unary{Kind: tmnf.URoot}))
		all := prog.Fresh("Bcast")
		local(prog, all, tmnf.PredAtom(atRoot))
		move(prog, all, all, tmnf.RelFirst)
		move(prog, all, all, tmnf.RelSecond)
		return tmnf.PredAtom(all), nil
	}

	// Relative: compute match sets right-to-left. cur marks nodes
	// matching the path suffix starting at step i; stepping back through
	// the inverse axis yields nodes with an axis-successor matching the
	// suffix.
	cur := tmnf.Pred(-1)
	for i := len(p.Steps) - 1; i >= 0; i-- {
		st := &p.Steps[i]
		body := []tmnf.LocalAtom{}
		body = append(body, testAtoms(prog, st.Test)...)
		for _, qc := range st.Quals {
			qp, err := tr.cond(prog, qc)
			if err != nil {
				return tmnf.LocalAtom{}, err
			}
			body = append(body, qp)
		}
		if cur != tmnf.Pred(-1) {
			body = append(body, tmnf.PredAtom(cur))
		}
		if len(body) == 0 {
			body = append(body, unaryAtom(prog, tmnf.Unary{Kind: tmnf.UAll}))
		}
		matched := prog.Fresh("Match")
		local(prog, matched, body...)
		cur = tr.axis(prog, st.Axis.Inverse(), matched)
	}
	return tmnf.PredAtom(cur), nil
}
