package xpath

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"arb/internal/core"
	"arb/internal/storage"
	"arb/internal/testutil"
	"arb/internal/tree"
	"arb/internal/xmlparse"
)

func parseDoc(t *testing.T, src string) *tree.Tree {
	t.Helper()
	tr, err := xmlparse.ParseTree(strings.NewReader(src), xmlparse.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func selected(sel []bool) []int {
	var out []int
	for v, ok := range sel {
		if ok {
			out = append(out, v)
		}
	}
	return out
}

func TestParseRoundTrip(t *testing.T) {
	cases := map[string]string{
		"/a/b":                         "/child::a/child::b",
		"a//b":                         "/child::a/descendant-or-self::node()/child::b",
		"//a":                          "/descendant-or-self::node()/child::a",
		"/a/*":                         "/child::a/child::*",
		"a/text()":                     "/child::a/child::text()",
		"a[b]":                         "/child::a[child::b]",
		"a[b and not(c)]":              "/child::a[(child::b and not(child::c))]",
		"a[b or c]/d":                  "/child::a[(child::b or child::c)]/child::d",
		"a/..":                         "/child::a/parent::node()",
		"a/.":                          "/child::a/self::node()",
		"ancestor::a":                  "/ancestor::a",
		"following-sibling::*":         "/following-sibling::*",
		"a[descendant::b[c]]":          "/child::a[descendant::b[child::c]]",
		"a[preceding::b]/following::c": "/child::a[preceding::b]/following::c",
	}
	for src, want := range cases {
		p, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if got := p.String(); got != want {
			t.Errorf("Parse(%q) = %s, want %s", src, got, want)
		}
	}
}

// TestParseCarriageReturn locks down \r as whitespace: CRLF-embedded
// queries (multi-line workload entries, HTTP bodies from Windows
// clients) must parse instead of failing with "trailing input".
func TestParseCarriageReturn(t *testing.T) {
	cases := map[string]string{
		"//a\r\n":                "/descendant-or-self::node()/child::a",
		"a\r\n[b]":               "/child::a[child::b]",
		"\r\na[b\r\nand\r\nc]\r": "/child::a[(child::b and child::c)]",
		"a[ not(\rb) ]":          "/child::a[not(child::b)]",
	}
	for src, want := range cases {
		p, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if got := p.String(); got != want {
			t.Errorf("Parse(%q) = %s, want %s", src, got, want)
		}
	}
	// A bare \r between identifier bytes is still a token break, not glue.
	if _, err := Parse("a\rb"); err == nil {
		t.Error(`Parse("a\rb") succeeded, want error`)
	}
}

// TestNormalize checks that syntactic variants of one query share a
// normalized form (the plan-cache key) and that normalization is a
// fixed point.
func TestNormalize(t *testing.T) {
	variants := []string{
		"//a[b and not(c)]",
		"//a[ b\tand not( c ) ]",
		"//a[b\r\nand not(c)]",
		"/descendant-or-self::node()/child::a[child::b and not(child::c)]",
	}
	want, err := Normalize(variants[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		got, err := Normalize(v)
		if err != nil {
			t.Fatalf("Normalize(%q): %v", v, err)
		}
		if got != want {
			t.Errorf("Normalize(%q) = %s, want %s", v, got, want)
		}
	}
	again, err := Normalize(want)
	if err != nil || again != want {
		t.Errorf("Normalize is not a fixed point: %q -> %q, %v", want, again, err)
	}
	if _, err := Normalize("a["); err == nil {
		t.Error("Normalize accepted a malformed query")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "a[", "a]", "a[b", "a[not b]", "bogus::a", "a b", "a[()]",
		"a/", "//", "a[foo()]",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestInterpBasics(t *testing.T) {
	// ids: doc=0 a=1 b=2 'x'=3 c=4 a=5 b=6
	doc := `<doc><a><b>x</b><c/></a><a><b/></a></doc>`
	tr := parseDoc(t, doc)
	in := NewInterp(tr)
	cases := []struct {
		q    string
		want []int
	}{
		{"/doc", []int{0}},
		{"/doc/a", []int{1, 5}},
		{"//b", []int{2, 6}},
		{"//text()", []int{3}},
		{"//*", []int{0, 1, 2, 4, 5, 6}},
		{"//b/..", []int{1, 5}},
		{"//a[c]", []int{1}},
		{"//a[not(c)]", []int{5}},
		{"//a[b and c]", []int{1}},
		{"//a[b or c]", []int{1, 5}},
		{"//c/preceding-sibling::b", []int{2}},
		{"//b/following-sibling::c", []int{4}},
		{"//c/following::b", []int{6}},
		{"//b[text()]", []int{2}},
		{"//b/ancestor::a", []int{1, 5}},
		{"//a[descendant::text()]", []int{1}},
		{"/doc/a[following-sibling::a]", []int{1}},
	}
	for _, c := range cases {
		p, err := Parse(c.q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.q, err)
		}
		got := selected(in.Eval(p))
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("%s: got %v, want %v", c.q, got, c.want)
		}
	}
}

// TestTranslateMatchesInterp is the main differential: the TMNF
// translation evaluated by the two-phase engine must agree with the
// direct interpreter, on handwritten queries covering every axis and
// condition form.
func TestTranslateMatchesInterp(t *testing.T) {
	docs := []string{
		`<doc><a><b>x</b><c/></a><a><b/></a></doc>`,
		`<r><a><a><b/></a></a><b><a/></b>t</r>`,
		`<r><x/><y><x><y/></x></y><z/></r>`,
	}
	queries := []string{
		"/doc", "//a", "//a/b", "//b/..", "//a[c]", "//a[not(c)]",
		"//a[b and c]", "//a[b or c]", "//a[not(b) and not(c)]",
		"//*[text()]", "//a/descendant::b", "//b/ancestor::a",
		"//b/ancestor-or-self::*", "//a/following-sibling::*",
		"//a/preceding-sibling::*", "//a/following::*", "//a/preceding::*",
		"//a[descendant::b]", "//a[ancestor::a]", "//a[not(ancestor::a)]",
		"//a[following::b]", "//x[/r/z]", "//x[not(/r/q)]",
		"//a[not(b[not(c)])]", "//*[self::a or self::b]",
		"/descendant::a[preceding::x]",
	}
	for _, doc := range docs {
		tr := parseDoc(t, doc)
		in := NewInterp(tr)
		for _, qs := range queries {
			p, err := Parse(qs)
			if err != nil {
				t.Fatalf("Parse(%q): %v", qs, err)
			}
			want := selected(in.Eval(p))
			q, err := Translate(p)
			if err != nil {
				t.Fatalf("Translate(%q): %v", qs, err)
			}
			sel, err := q.Eval(tr)
			if err != nil {
				t.Fatalf("Eval(%q): %v", qs, err)
			}
			if got := selected(sel); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("doc %s\nquery %s: engine %v, interpreter %v", doc, qs, got, want)
			}
		}
	}
}

// randomXPath generates a random positive-or-negated Core XPath query.
func randomXPath(rng *rand.Rand, depth int) string {
	axes := []string{"child", "descendant", "self", "parent", "ancestor",
		"descendant-or-self", "ancestor-or-self",
		"following-sibling", "preceding-sibling", "following", "preceding"}
	tests := []string{"a", "b", "c", "*", "node()", "text()"}
	var step func(d int) string
	step = func(d int) string {
		s := axes[rng.Intn(len(axes))] + "::" + tests[rng.Intn(len(tests))]
		if d < 2 && rng.Intn(3) == 0 {
			inner := step(d + 1)
			if rng.Intn(3) == 0 {
				inner = "not(" + inner + ")"
			}
			if rng.Intn(3) == 0 {
				op := " and "
				if rng.Intn(2) == 0 {
					op = " or "
				}
				inner += op + step(d+1)
			}
			s += "[" + inner + "]"
		}
		return s
	}
	n := 1 + rng.Intn(3)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = step(depth)
	}
	return "//" + strings.Join(parts, "/")
}

func TestTranslateMatchesInterpRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 150; iter++ {
		tr := testutil.RandomTree(rng, 30)
		qs := randomXPath(rng, 0)
		p, err := Parse(qs)
		if err != nil {
			t.Fatalf("Parse(%q): %v", qs, err)
		}
		in := NewInterp(tr)
		want := selected(in.Eval(p))
		q, err := Translate(p)
		if err != nil {
			t.Fatalf("Translate(%q): %v", qs, err)
		}
		sel, err := q.Eval(tr)
		if err != nil {
			t.Fatalf("Eval(%q): %v", qs, err)
		}
		if got := selected(sel); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("iter %d: query %s\nengine      %v\ninterpreter %v\ntree:\n%s",
				iter, qs, got, want, tr)
		}
	}
}

func TestNestedNegationPasses(t *testing.T) {
	q, err := Compile("//a[not(b[not(c)])]")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Passes) != 2 {
		t.Fatalf("got %d passes, want 2", len(q.Passes))
	}
	// The inner not(c) pass must come first.
	if !strings.Contains(q.Passes[1].String(), "Aux[0]") {
		t.Fatalf("outer pass does not reference Aux[0]:\n%s", q.Passes[1])
	}
}

func TestTooManyNegations(t *testing.T) {
	var b strings.Builder
	b.WriteString("//a")
	for i := 0; i < 17; i++ {
		b.WriteString("[not(b)]")
	}
	if _, err := Compile(b.String()); err == nil {
		t.Fatal("Compile accepted 17 not(..) conditions")
	}
}

// TestPositiveFragmentOnDisk runs a single-program (negation-free) XPath
// query through the secondary-storage driver and compares with the
// interpreter.
func TestPositiveFragmentOnDisk(t *testing.T) {
	tr := parseDoc(t, `<doc><a><b>x</b><c/></a><a><b/></a></doc>`)
	base := filepath.Join(t.TempDir(), "db")
	db, err := storage.CreateFromTree(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for _, qs := range []string{"//a[c]", "//b/ancestor::a", "//a/following::*", "/doc/a/b"} {
		q, err := Compile(qs)
		if err != nil {
			t.Fatal(err)
		}
		if len(q.Passes) != 0 {
			t.Fatalf("%s: unexpected passes", qs)
		}
		c, err := core.Compile(q.Main)
		if err != nil {
			t.Fatal(err)
		}
		e := core.NewEngine(c, db.Names)
		res, _, err := e.RunDisk(db, core.DiskOpts{})
		if err != nil {
			t.Fatal(err)
		}
		want := selected(NewInterp(tr).Eval(MustParse(qs)))
		var got []int
		res.Walk(q.Main.Queries()[0], func(v tree.NodeID) bool {
			got = append(got, int(v))
			return true
		})
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: disk %v, interpreter %v", qs, got, want)
		}
	}
}

// TestXPathParserRobustness throws random byte soup at the parser.
func TestXPathParserRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	chars := []byte("abc:/[]()*@.|! ndorst")
	for iter := 0; iter < 2000; iter++ {
		n := rng.Intn(50)
		b := make([]byte, n)
		for i := range b {
			b[i] = chars[rng.Intn(len(chars))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", b, r)
				}
			}()
			if p, err := Parse(string(b)); err == nil {
				// Whatever parses must also translate and print.
				_ = p.String()
				if _, err := Translate(p); err != nil && !strings.Contains(err.Error(), "not(") {
					t.Fatalf("Translate(%q): %v", b, err)
				}
			}
		}()
	}
}

// TestEvalDiskMatchesEval runs multi-pass (negated) queries entirely in
// secondary storage and compares with the in-memory evaluator and the
// interpreter.
func TestEvalDiskMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 40; iter++ {
		tr := testutil.RandomTree(rng, 40)
		dir := t.TempDir()
		db, err := storage.CreateFromTree(filepath.Join(dir, "db"), tr)
		if err != nil {
			t.Fatal(err)
		}
		qs := randomXPath(rng, 0)
		q, err := Compile(qs)
		if err != nil {
			t.Fatalf("Compile(%q): %v", qs, err)
		}
		mem, err := q.Eval(tr)
		if err != nil {
			t.Fatal(err)
		}
		want := selected(NewInterp(tr).Eval(q.Path))
		for _, workers := range []int{1, 3} {
			res, err := q.EvalDisk(db, dir, workers)
			if err != nil {
				t.Fatalf("EvalDisk(%q, workers=%d): %v", qs, workers, err)
			}
			var gotDisk []int
			res.Walk(q.Main.Queries()[0], func(v tree.NodeID) bool {
				gotDisk = append(gotDisk, int(v))
				return true
			})
			if fmt.Sprint(gotDisk) != fmt.Sprint(want) {
				t.Fatalf("iter %d: query %s (workers=%d)\ndisk        %v\ninterpreter %v", iter, qs, workers, gotDisk, want)
			}
		}
		if fmt.Sprint(selected(mem)) != fmt.Sprint(want) {
			t.Fatalf("iter %d: query %s: memory %v, interpreter %v", iter, qs, selected(mem), want)
		}
		db.Close()
	}
}
