// Package xpath implements a Core XPath frontend for the engine: the
// navigational XPath fragment of [10] (all axes, name/*/text() node
// tests, and predicates combined with and/or/not), parsed, translatable
// to TMNF in linear time, and evaluable either directly (a reference
// interpreter used as the test oracle) or through the two-phase automata
// engine.
//
// Positive queries translate to a single TMNF program. not(..)
// subconditions are handled by multi-pass evaluation: each negated
// condition becomes its own program whose result is fed back to later
// passes as an auxiliary node predicate (Aux[k]) — the paper's Section 7
// mechanism of exposing precomputed information through the labeling.
package xpath

import (
	"fmt"
	"strings"
)

// Axis enumerates the Core XPath axes.
type Axis uint8

const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowingSibling
	AxisPrecedingSibling
	AxisFollowing
	AxisPreceding
)

var axisNames = map[Axis]string{
	AxisChild:            "child",
	AxisDescendant:       "descendant",
	AxisDescendantOrSelf: "descendant-or-self",
	AxisSelf:             "self",
	AxisParent:           "parent",
	AxisAncestor:         "ancestor",
	AxisAncestorOrSelf:   "ancestor-or-self",
	AxisFollowingSibling: "following-sibling",
	AxisPrecedingSibling: "preceding-sibling",
	AxisFollowing:        "following",
	AxisPreceding:        "preceding",
}

func (a Axis) String() string { return axisNames[a] }

// Inverse returns the converse axis: y in a(x) iff x in a.Inverse()(y).
// Qualifier translation propagates match sets backwards through it.
func (a Axis) Inverse() Axis {
	switch a {
	case AxisChild:
		return AxisParent
	case AxisParent:
		return AxisChild
	case AxisDescendant:
		return AxisAncestor
	case AxisAncestor:
		return AxisDescendant
	case AxisDescendantOrSelf:
		return AxisAncestorOrSelf
	case AxisAncestorOrSelf:
		return AxisDescendantOrSelf
	case AxisFollowingSibling:
		return AxisPrecedingSibling
	case AxisPrecedingSibling:
		return AxisFollowingSibling
	case AxisFollowing:
		return AxisPreceding
	case AxisPreceding:
		return AxisFollowing
	case AxisSelf:
		return AxisSelf
	}
	panic("xpath: unknown axis")
}

// TestKind classifies node tests.
type TestKind uint8

const (
	TestName TestKind = iota // a tag name
	TestStar                 // *: any element
	TestText                 // text(): any character node
	TestNode                 // node(): any node
)

// NodeTest is a step's node test.
type NodeTest struct {
	Kind TestKind
	Name string // TestName
}

func (nt NodeTest) String() string {
	switch nt.Kind {
	case TestName:
		return nt.Name
	case TestStar:
		return "*"
	case TestText:
		return "text()"
	}
	return "node()"
}

// Step is one location step: axis::test[q1][q2]...
type Step struct {
	Axis  Axis
	Test  NodeTest
	Quals []*Cond
}

func (s Step) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s::%s", s.Axis, s.Test)
	for _, q := range s.Quals {
		fmt.Fprintf(&b, "[%s]", q)
	}
	return b.String()
}

// Path is a location path. Absolute paths start at the root; relative
// paths start at the context node (only meaningful inside qualifiers —
// a top-level query is implicitly absolute).
type Path struct {
	Absolute bool
	Steps    []Step
}

func (p *Path) String() string {
	var b strings.Builder
	if p.Absolute {
		b.WriteString("/")
	}
	for i, s := range p.Steps {
		if i > 0 {
			b.WriteString("/")
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// CondKind classifies qualifier conditions.
type CondKind uint8

const (
	CondPath CondKind = iota // existential path
	CondAnd
	CondOr
	CondNot
)

// Cond is a qualifier condition tree.
type Cond struct {
	Kind CondKind
	L, R *Cond // CondAnd, CondOr; CondNot uses L
	Path *Path // CondPath
}

func (c *Cond) String() string {
	switch c.Kind {
	case CondPath:
		return c.Path.String()
	case CondAnd:
		return fmt.Sprintf("(%s and %s)", c.L, c.R)
	case CondOr:
		return fmt.Sprintf("(%s or %s)", c.L, c.R)
	case CondNot:
		return fmt.Sprintf("not(%s)", c.L)
	}
	return "?"
}
