package xpath

import "testing"

// FuzzNormalizeStable pins the normalization contract both caches lean
// on: the plan cache and the result cache key entries by the normalized
// query text ("xpath:" + Parse(src).String()), so two spellings of one
// query must reach one key, and that key must denote exactly one
// compiled plan. Concretely, for any parseable input: the normal form
// must re-parse, normalizing again must be a fixpoint (otherwise one
// query smears across several cache keys), and the round-tripped parse
// must compile to the same automata (otherwise one cache key could
// serve two different plans — a wrong-answer bug, not a perf bug).
// Run with `go test -fuzz FuzzNormalizeStable ./internal/xpath`.
func FuzzNormalizeStable(f *testing.F) {
	for _, seed := range []string{
		// Whitespace and spelling variants that must converge.
		"/a/b",
		"  /a/b  ",
		"/ a / b",
		"//a",
		"/descendant-or-self::node()/child::a",
		"descendant::a",
		"a//b",
		"a / descendant-or-self :: node ( ) / child :: b",
		"a/.",
		"a/self::node()",
		"a/..",
		"a/parent::node()",
		"a/text()",
		"a/child::text()",
		"a[b]",
		"a[ b ]",
		"a[b and not(c)]",
		"a[b][not(c)]",
		"a[b or c]/d",
		"ancestor::a",
		"following-sibling::*",
		"preceding::*",
		"a[descendant::b[c]]",
		"not(a)",
		"((((a))))",
		"*//*[*]",
		"self::node()",
		// Keyword-looking tags: axes are only axes before '::'.
		"child",
		"node",
		"text",
		"not",
		"child/child::child",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := Parse(src)
		if err != nil {
			return // rejecting the input is fine
		}
		norm := p1.String()
		p2, err := Parse(norm)
		if err != nil {
			t.Fatalf("normal form of %q does not re-parse: %q: %v", src, norm, err)
		}
		if again := p2.String(); again != norm {
			t.Fatalf("normalization of %q is not a fixpoint: %q -> %q", src, norm, again)
		}
		// The same cache key must always denote the same plan: compile
		// both parses and compare the generated programs verbatim.
		q1, err1 := Translate(p1)
		q2, err2 := Translate(p2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Translate diverges across the round-trip of %q: %v vs %v", src, err1, err2)
		}
		if err1 != nil {
			return
		}
		if got, want := q2.Main.String(), q1.Main.String(); got != want {
			t.Fatalf("round-trip of %q changed the main program:\n%s\nvs\n%s", src, want, got)
		}
		if len(q1.Passes) != len(q2.Passes) {
			t.Fatalf("round-trip of %q changed the pass count: %d vs %d", src, len(q1.Passes), len(q2.Passes))
		}
		for k := range q1.Passes {
			if q1.Passes[k].String() != q2.Passes[k].String() {
				t.Fatalf("round-trip of %q changed pass %d", src, k)
			}
		}
	})
}
