package xpath

import (
	"fmt"
	"strings"
)

// Parse parses a Core XPath query. Both full axis syntax
// (child::a/descendant::b[child::c]) and the abbreviations
// a//b[c], '.', '..', leading / and // are accepted. Top-level queries
// are absolute (a missing leading / is implied, as users typically write
// //a-style queries; a leading relative step means /descendant-or-self
// context is NOT assumed — "a/b" selects b-children of a root labeled a).
func Parse(src string) (*Path, error) {
	p := &xparser{src: src}
	path, err := p.path(true)
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.i != len(p.src) {
		return nil, fmt.Errorf("xpath: trailing input at offset %d in %q", p.i, src)
	}
	path.Absolute = true
	return path, nil
}

// MustParse is Parse, panicking on error.
func MustParse(src string) *Path {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type xparser struct {
	src string
	i   int
}

func (p *xparser) ws() {
	// \r counts: queries arriving from CRLF sources (multi-line workload
	// files, HTTP request bodies) carry carriage returns that must not
	// surface as "trailing input".
	for p.i < len(p.src) && (p.src[p.i] == ' ' || p.src[p.i] == '\t' || p.src[p.i] == '\n' || p.src[p.i] == '\r') {
		p.i++
	}
}

func (p *xparser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("xpath: offset %d: %s", p.i, fmt.Sprintf(format, args...))
}

// path parses a location path. top selects the top-level rule, where a
// leading '/' or '//' is optional.
func (p *xparser) path(top bool) (*Path, error) {
	path := &Path{}
	p.ws()
	if strings.HasPrefix(p.src[p.i:], "//") {
		p.i += 2
		path.Absolute = true
		path.Steps = append(path.Steps, Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode}})
	} else if p.i < len(p.src) && p.src[p.i] == '/' {
		p.i++
		path.Absolute = true
		p.ws()
		if p.i == len(p.src) || p.src[p.i] == ']' || isBoolOpAt(p.src, p.i) {
			// Bare "/": the root element (child::node() of the virtual
			// document node above it).
			path.Steps = append(path.Steps, Step{Axis: AxisChild, Test: NodeTest{Kind: TestNode}})
			return path, nil
		}
	}
	for {
		st, err := p.step()
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, st)
		p.ws()
		if strings.HasPrefix(p.src[p.i:], "//") {
			p.i += 2
			path.Steps = append(path.Steps, Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode}})
			continue
		}
		if p.i < len(p.src) && p.src[p.i] == '/' {
			p.i++
			continue
		}
		return path, nil
	}
}

func isBoolOpAt(s string, i int) bool {
	rest := s[i:]
	return strings.HasPrefix(rest, "and ") || strings.HasPrefix(rest, "or ") || strings.HasPrefix(rest, ")")
}

// step parses one location step.
func (p *xparser) step() (Step, error) {
	p.ws()
	if strings.HasPrefix(p.src[p.i:], "..") {
		p.i += 2
		return p.quals(Step{Axis: AxisParent, Test: NodeTest{Kind: TestNode}})
	}
	if p.i < len(p.src) && p.src[p.i] == '.' {
		p.i++
		return p.quals(Step{Axis: AxisSelf, Test: NodeTest{Kind: TestNode}})
	}
	axis := AxisChild
	name := p.ident()
	p.ws()
	if strings.HasPrefix(p.src[p.i:], "::") {
		a, ok := axisByName(name)
		if !ok {
			return Step{}, p.errf("unknown axis %q", name)
		}
		axis = a
		p.i += 2
		p.ws()
		name = p.ident()
	}
	test, err := p.nodeTest(name)
	if err != nil {
		return Step{}, err
	}
	return p.quals(Step{Axis: axis, Test: test})
}

func (p *xparser) nodeTest(name string) (NodeTest, error) {
	p.ws()
	if name == "" {
		if p.i < len(p.src) && p.src[p.i] == '*' {
			p.i++
			return NodeTest{Kind: TestStar}, nil
		}
		return NodeTest{}, p.errf("expected a node test")
	}
	if strings.HasPrefix(p.src[p.i:], "()") {
		switch name {
		case "text":
			p.i += 2
			return NodeTest{Kind: TestText}, nil
		case "node":
			p.i += 2
			return NodeTest{Kind: TestNode}, nil
		default:
			return NodeTest{}, p.errf("unknown node-test function %q", name)
		}
	}
	return NodeTest{Kind: TestName, Name: name}, nil
}

func (p *xparser) quals(st Step) (Step, error) {
	for {
		p.ws()
		if p.i >= len(p.src) || p.src[p.i] != '[' {
			return st, nil
		}
		p.i++
		c, err := p.orCond()
		if err != nil {
			return Step{}, err
		}
		p.ws()
		if p.i >= len(p.src) || p.src[p.i] != ']' {
			return Step{}, p.errf("missing ']'")
		}
		p.i++
		st.Quals = append(st.Quals, c)
	}
}

func (p *xparser) orCond() (*Cond, error) {
	l, err := p.andCond()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		if !p.keyword("or") {
			return l, nil
		}
		r, err := p.andCond()
		if err != nil {
			return nil, err
		}
		l = &Cond{Kind: CondOr, L: l, R: r}
	}
}

func (p *xparser) andCond() (*Cond, error) {
	l, err := p.unaryCond()
	if err != nil {
		return nil, err
	}
	for {
		p.ws()
		if !p.keyword("and") {
			return l, nil
		}
		r, err := p.unaryCond()
		if err != nil {
			return nil, err
		}
		l = &Cond{Kind: CondAnd, L: l, R: r}
	}
}

func (p *xparser) unaryCond() (*Cond, error) {
	p.ws()
	if p.keyword("not") {
		p.ws()
		if p.i >= len(p.src) || p.src[p.i] != '(' {
			return nil, p.errf("expected '(' after not")
		}
		p.i++
		inner, err := p.orCond()
		if err != nil {
			return nil, err
		}
		p.ws()
		if p.i >= len(p.src) || p.src[p.i] != ')' {
			return nil, p.errf("missing ')' after not(..)")
		}
		p.i++
		return &Cond{Kind: CondNot, L: inner}, nil
	}
	if p.i < len(p.src) && p.src[p.i] == '(' {
		p.i++
		inner, err := p.orCond()
		if err != nil {
			return nil, err
		}
		p.ws()
		if p.i >= len(p.src) || p.src[p.i] != ')' {
			return nil, p.errf("missing ')'")
		}
		p.i++
		return inner, nil
	}
	path, err := p.path(false)
	if err != nil {
		return nil, err
	}
	return &Cond{Kind: CondPath, Path: path}, nil
}

// keyword consumes an identifier keyword if it is next (not a prefix of a
// longer name).
func (p *xparser) keyword(kw string) bool {
	if !strings.HasPrefix(p.src[p.i:], kw) {
		return false
	}
	after := p.i + len(kw)
	if after < len(p.src) && isIdentByte(p.src[after]) {
		return false
	}
	p.i = after
	return true
}

func (p *xparser) ident() string {
	start := p.i
	for p.i < len(p.src) && isIdentByte(p.src[p.i]) {
		p.i++
	}
	return p.src[start:p.i]
}

func isIdentByte(c byte) bool {
	return c == '_' || c == '-' || c == '@' ||
		'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

func axisByName(name string) (Axis, bool) {
	for a, n := range axisNames {
		if n == name {
			return a, true
		}
	}
	return 0, false
}
