package xpath

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"arb/internal/core"
	"arb/internal/xmlparse"
)

// TestExecStatsDeterministicUnderOverlap pins the satellite contract of
// the per-run stats sinks: when executions of one Prepared overlap, each
// one's profile reports exactly its own work. Node counts are fixed per
// run (passes x document size), and the per-run transition counts sum to
// the engines' cumulative totals — every lazily computed transition is
// credited to exactly one run, never double-counted, never dropped.
func TestExecStatsDeterministicUnderOverlap(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 200; i++ {
		sb.WriteString(fmt.Sprintf("<a><b x='1'>t%d</b><c/></a>", i%7))
	}
	sb.WriteString("</root>")
	tr, err := xmlparse.ParseTree(strings.NewReader(sb.String()), xmlparse.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile("//a[b and not(c)]") // multi-pass: aux engines too
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Prepare(tr.Names())
	if err != nil {
		t.Fatal(err)
	}

	const runs = 8
	profiles := make([]ExecStats, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, es, err := p.ExecTree(context.Background(), tr, ExecOpts{Workers: 1})
			if err != nil {
				t.Error(err)
				return
			}
			profiles[i] = es
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	wantNodes := int64(p.Passes()) * int64(tr.Len())
	var sum core.Stats
	for i, es := range profiles {
		if es.Engine.Nodes != wantNodes {
			t.Errorf("run %d: Nodes = %d, want %d (deterministic per run)", i, es.Engine.Nodes, wantNodes)
		}
		sum.Add(es.Engine)
	}
	var cum core.Stats
	for _, e := range append(append([]*core.Engine{}, p.aux...), p.main) {
		cum.Add(e.Stats())
	}
	if sum.BUTransitions != cum.BUTransitions || sum.TDTransitions != cum.TDTransitions ||
		sum.BUStates != cum.BUStates || sum.TDStates != cum.TDStates {
		t.Errorf("per-run transition counts do not partition the cumulative totals:\nsum of runs: %+v\ncumulative:  %+v", sum, cum)
	}
	if sum.Nodes != cum.Nodes {
		t.Errorf("per-run node counts sum to %d, engines accumulated %d", sum.Nodes, cum.Nodes)
	}
}
