package xpath

import (
	"fmt"
	"os"
	"path/filepath"

	"arb/internal/core"
	"arb/internal/storage"
	"arb/internal/tree"
)

// Eval evaluates the compiled query over an in-memory tree with the
// two-phase automata engine, running the auxiliary passes in order (each
// feeding its result into the Aux labeling of later passes) and returning
// the main pass's selected nodes as a truth vector over preorder ids.
func (q *Query) Eval(t *tree.Tree) ([]bool, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("xpath: empty tree")
	}
	aux := make([]uint16, t.Len())
	auxFn := func(v tree.NodeID) uint16 { return aux[v] }

	for k, pass := range q.Passes {
		c, err := core.Compile(pass)
		if err != nil {
			return nil, fmt.Errorf("xpath: pass %d: %w", k, err)
		}
		e := core.NewEngine(c, t.Names())
		res, err := e.Run(t, core.RunOpts{Aux: auxFn})
		if err != nil {
			return nil, fmt.Errorf("xpath: pass %d: %w", k, err)
		}
		bit := uint16(1) << uint(k)
		res.Walk(pass.Queries()[0], func(v tree.NodeID) bool {
			aux[v] |= bit
			return true
		})
	}

	c, err := core.Compile(q.Main)
	if err != nil {
		return nil, err
	}
	e := core.NewEngine(c, t.Names())
	res, err := e.Run(t, core.RunOpts{Aux: auxFn})
	if err != nil {
		return nil, err
	}
	out := make([]bool, t.Len())
	res.Walk(q.Main.Queries()[0], func(v tree.NodeID) bool {
		out[v] = true
		return true
	})
	return out, nil
}

// EvalDisk evaluates the compiled query over a .arb database entirely in
// secondary storage: each auxiliary pass runs as two linear scans whose
// phase 2 streams an updated 2-byte-per-node aux-mask sidecar file, which
// the next pass reads alongside the database. dir holds the temporary
// aux files (the database directory is a natural choice). Every pass runs
// with the given number of workers (1 = sequential, 0 = all CPUs; see
// core.Engine.RunDiskParallel). The result is the main pass's selected
// nodes.
func (q *Query) EvalDisk(db *storage.DB, dir string, workers int) (*core.Result, error) {
	runPass := func(e *core.Engine, opts core.DiskOpts) (*core.Result, error) {
		if workers != 1 {
			res, _, err := e.RunDiskParallel(db, workers, opts)
			return res, err
		}
		res, _, err := e.RunDisk(db, opts)
		return res, err
	}
	var auxIn string
	if len(q.Passes) > 0 {
		// A private temp directory per evaluation: concurrent queries
		// sharing a database directory must not clobber each other's
		// sidecar files.
		tmp, err := os.MkdirTemp(dir, "arb-aux-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	for k, pass := range q.Passes {
		c, err := core.Compile(pass)
		if err != nil {
			return nil, fmt.Errorf("xpath: pass %d: %w", k, err)
		}
		e := core.NewEngine(c, db.Names)
		auxOut := filepath.Join(dir, fmt.Sprintf("pass%d.aux", k))
		_, err = runPass(e, core.DiskOpts{
			AuxIn:     auxIn,
			AuxOut:    auxOut,
			AuxOutBit: uint8(k),
			// Each pass has exactly one query predicate, index 0.
		})
		if err != nil {
			return nil, fmt.Errorf("xpath: pass %d: %w", k, err)
		}
		auxIn = auxOut
	}
	c, err := core.Compile(q.Main)
	if err != nil {
		return nil, err
	}
	e := core.NewEngine(c, db.Names)
	return runPass(e, core.DiskOpts{AuxIn: auxIn})
}
