//arblint:shims
// Deprecated context-less entry points kept for callers of earlier
// releases; in-repo code must not call them (enforced by noshims).

package xpath

import (
	"context"

	"arb/internal/core"
	"arb/internal/storage"
	"arb/internal/tree"
)

// Eval evaluates the compiled query over an in-memory tree, returning the
// main pass's selected nodes as a truth vector over preorder ids.
//
// Deprecated: use Prepare and Prepared.ExecTree (or the arb package's
// Session/PreparedQuery API), which persist the compiled automata across
// executions, return the unified core.Result and support cancellation.
func (q *Query) Eval(t *tree.Tree) ([]bool, error) {
	p, err := q.Prepare(t.Names())
	if err != nil {
		return nil, err
	}
	res, _, err := p.ExecTree(context.Background(), t, ExecOpts{Workers: 1})
	if err != nil {
		return nil, err
	}
	out := make([]bool, t.Len())
	res.Walk(p.Queries()[0], func(v tree.NodeID) bool {
		out[v] = true
		return true
	})
	return out, nil
}

// EvalDisk evaluates the compiled query over a .arb database entirely in
// secondary storage, with temporary aux sidecars under dir and the given
// number of workers per pass (1 = sequential, 0 = all CPUs).
//
// Deprecated: use Prepare and Prepared.ExecDisk (or the arb package's
// Session/PreparedQuery API), which persist the compiled automata across
// executions and support cancellation.
func (q *Query) EvalDisk(db *storage.DB, dir string, workers int) (*core.Result, error) {
	p, err := q.Prepare(db.Names)
	if err != nil {
		return nil, err
	}
	res, _, err := p.ExecDisk(context.Background(), db, ExecOpts{Workers: ResolveWorkers(workers), AuxDir: dir})
	if err != nil {
		return nil, err
	}
	return res, nil
}
