package xpath

import (
	"fmt"
	"os"
	"path/filepath"

	"arb/internal/core"
	"arb/internal/storage"
	"arb/internal/tree"
)

// Eval evaluates the compiled query over an in-memory tree with the
// two-phase automata engine, running the auxiliary passes in order (each
// feeding its result into the Aux labeling of later passes) and returning
// the main pass's selected nodes as a truth vector over preorder ids.
func (q *Query) Eval(t *tree.Tree) ([]bool, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("xpath: empty tree")
	}
	aux := make([]uint16, t.Len())
	auxFn := func(v tree.NodeID) uint16 { return aux[v] }

	for k, pass := range q.Passes {
		c, err := core.Compile(pass)
		if err != nil {
			return nil, fmt.Errorf("xpath: pass %d: %w", k, err)
		}
		e := core.NewEngine(c, t.Names())
		res, err := e.Run(t, core.RunOpts{Aux: auxFn})
		if err != nil {
			return nil, fmt.Errorf("xpath: pass %d: %w", k, err)
		}
		bit := uint16(1) << uint(k)
		res.Walk(pass.Queries()[0], func(v tree.NodeID) bool {
			aux[v] |= bit
			return true
		})
	}

	c, err := core.Compile(q.Main)
	if err != nil {
		return nil, err
	}
	e := core.NewEngine(c, t.Names())
	res, err := e.Run(t, core.RunOpts{Aux: auxFn})
	if err != nil {
		return nil, err
	}
	out := make([]bool, t.Len())
	res.Walk(q.Main.Queries()[0], func(v tree.NodeID) bool {
		out[v] = true
		return true
	})
	return out, nil
}

// EvalDisk evaluates the compiled query over a .arb database entirely in
// secondary storage: each auxiliary pass runs as two linear scans whose
// phase 2 streams an updated 2-byte-per-node aux-mask sidecar file, which
// the next pass reads alongside the database. dir holds the temporary
// aux files (the database directory is a natural choice). The result is
// the main pass's selected nodes.
func (q *Query) EvalDisk(db *storage.DB, dir string) (*core.Result, error) {
	var auxIn string
	for k, pass := range q.Passes {
		c, err := core.Compile(pass)
		if err != nil {
			return nil, fmt.Errorf("xpath: pass %d: %w", k, err)
		}
		e := core.NewEngine(c, db.Names)
		auxOut := filepath.Join(dir, fmt.Sprintf("pass%d.aux", k))
		defer os.Remove(auxOut)
		_, _, err = e.RunDisk(db, core.DiskOpts{
			AuxIn:     auxIn,
			AuxOut:    auxOut,
			AuxOutBit: uint8(k),
			// Each pass has exactly one query predicate, index 0.
		})
		if err != nil {
			return nil, fmt.Errorf("xpath: pass %d: %w", k, err)
		}
		auxIn = auxOut
	}
	c, err := core.Compile(q.Main)
	if err != nil {
		return nil, err
	}
	e := core.NewEngine(c, db.Names)
	res, _, err := e.RunDisk(db, core.DiskOpts{AuxIn: auxIn})
	return res, err
}
