package xpath

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"arb/internal/core"
	"arb/internal/parallel"
	"arb/internal/storage"
	"arb/internal/tree"
)

// Batch is a set of Prepared queries that execute together, sharing each
// scan pair across all members. Single-pass members cost one shared pair
// of passes for the whole batch; multi-pass members (XPath not(..)) are
// scheduled so that round r runs pass r of every member that still has
// one — sibling queries piggyback on each other's scans, and the total
// number of scan pairs is the maximum pass count over the batch, not the
// sum. Like Prepared, a Batch supports overlapping executions, including
// batches that share members (engines) with other live batches or
// scalar handles.
type Batch struct {
	members []*Prepared
}

// NewBatch groups prepared queries into a batch. The members keep their
// identity: each one's automata persist and its result slot in Exec's
// output follows member order.
func NewBatch(members []*Prepared) *Batch { return &Batch{members: members} }

// Len returns the number of member queries.
func (b *Batch) Len() int { return len(b.members) }

// Member returns the i-th prepared query.
func (b *Batch) Member(i int) *Prepared { return b.members[i] }

// Rounds returns the number of shared scan pairs an execution runs: the
// maximum pass count over the members.
func (b *Batch) Rounds() int {
	r := 0
	for _, m := range b.members {
		if p := m.Passes(); p > r {
			r = p
		}
	}
	return r
}

// auxSlots assigns each multi-pass member its slot in the widened aux
// sidecars of disk executions; single-pass members get -1. The returned
// stride is the number of slots.
func (b *Batch) auxSlots() (slots []int, stride int) {
	slots = make([]int, len(b.members))
	for i, m := range b.members {
		if m.Passes() > 1 {
			slots[i] = stride
			stride++
		} else {
			slots[i] = -1
		}
	}
	return slots, stride
}

// roundMembers builds the core batch members of round r. For each member
// still holding a pass: pass r's engine, the member's aux input (bits of
// its earlier passes) and — on every pass but its main — the instruction
// to emit bit r of its own slot.
func (b *Batch) roundMembers(r int, slots []int, haveAuxIn bool, auxFn func(i int) func(tree.NodeID) uint16) (bms []core.BatchMember, idx []int, anyOut bool) {
	for i, m := range b.members {
		if r >= m.Passes() {
			continue
		}
		isMain := r == m.Passes()-1
		e := m.main
		if !isMain {
			e = m.aux[r]
		}
		bm := core.BatchMember{E: e, AuxInSlot: -1, AuxOutSlot: -1}
		if m.Passes() > 1 {
			if haveAuxIn {
				bm.AuxInSlot = slots[i]
			}
			if auxFn != nil {
				bm.Aux = auxFn(i)
			}
			if !isMain {
				bm.AuxOutSlot = slots[i]
				bm.AuxOutBit = uint8(r)
				anyOut = true
			}
		}
		bms = append(bms, bm)
		idx = append(idx, i)
	}
	return bms, idx, anyOut
}

// ExecTree evaluates the whole batch over an in-memory tree: each round
// is one shared pair of passes stepping every active member's automata
// per node (parallel over a subtree frontier when opts.Workers > 1).
// The results are returned in member order and are identical to running
// each member's ExecTree alone. opts.KeepStates and opts.MarkTo do not
// apply to batches and are ignored.
func (b *Batch) ExecTree(ctx context.Context, t *tree.Tree, opts ExecOpts) ([]*core.Result, ExecStats, error) {
	rounds := b.Rounds()
	es := ExecStats{Passes: rounds}
	if t.Len() == 0 {
		return nil, es, fmt.Errorf("xpath: empty tree")
	}
	results := make([]*core.Result, len(b.members))
	aux := make([][]uint16, len(b.members))
	slots, _ := b.auxSlots()
	ensureAux := func(i int) []uint16 {
		if aux[i] == nil {
			aux[i] = make([]uint16, t.Len())
		}
		return aux[i]
	}
	auxFn := func(i int) func(tree.NodeID) uint16 {
		a := ensureAux(i)
		return func(v tree.NodeID) uint16 { return a[v] }
	}
	err := statsDelta(&es, func(rs *core.RunStats) error {
		for r := 0; r < rounds; r++ {
			// Round 0 reads no aux bits (none have been produced yet), so
			// its members run with Aux nil — which lets the round prune.
			roundAux := auxFn
			if r == 0 {
				roundAux = nil
			}
			bms, idx, _ := b.roundMembers(r, slots, false, roundAux)
			topts := core.TreeBatchOpts{Index: opts.Index, NoPrune: opts.NoPrune, Run: rs}
			var rres []*core.Result
			var agg core.Stats
			var err error
			if opts.Workers > 1 {
				rres, agg, err = parallel.RunBatchContext(ctx, t, opts.Workers, bms, topts)
			} else {
				rres, agg, err = core.RunBatchTree(ctx, t, bms, topts)
			}
			if err != nil {
				return fmt.Errorf("xpath: batch round %d: %w", r, err)
			}
			es.Engine.Phase1Time += agg.Phase1Time
			es.Engine.Phase2Time += agg.Phase2Time
			for j, res := range rres {
				i := idx[j]
				m := b.members[i]
				if r == m.Passes()-1 {
					results[i] = res
					continue
				}
				bit := uint16(1) << uint(r)
				a := ensureAux(i)
				res.Walk(res.Queries()[0], func(v tree.NodeID) bool {
					a[v] |= bit
					return true
				})
			}
		}
		return nil
	})
	if err != nil {
		return nil, es, err
	}
	return results, es, nil
}

// ExecDisk evaluates the whole batch over a .arb database in secondary
// storage. Every round is one shared pair of linear scans for all active
// members: their phase-1 states interleave in one widened temporary state
// file, and multi-pass members chain their aux masks through one widened
// sidecar with a slot per member — so a batch of single-pass queries
// costs exactly two linear scans of the data in aggregate, however many
// queries it holds. Cancelling ctx aborts the scan in progress and
// removes every temporary file. opts.KeepStates and opts.MarkTo do not
// apply to batches and are ignored.
func (b *Batch) ExecDisk(ctx context.Context, db *storage.DB, opts ExecOpts) ([]*core.Result, ExecStats, error) {
	rounds := b.Rounds()
	es := ExecStats{Passes: rounds}
	results := make([]*core.Result, len(b.members))
	slots, stride := b.auxSlots()
	err := statsDelta(&es, func(rs *core.RunStats) error {
		var tmp string
		if stride > 0 {
			// A private temp directory per execution, removed on success,
			// failure and cancellation alike (cf. Prepared.ExecDisk).
			dir := opts.AuxDir
			if dir == "" {
				dir = filepath.Dir(db.Base)
			}
			var err error
			tmp, err = os.MkdirTemp(dir, "arb-aux-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
		}
		auxIn := ""
		for r := 0; r < rounds; r++ {
			bms, idx, anyOut := b.roundMembers(r, slots, auxIn != "", nil)
			dopts := core.DiskBatchOpts{AuxIn: auxIn, NoPrune: opts.NoPrune, Run: rs}
			if auxIn != "" {
				dopts.AuxInStride = stride
			}
			if anyOut {
				dopts.AuxOut = filepath.Join(tmp, fmt.Sprintf("round%d.aux", r))
				dopts.AuxOutStride = stride
			}
			var rres []*core.Result
			var agg core.Stats
			var ds *core.DiskStats
			var err error
			if opts.Workers > 1 {
				rres, agg, ds, err = core.RunDiskBatchParallel(ctx, db, opts.Workers, bms, dopts)
			} else {
				rres, agg, ds, err = core.RunDiskBatch(ctx, db, bms, dopts)
			}
			if err != nil {
				return fmt.Errorf("xpath: batch round %d: %w", r, err)
			}
			if ds != nil {
				es.Disk.Merge(*ds)
			}
			es.Engine.Phase1Time += agg.Phase1Time
			es.Engine.Phase2Time += agg.Phase2Time
			for j, res := range rres {
				i := idx[j]
				if r == b.members[i].Passes()-1 {
					results[i] = res
				}
			}
			auxIn = dopts.AuxOut
		}
		return nil
	})
	if err != nil {
		return nil, es, err
	}
	return results, es, nil
}
