package xpath

import (
	"strings"
	"testing"
)

// FuzzParseXPath asserts the Core XPath frontend never panics: any input
// either compiles (and the resulting pass programs are well-formed) or
// fails with an error. Run with `go test -fuzz FuzzParseXPath ./internal/xpath`.
func FuzzParseXPath(f *testing.F) {
	for _, seed := range []string{
		"/a/b",
		"a//b",
		"//a",
		"/a/*",
		"a/text()",
		"a[b]",
		"a[b and not(c)]",
		"a[b or c]/d",
		"a/..",
		"a/.",
		"ancestor::a",
		"following-sibling::*",
		"a[descendant::b[c]]",
		"a[preceding::b]/following::c",
		"//book[not(author/following-sibling::author)]/title",
		"//item[not(flag)]/name",
		"/descendant-or-self::node()/child::a",
		"not(a)",
		"a[not(not(b))]",
		"self::node()",
		"((((a))))",
		"a[]",
		"a[b][c][not(d)]",
		"*//*[*]",
		"/",
		"",
		"]]",
		"a b",
		"a[",
		"child::",
		"a/child::node()[not(descendant::b)]",
		strings.Repeat("a/", 200) + "b",
		strings.Repeat("a[not(", 20) + "b" + strings.Repeat(")]", 20),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Compile(src)
		if err != nil {
			return // rejecting the input is fine; panicking is not
		}
		if q == nil || q.Main == nil {
			t.Fatalf("Compile(%q) returned a nil query without an error", src)
		}
		if len(q.Main.Queries()) != 1 {
			t.Fatalf("Compile(%q): main pass has %d query predicates, want 1", src, len(q.Main.Queries()))
		}
		for k, pass := range q.Passes {
			if len(pass.Queries()) != 1 {
				t.Fatalf("Compile(%q): pass %d has %d query predicates, want 1", src, k, len(pass.Queries()))
			}
		}
	})
}
