package xpath

import (
	"arb/internal/tree"
)

// Interp is the reference interpreter: a direct, set-at-a-time evaluator
// of Core XPath over an in-memory tree. It is the oracle the translation
// to TMNF is tested against, and a baseline representing conventional
// in-memory XPath evaluation (multiple visits per node, whole tree
// resident).
type Interp struct {
	t *tree.Tree
	// Document structure derived from the binary encoding.
	docParent []tree.NodeID
	// order/size give document-order intervals for descendant checks; in
	// this representation preorder id already is document order.
}

// NewInterp prepares an interpreter for t.
func NewInterp(t *tree.Tree) *Interp {
	n := t.Len()
	in := &Interp{t: t, docParent: make([]tree.NodeID, n)}
	if n > 0 {
		in.docParent[0] = tree.None
	}
	for v := 0; v < n; v++ {
		if c := t.First(tree.NodeID(v)); c != tree.None {
			in.docParent[c] = tree.NodeID(v)
		}
		if c := t.Second(tree.NodeID(v)); c != tree.None {
			in.docParent[c] = in.docParent[v]
		}
	}
	return in
}

// set is a node set as a truth vector.
type set []bool

func (in *Interp) newSet() set { return make(set, in.t.Len()) }

// Eval evaluates an absolute path and returns the selected nodes as a
// truth vector over preorder ids.
func (in *Interp) Eval(p *Path) []bool {
	if in.t.Len() == 0 {
		return nil
	}
	ctx := in.newSet()
	ctx[0] = true // absolute: context is the root
	return in.evalPath(ctx, p)
}

func (in *Interp) evalPath(ctx set, p *Path) set {
	// Absolute paths start at the virtual document node above the root
	// element: its only child is node 0, its descendants are all nodes,
	// and no other axis leads anywhere from it. The virtual node stays
	// in the context through self::node() and descendant-or-self::node()
	// steps (so //* reaches the root element).
	virtual := p.Absolute
	if p.Absolute {
		ctx = in.newSet()
	}
	for i := range p.Steps {
		st := &p.Steps[i]
		out := in.axis(ctx, st.Axis)
		if virtual {
			switch st.Axis {
			case AxisChild:
				if len(out) > 0 {
					out[0] = true
				}
			case AxisDescendant, AxisDescendantOrSelf:
				for v := range out {
					out[v] = true
				}
			}
		}
		virtual = virtual && len(st.Quals) == 0 && st.Test.Kind == TestNode &&
			(st.Axis == AxisSelf || st.Axis == AxisDescendantOrSelf)
		ctx = in.filterStep(out, st)
	}
	return ctx
}

// filterStep applies a step's node test and qualifiers to an
// already-moved set.
func (in *Interp) filterStep(out set, st *Step) set {
	for v := range out {
		if !out[v] {
			continue
		}
		if !in.test(tree.NodeID(v), st.Test) {
			out[v] = false
			continue
		}
		for _, q := range st.Quals {
			if !in.holds(tree.NodeID(v), q) {
				out[v] = false
				break
			}
		}
	}
	return out
}

func (in *Interp) evalStep(ctx set, st *Step) set {
	return in.filterStep(in.axis(ctx, st.Axis), st)
}

func (in *Interp) test(v tree.NodeID, nt NodeTest) bool {
	l := in.t.Label(v)
	switch nt.Kind {
	case TestName:
		if l.IsChar() {
			return false
		}
		name, _ := in.t.Names().TagName(l)
		return name == nt.Name
	case TestStar:
		return !l.IsChar()
	case TestText:
		return l.IsChar()
	}
	return true
}

func (in *Interp) holds(v tree.NodeID, c *Cond) bool {
	switch c.Kind {
	case CondAnd:
		return in.holds(v, c.L) && in.holds(v, c.R)
	case CondOr:
		return in.holds(v, c.L) || in.holds(v, c.R)
	case CondNot:
		return !in.holds(v, c.L)
	}
	ctx := in.newSet()
	ctx[v] = true
	res := in.evalPath(ctx, c.Path)
	for _, ok := range res {
		if ok {
			return true
		}
	}
	return false
}

// axis applies an axis to a context set.
func (in *Interp) axis(ctx set, a Axis) set {
	t := in.t
	out := in.newSet()
	switch a {
	case AxisSelf:
		copy(out, ctx)
	case AxisChild:
		for v := range ctx {
			if !ctx[v] {
				continue
			}
			for c := t.First(tree.NodeID(v)); c != tree.None; c = t.Second(c) {
				out[c] = true
			}
		}
	case AxisParent:
		for v := range ctx {
			if ctx[v] && in.docParent[v] != tree.None {
				out[in.docParent[v]] = true
			}
		}
	case AxisDescendant, AxisDescendantOrSelf:
		// Propagate forward in preorder: v is a descendant iff its doc
		// parent is marked or a descendant.
		for v := range ctx {
			if ctx[v] {
				if a == AxisDescendantOrSelf {
					out[v] = true
				}
				if p := in.docParent[v]; p != tree.None && out[p] {
					out[v] = true // already implied; kept for clarity
				}
			}
			if p := in.docParent[v]; p != tree.None && (ctx[p] || out[p]) {
				out[v] = true
			}
		}
	case AxisAncestor, AxisAncestorOrSelf:
		for v := range ctx {
			if !ctx[v] {
				continue
			}
			if a == AxisAncestorOrSelf {
				out[v] = true
			}
			for p := in.docParent[v]; p != tree.None; p = in.docParent[p] {
				out[p] = true
			}
		}
	case AxisFollowingSibling:
		for v := range ctx {
			if !ctx[v] {
				continue
			}
			for s := t.Second(tree.NodeID(v)); s != tree.None; s = t.Second(s) {
				out[s] = true
			}
		}
	case AxisPrecedingSibling:
		// Mark forward: w is a preceding sibling of v iff v is a
		// following sibling of w.
		for v := range ctx {
			if !ctx[v] {
				continue
			}
			// Walk from the first sibling to v.
			start := tree.NodeID(v)
			if p := in.docParent[v]; p != tree.None {
				start = t.First(p)
			} else {
				continue // the root has no siblings
			}
			for s := start; s != tree.None && s != tree.NodeID(v); s = t.Second(s) {
				out[s] = true
			}
		}
	case AxisFollowing:
		// following = descendant-or-self(following-sibling(ancestor-or-self)).
		out = in.axis(in.axis(in.axis(ctx, AxisAncestorOrSelf), AxisFollowingSibling), AxisDescendantOrSelf)
	case AxisPreceding:
		out = in.axis(in.axis(in.axis(ctx, AxisAncestorOrSelf), AxisPrecedingSibling), AxisDescendantOrSelf)
	}
	return out
}
