package xpath

// Normalize parses a Core XPath query and renders it back in the
// parser's canonical surface form: explicit axes, expanded //
// abbreviations, canonical qualifier parenthesisation, no insignificant
// whitespace. Two query strings that parse to the same location path
// normalize to the same string, which makes the result a stable plan-
// cache key — "//a [b]", "descendant-or-self::node()/a[b]" and a
// CRLF-ridden variant all hit one cached plan.
func Normalize(src string) (string, error) {
	p, err := Parse(src)
	if err != nil {
		return "", err
	}
	return p.String(), nil
}
